package agar

import (
	"time"

	"github.com/agardist/agar/internal/live"
)

// LiveConfig sizes a live localhost deployment: every role (per-region
// store servers, the client region's cache server, and the Agar node's
// TCP/UDP hint service) runs over real sockets.
type LiveConfig struct {
	// ClientRegion hosts the Agar node (default Frankfurt).
	ClientRegion Region
	// K, M are the erasure-code parameters (default 9+3).
	K, M int
	// CacheBytes bounds the node's cache; ChunkBytes is the slot unit.
	CacheBytes, ChunkBytes int64
	// ReconfigPeriod is the node's wall-clock period (default 30 s).
	ReconfigPeriod time.Duration
	// DelayScale compresses emulated wide-area delays (0 disables them;
	// 0.01 turns 980 ms into 9.8 ms).
	DelayScale float64
	// UseUDPHints selects the UDP hint channel, as in the paper's
	// prototype.
	UseUDPHints bool
}

// LiveCluster is a running localhost deployment of the full system.
type LiveCluster struct {
	inner *live.Cluster
}

// StartLiveCluster boots every role on ephemeral localhost ports.
func StartLiveCluster(cfg LiveConfig) (*LiveCluster, error) {
	inner, err := live.StartCluster(live.ClusterConfig{
		ClientRegion:   cfg.ClientRegion,
		K:              cfg.K,
		M:              cfg.M,
		CacheBytes:     cfg.CacheBytes,
		ChunkBytes:     cfg.ChunkBytes,
		ReconfigPeriod: cfg.ReconfigPeriod,
		DelayScale:     cfg.DelayScale,
		UseUDPHints:    cfg.UseUDPHints,
	})
	if err != nil {
		return nil, err
	}
	return &LiveCluster{inner: inner}, nil
}

// Put loads an object into the backend.
func (lc *LiveCluster) Put(key string, data []byte) error {
	return lc.inner.Backend().PutObject(key, data)
}

// Reconfigure forces the Agar node to recompute its configuration now.
func (lc *LiveCluster) Reconfigure() { lc.inner.Node().ForceReconfigure() }

// CacheContents snapshots the node cache (object key -> resident chunks).
func (lc *LiveCluster) CacheContents() map[string][]int {
	return lc.inner.Node().Cache().Snapshot()
}

// StoreAddr returns a region's store server address.
func (lc *LiveCluster) StoreAddr(r Region) string { return lc.inner.StoreAddr(r) }

// CacheAddr returns the cache server address.
func (lc *LiveCluster) CacheAddr() string { return lc.inner.CacheAddr() }

// HintAddr returns the TCP hint service address.
func (lc *LiveCluster) HintAddr() string { return lc.inner.HintAddr() }

// Close shuts all servers down.
func (lc *LiveCluster) Close() { lc.inner.Close() }

// LiveReader reads objects from a live cluster over the network with truly
// parallel chunk fetches.
type LiveReader struct {
	inner *live.NetworkReader
}

// NewLiveReader connects a network reader from the given client region.
func (lc *LiveCluster) NewLiveReader(region Region) (*LiveReader, error) {
	inner, err := live.NewNetworkReader(lc.inner, region)
	if err != nil {
		return nil, err
	}
	return &LiveReader{inner: inner}, nil
}

// Get reads one object, returning its bytes, the wall-clock latency, and
// how many chunks came from the cache.
func (r *LiveReader) Get(key string) ([]byte, time.Duration, int, error) {
	return r.inner.Read(key)
}

// Close drops the reader's connections.
func (r *LiveReader) Close() { r.inner.Close() }
