// Live cluster: every Agar role on real localhost sockets — six backend
// store servers, the Frankfurt cache server, and the Agar node's hint
// service — with wide-area latencies emulated at 1% scale. Chunk fetches
// run in parallel goroutines over TCP, exactly like the paper's
// thread-pooled YCSB client.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	agar "github.com/agardist/agar"
)

func main() {
	lc, err := agar.StartLiveCluster(agar.LiveConfig{
		ClientRegion: agar.Frankfurt,
		CacheBytes:   90 * 2048,
		ChunkBytes:   2048,
		DelayScale:   0.01, // 980 ms Tokyo reads become 9.8 ms
		UseUDPHints:  true, // the paper's client<->monitor channel
	})
	if err != nil {
		log.Fatal(err)
	}
	defer lc.Close()

	fmt.Printf("store servers:  %s (tokyo), %s (sydney), ...\n",
		lc.StoreAddr(agar.Tokyo), lc.StoreAddr(agar.Sydney))
	fmt.Printf("cache server:   %s\n", lc.CacheAddr())
	fmt.Printf("hint service:   %s (tcp)\n\n", lc.HintAddr())

	// Load a working set.
	objSize := 10_000
	for i := 0; i < 10; i++ {
		data := bytes.Repeat([]byte{byte(i)}, objSize)
		if err := lc.Put(fmt.Sprintf("object-%d", i), data); err != nil {
			log.Fatal(err)
		}
	}

	reader, err := lc.NewLiveReader(agar.Frankfurt)
	if err != nil {
		log.Fatal(err)
	}
	defer reader.Close()

	// Cold read over the network.
	_, lat, fromCache, err := reader.Get("object-0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cold read:   %8v  (%d chunks from cache)\n", lat.Round(time.Millisecond), fromCache)

	// Teach the monitor what is hot, reconfigure, and read again.
	for i := 0; i < 40; i++ {
		if _, _, _, err := reader.Get("object-0"); err != nil {
			log.Fatal(err)
		}
	}
	lc.Reconfigure()
	reader.Get("object-0") // populates hinted chunks into the cache server

	_, lat, fromCache, err = reader.Get("object-0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cached read: %8v  (%d chunks from cache)\n", lat.Round(time.Millisecond), fromCache)

	fmt.Println("\ncache server contents:")
	for key, chunks := range lc.CacheContents() {
		fmt.Printf("  %s: %d chunks %v\n", key, len(chunks), chunks)
	}
}
