// Policy comparison: a miniature of the paper's Figure 6. One thousand
// Zipfian reads per strategy against a 10 MB-equivalent cache, comparing
// Agar's knapsack configuration with the classical LRU-c / LFU-c policies
// and the cache-less backend.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	agar "github.com/agardist/agar"
)

const (
	numObjects = 150
	objSize    = 9 * 1024
	reads      = 1000
	warmup     = 600
)

func main() {
	cluster, err := agar.NewCluster(agar.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < numObjects; i++ {
		if err := cluster.Put(key(i), bytes.Repeat([]byte{byte(i)}, objSize)); err != nil {
			log.Fatal(err)
		}
	}
	chunkBytes := int64(cluster.ChunkSize(objSize))
	cacheBytes := 90 * chunkBytes // the paper's 10 MB = 90 chunk slots

	type entry struct {
		name string
		make func() *agar.Client
	}
	strategies := []entry{
		{"Agar", func() *agar.Client {
			cl, err := cluster.NewAgarClient(agar.Frankfurt, cacheBytes, chunkBytes)
			if err != nil {
				log.Fatal(err)
			}
			return cl
		}},
		{"LRU-5", func() *agar.Client { return cluster.NewLRUClient(agar.Frankfurt, 5, cacheBytes) }},
		{"LRU-9", func() *agar.Client { return cluster.NewLRUClient(agar.Frankfurt, 9, cacheBytes) }},
		{"LFU-5", func() *agar.Client { return cluster.NewLFUClient(agar.Frankfurt, 5, cacheBytes) }},
		{"LFU-9", func() *agar.Client { return cluster.NewLFUClient(agar.Frankfurt, 9, cacheBytes) }},
		{"Backend", func() *agar.Client { return cluster.NewBackendClient(agar.Frankfurt) }},
	}

	fmt.Printf("%-8s %12s %10s\n", "strategy", "latency", "hit-ratio")
	for _, s := range strategies {
		cl := s.make()
		mean, hits := drive(cl)
		fmt.Printf("%-8s %12v %9.1f%%\n", s.name, mean.Round(time.Millisecond), 100*hits)
	}
}

// drive replays the same Zipfian stream against one client on virtual
// time, reconfiguring the Agar node every 30 simulated seconds.
func drive(cl *agar.Client) (time.Duration, float64) {
	rng := rand.New(rand.NewSource(7))
	zipf := newZipf(rng, numObjects, 1.1)
	now := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	cl.MaybeReconfigure(now)

	var total time.Duration
	hits, measured := 0, 0
	for i := 0; i < warmup+reads; i++ {
		_, st, err := cl.Get(key(zipf()))
		if err != nil {
			log.Fatal(err)
		}
		now = now.Add(st.Latency / 2) // two concurrent clients, as in §V-A
		cl.MaybeReconfigure(now)
		if i < warmup {
			continue
		}
		measured++
		total += st.Latency
		if st.FullHit || st.PartialHit {
			hits++
		}
	}
	return total / time.Duration(measured), float64(hits) / float64(measured)
}

// newZipf samples ranks with P(i) proportional to 1/(i+1)^s.
func newZipf(rng *rand.Rand, n int, s float64) func() int {
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	return func() int {
		u := rng.Float64() * sum
		for i, c := range cdf {
			if u <= c {
				return i
			}
		}
		return n - 1
	}
}

func key(i int) string { return fmt.Sprintf("object-%05d", i) }
