// Coherent writes: the paper's §VI future-work sketch, implemented. Writes
// to an erasure-coded object are followed by a cache invalidation that is
// totally ordered through a Paxos-replicated log, so every region's cache
// drops stale chunks in the same order and read-after-write holds across
// the deployment — even with concurrent writers and a failed acceptor.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"github.com/agardist/agar/internal/backend"
	"github.com/agardist/agar/internal/cache"
	"github.com/agardist/agar/internal/client"
	"github.com/agardist/agar/internal/coherence"
	"github.com/agardist/agar/internal/erasure"
	"github.com/agardist/agar/internal/geo"
)

func main() {
	codec, err := erasure.New(9, 3)
	if err != nil {
		log.Fatal(err)
	}
	placement := geo.NewRoundRobin(geo.DefaultRegions(), false)
	cluster := backend.NewCluster(geo.DefaultRegions(), codec, placement)

	objSize := 9 * 1024
	v1 := bytes.Repeat([]byte{'A'}, objSize)
	if err := cluster.PutObject("doc", v1); err != nil {
		log.Fatal(err)
	}

	env := &client.Env{
		Cluster:       cluster,
		Matrix:        geo.DefaultMatrix(),
		CacheLatency:  20 * time.Millisecond,
		DecodeLatency: 5 * time.Millisecond,
	}

	// Caching readers in two regions, both warm.
	frankfurt := client.NewFixedReader(env, geo.Frankfurt, cache.NewLRU(), 5, 1<<20)
	sydney := client.NewFixedReader(env, geo.Sydney, cache.NewLRU(), 5, 1<<20)
	for i := 0; i < 2; i++ {
		frankfurt.Read("doc")
		sydney.Read("doc")
	}
	fmt.Printf("caches warm: frankfurt holds %v, sydney holds %v\n",
		frankfurt.Cache().IndicesOf("doc"), sydney.Cache().IndicesOf("doc"))

	// One Paxos acceptor per region conceptually; three suffice here.
	coord := coherence.NewCoordinator(3)
	applier := coord.NewApplier(frankfurt.Cache(), sydney.Cache())
	writer := coord.NewWriter(0)

	// A coherent write: update the backend, then commit the invalidation.
	v2 := bytes.Repeat([]byte{'B'}, objSize)
	if err := cluster.PutObject("doc", v2); err != nil {
		log.Fatal(err)
	}
	slot, err := writer.Invalidate("doc")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("invalidation committed at log slot %d\n", slot)
	if _, err := applier.Poll(); err != nil {
		log.Fatal(err)
	}

	for name, r := range map[string]*client.FixedReader{"frankfurt": frankfurt, "sydney": sydney} {
		got, _, err := r.Read("doc")
		if err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(got, v2) {
			log.Fatalf("%s read stale data", name)
		}
		fmt.Printf("%s reads the new version: %q...\n", name, got[:1])
	}

	// The log tolerates a minority acceptor failure.
	coord.Acceptor(2).SetDown(true)
	if _, err := writer.Invalidate("doc"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("invalidation still commits with one of three acceptors down")

	// And blocks (fails fast here) without a quorum — consistency over
	// availability.
	coord.Acceptor(1).SetDown(true)
	if _, err := writer.Invalidate("doc"); err != nil {
		fmt.Printf("without a quorum the write is refused: %v\n", err)
	}
}
