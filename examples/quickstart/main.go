// Quickstart: store erasure-coded objects across six regions, read them
// through an Agar cache, and watch the knapsack configuration cut read
// latency.
package main

import (
	"bytes"
	"fmt"
	"log"

	agar "github.com/agardist/agar"
)

func main() {
	// A simulated six-region deployment with RS(9,3) coding, as in the
	// paper's Figure 1. Jitter off for reproducible output.
	cluster, err := agar.NewCluster(agar.WithJitter(0))
	if err != nil {
		log.Fatal(err)
	}

	// Store a handful of 9 KiB objects; each splits into 9 data + 3 parity
	// chunks spread round-robin over the regions.
	objSize := 9 * 1024
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("object-%05d", i)
		if err := cluster.Put(key, bytes.Repeat([]byte{byte(i)}, objSize)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("stored 20 objects; backend holds %d bytes (4/3 redundancy)\n", cluster.TotalBytes())

	// A client in Frankfurt reading straight from the backend pays the
	// full wide-area price: the slowest of the 9 nearest chunks.
	backend := cluster.NewBackendClient(agar.Frankfurt)
	_, st, err := backend.Get("object-00000")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("backend read:         %7v\n", st.Latency)

	// The same client behind an Agar node: give the node a 2-object cache
	// budget, feed it some traffic so the request monitor learns what is
	// hot, and reconfigure.
	chunkBytes := int64(cluster.ChunkSize(objSize))
	client, err := cluster.NewAgarClient(agar.Frankfurt, 18*chunkBytes, chunkBytes)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		client.Get("object-00000") // hot
	}
	client.Get("object-00013") // cold
	client.Reconfigure()       // runs the POPULATE knapsack

	client.Get("object-00000") // fetches hinted chunks, populates the cache
	_, st, err = client.Get("object-00000")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("agar cached read:     %7v  (%d chunks from cache, %d from backend)\n",
		st.Latency, st.CacheChunks, st.BackendChunks)

	// The cache manager decided how many chunks the hot object deserves.
	for key, chunks := range client.CacheContents() {
		fmt.Printf("cache holds %s: %d chunks %v\n", key, len(chunks), chunks)
	}
}
