// Geo-failover: erasure coding keeps data readable through full region
// outages. This example takes regions down one by one and shows degraded
// reads recovering the object from parity chunks, with the latency cost of
// the extra fetch wave.
package main

import (
	"bytes"
	"fmt"
	"log"

	agar "github.com/agardist/agar"
)

func main() {
	cluster, err := agar.NewCluster(agar.WithJitter(0))
	if err != nil {
		log.Fatal(err)
	}
	objSize := 9 * 1024
	want := bytes.Repeat([]byte{7}, objSize)
	if err := cluster.Put("critical-object", want); err != nil {
		log.Fatal(err)
	}

	client := cluster.NewBackendClient(agar.Frankfurt)

	_, st, err := client.Get("critical-object")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("healthy read:                 %7v\n", st.Latency)

	// One region down (2 of 12 chunks lost): the client's second fetch
	// wave substitutes parity chunks and the decode still succeeds.
	cluster.SetRegionDown(agar.Tokyo, true)
	got, st, err := client.Get("critical-object")
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		log.Fatal("degraded read returned wrong data")
	}
	fmt.Printf("tokyo down (degraded read):   %7v\n", st.Latency)

	// RS(9,3) tolerates any 3 lost chunks. A second full region outage
	// loses 4 chunks and the read must fail.
	cluster.SetRegionDown(agar.Sydney, true)
	if _, _, err := client.Get("critical-object"); err == nil {
		log.Fatal("read should have failed with two regions down")
	} else {
		fmt.Printf("tokyo+sydney down:            read fails: %v\n", err)
	}

	// Recovery restores normal reads.
	cluster.SetRegionDown(agar.Tokyo, false)
	cluster.SetRegionDown(agar.Sydney, false)
	got, st, err = client.Get("critical-object")
	if err != nil || !bytes.Equal(got, want) {
		log.Fatal("recovery failed")
	}
	fmt.Printf("after recovery:               %7v\n", st.Latency)
}
