// Command agar-load drives a YCSB-style read-only workload against the
// simulated deployment and prints per-strategy latency and hit statistics —
// a one-shot workload driver for exploring configurations outside the
// fixed experiment set.
//
// Usage:
//
//	agar-load -strategy agar -region sydney -cache-mb 20 -skew 1.1 -ops 2000
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/agardist/agar/internal/experiments"
	"github.com/agardist/agar/internal/geo"
)

func main() {
	var (
		strategy = flag.String("strategy", "agar", "agar | backend | lru-N | lfu-N")
		region   = flag.String("region", "frankfurt", "client region")
		cacheMB  = flag.Float64("cache-mb", 10, "cache size in paper megabytes")
		skew     = flag.Float64("skew", 1.1, "Zipfian skew (0 = uniform)")
		ops      = flag.Int("ops", 1000, "measured operations")
		warmup   = flag.Int("warmup", 1000, "warm-up operations")
		objects  = flag.Int("objects", 300, "working-set size")
		runs     = flag.Int("runs", 3, "runs to average")
		seed     = flag.Int64("seed", 1, "seed")
	)
	flag.Parse()

	r, err := geo.ParseRegion(*region)
	if err != nil {
		fatalf("%v", err)
	}
	params := experiments.DefaultParams()
	params.Operations = *ops
	params.WarmupOps = *warmup
	params.NumObjects = *objects
	params.Runs = *runs
	params.Seed = *seed
	params.ZipfSkew = *skew
	d, err := experiments.NewDeployment(params)
	if err != nil {
		fatalf("%v", err)
	}

	strat, err := parseStrategy(*strategy)
	if err != nil {
		fatalf("%v", err)
	}
	res, err := d.Run(strat, r, *cacheMB)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("strategy=%s region=%s cache=%.0fMB skew=%.1f\n", res.Strategy, r, *cacheMB, *skew)
	fmt.Printf("mean=%v p50=%v p95=%v p99=%v\n",
		res.Mean.Round(time.Millisecond), res.P50.Round(time.Millisecond),
		res.P95.Round(time.Millisecond), res.P99.Round(time.Millisecond))
	fmt.Printf("hit-ratio=%.1f%% (full=%d partial=%d miss=%d) errors=%d reconfigs=%d\n",
		100*res.HitRatio(), res.FullHits, res.PartialHits, res.Misses, res.Errors, res.Reconfigs)
}

func parseStrategy(s string) (experiments.Strategy, error) {
	switch {
	case s == "agar":
		return experiments.Strategy{Kind: experiments.StratAgar}, nil
	case s == "backend":
		return experiments.Strategy{Kind: experiments.StratBackend}, nil
	case strings.HasPrefix(s, "lru-"), strings.HasPrefix(s, "lfu-"):
		c, err := strconv.Atoi(s[4:])
		if err != nil {
			return experiments.Strategy{}, fmt.Errorf("bad chunk count in %q", s)
		}
		kind := experiments.StratLRU
		if strings.HasPrefix(s, "lfu-") {
			kind = experiments.StratLFU
		}
		return experiments.Strategy{Kind: kind, C: c}, nil
	default:
		return experiments.Strategy{}, fmt.Errorf("unknown strategy %q", s)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "agar-load: "+format+"\n", args...)
	os.Exit(1)
}
