// Command cache-server runs a standalone chunk cache over TCP with a
// memcached-like get/set/delete surface and a pluggable eviction policy.
//
// Usage:
//
//	cache-server -addr 127.0.0.1:7101 -capacity 10485760 -policy lru
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"github.com/agardist/agar/internal/cache"
	"github.com/agardist/agar/internal/live"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7101", "listen address")
		capacity = flag.Int64("capacity", 10<<20, "cache capacity in bytes")
		policy   = flag.String("policy", "lru", "eviction policy: lru|lfu|pinned")
	)
	flag.Parse()

	var p cache.Policy
	switch *policy {
	case "lru":
		p = cache.NewLRU()
	case "lfu":
		p = cache.NewLFU()
	case "pinned":
		p = cache.NewPinned()
	default:
		fatalf("unknown policy %q", *policy)
	}

	srv, err := live.NewCacheServer(*addr, cache.New(*capacity, p))
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("cache-server: policy=%s capacity=%d listening on %s\n", *policy, *capacity, srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("cache-server: shutting down")
	srv.Close()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cache-server: "+format+"\n", args...)
	os.Exit(1)
}
