// Command cache-server runs a standalone chunk cache over TCP with a
// memcached-like get/set/delete surface (single-chunk and batched mget/mput
// round trips), a pluggable eviction policy, and a sharded store for
// concurrent client fan-in.
//
// Usage:
//
//	cache-server -addr 127.0.0.1:7101 -capacity 10485760 -policy lru -shards 8
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"github.com/agardist/agar/internal/cache"
	"github.com/agardist/agar/internal/live"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7101", "listen address")
		capacity = flag.Int64("capacity", 10<<20, "cache capacity in bytes")
		policy   = flag.String("policy", "lru", "eviction policy: lru|lfu|pinned")
		shards   = flag.Int("shards", 8, "cache shards (rounded up to a power of two; 1 = single global lock)")
	)
	flag.Parse()

	var factory func() cache.Policy
	switch *policy {
	case "lru":
		factory = func() cache.Policy { return cache.NewLRU() }
	case "lfu":
		factory = func() cache.Policy { return cache.NewLFU() }
	case "pinned":
		factory = func() cache.Policy { return cache.NewPinned() }
	default:
		fatalf("unknown policy %q", *policy)
	}
	if *shards < 1 {
		fatalf("-shards must be at least 1")
	}

	store := cache.NewSharded(*capacity, *shards, factory)
	srv, err := live.NewCacheServer(*addr, store)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("cache-server: policy=%s capacity=%d shards=%d listening on %s\n",
		*policy, *capacity, store.ShardCount(), srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("cache-server: shutting down")
	srv.Close()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cache-server: "+format+"\n", args...)
	os.Exit(1)
}
