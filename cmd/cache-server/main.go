// Command cache-server runs a standalone chunk cache over TCP with a
// memcached-like get/set/delete surface (single-chunk and batched mget/mput
// round trips), a pluggable eviction policy, a sharded store for concurrent
// client fan-in, and an optional cooperative-cache mesh: with -peers set,
// the server periodically advertises its residency digest to peer cache
// servers and mirrors the digests it receives, reporting peer_hits,
// peer_misses and digest_age_ms through its stats op.
//
// Requests dispatch shard-aware by default: connection goroutines decode
// frames and enqueue ops onto per-shard worker pools (batched frames split
// per shard and re-merge in order), with -dispatch conn selecting the
// per-connection serialized baseline for paired benchmarks.
//
// Usage:
//
//	cache-server -addr 127.0.0.1:7101 -capacity 10485760 -policy lru -shards 8
//	cache-server -addr 127.0.0.1:7101 -dispatch conn   # per-connection baseline
//	cache-server -addr 10.0.0.5:7101 -region frankfurt \
//	             -peers dublin=10.0.0.7:7101@25ms -digest-period 1s
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/agardist/agar/internal/cache"
	"github.com/agardist/agar/internal/coop"
	"github.com/agardist/agar/internal/live"
	"github.com/agardist/agar/internal/metrics"
	"github.com/agardist/agar/internal/monitor"
	"github.com/agardist/agar/internal/trace"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7101", "listen address")
		capacity = flag.Int64("capacity", 10<<20, "cache capacity in bytes")
		policy   = flag.String("policy", "lru", "eviction policy: lru|lfu|pinned")
		shards   = flag.Int("shards", 8, "cache shards (rounded up to a power of two; 1 = single global lock)")
		dispatch = flag.String("dispatch", "shard", "request dispatch: shard (per-shard worker pools) | conn (per-connection loops)")
		region   = flag.String("region", "", "this cache's region name (required with -peers)")
		peers    = flag.String("peers", "", "cooperative peers: region=host:port@latency[,...]")
		digest   = flag.Duration("digest-period", time.Second, "how often residency digests push to peers")
		metricsA = flag.String("metrics-addr", "", "serve Prometheus-format /metrics on this address (off when empty)")
		splitMin = flag.Int("split-min-bytes", 0, "shard dispatch: multi-shard batches below this many body bytes route whole instead of splitting (0 = always split)")
	)
	flag.Parse()

	var factory func() cache.Policy
	switch *policy {
	case "lru":
		factory = func() cache.Policy { return cache.NewLRU() }
	case "lfu":
		factory = func() cache.Policy { return cache.NewLFU() }
	case "pinned":
		factory = func() cache.Policy { return cache.NewPinned() }
	default:
		fatalf("unknown policy %q", *policy)
	}
	if *shards < 1 {
		fatalf("-shards must be at least 1")
	}
	peerSpecs, err := live.ParsePeers(*peers)
	if err != nil {
		fatalf("%v", err)
	}
	if len(peerSpecs) > 0 && *region == "" {
		fatalf("-peers needs -region so digests carry this cache's identity")
	}

	mode, err := live.ParseDispatch(*dispatch)
	if err != nil {
		fatalf("%v", err)
	}

	store := cache.NewSharded(*capacity, *shards, factory)
	table := coop.NewTable()
	reg := metrics.NewRegistry()
	rec := trace.NewRecorder()
	srv, err := live.NewCacheServerOpts(*addr, store, table, live.ServerOptions{
		Dispatch: mode, Registry: reg, Region: *region, SplitMinBytes: *splitMin,
		Recorder: rec,
	})
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("cache-server: policy=%s capacity=%d shards=%d dispatch=%s listening on %s\n",
		*policy, *capacity, store.ShardCount(), mode, srv.Addr())
	metricsSrv := serveMetrics(*metricsA, reg, rec)

	var adv *coop.Advertiser
	var peerConns []*live.RemoteCache
	if len(peerSpecs) > 0 {
		adv = coop.NewAdvertiser(*region, store, *digest)
		for _, p := range peerSpecs {
			rc := live.NewRemoteCache(p.Addr)
			peerConns = append(peerConns, rc)
			adv.AddTarget(p.Region.String(), rc)
			fmt.Printf("cache-server: peering with %s at %s (%v)\n", p.Region, p.Addr, p.Latency)
		}
		adv.Start()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("cache-server: shutting down")
	if adv != nil {
		adv.Stop()
	}
	for _, rc := range peerConns {
		rc.Close()
	}
	if metricsSrv != nil {
		metricsSrv.Close()
	}
	srv.Close()
}

// serveMetrics mounts the full debug surface — /metrics, the
// /debug/traces flight recorder, the /debug/health readiness evaluator,
// and the pprof handlers — when addr is set; returns nil (disabled) when
// it is empty.
func serveMetrics(addr string, reg *metrics.Registry, rec *trace.Recorder) *http.Server {
	if addr == "" {
		return nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatalf("metrics listen %s: %v", addr, err)
	}
	mux := http.NewServeMux()
	health := monitor.NewRegistryHealth("cache-server", reg, monitor.DefaultServerRules())
	metrics.MountDebug(mux, reg, rec, health)
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	fmt.Printf("cache-server: metrics on http://%s/metrics, traces on /debug/traces, health on /debug/health, profiles on /debug/pprof/\n", ln.Addr())
	return srv
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cache-server: "+format+"\n", args...)
	os.Exit(1)
}
