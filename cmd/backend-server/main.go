// Command backend-server runs one region's chunk store over TCP — the
// stand-in for the paper's per-region S3 bucket. Chunk persistence is
// pluggable: the default in-memory bucket, an on-disk object layout that
// survives restarts, or a remote S3-style blob gateway (blob-server) the
// region proxies to.
//
// Usage:
//
//	backend-server -region frankfurt -addr 127.0.0.1:7001
//	backend-server -region frankfurt -store disk -dir /var/lib/agar/frankfurt
//	backend-server -region frankfurt -store remote -blob-addr 127.0.0.1:7201
//	backend-server -region frankfurt -dispatch conn   # per-connection baseline
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"github.com/agardist/agar/internal/backend"
	"github.com/agardist/agar/internal/geo"
	"github.com/agardist/agar/internal/live"
	"github.com/agardist/agar/internal/metrics"
	"github.com/agardist/agar/internal/monitor"
	"github.com/agardist/agar/internal/store"
	"github.com/agardist/agar/internal/trace"
)

func main() {
	var (
		region   = flag.String("region", "frankfurt", "region this store serves")
		addr     = flag.String("addr", "127.0.0.1:7001", "listen address")
		kind     = flag.String("store", "mem", "chunk persistence: mem|disk|remote")
		dir      = flag.String("dir", "", "disk store root directory (required with -store disk)")
		blobAddr = flag.String("blob-addr", "", "blob gateway address (required with -store remote)")
		dispatch = flag.String("dispatch", "shard", "request dispatch: shard (striped worker pools) | conn (per-connection loops)")
		metricsA = flag.String("metrics-addr", "", "serve Prometheus-format /metrics on this address (off when empty)")
	)
	flag.Parse()

	r, err := geo.ParseRegion(*region)
	if err != nil {
		fatalf("%v", err)
	}
	mode, err := live.ParseDispatch(*dispatch)
	if err != nil {
		fatalf("%v", err)
	}
	blob, err := store.Open(store.Config{Kind: *kind, Dir: *dir, Addr: *blobAddr})
	if err != nil {
		fatalf("%v", err)
	}
	reg := metrics.NewRegistry()
	blob = store.WithMetrics(blob, reg, *kind)
	st := backend.NewStoreOn(r, blob)
	rec := trace.NewRecorder()
	srv, err := live.NewStoreServerOpts(*addr, st, live.ServerOptions{
		Dispatch: mode, Registry: reg, Region: r.String(), Recorder: rec,
	})
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("backend-server: region=%s store=%s dispatch=%s listening on %s\n", r, *kind, mode, srv.Addr())
	metricsSrv := serveMetrics(*metricsA, reg, rec)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("backend-server: shutting down")
	if metricsSrv != nil {
		metricsSrv.Close()
	}
	srv.Close()
	blob.Close()
}

// serveMetrics mounts the full debug surface — /metrics, the
// /debug/traces flight recorder, the /debug/health readiness evaluator,
// and the pprof handlers — when addr is set; returns nil (disabled) when
// it is empty.
func serveMetrics(addr string, reg *metrics.Registry, rec *trace.Recorder) *http.Server {
	if addr == "" {
		return nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatalf("metrics listen %s: %v", addr, err)
	}
	mux := http.NewServeMux()
	health := monitor.NewRegistryHealth("backend-server", reg, monitor.DefaultServerRules())
	metrics.MountDebug(mux, reg, rec, health)
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	fmt.Printf("backend-server: metrics on http://%s/metrics, traces on /debug/traces, health on /debug/health, profiles on /debug/pprof/\n", ln.Addr())
	return srv
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "backend-server: "+format+"\n", args...)
	os.Exit(1)
}
