// Command backend-server runs one region's chunk store over TCP — the
// stand-in for the paper's per-region S3 bucket.
//
// Usage:
//
//	backend-server -region frankfurt -addr 127.0.0.1:7001
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"github.com/agardist/agar/internal/backend"
	"github.com/agardist/agar/internal/geo"
	"github.com/agardist/agar/internal/live"
)

func main() {
	var (
		region = flag.String("region", "frankfurt", "region this store serves")
		addr   = flag.String("addr", "127.0.0.1:7001", "listen address")
	)
	flag.Parse()

	r, err := geo.ParseRegion(*region)
	if err != nil {
		fatalf("%v", err)
	}
	store := backend.NewStore(r)
	srv, err := live.NewStoreServer(*addr, store)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("backend-server: region=%s listening on %s\n", r, srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("backend-server: shutting down")
	srv.Close()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "backend-server: "+format+"\n", args...)
	os.Exit(1)
}
