// Command agar-node runs one region's Agar deployment: the request
// monitor, region manager, cache manager and chunk cache, serving hints
// over TCP and optionally UDP, and the cache over TCP.
//
// The node probes each region's chunk-read latency at start-up from the
// calibrated latency model (in a real deployment the probes would hit the
// actual store servers) and reconfigures its cache every period. With
// -peers, the node joins the cooperative cache mesh (§VI): it mirrors the
// residency digests peer cache servers push to its cache port, values
// peer-covered chunks in its knapsack, and advertises its own residency
// back every -digest-period.
//
// Usage:
//
//	agar-node -region frankfurt -cache-mb 10 -period 30s \
//	          -hint-addr 127.0.0.1:7201 -cache-addr 127.0.0.1:7202 \
//	          -udp-hint-addr 127.0.0.1:7203 \
//	          -peers dublin=10.0.0.7:7202@25ms
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/agardist/agar/internal/coop"
	"github.com/agardist/agar/internal/core"
	"github.com/agardist/agar/internal/geo"
	"github.com/agardist/agar/internal/live"
)

func main() {
	var (
		region    = flag.String("region", "frankfurt", "region this node serves")
		cacheMB   = flag.Float64("cache-mb", 10, "cache size in paper megabytes (1 MB objects, k=9)")
		period    = flag.Duration("period", 30*time.Second, "reconfiguration period")
		hintAddr  = flag.String("hint-addr", "127.0.0.1:7201", "TCP hint listen address")
		cacheAddr = flag.String("cache-addr", "127.0.0.1:7202", "cache listen address")
		udpAddr   = flag.String("udp-hint-addr", "", "optional UDP hint listen address")
		k         = flag.Int("k", 9, "data chunks per object")
		m         = flag.Int("m", 3, "parity chunks per object")
		objBytes  = flag.Int64("object-bytes", 1<<20, "object size for slot accounting")
		solver    = flag.String("solver", "populate", "configuration solver: populate|exact|greedy")
		peers     = flag.String("peers", "", "cooperative peer cache servers: region=host:port@latency[,...]")
		digest    = flag.Duration("digest-period", time.Second, "how often residency digests push to peers")
	)
	flag.Parse()

	r, err := geo.ParseRegion(*region)
	if err != nil {
		fatalf("%v", err)
	}
	peerSpecs, err := live.ParsePeers(*peers)
	if err != nil {
		fatalf("%v", err)
	}
	var sv core.Solver
	switch *solver {
	case "populate":
		sv = core.SolverPopulate
	case "exact":
		sv = core.SolverExact
	case "greedy":
		sv = core.SolverGreedy
	default:
		fatalf("unknown solver %q", *solver)
	}

	chunkBytes := (*objBytes + int64(*k) - 1) / int64(*k)
	slots := int64(*cacheMB * float64(int64(1)<<20) / float64(chunkBytes))
	node := core.NewNode(core.NodeParams{
		Region:         r,
		Regions:        geo.DefaultRegions(),
		Placement:      geo.NewRoundRobin(geo.DefaultRegions(), false),
		K:              *k,
		M:              *m,
		CacheBytes:     slots * chunkBytes,
		ChunkBytes:     chunkBytes,
		ReconfigPeriod: *period,
		CacheLatency:   20 * time.Millisecond,
		Solver:         sv,
	})
	matrix := geo.DefaultMatrix()
	node.RegionManager().WarmUp(func(to geo.RegionID) time.Duration {
		return matrix.Get(r, to)
	}, 3)

	hintSrv, err := live.NewHintServer(*hintAddr, node)
	if err != nil {
		fatalf("hint server: %v", err)
	}
	// The cache server always speaks the mesh protocol: peers configured
	// on the remote side can push digests here even before this node lists
	// them in its own -peers.
	table := coop.NewTable()
	cacheSrv, err := live.NewCacheServerCoop(*cacheAddr, node.Cache(), table)
	if err != nil {
		fatalf("cache server: %v", err)
	}
	var adv *coop.Advertiser
	var peerConns []*live.RemoteCache
	if len(peerSpecs) > 0 {
		adv = coop.NewAdvertiser(r.String(), node.Cache(), *digest)
		for _, p := range peerSpecs {
			node.AddPeer(p.Region, table.Mirror(p.Region.String()), p.Latency)
			rc := live.NewRemoteCache(p.Addr)
			peerConns = append(peerConns, rc)
			adv.AddTarget(p.Region.String(), rc)
		}
		adv.Start()
	}
	var udpSrv *live.UDPHintServer
	if *udpAddr != "" {
		udpSrv, err = live.NewUDPHintServer(*udpAddr, node)
		if err != nil {
			fatalf("udp hint server: %v", err)
		}
	}
	node.Start()

	fmt.Printf("agar-node: region=%s slots=%d period=%v solver=%s\n", r, slots, *period, sv)
	fmt.Printf("agar-node: hints on %s (tcp)", hintSrv.Addr())
	if udpSrv != nil {
		fmt.Printf(" and %s (udp)", udpSrv.Addr())
	}
	fmt.Printf("; cache on %s\n", cacheSrv.Addr())
	for _, p := range peerSpecs {
		fmt.Printf("agar-node: peering with %s at %s (%v)\n", p.Region, p.Addr, p.Latency)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("agar-node: shutting down")
	if adv != nil {
		adv.Stop()
	}
	for _, rc := range peerConns {
		rc.Close()
	}
	node.Stop()
	hintSrv.Close()
	cacheSrv.Close()
	if udpSrv != nil {
		udpSrv.Close()
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "agar-node: "+format+"\n", args...)
	os.Exit(1)
}
