// Command agar-bench regenerates the paper's evaluation tables and figures
// against the simulated wide-area deployment, and — with -load — sweeps
// offered load against a live localhost cluster through an open-loop,
// coordinated-omission-safe generator (internal/loadgen), emitting the
// latency-vs-offered-load curve and saturation knee as BENCH_load.json
// plus a marker-fenced SCENARIOS.md section.
//
// Usage:
//
//	agar-bench -exp all
//	agar-bench -exp fig6 -region sydney -runs 5 -ops 1000
//	agar-bench -exp fig8a -seed 7
//	agar-bench -load -rates 1000,2000,4000,8000,16000 -duration 3s
//	agar-bench -load -scenarios-md SCENARIOS.md -split-min-bytes 4096
//	agar-bench -loadcheck BENCH_load.json
//
// Experiments: table1, fig2, fig6, fig7, fig8a, fig8b, fig9, fig10, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/agardist/agar/internal/core"
	"github.com/agardist/agar/internal/experiments"
	"github.com/agardist/agar/internal/geo"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: table1|fig2|fig6|fig7|fig8a|fig8b|fig9|fig10|all")
		region  = flag.String("region", "", "client region for fig6/fig7 (default: frankfurt and sydney)")
		runs    = flag.Int("runs", 5, "runs to average per configuration")
		ops     = flag.Int("ops", 1000, "measured operations per run")
		warmup  = flag.Int("warmup", 1000, "warm-up operations per run")
		objects = flag.Int("objects", 300, "objects in the working set")
		seed    = flag.Int64("seed", 1, "deterministic seed")
		skew    = flag.Float64("skew", 1.1, "default Zipfian skew")
		solver  = flag.String("solver", "populate", "agar solver: populate|exact|greedy")

		load       = flag.Bool("load", false, "run the open-loop saturation sweep against a live localhost cluster instead of the paper figures")
		loadCheck  = flag.String("loadcheck", "", "validate a BENCH_load.json produced by -load, then exit")
		probe      = flag.String("probe", "", "send a handful of traced ops at a running cache server (host:port), then exit — CI's tracing smoke client")
		rates      = flag.String("rates", "1000,2000,4000,8000,16000", "offered-load ladder in ops/s for -load")
		duration   = flag.Duration("duration", 3*time.Second, "measured window per -load point")
		loadWarmup = flag.Duration("load-warmup", 500*time.Millisecond, "warm-up per -load point (latencies discarded)")
		conns      = flag.Int("conns", 4, "pipelined connections driving each -load point")
		window     = flag.Int("window", 64, "in-flight frames per pipelined connection (0 = server default)")
		chunks     = flag.Int("chunks", 8, "chunks per object in the -load working set")
		chunkBytes = flag.Int("chunk-bytes", 4096, "bytes per chunk in the -load working set")
		mix        = flag.String("mix", "get=70,mget=30", "op mix for -load, kind=weight pairs")
		dispatch   = flag.String("dispatch", "shard", "cache server dispatch mode for -load: shard|conn")
		splitMin   = flag.Int("split-min-bytes", 0, "cache server batch-split threshold for -load (0 = always split)")
		loadOut    = flag.String("load-out", "BENCH_load.json", "where -load writes its JSON report")
		scenMD     = flag.String("scenarios-md", "", "SCENARIOS.md to splice the -load section into (off when empty)")
	)
	flag.Parse()

	if *loadCheck != "" {
		runLoadCheck(*loadCheck)
		return
	}
	if *probe != "" {
		runProbe(*probe)
		return
	}
	if *load {
		runLoad(loadParams{
			rates: *rates, duration: *duration, warmup: *loadWarmup,
			conns: *conns, window: *window, objects: *objects,
			chunks: *chunks, chunkBytes: *chunkBytes, mix: *mix,
			seed: *seed, skew: *skew, dispatch: *dispatch,
			splitMin: *splitMin, out: *loadOut, scenariosMD: *scenMD,
		})
		return
	}

	params := experiments.DefaultParams()
	params.Runs = *runs
	params.Operations = *ops
	params.WarmupOps = *warmup
	params.NumObjects = *objects
	params.Seed = *seed
	params.ZipfSkew = *skew
	switch *solver {
	case "populate":
		params.Solver = core.SolverPopulate
	case "exact":
		params.Solver = core.SolverExact
	case "greedy":
		params.Solver = core.SolverGreedy
	default:
		fatalf("unknown solver %q", *solver)
	}

	regions := []geo.RegionID{geo.Frankfurt, geo.Sydney}
	if *region != "" {
		r, err := geo.ParseRegion(*region)
		if err != nil {
			fatalf("%v", err)
		}
		regions = []geo.RegionID{r}
	}

	start := time.Now()
	d, err := experiments.NewDeployment(params)
	if err != nil {
		fatalf("deployment: %v", err)
	}

	want := strings.Split(*exp, ",")
	has := func(name string) bool {
		for _, w := range want {
			if w == name || w == "all" {
				return true
			}
		}
		return false
	}

	if has("table1") {
		fmt.Println(experiments.TableI().Render())
	}
	if has("fig2") {
		res, err := experiments.Figure2(d)
		if err != nil {
			fatalf("fig2: %v", err)
		}
		fmt.Println(res.Render())
	}
	if has("fig6") || has("fig7") {
		for _, r := range regions {
			res, err := experiments.PolicyComparison(d, r)
			if err != nil {
				fatalf("fig6/7: %v", err)
			}
			if has("fig6") {
				fmt.Println(res.RenderFigure6())
			}
			if has("fig7") {
				fmt.Println(res.RenderFigure7())
			}
		}
	}
	if has("fig8a") {
		res, err := experiments.Figure8a(d)
		if err != nil {
			fatalf("fig8a: %v", err)
		}
		fmt.Println(res.Render())
	}
	if has("fig8b") {
		res, err := experiments.Figure8b(d)
		if err != nil {
			fatalf("fig8b: %v", err)
		}
		fmt.Println(res.Render())
	}
	if has("fig9") {
		fmt.Println(experiments.Figure9(d).Render())
	}
	if has("fig10") {
		res, err := experiments.Figure10(d)
		if err != nil {
			fatalf("fig10: %v", err)
		}
		fmt.Println(res.Render())
	}
	fmt.Printf("elapsed: %v\n", time.Since(start).Round(time.Millisecond))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "agar-bench: "+format+"\n", args...)
	os.Exit(1)
}
