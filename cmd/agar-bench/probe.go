package main

import (
	"fmt"

	"github.com/agardist/agar/internal/live"
	"github.com/agardist/agar/internal/wire"
)

// runProbe drives a handful of traced ops against an already-running cache
// server — the client half of CI's tracing smoke. Every frame carries a
// trace header, so after the probe returns the server's /debug/traces
// endpoint must expose "slowest" entries whose trace IDs match the ones
// printed here. Any transport or remote error is fatal: the probe's only
// job is to make the flight recorder observably non-empty.
func runProbe(addr string) {
	c, err := live.DialPipelined(addr, 0)
	if err != nil {
		fatalf("probe: dial %s: %v", addr, err)
	}
	defer c.Close()

	var seq uint64
	var first, last string
	send := func(h wire.Header, body []byte) wire.Message {
		seq++
		h.Trace = fmt.Sprintf("%016x", 0x70726f6265<<16|seq) // "probe" + seq
		if first == "" {
			first = h.Trace
		}
		last = h.Trace
		resp, err := c.Go(wire.Message{Header: h, Body: body}).Wait()
		if err != nil {
			fatalf("probe: %s %s: %v", h.Op, h.Key, err)
		}
		return resp
	}

	const key = "probe-obj"
	chunks := make(map[int][]byte, 4)
	for i := 0; i < 4; i++ {
		b := make([]byte, 512)
		for j := range b {
			b[j] = byte(i)
		}
		chunks[i] = b
	}
	indices, sizes, body, err := wire.PackBatch(chunks)
	if err != nil {
		fatalf("probe: pack: %v", err)
	}
	send(wire.Header{Op: wire.OpMPut, Key: key, Indices: indices, Sizes: sizes}, body)
	for i := 0; i < 4; i++ {
		if resp := send(wire.Header{Op: wire.OpGet, Key: key, Index: i}, nil); resp.Header.Op != wire.OpOK {
			fatalf("probe: get %s/%d came back %s", key, i, resp.Header.Op)
		}
	}
	for i := 0; i < 2; i++ {
		send(wire.Header{Op: wire.OpMGet, Key: key, Indices: indices}, nil)
	}
	// A miss exercises the not-found reply path under a trace as well.
	send(wire.Header{Op: wire.OpGet, Key: "probe-missing", Index: 0}, nil)

	fmt.Printf("probe: %d traced ops against %s ok (trace ids %s..%s); scrape /debug/traces on its metrics port\n",
		seq, addr, first, last)
}
