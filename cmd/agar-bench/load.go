package main

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"sync/atomic"
	"time"

	"github.com/agardist/agar/internal/cache"
	"github.com/agardist/agar/internal/geo"
	"github.com/agardist/agar/internal/live"
	"github.com/agardist/agar/internal/loadgen"
	"github.com/agardist/agar/internal/scenario"
	"github.com/agardist/agar/internal/wire"
)

// loadParams carries the -load flag set into the sweep driver.
type loadParams struct {
	rates       string
	duration    time.Duration
	warmup      time.Duration
	conns       int
	window      int
	objects     int
	chunks      int
	chunkBytes  int
	mix         string
	seed        int64
	skew        float64
	dispatch    string
	splitMin    int
	out         string
	scenariosMD string
}

// pipeIssuer turns loadgen ops into pipelined wire calls against the cache
// server, spreading them round-robin over a fixed fleet of pipelined
// connections. Each op runs in its own goroutine so a full in-flight
// window applies back-pressure to the op (whose latency clock started at
// its scheduled arrival), never to the generator's schedule.
type pipeIssuer struct {
	clients []*live.PipelinedCache
	next    atomic.Uint64
	nchunks int
	mgetIdx []int
}

// chunkIndexFor picks one deterministic chunk index per key, so a "get"
// op's target is a pure function of the generator's (kind, key) schedule.
func chunkIndexFor(key string, nchunks int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(nchunks))
}

func (is *pipeIssuer) Issue(op loadgen.Op, done func(error)) {
	c := is.clients[is.next.Add(1)%uint64(len(is.clients))]
	go func() {
		// Raw frames rather than the convenience Get/GetMulti: the issuer
		// stamps each op's deterministic trace ID into the frame's trace
		// header, so the report's SlowOps join against the server's
		// /debug/traces flight recorder.
		h := wire.Header{Key: op.Key, Trace: op.Trace}
		switch op.Kind {
		case "mget":
			h.Op, h.Indices = wire.OpMGet, is.mgetIdx
		default: // "get"
			h.Op, h.Index = wire.OpGet, chunkIndexFor(op.Key, is.nchunks)
		}
		resp, err := c.Go(wire.Message{Header: h}).Wait()
		if err == nil && resp.Header.Op == wire.OpNotFound {
			err = fmt.Errorf("load: %s %s: not found", op.Kind, op.Key)
		}
		done(err)
	}()
}

// runLoad boots a localhost cluster, prepopulates its cache, sweeps the
// offered-load ladder through pipelined connections, and writes
// BENCH_load.json (plus the marker-fenced SCENARIOS.md section when
// -scenarios-md is set).
func runLoad(p loadParams) {
	rates, err := loadgen.ParseRates(p.rates)
	if err != nil {
		fatalf("%v", err)
	}
	mix, err := loadgen.ParseMix(p.mix)
	if err != nil {
		fatalf("%v", err)
	}
	for _, w := range mix {
		if w.Kind != "get" && w.Kind != "mget" {
			fatalf("-mix kind %q not supported (get, mget)", w.Kind)
		}
	}
	mode, err := live.ParseDispatch(p.dispatch)
	if err != nil {
		fatalf("%v", err)
	}
	if p.conns < 1 || p.objects < 1 || p.chunks < 1 || p.chunkBytes < 1 {
		fatalf("-conns, -objects, -chunks and -chunk-bytes must be positive")
	}

	// The cluster runs with zero injected WAN delay and a reconfiguration
	// period beyond any sweep: the target under test is the cache server's
	// wire/dispatch path, not the simulated geography around it.
	cl, err := live.StartCluster(live.ClusterConfig{
		ClientRegion:   geo.Frankfurt,
		CacheBytes:     2 * int64(p.objects) * int64(p.chunks) * int64(p.chunkBytes),
		ChunkBytes:     int64(p.chunkBytes),
		ReconfigPeriod: time.Hour,
		DelayScale:     0,
		Dispatch:       mode,
		SplitMinBytes:  p.splitMin,
	})
	if err != nil {
		fatalf("start cluster: %v", err)
	}
	defer cl.Close()
	// The node's cache admits only knapsack-configured chunks, which would
	// gate residency on popularity history. The sweep measures the
	// wire/dispatch path against a fully resident working set, so admission
	// opens before prepopulation.
	cl.Node().Cache().SetAdmission(func(cache.EntryID) bool { return true })

	mgetIdx := make([]int, p.chunks)
	for i := range mgetIdx {
		mgetIdx[i] = i
	}
	if err := prepopulate(cl.CacheAddr(), p.objects, p.chunks, p.chunkBytes); err != nil {
		fatalf("prepopulate: %v", err)
	}
	fmt.Printf("load: cluster up at %s (dispatch=%s split-min=%d), %d objects x %d chunks x %dB resident\n",
		cl.CacheAddr(), mode, p.splitMin, p.objects, p.chunks, p.chunkBytes)

	base := loadgen.Config{
		Duration: p.duration,
		Warmup:   p.warmup,
		Seed:     p.seed,
		Mix:      mix,
		Keys:     p.objects,
		Skew:     p.skew,
	}
	mkIssuer := func() (loadgen.Issuer, func(), error) {
		clients := make([]*live.PipelinedCache, 0, p.conns)
		for i := 0; i < p.conns; i++ {
			c, err := live.DialPipelined(cl.CacheAddr(), p.window)
			if err != nil {
				for _, prev := range clients {
					prev.Close()
				}
				return nil, nil, err
			}
			clients = append(clients, c)
		}
		teardown := func() {
			for _, c := range clients {
				c.Close()
			}
		}
		return &pipeIssuer{clients: clients, nchunks: p.chunks, mgetIdx: mgetIdx}, teardown, nil
	}
	points, err := loadgen.Sweep(base, rates, mkIssuer, func(pt loadgen.Point) {
		eff := 100 * pt.AchievedOps / pt.OfferedOps
		fmt.Printf("load: %8.0f ops/s offered -> %8.0f achieved (%5.1f%%, max send lag %.1f ms)\n",
			pt.OfferedOps, pt.AchievedOps, eff, pt.SendLagMaxUs/1000)
	})
	if err != nil {
		fatalf("sweep: %v", err)
	}

	rep := &loadgen.Report{
		Schema:      loadgen.Schema,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Setup: map[string]any{
			"conns":           p.conns,
			"window":          p.window,
			"objects":         p.objects,
			"chunks":          p.chunks,
			"chunk_bytes":     p.chunkBytes,
			"mix":             p.mix,
			"seed":            p.seed,
			"skew":            p.skew,
			"dispatch":        mode.String(),
			"split_min_bytes": p.splitMin,
			"duration_s":      p.duration.Seconds(),
			"warmup_s":        p.warmup.Seconds(),
		},
		Points: points,
	}
	rep.ComputeKnee()
	if err := rep.Validate(); err != nil {
		fatalf("report failed its own validation: %v", err)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("encode report: %v", err)
	}
	if err := os.WriteFile(p.out, append(data, '\n'), 0o644); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("load: wrote %s (%d points)\n", p.out, len(points))
	fmt.Println()
	fmt.Print(rep.MarkdownSection())

	if p.scenariosMD != "" {
		if err := spliceScenarios(p.scenariosMD, rep); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("load: updated %s\n", p.scenariosMD)
	}
}

// prepopulate batch-loads every object's chunks into the cache server so
// the sweep measures a warm read path, not fill traffic.
func prepopulate(addr string, objects, chunks, chunkBytes int) error {
	rc := live.NewRemoteCache(addr)
	defer rc.Close()
	for i := 0; i < objects; i++ {
		key := fmt.Sprintf("obj-%d", i)
		payload := make(map[int][]byte, chunks)
		for j := 0; j < chunks; j++ {
			b := make([]byte, chunkBytes)
			for k := range b {
				b[k] = byte(i + j)
			}
			payload[j] = b
		}
		if err := rc.PutMulti(key, payload); err != nil {
			return fmt.Errorf("put %s: %w", key, err)
		}
	}
	return nil
}

// spliceScenarios replaces (or appends) the marker-fenced load section in
// the SCENARIOS.md at path, leaving the rest of the file to agar-suite.
func spliceScenarios(path string, rep *loadgen.Report) error {
	doc := ""
	if data, err := os.ReadFile(path); err == nil {
		doc = string(data)
	} else if !os.IsNotExist(err) {
		return err
	}
	section := fmt.Sprintf("## Open-loop saturation sweep (agar-bench -load)\n\ngenerated %s · setup %s\n\n%s",
		rep.GeneratedAt, setupLine(rep.Setup), rep.MarkdownSection())
	out := scenario.SpliceMarked(doc, scenario.LoadSectionBegin, scenario.LoadSectionEnd, section)
	return os.WriteFile(path, []byte(out), 0o644)
}

// setupLine renders the report's setup echo compactly for the markdown
// header.
func setupLine(setup map[string]any) string {
	return fmt.Sprintf("%v conns × window %v, %v objects × %v chunks × %vB, mix %v, dispatch %v, split-min %v",
		setup["conns"], setup["window"], setup["objects"], setup["chunks"],
		setup["chunk_bytes"], setup["mix"], setup["dispatch"], setup["split_min_bytes"])
}

// runLoadCheck decodes a BENCH_load.json and machine-checks it against the
// schema — the CI gate behind agar-bench -loadcheck.
func runLoadCheck(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fatalf("%v", err)
	}
	var rep loadgen.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		fatalf("loadcheck %s: %v", path, err)
	}
	if err := rep.Validate(); err != nil {
		fatalf("loadcheck %s: %v", path, err)
	}
	knee := "no knee recorded"
	if rep.Knee != nil {
		knee = fmt.Sprintf("knee %.0f ops/s (achieved %.0f, %s p99 %.0f µs)",
			rep.Knee.OfferedOps, rep.Knee.AchievedOps, rep.Knee.DominantOp, rep.Knee.P99Us)
	}
	fmt.Printf("loadcheck: %s ok — %d points, %s\n", path, len(rep.Points), knee)
}
