// Command benchdiff compares two `go test -bench` outputs and fails on
// regressions, so CI can gate pull requests on the paired hot-path
// benchmarks instead of eyeballing them.
//
// Each input is the raw stdout of a bench run (ideally with -count=N; the
// median per metric is compared, which shrugs off one noisy run).
// Benchmarks present in only one file are reported and skipped; an empty
// intersection passes, so the gate is a no-op until both sides carry the
// same benchmarks.
//
// Usage:
//
//	go test -bench 'MGetReply' -count 5 ./internal/live > old.txt
//	... apply change ...
//	go test -bench 'MGetReply' -count 5 ./internal/live > new.txt
//	benchdiff -threshold 0.10 old.txt new.txt
//
// The exit code is 0 when every gated metric (ns/op and B/op by default)
// stays within threshold, 1 on any regression, 2 on invalid usage.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

func main() {
	var (
		threshold = flag.Float64("threshold", 0.10, "relative regression that fails the gate (0.10 = +10%)")
		gate      = flag.String("gate", "ns/op,B/op", "comma-separated metrics that fail the gate when they regress")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold 0.10] [-gate ns/op,B/op] old.txt new.txt")
		os.Exit(2)
	}
	oldRuns, err := parseFile(flag.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}
	newRuns, err := parseFile(flag.Arg(1))
	if err != nil {
		fatalf("%v", err)
	}

	gated := map[string]bool{}
	for _, m := range strings.Split(*gate, ",") {
		if m = strings.TrimSpace(m); m != "" {
			gated[m] = true
		}
	}

	rows, regressions := diff(oldRuns, newRuns, gated, *threshold)
	if len(rows) == 0 {
		fmt.Println("benchdiff: no benchmarks in common — nothing to gate")
		return
	}
	fmt.Printf("%-40s %-10s %14s %14s %8s\n", "benchmark", "metric", "old", "new", "delta")
	for _, r := range rows {
		flag := ""
		if r.regressed {
			flag = "  REGRESSED"
		}
		fmt.Printf("%-40s %-10s %14.2f %14.2f %+7.1f%%%s\n", r.name, r.metric, r.old, r.new, 100*r.delta, flag)
	}
	for name := range union(oldRuns, newRuns) {
		_, inOld := oldRuns[name]
		_, inNew := newRuns[name]
		if !inOld || !inNew {
			fmt.Printf("benchdiff: %s present on one side only — skipped\n", name)
		}
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d metric(s) regressed beyond %+.0f%%\n", regressions, 100**threshold)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: ok, %d compared metric(s) within %+.0f%%\n", len(rows), 100**threshold)
}

// row is one compared (benchmark, metric) pair.
type row struct {
	name, metric string
	old, new     float64
	delta        float64
	regressed    bool
}

// diff medians both sides and compares every metric the benchmarks share,
// flagging gated metrics that grew beyond the threshold. Rows sort by
// benchmark then metric so the gate's output is diffable run to run.
func diff(oldRuns, newRuns map[string]map[string][]float64, gated map[string]bool, threshold float64) ([]row, int) {
	var rows []row
	regressions := 0
	for name, oldMetrics := range oldRuns {
		newMetrics, ok := newRuns[name]
		if !ok {
			continue
		}
		for metric, oldSamples := range oldMetrics {
			newSamples, ok := newMetrics[metric]
			if !ok {
				continue
			}
			o, n := median(oldSamples), median(newSamples)
			r := row{name: name, metric: metric, old: o, new: n}
			if o > 0 {
				r.delta = (n - o) / o
			}
			if gated[metric] && o > 0 && r.delta > threshold {
				r.regressed = true
				regressions++
			}
			rows = append(rows, r)
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].name != rows[j].name {
			return rows[i].name < rows[j].name
		}
		return rows[i].metric < rows[j].metric
	})
	return rows, regressions
}

func union(a, b map[string]map[string][]float64) map[string]bool {
	out := make(map[string]bool, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchdiff: "+format+"\n", args...)
	os.Exit(1)
}
