package main

import (
	"bufio"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// parseFile reads one `go test -bench` output into
// benchmark name -> metric ("ns/op", "B/op", ...) -> samples, one sample
// per -count run. The trailing "-8" GOMAXPROCS suffix is kept as part of
// the name: two runs on differently-sized machines should not compare.
func parseFile(path string) (map[string]map[string][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]map[string][]float64{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		name, metrics, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		byMetric := out[name]
		if byMetric == nil {
			byMetric = map[string][]float64{}
			out[name] = byMetric
		}
		for metric, v := range metrics {
			byMetric[metric] = append(byMetric[metric], v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

// parseLine decodes one result line of the standard bench format:
//
//	BenchmarkName-8   1000   1234 ns/op   56 B/op   7 allocs/op
//
// Non-benchmark lines (headers, PASS, ok) report !ok.
func parseLine(line string) (string, map[string]float64, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", nil, false
	}
	if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
		return "", nil, false // second field must be the iteration count
	}
	metrics := map[string]float64{}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			break
		}
		metrics[fields[i+1]] = v
	}
	if len(metrics) == 0 {
		return "", nil, false
	}
	return fields[0], metrics, true
}

// median returns the middle sample (mean of the middle two when even).
// It reorders its input.
func median(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sort.Float64s(samples)
	mid := len(samples) / 2
	if len(samples)%2 == 1 {
		return samples[mid]
	}
	return (samples[mid-1] + samples[mid]) / 2
}
