package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeBench(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const sampleRun = `goos: linux
goarch: amd64
BenchmarkMGetReplyLegacy-8   	    1000	     25000 ns/op	  500000 MB/s	    4096 B/op	      25 allocs/op
BenchmarkMGetReplyLegacy-8   	    1000	     27000 ns/op	  480000 MB/s	    4100 B/op	      25 allocs/op
BenchmarkMGetReplyLegacy-8   	    1000	     26000 ns/op	  490000 MB/s	    4098 B/op	      25 allocs/op
BenchmarkMGetReplyPooled-8   	    2000	     12000 ns/op	  900000 MB/s	    1024 B/op	       7 allocs/op
PASS
ok  	github.com/agardist/agar/internal/live	1.234s
`

func TestParseFileMediansPerCountRun(t *testing.T) {
	runs, err := parseFile(writeBench(t, "a.txt", sampleRun))
	if err != nil {
		t.Fatal(err)
	}
	legacy, ok := runs["BenchmarkMGetReplyLegacy-8"]
	if !ok {
		t.Fatalf("legacy benchmark not parsed: %v", runs)
	}
	if got := len(legacy["ns/op"]); got != 3 {
		t.Fatalf("ns/op samples = %d, want 3", got)
	}
	if m := median(legacy["ns/op"]); m != 26000 {
		t.Fatalf("median ns/op = %v, want 26000", m)
	}
	if m := median(runs["BenchmarkMGetReplyPooled-8"]["allocs/op"]); m != 7 {
		t.Fatalf("pooled allocs/op = %v, want 7", m)
	}
}

func TestParseLineRejectsNonResults(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  	pkg	1.2s",
		"BenchmarkBroken-8 notanumber 12 ns/op",
		"",
	} {
		if _, _, ok := parseLine(line); ok {
			t.Errorf("parsed non-result line %q", line)
		}
	}
}

func TestDiffFlagsGatedRegressions(t *testing.T) {
	oldRuns := map[string]map[string][]float64{
		"BenchmarkX-8":       {"ns/op": {100}, "B/op": {1000}, "allocs/op": {10}},
		"BenchmarkOldOnly-8": {"ns/op": {5}},
	}
	newRuns := map[string]map[string][]float64{
		"BenchmarkX-8":       {"ns/op": {105}, "B/op": {1300}, "allocs/op": {50}},
		"BenchmarkNewOnly-8": {"ns/op": {5}},
	}
	gated := map[string]bool{"ns/op": true, "B/op": true}
	rows, regressions := diff(oldRuns, newRuns, gated, 0.10)
	if regressions != 1 {
		t.Fatalf("regressions = %d, want 1 (B/op +30%%; ns/op +5%% within threshold; allocs ungated)", regressions)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 (only the shared benchmark compares)", len(rows))
	}
	for _, r := range rows {
		wantRegressed := r.metric == "B/op"
		if r.regressed != wantRegressed {
			t.Errorf("%s %s regressed=%v, want %v", r.name, r.metric, r.regressed, wantRegressed)
		}
	}
}

func TestDiffEmptyIntersectionPasses(t *testing.T) {
	rows, regressions := diff(
		map[string]map[string][]float64{"BenchmarkA-8": {"ns/op": {1}}},
		map[string]map[string][]float64{"BenchmarkB-8": {"ns/op": {1}}},
		map[string]bool{"ns/op": true}, 0.10)
	if len(rows) != 0 || regressions != 0 {
		t.Fatalf("rows=%d regressions=%d, want 0/0", len(rows), regressions)
	}
}

func TestMedianEven(t *testing.T) {
	if m := median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Fatalf("median = %v, want 2.5", m)
	}
	if m := median(nil); m != 0 {
		t.Fatalf("median(nil) = %v, want 0", m)
	}
}
