package main

import (
	"math"
	"strings"
	"testing"
	"time"

	"github.com/agardist/agar/internal/metrics"
	"github.com/agardist/agar/internal/monitor"
)

func TestParseTargets(t *testing.T) {
	insts, sources, err := parseTargets("cache=http://127.0.0.1:9301, http://10.0.0.2:9302/")
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 2 || len(sources) != 2 {
		t.Fatalf("got %d targets, %d sources", len(insts), len(sources))
	}
	if insts[0].name != "cache" || insts[0].base != "http://127.0.0.1:9301" {
		t.Errorf("first target = %+v", insts[0])
	}
	if insts[1].name != "10.0.0.2:9302" {
		t.Errorf("bare URL should name itself after host:port, got %q", insts[1].name)
	}
	if src, ok := sources[0].(monitor.HTTPSource); !ok || src.URL != "http://127.0.0.1:9301/metrics" {
		t.Errorf("source = %+v", sources[0])
	}

	for _, bad := range []string{"", "cache=not a url", "a=http://x:1,a=http://y:2"} {
		if _, _, err := parseTargets(bad); err == nil {
			t.Errorf("parseTargets(%q) accepted", bad)
		}
	}
}

func TestInstrumentLineReadouts(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.NewGauge(metrics.NameServerQueueDepth, "d").Set(7)
	gets := reg.NewCounter(metrics.NameCacheGets, "g")
	hits := reg.NewCounter(metrics.NameCacheHits, "h")
	ex := reg.NewHistogramVec(metrics.NameServerOpExecute, "e", []float64{0.01, 0.1, 1}, "op")

	st := monitor.NewStore(64)
	coll := &monitor.Collector{Store: st, Sources: []monitor.Source{
		monitor.RegistrySource{Name: "cache", Registry: reg},
	}}
	// The series must exist at the first scrape: windowed deltas need two
	// snapshots of the same series.
	ex.With("get").Observe(0.05)
	now := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	if err := coll.Collect(now); err != nil {
		t.Fatal(err)
	}
	gets.Add(100)
	hits.Add(25)
	for i := 0; i < 20; i++ {
		ex.With("get").Observe(0.05)
	}
	if err := coll.Collect(now.Add(30 * time.Second)); err != nil {
		t.Fatal(err)
	}

	line, p99 := instrumentLine(st, "cache", time.Minute, now.Add(30*time.Second))
	if !strings.Contains(line, "queue   7") {
		t.Errorf("line missing queue depth: %q", line)
	}
	if !strings.Contains(line, "hit  25%") {
		t.Errorf("line missing hit ratio: %q", line)
	}
	if math.IsNaN(p99) || p99 <= 0.01 || p99 > 0.1 {
		t.Errorf("p99 = %v, want within (0.01, 0.1]", p99)
	}

	// An instance with no data renders placeholders rather than zeros
	// masquerading as readings.
	line, p99 = instrumentLine(st, "ghost", time.Minute, now.Add(30*time.Second))
	if !strings.Contains(line, "—") || !math.IsNaN(p99) {
		t.Errorf("ghost line = %q p99 = %v", line, p99)
	}
}

func TestSparkline(t *testing.T) {
	if s := sparkline(nil); s != "" {
		t.Errorf("empty sparkline = %q", s)
	}
	s := sparkline([]float64{0, 0.5, 1})
	if got := []rune(s); len(got) != 3 || got[0] != '▁' || got[2] != '█' {
		t.Errorf("sparkline = %q", s)
	}
	if s := sparkline([]float64{3, 3, 3}); s != "▁▁▁" {
		t.Errorf("flat sparkline = %q", s)
	}
}

func TestAppendTrend(t *testing.T) {
	var tr []float64
	for i := 0; i < 10; i++ {
		tr = appendTrend(tr, float64(i), 4)
	}
	if len(tr) != 4 || tr[0] != 6 || tr[3] != 9 {
		t.Errorf("trend = %v", tr)
	}
	if got := appendTrend(tr, math.NaN(), 4); len(got) != 4 || got[3] != 9 {
		t.Errorf("NaN should be skipped, got %v", got)
	}
}
