// Command agar-mon watches a running Agar cluster from the outside: it
// polls every target's /metrics endpoint into a monitor ring store,
// replays the default watch rules (dispatch-queue saturation, goroutine
// and heap growth, digest staleness, read-p99 ceiling, hit-ratio burn
// rate) on each tick, and prints a compact per-instance dashboard with
// sparklines plus every alert transition as it happens.
//
// Usage:
//
//	agar-mon -targets cache=http://127.0.0.1:9301,backend=http://127.0.0.1:9302
//	agar-mon -targets http://127.0.0.1:9301 -interval 1s -n 30
//
// Targets are "name=baseURL" pairs (bare URLs name themselves after
// their host:port). The base URL is the server's metrics address —
// agar-mon scrapes <base>/metrics and, with -traces, <base>/debug/traces
// for the slowest recent span. The exit code is 1 when any rule is still
// firing at the end, so a bounded run (-n) doubles as a cluster health
// gate.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"github.com/agardist/agar/internal/metrics"
	"github.com/agardist/agar/internal/monitor"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		targets  = flag.String("targets", "", "comma-separated name=baseURL (or bare URL) metrics endpoints to watch")
		interval = flag.Duration("interval", 2*time.Second, "poll interval")
		n        = flag.Int("n", 0, "ticks to run before exiting (0 = until interrupted)")
		history  = flag.Int("history", 512, "points of history kept per series")
		window   = flag.Duration("window", time.Minute, "lookback for windowed readouts (hit ratio, p99)")
		traces   = flag.Bool("traces", true, "also poll /debug/traces for each target's slowest recent span")
	)
	flag.Parse()

	insts, sources, err := parseTargets(*targets)
	if err != nil {
		fmt.Fprintf(os.Stderr, "agar-mon: %v\n", err)
		return 2
	}

	store := monitor.NewStore(*history)
	coll := &monitor.Collector{Store: store, Sources: sources}
	eval := monitor.NewEvaluator(store, monitor.DefaultWatchRules())
	trends := make(map[string][]float64)

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	tick := 0
	for {
		now := time.Now()
		if err := coll.Collect(now); err != nil {
			fmt.Fprintf(os.Stderr, "agar-mon: scrape: %v\n", err)
		}
		alerts := eval.Eval(now)

		fmt.Printf("agar-mon %s\n", now.Format("15:04:05"))
		for _, inst := range insts {
			line, p99 := instrumentLine(store, inst.name, *window, now)
			trends[inst.name] = appendTrend(trends[inst.name], p99, 32)
			fmt.Printf("  %-12s %s %s\n", inst.name, line, sparkline(trends[inst.name]))
			if *traces {
				if s := slowestSpan(inst.base); s != "" {
					fmt.Printf("  %-12s %s\n", "", s)
				}
			}
		}
		for _, a := range alerts {
			fmt.Printf("  ALERT %s\n", a)
		}
		if firing := eval.Firing(); len(firing) > 0 {
			fmt.Printf("  firing: %s\n", strings.Join(firing, ", "))
		}

		tick++
		if *n > 0 && tick >= *n {
			break
		}
		select {
		case <-ctx.Done():
			fmt.Println()
		case <-time.After(*interval):
			continue
		}
		break
	}

	if firing := eval.Firing(); len(firing) > 0 {
		fmt.Fprintf(os.Stderr, "agar-mon: rules still firing: %s\n", strings.Join(firing, ", "))
		return 1
	}
	return 0
}

// target is one watched instance: its display name and base URL.
type target struct {
	name string
	base string
}

// parseTargets splits -targets into instances and their scrape sources.
func parseTargets(s string) ([]target, []monitor.Source, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil, fmt.Errorf("no -targets given (try -targets cache=http://127.0.0.1:9301)")
	}
	var insts []target
	var sources []monitor.Source
	seen := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, base, ok := strings.Cut(part, "=")
		if !ok {
			base, name = part, ""
		}
		base = strings.TrimRight(base, "/")
		u, err := url.Parse(base)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, nil, fmt.Errorf("target %q: want name=http://host:port", part)
		}
		if name == "" {
			name = u.Host
		}
		if seen[name] {
			return nil, nil, fmt.Errorf("duplicate target name %q", name)
		}
		seen[name] = true
		insts = append(insts, target{name: name, base: base})
		sources = append(sources, monitor.HTTPSource{Name: name, URL: base + "/metrics"})
	}
	return insts, sources, nil
}

// instrumentLine renders one instance's current readouts and returns the
// windowed p99 (seconds; NaN when the instance has no execute history).
func instrumentLine(st *monitor.Store, inst string, window time.Duration, now time.Time) (string, float64) {
	match := map[string]string{"instance": inst}
	queue := sumLatest(st, metrics.NameServerQueueDepth, match)
	gors := sumLatest(st, metrics.NameGoGoroutines, match)
	heap := sumLatest(st, metrics.NameGoHeapAllocBytes, match)

	from := now.Add(-window)
	hits := sumIncrease(st, metrics.NameCacheHits, match, from, now)
	gets := sumIncrease(st, metrics.NameCacheGets, match, from, now)
	hitStr := "—"
	if gets > 0 {
		hitStr = fmt.Sprintf("%.0f%%", 100*hits/gets)
	}

	p99 := math.NaN()
	for _, w := range st.HistDeltas(metrics.NameServerOpExecute, match, from, now) {
		if w.Delta.Count == 0 {
			continue
		}
		if q := metrics.Quantile(w.Bounds, w.Delta, 0.99); math.IsNaN(p99) || q > p99 {
			p99 = q
		}
	}
	p99Str := "—"
	if !math.IsNaN(p99) {
		p99Str = fmt.Sprintf("%.1fms", p99*1000)
	}
	return fmt.Sprintf("queue %3.0f  goroutines %4.0f  heap %6.1fMB  hit %4s  p99 %8s",
		queue, gors, heap/(1<<20), hitStr, p99Str), p99
}

// sumLatest sums the freshest point of every series matching the labels —
// gauges split across shards read as one instance-wide figure.
func sumLatest(st *monitor.Store, name string, match map[string]string) float64 {
	var sum float64
	for _, s := range st.Select(name, match) {
		if len(s.Points) > 0 {
			sum += s.Points[len(s.Points)-1].V
		}
	}
	return sum
}

// sumIncrease sums every matching series' reset-clamped increase across
// the window.
func sumIncrease(st *monitor.Store, name string, match map[string]string, from, to time.Time) float64 {
	var sum float64
	for _, s := range st.Select(name, match) {
		var first, last *monitor.Point
		for i := range s.Points {
			p := s.Points[i]
			if p.T.Before(from) || p.T.After(to) {
				continue
			}
			if first == nil {
				first = &s.Points[i]
			}
			last = &s.Points[i]
		}
		if first == nil || last == nil || !last.T.After(first.T) {
			continue
		}
		if d := last.V - first.V; d > 0 {
			sum += d
		}
	}
	return sum
}

// appendTrend pushes v onto the trend ring, dropping the oldest beyond
// cap. NaN samples (no data yet) are skipped so the sparkline stays dense.
func appendTrend(t []float64, v float64, max int) []float64 {
	if math.IsNaN(v) {
		return t
	}
	t = append(t, v)
	if len(t) > max {
		t = t[len(t)-max:]
	}
	return t
}

// sparkline renders values as a bar-rune strip scaled to their range.
func sparkline(vals []float64) string {
	if len(vals) == 0 {
		return ""
	}
	runes := []rune("▁▂▃▄▅▆▇█")
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	var b strings.Builder
	for _, v := range vals {
		i := 0
		if hi > lo {
			i = int((v - lo) / (hi - lo) * float64(len(runes)-1))
		}
		b.WriteRune(runes[i])
	}
	return b.String()
}

// slowestSpan polls a target's /debug/traces and formats its slowest
// recorded span, empty when the endpoint is absent or quiet.
func slowestSpan(base string) string {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(base + "/debug/traces")
	if err != nil {
		return ""
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return ""
	}
	var doc struct {
		Ops map[string]struct {
			Slowest []struct {
				Op      string `json:"op"`
				TraceID string `json:"trace_id"`
				DurUS   int64  `json:"dur_us"`
				Err     string `json:"err"`
			} `json:"slowest"`
		} `json:"ops"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return ""
	}
	type span struct {
		op, id, errs string
		durUS        int64
	}
	var worst *span
	ops := make([]string, 0, len(doc.Ops))
	for op := range doc.Ops {
		ops = append(ops, op)
	}
	sort.Strings(ops) // deterministic pick among ties
	for _, op := range ops {
		for _, r := range doc.Ops[op].Slowest {
			if worst == nil || r.DurUS > worst.durUS {
				worst = &span{op: r.Op, id: r.TraceID, errs: r.Err, durUS: r.DurUS}
			}
		}
	}
	if worst == nil {
		return ""
	}
	s := fmt.Sprintf("slowest %s %.1fms trace=%s", worst.op, float64(worst.durUS)/1000, worst.id)
	if worst.errs != "" {
		s += " err=" + worst.errs
	}
	return s
}
