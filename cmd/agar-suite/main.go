// Command agar-suite runs the chaos and benchmark scenario library on the
// in-process simulator, comparing cache-policy arms phase by phase, and
// writes machine-readable plus human-readable reports.
//
// Usage:
//
//	agar-suite -list
//	agar-suite -scenario baseline
//	agar-suite -scenario all -out results/
//	agar-suite -scenario partition -arms agar,lru,backend -seed 7
//	agar-suite -scenario baseline -scale 0.2 -opcap 500   # quick smoke
//	agar-suite -scenario baseline -live                   # + localhost cluster smoke
//	agar-suite -dumpspec baseline > my.json               # spec file template
//	agar-suite -spec my.json,other.json                   # run custom spec files
//	agar-suite -soak                                      # 4h virtual long-soak
//	agar-suite -soak -soakscale 0.05                      # CI soak smoke
//	agar-suite -soakcheck BENCH_soak.json                 # validate a soak report
//
// Outputs (under -out, default "."):
//
//	BENCH_scenario.json — every scenario's per-phase/per-arm metrics
//	BENCH_soak.json     — the long-soak's samples, alert timeline, drift
//	SCENARIOS.md        — markdown summary with paired deltas
//
// -soak runs only the long-soak unless -scenario/-spec are given too; its
// markdown lands in a marker-fenced SCENARIOS.md section that full suite
// runs carry forward. -soakcheck re-reads a BENCH_soak.json and fails
// (exit 1) unless the baseline arm is alert- and drift-free and the
// brownout arm's alerts fired and resolved — the CI gate for the soak.
//
// The exit code is 0 on success, 1 when any scenario fails to run, and 2
// on invalid usage — so CI can gate on a smoke scenario.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/agardist/agar/internal/scenario"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		list     = flag.Bool("list", false, "list built-in scenarios and exit")
		name     = flag.String("scenario", "all", "scenario to run (see -list), or 'all'")
		specFile = flag.String("spec", "", "comma-separated JSON scenario spec files to run (see -dumpspec)")
		dump     = flag.String("dumpspec", "", "print a built-in scenario as a JSON spec file and exit")
		out      = flag.String("out", ".", "directory for BENCH_scenario.json and SCENARIOS.md")
		seed     = flag.Int64("seed", 1, "deterministic seed (shared by every arm)")
		opCap    = flag.Int("opcap", 5000, "safety cap on measured operations per phase")
		warmup   = flag.Int("warmup", 300, "warm-up operations before measurement (0 disables)")
		armsFlag = flag.String("arms", "", "comma-separated arms: agar,lru,lfu,fixed,backend (default agar,lru,lfu,backend)")
		chunks   = flag.Int("c", 3, "fixed chunks-per-object for the lru/lfu/fixed arms")
		scale    = flag.Float64("scale", 1, "time-scale factor applied to every phase (0 < scale <= 1)")
		coh      = flag.String("coherence", "", "override mutating scenarios' coherence mode: versioned|none|paired")
		objects  = flag.Int("objects", 0, "override the working-set size (0 = scenario default)")
		live     = flag.Bool("live", false, "additionally smoke each scenario's first phase on the localhost cluster")
		liveOps  = flag.Int("liveops", 120, "measured reads per live phase (smoke) and per dispatch round")
		trace    = flag.Int("trace", 3, "slowest read traces dumped per live phase (0 disables)")
		quiet    = flag.Bool("q", false, "suppress per-scenario markdown on stdout")

		soak      = flag.Bool("soak", false, "run the long-soak (BENCH_soak.json + SCENARIOS.md soak section)")
		soakScale = flag.Float64("soakscale", 1, "time-scale factor for the soak (0 < soakscale <= 1)")
		soakCheck = flag.String("soakcheck", "", "validate an existing BENCH_soak.json and exit")
	)
	flag.Parse()

	if *list {
		for _, s := range scenario.Library() {
			fmt.Printf("%-16s %s\n", s.Name, s.Description)
		}
		return 0
	}
	if *dump != "" {
		s, ok := scenario.Lookup(*dump)
		if !ok {
			fmt.Fprintf(os.Stderr, "agar-suite: unknown scenario %q; -list shows the library\n", *dump)
			return 2
		}
		data, err := json.MarshalIndent(s, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "agar-suite: %v\n", err)
			return 1
		}
		fmt.Println(string(data))
		return 0
	}
	if *scale <= 0 || *scale > 1 {
		fmt.Fprintf(os.Stderr, "agar-suite: -scale %v outside (0, 1]\n", *scale)
		return 2
	}
	if *soakScale <= 0 || *soakScale > 1 {
		fmt.Fprintf(os.Stderr, "agar-suite: -soakscale %v outside (0, 1]\n", *soakScale)
		return 2
	}
	if *soakCheck != "" {
		return checkSoak(*soakCheck)
	}

	// Spec files run alongside an explicit -scenario selection; with -spec
	// alone, only the files run.
	scenarioSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "scenario" {
			scenarioSet = true
		}
	})
	var specs []scenario.Spec
	if *specFile != "" {
		for _, p := range strings.Split(*specFile, ",") {
			s, err := scenario.LoadSpecFile(strings.TrimSpace(p))
			if err != nil {
				fmt.Fprintf(os.Stderr, "agar-suite: %v\n", err)
				return 2
			}
			specs = append(specs, s)
		}
	}
	// -soak alone runs only the soak; an explicit -scenario adds the
	// library back alongside it.
	if (*specFile == "" && !*soak) || scenarioSet {
		if *name == "all" {
			specs = append(specs, scenario.Library()...)
		} else {
			for _, n := range strings.Split(*name, ",") {
				s, ok := scenario.Lookup(strings.TrimSpace(n))
				if !ok {
					fmt.Fprintf(os.Stderr, "agar-suite: unknown scenario %q; -list shows the library\n", n)
					return 2
				}
				specs = append(specs, s)
			}
		}
	}

	opts := scenario.Options{OpCap: *opCap, WarmupOps: *warmup, Seed: *seed}
	if *warmup == 0 {
		opts.WarmupOps = -1 // flag 0 means "no warm-up", not "use the default"
	}
	if *armsFlag != "" {
		for _, a := range strings.Split(*armsFlag, ",") {
			strat, err := scenario.ParseArm(strings.TrimSpace(a), *chunks)
			if err != nil {
				fmt.Fprintf(os.Stderr, "agar-suite: %v\n", err)
				return 2
			}
			opts.Arms = append(opts.Arms, strat)
		}
	} else if *chunks != 3 {
		opts.Arms = scenario.DefaultArms(*chunks)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "agar-suite: %v\n", err)
		return 1
	}

	suite := suiteReport{
		Schema:    "agar/scenario-suite/v1",
		Generated: time.Now().UTC().Format(time.RFC3339),
		Seed:      *seed,
	}
	var md strings.Builder
	md.WriteString("# Agar scenario suite\n")
	fmt.Fprintf(&md, "\ngenerated %s · seed %d · scale %g\n", suite.Generated, *seed, *scale)

	switch *coh {
	case "", scenario.CoherenceVersioned, scenario.CoherenceNone, scenario.CoherencePaired:
	default:
		fmt.Fprintf(os.Stderr, "agar-suite: -coherence %q (want versioned|none|paired)\n", *coh)
		return 2
	}

	failed := 0
	for _, spec := range specs {
		if *objects > 0 {
			spec.Objects = *objects
		}
		// The coherence override only applies to scenarios that mutate —
		// a read-only spec with a coherence mode would fail validation.
		if *coh != "" {
			for _, p := range spec.Phases {
				if p.Updates > 0 || p.RMW > 0 {
					spec.Coherence = *coh
					break
				}
			}
		}
		runSpec := spec
		if *scale != 1 {
			runSpec = spec.Scale(*scale)
		}
		start := time.Now()
		rep, err := scenario.Run(runSpec, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "agar-suite: scenario %s: %v\n", spec.Name, err)
			failed++
			continue
		}
		suite.Scenarios = append(suite.Scenarios, rep)
		repMD := rep.Markdown()
		md.WriteString("\n" + repMD)
		if !*quiet {
			fmt.Println(repMD)
		}
		fmt.Fprintf(os.Stderr, "agar-suite: %s done in %v\n", spec.Name, time.Since(start).Round(time.Millisecond))

		if *live {
			traces := *trace
			if traces == 0 {
				traces = -1 // flag 0 means "no traces", not "use the default"
			}
			lr, err := scenario.RunLiveSmoke(runSpec, scenario.LiveOptions{Seed: *seed, Ops: *liveOps, Traces: traces})
			if err != nil {
				fmt.Fprintf(os.Stderr, "agar-suite: scenario %s live smoke: %v\n", spec.Name, err)
				failed++
				continue
			}
			suite.LiveSmokes = append(suite.LiveSmokes, lr)
			fmt.Fprintf(&md, "\nLive smoke (`%s`, phase %s): %d reads, mean %.1f ms, p95 %.1f ms, %d cache chunk hits, %d errors\n",
				lr.Scenario, lr.Phase, lr.Latency.Count, lr.Latency.MeanMS, lr.Latency.P95MS, lr.CacheChunks, lr.Errors)
			if lr.PeerRegion != "" {
				fmt.Fprintf(&md, "\nCoop mesh (peer `%s`): %d peer chunks, peer server %d hits / %d misses, digest age %d ms",
					lr.PeerRegion, lr.PeerChunks, lr.PeerHits, lr.PeerMisses, lr.DigestAgeMS)
				if lr.PeerReads != nil && lr.PeerReads.Count > 0 && lr.WANReads != nil && lr.WANReads.Count > 0 {
					fmt.Fprintf(&md, "; peer-assisted reads mean %.1f ms vs WAN reads %.1f ms",
						lr.PeerReads.MeanMS, lr.WANReads.MeanMS)
				}
				md.WriteString("\n")
			}
			md.WriteString(lr.MetricsMarkdown())
			if lr.Errors > 0 {
				failed++
			}

			// Scenarios that declare a dispatch-mode pair additionally
			// replay every phase live once per mode, pairing throughput.
			if len(runSpec.DispatchModes) > 0 {
				dr, err := scenario.RunLiveDispatch(runSpec, scenario.LiveOptions{Seed: *seed, Ops: *liveOps})
				if err != nil {
					fmt.Fprintf(os.Stderr, "agar-suite: scenario %s live dispatch: %v\n", spec.Name, err)
					failed++
					continue
				}
				suite.LiveDispatch = append(suite.LiveDispatch, dr)
				md.WriteString("\n" + dr.Markdown())
				if !*quiet {
					fmt.Println(dr.Markdown())
				}
			}
		}
	}

	if len(suite.Scenarios) > 0 {
		data, err := json.MarshalIndent(suite, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "agar-suite: encode: %v\n", err)
			return 1
		}
		jsonPath := filepath.Join(*out, "BENCH_scenario.json")
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "agar-suite: %v\n", err)
			return 1
		}
		mdPath := filepath.Join(*out, "SCENARIOS.md")
		// agar-bench -load and agar-suite -soak maintain marker-fenced
		// sections in the same file; carry them forward verbatim so a suite
		// rerun never erases the latest load curve or soak timeline.
		if old, err := os.ReadFile(mdPath); err == nil {
			for _, m := range [][2]string{
				{scenario.LoadSectionBegin, scenario.LoadSectionEnd},
				{scenario.SoakSectionBegin, scenario.SoakSectionEnd},
			} {
				if block, ok := scenario.ExtractMarked(string(old), m[0], m[1]); ok {
					md.WriteString("\n" + block + "\n")
				}
			}
		}
		if err := os.WriteFile(mdPath, []byte(md.String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "agar-suite: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "agar-suite: wrote %s and %s\n", jsonPath, mdPath)
	}

	// The soak runs after the suite rewrite so its splice lands in the
	// fresh SCENARIOS.md rather than being overwritten by it.
	if *soak {
		s := scenario.LongSoak()
		if *soakScale != 1 {
			s = s.Scale(*soakScale)
		}
		start := time.Now()
		rep, err := scenario.RunSoak(s, scenario.Options{Seed: *seed})
		if err != nil {
			fmt.Fprintf(os.Stderr, "agar-suite: soak: %v\n", err)
			return 1
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "agar-suite: encode soak: %v\n", err)
			return 1
		}
		soakPath := filepath.Join(*out, "BENCH_soak.json")
		if err := os.WriteFile(soakPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "agar-suite: %v\n", err)
			return 1
		}
		mdPath := filepath.Join(*out, "SCENARIOS.md")
		doc := ""
		if old, err := os.ReadFile(mdPath); err == nil {
			doc = string(old)
		}
		doc = scenario.SpliceMarked(doc, scenario.SoakSectionBegin, scenario.SoakSectionEnd, rep.Markdown())
		if err := os.WriteFile(mdPath, []byte(doc), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "agar-suite: %v\n", err)
			return 1
		}
		if !*quiet {
			fmt.Println(rep.Markdown())
		}
		fmt.Fprintf(os.Stderr, "agar-suite: soak done in %v, wrote %s (section spliced into %s)\n",
			time.Since(start).Round(time.Millisecond), soakPath, mdPath)
	}

	if failed > 0 {
		fmt.Fprintf(os.Stderr, "agar-suite: %d scenario(s) failed\n", failed)
		return 1
	}
	return 0
}

// checkSoak validates a BENCH_soak.json: schema, both arms present with
// samples, the baseline arm alert- and drift-free, and every brownout
// alert resolved by the end of the timeline. Exit 0 when clean, 1 with
// one line per problem otherwise.
func checkSoak(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "agar-suite: soakcheck: %v\n", err)
		return 1
	}
	var rep scenario.SoakReport
	if err := json.Unmarshal(data, &rep); err != nil {
		fmt.Fprintf(os.Stderr, "agar-suite: soakcheck %s: %v\n", path, err)
		return 1
	}
	var problems []string
	if rep.Schema != scenario.SoakSchema {
		problems = append(problems, fmt.Sprintf("schema %q, want %q", rep.Schema, scenario.SoakSchema))
	}
	base, brown := rep.Arm("baseline"), rep.Arm("brownout")
	if base == nil {
		problems = append(problems, "missing baseline arm")
	}
	if brown == nil {
		problems = append(problems, "missing brownout arm")
	}
	if base != nil && brown != nil {
		for _, arm := range []*scenario.SoakArmReport{base, brown} {
			if len(arm.Samples) == 0 || arm.TotalOps == 0 {
				problems = append(problems, fmt.Sprintf("arm %s has no measurements", arm.Arm))
			}
		}
		if base.FiringCount != 0 {
			problems = append(problems, fmt.Sprintf("baseline arm fired %d alerts, want 0", base.FiringCount))
		}
		if base.DriftFlagged != 0 {
			problems = append(problems, fmt.Sprintf("baseline arm flagged %d drift findings, want 0", base.DriftFlagged))
		}
		for _, r := range rep.Rules {
			if len(brown.FiringOffsets(r.Name)) > 0 && !brown.ResolvedAfter(r.Name) {
				problems = append(problems, fmt.Sprintf("brownout rule %s stuck firing at the end of the timeline", r.Name))
			}
		}
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintf(os.Stderr, "agar-suite: soakcheck %s: %s\n", path, p)
		}
		return 1
	}
	firing := 0
	if brown != nil {
		firing = brown.FiringCount
	}
	fmt.Printf("soakcheck %s: ok (%.1f virtual hours, baseline clean, brownout fired %d and resolved)\n",
		path, rep.VirtualMS/3.6e6, firing)
	return 0
}

// suiteReport is the top-level BENCH_scenario.json document.
type suiteReport struct {
	Schema       string                         `json:"schema"`
	Generated    string                         `json:"generated"`
	Seed         int64                          `json:"seed"`
	Scenarios    []*scenario.Report             `json:"scenarios"`
	LiveSmokes   []*scenario.LiveResult         `json:"live_smokes,omitempty"`
	LiveDispatch []*scenario.LiveDispatchReport `json:"live_dispatch,omitempty"`
}
