// Command blob-server runs the S3-style blob gateway: chunk objects in
// named buckets over GET/PUT/DELETE/LIST at /v1/<bucket>/<key>/<chunk>.
// It is the live stand-in for a real object store — the remote blob-store
// adapter points at it, and its chaos flags emulate a slow or flaky
// storage tier for end-to-end experiments.
//
// Usage:
//
//	blob-server -addr 127.0.0.1:7201                     # in-memory buckets
//	blob-server -addr 127.0.0.1:7201 -store disk -dir /var/lib/agar-blobs
//	blob-server -addr 127.0.0.1:7201 -latency 40ms -error-rate 0.02
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"github.com/agardist/agar/internal/metrics"
	"github.com/agardist/agar/internal/monitor"
	"github.com/agardist/agar/internal/store"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7201", "listen address")
		kind     = flag.String("store", "mem", "bucket persistence: mem|disk")
		dir      = flag.String("dir", "", "disk store root directory (required with -store disk)")
		latency  = flag.Duration("latency", 0, "injected per-request service latency")
		errRate  = flag.Float64("error-rate", 0, "injected per-request failure probability in [0,1]")
		seed     = flag.Int64("seed", 1, "seed for the deterministic failure stream")
		metricsA = flag.String("metrics-addr", "", "serve Prometheus-format /metrics on this address (off when empty)")
	)
	flag.Parse()

	if *kind == store.KindRemote {
		fatalf("-store remote is the client adapter; a gateway persists with mem or disk")
	}
	if *errRate < 0 || *errRate > 1 {
		fatalf("-error-rate %v outside [0,1]", *errRate)
	}
	bs, err := store.Open(store.Config{
		Kind: *kind, Dir: *dir,
		Latency: *latency, ErrRate: *errRate, Seed: *seed,
	})
	if err != nil {
		fatalf("%v", err)
	}
	reg := metrics.NewRegistry()
	bs = store.WithMetrics(bs, reg, *kind)
	metricsSrv := serveMetrics(*metricsA, reg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("%v", err)
	}
	srv := &http.Server{Handler: store.NewGatewayWith(bs, reg)}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fatalf("%v", err)
		}
	}()
	fmt.Printf("blob-server: store=%s listening on %s", *kind, ln.Addr())
	if *latency > 0 || *errRate > 0 {
		fmt.Printf(" (chaos: latency=%v error-rate=%g)", *latency, *errRate)
	}
	fmt.Println()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("blob-server: shutting down")
	if metricsSrv != nil {
		metricsSrv.Close()
	}
	srv.Close()
	bs.Close()
}

// serveMetrics mounts the debug surface — /metrics, /debug/health, and
// the pprof handlers — when addr is set; returns nil (disabled) when it
// is empty. The blob gateway speaks HTTP, not the Agar wire protocol, so
// it has no frame trace recorder and no /debug/traces.
func serveMetrics(addr string, reg *metrics.Registry) *http.Server {
	if addr == "" {
		return nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatalf("metrics listen %s: %v", addr, err)
	}
	mux := http.NewServeMux()
	health := monitor.NewRegistryHealth("blob-server", reg, monitor.DefaultServerRules())
	metrics.MountDebug(mux, reg, nil, health)
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	fmt.Printf("blob-server: metrics on http://%s/metrics, health on /debug/health, profiles on /debug/pprof/\n", ln.Addr())
	return srv
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "blob-server: "+format+"\n", args...)
	os.Exit(1)
}
