package agar_test

// Docs-consistency suite: these tests are the enforcement half of the
// documentation (docs/ARCHITECTURE.md, docs/WIRE.md, package godoc). CI
// runs them as a named step; they also run with the ordinary test suite,
// so documentation drift fails tier-1 verification.

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// packageDirs returns every internal/* and cmd/* directory containing Go
// files, plus the repository root.
func packageDirs(t *testing.T) []string {
	t.Helper()
	dirs := []string{"."}
	for _, root := range []string{"internal", "cmd", "examples"} {
		entries, err := os.ReadDir(root)
		if err != nil {
			t.Fatalf("read %s: %v", root, err)
		}
		for _, e := range entries {
			if e.IsDir() {
				dirs = append(dirs, filepath.Join(root, e.Name()))
			}
		}
	}
	return dirs
}

// TestDocsPackageComments fails if any package — the root, every
// internal/* package, every cmd/* main, every example — lacks a godoc
// package comment. The comment is the package's statement of what it
// models from the paper and its key entry points; a new package without
// one fails here, not in review.
func TestDocsPackageComments(t *testing.T) {
	for _, dir := range packageDirs(t) {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			t.Fatalf("parse %s: %v", dir, err)
		}
		for name, pkg := range pkgs {
			documented := false
			for _, f := range pkg.Files {
				if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
					documented = true
					break
				}
			}
			if !documented {
				t.Errorf("package %s (%s) has no package comment", name, dir)
			}
		}
	}
}

// markdownFiles are the documents the link check walks.
func markdownFiles(t *testing.T) []string {
	t.Helper()
	files := []string{"README.md", "SCENARIOS.md", "ROADMAP.md"}
	docs, err := filepath.Glob("docs/*.md")
	if err != nil {
		t.Fatal(err)
	}
	return append(files, docs...)
}

var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocsMarkdownLinks checks every relative markdown link in README.md,
// docs/*.md, SCENARIOS.md and ROADMAP.md resolves to a file that exists
// (anchors are stripped; external URLs are skipped).
func TestDocsMarkdownLinks(t *testing.T) {
	for _, file := range markdownFiles(t) {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatalf("read %s: %v", file, err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue // same-document anchor
			}
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (%s)", file, m[1], resolved)
			}
		}
	}
}

// TestDocsWireReference fails when docs/WIRE.md drifts from the protocol:
// every Op* opcode constant and every Header field declared in
// internal/wire/wire.go must be mentioned in the reference, as must the
// batch and frame limit constants.
func TestDocsWireReference(t *testing.T) {
	doc, err := os.ReadFile("docs/WIRE.md")
	if err != nil {
		t.Fatalf("read docs/WIRE.md: %v", err)
	}
	text := string(doc)

	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "internal/wire/wire.go", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	var missing []string
	require := func(name, kind string) {
		if !strings.Contains(text, name) {
			missing = append(missing, fmt.Sprintf("%s %s", kind, name))
		}
	}
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok {
			continue
		}
		switch gd.Tok {
		case token.CONST:
			for _, spec := range gd.Specs {
				vs := spec.(*ast.ValueSpec)
				for _, n := range vs.Names {
					if strings.HasPrefix(n.Name, "Op") || strings.HasPrefix(n.Name, "Max") {
						require(n.Name, "constant")
					}
				}
			}
		case token.TYPE:
			for _, spec := range gd.Specs {
				ts := spec.(*ast.TypeSpec)
				if ts.Name.Name != "Header" {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					for _, n := range field.Names {
						require(n.Name, "Header field")
					}
				}
			}
		}
	}
	if len(missing) > 0 {
		t.Errorf("docs/WIRE.md missing: %s", strings.Join(missing, ", "))
	}
}

// TestDocsMetricsReference fails when docs/METRICS.md drifts from the
// metric catalog: every Name* constant declared in
// internal/metrics/names.go must have its metric name documented in the
// reference — the METRICS.md twin of the WIRE.md opcode gate.
func TestDocsMetricsReference(t *testing.T) {
	doc, err := os.ReadFile("docs/METRICS.md")
	if err != nil {
		t.Fatalf("read docs/METRICS.md: %v", err)
	}
	text := string(doc)

	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "internal/metrics/names.go", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	var missing []string
	checked := 0
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs := spec.(*ast.ValueSpec)
			for i, n := range vs.Names {
				if !strings.HasPrefix(n.Name, "Name") || i >= len(vs.Values) {
					continue
				}
				lit, ok := vs.Values[i].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					continue
				}
				name := strings.Trim(lit.Value, `"`)
				checked++
				if !strings.Contains(text, "`"+name+"`") {
					missing = append(missing, name)
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no Name* constants found in internal/metrics/names.go")
	}
	if len(missing) > 0 {
		t.Errorf("docs/METRICS.md missing: %s", strings.Join(missing, ", "))
	}
}

// TestDocsSuiteExists pins the documentation map's anchors: the files the
// README links as the documentation entry points must exist and be
// non-trivial.
func TestDocsSuiteExists(t *testing.T) {
	for _, file := range []string{"docs/ARCHITECTURE.md", "docs/METRICS.md", "docs/MONITORING.md", "docs/PERFORMANCE.md", "docs/TRACING.md", "docs/WIRE.md", "SCENARIOS.md", "README.md"} {
		info, err := os.Stat(file)
		if err != nil {
			t.Fatalf("%s missing: %v", file, err)
		}
		if info.Size() < 1024 {
			t.Errorf("%s suspiciously small (%d bytes)", file, info.Size())
		}
	}
}
