package agar

import (
	"fmt"
	"time"

	"github.com/agardist/agar/internal/cache"
	"github.com/agardist/agar/internal/client"
	"github.com/agardist/agar/internal/core"
	"github.com/agardist/agar/internal/geo"
)

// ReadStats describes one read through a client.
type ReadStats struct {
	// Latency is the modelled end-to-end latency of the read.
	Latency time.Duration
	// CacheChunks, PeerChunks and BackendChunks count where chunks came
	// from (local cache, cooperative peer cache, backend regions).
	CacheChunks, PeerChunks, BackendChunks int
	// FullHit / PartialHit classify the read for hit-ratio accounting.
	FullHit, PartialHit bool
}

// Client reads objects from a cluster under some caching strategy.
type Client struct {
	reader client.Reader
	node   *core.Node
	env    *client.Env
	region Region
}

func (c *Cluster) env() *client.Env {
	return &client.Env{
		Cluster:        c.backend,
		Matrix:         c.matrix,
		Sampler:        c.sampler,
		CacheLatency:   c.cfg.cacheLatency,
		DecodeLatency:  c.cfg.decodeLatency,
		MonitorLatency: c.cfg.monitorLatency,
	}
}

// NewBackendClient returns a client that always reads the k nearest chunks
// from the backend (the paper's Backend baseline).
func (c *Cluster) NewBackendClient(region Region) *Client {
	env := c.env()
	return &Client{reader: client.NewBackendReader(env, region), env: env, region: region}
}

// NewLRUClient returns a client reading through a local LRU cache that
// keeps `chunks` chunks per object in `cacheBytes` of memory (LRU-c).
func (c *Cluster) NewLRUClient(region Region, chunks int, cacheBytes int64) *Client {
	env := c.env()
	return &Client{
		reader: client.NewFixedReader(env, region, cache.NewLRU(), chunks, cacheBytes),
		env:    env,
		region: region,
	}
}

// NewLFUClient returns a client reading through a local LFU cache (LFU-c).
func (c *Cluster) NewLFUClient(region Region, chunks int, cacheBytes int64) *Client {
	env := c.env()
	return &Client{
		reader: client.NewFixedReader(env, region, cache.NewLFU(), chunks, cacheBytes),
		env:    env,
		region: region,
	}
}

// NewAgarClient returns a client reading through a region-local Agar node
// with the given cache budget. chunkBytes is the slot unit used to convert
// the budget into knapsack capacity — pass Cluster.ChunkSize(objectSize)
// for uniform objects.
func (c *Cluster) NewAgarClient(region Region, cacheBytes, chunkBytes int64) (*Client, error) {
	if chunkBytes <= 0 {
		return nil, fmt.Errorf("agar: chunkBytes must be positive")
	}
	env := c.env()
	node := core.NewNode(core.NodeParams{
		Region:         region,
		Regions:        c.backend.Regions(),
		Placement:      c.backend.Placement(),
		K:              c.codec.K(),
		M:              c.codec.M(),
		CacheBytes:     cacheBytes,
		ChunkBytes:     chunkBytes,
		ReconfigPeriod: c.cfg.reconfigPeriod,
		CacheLatency:   c.cfg.cacheLatency,
	})
	node.RegionManager().WarmUp(func(r geo.RegionID) time.Duration {
		return c.sampler.Chunk(region, r)
	}, 3)
	return &Client{
		reader: client.NewAgarReader(env, region, node),
		node:   node,
		env:    env,
		region: region,
	}, nil
}

// Get reads one object and reports the read's accounting.
func (cl *Client) Get(key string) ([]byte, ReadStats, error) {
	data, res, err := cl.reader.Read(key)
	return data, ReadStats{
		Latency:       res.Latency,
		CacheChunks:   res.CacheChunks,
		PeerChunks:    res.PeerChunks,
		BackendChunks: res.BackendChunks,
		FullHit:       res.FullHit,
		PartialHit:    res.PartialHit,
	}, err
}

// Strategy returns the client's strategy name ("agar", "lru-3", "backend").
func (cl *Client) Strategy() string { return cl.reader.Name() }

// Region returns the client's region.
func (cl *Client) Region() Region { return cl.region }

// Reconfigure forces the Agar node (if any) to recompute its cache
// configuration immediately. For virtual-time runs, call MaybeReconfigure
// with the simulation clock instead.
func (cl *Client) Reconfigure() {
	if cl.node != nil {
		cl.node.ForceReconfigure()
	}
}

// MaybeReconfigure reconfigures the Agar node if its period has elapsed at
// the given instant; it reports whether a reconfiguration ran.
func (cl *Client) MaybeReconfigure(now time.Time) bool {
	if cl.node == nil {
		return false
	}
	return cl.node.MaybeReconfigure(now)
}

// CacheContents returns, per object, the chunk indices currently resident
// in the client's cache (Agar and LRU/LFU clients; nil for backend
// clients).
func (cl *Client) CacheContents() map[string][]int {
	switch r := cl.reader.(type) {
	case *client.AgarReader:
		return r.Node().Cache().Snapshot()
	case *client.FixedReader:
		return r.Cache().Snapshot()
	default:
		return nil
	}
}

// Peer registers another Agar client's cache as a cooperative peer (the
// paper's §VI extension): this client's node revalues its caching options
// against the peer's residency and its reads fetch peer-resident chunks at
// the given latency instead of crossing the WAN. Both arguments must be
// Agar clients.
func (cl *Client) Peer(other *Client, latency time.Duration) error {
	if cl.node == nil || other.node == nil {
		return fmt.Errorf("agar: cooperative peering requires Agar clients")
	}
	cl.node.AddPeer(other.node.Region(), other.node.Cache(), latency)
	return nil
}
