// Package cache implements the byte-bounded in-memory chunk cache Agar and
// its baselines run against — the stand-in for the paper's memcached
// deployment.
//
// Cache items are erasure-coded chunks identified by (object key, chunk
// index), matching how the paper's prototype stores data in memcached.
// Eviction is pluggable: LRU and LFU reproduce the baseline policies of §V,
// and the Pinned policy gives Agar's cache manager full manual control.
package cache

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Errors returned by the cache.
var (
	ErrTooLarge  = errors.New("cache: item larger than cache capacity")
	ErrCacheFull = errors.New("cache: full and the policy refuses eviction")
	ErrNotFound  = errors.New("cache: not found")
)

// EntryID identifies one cached chunk.
type EntryID struct {
	Key   string // object key
	Index int    // chunk index within the object
}

// String renders the id in "key#index" form.
func (id EntryID) String() string { return fmt.Sprintf("%s#%d", id.Key, id.Index) }

// entry is one resident chunk.
type entry struct {
	id   EntryID
	data []byte

	// intrusive LRU list links (also reused as the per-frequency list by LFU)
	prev, next *entry
	freq       int64
}

// Policy decides which resident entry to evict. Implementations are not
// safe for concurrent use; the Cache serialises all calls under its lock.
type Policy interface {
	// Name returns the policy's short name ("lru", "lfu", "pinned").
	Name() string
	// Added notifies the policy of a newly inserted entry.
	Added(e *entry)
	// Accessed notifies the policy that an entry was read.
	Accessed(e *entry)
	// Removed notifies the policy that an entry left the cache.
	Removed(e *entry)
	// Victim returns the entry to evict next, or nil to refuse eviction.
	Victim() *entry
}

// Stats counts cache-level events. Hit accounting at object granularity
// (full vs partial hits, Figure 7) lives in the client, which knows how many
// chunks it asked for.
type Stats struct {
	Gets      int64 // chunk lookups
	Hits      int64 // chunk lookups that found the chunk
	Sets      int64 // successful inserts (including overwrites)
	Evictions int64 // entries evicted to make room
	Rejected  int64 // inserts refused (full under a non-evicting policy)
}

// Cache is a byte-bounded chunk store with pluggable eviction. It is safe
// for concurrent use.
type Cache struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	policy   Policy
	entries  map[EntryID]*entry
	byKey    map[string]map[int]*entry // object key -> chunk index -> entry
	admit    func(EntryID) bool
	stats    Stats
}

// New returns a cache bounded to capacity bytes under the given policy.
func New(capacity int64, policy Policy) *Cache {
	if capacity <= 0 {
		panic("cache: capacity must be positive")
	}
	if policy == nil {
		panic("cache: nil policy")
	}
	return &Cache{
		capacity: capacity,
		policy:   policy,
		entries:  make(map[EntryID]*entry),
		byKey:    make(map[string]map[int]*entry),
	}
}

// SetAdmission installs an admission filter: inserts for ids the filter
// rejects are dropped (counted in Stats.Rejected). A nil filter admits
// everything.
func (c *Cache) SetAdmission(f func(EntryID) bool) {
	c.mu.Lock()
	c.admit = f
	c.mu.Unlock()
}

// Capacity returns the configured byte capacity.
func (c *Cache) Capacity() int64 { return c.capacity }

// Used returns the bytes currently resident.
func (c *Cache) Used() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Len returns the number of resident chunks.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns a snapshot of the event counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Get returns a copy of the chunk's bytes, or ErrNotFound.
func (c *Cache) Get(id EntryID) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Gets++
	e, ok := c.entries[id]
	if !ok {
		return nil, ErrNotFound
	}
	c.stats.Hits++
	c.policy.Accessed(e)
	out := make([]byte, len(e.data))
	copy(out, e.data)
	return out, nil
}

// Contains reports chunk residency without counting as an access.
func (c *Cache) Contains(id EntryID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[id]
	return ok
}

// GetObject returns copies of every resident chunk of the object, keyed by
// chunk index. Each returned chunk counts as one access. The map is empty
// (never nil) when nothing is resident.
func (c *Cache) GetObject(key string) map[int][]byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[int][]byte)
	for idx, e := range c.byKey[key] {
		c.stats.Gets++
		c.stats.Hits++
		c.policy.Accessed(e)
		buf := make([]byte, len(e.data))
		copy(buf, e.data)
		out[idx] = buf
	}
	return out
}

// IndicesOf returns the sorted chunk indices of the object that are
// resident, without counting accesses.
func (c *Cache) IndicesOf(key string) []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	chunks := c.byKey[key]
	out := make([]int, 0, len(chunks))
	for idx := range chunks {
		out = append(out, idx)
	}
	sort.Ints(out)
	return out
}

// Put inserts (or overwrites) a chunk, evicting under the policy until it
// fits. The data is copied. It returns ErrTooLarge if the item alone
// exceeds capacity, and ErrCacheFull if the policy refuses to evict.
func (c *Cache) Put(id EntryID, data []byte) error {
	size := int64(len(data))
	if size > c.capacity {
		return ErrTooLarge
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	if c.admit != nil && !c.admit(id) {
		c.stats.Rejected++
		return nil
	}

	if old, ok := c.entries[id]; ok {
		c.removeLocked(old)
	}

	for c.used+size > c.capacity {
		victim := c.policy.Victim()
		if victim == nil {
			c.stats.Rejected++
			return ErrCacheFull
		}
		c.stats.Evictions++
		c.removeLocked(victim)
	}

	e := &entry{id: id, data: append([]byte(nil), data...)}
	c.entries[id] = e
	chunks := c.byKey[id.Key]
	if chunks == nil {
		chunks = make(map[int]*entry)
		c.byKey[id.Key] = chunks
	}
	chunks[id.Index] = e
	c.used += size
	c.policy.Added(e)
	c.stats.Sets++
	return nil
}

// Delete removes a chunk if resident and reports whether it was.
func (c *Cache) Delete(id EntryID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[id]
	if !ok {
		return false
	}
	c.removeLocked(e)
	return true
}

// DeleteObject removes every resident chunk of the object and returns how
// many were removed.
func (c *Cache) DeleteObject(key string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	chunks := c.byKey[key]
	n := len(chunks)
	for _, e := range chunks {
		c.removeLocked(e)
	}
	return n
}

// Clear empties the cache.
func (c *Cache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.entries {
		c.removeLocked(e)
	}
}

// Snapshot returns, for every resident object, its sorted resident chunk
// indices. This is the raw material of the paper's Figure 10.
func (c *Cache) Snapshot() map[string][]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string][]int, len(c.byKey))
	for key, chunks := range c.byKey {
		idxs := make([]int, 0, len(chunks))
		for idx := range chunks {
			idxs = append(idxs, idx)
		}
		sort.Ints(idxs)
		out[key] = idxs
	}
	return out
}

func (c *Cache) removeLocked(e *entry) {
	delete(c.entries, e.id)
	if chunks := c.byKey[e.id.Key]; chunks != nil {
		delete(chunks, e.id.Index)
		if len(chunks) == 0 {
			delete(c.byKey, e.id.Key)
		}
	}
	c.used -= int64(len(e.data))
	c.policy.Removed(e)
}
