// Package cache implements the byte-bounded in-memory chunk cache Agar and
// its baselines run against — the stand-in for the paper's memcached
// deployment.
//
// Cache items are erasure-coded chunks identified by (object key, chunk
// index), matching how the paper's prototype stores data in memcached.
// Eviction is pluggable: LRU and LFU reproduce the baseline policies of §V,
// and the Pinned policy gives Agar's cache manager full manual control.
//
// The store is internally sharded, the way memcached stripes its hash table
// and LRU locks: entries hash to one of N power-of-two shards, each with
// its own mutex, policy instance and byte budget, so concurrent chunk
// operations on different shards never contend. New builds the single-shard
// cache (exact global eviction order, the semantics the simulator and the
// knapsack manager were written against); NewSharded fans the same engine
// out for heavy client fan-in.
package cache

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Errors returned by the cache.
var (
	ErrTooLarge  = errors.New("cache: item larger than cache capacity")
	ErrCacheFull = errors.New("cache: full and the policy refuses eviction")
	ErrNotFound  = errors.New("cache: not found")
)

// EntryID identifies one cached chunk.
type EntryID struct {
	Key   string // object key
	Index int    // chunk index within the object
}

// String renders the id in "key#index" form.
func (id EntryID) String() string { return fmt.Sprintf("%s#%d", id.Key, id.Index) }

// entry is one resident chunk.
type entry struct {
	id   EntryID
	data []byte
	// ver is the hybrid-logical-clock version the chunk was written at
	// (hlc.Timestamp as a uint64); zero for unversioned chunks. The cache
	// stores it verbatim — admission against version floors is the caller's
	// job (coherence.VersionTable on live servers).
	ver uint64

	// intrusive LRU list links (also reused as the per-frequency list by LFU)
	prev, next *entry
	freq       int64
}

// Policy decides which resident entry to evict. Implementations are not
// safe for concurrent use; each shard serialises all calls to its own
// policy instance under the shard lock.
type Policy interface {
	// Name returns the policy's short name ("lru", "lfu", "pinned").
	Name() string
	// Added notifies the policy of a newly inserted entry.
	Added(e *entry)
	// Accessed notifies the policy that an entry was read.
	Accessed(e *entry)
	// Removed notifies the policy that an entry left the cache.
	Removed(e *entry)
	// Victim returns the entry to evict next, or nil to refuse eviction.
	Victim() *entry
}

// Stats counts cache-level events. Hit accounting at object granularity
// (full vs partial hits, Figure 7) lives in the client, which knows how many
// chunks it asked for.
type Stats struct {
	Gets      int64 // chunk lookups
	Hits      int64 // chunk lookups that found the chunk
	Sets      int64 // successful inserts (including overwrites)
	Evictions int64 // entries evicted to make room
	// AdmissionRejects counts inserts dropped by the admission filter
	// (chunks outside the active knapsack configuration).
	AdmissionRejects int64
	// FullRejects counts inserts refused because the cache was full and the
	// policy declined to evict (Pinned under explicit management).
	FullRejects int64
}

// Rejected returns the total refused inserts, both admission-filter drops
// and policy refusals.
func (s Stats) Rejected() int64 { return s.AdmissionRejects + s.FullRejects }

// counters is the shard-local atomic form of Stats: shards bump counters
// without coordinating, and Stats() folds them lock-free.
type counters struct {
	gets, hits, sets, evictions   atomic.Int64
	admissionRejects, fullRejects atomic.Int64
}

// shard is one stripe of the cache: a private mutex, policy instance and
// byte budget over a slice of the entry space.
type shard struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	policy   Policy
	entries  map[EntryID]*entry
	byKey    map[string]map[int]*entry // object key -> chunk index -> entry
	admit    func(EntryID) bool
	stats    counters
}

// Cache is a byte-bounded chunk store with pluggable eviction. It is safe
// for concurrent use. Entries stripe over power-of-two shards by
// hash(EntryID); object-level operations (GetObject, Snapshot,
// DeleteObject, IndicesOf) aggregate across shards.
type Cache struct {
	shards   []*shard
	capacity int64
}

// New returns a single-shard cache bounded to capacity bytes under the
// given policy: one lock, one policy instance, exact global eviction order.
func New(capacity int64, policy Policy) *Cache {
	if policy == nil {
		panic("cache: nil policy")
	}
	return NewSharded(capacity, 1, func() Policy { return policy })
}

// NewSharded returns a cache striped over the given number of shards, each
// with its own lock, its own policy instance from newPolicy, and an equal
// slice of the byte capacity. The shard count is rounded up to a power of
// two and clamped so every shard keeps a positive budget. Per-shard
// capacity means an insert can be refused when its shard is full even if
// other shards have room — the same trade memcached's striped LRU makes.
func NewSharded(capacity int64, shards int, newPolicy func() Policy) *Cache {
	if capacity <= 0 {
		panic("cache: capacity must be positive")
	}
	if newPolicy == nil {
		panic("cache: nil policy factory")
	}
	if shards < 1 {
		shards = 1
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	for int64(n) > capacity { // keep every shard's budget positive
		n >>= 1
	}
	c := &Cache{shards: make([]*shard, n), capacity: capacity}
	base := capacity / int64(n)
	extra := capacity % int64(n)
	for i := range c.shards {
		cap := base
		if int64(i) < extra {
			cap++
		}
		p := newPolicy()
		if p == nil {
			panic("cache: policy factory returned nil")
		}
		c.shards[i] = &shard{
			capacity: cap,
			policy:   p,
			entries:  make(map[EntryID]*entry),
			byKey:    make(map[string]map[int]*entry),
		}
	}
	return c
}

// StripeIndex returns the shard an id stripes to in a power-of-two stripe
// space of the given size: FNV-1a over the key bytes and chunk index, masked
// to shards-1. It is the single routing function shared by the cache's
// internal sharding and the live server's shard-aware dispatch, so a
// dispatched op always lands on the worker that owns the op's shard lock.
// shards must be a power of two; shards <= 1 always returns 0.
func StripeIndex(id EntryID, shards int) int {
	if shards <= 1 {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(id.Key); i++ {
		h ^= uint64(id.Key[i])
		h *= prime64
	}
	h ^= uint64(uint32(id.Index))
	h *= prime64
	return int(h & uint64(shards-1))
}

// ShardIndex returns the index of the shard the id lives on in this cache —
// StripeIndex over the cache's own shard count.
func (c *Cache) ShardIndex(id EntryID) int {
	return StripeIndex(id, len(c.shards))
}

// shardFor routes an id to its shard.
func (c *Cache) shardFor(id EntryID) *shard {
	return c.shards[StripeIndex(id, len(c.shards))]
}

// SetAdmission installs an admission filter: inserts for ids the filter
// rejects are dropped (counted in Stats.AdmissionRejects). A nil filter
// admits everything. The filter must be safe for concurrent use; it is
// installed on every shard.
func (c *Cache) SetAdmission(f func(EntryID) bool) {
	for _, s := range c.shards {
		s.mu.Lock()
		s.admit = f
		s.mu.Unlock()
	}
}

// Capacity returns the configured byte capacity (summed over shards).
func (c *Cache) Capacity() int64 { return c.capacity }

// ShardCount returns how many shards the cache stripes over.
func (c *Cache) ShardCount() int { return len(c.shards) }

// Used returns the bytes currently resident across all shards.
func (c *Cache) Used() int64 {
	var total int64
	for _, s := range c.shards {
		s.mu.Lock()
		total += s.used
		s.mu.Unlock()
	}
	return total
}

// Len returns the number of resident chunks across all shards.
func (c *Cache) Len() int {
	total := 0
	for _, s := range c.shards {
		s.mu.Lock()
		total += len(s.entries)
		s.mu.Unlock()
	}
	return total
}

// Stats returns a snapshot of the event counters, folded across shards
// without taking any shard lock.
func (c *Cache) Stats() Stats {
	var out Stats
	for _, s := range c.shards {
		out.Gets += s.stats.gets.Load()
		out.Hits += s.stats.hits.Load()
		out.Sets += s.stats.sets.Load()
		out.Evictions += s.stats.evictions.Load()
		out.AdmissionRejects += s.stats.admissionRejects.Load()
		out.FullRejects += s.stats.fullRejects.Load()
	}
	return out
}

// Get returns a copy of the chunk's bytes, or ErrNotFound.
func (c *Cache) Get(id EntryID) ([]byte, error) {
	s := c.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.gets.Add(1)
	e, ok := s.entries[id]
	if !ok {
		return nil, ErrNotFound
	}
	s.stats.hits.Add(1)
	s.policy.Accessed(e)
	out := make([]byte, len(e.data))
	copy(out, e.data)
	return out, nil
}

// GetAppend appends the chunk's bytes to dst and reports whether the chunk
// was resident, counting the lookup exactly like Get. The copy happens
// under the shard lock into caller-owned storage, so a batched read can
// collect every found chunk into one reusable buffer instead of allocating
// per chunk — the cache server's pooled mget reply path. The returned
// slice is dst extended (reallocated by append when dst lacks capacity);
// on a miss dst is returned unchanged.
func (c *Cache) GetAppend(id EntryID, dst []byte) ([]byte, bool) {
	s := c.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.gets.Add(1)
	e, ok := s.entries[id]
	if !ok {
		return dst, false
	}
	s.stats.hits.Add(1)
	s.policy.Accessed(e)
	return append(dst, e.data...), true
}

// GetAppendVer is GetAppend plus the chunk's stored version: it appends
// the chunk's bytes to dst and returns the extended slice, the chunk's
// write version (zero for unversioned chunks and on a miss), and whether
// the chunk was resident. The cache server's versioned mget reply path.
func (c *Cache) GetAppendVer(id EntryID, dst []byte) ([]byte, uint64, bool) {
	s := c.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.gets.Add(1)
	e, ok := s.entries[id]
	if !ok {
		return dst, 0, false
	}
	s.stats.hits.Add(1)
	s.policy.Accessed(e)
	return append(dst, e.data...), e.ver, true
}

// MeanEntryBytes estimates the average resident chunk size — resident
// bytes over resident entries, folded across shards without locking. Zero
// before anything is cached. The live server sizes pooled reply buffers
// and byte-threshold batch-split decisions from it.
func (c *Cache) MeanEntryBytes() int {
	var used, n int64
	for _, s := range c.shards {
		s.mu.Lock()
		used += s.used
		n += int64(len(s.entries))
		s.mu.Unlock()
	}
	if n == 0 {
		return 0
	}
	return int(used / n)
}

// Contains reports chunk residency without counting as an access.
func (c *Cache) Contains(id EntryID) bool {
	s := c.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[id]
	return ok
}

// GetObject returns copies of every resident chunk of the object, keyed by
// chunk index. Each returned chunk counts as one access. The map is empty
// (never nil) when nothing is resident. Shards are visited in turn, so the
// view is per-shard consistent, not a global atomic snapshot.
func (c *Cache) GetObject(key string) map[int][]byte {
	out := make(map[int][]byte)
	for _, s := range c.shards {
		s.mu.Lock()
		for idx, e := range s.byKey[key] {
			s.stats.gets.Add(1)
			s.stats.hits.Add(1)
			s.policy.Accessed(e)
			buf := make([]byte, len(e.data))
			copy(buf, e.data)
			out[idx] = buf
		}
		s.mu.Unlock()
	}
	return out
}

// IndicesOf returns the sorted chunk indices of the object that are
// resident, without counting accesses.
func (c *Cache) IndicesOf(key string) []int {
	var out []int
	for _, s := range c.shards {
		s.mu.Lock()
		for idx := range s.byKey[key] {
			out = append(out, idx)
		}
		s.mu.Unlock()
	}
	sort.Ints(out)
	return out
}

// Put inserts (or overwrites) a chunk, evicting within its shard under the
// shard's policy until it fits. The data is copied. It returns ErrTooLarge
// if the item alone exceeds the shard's capacity, and ErrCacheFull if the
// policy refuses to evict.
func (c *Cache) Put(id EntryID, data []byte) error {
	return c.PutVer(id, data, 0)
}

// PutVer inserts a chunk stamped with its write version (zero for
// unversioned, identical to Put). The version is stored verbatim; callers
// that enforce a version floor check admission before inserting.
func (c *Cache) PutVer(id EntryID, data []byte, ver uint64) error {
	s := c.shardFor(id)
	size := int64(len(data))
	if size > s.capacity {
		return ErrTooLarge
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	if s.admit != nil && !s.admit(id) {
		s.stats.admissionRejects.Add(1)
		return nil
	}

	if old, ok := s.entries[id]; ok {
		s.removeLocked(old)
	}

	for s.used+size > s.capacity {
		victim := s.policy.Victim()
		if victim == nil {
			s.stats.fullRejects.Add(1)
			return ErrCacheFull
		}
		s.stats.evictions.Add(1)
		s.removeLocked(victim)
	}

	e := &entry{id: id, data: append([]byte(nil), data...), ver: ver}
	s.entries[id] = e
	chunks := s.byKey[id.Key]
	if chunks == nil {
		chunks = make(map[int]*entry)
		s.byKey[id.Key] = chunks
	}
	chunks[id.Index] = e
	s.used += size
	s.policy.Added(e)
	s.stats.sets.Add(1)
	return nil
}

// Delete removes a chunk if resident and reports whether it was.
func (c *Cache) Delete(id EntryID) bool {
	s := c.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[id]
	if !ok {
		return false
	}
	s.removeLocked(e)
	return true
}

// DeleteObject removes every resident chunk of the object and returns how
// many were removed.
func (c *Cache) DeleteObject(key string) int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		for _, e := range s.byKey[key] {
			s.removeLocked(e)
			n++
		}
		s.mu.Unlock()
	}
	return n
}

// DropObjectBelow removes every resident chunk of the object whose stored
// version is older than ver — including unversioned (version-zero) chunks,
// which by definition predate any versioned write — and returns how many
// were removed. Chunks at or above ver stay. This is the cache half of
// applying an invalidation: raise the floor, then drop what the floor now
// excludes.
func (c *Cache) DropObjectBelow(key string, ver uint64) int {
	if ver == 0 {
		return 0
	}
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		for _, e := range s.byKey[key] {
			if e.ver < ver {
				s.removeLocked(e)
				n++
			}
		}
		s.mu.Unlock()
	}
	return n
}

// Clear empties the cache.
func (c *Cache) Clear() {
	for _, s := range c.shards {
		s.mu.Lock()
		for _, e := range s.entries {
			s.removeLocked(e)
		}
		s.mu.Unlock()
	}
}

// Snapshot returns, for every resident object, its sorted resident chunk
// indices. This is the raw material of the paper's Figure 10. The view is
// per-shard consistent, not a global atomic snapshot.
func (c *Cache) Snapshot() map[string][]int {
	out := make(map[string][]int)
	for _, s := range c.shards {
		s.mu.Lock()
		for key, chunks := range s.byKey {
			for idx := range chunks {
				out[key] = append(out[key], idx)
			}
		}
		s.mu.Unlock()
	}
	for _, idxs := range out {
		sort.Ints(idxs)
	}
	return out
}

// SnapshotVer returns the Snapshot view plus, for every resident object
// that carries any versioned chunk, the newest chunk version — the raw
// material of version-carrying digests. Objects whose chunks are all
// unversioned do not appear in the version map.
func (c *Cache) SnapshotVer() (map[string][]int, map[string]uint64) {
	groups := make(map[string][]int)
	vers := make(map[string]uint64)
	for _, s := range c.shards {
		s.mu.Lock()
		for key, chunks := range s.byKey {
			for idx, e := range chunks {
				groups[key] = append(groups[key], idx)
				if e.ver > vers[key] {
					vers[key] = e.ver
				}
			}
		}
		s.mu.Unlock()
	}
	for _, idxs := range groups {
		sort.Ints(idxs)
	}
	return groups, vers
}

func (s *shard) removeLocked(e *entry) {
	delete(s.entries, e.id)
	if chunks := s.byKey[e.id.Key]; chunks != nil {
		delete(chunks, e.id.Index)
		if len(chunks) == 0 {
			delete(s.byKey, e.id.Key)
		}
	}
	s.used -= int64(len(e.data))
	s.policy.Removed(e)
}
