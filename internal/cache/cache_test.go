package cache

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func id(key string, idx int) EntryID { return EntryID{Key: key, Index: idx} }

func TestPutGetRoundTrip(t *testing.T) {
	c := New(1024, NewLRU())
	data := []byte("chunk-bytes")
	if err := c.Put(id("obj", 3), data); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get(id("obj", 3))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q", got)
	}
	// Returned slice must be a copy.
	got[0] = 'X'
	again, _ := c.Get(id("obj", 3))
	if again[0] == 'X' {
		t.Fatal("Get returned shared storage")
	}
	// Stored data must be a copy of the caller's slice too.
	data[1] = 'Y'
	again, _ = c.Get(id("obj", 3))
	if again[1] == 'Y' {
		t.Fatal("Put retained caller storage")
	}
}

func TestGetMissing(t *testing.T) {
	c := New(64, NewLRU())
	if _, err := c.Get(id("nope", 0)); err != ErrNotFound {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestPutTooLarge(t *testing.T) {
	c := New(10, NewLRU())
	if err := c.Put(id("big", 0), make([]byte, 11)); err != ErrTooLarge {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestCapacityAccounting(t *testing.T) {
	c := New(100, NewLRU())
	for i := 0; i < 5; i++ {
		if err := c.Put(id("o", i), make([]byte, 20)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Used() != 100 || c.Len() != 5 {
		t.Fatalf("used=%d len=%d", c.Used(), c.Len())
	}
	// Overwrite must not double-count.
	if err := c.Put(id("o", 0), make([]byte, 20)); err != nil {
		t.Fatal(err)
	}
	if c.Used() != 100 || c.Len() != 5 {
		t.Fatalf("after overwrite: used=%d len=%d", c.Used(), c.Len())
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := New(30, NewLRU())
	for i := 0; i < 3; i++ {
		mustPut(t, c, id("o", i), 10)
	}
	// Touch o#0 so o#1 becomes the LRU victim.
	if _, err := c.Get(id("o", 0)); err != nil {
		t.Fatal(err)
	}
	mustPut(t, c, id("o", 3), 10)
	if c.Contains(id("o", 1)) {
		t.Fatal("o#1 should have been evicted")
	}
	for _, i := range []int{0, 2, 3} {
		if !c.Contains(id("o", i)) {
			t.Fatalf("o#%d missing", i)
		}
	}
	if c.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d", c.Stats().Evictions)
	}
}

func TestLRUEvictsMultipleForLargeInsert(t *testing.T) {
	c := New(30, NewLRU())
	for i := 0; i < 3; i++ {
		mustPut(t, c, id("o", i), 10)
	}
	mustPut(t, c, id("big", 0), 25) // needs 3 evictions
	if c.Len() != 1 || !c.Contains(id("big", 0)) {
		t.Fatalf("len=%d", c.Len())
	}
}

func TestLFUEvictionOrder(t *testing.T) {
	c := New(30, NewLFU())
	mustPut(t, c, id("hot", 0), 10)
	mustPut(t, c, id("warm", 0), 10)
	mustPut(t, c, id("cold", 0), 10)
	for i := 0; i < 5; i++ {
		c.Get(id("hot", 0))
	}
	c.Get(id("warm", 0))
	mustPut(t, c, id("new", 0), 10)
	if c.Contains(id("cold", 0)) {
		t.Fatal("cold should have been evicted first")
	}
	if !c.Contains(id("hot", 0)) || !c.Contains(id("warm", 0)) {
		t.Fatal("hot/warm must survive")
	}
}

func TestLFUTieBreaksLRU(t *testing.T) {
	c := New(20, NewLFU())
	mustPut(t, c, id("a", 0), 10)
	mustPut(t, c, id("b", 0), 10)
	// Both freq 1; a is older -> a evicted.
	mustPut(t, c, id("c", 0), 10)
	if c.Contains(id("a", 0)) {
		t.Fatal("LFU tie should evict the least recently used (a)")
	}
	if !c.Contains(id("b", 0)) {
		t.Fatal("b should survive")
	}
}

func TestLFUNewEntryNotImmediatelyReEvicted(t *testing.T) {
	// A new entry starts at freq 1 (the minimum): inserting two new items in
	// a row must evict older freq-1 items, not each other out of order.
	c := New(20, NewLFU())
	mustPut(t, c, id("x", 0), 10)
	c.Get(id("x", 0)) // freq 2
	mustPut(t, c, id("y", 0), 10)
	mustPut(t, c, id("z", 0), 10) // evicts y (freq 1), not x (freq 2)
	if c.Contains(id("y", 0)) || !c.Contains(id("x", 0)) || !c.Contains(id("z", 0)) {
		t.Fatal("LFU evicted the wrong entry")
	}
}

func TestPinnedRefusesEviction(t *testing.T) {
	c := New(20, NewPinned())
	mustPut(t, c, id("a", 0), 10)
	mustPut(t, c, id("b", 0), 10)
	if err := c.Put(id("c", 0), make([]byte, 10)); err != ErrCacheFull {
		t.Fatalf("err = %v, want ErrCacheFull", err)
	}
	if s := c.Stats(); s.FullRejects != 1 || s.AdmissionRejects != 0 || s.Rejected() != 1 {
		t.Fatalf("rejects = %+v", s)
	}
	// Explicit delete makes room.
	c.Delete(id("a", 0))
	if err := c.Put(id("c", 0), make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteObjectAndIndicesOf(t *testing.T) {
	c := New(1000, NewLRU())
	for i := 0; i < 4; i++ {
		mustPut(t, c, id("multi", i*2), 10)
	}
	mustPut(t, c, id("other", 0), 10)
	idxs := c.IndicesOf("multi")
	want := []int{0, 2, 4, 6}
	if len(idxs) != 4 {
		t.Fatalf("IndicesOf = %v", idxs)
	}
	for i := range want {
		if idxs[i] != want[i] {
			t.Fatalf("IndicesOf = %v, want %v", idxs, want)
		}
	}
	if n := c.DeleteObject("multi"); n != 4 {
		t.Fatalf("DeleteObject removed %d", n)
	}
	if c.Len() != 1 || len(c.IndicesOf("multi")) != 0 {
		t.Fatal("object not fully removed")
	}
}

func TestGetObject(t *testing.T) {
	c := New(1000, NewLRU())
	mustPut(t, c, id("o", 1), 5)
	mustPut(t, c, id("o", 7), 5)
	mustPut(t, c, id("p", 0), 5)
	got := c.GetObject("o")
	if len(got) != 2 {
		t.Fatalf("GetObject returned %d chunks", len(got))
	}
	if _, ok := got[1]; !ok {
		t.Fatal("chunk 1 missing")
	}
	if _, ok := got[7]; !ok {
		t.Fatal("chunk 7 missing")
	}
	if got := c.GetObject("absent"); got == nil || len(got) != 0 {
		t.Fatal("GetObject on absent key must return empty non-nil map")
	}
}

func TestSnapshot(t *testing.T) {
	c := New(1000, NewLRU())
	mustPut(t, c, id("a", 0), 5)
	mustPut(t, c, id("a", 3), 5)
	mustPut(t, c, id("b", 1), 5)
	snap := c.Snapshot()
	if len(snap) != 2 || len(snap["a"]) != 2 || snap["a"][1] != 3 || len(snap["b"]) != 1 {
		t.Fatalf("snapshot = %v", snap)
	}
}

func TestClear(t *testing.T) {
	c := New(100, NewLFU())
	mustPut(t, c, id("a", 0), 10)
	mustPut(t, c, id("b", 0), 10)
	c.Clear()
	if c.Len() != 0 || c.Used() != 0 {
		t.Fatal("Clear left residue")
	}
	// Cache must still work after Clear.
	mustPut(t, c, id("c", 0), 10)
	if !c.Contains(id("c", 0)) {
		t.Fatal("cache broken after Clear")
	}
}

func TestAdmissionFilter(t *testing.T) {
	c := New(100, NewLRU())
	c.SetAdmission(func(e EntryID) bool { return e.Key != "banned" })
	if err := c.Put(id("banned", 0), make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
	if c.Contains(id("banned", 0)) {
		t.Fatal("admission filter ignored")
	}
	if err := c.Put(id("ok", 0), make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
	if !c.Contains(id("ok", 0)) {
		t.Fatal("allowed insert dropped")
	}
	if s := c.Stats(); s.AdmissionRejects != 1 || s.FullRejects != 0 {
		t.Fatalf("rejects = %+v", s)
	}
}

func TestStatsCounters(t *testing.T) {
	c := New(100, NewLRU())
	mustPut(t, c, id("a", 0), 10)
	c.Get(id("a", 0))
	c.Get(id("missing", 0))
	s := c.Stats()
	if s.Sets != 1 || s.Gets != 2 || s.Hits != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

// Property: under arbitrary operation sequences, used bytes never exceed
// capacity and always equal the sum of resident entry sizes.
func TestCapacityInvariantQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		policies := []Policy{NewLRU(), NewLFU()}
		c := New(500, policies[r.Intn(2)])
		for op := 0; op < 500; op++ {
			key := fmt.Sprintf("k%d", r.Intn(20))
			idx := r.Intn(4)
			switch r.Intn(4) {
			case 0, 1:
				size := 1 + r.Intn(120)
				err := c.Put(id(key, idx), make([]byte, size))
				if err != nil && err != ErrTooLarge {
					return false
				}
			case 2:
				c.Get(id(key, idx))
			case 3:
				c.Delete(id(key, idx))
			}
			if c.Used() > c.Capacity() || c.Used() < 0 {
				return false
			}
			// Recompute from the snapshot and entry data.
			var sum int64
			for k, idxs := range c.Snapshot() {
				for _, i := range idxs {
					data, err := c.Get(id(k, i))
					if err != nil {
						return false
					}
					sum += int64(len(data))
				}
			}
			if sum != c.Used() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(10000, NewLRU())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 300; i++ {
				key := fmt.Sprintf("k%d", r.Intn(10))
				switch r.Intn(3) {
				case 0:
					c.Put(id(key, r.Intn(3)), make([]byte, 1+r.Intn(50)))
				case 1:
					c.Get(id(key, r.Intn(3)))
				case 2:
					c.GetObject(key)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Used() > c.Capacity() {
		t.Fatal("capacity breached under concurrency")
	}
}

func TestEntryIDString(t *testing.T) {
	if got := id("obj", 4).String(); got != "obj#4" {
		t.Fatalf("String = %q", got)
	}
}

func TestPolicyNames(t *testing.T) {
	if NewLRU().Name() != "lru" || NewLFU().Name() != "lfu" || NewPinned().Name() != "pinned" {
		t.Fatal("policy names wrong")
	}
}

func mustPut(t *testing.T, c *Cache, e EntryID, size int) {
	t.Helper()
	if err := c.Put(e, make([]byte, size)); err != nil {
		t.Fatalf("Put(%v): %v", e, err)
	}
}

func BenchmarkCachePutGet(b *testing.B) {
	c := New(1<<20, NewLRU())
	data := make([]byte, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := id(fmt.Sprintf("k%d", i%512), i%8)
		c.Put(e, data)
		c.Get(e)
	}
}

func BenchmarkLFUAccess(b *testing.B) {
	c := New(1<<20, NewLFU())
	for i := 0; i < 256; i++ {
		c.Put(id(fmt.Sprintf("k%d", i), 0), make([]byte, 512))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get(id(fmt.Sprintf("k%d", i%256), 0))
	}
}
