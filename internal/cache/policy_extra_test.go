package cache

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestGDSFEvictsColdEntries(t *testing.T) {
	c := New(30, NewGDSF())
	mustPut(t, c, id("hot", 0), 10)
	mustPut(t, c, id("warm", 0), 10)
	mustPut(t, c, id("cold", 0), 10)
	for i := 0; i < 10; i++ {
		c.Get(id("hot", 0))
	}
	c.Get(id("warm", 0))
	mustPut(t, c, id("new", 0), 10)
	if c.Contains(id("cold", 0)) {
		t.Fatal("cold entry survived")
	}
	if !c.Contains(id("hot", 0)) {
		t.Fatal("hot entry evicted")
	}
}

func TestGDSFPrefersEvictingLargeAtEqualFrequency(t *testing.T) {
	// With Cost = constant, priority = L + freq*const/size: the larger
	// entry has lower priority at equal frequency and goes first.
	p := NewGDSF()
	p.Cost = func(EntryID, int) float64 { return 100 }
	c := New(40, p)
	mustPut(t, c, id("big", 0), 25)
	mustPut(t, c, id("small", 0), 10)
	mustPut(t, c, id("trigger", 0), 20) // needs 15 bytes freed
	if c.Contains(id("big", 0)) {
		t.Fatal("big entry should have been evicted first")
	}
	if !c.Contains(id("small", 0)) {
		t.Fatal("small entry should survive")
	}
}

func TestGDSFAgingLetsNewEntriesIn(t *testing.T) {
	// After many evictions, L inflates; a once-hot-but-idle entry must
	// eventually lose to fresh entries.
	c := New(30, NewGDSF())
	mustPut(t, c, id("oldhot", 0), 10)
	for i := 0; i < 5; i++ {
		c.Get(id("oldhot", 0))
	}
	// Stream of new entries forces evictions and inflates L.
	for i := 0; i < 50; i++ {
		mustPut(t, c, id(fmt.Sprintf("fresh-%d", i), 0), 10)
	}
	if c.Contains(id("oldhot", 0)) {
		t.Fatal("idle hot entry never aged out")
	}
}

func TestWLFUWindowForgetting(t *testing.T) {
	// A key that was hot long ago (outside the window) must lose to one
	// hot within the window.
	c := New(20, NewWLFU(16))
	mustPut(t, c, id("old", 0), 10)
	for i := 0; i < 10; i++ {
		c.Get(id("old", 0))
	}
	mustPut(t, c, id("new", 0), 10)
	// Push the old key's accesses out of the window.
	for i := 0; i < 20; i++ {
		c.Get(id("new", 0))
	}
	mustPut(t, c, id("third", 0), 10) // must evict "old", not "new"
	if c.Contains(id("old", 0)) {
		t.Fatal("out-of-window key survived")
	}
	if !c.Contains(id("new", 0)) {
		t.Fatal("in-window hot key evicted")
	}
}

func TestWLFUTieBreaksLRU(t *testing.T) {
	c := New(20, NewWLFU(64))
	mustPut(t, c, id("a", 0), 10)
	mustPut(t, c, id("b", 0), 10)
	c.Get(id("a", 0))
	c.Get(id("b", 0)) // equal counts; a is least recent
	mustPut(t, c, id("c", 0), 10)
	if c.Contains(id("a", 0)) {
		t.Fatal("LRU tie-break failed")
	}
}

func TestExtraPolicyNames(t *testing.T) {
	if NewGDSF().Name() != "gdsf" || NewWLFU(8).Name() != "wlfu" {
		t.Fatal("names wrong")
	}
}

func TestExtraPoliciesCapacityInvariant(t *testing.T) {
	for _, mk := range []func() Policy{
		func() Policy { return NewGDSF() },
		func() Policy { return NewWLFU(128) },
	} {
		p := mk()
		c := New(500, p)
		r := rand.New(rand.NewSource(9))
		for op := 0; op < 2000; op++ {
			key := fmt.Sprintf("k%d", r.Intn(30))
			switch r.Intn(3) {
			case 0:
				err := c.Put(id(key, r.Intn(3)), make([]byte, 1+r.Intn(100)))
				if err != nil && err != ErrTooLarge {
					t.Fatalf("%s: %v", p.Name(), err)
				}
			case 1:
				c.Get(id(key, r.Intn(3)))
			case 2:
				c.Delete(id(key, r.Intn(3)))
			}
			if c.Used() > c.Capacity() {
				t.Fatalf("%s breached capacity", p.Name())
			}
		}
	}
}

func TestWLFUDefaultWindow(t *testing.T) {
	p := NewWLFU(0)
	if p.window != 1024 {
		t.Fatalf("default window %d", p.window)
	}
}
