package cache

import (
	"reflect"
	"testing"
)

func TestPutVerGetAppendVer(t *testing.T) {
	c := New(1<<20, NewLRU())
	id := EntryID{Key: "obj", Index: 2}
	if err := c.PutVer(id, []byte("v2-data"), 200); err != nil {
		t.Fatal(err)
	}
	buf, ver, ok := c.GetAppendVer(id, nil)
	if !ok || ver != 200 || string(buf) != "v2-data" {
		t.Fatalf("got %q ver=%d ok=%v", buf, ver, ok)
	}
	// Unversioned Put resets the version to zero.
	if err := c.Put(id, []byte("raw")); err != nil {
		t.Fatal(err)
	}
	if _, ver, _ := c.GetAppendVer(id, nil); ver != 0 {
		t.Fatalf("unversioned overwrite kept version %d", ver)
	}
	// Miss returns dst unchanged and version zero.
	buf, ver, ok = c.GetAppendVer(EntryID{Key: "missing"}, []byte("pre"))
	if ok || ver != 0 || string(buf) != "pre" {
		t.Fatalf("miss: %q ver=%d ok=%v", buf, ver, ok)
	}
}

func TestDropObjectBelow(t *testing.T) {
	c := NewSharded(1<<20, 4, func() Policy { return NewLRU() })
	c.PutVer(EntryID{Key: "obj", Index: 0}, []byte("a"), 100)
	c.PutVer(EntryID{Key: "obj", Index: 1}, []byte("b"), 200)
	c.Put(EntryID{Key: "obj", Index: 2}, []byte("c")) // unversioned predates any write
	c.PutVer(EntryID{Key: "other", Index: 0}, []byte("d"), 50)

	if n := c.DropObjectBelow("obj", 0); n != 0 {
		t.Fatalf("zero floor dropped %d", n)
	}
	if n := c.DropObjectBelow("obj", 200); n != 2 {
		t.Fatalf("dropped %d, want 2 (index 0 at v100 and unversioned index 2)", n)
	}
	if got := c.IndicesOf("obj"); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("surviving indices %v", got)
	}
	if got := c.IndicesOf("other"); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("unrelated object touched: %v", got)
	}
	// Dropping again at the same floor is a no-op.
	if n := c.DropObjectBelow("obj", 200); n != 0 {
		t.Fatalf("second drop removed %d", n)
	}
}

func TestSnapshotVer(t *testing.T) {
	c := NewSharded(1<<20, 4, func() Policy { return NewLRU() })
	c.PutVer(EntryID{Key: "versioned", Index: 0}, []byte("a"), 100)
	c.PutVer(EntryID{Key: "versioned", Index: 3}, []byte("b"), 300)
	c.Put(EntryID{Key: "legacy", Index: 1}, []byte("c"))

	groups, vers := c.SnapshotVer()
	if !reflect.DeepEqual(groups["versioned"], []int{0, 3}) || !reflect.DeepEqual(groups["legacy"], []int{1}) {
		t.Fatalf("groups %v", groups)
	}
	if vers["versioned"] != 300 {
		t.Fatalf("versioned key advertises %d, want the max 300", vers["versioned"])
	}
	if _, ok := vers["legacy"]; ok {
		t.Fatal("all-unversioned key appeared in the version map")
	}
	// SnapshotVer's groups must match Snapshot exactly.
	if !reflect.DeepEqual(groups, c.Snapshot()) {
		t.Fatal("SnapshotVer groups diverge from Snapshot")
	}
}
