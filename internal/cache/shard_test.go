package cache

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func TestNewShardedRoundsAndClamps(t *testing.T) {
	cases := []struct {
		capacity int64
		shards   int
		want     int
	}{
		{1024, 1, 1},
		{1024, 2, 2},
		{1024, 3, 4}, // rounds up to a power of two
		{1024, 8, 8},
		{1024, 100, 128},
		{4, 8, 4}, // clamped so every shard keeps a positive budget
		{1, 16, 1},
		{1024, 0, 1}, // non-positive counts fall back to one shard
	}
	for _, c := range cases {
		got := NewSharded(c.capacity, c.shards, func() Policy { return NewLRU() })
		if got.ShardCount() != c.want {
			t.Errorf("NewSharded(%d, %d): %d shards, want %d", c.capacity, c.shards, got.ShardCount(), c.want)
		}
		if got.Capacity() != c.capacity {
			t.Errorf("NewSharded(%d, %d): capacity %d", c.capacity, c.shards, got.Capacity())
		}
	}
}

func TestShardedCapacitySumsExactly(t *testing.T) {
	// 1000 does not divide by 8: the remainder must be distributed, not lost.
	c := NewSharded(1000, 8, func() Policy { return NewLRU() })
	var sum int64
	for _, s := range c.shards {
		if s.capacity <= 0 {
			t.Fatalf("shard with non-positive capacity %d", s.capacity)
		}
		sum += s.capacity
	}
	if sum != 1000 {
		t.Fatalf("shard capacities sum to %d, want 1000", sum)
	}
}

func TestShardedBasicOps(t *testing.T) {
	c := NewSharded(1<<20, 8, func() Policy { return NewLRU() })
	// Spread one object's chunks across shards and check object-level ops
	// aggregate correctly.
	for i := 0; i < 32; i++ {
		mustPut(t, c, id("obj", i), 64)
	}
	mustPut(t, c, id("other", 0), 64)
	if got := len(c.GetObject("obj")); got != 32 {
		t.Fatalf("GetObject returned %d chunks", got)
	}
	idxs := c.IndicesOf("obj")
	if len(idxs) != 32 {
		t.Fatalf("IndicesOf returned %d", len(idxs))
	}
	for i := 1; i < len(idxs); i++ {
		if idxs[i-1] >= idxs[i] {
			t.Fatalf("IndicesOf not sorted: %v", idxs)
		}
	}
	snap := c.Snapshot()
	if len(snap) != 2 || len(snap["obj"]) != 32 || len(snap["other"]) != 1 {
		t.Fatalf("snapshot shape wrong: %d objects", len(snap))
	}
	if c.Len() != 33 || c.Used() != 33*64 {
		t.Fatalf("len=%d used=%d", c.Len(), c.Used())
	}
	if n := c.DeleteObject("obj"); n != 32 {
		t.Fatalf("DeleteObject removed %d", n)
	}
	if c.Len() != 1 {
		t.Fatalf("len after delete = %d", c.Len())
	}
	c.Clear()
	if c.Len() != 0 || c.Used() != 0 {
		t.Fatal("Clear left residue")
	}
}

func TestShardedDataIntegrity(t *testing.T) {
	c := NewSharded(1<<20, 4, func() Policy { return NewLFU() })
	want := make(map[EntryID][]byte)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		e := id(fmt.Sprintf("k%d", i%40), i%7)
		data := make([]byte, 32+rng.Intn(64))
		rng.Read(data)
		if err := c.Put(e, data); err != nil {
			t.Fatal(err)
		}
		want[e] = data
	}
	for e, data := range want {
		got, err := c.Get(e)
		if err != nil {
			t.Fatalf("Get(%v): %v", e, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("Get(%v): wrong bytes", e)
		}
	}
}

func TestShardedAdmissionAppliesOnEveryShard(t *testing.T) {
	c := NewSharded(1<<20, 8, func() Policy { return NewLRU() })
	c.SetAdmission(func(e EntryID) bool { return e.Key != "banned" })
	for i := 0; i < 16; i++ {
		if err := c.Put(id("banned", i), make([]byte, 8)); err != nil {
			t.Fatal(err)
		}
		if err := c.Put(id("ok", i), make([]byte, 8)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 16 {
		t.Fatalf("len = %d, want 16 admitted chunks", c.Len())
	}
	if s := c.Stats(); s.AdmissionRejects != 16 {
		t.Fatalf("admission rejects = %d", s.AdmissionRejects)
	}
}

// TestShardedConcurrentStress is the -race workhorse: parallel Get, Put,
// Delete, DeleteObject, GetObject, IndicesOf, Snapshot and Clear across
// every shard, then invariant checks.
func TestShardedConcurrentStress(t *testing.T) {
	c := NewSharded(64<<10, 8, func() Policy { return NewLRU() })
	var wg sync.WaitGroup
	const workers = 16
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 400; i++ {
				key := fmt.Sprintf("k%d", rng.Intn(24))
				idx := rng.Intn(8)
				switch rng.Intn(8) {
				case 0, 1, 2:
					c.Put(id(key, idx), make([]byte, 1+rng.Intn(256)))
				case 3, 4:
					c.Get(id(key, idx))
				case 5:
					c.Delete(id(key, idx))
				case 6:
					c.GetObject(key)
					c.IndicesOf(key)
				case 7:
					if rng.Intn(50) == 0 {
						c.Clear()
					} else if rng.Intn(10) == 0 {
						c.DeleteObject(key)
					} else {
						c.Snapshot()
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Used() > c.Capacity() || c.Used() < 0 {
		t.Fatalf("capacity breached: used=%d capacity=%d", c.Used(), c.Capacity())
	}
	// Residual contents must be internally consistent.
	var sum int64
	for key, idxs := range c.Snapshot() {
		for _, i := range idxs {
			data, err := c.Get(id(key, i))
			if err != nil {
				t.Fatalf("snapshot entry %s#%d missing: %v", key, i, err)
			}
			sum += int64(len(data))
		}
	}
	if sum != c.Used() {
		t.Fatalf("sum of entries %d != used %d", sum, c.Used())
	}
}

// benchCache drives the same parallel mixed workload against any shard
// layout, so the sharded-vs-single-lock numbers pair exactly.
func benchCache(b *testing.B, c *Cache) {
	data := make([]byte, 1024)
	keys := make([]EntryID, 4096)
	for i := range keys {
		keys[i] = id(fmt.Sprintf("k%d", i%512), i%8)
	}
	for _, e := range keys[:512] {
		c.Put(e, data)
	}
	b.SetBytes(1024)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(int64(b.N)))
		i := 0
		for pb.Next() {
			e := keys[(i*7+rng.Intn(16))%len(keys)]
			if i%4 == 0 {
				c.Put(e, data)
			} else {
				c.Get(e)
			}
			i++
		}
	})
}

// BenchmarkSingleLockParallel is the pre-refactor layout: every operation
// behind one global mutex.
func BenchmarkSingleLockParallel(b *testing.B) {
	benchCache(b, New(64<<20, NewLRU()))
}

// BenchmarkShardedParallel is the refactored layout: the same workload over
// 8 independently locked shards.
func BenchmarkShardedParallel(b *testing.B) {
	benchCache(b, NewSharded(64<<20, 8, func() Policy { return NewLRU() }))
}
