package cache

// list is a tiny intrusive doubly linked list of entries with a sentinel.
// Front is most-recent; Back is the eviction end.
type list struct {
	root entry
	size int
}

func newList() *list {
	l := &list{}
	l.root.prev = &l.root
	l.root.next = &l.root
	return l
}

func (l *list) pushFront(e *entry) {
	e.prev = &l.root
	e.next = l.root.next
	e.prev.next = e
	e.next.prev = e
	l.size++
}

func (l *list) remove(e *entry) {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
	l.size--
}

func (l *list) back() *entry {
	if l.size == 0 {
		return nil
	}
	return l.root.prev
}

func (l *list) moveToFront(e *entry) {
	l.remove(e)
	l.pushFront(e)
}

func (l *list) empty() bool { return l.size == 0 }

// LRU evicts the least recently used chunk, matching memcached's per-item
// LRU that backs the paper's LRU-c baselines.
type LRU struct {
	l *list
}

// NewLRU returns an LRU policy.
func NewLRU() *LRU { return &LRU{l: newList()} }

// Name implements Policy.
func (*LRU) Name() string { return "lru" }

// Added implements Policy.
func (p *LRU) Added(e *entry) { p.l.pushFront(e) }

// Accessed implements Policy.
func (p *LRU) Accessed(e *entry) { p.l.moveToFront(e) }

// Removed implements Policy.
func (p *LRU) Removed(e *entry) { p.l.remove(e) }

// Victim implements Policy.
func (p *LRU) Victim() *entry { return p.l.back() }

// LFU evicts the least frequently used chunk, breaking frequency ties
// towards the least recently used, using the O(1) frequency-bucket scheme.
// It matches the paper's LFU-c baselines, whose proxy component tracks
// per-object request frequency.
type LFU struct {
	buckets map[int64]*list
	minFreq int64
	size    int
}

// NewLFU returns an LFU policy.
func NewLFU() *LFU { return &LFU{buckets: make(map[int64]*list)} }

// Name implements Policy.
func (*LFU) Name() string { return "lfu" }

// Added implements Policy.
func (p *LFU) Added(e *entry) {
	e.freq = 1
	p.bucket(1).pushFront(e)
	p.minFreq = 1
	p.size++
}

// Accessed implements Policy.
func (p *LFU) Accessed(e *entry) {
	old := p.buckets[e.freq]
	old.remove(e)
	if old.empty() {
		delete(p.buckets, e.freq)
		if p.minFreq == e.freq {
			p.minFreq = e.freq + 1
		}
	}
	e.freq++
	p.bucket(e.freq).pushFront(e)
}

// Removed implements Policy.
func (p *LFU) Removed(e *entry) {
	b, ok := p.buckets[e.freq]
	if !ok {
		return
	}
	b.remove(e)
	if b.empty() {
		delete(p.buckets, e.freq)
		if p.minFreq == e.freq {
			p.recomputeMin()
		}
	}
	e.freq = 0
	p.size--
}

// Victim implements Policy.
func (p *LFU) Victim() *entry {
	if p.size == 0 {
		return nil
	}
	b, ok := p.buckets[p.minFreq]
	if !ok || b.empty() {
		p.recomputeMin()
		b, ok = p.buckets[p.minFreq]
		if !ok {
			return nil
		}
	}
	return b.back()
}

func (p *LFU) bucket(freq int64) *list {
	b, ok := p.buckets[freq]
	if !ok {
		b = newList()
		p.buckets[freq] = b
	}
	return b
}

func (p *LFU) recomputeMin() {
	p.minFreq = 0
	for f, b := range p.buckets {
		if b.empty() {
			continue
		}
		if p.minFreq == 0 || f < p.minFreq {
			p.minFreq = f
		}
	}
}

// Pinned never evicts: inserts into a full cache fail with ErrCacheFull.
// Agar's cache manager uses it because the knapsack configuration — not an
// online heuristic — decides residency; the manager makes room explicitly
// by deleting entries that left the configuration. It also emulates the
// §II-C "infinite cache" when capacity exceeds the working set.
type Pinned struct{}

// NewPinned returns a Pinned policy.
func NewPinned() *Pinned { return &Pinned{} }

// Name implements Policy.
func (*Pinned) Name() string { return "pinned" }

// Added implements Policy.
func (*Pinned) Added(*entry) {}

// Accessed implements Policy.
func (*Pinned) Accessed(*entry) {}

// Removed implements Policy.
func (*Pinned) Removed(*entry) {}

// Victim implements Policy.
func (*Pinned) Victim() *entry { return nil }
