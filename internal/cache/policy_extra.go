package cache

// Additional eviction policies from the paper's related-work discussion
// (§VII): GreedyDual-Size-Frequency and window-LFU. They are not part of
// the paper's evaluation but give downstream users the classical
// alternatives the paper positions Agar against.

// GDSF implements GreedyDual-Size-Frequency (Cherkasova, 1998): an entry's
// priority is L + frequency * cost / size, where L is the "inflation"
// value of the last eviction. Larger objects are cheaper to evict at equal
// frequency, and recently inserted entries start at the current L so cold
// old entries eventually age out. Victim selection is a linear scan; the
// chunk caches here hold at most a few thousand entries.
type GDSF struct {
	// Cost assigns a retrieval cost per entry; nil means cost = size
	// (the classic GDS(size) variant, reducing priority to L + frequency).
	Cost func(e EntryID, size int) float64

	l        float64
	priority map[*entry]float64
}

// NewGDSF returns a GreedyDual-Size-Frequency policy.
func NewGDSF() *GDSF {
	return &GDSF{priority: make(map[*entry]float64)}
}

// Name implements Policy.
func (*GDSF) Name() string { return "gdsf" }

func (p *GDSF) cost(e *entry) float64 {
	if p.Cost != nil {
		return p.Cost(e.id, len(e.data))
	}
	return float64(len(e.data))
}

func (p *GDSF) recompute(e *entry) {
	size := float64(len(e.data))
	if size == 0 {
		size = 1
	}
	p.priority[e] = p.l + float64(e.freq)*p.cost(e)/size
}

// Added implements Policy.
func (p *GDSF) Added(e *entry) {
	e.freq = 1
	p.recompute(e)
}

// Accessed implements Policy.
func (p *GDSF) Accessed(e *entry) {
	e.freq++
	p.recompute(e)
}

// Removed implements Policy.
func (p *GDSF) Removed(e *entry) {
	delete(p.priority, e)
	e.freq = 0
}

// Victim implements Policy: the entry with the lowest priority; L inflates
// to the victim's priority so survivors age relative to newcomers.
func (p *GDSF) Victim() *entry {
	var victim *entry
	best := 0.0
	for e, pr := range p.priority {
		if victim == nil || pr < best {
			victim, best = e, pr
		}
	}
	if victim != nil {
		p.l = best
	}
	return victim
}

// WLFU implements window-LFU (Karakostas & Serpanos, 2002): eviction
// decisions use access counts over the W most recent requests rather than
// all history, with LRU breaking ties — so popularity shifts propagate
// within one window instead of never.
type WLFU struct {
	window int
	recent []EntryID // ring of the last W accesses
	pos    int
	full   bool
	counts map[EntryID]int // windowed counts (includes non-resident ids)
	l      *list           // recency list over resident entries
	byID   map[EntryID]*entry
}

// NewWLFU returns a window-LFU policy over the last `window` accesses.
func NewWLFU(window int) *WLFU {
	if window <= 0 {
		window = 1024
	}
	return &WLFU{
		window: window,
		recent: make([]EntryID, window),
		counts: make(map[EntryID]int),
		l:      newList(),
		byID:   make(map[EntryID]*entry),
	}
}

// Name implements Policy.
func (*WLFU) Name() string { return "wlfu" }

func (p *WLFU) observe(id EntryID) {
	if p.full {
		old := p.recent[p.pos]
		if p.counts[old] > 1 {
			p.counts[old]--
		} else {
			delete(p.counts, old)
		}
	}
	p.recent[p.pos] = id
	p.counts[id]++
	p.pos++
	if p.pos == p.window {
		p.pos = 0
		p.full = true
	}
}

// Added implements Policy.
func (p *WLFU) Added(e *entry) {
	p.byID[e.id] = e
	p.l.pushFront(e)
	p.observe(e.id)
}

// Accessed implements Policy.
func (p *WLFU) Accessed(e *entry) {
	p.l.moveToFront(e)
	p.observe(e.id)
}

// Removed implements Policy.
func (p *WLFU) Removed(e *entry) {
	delete(p.byID, e.id)
	p.l.remove(e)
}

// Victim implements Policy: the resident entry with the smallest windowed
// count; among equals, the least recently used (scanned from the LRU end).
func (p *WLFU) Victim() *entry {
	if p.l.empty() {
		return nil
	}
	var victim *entry
	best := 0
	for e := p.l.root.prev; e != &p.l.root; e = e.prev {
		c := p.counts[e.id]
		if victim == nil || c < best {
			victim, best = e, c
			if c == 0 {
				break
			}
		}
	}
	return victim
}
