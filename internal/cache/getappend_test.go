package cache

import (
	"bytes"
	"testing"
)

// TestGetAppend: hits append into the caller's buffer and count exactly
// like Get; misses leave the buffer untouched and count a get without a
// hit. Consecutive appends into one buffer must concatenate — the pooled
// mget reply path builds its whole body this way.
func TestGetAppend(t *testing.T) {
	c := NewSharded(1<<20, 4, func() Policy { return NewLRU() })
	if err := c.Put(EntryID{Key: "k", Index: 0}, []byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(EntryID{Key: "k", Index: 1}, []byte("bb")); err != nil {
		t.Fatal(err)
	}

	buf := make([]byte, 0, 16)
	buf, ok := c.GetAppend(EntryID{Key: "k", Index: 0}, buf)
	if !ok || !bytes.Equal(buf, []byte("aaaa")) {
		t.Fatalf("first append: ok=%v buf=%q", ok, buf)
	}
	base := &buf[0]
	buf, ok = c.GetAppend(EntryID{Key: "k", Index: 9}, buf)
	if ok || !bytes.Equal(buf, []byte("aaaa")) {
		t.Fatalf("miss mutated buffer: ok=%v buf=%q", ok, buf)
	}
	buf, ok = c.GetAppend(EntryID{Key: "k", Index: 1}, buf)
	if !ok || !bytes.Equal(buf, []byte("aaaabb")) {
		t.Fatalf("second append: ok=%v buf=%q", ok, buf)
	}
	if &buf[0] != base {
		t.Fatal("append reallocated despite sufficient capacity")
	}

	st := c.Stats()
	if st.Gets != 3 || st.Hits != 2 {
		t.Fatalf("stats gets=%d hits=%d, want 3/2", st.Gets, st.Hits)
	}

	// The appended bytes must be a copy: mutating the buffer must not
	// corrupt the cached entry.
	buf[0] = 'Z'
	got, err := c.Get(EntryID{Key: "k", Index: 0})
	if err != nil || !bytes.Equal(got, []byte("aaaa")) {
		t.Fatalf("cached entry corrupted through GetAppend buffer: %q, %v", got, err)
	}
}

// TestGetAppendKeepsLRUWarm: a GetAppend must refresh recency exactly like
// Get, or the pooled read path would silently change eviction behaviour.
func TestGetAppendKeepsLRUWarm(t *testing.T) {
	c := NewSharded(64, 1, func() Policy { return NewLRU() })
	c.Put(EntryID{Key: "a", Index: 0}, make([]byte, 24))
	c.Put(EntryID{Key: "b", Index: 0}, make([]byte, 24))
	// Touch "a" via GetAppend, then insert something that forces eviction:
	// "b" (cold) must go, "a" (warm) must stay.
	if _, ok := c.GetAppend(EntryID{Key: "a", Index: 0}, nil); !ok {
		t.Fatal("warm-up read missed")
	}
	c.Put(EntryID{Key: "c", Index: 0}, make([]byte, 24))
	if !c.Contains(EntryID{Key: "a", Index: 0}) {
		t.Fatal("recently appended entry was evicted")
	}
	if c.Contains(EntryID{Key: "b", Index: 0}) {
		t.Fatal("cold entry survived over the warm one")
	}
}

// TestMeanEntryBytes tracks the resident-size average the server's reply
// buffer sizing and split threshold lean on.
func TestMeanEntryBytes(t *testing.T) {
	c := NewSharded(1<<20, 4, func() Policy { return NewLRU() })
	if got := c.MeanEntryBytes(); got != 0 {
		t.Fatalf("empty cache mean = %d", got)
	}
	c.Put(EntryID{Key: "a", Index: 0}, make([]byte, 100))
	c.Put(EntryID{Key: "b", Index: 0}, make([]byte, 300))
	if got := c.MeanEntryBytes(); got != 200 {
		t.Fatalf("mean = %d, want 200", got)
	}
}
