// Package experiments regenerates every table and figure of the paper's
// evaluation (§II-C and §V) against the simulated wide-area deployment.
//
// Each experiment function returns a structured result with a Render method
// that prints the same rows or series the paper reports. The deployment is
// scaled down in bytes (small objects keep erasure coding cheap) but not in
// shape: cache capacities are converted to chunk slots exactly as the
// paper's megabyte figures imply (a 10 MB cache holds 90 of the 1 MB
// objects' chunks), latencies come from the calibrated region matrix, and
// every read exercises the full coding/caching/decoding path.
package experiments

import (
	"fmt"
	"math"
	"time"

	"github.com/agardist/agar/internal/backend"
	"github.com/agardist/agar/internal/cache"
	"github.com/agardist/agar/internal/client"
	"github.com/agardist/agar/internal/core"
	"github.com/agardist/agar/internal/erasure"
	"github.com/agardist/agar/internal/geo"
	"github.com/agardist/agar/internal/netsim"
	"github.com/agardist/agar/internal/workload"
	"github.com/agardist/agar/internal/ycsb"
)

// Params configures a deployment and measurement campaign.
type Params struct {
	// NumObjects is the working-set size (paper: 300).
	NumObjects int
	// ObjectBytes is the real size of simulated objects. The paper uses
	// 1 MB; the harness defaults to 9 KiB so decoding stays fast while the
	// chunk count and layout are identical.
	ObjectBytes int
	// PaperObjectBytes is the object size the paper's cache-capacity
	// figures assume (1 MB); cache sizes in "paper megabytes" convert to
	// chunk slots through this.
	PaperObjectBytes int
	// K and M are the Reed-Solomon parameters (paper: 9+3).
	K, M int
	// RotatePlacement spreads chunk layouts across objects; the paper's
	// fixed round-robin keeps every object's layout identical.
	RotatePlacement bool
	// Matrix is the inter-region latency model; nil means
	// geo.DefaultMatrix().
	Matrix *geo.LatencyMatrix
	// CacheLatency, DecodeLatency and MonitorLatency parameterise the
	// client latency model.
	CacheLatency   time.Duration
	DecodeLatency  time.Duration
	MonitorLatency time.Duration
	// Jitter is the +-fraction applied to modelled latencies.
	Jitter float64
	// Seed makes every experiment deterministic.
	Seed int64
	// Operations and WarmupOps per run (paper: 1,000 measured reads).
	Operations int
	WarmupOps  int
	// Runs to average (paper: 5).
	Runs int
	// ZipfSkew is the default workload skew (paper: 1.1).
	ZipfSkew float64
	// ReconfigPeriod is Agar's (and LFU's statistics) refresh period
	// (paper: 30 s).
	ReconfigPeriod time.Duration
	// Clients is the number of concurrent client threads per YCSB instance
	// (paper: 2).
	Clients int
	// Solver picks Agar's configuration algorithm.
	Solver core.Solver
	// EarlyStop bounds the POPULATE option iteration (the paper's SVI
	// optimisation); zero disables it.
	EarlyStop int
}

// DefaultParams returns the paper's evaluation setup.
func DefaultParams() Params {
	return Params{
		NumObjects:       300,
		ObjectBytes:      9 * 1024,
		PaperObjectBytes: 1 << 20,
		K:                9,
		M:                3,
		RotatePlacement:  false,
		CacheLatency:     20 * time.Millisecond,
		DecodeLatency:    5 * time.Millisecond,
		MonitorLatency:   500 * time.Microsecond,
		Jitter:           0.05,
		Seed:             1,
		Operations:       1000,
		WarmupOps:        1000,
		Runs:             5,
		ZipfSkew:         1.1,
		ReconfigPeriod:   30 * time.Second,
		Clients:          2,
		Solver:           core.SolverPopulate,
		EarlyStop:        128,
	}
}

// Deployment is a loaded multi-region cluster ready for measurement runs.
type Deployment struct {
	Params  Params
	Cluster *backend.Cluster
	Matrix  *geo.LatencyMatrix
}

// NewDeployment builds the cluster and loads the working set.
func NewDeployment(p Params) (*Deployment, error) {
	if p.NumObjects <= 0 || p.ObjectBytes <= 0 || p.K <= 0 {
		return nil, fmt.Errorf("experiments: invalid params")
	}
	codec, err := erasure.New(p.K, p.M)
	if err != nil {
		return nil, err
	}
	matrix := p.Matrix
	if matrix == nil {
		matrix = geo.DefaultMatrix()
	}
	placement := geo.NewRoundRobin(geo.DefaultRegions(), p.RotatePlacement)
	cluster := backend.NewCluster(geo.DefaultRegions(), codec, placement)
	payload := make([]byte, p.ObjectBytes)
	for i := range payload {
		payload[i] = byte(i * 131)
	}
	for i := 0; i < p.NumObjects; i++ {
		if err := cluster.PutObject(workload.KeyName(i), payload); err != nil {
			return nil, fmt.Errorf("experiments: load object %d: %w", i, err)
		}
	}
	return &Deployment{Params: p, Cluster: cluster, Matrix: matrix}, nil
}

// ChunkBytes returns the real per-chunk size.
func (d *Deployment) ChunkBytes() int64 {
	return int64(d.Cluster.Codec().ChunkSize(d.Params.ObjectBytes))
}

// PaperChunkBytes returns the chunk size the paper's latency model assumes
// (1 MB objects over k data chunks) — the size bandwidth-capped store
// tiers charge transfer time for, consistent with the modelled latencies.
func (d *Deployment) PaperChunkBytes() int {
	return d.Params.PaperObjectBytes / d.Params.K
}

// SlotsForMB converts a paper-scale cache size in megabytes into chunk
// slots: slots = MB / (paperObject/k). The paper's 10 MB cache "fits ten
// full objects", i.e. 90 chunks.
func (d *Deployment) SlotsForMB(mb float64) int {
	perChunk := float64(d.Params.PaperObjectBytes) / float64(d.Params.K)
	return int(math.Round(mb * (1 << 20) / perChunk))
}

// Env builds a client environment around an explicit sampler. The scenario
// runner threads a chaos-bound sampler through here; pass a fresh
// netsim.NewSampler for plain runs.
func (d *Deployment) Env(sampler *netsim.Sampler) *client.Env {
	return &client.Env{
		Cluster:        d.Cluster,
		Matrix:         d.Matrix,
		Sampler:        sampler,
		CacheLatency:   d.Params.CacheLatency,
		DecodeLatency:  d.Params.DecodeLatency,
		MonitorLatency: d.Params.MonitorLatency,
	}
}

// env builds a fresh client environment with a run-specific sampler.
func (d *Deployment) env(seed int64) *client.Env {
	return d.Env(netsim.NewSampler(d.Matrix, d.Params.Jitter, seed))
}

// StrategyKind enumerates the reading strategies of §V-A.
type StrategyKind int

// Strategy kinds.
const (
	StratBackend StrategyKind = iota + 1
	StratLRU
	StratLFU
	StratAgar
	// StratFixed caches a fixed c chunks per object under a pinned policy
	// that never evicts: the cache freezes on whatever it saw first — the
	// "static cache" baseline the scenario suite compares against.
	StratFixed
)

// Strategy names one evaluated configuration.
type Strategy struct {
	Kind StrategyKind
	// C is the fixed chunks-per-object for LRU/LFU strategies.
	C int
}

// Name renders the paper's strategy labels ("Agar", "LRU-3", "Backend").
func (s Strategy) Name() string {
	switch s.Kind {
	case StratBackend:
		return "Backend"
	case StratLRU:
		return fmt.Sprintf("LRU-%d", s.C)
	case StratLFU:
		return fmt.Sprintf("LFU-%d", s.C)
	case StratFixed:
		return fmt.Sprintf("Fixed-%d", s.C)
	case StratAgar:
		return "Agar"
	default:
		return fmt.Sprintf("strategy(%d)", int(s.Kind))
	}
}

// runSpec is everything one measurement run needs.
type runSpec struct {
	strategy Strategy
	region   geo.RegionID
	cacheMB  float64
	gen      func(seed int64) workload.Generator
	seed     int64
}

// NewReader builds the reader (and Agar node, when the strategy is Agar)
// for one strategy over the given environment. The seed derives the Agar
// region manager's warm-up probe sampler; cacheMB sizes the strategy's
// cache in paper megabytes.
func (d *Deployment) NewReader(strat Strategy, env *client.Env, region geo.RegionID, cacheMB float64, seed int64) (client.Reader, *core.Node, error) {
	slots := d.SlotsForMB(cacheMB)
	cacheBytes := int64(slots) * d.ChunkBytes()
	if cacheBytes <= 0 {
		cacheBytes = 1
	}
	switch strat.Kind {
	case StratLRU, StratLFU, StratFixed:
		if strat.C < 1 || strat.C > d.Params.K {
			return nil, nil, fmt.Errorf("experiments: %s chunk count %d outside [1, %d]", strat.Name(), strat.C, d.Params.K)
		}
	}
	switch strat.Kind {
	case StratBackend:
		return client.NewBackendReader(env, region), nil, nil
	case StratLRU:
		return client.NewFixedReader(env, region, cache.NewLRU(), strat.C, cacheBytes), nil, nil
	case StratLFU:
		return client.NewFixedReader(env, region, cache.NewLFU(), strat.C, cacheBytes), nil, nil
	case StratFixed:
		// The pinned policy reports itself as "pinned"; label the reader to
		// match this strategy's naming.
		return client.NewFixedReader(env, region, cache.NewPinned(), strat.C, cacheBytes).
			WithName(fmt.Sprintf("fixed-%d", strat.C)), nil, nil
	case StratAgar:
		node := core.NewNode(core.NodeParams{
			Region:         region,
			Regions:        d.Cluster.Regions(),
			Placement:      d.Cluster.Placement(),
			K:              d.Params.K,
			M:              d.Params.M,
			CacheBytes:     cacheBytes,
			ChunkBytes:     d.ChunkBytes(),
			ReconfigPeriod: d.Params.ReconfigPeriod,
			CacheLatency:   d.Params.CacheLatency,
			Solver:         d.Params.Solver,
			EarlyStop:      d.Params.EarlyStop,
		})
		// Warm-up latency probes through the same jittered sampler the
		// reads use, as the paper's region manager does.
		sampler := netsim.NewSampler(d.Matrix, d.Params.Jitter, seed+7777)
		node.RegionManager().WarmUp(func(r geo.RegionID) time.Duration {
			return sampler.Chunk(region, r)
		}, 3)
		return client.NewAgarReader(env, region, node), node, nil
	default:
		return nil, nil, fmt.Errorf("experiments: unknown strategy %v", strat)
	}
}

// runOnce executes a single run and returns its result.
func (d *Deployment) runOnce(spec runSpec) (ycsb.Result, error) {
	env := d.env(spec.seed)
	reader, node, err := d.NewReader(spec.strategy, env, spec.region, spec.cacheMB, spec.seed)
	if err != nil {
		return ycsb.Result{}, err
	}

	return ycsb.Run(ycsb.RunConfig{
		Reader:     reader,
		Generator:  spec.gen(spec.seed),
		Operations: d.Params.Operations,
		WarmupOps:  d.Params.WarmupOps,
		Node:       node,
		Clients:    d.Params.Clients,
	})
}

// runAveraged executes Params.Runs paired runs (same per-run seeds across
// strategies) and averages them.
func (d *Deployment) runAveraged(spec runSpec) (ycsb.Result, error) {
	results := make([]ycsb.Result, 0, d.Params.Runs)
	for run := 0; run < d.Params.Runs; run++ {
		s := spec
		s.seed = d.Params.Seed + int64(run)*1009
		r, err := d.runOnce(s)
		if err != nil {
			return ycsb.Result{}, fmt.Errorf("experiments: %s run %d: %w", spec.strategy.Name(), run, err)
		}
		results = append(results, r)
	}
	return ycsb.Average(results), nil
}

// zipfGen builds the default Zipfian generator factory.
func (d *Deployment) zipfGen(skew float64) func(int64) workload.Generator {
	n := d.Params.NumObjects
	return func(seed int64) workload.Generator { return workload.NewZipfian(n, skew, seed) }
}

// uniformGen builds the uniform generator factory.
func (d *Deployment) uniformGen() func(int64) workload.Generator {
	n := d.Params.NumObjects
	return func(seed int64) workload.Generator { return workload.NewUniform(n, seed) }
}

// Run executes the averaged measurement campaign for one strategy, client
// region and cache size using the deployment's default workload skew. It
// is the entry point the agar-load tool drives.
func (d *Deployment) Run(strat Strategy, region geo.RegionID, cacheMB float64) (ycsb.Result, error) {
	return d.runAveraged(runSpec{
		strategy: strat,
		region:   region,
		cacheMB:  cacheMB,
		gen:      d.zipfGen(d.Params.ZipfSkew),
	})
}
