package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/agardist/agar/internal/client"
	"github.com/agardist/agar/internal/core"
	"github.com/agardist/agar/internal/geo"
	"github.com/agardist/agar/internal/netsim"
	"github.com/agardist/agar/internal/workload"
	"github.com/agardist/agar/internal/ycsb"
)

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// --- Table I ---

// TableIResult reproduces the paper's Table I: per-region chunk read
// latency from the point of view of Frankfurt, as measured by the region
// manager's warm-up probes.
type TableIResult struct {
	// Probed holds the region manager's estimates against the paper's
	// Table I matrix.
	Probed map[geo.RegionID]time.Duration
	// Paper holds Table I verbatim for comparison.
	Paper map[geo.RegionID]time.Duration
}

// TableI probes the Table I latency matrix exactly as an Agar region
// manager does during warm-up and reports the estimates next to the paper's
// values.
func TableI() TableIResult {
	matrix := geo.TableIMatrix()
	rm := core.NewRegionManager(geo.Frankfurt, geo.DefaultRegions(),
		geo.NewRoundRobin(geo.DefaultRegions(), false), 12)
	rm.WarmUp(func(r geo.RegionID) time.Duration {
		return matrix.Get(geo.Frankfurt, r)
	}, 3)
	return TableIResult{Probed: rm.Estimates(), Paper: geo.TableI()}
}

// Render prints the table in the paper's layout.
func (t TableIResult) Render() string {
	var b strings.Builder
	b.WriteString("Table I: read latency from the point of view of Frankfurt\n")
	fmt.Fprintf(&b, "%-12s %12s %12s\n", "region", "probed(ms)", "paper(ms)")
	for _, r := range geo.DefaultRegions() {
		fmt.Fprintf(&b, "%-12s %12.0f %12.0f\n", r, ms(t.Probed[r]), ms(t.Paper[r]))
	}
	return b.String()
}

// --- Figure 2 ---

// Figure2Point is one bar of Figure 2.
type Figure2Point struct {
	Region geo.RegionID
	C      int
	Mean   time.Duration
}

// Figure2Result holds the motivating experiment's series.
type Figure2Result struct {
	Points []Figure2Point
}

// Figure2 reruns the §II-C motivating experiment: average read latency in
// Frankfurt and Sydney while caching c chunks per object in an effectively
// infinite cache, c in {0, 1, 3, 5, 7, 9}.
func Figure2(d *Deployment) (Figure2Result, error) {
	var out Figure2Result
	// Infinite cache: every object can hold all its chunks.
	infiniteMB := float64(d.Params.NumObjects * d.Params.PaperObjectBytes * 2 / (1 << 20))
	for _, region := range []geo.RegionID{geo.Frankfurt, geo.Sydney} {
		for _, c := range []int{0, 1, 3, 5, 7, 9} {
			strat := Strategy{Kind: StratLRU, C: c}
			if c == 0 {
				strat = Strategy{Kind: StratBackend}
			}
			res, err := d.runAveraged(runSpec{
				strategy: strat,
				region:   region,
				cacheMB:  infiniteMB,
				gen:      d.zipfGen(d.Params.ZipfSkew),
			})
			if err != nil {
				return Figure2Result{}, err
			}
			out.Points = append(out.Points, Figure2Point{Region: region, C: c, Mean: res.Mean})
		}
	}
	return out, nil
}

// Render prints the two series.
func (f Figure2Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 2: average read latency vs chunks cached (infinite cache, Zipf 1.1)\n")
	fmt.Fprintf(&b, "%-12s %6s %12s\n", "region", "chunks", "latency(ms)")
	for _, p := range f.Points {
		fmt.Fprintf(&b, "%-12s %6d %12.0f\n", p.Region, p.C, ms(p.Mean))
	}
	return b.String()
}

// --- Figures 6 and 7 (one campaign, two renderings) ---

// PolicyRow is one strategy's outcome in the policy-comparison experiment.
type PolicyRow struct {
	Strategy string
	Mean     time.Duration
	HitRatio float64
	P95      time.Duration
	Reconfig int
}

// PolicyComparisonResult holds the full Figure 6 + Figure 7 campaign for
// one client region.
type PolicyComparisonResult struct {
	Region geo.RegionID
	Rows   []PolicyRow
}

// PolicyStrategies returns the paper's Figure 6 bar list: Agar, LRU-c and
// LFU-c for c in {1,3,5,7,9}, and Backend.
func PolicyStrategies() []Strategy {
	out := []Strategy{{Kind: StratAgar}}
	for _, c := range []int{1, 3, 5, 7, 9} {
		out = append(out, Strategy{Kind: StratLRU, C: c})
	}
	for _, c := range []int{1, 3, 5, 7, 9} {
		out = append(out, Strategy{Kind: StratLFU, C: c})
	}
	return append(out, Strategy{Kind: StratBackend})
}

// PolicyComparison runs the Figure 6 / Figure 7 campaign for one region:
// every strategy against the 10 MB cache, Zipf 1.1, averaged over runs.
func PolicyComparison(d *Deployment, region geo.RegionID) (PolicyComparisonResult, error) {
	out := PolicyComparisonResult{Region: region}
	for _, strat := range PolicyStrategies() {
		res, err := d.runAveraged(runSpec{
			strategy: strat,
			region:   region,
			cacheMB:  10,
			gen:      d.zipfGen(d.Params.ZipfSkew),
		})
		if err != nil {
			return PolicyComparisonResult{}, err
		}
		out.Rows = append(out.Rows, PolicyRow{
			Strategy: strat.Name(),
			Mean:     res.Mean,
			HitRatio: res.HitRatio(),
			P95:      res.P95,
			Reconfig: res.Reconfigs,
		})
	}
	return out, nil
}

// Best returns the named strategy's row.
func (r PolicyComparisonResult) Row(name string) (PolicyRow, bool) {
	for _, row := range r.Rows {
		if row.Strategy == name {
			return row, true
		}
	}
	return PolicyRow{}, false
}

// BestStatic returns the lowest-latency non-Agar caching strategy.
func (r PolicyComparisonResult) BestStatic() PolicyRow {
	best := PolicyRow{Mean: time.Duration(1) << 62}
	for _, row := range r.Rows {
		if row.Strategy == "Agar" || row.Strategy == "Backend" {
			continue
		}
		if row.Mean < best.Mean {
			best = row
		}
	}
	return best
}

// WorstStatic returns the highest-latency non-Agar caching strategy.
func (r PolicyComparisonResult) WorstStatic() PolicyRow {
	var worst PolicyRow
	for _, row := range r.Rows {
		if row.Strategy == "Agar" || row.Strategy == "Backend" {
			continue
		}
		if row.Mean > worst.Mean {
			worst = row
		}
	}
	return worst
}

// RenderFigure6 prints average latencies (the paper's Figure 6).
func (r PolicyComparisonResult) RenderFigure6() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6 (%s): average read latency, 10 MB cache, Zipf 1.1\n", r.Region)
	fmt.Fprintf(&b, "%-10s %12s %12s\n", "strategy", "latency(ms)", "p95(ms)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %12.0f %12.0f\n", row.Strategy, ms(row.Mean), ms(row.P95))
	}
	if agar, ok := r.Row("Agar"); ok {
		best := r.BestStatic()
		worst := r.WorstStatic()
		fmt.Fprintf(&b, "Agar vs best static (%s): %+.1f%%; vs worst static (%s): %+.1f%%\n",
			best.Strategy, 100*(ms(agar.Mean)-ms(best.Mean))/ms(best.Mean),
			worst.Strategy, 100*(ms(agar.Mean)-ms(worst.Mean))/ms(worst.Mean))
	}
	return b.String()
}

// RenderFigure7 prints hit ratios (the paper's Figure 7).
func (r PolicyComparisonResult) RenderFigure7() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7 (%s): hit ratio (full + partial hits), 10 MB cache, Zipf 1.1\n", r.Region)
	fmt.Fprintf(&b, "%-10s %10s\n", "strategy", "hit-ratio")
	for _, row := range r.Rows {
		if row.Strategy == "Backend" {
			continue
		}
		fmt.Fprintf(&b, "%-10s %9.1f%%\n", row.Strategy, 100*row.HitRatio)
	}
	return b.String()
}

// --- Figure 8a: vary cache size ---

// Figure8aCell is one bar of Figure 8a.
type Figure8aCell struct {
	CacheMB  float64
	Strategy string
	Mean     time.Duration
}

// Figure8aResult holds the cache-size sweep.
type Figure8aResult struct {
	Cells []Figure8aCell
}

// Figure8aStrategies returns the sweep's strategy set.
func Figure8aStrategies() []Strategy {
	return []Strategy{
		{Kind: StratAgar},
		{Kind: StratLRU, C: 5},
		{Kind: StratLRU, C: 9},
		{Kind: StratLFU, C: 5},
		{Kind: StratLFU, C: 9},
	}
}

// Figure8a sweeps the cache size over {0, 5, 10, 20, 50, 100} MB in
// Frankfurt (0 MB = Backend), Zipf 1.1.
func Figure8a(d *Deployment) (Figure8aResult, error) {
	var out Figure8aResult
	// 0 MB: backend only.
	res, err := d.runAveraged(runSpec{
		strategy: Strategy{Kind: StratBackend},
		region:   geo.Frankfurt,
		gen:      d.zipfGen(d.Params.ZipfSkew),
	})
	if err != nil {
		return out, err
	}
	out.Cells = append(out.Cells, Figure8aCell{CacheMB: 0, Strategy: "Backend", Mean: res.Mean})
	for _, mb := range []float64{5, 10, 20, 50, 100} {
		for _, strat := range Figure8aStrategies() {
			res, err := d.runAveraged(runSpec{
				strategy: strat,
				region:   geo.Frankfurt,
				cacheMB:  mb,
				gen:      d.zipfGen(d.Params.ZipfSkew),
			})
			if err != nil {
				return out, err
			}
			out.Cells = append(out.Cells, Figure8aCell{CacheMB: mb, Strategy: strat.Name(), Mean: res.Mean})
		}
	}
	return out, nil
}

// Render prints the sweep grouped by cache size.
func (f Figure8aResult) Render() string {
	var b strings.Builder
	b.WriteString("Figure 8a (frankfurt): average read latency while varying cache size, Zipf 1.1\n")
	fmt.Fprintf(&b, "%-8s %-10s %12s\n", "cache", "strategy", "latency(ms)")
	for _, c := range f.Cells {
		fmt.Fprintf(&b, "%-8s %-10s %12.0f\n", fmt.Sprintf("%.0fMB", c.CacheMB), c.Strategy, ms(c.Mean))
	}
	return b.String()
}

// --- Figure 8b: vary workload ---

// Figure8bCell is one bar of Figure 8b.
type Figure8bCell struct {
	Workload string
	Strategy string
	Mean     time.Duration
}

// Figure8bResult holds the workload sweep.
type Figure8bResult struct {
	Cells []Figure8bCell
}

// Figure8b sweeps the workload over uniform and Zipf skews
// {0.2, 0.5, 0.8, 0.9, 1.0, 1.1, 1.4} with a 10 MB cache in Frankfurt.
func Figure8b(d *Deployment) (Figure8bResult, error) {
	var out Figure8bResult
	res, err := d.runAveraged(runSpec{
		strategy: Strategy{Kind: StratBackend},
		region:   geo.Frankfurt,
		gen:      d.zipfGen(d.Params.ZipfSkew),
	})
	if err != nil {
		return out, err
	}
	out.Cells = append(out.Cells, Figure8bCell{Workload: "-", Strategy: "Backend", Mean: res.Mean})

	type wl struct {
		name string
		gen  func(int64) workload.Generator
	}
	wls := []wl{{name: "Uniform", gen: d.uniformGen()}}
	for _, skew := range []float64{0.2, 0.5, 0.8, 0.9, 1.0, 1.1, 1.4} {
		wls = append(wls, wl{name: fmt.Sprintf("Zipf %.1f", skew), gen: d.zipfGen(skew)})
	}
	for _, w := range wls {
		for _, strat := range Figure8aStrategies() {
			res, err := d.runAveraged(runSpec{
				strategy: strat,
				region:   geo.Frankfurt,
				cacheMB:  10,
				gen:      w.gen,
			})
			if err != nil {
				return out, err
			}
			out.Cells = append(out.Cells, Figure8bCell{Workload: w.name, Strategy: strat.Name(), Mean: res.Mean})
		}
	}
	return out, nil
}

// Render prints the sweep grouped by workload.
func (f Figure8bResult) Render() string {
	var b strings.Builder
	b.WriteString("Figure 8b (frankfurt): average read latency while varying workload, 10 MB cache\n")
	fmt.Fprintf(&b, "%-10s %-10s %12s\n", "workload", "strategy", "latency(ms)")
	for _, c := range f.Cells {
		fmt.Fprintf(&b, "%-10s %-10s %12.0f\n", c.Workload, c.Strategy, ms(c.Mean))
	}
	return b.String()
}

// --- Figure 9 ---

// Figure9Result holds the popularity CDFs.
type Figure9Result struct {
	Top   int
	Skews []float64
	// CDF[i][x] is the cumulative request share of the x+1 most popular
	// objects under Skews[i].
	CDF [][]float64
}

// Figure9 computes the cumulative popularity distribution for Zipf skews
// {0.5, 0.8, 1.1, 1.4} over the working set, for the 50 most popular
// objects, exactly as the paper plots.
func Figure9(d *Deployment) Figure9Result {
	skews := []float64{0.5, 0.8, 1.1, 1.4}
	out := Figure9Result{Top: 50, Skews: skews}
	for _, s := range skews {
		out.CDF = append(out.CDF, workload.PopularityCDF(d.Params.NumObjects, s, out.Top))
	}
	return out
}

// Render prints the CDFs at the paper's tick marks.
func (f Figure9Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 9: cumulative popularity CDF (top objects, by skew)\n")
	fmt.Fprintf(&b, "%-8s", "objects")
	for _, s := range f.Skews {
		fmt.Fprintf(&b, " %8s", fmt.Sprintf("z=%.1f", s))
	}
	b.WriteString("\n")
	for _, x := range []int{5, 10, 15, 20, 25, 30, 35, 40, 45, 50} {
		fmt.Fprintf(&b, "%-8d", x)
		for i := range f.Skews {
			fmt.Fprintf(&b, " %7.1f%%", 100*f.CDF[i][x-1])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// --- Figure 10 ---

// Figure10Snapshot describes one Agar cache's contents at the end of a run.
type Figure10Snapshot struct {
	Region  geo.RegionID
	CacheMB float64
	// SlotsByGroup maps "chunks cached per object" to the number of cache
	// slots those objects occupy.
	SlotsByGroup map[int]int
	// TotalSlots is the occupied slot count.
	TotalSlots int
}

// Figure10Result holds the four snapshots of Figure 10.
type Figure10Result struct {
	Snapshots []Figure10Snapshot
}

// Figure10 runs Agar in Frankfurt and Sydney with 10 MB and 5 MB caches and
// snapshots what the cache holds: how much space objects with 9, 7, 5, ...
// cached chunks occupy.
func Figure10(d *Deployment) (Figure10Result, error) {
	var out Figure10Result
	for _, setup := range []struct {
		region  geo.RegionID
		cacheMB float64
	}{
		{geo.Frankfurt, 10},
		{geo.Frankfurt, 5},
		{geo.Sydney, 10},
		{geo.Sydney, 5},
	} {
		env := d.env(d.Params.Seed + 31)
		node := core.NewNode(core.NodeParams{
			Region:         setup.region,
			Regions:        d.Cluster.Regions(),
			Placement:      d.Cluster.Placement(),
			K:              d.Params.K,
			M:              d.Params.M,
			CacheBytes:     int64(d.SlotsForMB(setup.cacheMB)) * d.ChunkBytes(),
			ChunkBytes:     d.ChunkBytes(),
			ReconfigPeriod: d.Params.ReconfigPeriod,
			CacheLatency:   d.Params.CacheLatency,
			Solver:         d.Params.Solver,
			EarlyStop:      d.Params.EarlyStop,
		})
		sampler := netsim.NewSampler(d.Matrix, d.Params.Jitter, d.Params.Seed+99)
		node.RegionManager().WarmUp(func(r geo.RegionID) time.Duration {
			return sampler.Chunk(setup.region, r)
		}, 3)
		reader := client.NewAgarReader(env, setup.region, node)
		_, err := ycsb.Run(ycsb.RunConfig{
			Reader:     reader,
			Generator:  d.zipfGen(d.Params.ZipfSkew)(d.Params.Seed + 13),
			Operations: d.Params.Operations,
			WarmupOps:  d.Params.WarmupOps,
			Node:       node,
			Clients:    d.Params.Clients,
		})
		if err != nil {
			return out, err
		}
		snap := Figure10Snapshot{
			Region:       setup.region,
			CacheMB:      setup.cacheMB,
			SlotsByGroup: make(map[int]int),
		}
		for _, idxs := range node.Cache().Snapshot() {
			snap.SlotsByGroup[len(idxs)] += len(idxs)
			snap.TotalSlots += len(idxs)
		}
		out.Snapshots = append(out.Snapshots, snap)
	}
	return out, nil
}

// Render prints each snapshot's block-count distribution.
func (f Figure10Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 10: Agar cache contents (share of occupied slots by chunks-per-object)\n")
	for _, s := range f.Snapshots {
		fmt.Fprintf(&b, "%s %.0fMB:", s.Region, s.CacheMB)
		groups := make([]int, 0, len(s.SlotsByGroup))
		for g := range s.SlotsByGroup {
			groups = append(groups, g)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(groups)))
		for _, g := range groups {
			share := 0.0
			if s.TotalSlots > 0 {
				share = 100 * float64(s.SlotsByGroup[g]) / float64(s.TotalSlots)
			}
			fmt.Fprintf(&b, " %d-blocks=%.0f%%", g, share)
		}
		b.WriteString("\n")
	}
	return b.String()
}
