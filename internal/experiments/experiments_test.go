package experiments

import (
	"strings"
	"testing"
	"time"

	"github.com/agardist/agar/internal/geo"
)

// smallParams shrinks the campaign so tests stay fast while preserving the
// deployment's structure.
func smallParams() Params {
	p := DefaultParams()
	p.NumObjects = 120
	p.Operations = 400
	p.WarmupOps = 400
	p.Runs = 2
	return p
}

func smallDeployment(t testing.TB) *Deployment {
	t.Helper()
	d, err := NewDeployment(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewDeploymentLoadsWorkingSet(t *testing.T) {
	d := smallDeployment(t)
	// 120 objects x 12 chunks over 6 regions: 240 chunks per region.
	for _, r := range geo.DefaultRegions() {
		if n := d.Cluster.Store(r).Len(); n != 240 {
			t.Fatalf("region %v has %d chunks", r, n)
		}
	}
}

func TestNewDeploymentValidation(t *testing.T) {
	p := DefaultParams()
	p.NumObjects = 0
	if _, err := NewDeployment(p); err == nil {
		t.Fatal("accepted zero objects")
	}
}

func TestSlotsForMB(t *testing.T) {
	d := smallDeployment(t)
	// Paper: 10 MB cache fits ten full 1 MB objects = 90 chunk slots.
	if got := d.SlotsForMB(10); got != 90 {
		t.Fatalf("SlotsForMB(10) = %d, want 90", got)
	}
	if got := d.SlotsForMB(5); got != 45 {
		t.Fatalf("SlotsForMB(5) = %d, want 45", got)
	}
	if got := d.SlotsForMB(100); got != 900 {
		t.Fatalf("SlotsForMB(100) = %d, want 900", got)
	}
}

func TestStrategyNames(t *testing.T) {
	cases := map[string]Strategy{
		"Backend": {Kind: StratBackend},
		"LRU-3":   {Kind: StratLRU, C: 3},
		"LFU-9":   {Kind: StratLFU, C: 9},
		"Agar":    {Kind: StratAgar},
	}
	for want, s := range cases {
		if got := s.Name(); got != want {
			t.Fatalf("Name() = %q, want %q", got, want)
		}
	}
}

func TestTableIMatchesPaperExactly(t *testing.T) {
	res := TableI()
	for r, want := range res.Paper {
		if res.Probed[r] != want {
			t.Fatalf("probed %v = %v, paper says %v", r, res.Probed[r], want)
		}
	}
	out := res.Render()
	if !strings.Contains(out, "frankfurt") || !strings.Contains(out, "4600") {
		t.Fatalf("render missing content:\n%s", out)
	}
}

func TestFigure2Shape(t *testing.T) {
	d := smallDeployment(t)
	res, err := Figure2(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 12 {
		t.Fatalf("got %d points", len(res.Points))
	}
	byRegion := map[geo.RegionID]map[int]time.Duration{}
	for _, p := range res.Points {
		if byRegion[p.Region] == nil {
			byRegion[p.Region] = map[int]time.Duration{}
		}
		byRegion[p.Region][p.C] = p.Mean
	}
	for _, region := range []geo.RegionID{geo.Frankfurt, geo.Sydney} {
		series := byRegion[region]
		// Latency must be non-increasing in c.
		prev := series[0]
		for _, c := range []int{1, 3, 5, 7, 9} {
			if series[c] > prev+prev/10 { // allow 10% noise
				t.Fatalf("%v: latency increased at c=%d: %v -> %v", region, c, prev, series[c])
			}
			prev = series[c]
		}
		// The relationship is non-linear: the drop from c=0 to c=3 must be
		// far smaller than the drop from c=3 to c=7 for Frankfurt.
		if region == geo.Frankfurt {
			early := series[0] - series[3]
			late := series[3] - series[7]
			if late < 2*early {
				t.Errorf("frankfurt gains not back-loaded: early=%v late=%v", early, late)
			}
		}
		// Sydney must benefit substantially already at c=3 (paper §II-C).
		if region == geo.Sydney {
			if series[3] > series[0]*7/10 {
				t.Errorf("sydney c=3 (%v) should be well under c=0 (%v)", series[3], series[0])
			}
		}
	}
	if out := res.Render(); !strings.Contains(out, "Figure 2") {
		t.Fatal("render header missing")
	}
}

func TestPolicyComparisonShape(t *testing.T) {
	d := smallDeployment(t)
	res, err := PolicyComparison(d, geo.Frankfurt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 12 {
		t.Fatalf("got %d rows", len(res.Rows))
	}

	agar, ok := res.Row("Agar")
	if !ok {
		t.Fatal("no Agar row")
	}
	backend, _ := res.Row("Backend")
	best := res.BestStatic()
	worst := res.WorstStatic()

	// The paper's headline shape: Agar <= best static < worst static <
	// backend (roughly).
	if agar.Mean > best.Mean {
		t.Errorf("Agar (%v) lost to best static %s (%v)", agar.Mean, best.Strategy, best.Mean)
	}
	if worst.Mean >= backend.Mean {
		t.Errorf("worst static (%v) should still beat backend (%v)", worst.Mean, backend.Mean)
	}
	if agar.Mean >= worst.Mean*3/4 {
		t.Errorf("Agar (%v) should be far below worst static (%v)", agar.Mean, worst.Mean)
	}

	// Hit ratios decrease with c for the fixed policies (Figure 7).
	lru1, _ := res.Row("LRU-1")
	lru9, _ := res.Row("LRU-9")
	if lru1.HitRatio <= lru9.HitRatio {
		t.Errorf("LRU-1 hit ratio (%v) should exceed LRU-9's (%v)", lru1.HitRatio, lru9.HitRatio)
	}

	if out := res.RenderFigure6(); !strings.Contains(out, "Agar vs best static") {
		t.Fatal("figure 6 render incomplete")
	}
	if out := res.RenderFigure7(); !strings.Contains(out, "hit-ratio") {
		t.Fatal("figure 7 render incomplete")
	}
}

func TestFigure9RendersAndOrdersSkews(t *testing.T) {
	d := smallDeployment(t)
	res := Figure9(d)
	if len(res.CDF) != 4 {
		t.Fatalf("cdf count %d", len(res.CDF))
	}
	// Higher skew concentrates mass: at x=5 the CDF must increase with skew.
	for i := 1; i < len(res.Skews); i++ {
		if res.CDF[i][4] <= res.CDF[i-1][4] {
			t.Fatalf("skew %v top-5 share not above skew %v", res.Skews[i], res.Skews[i-1])
		}
	}
	if out := res.Render(); !strings.Contains(out, "z=1.4") {
		t.Fatal("render incomplete")
	}
}

func TestFigure10MixesBlockCounts(t *testing.T) {
	d := smallDeployment(t)
	res, err := Figure10(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Snapshots) != 4 {
		t.Fatalf("got %d snapshots", len(res.Snapshots))
	}
	for _, s := range res.Snapshots {
		if s.TotalSlots == 0 {
			t.Fatalf("%v %vMB: empty cache", s.Region, s.CacheMB)
		}
		// Agar diversifies contents: more than one group size (the paper's
		// central observation about Figure 10).
		if len(s.SlotsByGroup) < 2 {
			t.Errorf("%v %vMB: cache holds a single group %v", s.Region, s.CacheMB, s.SlotsByGroup)
		}
		// Occupancy never exceeds capacity.
		if s.TotalSlots > d.SlotsForMB(s.CacheMB) {
			t.Errorf("%v %vMB: %d slots > capacity %d", s.Region, s.CacheMB, s.TotalSlots, d.SlotsForMB(s.CacheMB))
		}
	}
	if out := res.Render(); !strings.Contains(out, "Figure 10") {
		t.Fatal("render incomplete")
	}
}
