package client

import (
	"time"

	"github.com/agardist/agar/internal/cache"
	"github.com/agardist/agar/internal/core"
	"github.com/agardist/agar/internal/geo"
)

// chunkGetter is the byte-access side of a peer cache, beyond the
// core.ChunkResidency view the knapsack accounting uses. Local simulated
// peer caches satisfy it; remote digest mirrors do not (live readers fetch
// peer bytes over the wire instead).
type chunkGetter interface {
	Get(id cache.EntryID) ([]byte, error)
}

// AgarReader reads through an Agar node (§III): every read first asks the
// node's request monitor for a hint, serves hinted chunks from the region's
// cache, fetches the remainder of the k nearest chunks from the backend,
// and populates hinted-but-missing chunks into the cache off the read path.
type AgarReader struct {
	env    *Env
	region geo.RegionID
	node   *core.Node
}

// NewAgarReader returns a reader bound to its region's Agar node.
func NewAgarReader(env *Env, region geo.RegionID, node *core.Node) *AgarReader {
	return &AgarReader{env: env, region: region, node: node}
}

// Name implements Reader.
func (r *AgarReader) Name() string { return "agar" }

// Node exposes the underlying Agar node.
func (r *AgarReader) Node() *core.Node { return r.node }

// Read implements Reader.
func (r *AgarReader) Read(key string) ([]byte, Result, error) {
	codec := r.env.Cluster.Codec()
	k := codec.K()

	// Ask the request monitor for the caching hint (records the access).
	hint := r.node.HandleRead(key)
	monLat := r.env.MonitorLatency
	if r.env.Sampler != nil {
		monLat = r.env.Sampler.Fixed(monLat)
	}

	store := r.node.Cache()
	cached := make([]fetchOutcome, 0, len(hint.CacheChunks))
	have := make(map[int]bool, len(hint.CacheChunks))
	missingHint := make([]int, 0, len(hint.CacheChunks))
	for _, idx := range hint.CacheChunks {
		data, err := store.Get(cache.EntryID{Key: key, Index: idx})
		if err != nil {
			missingHint = append(missingHint, idx)
			continue
		}
		cached = append(cached, fetchOutcome{index: idx, data: data})
		have[idx] = true
	}

	// Fetch the nearest not-in-hand chunks until k total. Hinted chunks
	// that missed the cache are fetched from their home regions like any
	// other chunk (they are by construction among the k nearest retained).
	// Chunks resident in cooperative peer caches (§VI) count as "near" at
	// the peer's latency and are read from the peer instead of the WAN.
	plan := geo.PlanFetch(r.env.Matrix, r.env.Cluster.Placement(), key, codec.Total(), r.region)
	effLat := make(map[int]int64, len(plan.Chunks))
	order := make([]int, len(plan.Chunks))
	for i, idx := range plan.Chunks {
		order[i] = idx
		effLat[idx] = plan.Latency[i]
		if p, ok := hint.PeerChunks[idx]; ok && int64(p.Latency) < effLat[idx] {
			effLat[idx] = int64(p.Latency)
		}
	}
	sortIntsBy(order, func(a, b int) bool {
		if effLat[a] != effLat[b] {
			return effLat[a] < effLat[b]
		}
		return a < b
	})
	var want, fromPeers []int
	for _, idx := range order {
		if len(cached)+len(want)+len(fromPeers) == k {
			break
		}
		if have[idx] {
			continue
		}
		if _, ok := hint.PeerChunks[idx]; ok {
			fromPeers = append(fromPeers, idx)
			continue
		}
		want = append(want, idx)
	}

	var res Result
	outcomes := cached
	var peerLat time.Duration
	for _, idx := range fromPeers {
		p := hint.PeerChunks[idx]
		// Residency-only peers (live digest mirrors) expose no byte access;
		// in the simulator every real peer cache is a chunkGetter. A peer
		// without one counts as a miss and the chunk detours to the backend.
		getter, ok := p.Store.(chunkGetter)
		if !ok {
			want = append(want, idx)
			continue
		}
		data, err := getter.Get(cache.EntryID{Key: key, Index: idx})
		lat := p.Latency
		if r.env.Sampler != nil {
			lat = r.env.Sampler.Fixed(lat)
		}
		if lat > peerLat {
			peerLat = lat
		}
		if err != nil {
			// Peer evicted it since the hint: fall back to the backend.
			want = append(want, idx)
			continue
		}
		outcomes = append(outcomes, fetchOutcome{index: idx, data: data})
		have[idx] = true
		res.PeerChunks++
	}
	if len(want) > 0 {
		fetched, lat, waves, err := fetchBackend(r.env, r.region, key, want, have, maxWaves(codec))
		if err != nil {
			return nil, Result{Latency: monLat + lat, Waves: waves}, err
		}
		outcomes = append(outcomes, fetched...)
		res.Latency = lat
		res.Waves = waves
		res.BackendChunks = len(fetched)
	}
	if peerLat > res.Latency {
		res.Latency = peerLat
	}
	if len(cached) > 0 {
		if cl := r.env.cacheLatency(); cl > res.Latency {
			res.Latency = cl
		}
	}
	res.Latency += monLat
	res.CacheChunks = len(cached)
	res.FullHit = len(cached) == k
	res.PartialHit = (len(cached) > 0 && len(cached) < k) || (res.PeerChunks > 0 && len(cached) == 0)

	data, decLat, err := decode(r.env, outcomes)
	if err != nil {
		return nil, res, err
	}
	res.Latency += decLat

	// Populate hinted-but-missing chunks off the read path. The node's
	// admission filter enforces the active configuration.
	if len(missingHint) > 0 {
		byIdx := make(map[int][]byte, len(outcomes))
		for _, o := range outcomes {
			byIdx[o.index] = o.data
		}
		for _, idx := range missingHint {
			chunk, ok := byIdx[idx]
			if !ok {
				chunk, ok = offPathFetch(r.env, r.region, key, idx)
				if !ok {
					continue
				}
			}
			_ = store.Put(cache.EntryID{Key: key, Index: idx}, chunk)
		}
	}
	return data, res, nil
}
