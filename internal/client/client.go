// Package client implements the erasure-coded storage client and the four
// reading strategies the paper evaluates (§V-A):
//
//   - Backend: read the k nearest chunks directly from the S3-like backend.
//   - LRU-c / LFU-c: read through a local chunk cache that keeps a fixed
//     number c of chunks per object under the LRU or LFU eviction policy.
//   - Agar: consult the local Agar node for a hint, read hinted chunks from
//     the local cache, and fetch the rest from the backend.
//
// Reads request chunks in parallel; the modelled read latency is the
// maximum of the per-chunk latencies (plus a decode cost), exactly how the
// modified YCSB client in the paper measures a full-object read. Cache
// population happens off the read path and adds no latency, matching the
// paper's separate writer thread pool.
package client

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/agardist/agar/internal/backend"
	"github.com/agardist/agar/internal/geo"
	"github.com/agardist/agar/internal/netsim"
)

// ErrUnavailable is returned when fewer than k chunks can be fetched.
var ErrUnavailable = errors.New("client: not enough chunks available")

// Env is the shared per-deployment environment a client reads against.
type Env struct {
	// Cluster is the multi-region backend.
	Cluster *backend.Cluster
	// Matrix holds the true inter-region chunk-read latencies.
	Matrix *geo.LatencyMatrix
	// Sampler perturbs modelled latencies; nil means exact model values.
	Sampler *netsim.Sampler
	// CacheLatency is the cost of reading chunks from the local cache.
	CacheLatency time.Duration
	// DecodeLatency is the CPU cost of erasure decoding one object.
	DecodeLatency time.Duration
	// MonitorLatency is the request-monitor round trip an Agar read pays
	// before fetching (the paper measured ~0.5 ms).
	MonitorLatency time.Duration
	// ChunkBytes is the modelled (paper-scale) chunk size that bandwidth
	// caps on the sampler charge transfer time for; zero keeps chunk
	// latency size-independent, bit-exact with unsized sampling.
	ChunkBytes int
	// StoreLatency and StoreErrRate model the blob-store tier behind every
	// backend region (see store.Tier): extra per-chunk service time over
	// the matrix baseline, and a transient per-chunk failure probability.
	// A failed fetch costs its full latency and triggers the degraded-read
	// substitution waves without blacklisting the region. Both zero — the
	// "mem" tier — leave the model exactly as it was.
	StoreLatency time.Duration
	StoreErrRate float64
}

// chunkLatency samples the modelled latency of reading one chunk from a
// backend region, including the blob-store tier's service time and any
// bandwidth-capped transfer cost.
func (e *Env) chunkLatency(from, to geo.RegionID) time.Duration {
	var lat time.Duration
	switch {
	case e.Sampler != nil && e.ChunkBytes > 0:
		lat = e.Sampler.ChunkSized(from, to, e.ChunkBytes)
	case e.Sampler != nil:
		lat = e.Sampler.Chunk(from, to)
	default:
		lat = e.Matrix.Get(from, to)
	}
	if e.StoreLatency > 0 {
		if e.Sampler != nil {
			lat += e.Sampler.Fixed(e.StoreLatency)
		} else {
			lat += e.StoreLatency
		}
	}
	return lat
}

// storeFault draws one transient blob-tier failure (never for the zero
// rate, which also never touches the sampler's jitter stream).
func (e *Env) storeFault() bool {
	return e.StoreErrRate > 0 && e.Sampler != nil && e.Sampler.Flip(e.StoreErrRate)
}

func (e *Env) cacheLatency() time.Duration {
	if e.Sampler != nil {
		return e.Sampler.Fixed(e.CacheLatency)
	}
	return e.CacheLatency
}

// Result describes one read.
type Result struct {
	// Latency is the modelled end-to-end read latency.
	Latency time.Duration
	// CacheChunks counts chunks served from the local cache.
	CacheChunks int
	// PeerChunks counts chunks served from cooperative peer caches.
	PeerChunks int
	// BackendChunks counts chunks fetched from backend regions.
	BackendChunks int
	// FullHit is true when every needed chunk came from the cache.
	FullHit bool
	// PartialHit is true when at least one but not all chunks came from
	// the cache.
	PartialHit bool
	// Waves counts backend fetch rounds (1 in the failure-free case).
	Waves int
}

// Hit reports whether the read counts towards the paper's Figure 7 hit
// ratio (full or partial hits over requests).
func (r Result) Hit() bool { return r.FullHit || r.PartialHit }

// Reader is a strategy that reads whole objects.
type Reader interface {
	// Read fetches and decodes the object, returning its bytes and the
	// read's accounting.
	Read(key string) ([]byte, Result, error)
	// Name identifies the strategy ("backend", "lru-3", "agar", ...).
	Name() string
}

// fetchOutcome is one chunk obtained from somewhere, with its latency.
type fetchOutcome struct {
	index   int
	data    []byte
	latency time.Duration
}

// fetchBackend fetches the wanted chunk indices from their backend regions
// in parallel waves. If a chunk fails (region down), the next wave
// substitutes the nearest unused chunks. The returned latency is the sum of
// per-wave maxima — the client must wait for the slowest response of a wave
// before it knows it needs more chunks. Indices in `have` are chunks the
// caller already holds (cache or peer hits); substitution never proposes
// them, since re-fetching one would not add a new distinct chunk.
func fetchBackend(env *Env, region geo.RegionID, key string, want []int, have map[int]bool, waveLimit int) ([]fetchOutcome, time.Duration, int, error) {
	codec := env.Cluster.Codec()
	total := codec.Total()
	locs := env.Cluster.Placement().Locate(key, total)
	plan := geo.PlanFetch(env.Matrix, env.Cluster.Placement(), key, total, region)

	tried := make(map[int]bool, total)
	for idx := range have {
		tried[idx] = true
	}
	failedRegions := make(map[geo.RegionID]bool)
	pending := append([]int(nil), want...)
	var out []fetchOutcome
	var totalLat time.Duration
	waves := 0

	for len(pending) > 0 {
		if waves >= waveLimit {
			return nil, totalLat, waves, fmt.Errorf("%w: %q after %d waves", ErrUnavailable, key, waves)
		}
		waves++
		var waveLat time.Duration
		failed := 0
		for _, idx := range pending {
			tried[idx] = true
			lat := env.chunkLatency(region, locs[idx])
			if lat > waveLat {
				waveLat = lat
			}
			// A severed link (netsim partition or region outage) fails the
			// fetch after the full modelled latency — the client pays the
			// timeout before it can substitute another chunk.
			if env.Sampler != nil && env.Sampler.Unreachable(region, locs[idx]) {
				failed++
				failedRegions[locs[idx]] = true
				continue
			}
			// A transient blob-tier fault (flaky remote store) also costs the
			// full latency, but neither blacklists the region nor burns the
			// chunk: the next substitution wave may retry the very same
			// chunk, the way real clients retry a 500 from object storage.
			// waveLimit still bounds the whole read.
			if env.storeFault() {
				failed++
				delete(tried, idx)
				continue
			}
			data, err := env.Cluster.Store(locs[idx]).Get(backend.ChunkID{Key: key, Index: idx})
			if err != nil {
				failed++
				failedRegions[locs[idx]] = true
				continue
			}
			out = append(out, fetchOutcome{index: idx, data: data, latency: lat})
		}
		totalLat += waveLat
		if failed == 0 {
			break
		}
		// Substitute the nearest chunks not yet tried, skipping regions the
		// client has already seen fail during this read.
		pending = pending[:0]
		skippedFailed := false
		for _, idx := range plan.Chunks {
			if failed == len(pending) {
				break
			}
			if tried[idx] {
				continue
			}
			if failedRegions[locs[idx]] {
				skippedFailed = true
				continue
			}
			pending = append(pending, idx)
		}
		if len(pending) < failed && skippedFailed {
			// Not enough healthy-region chunks: fall back to retrying
			// failed regions (they may have recovered).
			for _, idx := range plan.Chunks {
				if len(pending) == failed {
					break
				}
				if !tried[idx] && !containsInt(pending, idx) {
					pending = append(pending, idx)
				}
			}
		}
		if len(pending) < failed {
			return nil, totalLat, waves, fmt.Errorf("%w: %q exhausted all chunks", ErrUnavailable, key)
		}
	}
	return out, totalLat, waves, nil
}

// sortIntsBy sorts xs with the given less function.
func sortIntsBy(xs []int, less func(a, b int) bool) {
	sort.Slice(xs, func(i, j int) bool { return less(xs[i], xs[j]) })
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// maxWaves bounds degraded-read retries: every chunk can be tried once.
func maxWaves(codec interface{ Total() int }) int { return codec.Total() }

// offPathFetch reads one chunk directly from its home region for off-path
// cache population, respecting chaos cuts: a chunk behind a severed link
// is not fetchable, exactly as on the read path.
func offPathFetch(env *Env, region geo.RegionID, key string, idx int) ([]byte, bool) {
	locs := env.Cluster.Placement().Locate(key, env.Cluster.Codec().Total())
	if idx < 0 || idx >= len(locs) {
		return nil, false
	}
	if env.Sampler != nil && env.Sampler.Unreachable(region, locs[idx]) {
		return nil, false
	}
	data, err := env.Cluster.GetChunk(key, idx)
	if err != nil {
		return nil, false
	}
	return data, true
}

// decode reassembles the object from fetched chunks and returns the decode
// cost to add to the read latency.
func decode(env *Env, outcomes []fetchOutcome) ([]byte, time.Duration, error) {
	codec := env.Cluster.Codec()
	chunks := make([][]byte, codec.Total())
	for _, o := range outcomes {
		chunks[o.index] = o.data
	}
	data, err := codec.Decode(chunks)
	if err != nil {
		return nil, 0, fmt.Errorf("client: decode: %w", err)
	}
	dec := env.DecodeLatency
	if env.Sampler != nil {
		dec = env.Sampler.Fixed(dec)
	}
	return data, dec, nil
}

// BackendReader reads the k nearest chunks straight from the backend — the
// paper's "Backend" baseline and the c=0 case of Figure 2.
type BackendReader struct {
	env    *Env
	region geo.RegionID
}

// NewBackendReader returns a backend-only reader for a client region.
func NewBackendReader(env *Env, region geo.RegionID) *BackendReader {
	return &BackendReader{env: env, region: region}
}

// Name implements Reader.
func (r *BackendReader) Name() string { return "backend" }

// Read implements Reader.
func (r *BackendReader) Read(key string) ([]byte, Result, error) {
	codec := r.env.Cluster.Codec()
	plan := geo.PlanFetch(r.env.Matrix, r.env.Cluster.Placement(), key, codec.Total(), r.region)
	want := plan.NearestK(codec.K())
	outcomes, lat, waves, err := fetchBackend(r.env, r.region, key, want, nil, maxWaves(codec))
	if err != nil {
		return nil, Result{Latency: lat, Waves: waves}, err
	}
	data, decLat, err := decode(r.env, outcomes)
	if err != nil {
		return nil, Result{Latency: lat, Waves: waves}, err
	}
	res := Result{
		Latency:       lat + decLat,
		BackendChunks: len(outcomes),
		Waves:         waves,
	}
	return data, res, nil
}
