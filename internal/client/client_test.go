package client

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/agardist/agar/internal/backend"
	"github.com/agardist/agar/internal/cache"
	"github.com/agardist/agar/internal/core"
	"github.com/agardist/agar/internal/erasure"
	"github.com/agardist/agar/internal/geo"
)

const (
	testObjSize    = 9 * 1024 // 9 KiB objects -> ~1 KiB chunks
	testChunkBytes = 1025     // ChunkSize(9216) for RS(9,3): ceil((9216+8)/9)
)

// testEnv builds a six-region deployment with nObjects random objects and
// no jitter, so latencies are exact model values.
func testEnv(t testing.TB, nObjects int) (*Env, map[string][]byte) {
	t.Helper()
	codec, err := erasure.New(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	placement := geo.NewRoundRobin(geo.DefaultRegions(), false)
	cluster := backend.NewCluster(geo.DefaultRegions(), codec, placement)
	rng := rand.New(rand.NewSource(99))
	objects := make(map[string][]byte, nObjects)
	for i := 0; i < nObjects; i++ {
		key := fmt.Sprintf("object-%05d", i)
		data := make([]byte, testObjSize)
		rng.Read(data)
		objects[key] = data
		if err := cluster.PutObject(key, data); err != nil {
			t.Fatal(err)
		}
	}
	env := &Env{
		Cluster:        cluster,
		Matrix:         geo.DefaultMatrix(),
		CacheLatency:   20 * time.Millisecond,
		DecodeLatency:  5 * time.Millisecond,
		MonitorLatency: 500 * time.Microsecond,
	}
	return env, objects
}

func newAgarNode(env *Env, region geo.RegionID, slots int) *core.Node {
	n := core.NewNode(core.NodeParams{
		Region:         region,
		Regions:        geo.DefaultRegions(),
		Placement:      env.Cluster.Placement(),
		K:              9,
		M:              3,
		CacheBytes:     int64(slots) * testChunkBytes,
		ChunkBytes:     testChunkBytes,
		ReconfigPeriod: 30 * time.Second,
		CacheLatency:   env.CacheLatency,
	})
	n.RegionManager().WarmUp(func(r geo.RegionID) time.Duration {
		return env.Matrix.Get(region, r)
	}, 2)
	return n
}

func TestBackendReaderLatencyModel(t *testing.T) {
	env, objects := testEnv(t, 3)
	r := NewBackendReader(env, geo.Frankfurt)
	if r.Name() != "backend" {
		t.Fatal("name")
	}
	data, res, err := r.Read("object-00000")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, objects["object-00000"]) {
		t.Fatal("data mismatch")
	}
	// Frankfurt's nearest 9 include one Tokyo chunk (980 ms) + 5 ms decode.
	want := 985 * time.Millisecond
	if res.Latency != want {
		t.Fatalf("latency = %v, want %v", res.Latency, want)
	}
	if res.BackendChunks != 9 || res.CacheChunks != 0 || res.Hit() || res.Waves != 1 {
		t.Fatalf("result = %+v", res)
	}
}

func TestBackendReaderSydney(t *testing.T) {
	env, _ := testEnv(t, 1)
	r := NewBackendReader(env, geo.Sydney)
	_, res, err := r.Read("object-00000")
	if err != nil {
		t.Fatal(err)
	}
	// Sydney's nearest 9: SYD x2, TYO x2, NVA x2, SAO x2, FRA x1 -> 1000ms + decode.
	if want := 1005 * time.Millisecond; res.Latency != want {
		t.Fatalf("latency = %v, want %v", res.Latency, want)
	}
}

func TestBackendReaderMissingObject(t *testing.T) {
	env, _ := testEnv(t, 1)
	r := NewBackendReader(env, geo.Frankfurt)
	if _, _, err := r.Read("does-not-exist"); err == nil {
		t.Fatal("expected error for missing object")
	}
}

func TestBackendReaderDegraded(t *testing.T) {
	env, objects := testEnv(t, 1)
	r := NewBackendReader(env, geo.Frankfurt)

	// Take Tokyo down: its chunk must be replaced by a Sydney chunk in a
	// second wave.
	env.Cluster.Store(geo.Tokyo).SetDown(true)
	data, res, err := r.Read("object-00000")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, objects["object-00000"]) {
		t.Fatal("degraded read returned wrong data")
	}
	if res.Waves != 2 {
		t.Fatalf("waves = %d, want 2", res.Waves)
	}
	// Wave 1 max = Tokyo 980 (the failed request still costs its RTT);
	// wave 2 = Sydney 1150; decode 5.
	if want := (980 + 1150 + 5) * time.Millisecond; res.Latency != want {
		t.Fatalf("latency = %v, want %v", res.Latency, want)
	}

	// Two regions down: 8 healthy chunks < k, must error.
	env.Cluster.Store(geo.Sydney).SetDown(true)
	if _, _, err := r.Read("object-00000"); err == nil {
		t.Fatal("expected unavailability with 4 chunks down")
	}
}

func TestFixedReaderMissThenHit(t *testing.T) {
	env, objects := testEnv(t, 2)
	r := NewFixedReader(env, geo.Frankfurt, cache.NewLRU(), 3, 90*testChunkBytes)
	if r.Name() != "lru-3" {
		t.Fatalf("name = %q", r.Name())
	}

	// First read: cold miss, full backend latency.
	_, res, err := r.Read("object-00000")
	if err != nil {
		t.Fatal(err)
	}
	if res.Hit() || res.CacheChunks != 0 {
		t.Fatalf("cold read: %+v", res)
	}
	if want := 985 * time.Millisecond; res.Latency != want {
		t.Fatalf("cold latency = %v, want %v", res.Latency, want)
	}

	// Second read: the 3 most distant retained chunks (TYO x1 + SAO x2)
	// are cached; residual max = N. Virginia 850 + decode 5.
	data, res, err := r.Read("object-00000")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, objects["object-00000"]) {
		t.Fatal("data mismatch")
	}
	if !res.PartialHit || res.FullHit || res.CacheChunks != 3 || res.BackendChunks != 6 {
		t.Fatalf("warm read: %+v", res)
	}
	if want := 855 * time.Millisecond; res.Latency != want {
		t.Fatalf("warm latency = %v, want %v", res.Latency, want)
	}
}

func TestFixedReaderFullReplica(t *testing.T) {
	env, _ := testEnv(t, 1)
	r := NewFixedReader(env, geo.Frankfurt, cache.NewLFU(), 9, 90*testChunkBytes)
	if r.Name() != "lfu-9" {
		t.Fatalf("name = %q", r.Name())
	}
	r.Read("object-00000")
	_, res, err := r.Read("object-00000")
	if err != nil {
		t.Fatal(err)
	}
	if !res.FullHit || res.BackendChunks != 0 || res.CacheChunks != 9 {
		t.Fatalf("full-replica read: %+v", res)
	}
	// Full hit: cache latency 20 + decode 5.
	if want := 25 * time.Millisecond; res.Latency != want {
		t.Fatalf("latency = %v, want %v", res.Latency, want)
	}
}

func TestFixedReaderEviction(t *testing.T) {
	env, _ := testEnv(t, 10)
	// Cache of 6 chunk slots with c=3: only two objects fit.
	r := NewFixedReader(env, geo.Frankfurt, cache.NewLRU(), 3, 6*testChunkBytes)
	for i := 0; i < 3; i++ {
		key := fmt.Sprintf("object-%05d", i)
		if _, _, err := r.Read(key); err != nil {
			t.Fatal(err)
		}
	}
	// Object 0 should have been evicted (LRU), objects 1 and 2 resident.
	if got := r.Cache().IndicesOf("object-00000"); len(got) != 0 {
		t.Fatalf("object 0 still cached: %v", got)
	}
	_, res, err := r.Read("object-00002")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hit() {
		t.Fatal("object 2 should hit")
	}
}

func TestFixedReaderInvalidC(t *testing.T) {
	env, _ := testEnv(t, 1)
	for _, c := range []int{0, 10} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("c=%d did not panic", c)
				}
			}()
			NewFixedReader(env, geo.Frankfurt, cache.NewLRU(), c, 1024)
		}()
	}
}

func TestAgarReaderFollowsHints(t *testing.T) {
	env, objects := testEnv(t, 5)
	node := newAgarNode(env, geo.Frankfurt, 18)
	r := NewAgarReader(env, geo.Frankfurt, node)
	if r.Name() != "agar" || r.Node() != node {
		t.Fatal("identity")
	}

	// Build popularity, then reconfigure.
	for i := 0; i < 50; i++ {
		r.Read("object-00000")
	}
	for i := 0; i < 10; i++ {
		r.Read("object-00001")
	}
	node.ForceReconfigure()
	cfg := node.Manager().Active()
	hot := cfg.ChunksFor("object-00000")
	if len(hot) == 0 {
		t.Fatal("hot object not configured")
	}

	// Next read fetches hinted chunks from backend and caches them...
	_, res1, err := r.Read("object-00000")
	if err != nil {
		t.Fatal(err)
	}
	if res1.Hit() {
		t.Fatalf("first post-config read should not hit: %+v", res1)
	}
	if got := node.Cache().IndicesOf("object-00000"); len(got) != len(hot) {
		t.Fatalf("cache population: %v vs config %v", got, hot)
	}
	// ...and the read after that serves them from cache.
	data, res2, err := r.Read("object-00000")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, objects["object-00000"]) {
		t.Fatal("data mismatch")
	}
	if res2.CacheChunks != len(hot) || !res2.Hit() {
		t.Fatalf("hinted read: %+v", res2)
	}
	if res2.Latency >= res1.Latency {
		t.Fatalf("cached read (%v) not faster than uncached (%v)", res2.Latency, res1.Latency)
	}
}

func TestAgarReaderUnknownKeyStillWorks(t *testing.T) {
	env, objects := testEnv(t, 1)
	node := newAgarNode(env, geo.Sydney, 9)
	r := NewAgarReader(env, geo.Sydney, node)
	data, res, err := r.Read("object-00000")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, objects["object-00000"]) {
		t.Fatal("data mismatch")
	}
	if res.CacheChunks != 0 {
		t.Fatalf("no hint should mean no cache chunks: %+v", res)
	}
}

func TestWriterInvalidatesCaches(t *testing.T) {
	env, _ := testEnv(t, 1)
	fixed := NewFixedReader(env, geo.Frankfurt, cache.NewLRU(), 3, 90*testChunkBytes)
	fixed.Read("object-00000") // populate
	fixed.Read("object-00000")
	if got := fixed.Cache().IndicesOf("object-00000"); len(got) == 0 {
		t.Fatal("precondition: cache populated")
	}

	w := NewWriter(env, geo.Frankfurt, fixed.Cache())
	fresh := bytes.Repeat([]byte{7}, testObjSize)
	lat, err := w.Write("object-00000", fresh)
	if err != nil {
		t.Fatal(err)
	}
	if lat <= 0 {
		t.Fatal("write latency must be positive")
	}
	if got := fixed.Cache().IndicesOf("object-00000"); len(got) != 0 {
		t.Fatalf("stale chunks survived the write: %v", got)
	}
	data, _, err := fixed.Read("object-00000")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, fresh) {
		t.Fatal("read-after-write returned stale data")
	}
}

func TestWriterAddInvalidator(t *testing.T) {
	env, _ := testEnv(t, 1)
	w := NewWriter(env, geo.Frankfurt)
	fixed := NewFixedReader(env, geo.Frankfurt, cache.NewLRU(), 1, 9*testChunkBytes)
	w.AddInvalidator(fixed.Cache())
	fixed.Read("object-00000")
	fixed.Read("object-00000")
	if _, err := w.Write("object-00000", make([]byte, testObjSize)); err != nil {
		t.Fatal(err)
	}
	if got := fixed.Cache().IndicesOf("object-00000"); len(got) != 0 {
		t.Fatal("late-registered invalidator not applied")
	}
}

func TestChunkBytesConstantMatchesCodec(t *testing.T) {
	codec, _ := erasure.New(9, 3)
	if got := codec.ChunkSize(testObjSize); got != testChunkBytes {
		t.Fatalf("testChunkBytes=%d but codec says %d", testChunkBytes, got)
	}
}
