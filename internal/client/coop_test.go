package client

import (
	"bytes"
	"testing"
	"time"

	"github.com/agardist/agar/internal/geo"
)

// TestCooperativeCaching exercises the §VI extension end to end: Frankfurt
// and Dublin nodes peer with each other; once Dublin's cache holds an
// object's distant chunks, Frankfurt clients read them from Dublin at
// peer latency instead of crossing the WAN, and Frankfurt's knapsack stops
// spending local slots on them.
func TestCooperativeCaching(t *testing.T) {
	env, objects := testEnv(t, 6)
	peerLat := 40 * time.Millisecond

	fra := newAgarNode(env, geo.Frankfurt, 18)
	dub := newAgarNode(env, geo.Dublin, 18)
	fra.AddPeer(geo.Dublin, dub.Cache(), peerLat)
	dub.AddPeer(geo.Frankfurt, fra.Cache(), peerLat)

	fraReader := NewAgarReader(env, geo.Frankfurt, fra)
	dubReader := NewAgarReader(env, geo.Dublin, dub)

	// Dublin clients hammer object-0 and cache its distant chunks.
	for i := 0; i < 60; i++ {
		if _, _, err := dubReader.Read("object-00000"); err != nil {
			t.Fatal(err)
		}
	}
	dub.ForceReconfigure()
	dubReader.Read("object-00000") // populate Dublin's cache
	dubChunks := dub.Cache().IndicesOf("object-00000")
	if len(dubChunks) == 0 {
		t.Fatal("precondition: Dublin cached nothing")
	}

	// A Frankfurt client reading the same object must use Dublin's cache.
	data, res, err := fraReader.Read("object-00000")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, objects["object-00000"]) {
		t.Fatal("cooperative read returned wrong data")
	}
	if res.PeerChunks == 0 {
		t.Fatalf("no chunks served by the peer: %+v", res)
	}

	// With the distant chunks served from Dublin at 40 ms, the residual
	// latency is dominated by N. Virginia-and-nearer chunks.
	solo, resSolo, err := NewAgarReader(env, geo.Frankfurt, newAgarNode(env, geo.Frankfurt, 18)).
		Read("object-00000")
	if err != nil {
		t.Fatal(err)
	}
	_ = solo
	if res.Latency >= resSolo.Latency {
		t.Fatalf("cooperative read (%v) not faster than isolated read (%v)", res.Latency, resSolo.Latency)
	}

	// Frankfurt's own knapsack should devalue chunks Dublin already holds:
	// under slot contention (three equally hot objects, room for two), the
	// peer-covered object must lose local slots to the uncovered ones.
	for i := 0; i < 60; i++ {
		fraReader.Read("object-00000")
		fraReader.Read("object-00001")
		fraReader.Read("object-00002")
	}
	fra.ForceReconfigure()
	cfg := fra.Manager().Active()
	covered := len(cfg.ChunksFor("object-00000"))
	uncovered := len(cfg.ChunksFor("object-00001")) + len(cfg.ChunksFor("object-00002"))
	if covered >= uncovered {
		t.Errorf("peer-covered object got %d local slots, uncovered objects got %d",
			covered, uncovered)
	}
}

// TestPeerEvictionFallsBackToBackend covers the race where a hinted peer
// chunk disappears before the read.
func TestPeerEvictionFallsBackToBackend(t *testing.T) {
	env, objects := testEnv(t, 2)
	fra := newAgarNode(env, geo.Frankfurt, 18)
	dub := newAgarNode(env, geo.Dublin, 18)
	fra.AddPeer(geo.Dublin, dub.Cache(), 40*time.Millisecond)

	dubReader := NewAgarReader(env, geo.Dublin, dub)
	for i := 0; i < 40; i++ {
		dubReader.Read("object-00000")
	}
	dub.ForceReconfigure()
	dubReader.Read("object-00000")
	if len(dub.Cache().IndicesOf("object-00000")) == 0 {
		t.Fatal("precondition failed")
	}

	fraReader := NewAgarReader(env, geo.Frankfurt, fra)
	// Wipe Dublin's cache between hint computation and fetch by clearing
	// now — the hint the Frankfurt reader computes on the next read still
	// sees residency through the manager? No: residency is consulted at
	// hint time, so clear after the first hinted read begins is not
	// possible synchronously. Instead: prove a normal read works, clear,
	// and prove the next read (with a stale-free hint) still succeeds.
	if _, _, err := fraReader.Read("object-00000"); err != nil {
		t.Fatal(err)
	}
	dub.Cache().Clear()
	data, res, err := fraReader.Read("object-00000")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, objects["object-00000"]) {
		t.Fatal("fallback read wrong data")
	}
	if res.PeerChunks != 0 {
		t.Fatalf("peer chunks reported after peer wipe: %+v", res)
	}
}
