package client

import (
	"bytes"
	"testing"
	"time"

	"github.com/agardist/agar/internal/coop"
	"github.com/agardist/agar/internal/geo"
)

// TestCooperativeCaching exercises the §VI extension end to end: Frankfurt
// and Dublin nodes peer with each other; once Dublin's cache holds an
// object's distant chunks, Frankfurt clients read them from Dublin at
// peer latency instead of crossing the WAN, and Frankfurt's knapsack stops
// spending local slots on them.
func TestCooperativeCaching(t *testing.T) {
	env, objects := testEnv(t, 6)
	peerLat := 40 * time.Millisecond

	fra := newAgarNode(env, geo.Frankfurt, 18)
	dub := newAgarNode(env, geo.Dublin, 18)
	fra.AddPeer(geo.Dublin, dub.Cache(), peerLat)
	dub.AddPeer(geo.Frankfurt, fra.Cache(), peerLat)

	fraReader := NewAgarReader(env, geo.Frankfurt, fra)
	dubReader := NewAgarReader(env, geo.Dublin, dub)

	// Dublin clients hammer object-0 and cache its distant chunks.
	for i := 0; i < 60; i++ {
		if _, _, err := dubReader.Read("object-00000"); err != nil {
			t.Fatal(err)
		}
	}
	dub.ForceReconfigure()
	dubReader.Read("object-00000") // populate Dublin's cache
	dubChunks := dub.Cache().IndicesOf("object-00000")
	if len(dubChunks) == 0 {
		t.Fatal("precondition: Dublin cached nothing")
	}

	// A Frankfurt client reading the same object must use Dublin's cache.
	data, res, err := fraReader.Read("object-00000")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, objects["object-00000"]) {
		t.Fatal("cooperative read returned wrong data")
	}
	if res.PeerChunks == 0 {
		t.Fatalf("no chunks served by the peer: %+v", res)
	}

	// With the distant chunks served from Dublin at 40 ms, the residual
	// latency is dominated by N. Virginia-and-nearer chunks.
	solo, resSolo, err := NewAgarReader(env, geo.Frankfurt, newAgarNode(env, geo.Frankfurt, 18)).
		Read("object-00000")
	if err != nil {
		t.Fatal(err)
	}
	_ = solo
	if res.Latency >= resSolo.Latency {
		t.Fatalf("cooperative read (%v) not faster than isolated read (%v)", res.Latency, resSolo.Latency)
	}

	// Frankfurt's own knapsack should devalue chunks Dublin already holds:
	// under slot contention (three equally hot objects, room for two), the
	// peer-covered object must lose local slots to the uncovered ones.
	for i := 0; i < 60; i++ {
		fraReader.Read("object-00000")
		fraReader.Read("object-00001")
		fraReader.Read("object-00002")
	}
	fra.ForceReconfigure()
	cfg := fra.Manager().Active()
	covered := len(cfg.ChunksFor("object-00000"))
	uncovered := len(cfg.ChunksFor("object-00001")) + len(cfg.ChunksFor("object-00002"))
	if covered >= uncovered {
		t.Errorf("peer-covered object got %d local slots, uncovered objects got %d",
			covered, uncovered)
	}
}

// TestDigestMirrorPlugsIntoKnapsack registers a remote digest mirror — the
// live mesh's residency view, which exposes no byte access — as a peer and
// checks both halves of the contract: the knapsack devalues mirror-covered
// chunks when spending local slots, and the read path treats the
// residency-only peer as a miss, detouring to the backend without error.
func TestDigestMirrorPlugsIntoKnapsack(t *testing.T) {
	env, objects := testEnv(t, 3)
	fra := newAgarNode(env, geo.Frankfurt, 18)

	// Dublin's live cache advertises every chunk of object-00000.
	mirror := coop.NewMirror("dublin")
	all := make([]int, 12)
	for i := range all {
		all[i] = i
	}
	mirror.Apply(1, map[string][]int{"object-00000": all})
	fra.AddPeer(geo.Dublin, mirror, 40*time.Millisecond)

	reader := NewAgarReader(env, geo.Frankfurt, fra)
	data, res, err := reader.Read("object-00000")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, objects["object-00000"]) {
		t.Fatal("mirror-peered read returned wrong data")
	}
	// The mirror has no byte access, so nothing is actually served by the
	// peer — every mirror-routed chunk must detour to the backend.
	if res.PeerChunks != 0 {
		t.Fatalf("residency-only mirror served %d chunks", res.PeerChunks)
	}

	// Under slot contention the mirror-covered object must lose local slots
	// to uncovered, equally hot objects — same accounting as a local peer.
	for i := 0; i < 60; i++ {
		reader.Read("object-00000")
		reader.Read("object-00001")
		reader.Read("object-00002")
	}
	fra.ForceReconfigure()
	cfg := fra.Manager().Active()
	covered := len(cfg.ChunksFor("object-00000"))
	uncovered := len(cfg.ChunksFor("object-00001")) + len(cfg.ChunksFor("object-00002"))
	if covered >= uncovered {
		t.Errorf("mirror-covered object got %d local slots, uncovered objects got %d",
			covered, uncovered)
	}
}

// TestPeerEvictionFallsBackToBackend covers the race where a hinted peer
// chunk disappears before the read.
func TestPeerEvictionFallsBackToBackend(t *testing.T) {
	env, objects := testEnv(t, 2)
	fra := newAgarNode(env, geo.Frankfurt, 18)
	dub := newAgarNode(env, geo.Dublin, 18)
	fra.AddPeer(geo.Dublin, dub.Cache(), 40*time.Millisecond)

	dubReader := NewAgarReader(env, geo.Dublin, dub)
	for i := 0; i < 40; i++ {
		dubReader.Read("object-00000")
	}
	dub.ForceReconfigure()
	dubReader.Read("object-00000")
	if len(dub.Cache().IndicesOf("object-00000")) == 0 {
		t.Fatal("precondition failed")
	}

	fraReader := NewAgarReader(env, geo.Frankfurt, fra)
	// Wipe Dublin's cache between hint computation and fetch by clearing
	// now — the hint the Frankfurt reader computes on the next read still
	// sees residency through the manager? No: residency is consulted at
	// hint time, so clear after the first hinted read begins is not
	// possible synchronously. Instead: prove a normal read works, clear,
	// and prove the next read (with a stale-free hint) still succeeds.
	if _, _, err := fraReader.Read("object-00000"); err != nil {
		t.Fatal(err)
	}
	dub.Cache().Clear()
	data, res, err := fraReader.Read("object-00000")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, objects["object-00000"]) {
		t.Fatal("fallback read wrong data")
	}
	if res.PeerChunks != 0 {
		t.Fatalf("peer chunks reported after peer wipe: %+v", res)
	}
}
