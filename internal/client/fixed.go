package client

import (
	"fmt"

	"github.com/agardist/agar/internal/cache"
	"github.com/agardist/agar/internal/geo"
)

// FixedReader reads through a local chunk cache that keeps a fixed number c
// of chunks per object, under a classical eviction policy — the paper's
// LRU-c and LFU-c baselines (§V-A). On a miss it asynchronously populates
// the cache with the object's c most distant retained chunks, mirroring the
// motivating experiment of §II-C.
type FixedReader struct {
	env    *Env
	region geo.RegionID
	store  *cache.Cache
	c      int
	name   string
}

// NewFixedReader builds an LRU-c or LFU-c reader. The policy names the
// strategy: NewFixedReader(env, region, cache.NewLRU(), 3, bytes) is LRU-3.
// c must lie in [1, k].
func NewFixedReader(env *Env, region geo.RegionID, policy cache.Policy, c int, cacheBytes int64) *FixedReader {
	k := env.Cluster.Codec().K()
	if c < 1 || c > k {
		panic(fmt.Sprintf("client: c=%d outside [1, %d]", c, k))
	}
	return &FixedReader{
		env:    env,
		region: region,
		store:  cache.New(cacheBytes, policy),
		c:      c,
		name:   fmt.Sprintf("%s-%d", policy.Name(), c),
	}
}

// Name implements Reader.
func (r *FixedReader) Name() string { return r.name }

// WithName overrides the reported strategy name (the experiments layer
// labels the pinned-policy reader "fixed-c") and returns the reader.
func (r *FixedReader) WithName(name string) *FixedReader {
	r.name = name
	return r
}

// Cache exposes the reader's local cache (for inspection in tests and the
// experiment harness).
func (r *FixedReader) Cache() *cache.Cache { return r.store }

// Read implements Reader.
func (r *FixedReader) Read(key string) ([]byte, Result, error) {
	codec := r.env.Cluster.Codec()
	k := codec.K()
	plan := geo.PlanFetch(r.env.Matrix, r.env.Cluster.Placement(), key, codec.Total(), r.region)

	// What the cache policy would keep for this object: its c most distant
	// retained chunks.
	policySet := plan.FurthestRetained(k, r.c)

	// Probe the cache for all of them.
	cached := make([]fetchOutcome, 0, r.c)
	have := make(map[int]bool, r.c)
	for _, idx := range policySet {
		data, err := r.store.Get(cache.EntryID{Key: key, Index: idx})
		if err != nil {
			continue
		}
		cached = append(cached, fetchOutcome{index: idx, data: data})
		have[idx] = true
	}

	// Fetch the nearest chunks not already in hand until k total.
	want := make([]int, 0, k)
	for _, idx := range plan.Chunks {
		if len(cached)+len(want) == k {
			break
		}
		if have[idx] {
			continue
		}
		want = append(want, idx)
	}

	var res Result
	outcomes := cached
	if len(want) > 0 {
		fetched, lat, waves, err := fetchBackend(r.env, r.region, key, want, have, maxWaves(codec))
		if err != nil {
			return nil, Result{Latency: lat, Waves: waves}, err
		}
		outcomes = append(outcomes, fetched...)
		res.Latency = lat
		res.Waves = waves
		res.BackendChunks = len(fetched)
	}
	if len(cached) > 0 {
		// Cache reads run in parallel with backend reads; they only matter
		// when they dominate (full hit or slow cache).
		if cl := r.env.cacheLatency(); cl > res.Latency {
			res.Latency = cl
		}
	}
	res.CacheChunks = len(cached)
	res.FullHit = len(cached) == k
	res.PartialHit = len(cached) > 0 && len(cached) < k

	data, decLat, err := decode(r.env, outcomes)
	if err != nil {
		return nil, res, err
	}
	res.Latency += decLat

	// Populate the cache off the read path with any policy-set chunks we
	// had to fetch from the backend (no latency charged).
	if len(cached) < len(policySet) {
		byIdx := make(map[int][]byte, len(outcomes))
		for _, o := range outcomes {
			byIdx[o.index] = o.data
		}
		for _, idx := range policySet {
			if have[idx] {
				continue
			}
			chunk, ok := byIdx[idx]
			if !ok {
				// The policy chunk was not part of this read's fetch set
				// (can happen under failures); fetch it silently.
				chunk, ok = offPathFetch(r.env, r.region, key, idx)
				if !ok {
					continue
				}
			}
			// Ignore insertion errors: an over-capacity single chunk simply
			// stays uncached.
			_ = r.store.Put(cache.EntryID{Key: key, Index: idx}, chunk)
		}
	}
	return data, res, nil
}
