package client

import (
	"fmt"
	"time"

	"github.com/agardist/agar/internal/geo"
)

// Invalidator removes an object's chunks from a cache — the hook the writer
// uses to keep caches coherent (§VI's data-writes extension).
type Invalidator interface {
	// DeleteObject removes all resident chunks of the key and returns the
	// number removed.
	DeleteObject(key string) int
}

// Writer encodes objects, stores their chunks across the backend regions
// (contacting every region in parallel), and invalidates any registered
// caches. The paper's prototype is read-only; this implements the write
// path its §VI discussion sketches, with invalidation standing in for a
// full coherence protocol.
type Writer struct {
	env          *Env
	region       geo.RegionID
	invalidators []Invalidator
}

// NewWriter returns a writer for a client region.
func NewWriter(env *Env, region geo.RegionID, invalidators ...Invalidator) *Writer {
	return &Writer{env: env, region: region, invalidators: invalidators}
}

// AddInvalidator registers another cache for write invalidation.
func (w *Writer) AddInvalidator(inv Invalidator) {
	w.invalidators = append(w.invalidators, inv)
}

// Write encodes and stores the object, invalidates caches, and returns the
// modelled write latency: encoding plus the slowest region round trip
// (chunks are written concurrently, as the paper's modified YCSB client
// does).
func (w *Writer) Write(key string, data []byte) (time.Duration, error) {
	if err := w.env.Cluster.PutObject(key, data); err != nil {
		return 0, fmt.Errorf("client: write %q: %w", key, err)
	}
	locs := w.env.Cluster.Placement().Locate(key, w.env.Cluster.Codec().Total())
	var lat time.Duration
	for _, region := range locs {
		if l := w.env.chunkLatency(w.region, region); l > lat {
			lat = l
		}
	}
	enc := w.env.DecodeLatency // encode cost modelled like decode
	if w.env.Sampler != nil {
		enc = w.env.Sampler.Fixed(enc)
	}
	for _, inv := range w.invalidators {
		inv.DeleteObject(key)
	}
	return lat + enc, nil
}
