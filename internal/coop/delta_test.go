package coop

import (
	"reflect"
	"testing"
	"time"

	"github.com/agardist/agar/internal/cache"
)

func TestDiff(t *testing.T) {
	prev := map[string][]int{"a": {0, 1}, "b": {2}, "c": {3}}
	cur := map[string][]int{"a": {1, 0}, "b": {2, 4}, "d": {5}}
	got := Diff(prev, cur)
	want := map[string][]int{
		"b": {2, 4}, // changed
		"d": {5},    // added
		"c": {},     // removed
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Diff = %v, want %v", got, want)
	}
	if d := Diff(cur, cur); len(d) != 0 {
		t.Fatalf("self-diff = %v", d)
	}
}

func TestMirrorApplyDelta(t *testing.T) {
	m := NewMirror("dublin")

	// A delta against a virgin mirror is rejected: nothing to delta from.
	if m.ApplyDelta(2, 1, map[string][]int{"a": {0}}) {
		t.Fatal("delta applied to empty mirror")
	}

	if !m.Apply(10, map[string][]int{"a": {0, 1}, "b": {2}}) {
		t.Fatal("full digest rejected")
	}
	// Delta at the right base: change a, remove b, add c.
	if !m.ApplyDelta(11, 10, map[string][]int{"a": {1}, "b": {}, "c": {7}}) {
		t.Fatal("aligned delta rejected")
	}
	if got := m.IndicesOf("a"); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("a = %v", got)
	}
	if m.Contains(cache.EntryID{Key: "b", Index: 2}) {
		t.Fatal("removed key still resident")
	}
	if got := m.IndicesOf("c"); !reflect.DeepEqual(got, []int{7}) {
		t.Fatalf("c = %v", got)
	}
	if m.Seq() != 11 {
		t.Fatalf("seq = %d", m.Seq())
	}

	// A later page of the same delta snapshot merges.
	if !m.ApplyDelta(11, 10, map[string][]int{"d": {9}}) {
		t.Fatal("same-seq delta page rejected")
	}
	if got := m.IndicesOf("d"); !reflect.DeepEqual(got, []int{9}) {
		t.Fatalf("d = %v", got)
	}

	// Base mismatch (mirror at 11, delta over 10) is rejected outright.
	if m.ApplyDelta(12, 10, map[string][]int{"a": {}}) {
		t.Fatal("misaligned delta applied")
	}
	if got := m.IndicesOf("a"); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("rejected delta mutated the mirror: a = %v", got)
	}
	// A same-seq page with no groups is fine; a stale delta is not.
	if !m.ApplyDelta(11, 10, nil) {
		t.Fatal("same-seq empty page rejected")
	}
	if m.ApplyDelta(9, 8, map[string][]int{"z": {1}}) {
		t.Fatal("stale delta applied")
	}
}

func TestPaginateDeltaEmptyStillAdvances(t *testing.T) {
	frames := PaginateDelta("fra", 5, 4, nil)
	if len(frames) != 1 || !frames[0].Delta || frames[0].Base != 4 || frames[0].Seq != 5 {
		t.Fatalf("frames = %+v", frames)
	}
	m := NewMirror("fra")
	m.Apply(4, map[string][]int{"a": {0}})
	if !m.ApplyDelta(frames[0].Seq, frames[0].Base, frames[0].Groups) {
		t.Fatal("empty delta rejected")
	}
	if m.Seq() != 5 {
		t.Fatalf("seq = %d", m.Seq())
	}
	if got := m.IndicesOf("a"); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("empty delta changed residency: %v", got)
	}
}

// seqTarget records every frame it receives and can be told to fail.
type seqTarget struct {
	frames []Digest
	fail   bool
	mirror *Mirror
}

func (s *seqTarget) SendDigest(d Digest) error {
	if s.fail {
		return errFail
	}
	s.frames = append(s.frames, d)
	if s.mirror != nil {
		if d.Delta {
			if !s.mirror.ApplyDelta(d.Seq, d.Base, d.Groups) {
				return errFail
			}
		} else if !s.mirror.Apply(d.Seq, d.Groups) {
			return errFail
		}
	}
	return nil
}

var errFail = &timeoutErr{}

type timeoutErr struct{}

func (*timeoutErr) Error() string { return "injected target failure" }

// snapSource is a mutable Snapshotter.
type snapSource struct{ snap map[string][]int }

func (s *snapSource) Snapshot() map[string][]int {
	out := make(map[string][]int, len(s.snap))
	for k, v := range s.snap {
		out[k] = append([]int(nil), v...)
	}
	return out
}

// TestAdvertiserSendsDeltasWhenPeerIsCurrent drives three advertises: the
// first is full, the second and third are deltas carrying only the
// changes, and the peer's mirror tracks the source exactly throughout.
func TestAdvertiserSendsDeltasWhenPeerIsCurrent(t *testing.T) {
	src := &snapSource{snap: map[string][]int{"a": {0, 1}, "b": {2}}}
	a := NewAdvertiser("fra", src, time.Second)
	tgt := &seqTarget{mirror: NewMirror("fra")}
	a.AddTarget("dub", tgt)

	if failed := a.Advertise(); failed != 0 {
		t.Fatalf("push 1: %d failed", failed)
	}
	if len(tgt.frames) != 1 || tgt.frames[0].Delta {
		t.Fatalf("first push frames = %+v", tgt.frames)
	}

	src.snap["b"] = []int{2, 3}
	delete(src.snap, "a")
	src.snap["c"] = []int{9}
	if failed := a.Advertise(); failed != 0 {
		t.Fatalf("push 2: %d failed", failed)
	}
	second := tgt.frames[1]
	if !second.Delta {
		t.Fatalf("second push not a delta: %+v", second)
	}
	want := map[string][]int{"a": {}, "b": {2, 3}, "c": {9}}
	if !reflect.DeepEqual(second.Groups, want) {
		t.Fatalf("delta groups = %v, want %v", second.Groups, want)
	}
	if got := tgt.mirror.IndicesOf("b"); !reflect.DeepEqual(got, []int{2, 3}) {
		t.Fatalf("mirror b = %v", got)
	}
	if tgt.mirror.Contains(cache.EntryID{Key: "a", Index: 0}) {
		t.Fatal("mirror still advertises removed key")
	}

	// No changes: the delta is empty but still pushes (age refresh).
	if failed := a.Advertise(); failed != 0 {
		t.Fatalf("push 3: %d failed", failed)
	}
	third := tgt.frames[2]
	if !third.Delta || len(third.Groups) != 0 {
		t.Fatalf("idle delta = %+v", third)
	}
	if a.DeltaPushes() != 2 {
		t.Fatalf("delta pushes = %d", a.DeltaPushes())
	}
}

// TestAdvertiserFallsBackToFullAfterMiss fails one push: the peer's ack
// state resets, so the next successful push must be a full digest.
func TestAdvertiserFallsBackToFullAfterMiss(t *testing.T) {
	src := &snapSource{snap: map[string][]int{"a": {0}}}
	a := NewAdvertiser("fra", src, time.Second)
	tgt := &seqTarget{mirror: NewMirror("fra")}
	a.AddTarget("dub", tgt)

	a.Advertise() // full
	tgt.fail = true
	if failed := a.Advertise(); failed != 1 {
		t.Fatalf("failed push reported %d", failed)
	}
	tgt.fail = false
	src.snap["b"] = []int{5}
	if failed := a.Advertise(); failed != 0 {
		t.Fatalf("recovery push failed")
	}
	last := tgt.frames[len(tgt.frames)-1]
	if last.Delta {
		t.Fatalf("push after a miss travelled as a delta: %+v", last)
	}
	if got := tgt.mirror.IndicesOf("b"); !reflect.DeepEqual(got, []int{5}) {
		t.Fatalf("mirror b = %v", got)
	}
	// Once re-acked, deltas resume.
	src.snap["c"] = []int{7}
	a.Advertise()
	if last := tgt.frames[len(tgt.frames)-1]; !last.Delta {
		t.Fatalf("deltas did not resume: %+v", last)
	}
}

// TestAdvertiserNewTargetGetsFullDigest registers a second peer after the
// first push: it must receive the full digest while the current peer gets
// the delta.
func TestAdvertiserNewTargetGetsFullDigest(t *testing.T) {
	src := &snapSource{snap: map[string][]int{"a": {0}}}
	a := NewAdvertiser("fra", src, time.Second)
	old := &seqTarget{mirror: NewMirror("fra")}
	a.AddTarget("dub", old)
	a.Advertise()

	fresh := &seqTarget{mirror: NewMirror("fra")}
	a.AddTarget("vir", fresh)
	src.snap["b"] = []int{1}
	if failed := a.Advertise(); failed != 0 {
		t.Fatalf("mixed push failed")
	}
	if last := old.frames[len(old.frames)-1]; !last.Delta {
		t.Fatalf("current peer got a full digest: %+v", last)
	}
	if last := fresh.frames[len(fresh.frames)-1]; last.Delta {
		t.Fatalf("fresh peer got a delta: %+v", last)
	}
	for _, m := range []*Mirror{old.mirror, fresh.mirror} {
		if got := m.IndicesOf("b"); !reflect.DeepEqual(got, []int{1}) {
			t.Fatalf("mirror b = %v", got)
		}
	}
}
