package coop

import (
	"sort"
	"sync"
	"time"

	"github.com/agardist/agar/internal/cache"
)

// Mirror is a node's view of one peer cache's residency, maintained from
// the peer's digest frames. It satisfies core.ChunkResidency, so the cache
// manager values peer-covered chunks in its knapsack exactly as it values
// a local simulated peer cache — and it is advisory: the peer may have
// evicted a chunk since the last digest, so readers must treat a mirror
// hit as a hint, never a guarantee.
type Mirror struct {
	mu      sync.Mutex
	region  string
	seq     int64
	groups  map[string]map[int]bool
	vers    map[string]uint64
	updated time.Time
	applied int64

	// now is the clock, injectable for staleness tests.
	now func() time.Time
}

// NewMirror returns an empty mirror for the named peer region.
func NewMirror(region string) *Mirror {
	return &Mirror{
		region: region,
		groups: make(map[string]map[int]bool),
		vers:   make(map[string]uint64),
		now:    time.Now,
	}
}

// Region returns the peer region this mirror tracks.
func (m *Mirror) Region() string { return m.region }

// SetClock replaces the clock Age measures against (default time.Now).
// Simulated deployments inject their virtual clock here so digest ages —
// and the digest_age_ms stat derived from them — advance with simulated
// time and stay deterministic across runs.
func (m *Mirror) SetClock(now func() time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if now != nil {
		m.now = now
	}
}

// Apply folds one digest frame in. A frame with a higher sequence replaces
// the whole view (the first page of a new snapshot); frames sharing the
// current sequence merge (later pages); lower sequences are rejected as
// stale. It reports whether the frame was applied.
func (m *Mirror) Apply(seq int64, groups map[string][]int) bool {
	return m.ApplyVer(seq, groups, nil)
}

// ApplyVer is Apply with the frame's per-key write versions: applied keys
// record the version the peer advertised (absent entries clear it), so
// VersionOf answers how fresh the peer's copy of a key is — the signal
// that lets a reader skip a peer whose copy predates a known write.
func (m *Mirror) ApplyVer(seq int64, groups map[string][]int, keyVers map[string]uint64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch {
	case seq > m.seq || m.applied == 0:
		m.seq = seq
		m.groups = make(map[string]map[int]bool, len(groups))
		m.vers = make(map[string]uint64, len(keyVers))
	case seq < m.seq:
		return false
	}
	for key, idxs := range groups {
		set := m.groups[key]
		if set == nil {
			set = make(map[int]bool, len(idxs))
			m.groups[key] = set
		}
		for _, idx := range idxs {
			set[idx] = true
		}
		if v := keyVers[key]; v != 0 {
			m.vers[key] = v
		}
	}
	m.updated = m.now()
	m.applied++
	return true
}

// ApplyDelta folds one delta frame in: groups list only changed keys, an
// empty index list deleting the key. The delta applies only when the
// mirror sits exactly at base (advancing it to seq) or is already at seq
// (a later page of the same delta snapshot); any other state — including a
// mirror that never received a full digest — rejects the frame, and the
// advertiser's ack check falls it back to a full digest. It reports
// whether the frame was applied.
func (m *Mirror) ApplyDelta(seq, base int64, groups map[string][]int) bool {
	return m.ApplyDeltaVer(seq, base, groups, nil)
}

// ApplyDeltaVer is ApplyDelta with the frame's per-key write versions:
// every changed key's version is replaced by what the frame advertises
// (absent — including an unversioned advertiser's nil map — clears it).
func (m *Mirror) ApplyDeltaVer(seq, base int64, groups map[string][]int, keyVers map[string]uint64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch {
	case m.applied == 0:
		return false // nothing to delta against
	case m.seq == seq:
		// later page of this delta snapshot: merge below
	case m.seq == base && seq > base:
		m.seq = seq
	default:
		return false
	}
	for key, idxs := range groups {
		if len(idxs) == 0 {
			delete(m.groups, key)
			delete(m.vers, key)
			continue
		}
		set := make(map[int]bool, len(idxs))
		for _, idx := range idxs {
			set[idx] = true
		}
		m.groups[key] = set
		if v := keyVers[key]; v != 0 {
			m.vers[key] = v
		} else {
			delete(m.vers, key)
		}
	}
	m.updated = m.now()
	m.applied++
	return true
}

// VersionOf returns the write version the peer last advertised for a key,
// zero when it advertised none (an unversioned key, or a mirror that has
// not heard of the key).
func (m *Mirror) VersionOf(key string) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.vers[key]
}

// IndicesOf returns the peer's advertised resident chunk indices for a
// key, sorted. It implements core.ChunkResidency.
func (m *Mirror) IndicesOf(key string) []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	set := m.groups[key]
	if len(set) == 0 {
		return nil
	}
	out := make([]int, 0, len(set))
	for idx := range set {
		out = append(out, idx)
	}
	sort.Ints(out)
	return out
}

// Contains reports whether the last digest advertised the chunk as
// resident. It implements core.ChunkResidency.
func (m *Mirror) Contains(id cache.EntryID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.groups[id.Key][id.Index]
}

// Seq returns the sequence of the last applied snapshot.
func (m *Mirror) Seq() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.seq
}

// Age returns how long ago the last digest frame was applied, and false if
// none ever was.
func (m *Mirror) Age() (time.Duration, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.applied == 0 {
		return 0, false
	}
	return m.now().Sub(m.updated), true
}

// Keys returns how many objects the mirror currently advertises.
func (m *Mirror) Keys() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.groups)
}
