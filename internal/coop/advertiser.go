package coop

import (
	"sync"
	"sync/atomic"
	"time"
)

// Snapshotter is the residency source an advertiser digests — satisfied by
// *cache.Cache.
type Snapshotter interface {
	Snapshot() map[string][]int
}

// Target delivers digest frames to one peer. The live layer implements it
// on its pooled cache-server client; tests inject fakes.
type Target interface {
	SendDigest(Digest) error
}

// Advertiser periodically digests a local cache's residency and pushes it
// to every registered peer — the broadcast half of the paper's cooperative
// protocol. Pushes are best-effort: a peer that misses a digest serves a
// slightly staler mirror until the next period, which the read path
// already tolerates.
type Advertiser struct {
	source Snapshotter
	region string
	period time.Duration

	mu      sync.Mutex
	targets map[string]Target
	seq     int64

	pushes   atomic.Int64
	failures atomic.Int64

	startOnce sync.Once
	stopOnce  sync.Once
	stopCh    chan struct{}
	wg        sync.WaitGroup
}

// NewAdvertiser builds an advertiser for the region's cache. Period
// defaults to one second when zero.
//
// The digest sequence is seeded from the wall clock, not zero: receivers
// drop lower sequences as stale, so a restarted advertiser (whose counter
// would otherwise reset to 1) must outrank every digest its previous
// incarnation sent. Nanosecond seeds dwarf any realistic push count, so
// the new incarnation's first frame replaces the peers' mirrors at once.
func NewAdvertiser(region string, source Snapshotter, period time.Duration) *Advertiser {
	if period <= 0 {
		period = time.Second
	}
	return &Advertiser{
		source:  source,
		region:  region,
		period:  period,
		seq:     time.Now().UnixNano(),
		targets: make(map[string]Target),
		stopCh:  make(chan struct{}),
	}
}

// AddTarget registers (or replaces) the peer to push digests to, keyed by
// its region name.
func (a *Advertiser) AddTarget(region string, t Target) {
	a.mu.Lock()
	a.targets[region] = t
	a.mu.Unlock()
}

// Advertise takes one residency snapshot and pushes it to every target
// now, synchronously — the deterministic hook tests and smoke runs use
// between reads. It returns the number of targets that failed.
func (a *Advertiser) Advertise() int {
	a.mu.Lock()
	a.seq++
	seq := a.seq
	targets := make([]Target, 0, len(a.targets))
	for _, t := range a.targets {
		targets = append(targets, t)
	}
	a.mu.Unlock()
	if len(targets) == 0 {
		return 0
	}
	frames := Paginate(a.region, seq, a.source.Snapshot())
	failed := 0
	for _, t := range targets {
		ok := true
		for _, d := range frames {
			if err := t.SendDigest(d); err != nil {
				ok = false
				a.failures.Add(1)
				break // the peer keeps its previous coherent snapshot
			}
		}
		if ok {
			a.pushes.Add(1)
		} else {
			failed++
		}
	}
	return failed
}

// Start launches the periodic push loop. Idempotent; pair with Stop.
func (a *Advertiser) Start() {
	a.startOnce.Do(func() {
		a.wg.Add(1)
		go func() {
			defer a.wg.Done()
			ticker := time.NewTicker(a.period)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					a.Advertise()
				case <-a.stopCh:
					return
				}
			}
		}()
	})
}

// Stop terminates the push loop and waits for it to exit. Safe without a
// prior Start and safe to call twice.
func (a *Advertiser) Stop() {
	a.stopOnce.Do(func() { close(a.stopCh) })
	a.wg.Wait()
}

// Stats reports cumulative successful per-target pushes and failed ones.
func (a *Advertiser) Stats() (pushes, failures int64) {
	return a.pushes.Load(), a.failures.Load()
}
