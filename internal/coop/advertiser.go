package coop

import (
	"sync"
	"sync/atomic"
	"time"
)

// Snapshotter is the residency source an advertiser digests — satisfied by
// *cache.Cache.
type Snapshotter interface {
	Snapshot() map[string][]int
}

// VersionedSnapshotter is the optional residency source that also reports
// each key's highest cached write version. When an advertiser's source
// implements it (*cache.Cache does, via SnapshotVer), digests carry
// KeyVers and deltas become version-aware: a key re-cached at a newer
// version is pushed even when its index set is unchanged, which is how an
// invalidation propagates through the mesh.
type VersionedSnapshotter interface {
	SnapshotVer() (map[string][]int, map[string]uint64)
}

// Target delivers digest frames to one peer. The live layer implements it
// on its pooled cache-server client; tests inject fakes. A nil error means
// the peer acknowledged the frame at its sequence — the signal the
// advertiser's delta optimisation keys on.
type Target interface {
	SendDigest(Digest) error
}

// target is one peer plus the advertiser's view of how current it is.
type target struct {
	t Target
	// acked is the last sequence the peer acknowledged in full; 0 when the
	// peer has never acked (or failed mid-push), forcing a full digest.
	acked int64
}

// Advertiser periodically digests a local cache's residency and pushes it
// to every registered peer — the broadcast half of the paper's cooperative
// protocol. A peer whose last ack is exactly one period behind receives a
// digest delta (only the residency changes since the previous snapshot);
// any other peer — new, failed, or lagging — receives the full digest.
// Pushes are best-effort: a peer that misses a digest serves a slightly
// staler mirror until the next period, which the read path already
// tolerates.
type Advertiser struct {
	source Snapshotter
	region string
	period time.Duration

	// pushMu serialises whole Advertise calls; mu guards the fields below.
	pushMu  sync.Mutex
	mu      sync.Mutex
	targets map[string]*target
	seq     int64
	// prev is the previous Advertise's snapshot (the seq-1 state deltas
	// are computed against); nil before the first push. prevVers is its
	// per-key version view when the source is a VersionedSnapshotter.
	prev     map[string][]int
	prevVers map[string]uint64
	prevSeq  int64

	pushes      atomic.Int64
	deltaPushes atomic.Int64
	failures    atomic.Int64

	startOnce sync.Once
	stopOnce  sync.Once
	stopCh    chan struct{}
	wg        sync.WaitGroup
}

// NewAdvertiser builds an advertiser for the region's cache. Period
// defaults to one second when zero.
//
// The digest sequence is seeded from the wall clock, not zero: receivers
// drop lower sequences as stale, so a restarted advertiser (whose counter
// would otherwise reset to 1) must outrank every digest its previous
// incarnation sent. Nanosecond seeds dwarf any realistic push count, so
// the new incarnation's first frame replaces the peers' mirrors at once.
func NewAdvertiser(region string, source Snapshotter, period time.Duration) *Advertiser {
	if period <= 0 {
		period = time.Second
	}
	return &Advertiser{
		source:  source,
		region:  region,
		period:  period,
		seq:     time.Now().UnixNano(),
		targets: make(map[string]*target),
		stopCh:  make(chan struct{}),
	}
}

// AddTarget registers (or replaces) the peer to push digests to, keyed by
// its region name. A (re)registered peer starts unacked, so its first push
// is always a full digest.
func (a *Advertiser) AddTarget(region string, t Target) {
	a.mu.Lock()
	a.targets[region] = &target{t: t}
	a.mu.Unlock()
}

// Advertise takes one residency snapshot and pushes it to every target
// now, synchronously — the deterministic hook tests and smoke runs use
// between reads. Targets acked through the previous snapshot get a delta;
// the rest get the full digest. It returns the number of targets that
// failed.
func (a *Advertiser) Advertise() int {
	// One advertise at a time: the delta bookkeeping (prev snapshot, acked
	// sequences) assumes pushes do not interleave. The ticker loop and
	// manual PushDigests calls may race otherwise.
	a.pushMu.Lock()
	defer a.pushMu.Unlock()

	a.mu.Lock()
	a.seq++
	seq := a.seq
	prev, prevVers, prevSeq := a.prev, a.prevVers, a.prevSeq
	targets := make([]*target, 0, len(a.targets))
	for _, t := range a.targets {
		targets = append(targets, t)
	}
	a.mu.Unlock()

	var snap map[string][]int
	var vers map[string]uint64
	if vs, ok := a.source.(VersionedSnapshotter); ok {
		snap, vers = vs.SnapshotVer()
	} else {
		snap = a.source.Snapshot()
	}
	if len(targets) == 0 {
		a.setPrev(snap, vers, seq)
		return 0
	}
	full := PaginateVer(a.region, seq, snap, vers)
	// Deltas are worth computing only against the immediately preceding
	// snapshot: a peer acked further back would need a change set this
	// advertiser no longer holds.
	var delta []Digest
	if prev != nil && prevSeq == seq-1 {
		changed, changedVers := DiffVer(prev, snap, prevVers, vers)
		delta = PaginateDeltaVer(a.region, seq, prevSeq, changed, changedVers)
	}

	failed := 0
	for _, ts := range targets {
		frames := full
		usedDelta := false
		if delta != nil && a.ackedSeq(ts) == seq-1 {
			frames, usedDelta = delta, true
		}
		ok := true
		for _, d := range frames {
			if err := ts.t.SendDigest(d); err != nil {
				ok = false
				a.failures.Add(1)
				break // the peer keeps its previous coherent snapshot
			}
		}
		a.mu.Lock()
		if ok {
			ts.acked = seq
		} else {
			ts.acked = 0 // unknown peer state: next push goes out in full
		}
		a.mu.Unlock()
		if ok {
			a.pushes.Add(1)
			if usedDelta {
				a.deltaPushes.Add(1)
			}
		} else {
			failed++
		}
	}
	a.setPrev(snap, vers, seq)
	return failed
}

func (a *Advertiser) ackedSeq(ts *target) int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return ts.acked
}

func (a *Advertiser) setPrev(snap map[string][]int, vers map[string]uint64, seq int64) {
	a.mu.Lock()
	a.prev, a.prevVers, a.prevSeq = snap, vers, seq
	a.mu.Unlock()
}

// Start launches the periodic push loop. Idempotent; pair with Stop.
func (a *Advertiser) Start() {
	a.startOnce.Do(func() {
		a.wg.Add(1)
		go func() {
			defer a.wg.Done()
			ticker := time.NewTicker(a.period)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					a.Advertise()
				case <-a.stopCh:
					return
				}
			}
		}()
	})
}

// Stop terminates the push loop and waits for it to exit. Safe without a
// prior Start and safe to call twice.
func (a *Advertiser) Stop() {
	a.stopOnce.Do(func() { close(a.stopCh) })
	a.wg.Wait()
}

// Stats reports cumulative successful per-target pushes and failed ones.
func (a *Advertiser) Stats() (pushes, failures int64) {
	return a.pushes.Load(), a.failures.Load()
}

// DeltaPushes reports how many successful pushes travelled as deltas.
func (a *Advertiser) DeltaPushes() int64 { return a.deltaPushes.Load() }
