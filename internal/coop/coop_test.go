package coop

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/agardist/agar/internal/cache"
)

func TestMirrorApplyReplaceMergeStale(t *testing.T) {
	m := NewMirror("dublin")
	if _, ok := m.Age(); ok {
		t.Fatal("fresh mirror reports an age")
	}
	if !m.Apply(1, map[string][]int{"a": {0, 2}}) {
		t.Fatal("first digest rejected")
	}
	if got := m.IndicesOf("a"); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Fatalf("IndicesOf = %v", got)
	}
	if !m.Contains(cache.EntryID{Key: "a", Index: 2}) || m.Contains(cache.EntryID{Key: "a", Index: 1}) {
		t.Fatal("Contains wrong")
	}

	// Same seq merges (pagination).
	if !m.Apply(1, map[string][]int{"b": {5}}) {
		t.Fatal("same-seq page rejected")
	}
	if m.Keys() != 2 {
		t.Fatalf("keys = %d after merge", m.Keys())
	}

	// Higher seq replaces wholesale.
	if !m.Apply(2, map[string][]int{"c": {1}}) {
		t.Fatal("newer digest rejected")
	}
	if m.Contains(cache.EntryID{Key: "a", Index: 0}) {
		t.Fatal("stale residency survived a replace")
	}
	if got := m.IndicesOf("c"); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("IndicesOf after replace = %v", got)
	}

	// Lower seq is stale.
	if m.Apply(1, map[string][]int{"z": {9}}) {
		t.Fatal("stale digest applied")
	}
	if m.Seq() != 2 {
		t.Fatalf("seq = %d", m.Seq())
	}

	// An empty newer digest clears the view.
	if !m.Apply(3, map[string][]int{}) {
		t.Fatal("empty digest rejected")
	}
	if m.Keys() != 0 {
		t.Fatal("empty digest did not clear the mirror")
	}
	if _, ok := m.Age(); !ok {
		t.Fatal("mirror with applied digests reports no age")
	}
}

func TestMirrorAgeUsesClock(t *testing.T) {
	m := NewMirror("tokyo")
	now := time.Unix(1000, 0)
	m.now = func() time.Time { return now }
	m.Apply(1, map[string][]int{"k": {0}})
	now = now.Add(42 * time.Second)
	age, ok := m.Age()
	if !ok || age != 42*time.Second {
		t.Fatalf("age = %v ok=%v", age, ok)
	}
}

func TestPaginateSplitsDeterministically(t *testing.T) {
	snap := make(map[string][]int)
	for i := 0; i < MaxDigestKeys*2+5; i++ {
		snap[fmt.Sprintf("key-%04d", i)] = []int{i % 7}
	}
	frames := Paginate("fra", 9, snap)
	if len(frames) != 3 {
		t.Fatalf("frames = %d", len(frames))
	}
	total := 0
	for _, f := range frames {
		if f.Region != "fra" || f.Seq != 9 {
			t.Fatalf("frame metadata %+v", f)
		}
		if len(f.Groups) > MaxDigestKeys {
			t.Fatalf("frame carries %d keys", len(f.Groups))
		}
		total += len(f.Groups)
	}
	if total != len(snap) {
		t.Fatalf("keys lost: %d of %d", total, len(snap))
	}
	// Applying all frames at one seq reconstructs the snapshot.
	m := NewMirror("fra")
	for _, f := range frames {
		if !m.Apply(f.Seq, f.Groups) {
			t.Fatal("page rejected")
		}
	}
	if m.Keys() != len(snap) {
		t.Fatalf("mirror keys = %d", m.Keys())
	}

	empty := Paginate("fra", 10, nil)
	if len(empty) != 1 || len(empty[0].Groups) != 0 {
		t.Fatalf("empty snapshot frames = %+v", empty)
	}
}

func TestTableRoutesAndCounts(t *testing.T) {
	tab := NewTable()
	if !tab.Apply(Digest{Region: "dublin", Seq: 1, Groups: map[string][]int{"a": {0}}}) {
		t.Fatal("digest rejected")
	}
	if tab.Apply(Digest{Region: "dublin", Seq: 0, Groups: nil}) {
		t.Fatal("stale digest applied")
	}
	tab.Apply(Digest{Region: "tokyo", Seq: 5, Groups: map[string][]int{"b": {1}}})
	if got := tab.Regions(); !reflect.DeepEqual(got, []string{"dublin", "tokyo"}) {
		t.Fatalf("regions = %v", got)
	}
	if !tab.Mirror("dublin").Contains(cache.EntryID{Key: "a", Index: 0}) {
		t.Fatal("dublin mirror missing residency")
	}
	applied, stale := tab.Applied()
	if applied != 2 || stale != 1 {
		t.Fatalf("applied=%d stale=%d", applied, stale)
	}
	tab.RecordPeerRead(3, 1)
	tab.RecordPeerRead(2, 0)
	hits, misses := tab.PeerReads()
	if hits != 5 || misses != 1 {
		t.Fatalf("peer reads %d/%d", hits, misses)
	}
	if _, ok := tab.StalestAge(); !ok {
		t.Fatal("no stalest age after digests")
	}
	if _, ok := NewTable().StalestAge(); ok {
		t.Fatal("empty table reports an age")
	}
}

// fakeTarget records digests and can be told to fail.
type fakeTarget struct {
	mu     sync.Mutex
	frames []Digest
	fail   bool
}

func (f *fakeTarget) SendDigest(d Digest) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail {
		return errors.New("link down")
	}
	f.frames = append(f.frames, d)
	return nil
}

type fakeSource map[string][]int

func (s fakeSource) Snapshot() map[string][]int { return s }

func TestAdvertiserPushesSnapshots(t *testing.T) {
	src := fakeSource{"obj-1": {0, 3}, "obj-2": {7}}
	adv := NewAdvertiser("frankfurt", src, time.Hour)
	good, bad := &fakeTarget{}, &fakeTarget{fail: true}
	adv.AddTarget("dublin", good)
	adv.AddTarget("tokyo", bad)

	if failed := adv.Advertise(); failed != 1 {
		t.Fatalf("failed = %d", failed)
	}
	good.mu.Lock()
	if len(good.frames) != 1 || good.frames[0].Region != "frankfurt" || good.frames[0].Seq <= 0 {
		t.Fatalf("frames = %+v", good.frames)
	}
	if !reflect.DeepEqual(good.frames[0].Groups["obj-1"], []int{0, 3}) {
		t.Fatalf("groups = %v", good.frames[0].Groups)
	}
	good.mu.Unlock()

	// The next round bumps the sequence so receivers replace, not merge.
	adv.Advertise()
	good.mu.Lock()
	if good.frames[1].Seq != good.frames[0].Seq+1 {
		t.Fatalf("second seq = %d after %d", good.frames[1].Seq, good.frames[0].Seq)
	}
	good.mu.Unlock()

	pushes, failures := adv.Stats()
	if pushes != 2 || failures != 2 {
		t.Fatalf("pushes=%d failures=%d", pushes, failures)
	}
}

// TestAdvertiserRestartOutranksPredecessor: a restarted advertiser's
// digests must replace the mirrors its previous incarnation built, not be
// dropped as stale — the wall-clock seq seed guarantees it.
func TestAdvertiserRestartOutranksPredecessor(t *testing.T) {
	tab := NewTable()
	target := tableTarget{tab}

	first := NewAdvertiser("frankfurt", fakeSource{"old-obj": {0, 1}}, time.Hour)
	first.AddTarget("dublin", target)
	first.Advertise()
	if tab.Mirror("frankfurt").Keys() != 1 {
		t.Fatal("first incarnation's digest not applied")
	}

	time.Sleep(time.Millisecond) // a restart is never instantaneous
	second := NewAdvertiser("frankfurt", fakeSource{"new-obj": {4}}, time.Hour)
	second.AddTarget("dublin", target)
	second.Advertise()

	m := tab.Mirror("frankfurt")
	if len(m.IndicesOf("old-obj")) != 0 {
		t.Fatal("restarted advertiser did not replace its predecessor's view")
	}
	if got := m.IndicesOf("new-obj"); !reflect.DeepEqual(got, []int{4}) {
		t.Fatalf("post-restart residency = %v", got)
	}
}

// tableTarget applies digests straight into a table, like a local cache
// server would.
type tableTarget struct{ tab *Table }

func (t tableTarget) SendDigest(d Digest) error {
	t.tab.Apply(d)
	return nil
}

func TestAdvertiserStartStop(t *testing.T) {
	src := fakeSource{"k": {0}}
	adv := NewAdvertiser("frankfurt", src, time.Millisecond)
	target := &fakeTarget{}
	adv.AddTarget("dublin", target)
	adv.Start()
	deadline := time.Now().Add(2 * time.Second)
	for {
		target.mu.Lock()
		n := len(target.frames)
		target.mu.Unlock()
		if n >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("advertiser never pushed")
		}
		time.Sleep(time.Millisecond)
	}
	adv.Stop()
	adv.Stop() // idempotent
}
