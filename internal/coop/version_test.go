package coop

import (
	"reflect"
	"testing"
)

// versionedSource is a scripted VersionedSnapshotter.
type versionedSource struct {
	groups map[string][]int
	vers   map[string]uint64
}

func (s *versionedSource) Snapshot() map[string][]int { return s.groups }
func (s *versionedSource) SnapshotVer() (map[string][]int, map[string]uint64) {
	return s.groups, s.vers
}

func TestDiffVerVersionOnlyChange(t *testing.T) {
	prev := map[string][]int{"obj": {0, 1}}
	cur := map[string][]int{"obj": {0, 1}}

	// Same indices, same version: no change.
	changed, vers := DiffVer(prev, cur, map[string]uint64{"obj": 100}, map[string]uint64{"obj": 100})
	if len(changed) != 0 || vers != nil {
		t.Fatalf("no-op diff reported %v / %v", changed, vers)
	}

	// Same indices, newer version: the invalidate-then-repopulate case a
	// residency-only diff would miss.
	changed, vers = DiffVer(prev, cur, map[string]uint64{"obj": 100}, map[string]uint64{"obj": 200})
	if !reflect.DeepEqual(changed["obj"], []int{0, 1}) || vers["obj"] != 200 {
		t.Fatalf("version bump missed: %v / %v", changed, vers)
	}
}

func TestPaginateVerAttachesPageLocalVersions(t *testing.T) {
	snap := make(map[string][]int)
	vers := make(map[string]uint64)
	for i := 0; i < MaxDigestKeys+5; i++ {
		key := keyN(i)
		snap[key] = []int{0}
		if i%2 == 0 {
			vers[key] = uint64(i + 1)
		}
	}
	frames := PaginateVer("tokyo", 7, snap, vers)
	if len(frames) != 2 {
		t.Fatalf("%d frames", len(frames))
	}
	seen := 0
	for _, f := range frames {
		for key, v := range f.KeyVers {
			if _, ok := f.Groups[key]; !ok {
				t.Fatalf("frame carries version for foreign key %q", key)
			}
			if vers[key] != v {
				t.Fatalf("key %q advertised %d, want %d", key, v, vers[key])
			}
			seen++
		}
	}
	if seen != len(vers) {
		t.Fatalf("%d versions advertised, want %d", seen, len(vers))
	}
}

func TestMirrorVersionLifecycle(t *testing.T) {
	m := NewMirror("dublin")
	m.ApplyVer(1, map[string][]int{"obj": {0, 1}}, map[string]uint64{"obj": 100})
	if m.VersionOf("obj") != 100 {
		t.Fatalf("VersionOf = %d", m.VersionOf("obj"))
	}

	// A delta re-advertising the key at a newer version replaces it.
	if !m.ApplyDeltaVer(2, 1, map[string][]int{"obj": {0, 1}}, map[string]uint64{"obj": 200}) {
		t.Fatal("delta rejected")
	}
	if m.VersionOf("obj") != 200 {
		t.Fatalf("after delta: %d", m.VersionOf("obj"))
	}

	// A delta deleting the key clears its version too.
	if !m.ApplyDeltaVer(3, 2, map[string][]int{"obj": {}}, nil) {
		t.Fatal("deletion delta rejected")
	}
	if m.VersionOf("obj") != 0 || m.Keys() != 0 {
		t.Fatalf("after deletion: v%d keys=%d", m.VersionOf("obj"), m.Keys())
	}

	// A full digest replaces the version view wholesale.
	m.ApplyVer(4, map[string][]int{"other": {2}}, nil)
	if m.VersionOf("obj") != 0 || m.VersionOf("other") != 0 {
		t.Fatal("full apply leaked old versions")
	}
}

// TestAdvertiserVersionDelta drives an advertiser over a versioned source:
// a version-only change must still travel as a delta, and the table's floor
// view must follow it.
func TestAdvertiserVersionDelta(t *testing.T) {
	src := &versionedSource{
		groups: map[string][]int{"obj": {0, 1}},
		vers:   map[string]uint64{"obj": 100},
	}
	table := NewTable()
	adv := NewAdvertiser("tokyo", src, 0)
	adv.AddTarget("dublin", targetFunc(func(d Digest) error {
		table.Apply(d)
		return nil
	}))

	if adv.Advertise() != 0 {
		t.Fatal("first advertise failed")
	}
	if got := table.VersionOf("tokyo", "obj"); got != 100 {
		t.Fatalf("after full digest: %d", got)
	}

	// Bump only the version — residency unchanged.
	src.vers = map[string]uint64{"obj": 250}
	if adv.Advertise() != 0 {
		t.Fatal("second advertise failed")
	}
	if adv.DeltaPushes() != 1 {
		t.Fatalf("version bump did not travel as a delta (deltas=%d)", adv.DeltaPushes())
	}
	if got := table.VersionOf("tokyo", "obj"); got != 250 {
		t.Fatalf("after delta: %d", got)
	}
	if got := table.MaxVersionOf("obj"); got != 250 {
		t.Fatalf("MaxVersionOf = %d", got)
	}
}

// targetFunc adapts a function to the Target interface.
type targetFunc func(Digest) error

func (f targetFunc) SendDigest(d Digest) error { return f(d) }

func keyN(i int) string {
	// Fixed-width keys keep pagination order deterministic.
	const digits = "0123456789"
	return "key-" + string([]byte{digits[i/100%10], digits[i/10%10], digits[i%10]})
}
