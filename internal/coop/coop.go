// Package coop implements the live cooperative cache mesh — the deployed
// twin of the simulator's §VI peers. Nearby regions read chunks out of each
// other's caches at peer latency instead of crossing the WAN; the first-step
// protocol the paper sketches (peers periodically broadcast their contents
// so each node can revalue its caching options) becomes a concrete digest
// exchange here:
//
//   - An Advertiser periodically snapshots the local cache's residency and
//     pushes it to every peer as one or more digest frames (paginated so a
//     large cache never overflows a frame header), each tagged with the
//     advertiser's region and a monotonic sequence number.
//   - A Mirror is the receiving side's view of one peer's residency: digest
//     frames with a higher sequence replace it, frames sharing the current
//     sequence merge into it (the pagination case), and lower sequences are
//     dropped as stale. A Mirror satisfies core.ChunkResidency, so remote
//     digests plug into the cache manager's knapsack accounting exactly
//     like a local simulated peer cache.
//   - A Table collects the mirrors of every peer a node hears from, plus
//     the peer-read counters a cache server reports through OpStats.
//
// Mirrors are advisory by construction: a peer may evict a chunk between
// digests, so every peer read must tolerate a miss and fall back to the
// backend path. The package is transport-free — the live layer injects the
// wire protocol through the Target interface.
package coop

import "sort"

// MaxDigestKeys bounds how many keys one digest frame carries. Frame
// headers are JSON in a u16-length field, so pagination keeps even large
// caches well under the limit; 128 keys of indices is ~4 KB of header.
const MaxDigestKeys = 128

// Digest is one residency advertisement frame: the chunk indices resident
// for each key in the advertiser's cache, or one page of them — or, when
// Delta is set, only the residency changes since a previous snapshot.
type Digest struct {
	// Region is the advertiser's region name.
	Region string
	// Seq orders digests from one advertiser; every page of one snapshot
	// shares the snapshot's Seq.
	Seq int64
	// Groups maps object keys to their resident chunk indices. In a delta
	// frame, only changed keys appear, and an empty (non-nil) index list
	// means the key left the cache entirely.
	Groups map[string][]int
	// Delta marks this frame as a delta over snapshot Base rather than a
	// full replacement. A mirror applies it only when it sits exactly at
	// Base; anything else rejects the frame, and the advertiser falls back
	// to a full digest on the next push.
	Delta bool
	// Base is the sequence the delta's changes are relative to.
	Base int64
	// KeyVers carries the advertiser's highest cached write version
	// (an hlc.Timestamp) per key, for the keys of this frame that have one.
	// Receivers fold these into their version floors, so an invalidation
	// rides the same digest mesh as residency — a mirror whose view of a key
	// predates its floor is dropped rather than served. Nil from unversioned
	// advertisers; such frames never lower a floor.
	KeyVers map[string]uint64
}

// Diff computes the residency changes from prev to cur as a delta group
// set: keys whose index set changed map to their new indices, and keys that
// vanished map to an empty slice. Index order is ignored; unchanged keys
// are absent. An empty diff means the snapshots agree.
func Diff(prev, cur map[string][]int) map[string][]int {
	changed, _ := DiffVer(prev, cur, nil, nil)
	return changed
}

// DiffVer is the version-aware Diff: a key is also "changed" when its
// advertised version moved even though its index set did not — the
// invalidate-then-repopulate case, where the same indices now hold newer
// bytes and a delta that ignored versions would leave peers serving the
// old floor. It returns the changed group set plus the current versions of
// every changed key that has one.
func DiffVer(prev, cur map[string][]int, prevVers, curVers map[string]uint64) (map[string][]int, map[string]uint64) {
	changed := make(map[string][]int)
	for key, idxs := range cur {
		if !sameIndexSet(prev[key], idxs) || prevVers[key] != curVers[key] {
			changed[key] = append([]int(nil), idxs...)
		}
	}
	for key := range prev {
		if _, ok := cur[key]; !ok {
			changed[key] = []int{}
		}
	}
	var vers map[string]uint64
	for key := range changed {
		if v := curVers[key]; v != 0 {
			if vers == nil {
				vers = make(map[string]uint64)
			}
			vers[key] = v
		}
	}
	return changed, vers
}

// sameIndexSet reports whether two index lists hold the same set.
func sameIndexSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	seen := make(map[int]bool, len(a))
	for _, x := range a {
		seen[x] = true
	}
	for _, x := range b {
		if !seen[x] {
			return false
		}
	}
	return true
}

// PaginateDelta splits a delta group set into delta frames of at most
// MaxDigestKeys keys, all sharing seq and base. An empty change set still
// produces one empty delta frame: the mirror must observe the new sequence
// (and refresh its age) even when nothing moved.
func PaginateDelta(region string, seq, base int64, changes map[string][]int) []Digest {
	return PaginateDeltaVer(region, seq, base, changes, nil)
}

// PaginateDeltaVer is PaginateDelta with per-key versions attached to each
// page (see PaginateVer).
func PaginateDeltaVer(region string, seq, base int64, changes map[string][]int, vers map[string]uint64) []Digest {
	full := PaginateVer(region, seq, changes, vers)
	for i := range full {
		full[i].Delta = true
		full[i].Base = base
	}
	return full
}

// Paginate splits a residency snapshot into digest frames of at most
// MaxDigestKeys keys each, all sharing seq. Keys are emitted in sorted
// order so frames are deterministic. An empty snapshot still produces one
// empty frame — receivers must observe the new sequence to drop their
// stale view.
func Paginate(region string, seq int64, snapshot map[string][]int) []Digest {
	return PaginateVer(region, seq, snapshot, nil)
}

// PaginateVer is Paginate with per-key write versions: each page carries
// the versions of its own keys (nonzero entries only), so receivers can
// raise version floors from exactly the frames that mention a key.
func PaginateVer(region string, seq int64, snapshot map[string][]int, vers map[string]uint64) []Digest {
	keys := make([]string, 0, len(snapshot))
	for k := range snapshot {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if len(keys) == 0 {
		return []Digest{{Region: region, Seq: seq, Groups: map[string][]int{}}}
	}
	var out []Digest
	for start := 0; start < len(keys); start += MaxDigestKeys {
		end := start + MaxDigestKeys
		if end > len(keys) {
			end = len(keys)
		}
		groups := make(map[string][]int, end-start)
		var kv map[string]uint64
		for _, k := range keys[start:end] {
			groups[k] = snapshot[k]
			if v := vers[k]; v != 0 {
				if kv == nil {
					kv = make(map[string]uint64)
				}
				kv[k] = v
			}
		}
		out = append(out, Digest{Region: region, Seq: seq, Groups: groups, KeyVers: kv})
	}
	return out
}
