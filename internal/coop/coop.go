// Package coop implements the live cooperative cache mesh — the deployed
// twin of the simulator's §VI peers. Nearby regions read chunks out of each
// other's caches at peer latency instead of crossing the WAN; the first-step
// protocol the paper sketches (peers periodically broadcast their contents
// so each node can revalue its caching options) becomes a concrete digest
// exchange here:
//
//   - An Advertiser periodically snapshots the local cache's residency and
//     pushes it to every peer as one or more digest frames (paginated so a
//     large cache never overflows a frame header), each tagged with the
//     advertiser's region and a monotonic sequence number.
//   - A Mirror is the receiving side's view of one peer's residency: digest
//     frames with a higher sequence replace it, frames sharing the current
//     sequence merge into it (the pagination case), and lower sequences are
//     dropped as stale. A Mirror satisfies core.ChunkResidency, so remote
//     digests plug into the cache manager's knapsack accounting exactly
//     like a local simulated peer cache.
//   - A Table collects the mirrors of every peer a node hears from, plus
//     the peer-read counters a cache server reports through OpStats.
//
// Mirrors are advisory by construction: a peer may evict a chunk between
// digests, so every peer read must tolerate a miss and fall back to the
// backend path. The package is transport-free — the live layer injects the
// wire protocol through the Target interface.
package coop

import "sort"

// MaxDigestKeys bounds how many keys one digest frame carries. Frame
// headers are JSON in a u16-length field, so pagination keeps even large
// caches well under the limit; 128 keys of indices is ~4 KB of header.
const MaxDigestKeys = 128

// Digest is one residency advertisement frame: the chunk indices resident
// for each key in the advertiser's cache, or one page of them.
type Digest struct {
	// Region is the advertiser's region name.
	Region string
	// Seq orders digests from one advertiser; every page of one snapshot
	// shares the snapshot's Seq.
	Seq int64
	// Groups maps object keys to their resident chunk indices.
	Groups map[string][]int
}

// Paginate splits a residency snapshot into digest frames of at most
// MaxDigestKeys keys each, all sharing seq. Keys are emitted in sorted
// order so frames are deterministic. An empty snapshot still produces one
// empty frame — receivers must observe the new sequence to drop their
// stale view.
func Paginate(region string, seq int64, snapshot map[string][]int) []Digest {
	keys := make([]string, 0, len(snapshot))
	for k := range snapshot {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if len(keys) == 0 {
		return []Digest{{Region: region, Seq: seq, Groups: map[string][]int{}}}
	}
	var out []Digest
	for start := 0; start < len(keys); start += MaxDigestKeys {
		end := start + MaxDigestKeys
		if end > len(keys) {
			end = len(keys)
		}
		groups := make(map[string][]int, end-start)
		for _, k := range keys[start:end] {
			groups[k] = snapshot[k]
		}
		out = append(out, Digest{Region: region, Seq: seq, Groups: groups})
	}
	return out
}
