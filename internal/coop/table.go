package coop

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Table holds a node's mirrors of every peer it hears digests from, plus
// the peer-read counters its cache server reports. A cache server owns one
// Table: incoming OpDigest frames apply here, and OpStats folds the
// table's counters in.
type Table struct {
	mu      sync.Mutex
	mirrors map[string]*Mirror
	now     func() time.Time // nil => each mirror's default (time.Now)

	peerHits   atomic.Int64
	peerMisses atomic.Int64
	digests    atomic.Int64
	deltas     atomic.Int64
	stale      atomic.Int64
}

// NewTable returns an empty mirror table.
func NewTable() *Table {
	return &Table{mirrors: make(map[string]*Mirror)}
}

// Mirror returns the mirror for a peer region, creating it empty on first
// use so wiring code can hand it out before any digest arrives.
func (t *Table) Mirror(region string) *Mirror {
	t.mu.Lock()
	defer t.mu.Unlock()
	m := t.mirrors[region]
	if m == nil {
		m = NewMirror(region)
		m.SetClock(t.now)
		t.mirrors[region] = m
	}
	return m
}

// SetClock replaces the clock every mirror — existing and future — measures
// digest ages against (default time.Now). Simulated deployments inject
// their virtual clock so digest_age_ms stays deterministic.
func (t *Table) SetClock(now func() time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.now = now
	for _, m := range t.mirrors {
		m.SetClock(now)
	}
}

// Regions lists the peer regions the table tracks, sorted.
func (t *Table) Regions() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.mirrors))
	for r := range t.mirrors {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// Apply routes one digest frame — full or delta — to its region's mirror
// and reports whether it was applied (false means it was stale, or a delta
// whose base the mirror has moved past).
func (t *Table) Apply(d Digest) bool {
	m := t.Mirror(d.Region)
	var ok bool
	if d.Delta {
		ok = m.ApplyDeltaVer(d.Seq, d.Base, d.Groups, d.KeyVers)
		if ok {
			t.deltas.Add(1)
		}
	} else {
		ok = m.ApplyVer(d.Seq, d.Groups, d.KeyVers)
	}
	if ok {
		t.digests.Add(1)
	} else {
		t.stale.Add(1)
	}
	return ok
}

// VersionOf returns the write version a peer region last advertised for a
// key (zero when the region is unknown or advertised none).
func (t *Table) VersionOf(region, key string) uint64 {
	t.mu.Lock()
	m := t.mirrors[region]
	t.mu.Unlock()
	if m == nil {
		return 0
	}
	return m.VersionOf(key)
}

// MaxVersionOf returns the highest write version any tracked peer
// advertises for the key — the mesh-wide freshness bound a reader can
// demand without a backend round trip.
func (t *Table) MaxVersionOf(key string) uint64 {
	t.mu.Lock()
	mirrors := make([]*Mirror, 0, len(t.mirrors))
	for _, m := range t.mirrors {
		mirrors = append(mirrors, m)
	}
	t.mu.Unlock()
	var max uint64
	for _, m := range mirrors {
		if v := m.VersionOf(key); v > max {
			max = v
		}
	}
	return max
}

// RecordPeerRead accounts one batched read from a remote peer's client:
// hits chunks were served, misses were advertised-but-gone (or never
// advertised) chunks the peer will now re-fetch over the WAN.
func (t *Table) RecordPeerRead(hits, misses int) {
	t.peerHits.Add(int64(hits))
	t.peerMisses.Add(int64(misses))
}

// PeerReads returns the cumulative peer-read hit and miss chunk counts.
func (t *Table) PeerReads() (hits, misses int64) {
	return t.peerHits.Load(), t.peerMisses.Load()
}

// Applied returns how many digest frames were applied and how many were
// dropped as stale.
func (t *Table) Applied() (applied, stale int64) {
	return t.digests.Load(), t.stale.Load()
}

// Deltas returns how many of the applied frames were digest deltas.
func (t *Table) Deltas() int64 { return t.deltas.Load() }

// StalestAge returns the age of the least recently refreshed mirror, and
// false when no mirror has ever received a digest.
func (t *Table) StalestAge() (time.Duration, bool) {
	t.mu.Lock()
	mirrors := make([]*Mirror, 0, len(t.mirrors))
	for _, m := range t.mirrors {
		mirrors = append(mirrors, m)
	}
	t.mu.Unlock()
	var worst time.Duration
	found := false
	for _, m := range mirrors {
		if age, ok := m.Age(); ok {
			if !found || age > worst {
				worst = age
			}
			found = true
		}
	}
	return worst, found
}
