package stats

import (
	"hash/fnv"
	"math"
)

// CountMinSketch is a fixed-memory frequency estimator: counts are spread
// over depth rows of width counters; an item's estimate is the minimum of
// its row counters, so estimates only ever over-count. This is the
// approximate-statistics substrate the paper points at (TinyLFU, §VII) for
// scaling Agar's request monitor beyond exact per-key counting.
type CountMinSketch struct {
	width uint32
	depth int
	rows  [][]uint32
}

// NewCountMinSketch returns a sketch with the given shape. Width is rounded
// up to at least 16; depth is clamped to [1, 8].
func NewCountMinSketch(width, depth int) *CountMinSketch {
	if width < 16 {
		width = 16
	}
	if depth < 1 {
		depth = 1
	}
	if depth > 8 {
		depth = 8
	}
	rows := make([][]uint32, depth)
	for i := range rows {
		rows[i] = make([]uint32, width)
	}
	return &CountMinSketch{width: uint32(width), depth: depth, rows: rows}
}

// NewCountMinSketchForError sizes a sketch for a target additive error
// epsilon (relative to the total count) with failure probability delta,
// using the standard w = e/epsilon, d = ln(1/delta) formulas.
func NewCountMinSketchForError(epsilon, delta float64) *CountMinSketch {
	if epsilon <= 0 || epsilon >= 1 {
		epsilon = 0.01
	}
	if delta <= 0 || delta >= 1 {
		delta = 0.01
	}
	w := int(math.Ceil(math.E / epsilon))
	d := int(math.Ceil(math.Log(1 / delta)))
	return NewCountMinSketch(w, d)
}

// hashPair derives two independent 32-bit hashes; row i uses h1 + i*h2
// (Kirsch–Mitzenmacher double hashing).
func hashPair(key string) (uint32, uint32) {
	h := fnv.New64a()
	h.Write([]byte(key))
	v := h.Sum64()
	h1 := uint32(v)
	h2 := uint32(v>>32) | 1 // odd, so strides cycle the whole table
	return h1, h2
}

// Add increments the item's counters by n.
func (s *CountMinSketch) Add(key string, n uint32) {
	h1, h2 := hashPair(key)
	for i := 0; i < s.depth; i++ {
		idx := (h1 + uint32(i)*h2) % s.width
		s.rows[i][idx] += n
	}
}

// Estimate returns the (over-)estimated count for the item.
func (s *CountMinSketch) Estimate(key string) uint32 {
	h1, h2 := hashPair(key)
	est := uint32(math.MaxUint32)
	for i := 0; i < s.depth; i++ {
		idx := (h1 + uint32(i)*h2) % s.width
		if c := s.rows[i][idx]; c < est {
			est = c
		}
	}
	return est
}

// Reset zeroes every counter.
func (s *CountMinSketch) Reset() {
	for _, row := range s.rows {
		clear(row)
	}
}

// Halve divides every counter by two — TinyLFU's aging mechanism, which
// keeps the sketch responsive to popularity shifts.
func (s *CountMinSketch) Halve() {
	for _, row := range s.rows {
		for i := range row {
			row[i] >>= 1
		}
	}
}

// BloomFilter is a classic split-free Bloom filter used as TinyLFU's
// "doorkeeper": one-hit wonders stay in the filter and never consume sketch
// or candidate-table space.
type BloomFilter struct {
	bits   []uint64
	nbits  uint32
	hashes int
}

// NewBloomFilter sizes a filter for n expected items at roughly 1% false
// positives.
func NewBloomFilter(n int) *BloomFilter {
	if n < 16 {
		n = 16
	}
	nbits := uint32(n * 10) // ~10 bits/item -> ~1% fp with 7 hashes
	words := (nbits + 63) / 64
	return &BloomFilter{bits: make([]uint64, words), nbits: words * 64, hashes: 7}
}

// Add inserts the key.
func (b *BloomFilter) Add(key string) {
	h1, h2 := hashPair(key)
	for i := 0; i < b.hashes; i++ {
		bit := (h1 + uint32(i)*h2) % b.nbits
		b.bits[bit/64] |= 1 << (bit % 64)
	}
}

// Contains reports (probabilistic) membership.
func (b *BloomFilter) Contains(key string) bool {
	h1, h2 := hashPair(key)
	for i := 0; i < b.hashes; i++ {
		bit := (h1 + uint32(i)*h2) % b.nbits
		if b.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// Reset clears the filter.
func (b *BloomFilter) Reset() {
	clear(b.bits)
}
