package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestEWMAPaperExample(t *testing.T) {
	// §IV worked example: alpha=0.8, previous popularity 0, frequency 100
	// => popularity 80.
	e := NewEWMA(0.8)
	if got := e.Update(100); got != 80 {
		t.Fatalf("first update = %v, want 80", got)
	}
	// Second period with frequency 100 again: 0.8*100 + 0.2*80 = 96.
	if got := e.Update(100); got != 96 {
		t.Fatalf("second update = %v, want 96", got)
	}
	if e.Samples() != 2 {
		t.Fatalf("samples = %d", e.Samples())
	}
}

func TestEWMAConvergesToConstant(t *testing.T) {
	e := NewEWMA(0.5)
	for i := 0; i < 60; i++ {
		e.Update(42)
	}
	if math.Abs(e.Value()-42) > 1e-9 {
		t.Fatalf("EWMA did not converge: %v", e.Value())
	}
}

func TestEWMABoundsQuick(t *testing.T) {
	// EWMA of values in [0, 1000] stays in [0, 1000].
	f := func(vals []float64) bool {
		e := NewEWMA(0.8)
		for _, v := range vals {
			x := math.Mod(math.Abs(v), 1000)
			e.Update(x)
			if e.Value() < 0 || e.Value() > 1000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEWMAInvalidAlpha(t *testing.T) {
	for _, a := range []float64{0, -0.1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewEWMA(%v) did not panic", a)
				}
			}()
			NewEWMA(a)
		}()
	}
	NewEWMA(1) // boundary is legal
}

func TestWelford(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 {
		t.Fatal("zero-value Welford must report zeros")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v, want 5", w.Mean())
	}
	// Sample variance of this classic set is 32/7.
	if math.Abs(w.Variance()-32.0/7.0) > 1e-12 {
		t.Fatalf("variance = %v, want %v", w.Variance(), 32.0/7.0)
	}
	if math.Abs(w.Stddev()-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Fatalf("stddev = %v", w.Stddev())
	}
}

func TestLatencySummary(t *testing.T) {
	s := NewLatencySummary(8)
	if s.Mean() != 0 || s.Percentile(50) != 0 {
		t.Fatal("empty summary must report zeros")
	}
	for i := 1; i <= 100; i++ {
		s.Add(time.Duration(i) * time.Millisecond)
	}
	if s.N() != 100 {
		t.Fatalf("N = %d", s.N())
	}
	if got := s.Mean(); got != time.Duration(50.5*float64(time.Millisecond)) {
		t.Fatalf("mean = %v", got)
	}
	if got := s.Percentile(50); got != 50*time.Millisecond {
		t.Fatalf("p50 = %v", got)
	}
	if got := s.Percentile(99); got != 99*time.Millisecond {
		t.Fatalf("p99 = %v", got)
	}
	if s.Min() != time.Millisecond || s.Max() != 100*time.Millisecond {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestLatencySummaryInterleavedAddAndQuery(t *testing.T) {
	s := NewLatencySummary(4)
	s.Add(3 * time.Millisecond)
	s.Add(1 * time.Millisecond)
	if s.Percentile(100) != 3*time.Millisecond {
		t.Fatal("max wrong before second add")
	}
	s.Add(5 * time.Millisecond) // must invalidate the sorted flag
	if s.Percentile(100) != 5*time.Millisecond {
		t.Fatal("summary did not re-sort after Add")
	}
}

func TestLatencySummaryMerge(t *testing.T) {
	a := NewLatencySummary(2)
	b := NewLatencySummary(2)
	a.Add(10 * time.Millisecond)
	b.Add(30 * time.Millisecond)
	a.Merge(b)
	if a.N() != 2 || a.Mean() != 20*time.Millisecond {
		t.Fatalf("merge wrong: n=%d mean=%v", a.N(), a.Mean())
	}
}

func TestPercentileMonotonicQuick(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		s := NewLatencySummary(len(raw))
		for _, r := range raw {
			s.Add(time.Duration(r) * time.Microsecond)
		}
		prev := time.Duration(-1)
		for _, p := range []float64{0, 10, 25, 50, 75, 90, 99, 100} {
			v := s.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	if c.Get("x") != 0 {
		t.Fatal("zero-value counter must read 0")
	}
	c.Inc("hit")
	c.Inc("hit")
	c.Inc("miss")
	c.Addn("partial", 3)
	if c.Get("hit") != 2 || c.Get("partial") != 3 {
		t.Fatal("counts wrong")
	}
	if got := c.Ratio("hit", "hit", "miss"); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Fatalf("ratio = %v", got)
	}
	if got := c.Ratio("hit", "absent"); got != 0 {
		t.Fatalf("ratio with zero denominator = %v, want 0", got)
	}
}
