package stats

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCountMinNeverUndercounts(t *testing.T) {
	s := NewCountMinSketch(512, 4)
	truth := map[string]uint32{}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		key := fmt.Sprintf("key-%d", r.Intn(200))
		s.Add(key, 1)
		truth[key]++
	}
	for key, want := range truth {
		if got := s.Estimate(key); got < want {
			t.Fatalf("sketch undercounted %s: %d < %d", key, got, want)
		}
	}
}

func TestCountMinAccuracyOnSkewedStream(t *testing.T) {
	s := NewCountMinSketchForError(0.005, 0.01)
	truth := map[string]uint32{}
	r := rand.New(rand.NewSource(2))
	total := uint32(0)
	for i := 0; i < 50000; i++ {
		// zipf-ish: low keys much more frequent
		key := fmt.Sprintf("key-%d", int(r.ExpFloat64()*30))
		s.Add(key, 1)
		truth[key]++
		total++
	}
	// Additive error should stay within ~epsilon * total for hot keys.
	budget := uint32(float64(total) * 0.01)
	for key, want := range truth {
		if want < 100 {
			continue
		}
		got := s.Estimate(key)
		if got-want > budget {
			t.Fatalf("estimate for %s off by %d (> %d)", key, got-want, budget)
		}
	}
}

func TestCountMinUnseenKeySmall(t *testing.T) {
	s := NewCountMinSketch(1024, 4)
	for i := 0; i < 1000; i++ {
		s.Add(fmt.Sprintf("key-%d", i%50), 1)
	}
	if got := s.Estimate("never-seen-key-xyz"); got > 10 {
		t.Fatalf("unseen key estimate %d too high", got)
	}
}

func TestCountMinResetAndHalve(t *testing.T) {
	s := NewCountMinSketch(64, 4)
	s.Add("k", 8)
	if s.Estimate("k") < 8 {
		t.Fatal("count lost")
	}
	s.Halve()
	if got := s.Estimate("k"); got < 4 || got > 5 {
		t.Fatalf("halved estimate %d", got)
	}
	s.Reset()
	if s.Estimate("k") != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestCountMinShapeClamps(t *testing.T) {
	s := NewCountMinSketch(1, 0)
	s.Add("x", 1)
	if s.Estimate("x") != 1 {
		t.Fatal("clamped sketch broken")
	}
	s2 := NewCountMinSketch(16, 100)
	if s2.depth != 8 {
		t.Fatalf("depth clamp: %d", s2.depth)
	}
	s3 := NewCountMinSketchForError(-1, 2)
	s3.Add("x", 1)
	if s3.Estimate("x") != 1 {
		t.Fatal("defaulted sketch broken")
	}
}

func TestBloomFilterBasics(t *testing.T) {
	b := NewBloomFilter(1000)
	keys := make([]string, 500)
	for i := range keys {
		keys[i] = fmt.Sprintf("member-%d", i)
		b.Add(keys[i])
	}
	for _, k := range keys {
		if !b.Contains(k) {
			t.Fatalf("false negative for %s", k)
		}
	}
	// False-positive rate should be low.
	fp := 0
	for i := 0; i < 10000; i++ {
		if b.Contains(fmt.Sprintf("absent-%d", i)) {
			fp++
		}
	}
	if fp > 500 { // 5%, far above the ~1% design point
		t.Fatalf("false positive rate too high: %d/10000", fp)
	}
	b.Reset()
	if b.Contains(keys[0]) {
		t.Fatal("reset incomplete")
	}
}

func TestBloomNoFalseNegativesQuick(t *testing.T) {
	f := func(keys []string) bool {
		b := NewBloomFilter(len(keys) + 1)
		for _, k := range keys {
			b.Add(k)
		}
		for _, k := range keys {
			if !b.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCountMinAdd(b *testing.B) {
	s := NewCountMinSketch(4096, 4)
	for i := 0; i < b.N; i++ {
		s.Add("some-object-key", 1)
	}
}

func BenchmarkCountMinEstimate(b *testing.B) {
	s := NewCountMinSketch(4096, 4)
	s.Add("some-object-key", 100)
	for i := 0; i < b.N; i++ {
		s.Estimate("some-object-key")
	}
}
