// Package stats provides the statistical primitives shared by Agar's request
// monitor and the benchmark harness: exponentially weighted moving averages,
// streaming mean/variance, and latency summaries with percentiles.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// EWMA tracks an exponentially weighted moving average with weighting
// coefficient alpha, exactly as the paper's popularity estimate (§IV):
//
//	value_i = alpha*sample_i + (1-alpha)*value_{i-1}
//
// The zero value is unusable; construct with NewEWMA.
type EWMA struct {
	alpha   float64
	value   float64
	samples int
}

// NewEWMA returns an EWMA with the given coefficient. Alpha must lie in
// (0, 1]; the paper uses 0.8.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("stats: EWMA alpha %v out of (0,1]", alpha))
	}
	return &EWMA{alpha: alpha}
}

// Update folds one period's sample into the average and returns the new
// value. The first sample still passes through the EWMA recurrence with an
// implicit prior of zero, matching the paper's worked example (first period
// popularity = alpha * freq).
func (e *EWMA) Update(sample float64) float64 {
	e.value = e.alpha*sample + (1-e.alpha)*e.value
	e.samples++
	return e.value
}

// Value returns the current average.
func (e *EWMA) Value() float64 { return e.value }

// Samples returns how many periods have been folded in.
func (e *EWMA) Samples() int { return e.samples }

// Welford accumulates streaming mean and variance. The zero value is ready
// to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds in one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 with no observations).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the sample variance (0 with fewer than 2 observations).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Stddev returns the sample standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Variance()) }

// LatencySummary collects latency observations and reports mean and
// percentiles. It retains all samples; experiment runs are bounded (a few
// thousand operations) so exact percentiles are affordable.
type LatencySummary struct {
	samples []time.Duration
	sorted  bool
}

// NewLatencySummary returns an empty summary with capacity for n samples.
func NewLatencySummary(n int) *LatencySummary {
	return &LatencySummary{samples: make([]time.Duration, 0, n)}
}

// Add records one latency observation.
func (s *LatencySummary) Add(d time.Duration) {
	s.samples = append(s.samples, d)
	s.sorted = false
}

// N returns the number of observations.
func (s *LatencySummary) N() int { return len(s.samples) }

// Mean returns the arithmetic mean (0 when empty).
func (s *LatencySummary) Mean() time.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range s.samples {
		sum += d
	}
	return sum / time.Duration(len(s.samples))
}

// Percentile returns the p-th percentile (0 <= p <= 100) using
// nearest-rank on the sorted samples. It returns 0 when empty.
func (s *LatencySummary) Percentile(p float64) time.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Slice(s.samples, func(i, j int) bool { return s.samples[i] < s.samples[j] })
		s.sorted = true
	}
	if p <= 0 {
		return s.samples[0]
	}
	if p >= 100 {
		return s.samples[len(s.samples)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(s.samples))))
	return s.samples[rank-1]
}

// DurationSummary is a JSON-friendly snapshot of a latency distribution,
// in milliseconds — the unit every report in this repo uses.
type DurationSummary struct {
	Count  int     `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MinMS  float64 `json:"min_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// MS converts a duration to float milliseconds.
func MS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Summarize snapshots the distribution.
func (s *LatencySummary) Summarize() DurationSummary {
	return DurationSummary{
		Count:  s.N(),
		MeanMS: MS(s.Mean()),
		P50MS:  MS(s.Percentile(50)),
		P95MS:  MS(s.Percentile(95)),
		P99MS:  MS(s.Percentile(99)),
		MinMS:  MS(s.Min()),
		MaxMS:  MS(s.Max()),
	}
}

// Min returns the smallest observation (0 when empty).
func (s *LatencySummary) Min() time.Duration { return s.Percentile(0) }

// Max returns the largest observation (0 when empty).
func (s *LatencySummary) Max() time.Duration { return s.Percentile(100) }

// Merge folds another summary's samples into this one.
func (s *LatencySummary) Merge(o *LatencySummary) {
	s.samples = append(s.samples, o.samples...)
	s.sorted = false
}

// Counter is a simple monotonically increasing event counter with named
// buckets, used for cache hit accounting. The zero value is ready to use.
type Counter struct {
	counts map[string]int64
}

// Inc adds one to the named bucket.
func (c *Counter) Inc(name string) { c.Addn(name, 1) }

// Addn adds n to the named bucket.
func (c *Counter) Addn(name string, n int64) {
	if c.counts == nil {
		c.counts = make(map[string]int64)
	}
	c.counts[name] += n
}

// Get returns the named bucket's count.
func (c *Counter) Get(name string) int64 { return c.counts[name] }

// Ratio returns bucket a divided by the sum of buckets bs, or 0 when the
// denominator is zero.
func (c *Counter) Ratio(a string, bs ...string) float64 {
	var denom int64
	for _, b := range bs {
		denom += c.counts[b]
	}
	if denom == 0 {
		return 0
	}
	return float64(c.counts[a]) / float64(denom)
}
