// Package hlc implements hybrid logical clocks — the version authority of
// the write path. The paper's §VI leaves write synchronization as a sketch;
// this repo resolves it with HLC timestamps on every mutation: last writer
// wins per key, invalidations carry the writer's timestamp, and caches
// refuse to serve or admit chunks older than the newest version they have
// seen for a key.
//
// A Timestamp packs a 48-bit physical component (milliseconds since the
// Unix epoch) with a 16-bit logical counter, so timestamps from any two
// clocks compare with plain integer ordering and fit in one wire header
// field. The Clock is injectable like coop.Table.SetClock: scenario runs
// stamp writes on the simulator's virtual timeline, live servers on wall
// time.
package hlc

import (
	"fmt"
	"strconv"
	"sync"
	"time"
)

// logicalBits is the width of the logical counter packed into the low bits
// of a Timestamp. 16 bits of counter per physical millisecond is far more
// than any realistic same-millisecond write burst; on overflow the clock
// borrows the next millisecond.
const logicalBits = 16

// Timestamp is one hybrid-logical-clock reading: (wall-ms << 16) | logical.
// The zero Timestamp means "unversioned" everywhere in the system — legacy
// chunks, unversioned wire frames — and is never produced by a Clock.
type Timestamp uint64

// Pack builds a timestamp from a physical millisecond reading and a
// logical counter.
func Pack(wallMS int64, logical int) Timestamp {
	return Timestamp(uint64(wallMS)<<logicalBits | uint64(logical)&(1<<logicalBits-1))
}

// WallMS returns the physical component, milliseconds since the Unix epoch.
func (t Timestamp) WallMS() int64 { return int64(t >> logicalBits) }

// Logical returns the logical counter.
func (t Timestamp) Logical() int { return int(t & (1<<logicalBits - 1)) }

// Wall returns the physical component as a time.Time.
func (t Timestamp) Wall() time.Time { return time.UnixMilli(t.WallMS()).UTC() }

// IsZero reports whether this is the unversioned sentinel.
func (t Timestamp) IsZero() bool { return t == 0 }

// String renders "wallms.logical", the diagnostic form Parse accepts.
func (t Timestamp) String() string {
	return fmt.Sprintf("%d.%d", t.WallMS(), t.Logical())
}

// Parse reads the String form back.
func Parse(s string) (Timestamp, error) {
	var wall int64
	var logical int
	if _, err := fmt.Sscanf(s, "%d.%d", &wall, &logical); err != nil {
		return 0, fmt.Errorf("hlc: parse %q: %w", s, err)
	}
	if wall < 0 || logical < 0 || logical >= 1<<logicalBits {
		return 0, fmt.Errorf("hlc: parse %q: components out of range", strconv.Quote(s))
	}
	return Pack(wall, logical), nil
}

// Clock issues monotonically increasing hybrid timestamps. Safe for
// concurrent use.
type Clock struct {
	mu   sync.Mutex
	now  func() time.Time
	last Timestamp
}

// New returns a clock reading physical time from time.Now.
func New() *Clock { return &Clock{now: time.Now} }

// NewAt returns a clock reading physical time from the given source — the
// virtual-time hook, mirroring coop.Table.SetClock. A nil source falls back
// to time.Now.
func NewAt(now func() time.Time) *Clock {
	if now == nil {
		now = time.Now
	}
	return &Clock{now: now}
}

// SetClock swaps the physical time source (nil restores time.Now). The
// logical state is kept, so timestamps stay monotonic across the swap even
// if the new source reads earlier.
func (c *Clock) SetClock(now func() time.Time) {
	if now == nil {
		now = time.Now
	}
	c.mu.Lock()
	c.now = now
	c.mu.Unlock()
}

// Now issues the next timestamp for a local or send event: physical time
// when it has advanced, otherwise the previous reading with the logical
// counter bumped.
func (c *Clock) Now() Timestamp {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tickLocked(c.physLocked())
}

// Observe merges a remote timestamp into the clock (a receive event) and
// returns a reading strictly greater than both the remote timestamp and
// every earlier local one — the HLC receive rule.
func (c *Clock) Observe(remote Timestamp) Timestamp {
	c.mu.Lock()
	defer c.mu.Unlock()
	phys := c.physLocked()
	if remote > c.last {
		c.last = remote
	}
	return c.tickLocked(phys)
}

// Last returns the most recently issued timestamp without advancing the
// clock (zero before the first Now/Observe).
func (c *Clock) Last() Timestamp {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.last
}

// physLocked reads the physical source as a logical-zero timestamp.
func (c *Clock) physLocked() Timestamp {
	ms := c.now().UnixMilli()
	if ms < 0 {
		ms = 0
	}
	return Pack(ms, 0)
}

// tickLocked advances last past max(last, phys) and returns it. A logical
// counter that saturates its 16 bits borrows the next millisecond, keeping
// strict monotonicity.
func (c *Clock) tickLocked(phys Timestamp) Timestamp {
	if phys > c.last {
		c.last = phys
	} else if c.last.Logical() == 1<<logicalBits-1 {
		c.last = Pack(c.last.WallMS()+1, 0)
	} else {
		c.last++
	}
	return c.last
}
