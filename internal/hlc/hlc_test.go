package hlc

import (
	"sync"
	"testing"
	"time"
)

func TestPackUnpack(t *testing.T) {
	ts := Pack(1754_000_000_123, 42)
	if ts.WallMS() != 1754_000_000_123 || ts.Logical() != 42 {
		t.Fatalf("round trip: wall=%d logical=%d", ts.WallMS(), ts.Logical())
	}
	if ts.IsZero() {
		t.Fatal("nonzero timestamp reported zero")
	}
	if !Timestamp(0).IsZero() {
		t.Fatal("zero timestamp not reported zero")
	}
	if got := ts.Wall(); got.UnixMilli() != 1754_000_000_123 {
		t.Fatalf("Wall = %v", got)
	}
}

func TestStringParse(t *testing.T) {
	ts := Pack(123456, 7)
	back, err := Parse(ts.String())
	if err != nil || back != ts {
		t.Fatalf("parse(%q) = %v, %v", ts.String(), back, err)
	}
	for _, bad := range []string{"", "x", "1.-2", "-1.0", "1.70000"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

// TestMonotonicWithinMillisecond pins the logical-counter rule: readings
// inside one physical millisecond still strictly increase.
func TestMonotonicWithinMillisecond(t *testing.T) {
	frozen := time.UnixMilli(1000)
	c := NewAt(func() time.Time { return frozen })
	prev := c.Now()
	for i := 0; i < 100; i++ {
		ts := c.Now()
		if ts <= prev {
			t.Fatalf("not monotonic: %v then %v", prev, ts)
		}
		if ts.WallMS() != 1000 {
			t.Fatalf("wall drifted to %d", ts.WallMS())
		}
		prev = ts
	}
}

// TestPhysicalDominates pins the hybrid rule: once physical time advances
// past the logical run, readings snap back to (wall, 0).
func TestPhysicalDominates(t *testing.T) {
	now := time.UnixMilli(1000)
	c := NewAt(func() time.Time { return now })
	for i := 0; i < 5; i++ {
		c.Now()
	}
	now = time.UnixMilli(2000)
	ts := c.Now()
	if ts.WallMS() != 2000 || ts.Logical() != 0 {
		t.Fatalf("after physical advance: %v", ts)
	}
}

// TestObserveAdvancesPastRemote pins the receive rule: a reading after
// Observe is strictly greater than the remote timestamp even when the
// remote clock runs far ahead of local physical time.
func TestObserveAdvancesPastRemote(t *testing.T) {
	c := NewAt(func() time.Time { return time.UnixMilli(1000) })
	remote := Pack(50_000, 3)
	got := c.Observe(remote)
	if got <= remote {
		t.Fatalf("Observe(%v) = %v, not past remote", remote, got)
	}
	if next := c.Now(); next <= got {
		t.Fatalf("Now after Observe not monotonic: %v then %v", got, next)
	}
}

// TestLogicalOverflowBorrowsMillisecond drives the 16-bit counter to
// saturation and checks the clock borrows the next millisecond instead of
// wrapping backwards.
func TestLogicalOverflowBorrowsMillisecond(t *testing.T) {
	c := NewAt(func() time.Time { return time.UnixMilli(1000) })
	c.Observe(Pack(1000, 1<<logicalBits-3))
	a := c.Now() // saturates the counter
	b := c.Now() // must borrow
	if b <= a {
		t.Fatalf("overflow wrapped: %v then %v", a, b)
	}
	if b.WallMS() != 1001 || b.Logical() != 0 {
		t.Fatalf("expected borrowed millisecond, got %v", b)
	}
}

// TestSetClockKeepsMonotonicity swaps in an earlier physical source and
// checks issued timestamps never regress.
func TestSetClockKeepsMonotonicity(t *testing.T) {
	c := NewAt(func() time.Time { return time.UnixMilli(5000) })
	before := c.Now()
	c.SetClock(func() time.Time { return time.UnixMilli(100) })
	after := c.Now()
	if after <= before {
		t.Fatalf("regressed across SetClock: %v then %v", before, after)
	}
	if c.Last() != after {
		t.Fatalf("Last = %v, want %v", c.Last(), after)
	}
}

// TestConcurrentNowUnique hammers one clock from many goroutines and
// checks every issued timestamp is unique — the property last-writer-wins
// conflict resolution leans on.
func TestConcurrentNowUnique(t *testing.T) {
	c := New()
	const workers, per = 8, 200
	out := make([][]Timestamp, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				out[w] = append(out[w], c.Now())
			}
		}(w)
	}
	wg.Wait()
	seen := make(map[Timestamp]bool, workers*per)
	for _, ts := range out {
		for _, t0 := range ts {
			if seen[t0] {
				t.Fatalf("duplicate timestamp %v", t0)
			}
			seen[t0] = true
		}
	}
}
