package workload

import "math/rand"

// --- range hotspot ---

// RangeHotspot sends hotFrac of the traffic uniformly into the key range
// [lo, hi) and the rest uniformly over the whole key space — the shape of a
// flash crowd on a contiguous key range (a regional news story, a viral
// object set) rather than on the globally most popular keys.
type RangeHotspot struct {
	n       int
	lo, hi  int
	hotFrac float64
	rng     *rand.Rand
}

// NewRangeHotspot returns a flash-crowd generator over n keys with the hot
// range [lo, hi).
func NewRangeHotspot(n, lo, hi int, hotFrac float64, seed int64) *RangeHotspot {
	if n <= 0 || lo < 0 || hi <= lo || hi > n {
		panic("workload: bad range hotspot bounds")
	}
	if hotFrac < 0 || hotFrac > 1 {
		panic("workload: hotFrac must be in [0,1]")
	}
	return &RangeHotspot{n: n, lo: lo, hi: hi, hotFrac: hotFrac, rng: rand.New(rand.NewSource(seed))}
}

// Next implements Generator.
func (g *RangeHotspot) Next() int {
	if g.rng.Float64() < g.hotFrac {
		return g.lo + g.rng.Intn(g.hi-g.lo)
	}
	return g.rng.Intn(g.n)
}

// N implements Generator.
func (g *RangeHotspot) N() int { return g.n }

// --- weighted mixture ---

// Component is one weighted member of a Mix.
type Component struct {
	// Weight is the component's share of the traffic (any positive scale;
	// weights are normalised over the mix).
	Weight float64
	// Gen produces this component's keys.
	Gen Generator
}

// Mix draws each request from one of its component generators, chosen with
// probability proportional to its weight. All components must cover the
// same key space. It models composite workloads: e.g. 80% Zipfian reads
// plus 20% uniform scan background.
type Mix struct {
	n          int
	components []Component
	cum        []float64
	rng        *rand.Rand
}

// NewMix returns a mixture over the components. It panics on an empty
// component list, non-positive weights, or mismatched key spaces.
func NewMix(seed int64, components ...Component) *Mix {
	if len(components) == 0 {
		panic("workload: mix needs at least one component")
	}
	n := components[0].Gen.N()
	total := 0.0
	for _, c := range components {
		if c.Weight <= 0 {
			panic("workload: mix weights must be positive")
		}
		if c.Gen.N() != n {
			panic("workload: mix components disagree on key space size")
		}
		total += c.Weight
	}
	cum := make([]float64, len(components))
	sum := 0.0
	for i, c := range components {
		sum += c.Weight / total
		cum[i] = sum
	}
	return &Mix{n: n, components: components, cum: cum, rng: rand.New(rand.NewSource(seed))}
}

// Next implements Generator.
func (m *Mix) Next() int {
	u := m.rng.Float64()
	for i, c := range m.cum {
		if u < c {
			return m.components[i].Gen.Next()
		}
	}
	return m.components[len(m.components)-1].Gen.Next()
}

// N implements Generator.
func (m *Mix) N() int { return m.n }
