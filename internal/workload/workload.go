// Package workload generates the request streams used by the evaluation: the
// YCSB-style Zipfian distribution the paper drives every experiment with,
// plus uniform, scrambled-Zipfian, latest and hotspot generators.
//
// Two Zipfian implementations are provided. Zipfian samples exactly from the
// inverse CDF, valid for any skew exponent (the paper uses skews from 0.2 up
// to 1.4, beyond the range where the classic YCSB approximation is
// accurate). YCSBZipfian reimplements the Gray et al. streaming
// approximation as used by YCSB itself, for large key spaces with skew < 1.
package workload

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
)

// Generator yields a stream of key indices in [0, N).
type Generator interface {
	// Next returns the next key index.
	Next() int
	// N returns the size of the key space.
	N() int
}

// KeyName formats a key index the way the harness names objects.
func KeyName(i int) string { return fmt.Sprintf("object-%05d", i) }

// --- exact Zipfian ---

// Zipfian samples from a Zipf distribution with P(i) proportional to
// 1/(i+1)^s over indices 0..n-1, by exact inverse-CDF lookup. Key 0 is the
// most popular. The zero value is unusable; construct with NewZipfian.
type Zipfian struct {
	n   int
	s   float64
	cdf []float64
	rng *rand.Rand
}

// NewZipfian returns an exact Zipfian generator over n keys with skew s and
// a deterministic seed. Skew 0 degenerates to the uniform distribution.
func NewZipfian(n int, s float64, seed int64) *Zipfian {
	if n <= 0 {
		panic("workload: zipfian needs n > 0")
	}
	if s < 0 {
		panic("workload: zipfian skew must be non-negative")
	}
	z := &Zipfian{n: n, s: s, cdf: make([]float64, n), rng: rand.New(rand.NewSource(seed))}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		z.cdf[i] = sum
	}
	for i := range z.cdf {
		z.cdf[i] /= sum
	}
	return z
}

// Next implements Generator.
func (z *Zipfian) Next() int {
	u := z.rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// N implements Generator.
func (z *Zipfian) N() int { return z.n }

// Weights returns the normalised probability of each key, most popular
// first.
func (z *Zipfian) Weights() []float64 {
	out := make([]float64, z.n)
	prev := 0.0
	for i, c := range z.cdf {
		out[i] = c - prev
		prev = c
	}
	return out
}

// PopularityCDF returns the cumulative share of requests captured by the x
// most popular objects, for x = 1..top, under a Zipf distribution with the
// given skew over n objects. This is exactly the curve family plotted in the
// paper's Figure 9.
func PopularityCDF(n int, skew float64, top int) []float64 {
	if top > n {
		top = n
	}
	z := NewZipfian(n, skew, 0)
	out := make([]float64, top)
	copy(out, z.cdf[:top])
	return out
}

// --- scrambled Zipfian ---

// ScrambledZipfian draws ranks from a Zipfian distribution and scatters them
// over the key space with an FNV hash, so popularity is Zipf-distributed but
// popular keys are spread out rather than clustered at low indices. This
// mirrors YCSB's ScrambledZipfianGenerator.
type ScrambledZipfian struct {
	inner *Zipfian
}

// NewScrambledZipfian returns a scrambled Zipfian generator.
func NewScrambledZipfian(n int, s float64, seed int64) *ScrambledZipfian {
	return &ScrambledZipfian{inner: NewZipfian(n, s, seed)}
}

// Next implements Generator.
func (g *ScrambledZipfian) Next() int {
	rank := g.inner.Next()
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(rank >> (8 * i))
	}
	h.Write(buf[:])
	return int(h.Sum64() % uint64(g.inner.n))
}

// N implements Generator.
func (g *ScrambledZipfian) N() int { return g.inner.n }

// --- uniform ---

// Uniform samples keys uniformly at random.
type Uniform struct {
	n   int
	rng *rand.Rand
}

// NewUniform returns a uniform generator over n keys.
func NewUniform(n int, seed int64) *Uniform {
	if n <= 0 {
		panic("workload: uniform needs n > 0")
	}
	return &Uniform{n: n, rng: rand.New(rand.NewSource(seed))}
}

// Next implements Generator.
func (u *Uniform) Next() int { return u.rng.Intn(u.n) }

// N implements Generator.
func (u *Uniform) N() int { return u.n }

// --- sequential ---

// Sequential cycles through the key space in order; useful for load phases.
type Sequential struct {
	n, next int
}

// NewSequential returns a sequential generator over n keys.
func NewSequential(n int) *Sequential {
	if n <= 0 {
		panic("workload: sequential needs n > 0")
	}
	return &Sequential{n: n}
}

// Next implements Generator.
func (s *Sequential) Next() int {
	v := s.next
	s.next = (s.next + 1) % s.n
	return v
}

// N implements Generator.
func (s *Sequential) N() int { return s.n }

// --- latest ---

// Latest skews towards recently inserted keys: it draws a Zipfian rank and
// counts backwards from the most recent key, as YCSB's "latest"
// distribution does.
type Latest struct {
	inner *Zipfian
}

// NewLatest returns a latest-skewed generator over n keys.
func NewLatest(n int, s float64, seed int64) *Latest {
	return &Latest{inner: NewZipfian(n, s, seed)}
}

// Next implements Generator.
func (l *Latest) Next() int {
	rank := l.inner.Next()
	return l.inner.n - 1 - rank
}

// N implements Generator.
func (l *Latest) N() int { return l.inner.n }

// --- hotspot ---

// Hotspot sends hotFrac of the traffic to the first hotN keys and the rest
// uniformly to the remainder.
type Hotspot struct {
	n       int
	hotN    int
	hotFrac float64
	rng     *rand.Rand
}

// NewHotspot returns a hotspot generator.
func NewHotspot(n, hotN int, hotFrac float64, seed int64) *Hotspot {
	if n <= 0 || hotN <= 0 || hotN > n {
		panic("workload: bad hotspot parameters")
	}
	if hotFrac < 0 || hotFrac > 1 {
		panic("workload: hotFrac must be in [0,1]")
	}
	return &Hotspot{n: n, hotN: hotN, hotFrac: hotFrac, rng: rand.New(rand.NewSource(seed))}
}

// Next implements Generator.
func (h *Hotspot) Next() int {
	if h.rng.Float64() < h.hotFrac {
		return h.rng.Intn(h.hotN)
	}
	if h.hotN == h.n {
		return h.rng.Intn(h.n)
	}
	return h.hotN + h.rng.Intn(h.n-h.hotN)
}

// N implements Generator.
func (h *Hotspot) N() int { return h.n }

// --- YCSB streaming Zipfian (Gray et al.) ---

// YCSBZipfian reimplements YCSB's ZipfianGenerator (the Gray et al.
// "Quickly generating billion-record synthetic databases" algorithm). It
// samples in O(1) without materialising the CDF, at the cost of being an
// approximation that is only faithful for skew < 1.
type YCSBZipfian struct {
	n     int
	theta float64
	alpha float64
	zetan float64
	eta   float64
	rng   *rand.Rand
}

// NewYCSBZipfian returns a streaming Zipfian generator over n keys with
// exponent theta in (0, 1).
func NewYCSBZipfian(n int, theta float64, seed int64) *YCSBZipfian {
	if n <= 0 {
		panic("workload: ycsb zipfian needs n > 0")
	}
	if theta <= 0 || theta >= 1 {
		panic("workload: ycsb zipfian needs theta in (0,1); use Zipfian for other skews")
	}
	zetan := zeta(n, theta)
	g := &YCSBZipfian{
		n:     n,
		theta: theta,
		alpha: 1 / (1 - theta),
		zetan: zetan,
		eta:   (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta(2, theta)/zetan),
		rng:   rand.New(rand.NewSource(seed)),
	}
	return g
}

func zeta(n int, theta float64) float64 {
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next implements Generator.
func (g *YCSBZipfian) Next() int {
	u := g.rng.Float64()
	uz := u * g.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, g.theta) {
		return 1
	}
	return int(float64(g.n) * math.Pow(g.eta*u-g.eta+1, g.alpha))
}

// N implements Generator.
func (g *YCSBZipfian) N() int { return g.n }
