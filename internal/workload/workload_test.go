package workload

import (
	"math"
	"testing"
)

func sample(g Generator, n int) []int {
	counts := make([]int, g.N())
	for i := 0; i < n; i++ {
		k := g.Next()
		if k < 0 || k >= g.N() {
			panic("key out of range")
		}
		counts[k]++
	}
	return counts
}

func TestZipfianRange(t *testing.T) {
	g := NewZipfian(300, 1.1, 1)
	for i := 0; i < 10000; i++ {
		if k := g.Next(); k < 0 || k >= 300 {
			t.Fatalf("key %d out of range", k)
		}
	}
}

func TestZipfianSkewOrdersPopularity(t *testing.T) {
	g := NewZipfian(100, 1.1, 2)
	counts := sample(g, 200000)
	// Popularity must broadly decrease with index: compare decile sums.
	first, last := 0, 0
	for i := 0; i < 10; i++ {
		first += counts[i]
	}
	for i := 90; i < 100; i++ {
		last += counts[i]
	}
	if first <= last*5 {
		t.Fatalf("zipf 1.1 not skewed enough: first decile %d, last decile %d", first, last)
	}
	// Key 0 must be the most requested.
	for i := 1; i < 100; i++ {
		if counts[i] > counts[0] {
			t.Fatalf("key %d more popular than key 0 (%d > %d)", i, counts[i], counts[0])
		}
	}
}

func TestZipfianMatchesAnalyticWeights(t *testing.T) {
	n := 50
	g := NewZipfian(n, 1.0, 3)
	weights := g.Weights()
	total := 400000
	counts := sample(NewZipfian(n, 1.0, 3), total)
	for i := 0; i < 5; i++ {
		got := float64(counts[i]) / float64(total)
		if math.Abs(got-weights[i]) > 0.01 {
			t.Errorf("key %d empirical %v vs analytic %v", i, got, weights[i])
		}
	}
	// Weights must sum to 1.
	sum := 0.0
	for _, w := range weights {
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %v", sum)
	}
}

func TestZipfianZeroSkewIsUniform(t *testing.T) {
	g := NewZipfian(10, 0, 4)
	counts := sample(g, 100000)
	for i, c := range counts {
		if math.Abs(float64(c)/100000-0.1) > 0.02 {
			t.Fatalf("skew-0 zipf not uniform: key %d has %d", i, c)
		}
	}
}

func TestZipfianDeterministic(t *testing.T) {
	a := NewZipfian(300, 1.1, 99)
	b := NewZipfian(300, 1.1, 99)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed must produce same stream")
		}
	}
}

func TestZipfianPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewZipfian(0, 1, 1) },
		func() { NewZipfian(10, -1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestPopularityCDF(t *testing.T) {
	// Figure 9's qualitative claims: higher skew concentrates mass faster,
	// and the CDF is monotone in [0, 1].
	for _, skew := range []float64{0.5, 0.8, 1.1, 1.4} {
		cdf := PopularityCDF(300, skew, 50)
		if len(cdf) != 50 {
			t.Fatalf("cdf length %d", len(cdf))
		}
		prev := 0.0
		for i, v := range cdf {
			if v < prev || v > 1 {
				t.Fatalf("skew %v: cdf not monotone at %d: %v", skew, i, v)
			}
			prev = v
		}
	}
	lo := PopularityCDF(300, 0.5, 50)
	hi := PopularityCDF(300, 1.4, 50)
	if hi[4] <= lo[4] {
		t.Fatalf("skew 1.4 top-5 share (%v) should exceed skew 0.5's (%v)", hi[4], lo[4])
	}
	// Paper's example reading of Figure 9: at high skew the top handful of
	// objects dominates; at 1.4 the top 5 objects should carry well over
	// half of all requests, while at 0.5 they carry well under a third.
	if hi[4] < 0.5 {
		t.Errorf("skew 1.4: top-5 share %v, expected > 0.5", hi[4])
	}
	if lo[4] > 0.33 {
		t.Errorf("skew 0.5: top-5 share %v, expected < 0.33", lo[4])
	}
	// top > n clamps.
	if got := PopularityCDF(10, 1, 50); len(got) != 10 {
		t.Fatalf("clamped cdf length %d", len(got))
	}
}

func TestScrambledZipfianSpreadsHotKeys(t *testing.T) {
	g := NewScrambledZipfian(300, 1.1, 5)
	counts := sample(g, 100000)
	// The hottest key should NOT be key 0 in general (it is scattered), but
	// the distribution must still be skewed: max count far above mean.
	maxC := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	mean := 100000 / 300
	if maxC < mean*10 {
		t.Fatalf("scrambled zipfian lost its skew: max %d vs mean %d", maxC, mean)
	}
}

func TestUniform(t *testing.T) {
	g := NewUniform(20, 6)
	counts := sample(g, 200000)
	for i, c := range counts {
		if math.Abs(float64(c)/200000-0.05) > 0.01 {
			t.Fatalf("uniform key %d count %d deviates", i, c)
		}
	}
}

func TestSequential(t *testing.T) {
	g := NewSequential(3)
	want := []int{0, 1, 2, 0, 1, 2}
	for i, w := range want {
		if got := g.Next(); got != w {
			t.Fatalf("step %d: got %d want %d", i, got, w)
		}
	}
}

func TestLatestFavoursNewestKeys(t *testing.T) {
	g := NewLatest(100, 1.1, 7)
	counts := sample(g, 100000)
	if counts[99] <= counts[0] {
		t.Fatalf("latest should favour key n-1: counts[99]=%d counts[0]=%d", counts[99], counts[0])
	}
}

func TestHotspot(t *testing.T) {
	g := NewHotspot(100, 10, 0.9, 8)
	counts := sample(g, 100000)
	hot := 0
	for i := 0; i < 10; i++ {
		hot += counts[i]
	}
	if math.Abs(float64(hot)/100000-0.9) > 0.02 {
		t.Fatalf("hotspot fraction off: %d/100000", hot)
	}
}

func TestHotspotFullHot(t *testing.T) {
	g := NewHotspot(10, 10, 0.5, 9)
	for i := 0; i < 1000; i++ {
		if k := g.Next(); k < 0 || k >= 10 {
			t.Fatalf("key %d out of range", k)
		}
	}
}

func TestYCSBZipfianRangeAndSkew(t *testing.T) {
	g := NewYCSBZipfian(1000, 0.99, 10)
	counts := sample(g, 300000)
	if counts[0] < counts[500]*10 {
		t.Fatalf("ycsb zipfian not skewed: head %d vs mid %d", counts[0], counts[500])
	}
}

func TestYCSBZipfianAgreesWithExactHead(t *testing.T) {
	// For theta < 1 the Gray approximation should roughly match the exact
	// sampler on the head of the distribution.
	n, theta := 1000, 0.8
	total := 400000
	approx := sample(NewYCSBZipfian(n, theta, 11), total)
	exact := sample(NewZipfian(n, theta, 12), total)
	for i := 0; i < 3; i++ {
		a := float64(approx[i]) / float64(total)
		e := float64(exact[i]) / float64(total)
		if math.Abs(a-e) > 0.02 {
			t.Errorf("key %d: approx %v vs exact %v", i, a, e)
		}
	}
}

func TestYCSBZipfianPanicsOutsideRange(t *testing.T) {
	for _, theta := range []float64{0, 1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("theta %v did not panic", theta)
				}
			}()
			NewYCSBZipfian(10, theta, 1)
		}()
	}
}

func TestKeyName(t *testing.T) {
	if KeyName(7) != "object-00007" {
		t.Fatalf("KeyName(7) = %q", KeyName(7))
	}
	if KeyName(0) == KeyName(1) {
		t.Fatal("key names must be distinct")
	}
}

func BenchmarkZipfianNext(b *testing.B) {
	g := NewZipfian(300, 1.1, 1)
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}

func BenchmarkYCSBZipfianNext(b *testing.B) {
	g := NewYCSBZipfian(1_000_000, 0.99, 1)
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}
