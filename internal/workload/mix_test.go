package workload

import "testing"

func TestRangeHotspotConcentration(t *testing.T) {
	const n, lo, hi = 1000, 200, 250
	g := NewRangeHotspot(n, lo, hi, 0.9, 42)
	inRange := 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		k := g.Next()
		if k < 0 || k >= n {
			t.Fatalf("key %d out of [0,%d)", k, n)
		}
		if k >= lo && k < hi {
			inRange++
		}
	}
	// 90% targeted + ~5% of the uniform remainder lands in the range.
	frac := float64(inRange) / draws
	if frac < 0.85 || frac > 0.97 {
		t.Fatalf("hot range received %.3f of traffic, want ~0.905", frac)
	}
	if g.N() != n {
		t.Fatalf("N() = %d, want %d", g.N(), n)
	}
}

func TestRangeHotspotValidation(t *testing.T) {
	cases := []struct {
		name      string
		n, lo, hi int
		frac      float64
	}{
		{"hi<=lo", 100, 50, 50, 0.5},
		{"hi>n", 100, 0, 101, 0.5},
		{"negative lo", 100, -1, 10, 0.5},
		{"frac>1", 100, 0, 10, 1.5},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", c.name)
				}
			}()
			NewRangeHotspot(c.n, c.lo, c.hi, c.frac, 1)
		}()
	}
}

func TestMixWeights(t *testing.T) {
	const n = 500
	// A mix of two degenerate hotspots makes the component choice visible:
	// component A always draws from [0,10), component B from [490,500).
	a := NewRangeHotspot(n, 0, 10, 1, 1)
	b := NewRangeHotspot(n, 490, 500, 1, 2)
	m := NewMix(7, Component{Weight: 3, Gen: a}, Component{Weight: 1, Gen: b})
	if m.N() != n {
		t.Fatalf("N() = %d, want %d", m.N(), n)
	}
	fromA := 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		k := m.Next()
		switch {
		case k < 10:
			fromA++
		case k >= 490:
		default:
			t.Fatalf("key %d from neither component", k)
		}
	}
	frac := float64(fromA) / draws
	if frac < 0.70 || frac > 0.80 {
		t.Fatalf("component A received %.3f of traffic, want ~0.75", frac)
	}
}

func TestMixValidation(t *testing.T) {
	g10 := NewUniform(10, 1)
	g20 := NewUniform(20, 1)
	for name, build := range map[string]func(){
		"empty":           func() { NewMix(1) },
		"zero weight":     func() { NewMix(1, Component{Weight: 0, Gen: g10}) },
		"mismatched size": func() { NewMix(1, Component{Weight: 1, Gen: g10}, Component{Weight: 1, Gen: g20}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			build()
		}()
	}
}
