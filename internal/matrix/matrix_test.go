package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/agardist/agar/internal/gf256"
)

func TestNewAndAccessors(t *testing.T) {
	m := New(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("got %dx%d, want 2x3", m.Rows(), m.Cols())
	}
	m.Set(1, 2, 0xAB)
	if got := m.Get(1, 2); got != 0xAB {
		t.Fatalf("Get(1,2) = %#x, want 0xAB", got)
	}
	if got := m.Get(0, 0); got != 0 {
		t.Fatalf("fresh matrix not zeroed: %#x", got)
	}
}

func TestNewPanicsOnBadDims(t *testing.T) {
	for _, dims := range [][2]int{{0, 1}, {1, 0}, {-1, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			New(dims[0], dims[1])
		}()
	}
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]byte{{1, 2}, {3, 4}})
	if m.Get(0, 1) != 2 || m.Get(1, 0) != 3 {
		t.Fatal("FromRows stored wrong values")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("ragged FromRows did not panic")
			}
		}()
		FromRows([][]byte{{1, 2}, {3}})
	}()
}

func TestIdentity(t *testing.T) {
	for n := 1; n <= 8; n++ {
		id := Identity(n)
		if !id.IsIdentity() {
			t.Fatalf("Identity(%d) failed IsIdentity", n)
		}
	}
}

func TestMulByIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randomMatrix(rng, 4, 4)
	if !m.Mul(Identity(4)).Equal(m) {
		t.Error("m * I != m")
	}
	if !Identity(4).Mul(m).Equal(m) {
		t.Error("I * m != m")
	}
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]byte{
		{1, 2},
		{3, 4},
	})
	b := FromRows([][]byte{
		{5, 6},
		{7, 8},
	})
	// Computed by hand over GF(2^8):
	// c00 = 1*5 ^ 2*7 = 5 ^ 14 = 11
	// c01 = 1*6 ^ 2*8 = 6 ^ 16 = 22
	// c10 = 3*5 ^ 4*7 = 15 ^ 28 = 19
	// c11 = 3*6 ^ 4*8 = 10 ^ 32 = 42
	want := FromRows([][]byte{
		{11, 22},
		{19, 42},
	})
	if got := a.Mul(b); !got.Equal(want) {
		t.Fatalf("Mul mismatch:\n%v\nwant:\n%v", got, want)
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randomMatrix(rng, 5, 7)
	v := make([]byte, 7)
	rng.Read(v)
	col := New(7, 1)
	for i, x := range v {
		col.Set(i, 0, x)
	}
	viaMul := m.Mul(col)
	got := m.MulVec(v)
	for i := range got {
		if got[i] != viaMul.Get(i, 0) {
			t.Fatalf("MulVec[%d] = %d, Mul says %d", i, got[i], viaMul.Get(i, 0))
		}
	}
}

func TestMulAssociativityQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomMatrix(r, 3, 4)
		b := randomMatrix(r, 4, 5)
		c := randomMatrix(r, 5, 2)
		return a.Mul(b).Mul(c).Equal(a.Mul(b.Mul(c)))
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Errorf("matrix multiplication not associative: %v", err)
	}
}

func TestInvertIdentity(t *testing.T) {
	inv, err := Identity(6).Invert()
	if err != nil {
		t.Fatal(err)
	}
	if !inv.IsIdentity() {
		t.Fatal("inverse of identity is not identity")
	}
}

func TestInvertKnown(t *testing.T) {
	m := FromRows([][]byte{
		{56, 23, 98},
		{3, 100, 200},
		{45, 201, 123},
	})
	inv, err := m.Invert()
	if err != nil {
		t.Fatal(err)
	}
	if !m.Mul(inv).IsIdentity() {
		t.Error("m * m^-1 != I")
	}
	if !inv.Mul(m).IsIdentity() {
		t.Error("m^-1 * m != I")
	}
}

func TestInvertRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		m := randomInvertible(r, n)
		inv, err := m.Invert()
		if err != nil {
			return false
		}
		return m.Mul(inv).IsIdentity() && inv.Mul(m).IsIdentity()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Errorf("invert round-trip failed: %v", err)
	}
}

func TestInvertSingular(t *testing.T) {
	// Row 1 = 2 * row 0, so the matrix is singular.
	m := FromRows([][]byte{
		{1, 2},
		{2, 4},
	})
	if _, err := m.Invert(); err != ErrSingular {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
}

func TestInvertZeroMatrix(t *testing.T) {
	if _, err := New(3, 3).Invert(); err != ErrSingular {
		t.Fatalf("expected ErrSingular for zero matrix, got %v", err)
	}
}

func TestInvertNonSquare(t *testing.T) {
	if _, err := New(2, 3).Invert(); err == nil {
		t.Fatal("expected error inverting non-square matrix")
	}
}

func TestVandermonde(t *testing.T) {
	v := Vandermonde(4, 3)
	for r := 0; r < 4; r++ {
		for c := 0; c < 3; c++ {
			if got, want := v.Get(r, c), gf256.Pow(byte(r), c); got != want {
				t.Fatalf("Vandermonde(%d,%d) = %d, want %d", r, c, got, want)
			}
		}
	}
	// First column is all ones, row 0 is 1,0,0,...
	if v.Get(0, 0) != 1 || v.Get(0, 1) != 0 {
		t.Error("Vandermonde row 0 should be e_0")
	}
}

func TestCauchyAllSquareSubmatricesInvertible(t *testing.T) {
	// The defining property of a Cauchy matrix: every square sub-matrix is
	// invertible. Verify for all 2x2 sub-matrices of a 4x4 Cauchy matrix.
	c := Cauchy(4, 4)
	for r1 := 0; r1 < 4; r1++ {
		for r2 := r1 + 1; r2 < 4; r2++ {
			for c1 := 0; c1 < 4; c1++ {
				for c2 := c1 + 1; c2 < 4; c2++ {
					sub := FromRows([][]byte{
						{c.Get(r1, c1), c.Get(r1, c2)},
						{c.Get(r2, c1), c.Get(r2, c2)},
					})
					if _, err := sub.Invert(); err != nil {
						t.Fatalf("2x2 Cauchy sub-matrix (%d,%d)x(%d,%d) singular", r1, r2, c1, c2)
					}
				}
			}
		}
	}
}

func TestCauchyPanicsWhenTooLarge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Cauchy(200, 100) did not panic")
		}
	}()
	Cauchy(200, 100)
}

func TestAugmentAndSubMatrix(t *testing.T) {
	a := FromRows([][]byte{{1, 2}, {3, 4}})
	b := FromRows([][]byte{{5}, {6}})
	aug := a.Augment(b)
	if aug.Cols() != 3 || aug.Get(0, 2) != 5 || aug.Get(1, 2) != 6 {
		t.Fatal("Augment wrong")
	}
	sub := aug.SubMatrix(0, 2, 2, 3)
	if !sub.Equal(b) {
		t.Fatal("SubMatrix did not recover augmented block")
	}
}

func TestSelectRows(t *testing.T) {
	m := FromRows([][]byte{{1}, {2}, {3}})
	s := m.SelectRows([]int{2, 0, 2})
	if s.Get(0, 0) != 3 || s.Get(1, 0) != 1 || s.Get(2, 0) != 3 {
		t.Fatal("SelectRows wrong")
	}
}

func TestSwapRows(t *testing.T) {
	m := FromRows([][]byte{{1, 2}, {3, 4}})
	m.SwapRows(0, 1)
	if m.Get(0, 0) != 3 || m.Get(1, 0) != 1 {
		t.Fatal("SwapRows wrong")
	}
	m.SwapRows(1, 1) // no-op must not corrupt
	if m.Get(1, 0) != 1 {
		t.Fatal("self-swap corrupted row")
	}
}

func TestRowCopyIsIndependent(t *testing.T) {
	m := FromRows([][]byte{{1, 2}})
	row := m.Row(0)
	row[0] = 99
	if m.Get(0, 0) != 1 {
		t.Fatal("Row() must return a copy")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := FromRows([][]byte{{1, 2}})
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.Get(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func randomMatrix(r *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	r.Read(m.data)
	return m
}

func randomInvertible(r *rand.Rand, n int) *Matrix {
	for {
		m := randomMatrix(r, n, n)
		if _, err := m.Invert(); err == nil {
			return m
		}
	}
}

func BenchmarkInvert9x9(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	m := randomInvertible(rng, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Invert(); err != nil {
			b.Fatal(err)
		}
	}
}
