// Package matrix implements dense matrices over the finite field GF(2^8).
//
// It provides the linear-algebra substrate for the Reed-Solomon codec:
// construction of Vandermonde and Cauchy coding matrices, multiplication,
// Gauss-Jordan inversion, and row/sub-matrix extraction.
package matrix

import (
	"errors"
	"fmt"

	"github.com/agardist/agar/internal/gf256"
)

// ErrSingular is returned when a matrix cannot be inverted.
var ErrSingular = errors.New("matrix: matrix is singular")

// Matrix is a dense rows x cols matrix over GF(2^8).
// The zero value is an empty matrix; use New or a constructor.
type Matrix struct {
	rows int
	cols int
	data []byte // row-major
}

// New returns a zeroed rows x cols matrix. It panics if either dimension is
// not positive.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("matrix: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]byte, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows, copying the
// data. It panics on ragged or empty input.
func FromRows(rows [][]byte) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("matrix: FromRows on empty input")
	}
	m := New(len(rows), len(rows[0]))
	for r, row := range rows {
		if len(row) != m.cols {
			panic("matrix: FromRows on ragged input")
		}
		copy(m.data[r*m.cols:], row)
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Vandermonde returns the rows x cols Vandermonde matrix with entry
// (r, c) = r^c. Any k rows of a (k+m) x k Vandermonde matrix processed
// through the systematic transformation are linearly independent, which is
// what makes it suitable for constructing MDS codes.
func Vandermonde(rows, cols int) *Matrix {
	m := New(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			m.Set(r, c, gf256.Pow(byte(r), c))
		}
	}
	return m
}

// Cauchy returns the rows x cols Cauchy matrix with entry
// (r, c) = 1 / (x_r + y_c) where x_r = r + cols and y_c = c. Every square
// sub-matrix of a Cauchy matrix is invertible, so it directly yields an MDS
// code without the systematic transformation Vandermonde requires.
// It panics if rows+cols > 256 (indices would collide in GF(2^8)).
func Cauchy(rows, cols int) *Matrix {
	if rows+cols > 256 {
		panic("matrix: Cauchy needs rows+cols <= 256")
	}
	m := New(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			m.Set(r, c, gf256.Inv(byte(r+cols)^byte(c)))
		}
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// Get returns the element at (r, c).
func (m *Matrix) Get(r, c int) byte {
	m.check(r, c)
	return m.data[r*m.cols+c]
}

// Set stores v at (r, c).
func (m *Matrix) Set(r, c int, v byte) {
	m.check(r, c)
	m.data[r*m.cols+c] = v
}

func (m *Matrix) check(r, c int) {
	if r < 0 || r >= m.rows || c < 0 || c >= m.cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of range for %dx%d", r, c, m.rows, m.cols))
	}
}

// Row returns a copy of row r.
func (m *Matrix) Row(r int) []byte {
	out := make([]byte, m.cols)
	copy(out, m.data[r*m.cols:(r+1)*m.cols])
	return out
}

// RowView returns row r without copying. The caller must not modify it
// unless it owns the matrix.
func (m *Matrix) RowView(r int) []byte {
	return m.data[r*m.cols : (r+1)*m.cols]
}

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	out := New(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// Equal reports whether two matrices have identical shape and contents.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for i := range m.data {
		if m.data[i] != o.data[i] {
			return false
		}
	}
	return true
}

// Mul returns the matrix product m * o. It panics on a dimension mismatch.
func (m *Matrix) Mul(o *Matrix) *Matrix {
	if m.cols != o.rows {
		panic(fmt.Sprintf("matrix: cannot multiply %dx%d by %dx%d", m.rows, m.cols, o.rows, o.cols))
	}
	out := New(m.rows, o.cols)
	for r := 0; r < m.rows; r++ {
		for k := 0; k < m.cols; k++ {
			a := m.data[r*m.cols+k]
			if a == 0 {
				continue
			}
			gf256.MulAddSlice(a, o.data[k*o.cols:(k+1)*o.cols], out.data[r*out.cols:(r+1)*out.cols])
		}
	}
	return out
}

// MulVec returns the matrix-vector product m * v. It panics if len(v) does
// not equal the number of columns.
func (m *Matrix) MulVec(v []byte) []byte {
	if len(v) != m.cols {
		panic("matrix: MulVec dimension mismatch")
	}
	out := make([]byte, m.rows)
	for r := 0; r < m.rows; r++ {
		var acc byte
		row := m.data[r*m.cols : (r+1)*m.cols]
		for c, x := range v {
			acc ^= gf256.Mul(row[c], x)
		}
		out[r] = acc
	}
	return out
}

// Augment returns the matrix [m | o] formed by horizontal concatenation.
// It panics if the row counts differ.
func (m *Matrix) Augment(o *Matrix) *Matrix {
	if m.rows != o.rows {
		panic("matrix: Augment row count mismatch")
	}
	out := New(m.rows, m.cols+o.cols)
	for r := 0; r < m.rows; r++ {
		copy(out.data[r*out.cols:], m.data[r*m.cols:(r+1)*m.cols])
		copy(out.data[r*out.cols+m.cols:], o.data[r*o.cols:(r+1)*o.cols])
	}
	return out
}

// SubMatrix returns the copy of the rectangle [r0, r1) x [c0, c1).
func (m *Matrix) SubMatrix(r0, r1, c0, c1 int) *Matrix {
	if r0 < 0 || c0 < 0 || r1 > m.rows || c1 > m.cols || r0 >= r1 || c0 >= c1 {
		panic(fmt.Sprintf("matrix: bad sub-matrix [%d:%d, %d:%d] of %dx%d", r0, r1, c0, c1, m.rows, m.cols))
	}
	out := New(r1-r0, c1-c0)
	for r := r0; r < r1; r++ {
		copy(out.data[(r-r0)*out.cols:], m.data[r*m.cols+c0:r*m.cols+c1])
	}
	return out
}

// SelectRows returns a new matrix formed from the given row indices, in
// order. Indices may repeat.
func (m *Matrix) SelectRows(idx []int) *Matrix {
	out := New(len(idx), m.cols)
	for i, r := range idx {
		if r < 0 || r >= m.rows {
			panic(fmt.Sprintf("matrix: SelectRows index %d out of range", r))
		}
		copy(out.data[i*out.cols:], m.data[r*m.cols:(r+1)*m.cols])
	}
	return out
}

// SwapRows exchanges rows r1 and r2 in place.
func (m *Matrix) SwapRows(r1, r2 int) {
	if r1 == r2 {
		return
	}
	a := m.data[r1*m.cols : (r1+1)*m.cols]
	b := m.data[r2*m.cols : (r2+1)*m.cols]
	for i := range a {
		a[i], b[i] = b[i], a[i]
	}
}

// Invert returns the inverse of a square matrix using Gauss-Jordan
// elimination over GF(2^8). It returns ErrSingular if no inverse exists.
func (m *Matrix) Invert() (*Matrix, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("matrix: cannot invert non-square %dx%d matrix", m.rows, m.cols)
	}
	n := m.rows
	work := m.Augment(Identity(n))
	if err := work.gaussJordan(n); err != nil {
		return nil, err
	}
	return work.SubMatrix(0, n, n, 2*n), nil
}

// gaussJordan reduces the left n x n block of work to the identity, applying
// the same operations to the rest of each row.
func (w *Matrix) gaussJordan(n int) error {
	for col := 0; col < n; col++ {
		// Find a pivot.
		pivot := -1
		for r := col; r < n; r++ {
			if w.Get(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot == -1 {
			return ErrSingular
		}
		w.SwapRows(col, pivot)
		// Scale the pivot row so the pivot becomes 1.
		if pv := w.Get(col, col); pv != 1 {
			inv := gf256.Inv(pv)
			row := w.data[col*w.cols : (col+1)*w.cols]
			gf256.MulSlice(inv, row, row)
		}
		// Eliminate the column from every other row.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			factor := w.Get(r, col)
			if factor == 0 {
				continue
			}
			gf256.MulAddSlice(factor, w.data[col*w.cols:(col+1)*w.cols], w.data[r*w.cols:(r+1)*w.cols])
		}
	}
	return nil
}

// IsIdentity reports whether m is a square identity matrix.
func (m *Matrix) IsIdentity() bool {
	if m.rows != m.cols {
		return false
	}
	for r := 0; r < m.rows; r++ {
		for c := 0; c < m.cols; c++ {
			want := byte(0)
			if r == c {
				want = 1
			}
			if m.data[r*m.cols+c] != want {
				return false
			}
		}
	}
	return true
}

// String renders the matrix in a compact hex form, one row per line.
func (m *Matrix) String() string {
	out := make([]byte, 0, m.rows*(m.cols*3+1))
	for r := 0; r < m.rows; r++ {
		for c := 0; c < m.cols; c++ {
			if c > 0 {
				out = append(out, ' ')
			}
			out = append(out, fmt.Sprintf("%02x", m.Get(r, c))...)
		}
		out = append(out, '\n')
	}
	return string(out)
}
