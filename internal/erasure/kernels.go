package erasure

import "github.com/agardist/agar/internal/gf256"

// mulAdd accumulates coeff * src into dst. Split into a helper so the codec's
// inner loops stay readable and a future SIMD path has a single seam.
func mulAdd(coeff byte, src, dst []byte) {
	gf256.MulAddSlice(coeff, src, dst)
}
