package erasure

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

func streamRoundTrip(t *testing.T, codec *Codec, payload []byte, stripeUnit int, drop []int) []byte {
	t.Helper()
	writers := make([]io.Writer, codec.Total())
	bufs := make([]*bytes.Buffer, codec.Total())
	for i := range writers {
		bufs[i] = &bytes.Buffer{}
		writers[i] = bufs[i]
	}
	n, err := codec.EncodeStream(bytes.NewReader(payload), writers, stripeUnit)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if n != int64(len(payload)) {
		t.Fatalf("encoded %d bytes, want %d", n, len(payload))
	}
	readers := make([]io.Reader, codec.Total())
	for i := range readers {
		readers[i] = bytes.NewReader(bufs[i].Bytes())
	}
	for _, d := range drop {
		readers[d] = nil
	}
	var out bytes.Buffer
	m, err := codec.DecodeStream(readers, &out, stripeUnit)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if m != int64(len(payload)) {
		t.Fatalf("decoded %d bytes, want %d", m, len(payload))
	}
	return out.Bytes()
}

func TestStreamRoundTripSizes(t *testing.T) {
	codec := mustCodec(t, 9, 3)
	stripe := 1024
	for _, size := range []int{0, 1, 100, 9 * 1024, 9*1024 - 1, 9*1024 + 1, 100_000} {
		payload := make([]byte, size)
		rand.New(rand.NewSource(int64(size))).Read(payload)
		got := streamRoundTrip(t, codec, payload, stripe, nil)
		if !bytes.Equal(got, payload) {
			t.Fatalf("size %d: payload mismatch", size)
		}
	}
}

func TestStreamDecodeWithLosses(t *testing.T) {
	codec := mustCodec(t, 9, 3)
	payload := make([]byte, 150_000)
	rand.New(rand.NewSource(1)).Read(payload)
	got := streamRoundTrip(t, codec, payload, 2048, []int{0, 5, 11})
	if !bytes.Equal(got, payload) {
		t.Fatal("payload mismatch after losing 3 chunk streams")
	}
}

func TestStreamTooManyLosses(t *testing.T) {
	codec := mustCodec(t, 4, 2)
	readers := make([]io.Reader, 6)
	readers[0] = bytes.NewReader(nil)
	readers[1] = bytes.NewReader(nil)
	readers[2] = bytes.NewReader(nil)
	// only 3 < k=4 available
	var out bytes.Buffer
	if _, err := codec.DecodeStream(readers, &out, 1024); err != ErrTooFewChunks {
		t.Fatalf("err = %v, want ErrTooFewChunks", err)
	}
}

func TestStreamWrongWriterCount(t *testing.T) {
	codec := mustCodec(t, 4, 2)
	if _, err := codec.EncodeStream(bytes.NewReader(nil), make([]io.Writer, 3), 0); err != ErrChunkCount {
		t.Fatalf("err = %v", err)
	}
	if _, err := codec.DecodeStream(make([]io.Reader, 3), io.Discard, 0); err != ErrChunkCount {
		t.Fatalf("err = %v", err)
	}
}

func TestStreamDefaultStripeUnit(t *testing.T) {
	codec := mustCodec(t, 3, 2)
	payload := make([]byte, 10_000)
	rand.New(rand.NewSource(2)).Read(payload)
	got := streamRoundTrip(t, codec, payload, 0, []int{1}) // 0 -> default unit
	if !bytes.Equal(got, payload) {
		t.Fatal("default stripe unit round trip failed")
	}
}

func TestStreamQuick(t *testing.T) {
	codec := mustCodec(t, 5, 2)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		payload := make([]byte, r.Intn(40_000))
		r.Read(payload)
		stripe := 256 + r.Intn(2048)
		drop := r.Perm(7)[:r.Intn(3)]
		got := streamRoundTrip(t, codec, payload, stripe, drop)
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestStreamExactStripeBoundary(t *testing.T) {
	// Payload exactly filling N stripes needs the empty terminator stripe.
	codec := mustCodec(t, 3, 1)
	stripe := 512
	payload := make([]byte, 3*stripe*4) // exactly 4 full stripes
	rand.New(rand.NewSource(3)).Read(payload)
	got := streamRoundTrip(t, codec, payload, stripe, nil)
	if !bytes.Equal(got, payload) {
		t.Fatal("boundary payload mismatch")
	}
}
