package erasure

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustCodec(t testing.TB, k, m int) *Codec {
	t.Helper()
	c, err := New(k, m)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		k, m int
		ok   bool
	}{
		{9, 3, true},
		{1, 0, true},
		{4, 2, true},
		{0, 3, false},
		{-1, 3, false},
		{200, 100, false}, // k+m > 256
		{255, 1, true},
	}
	for _, c := range cases {
		_, err := New(c.k, c.m)
		if (err == nil) != c.ok {
			t.Errorf("New(%d,%d): err=%v, want ok=%v", c.k, c.m, err, c.ok)
		}
	}
}

func TestSplitJoinRoundTrip(t *testing.T) {
	codec := mustCodec(t, 9, 3)
	for _, size := range []int{0, 1, 8, 9, 100, 1023, 4096, 1 << 20} {
		data := make([]byte, size)
		rand.New(rand.NewSource(int64(size))).Read(data)
		chunks, err := codec.Split(data)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if len(chunks) != 12 {
			t.Fatalf("size %d: got %d chunks", size, len(chunks))
		}
		got, err := codec.Join(chunks)
		if err != nil {
			t.Fatalf("size %d: join: %v", size, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("size %d: round trip mismatch", size)
		}
	}
}

func TestSystematic(t *testing.T) {
	// The first k chunks must carry the raw payload (after the header).
	codec := mustCodec(t, 4, 2)
	data := []byte("hello systematic reed solomon world")
	chunks, err := codec.Split(data)
	if err != nil {
		t.Fatal(err)
	}
	var concat []byte
	for i := 0; i < 4; i++ {
		concat = append(concat, chunks[i]...)
	}
	if !bytes.Contains(concat, data) {
		t.Fatal("data chunks do not embed the original payload; codec is not systematic")
	}
}

func TestReconstructFromAnyK(t *testing.T) {
	codec := mustCodec(t, 9, 3)
	data := make([]byte, 10000)
	rand.New(rand.NewSource(42)).Read(data)
	orig, err := codec.Split(data)
	if err != nil {
		t.Fatal(err)
	}

	// Try every way of losing exactly m=3 chunks (220 combinations).
	n := codec.Total()
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			for c := b + 1; c < n; c++ {
				chunks := make([][]byte, n)
				for i := range orig {
					chunks[i] = append([]byte(nil), orig[i]...)
				}
				chunks[a], chunks[b], chunks[c] = nil, nil, nil
				if err := codec.Reconstruct(chunks); err != nil {
					t.Fatalf("lose {%d,%d,%d}: %v", a, b, c, err)
				}
				for i := range orig {
					if !bytes.Equal(chunks[i], orig[i]) {
						t.Fatalf("lose {%d,%d,%d}: chunk %d wrong after reconstruct", a, b, c, i)
					}
				}
			}
		}
	}
}

func TestReconstructDataOnlyLeavesParityNil(t *testing.T) {
	codec := mustCodec(t, 4, 2)
	data := []byte("only the data chunks matter on the read path")
	chunks, _ := codec.Split(data)
	chunks[1] = nil // lose a data chunk
	chunks[5] = nil // lose a parity chunk
	if err := codec.ReconstructData(chunks); err != nil {
		t.Fatal(err)
	}
	if chunks[1] == nil {
		t.Fatal("data chunk not rebuilt")
	}
	if chunks[5] != nil {
		t.Fatal("parity chunk should remain nil under ReconstructData")
	}
	got, err := codec.Join(chunks)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("payload mismatch")
	}
}

func TestReconstructTooFewChunks(t *testing.T) {
	codec := mustCodec(t, 4, 2)
	chunks, _ := codec.Split([]byte("abcdefgh"))
	chunks[0], chunks[1], chunks[2] = nil, nil, nil // only 3 left < k=4
	if err := codec.Reconstruct(chunks); err != ErrTooFewChunks {
		t.Fatalf("got %v, want ErrTooFewChunks", err)
	}
}

func TestReconstructWrongSlotCount(t *testing.T) {
	codec := mustCodec(t, 4, 2)
	if err := codec.Reconstruct(make([][]byte, 5)); err != ErrChunkCount {
		t.Fatalf("got %v, want ErrChunkCount", err)
	}
}

func TestReconstructSizeMismatch(t *testing.T) {
	codec := mustCodec(t, 2, 1)
	chunks, _ := codec.Split([]byte("0123456789"))
	chunks[1] = chunks[1][:len(chunks[1])-1]
	if err := codec.Reconstruct(chunks); err != ErrChunkSizeMism {
		t.Fatalf("got %v, want ErrChunkSizeMism", err)
	}
}

func TestVerify(t *testing.T) {
	codec := mustCodec(t, 6, 3)
	data := make([]byte, 5000)
	rand.New(rand.NewSource(7)).Read(data)
	chunks, _ := codec.Split(data)

	ok, err := codec.Verify(chunks)
	if err != nil || !ok {
		t.Fatalf("Verify on intact chunks: ok=%v err=%v", ok, err)
	}

	chunks[2][10] ^= 0xFF // corrupt a data chunk
	ok, err = codec.Verify(chunks)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("Verify accepted corrupted data")
	}
}

func TestDecodeWithCorruptHeader(t *testing.T) {
	codec := mustCodec(t, 3, 2)
	chunks, _ := codec.Split([]byte("payload"))
	// Blow up the length header so it claims more data than exists.
	for i := 0; i < 8 && i < len(chunks[0]); i++ {
		chunks[0][i] = 0xFF
	}
	if _, err := codec.Join(chunks); err != ErrSizeHeaderBroken {
		t.Fatalf("got %v, want ErrSizeHeaderBroken", err)
	}
}

func TestDecodeDoesNotMutateInput(t *testing.T) {
	codec := mustCodec(t, 4, 2)
	chunks, _ := codec.Split([]byte("immutability matters"))
	chunks[0] = nil
	snapshot := make([][]byte, len(chunks))
	copy(snapshot, chunks)
	if _, err := codec.Decode(chunks); err != nil {
		t.Fatal(err)
	}
	for i := range chunks {
		if (chunks[i] == nil) != (snapshot[i] == nil) {
			t.Fatalf("Decode mutated caller slice at %d", i)
		}
	}
}

func TestCauchyConstruction(t *testing.T) {
	codec, err := NewWith(9, 3, Cauchy)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 3000)
	rand.New(rand.NewSource(3)).Read(data)
	chunks, err := codec.Split(data)
	if err != nil {
		t.Fatal(err)
	}
	// Lose three chunks and recover.
	chunks[0], chunks[4], chunks[10] = nil, nil, nil
	got, err := codec.Decode(chunks)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("cauchy round trip failed")
	}
}

func TestConstructionString(t *testing.T) {
	if Vandermonde.String() != "vandermonde" || Cauchy.String() != "cauchy" {
		t.Fatal("construction names wrong")
	}
	if Construction(99).String() == "" {
		t.Fatal("unknown construction must still stringify")
	}
}

func TestChunkSize(t *testing.T) {
	codec := mustCodec(t, 9, 3)
	// 1 MB object: (1<<20 + 8) / 9 rounded up.
	want := (1<<20 + 8 + 8) / 9
	if got := codec.ChunkSize(1 << 20); got != want {
		t.Fatalf("ChunkSize(1MB) = %d, want %d", got, want)
	}
	chunks, _ := codec.Split(make([]byte, 1<<20))
	if len(chunks[0]) != codec.ChunkSize(1<<20) {
		t.Fatal("Split chunk size disagrees with ChunkSize")
	}
}

// Property: for random (k, m), random data and a random loss pattern of up to
// m chunks, decode recovers the original payload.
func TestReconstructQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(10)
		m := r.Intn(5)
		codec, err := New(k, m)
		if err != nil {
			return false
		}
		data := make([]byte, 1+r.Intn(2000))
		r.Read(data)
		chunks, err := codec.Split(data)
		if err != nil {
			return false
		}
		// Drop up to m random chunks.
		for _, i := range r.Perm(k + m)[:r.Intn(m+1)] {
			chunks[i] = nil
		}
		got, err := codec.Decode(chunks)
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: parity is linear — encode(a XOR b) == encode(a) XOR encode(b).
func TestLinearityQuick(t *testing.T) {
	codec := mustCodec(t, 4, 2)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		size := 64
		a := make([]byte, 4*size)
		b := make([]byte, 4*size)
		r.Read(a)
		r.Read(b)
		enc := func(data []byte) [][]byte {
			chunks := make([][]byte, 6)
			for i := 0; i < 4; i++ {
				chunks[i] = append([]byte(nil), data[i*size:(i+1)*size]...)
			}
			for i := 4; i < 6; i++ {
				chunks[i] = make([]byte, size)
			}
			if err := codec.Encode(chunks); err != nil {
				panic(err)
			}
			return chunks
		}
		xor := make([]byte, len(a))
		for i := range a {
			xor[i] = a[i] ^ b[i]
		}
		ca, cb, cx := enc(a), enc(b), enc(xor)
		for i := 4; i < 6; i++ {
			for j := 0; j < size; j++ {
				if cx[i][j] != ca[i][j]^cb[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDecodeMatrixCaching(t *testing.T) {
	codec := mustCodec(t, 9, 3)
	data := make([]byte, 900)
	rand.New(rand.NewSource(5)).Read(data)
	orig, _ := codec.Split(data)
	// Same loss pattern twice must hit the cache and stay correct.
	for iter := 0; iter < 2; iter++ {
		chunks := make([][]byte, len(orig))
		copy(chunks, orig)
		chunks[0], chunks[1] = nil, nil
		got, err := codec.Decode(chunks)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("cached decode wrong")
		}
	}
	codec.mu.Lock()
	n := len(codec.invCache)
	codec.mu.Unlock()
	if n != 1 {
		t.Fatalf("expected exactly 1 cached decode matrix, got %d", n)
	}
}

func TestConcurrentDecode(t *testing.T) {
	codec := mustCodec(t, 9, 3)
	data := make([]byte, 9000)
	rand.New(rand.NewSource(9)).Read(data)
	orig, _ := codec.Split(data)

	done := make(chan error, 16)
	for g := 0; g < 16; g++ {
		go func(g int) {
			r := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 20; i++ {
				chunks := make([][]byte, len(orig))
				copy(chunks, orig)
				for _, idx := range r.Perm(12)[:3] {
					chunks[idx] = nil
				}
				got, err := codec.Decode(chunks)
				if err != nil {
					done <- err
					return
				}
				if !bytes.Equal(got, data) {
					done <- ErrCorrupt
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 16; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func BenchmarkEncode1MB_RS9_3(b *testing.B) {
	codec := mustCodec(b, 9, 3)
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(1)).Read(data)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.Split(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode1MB_RS9_3_WorstCase(b *testing.B) {
	codec := mustCodec(b, 9, 3)
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(2)).Read(data)
	orig, _ := codec.Split(data)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chunks := make([][]byte, len(orig))
		copy(chunks, orig)
		chunks[0], chunks[1], chunks[2] = nil, nil, nil // lose 3 data chunks
		if _, err := codec.Decode(chunks); err != nil {
			b.Fatal(err)
		}
	}
}
