package erasure

import (
	"errors"
	"fmt"
	"io"
)

// Streaming API: encode from an io.Reader into per-chunk writers and decode
// from per-chunk readers into an io.Writer, processing the object in
// bounded-memory stripes. This is how a production deployment would handle
// the paper's 1 MB (or larger) objects without materialising whole chunk
// sets: each stripe of k*stripeUnit bytes is split, encoded and flushed
// before the next is read.

// DefaultStripeUnit is the per-chunk stripe size used when none is given.
const DefaultStripeUnit = 64 * 1024

// ErrShortChunkStream is returned when a chunk stream ends before the
// header-declared object length is satisfied.
var ErrShortChunkStream = errors.New("erasure: chunk stream ended early")

// EncodeStream reads the object from r and writes chunk i's bytes to
// writers[i] (len(writers) must equal k+m), in stripes of stripeUnit bytes
// per chunk (0 means DefaultStripeUnit). It returns the number of payload
// bytes consumed. The resulting chunk streams are decodable by
// DecodeStream; they are framed with the same 8-byte length header Split
// uses, so the trailing padding stripe is unambiguous.
func (c *Codec) EncodeStream(r io.Reader, writers []io.Writer, stripeUnit int) (int64, error) {
	if len(writers) != c.Total() {
		return 0, ErrChunkCount
	}
	if stripeUnit <= 0 {
		stripeUnit = DefaultStripeUnit
	}
	// Buffer the whole payload? No: stream stripes. But the header needs
	// the total length up front, so the first stripe is assembled after
	// reading ahead one stripe worth of payload; the total length is only
	// known at EOF. We therefore frame each stripe independently: every
	// stripe carries its own header, and DecodeStream consumes stripes
	// until a short (final) one.
	buf := make([]byte, c.k*stripeUnit)
	var total int64
	for {
		n, err := io.ReadFull(r, buf)
		switch {
		case err == io.EOF:
			// No more payload: emit a terminating empty stripe so the
			// decoder knows the stream ended exactly here.
			if werr := c.writeStripe(writers, nil); werr != nil {
				return total, werr
			}
			return total, nil
		case err == io.ErrUnexpectedEOF || err == nil:
			total += int64(n)
			if werr := c.writeStripe(writers, buf[:n]); werr != nil {
				return total, werr
			}
			if n < len(buf) {
				return total, nil // short stripe terminates the stream
			}
		default:
			return total, fmt.Errorf("erasure: read payload: %w", err)
		}
	}
}

// writeStripe encodes one stripe and appends each chunk to its writer.
func (c *Codec) writeStripe(writers []io.Writer, payload []byte) error {
	chunks, err := c.Split(payload)
	if err != nil {
		return err
	}
	for i, w := range writers {
		if _, err := w.Write(chunks[i]); err != nil {
			return fmt.Errorf("erasure: write chunk %d: %w", i, err)
		}
	}
	return nil
}

// DecodeStream reconstructs the object from per-chunk readers and writes
// the payload to w. readers must have k+m entries indexed by chunk id; nil
// entries mark unavailable chunks (any k non-nil suffice). stripeUnit must
// match the value used by EncodeStream. It returns the payload size.
func (c *Codec) DecodeStream(readers []io.Reader, w io.Writer, stripeUnit int) (int64, error) {
	if len(readers) != c.Total() {
		return 0, ErrChunkCount
	}
	if stripeUnit <= 0 {
		stripeUnit = DefaultStripeUnit
	}
	available := 0
	for _, r := range readers {
		if r != nil {
			available++
		}
	}
	if available < c.k {
		return 0, ErrTooFewChunks
	}

	fullChunk := c.ChunkSize(c.k * stripeUnit)
	var total int64
	for {
		chunks := make([][]byte, c.Total())
		short := false
		sawAny := false
		for i, r := range readers {
			if r == nil {
				continue
			}
			buf := make([]byte, fullChunk)
			n, err := io.ReadFull(r, buf)
			switch {
			case err == nil:
				chunks[i] = buf
				sawAny = true
			case err == io.EOF && n == 0:
				// Stream ended at a stripe boundary — legal only if every
				// other stream ends too (checked by sawAny below).
				chunks[i] = nil
			case err == io.ErrUnexpectedEOF || err == io.EOF:
				// Final, shorter stripe.
				chunks[i] = buf[:n]
				short = true
				sawAny = true
			default:
				return total, fmt.Errorf("erasure: read chunk %d: %w", i, err)
			}
		}
		if !sawAny {
			return total, nil
		}
		// All present chunks of one stripe must agree on size; Decode
		// validates that and reconstructs.
		payload, err := c.Decode(chunks)
		if err != nil {
			return total, fmt.Errorf("erasure: stripe at offset %d: %w", total, err)
		}
		if _, err := w.Write(payload); err != nil {
			return total, fmt.Errorf("erasure: write payload: %w", err)
		}
		total += int64(len(payload))
		// A stripe carrying less than a full payload unit terminates the
		// object (including the empty terminator stripe).
		if short || len(payload) < c.k*stripeUnit {
			return total, nil
		}
	}
}
