// Package erasure implements a systematic Reed-Solomon erasure codec over
// GF(2^8), the coding substrate Agar caches operate on.
//
// An object is split into k equally sized data chunks; m parity chunks are
// computed from them. Any k of the resulting k+m chunks suffice to
// reconstruct the original object. The codec is systematic: the first k
// chunks are the data itself, so reads that find all data chunks need no
// decoding at all.
//
// Two coding-matrix constructions are provided: a systematised Vandermonde
// matrix (default, matching most Reed-Solomon deployments) and a Cauchy
// matrix (as used by Longhair, the library the paper's prototype uses).
package erasure

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"github.com/agardist/agar/internal/matrix"
)

// Construction selects how the coding matrix is built.
type Construction int

const (
	// Vandermonde builds the coding matrix from a systematised Vandermonde
	// matrix. This is the default.
	Vandermonde Construction = iota + 1
	// Cauchy builds the coding matrix from an identity block stacked on a
	// Cauchy block, mirroring Longhair's Cauchy Reed-Solomon codes.
	Cauchy
)

// String returns the construction name.
func (c Construction) String() string {
	switch c {
	case Vandermonde:
		return "vandermonde"
	case Cauchy:
		return "cauchy"
	default:
		return fmt.Sprintf("construction(%d)", int(c))
	}
}

// Errors returned by the codec.
var (
	ErrInvalidParams    = errors.New("erasure: k and m must be positive and k+m <= 256")
	ErrTooFewChunks     = errors.New("erasure: fewer than k chunks available")
	ErrChunkSizeMism    = errors.New("erasure: chunks have inconsistent sizes")
	ErrShortData        = errors.New("erasure: data too short to carry size header")
	ErrCorrupt          = errors.New("erasure: chunk set fails parity verification")
	ErrChunkCount       = errors.New("erasure: wrong number of chunk slots")
	ErrSizeHeaderBroken = errors.New("erasure: size header larger than reconstructed payload")
)

// Codec encodes and decodes objects with Reed-Solomon parameters (k, m).
// A Codec is immutable and safe for concurrent use.
type Codec struct {
	k int
	m int

	coding *matrix.Matrix // (k+m) x k; top k rows are the identity

	mu       sync.Mutex
	invCache map[string]*matrix.Matrix // decode-matrix cache keyed by present-row signature
}

// New returns a codec with k data chunks and m parity chunks using the
// Vandermonde construction.
func New(k, m int) (*Codec, error) {
	return NewWith(k, m, Vandermonde)
}

// NewWith returns a codec using the given matrix construction.
func NewWith(k, m int, c Construction) (*Codec, error) {
	if k <= 0 || m < 0 || k+m > 256 {
		return nil, ErrInvalidParams
	}
	codec := &Codec{k: k, m: m, invCache: make(map[string]*matrix.Matrix)}
	switch c {
	case Vandermonde:
		codec.coding = systematicVandermonde(k, m)
	case Cauchy:
		codec.coding = systematicCauchy(k, m)
	default:
		return nil, fmt.Errorf("erasure: unknown construction %v", c)
	}
	return codec, nil
}

// systematicVandermonde builds a (k+m) x k coding matrix whose top k rows are
// the identity, derived by multiplying a plain Vandermonde matrix by the
// inverse of its top square block. The result stays MDS because row
// operations preserve the independence of every k-row subset.
func systematicVandermonde(k, m int) *matrix.Matrix {
	v := matrix.Vandermonde(k+m, k)
	top := v.SubMatrix(0, k, 0, k)
	topInv, err := top.Invert()
	if err != nil {
		// The top block of a Vandermonde matrix with distinct evaluation
		// points is always invertible; reaching this is a programming error.
		panic(fmt.Sprintf("erasure: vandermonde top block singular: %v", err))
	}
	return v.Mul(topInv)
}

// systematicCauchy stacks the k x k identity on an m x k Cauchy block.
func systematicCauchy(k, m int) *matrix.Matrix {
	out := matrix.New(k+m, k)
	for i := 0; i < k; i++ {
		out.Set(i, i, 1)
	}
	c := matrix.Cauchy(m, k)
	for r := 0; r < m; r++ {
		for col := 0; col < k; col++ {
			out.Set(k+r, col, c.Get(r, col))
		}
	}
	return out
}

// K returns the number of data chunks.
func (c *Codec) K() int { return c.k }

// M returns the number of parity chunks.
func (c *Codec) M() int { return c.m }

// Total returns k + m.
func (c *Codec) Total() int { return c.k + c.m }

// ChunkSize returns the per-chunk size for an object of dataLen bytes,
// accounting for the 8-byte length header and padding to a multiple of k.
func (c *Codec) ChunkSize(dataLen int) int {
	padded := dataLen + headerSize
	per := (padded + c.k - 1) / c.k
	return per
}

const headerSize = 8 // uint64 little-endian original length

// Split encodes data into k+m chunks. The original length is recorded in an
// 8-byte header so Join can strip padding. The input slice is not retained.
func (c *Codec) Split(data []byte) ([][]byte, error) {
	chunkSize := c.ChunkSize(len(data))
	// Lay out header + data + zero padding across the k data chunks.
	buf := make([]byte, c.k*chunkSize)
	binary.LittleEndian.PutUint64(buf, uint64(len(data)))
	copy(buf[headerSize:], data)

	chunks := make([][]byte, c.Total())
	for i := 0; i < c.k; i++ {
		chunks[i] = buf[i*chunkSize : (i+1)*chunkSize : (i+1)*chunkSize]
	}
	for i := c.k; i < c.Total(); i++ {
		chunks[i] = make([]byte, chunkSize)
	}
	if err := c.Encode(chunks); err != nil {
		return nil, err
	}
	return chunks, nil
}

// Encode fills chunks[k:] with parity computed from chunks[:k]. All chunk
// slots must be non-nil and of equal size.
func (c *Codec) Encode(chunks [][]byte) error {
	if err := c.checkShape(chunks, true); err != nil {
		return err
	}
	size := len(chunks[0])
	for i := c.k; i < c.Total(); i++ {
		clear(chunks[i])
		row := c.coding.RowView(i)
		for j := 0; j < c.k; j++ {
			mulAdd(row[j], chunks[j], chunks[i])
		}
	}
	_ = size
	return nil
}

// Verify recomputes parity from the data chunks and reports whether the
// parity chunks match. All chunks must be present.
func (c *Codec) Verify(chunks [][]byte) (bool, error) {
	if err := c.checkShape(chunks, true); err != nil {
		return false, err
	}
	size := len(chunks[0])
	scratch := make([]byte, size)
	for i := c.k; i < c.Total(); i++ {
		clear(scratch)
		row := c.coding.RowView(i)
		for j := 0; j < c.k; j++ {
			mulAdd(row[j], chunks[j], scratch)
		}
		for b := range scratch {
			if scratch[b] != chunks[i][b] {
				return false, nil
			}
		}
	}
	return true, nil
}

// Reconstruct rebuilds every missing chunk in place. Missing chunks are
// represented by nil entries; at least k entries must be present. The slice
// must have exactly k+m entries, indexed by chunk id.
func (c *Codec) Reconstruct(chunks [][]byte) error {
	return c.reconstruct(chunks, false)
}

// ReconstructData rebuilds only the missing data chunks (indices < k),
// leaving missing parity chunks nil. This is the fast path for reads.
func (c *Codec) ReconstructData(chunks [][]byte) error {
	return c.reconstruct(chunks, true)
}

func (c *Codec) reconstruct(chunks [][]byte, dataOnly bool) error {
	if len(chunks) != c.Total() {
		return ErrChunkCount
	}
	present := make([]int, 0, c.k)
	size := -1
	for i, ch := range chunks {
		if ch == nil {
			continue
		}
		if size == -1 {
			size = len(ch)
		} else if len(ch) != size {
			return ErrChunkSizeMism
		}
		present = append(present, i)
	}
	if len(present) < c.k {
		return ErrTooFewChunks
	}

	// Fast path: all data chunks already present.
	allData := true
	for i := 0; i < c.k; i++ {
		if chunks[i] == nil {
			allData = false
			break
		}
	}
	if allData {
		if dataOnly {
			return nil
		}
		for i := c.k; i < c.Total(); i++ {
			if chunks[i] == nil {
				chunks[i] = make([]byte, size)
			}
		}
		return c.Encode(chunks) // recompute any missing parity
	}

	rows := present[:c.k]
	dec, err := c.decodeMatrix(rows)
	if err != nil {
		return err
	}

	// Recover the data chunks: data = dec * available.
	avail := make([][]byte, c.k)
	for i, r := range rows {
		avail[i] = chunks[r]
	}
	for i := 0; i < c.k; i++ {
		if chunks[i] != nil {
			continue
		}
		out := make([]byte, size)
		row := dec.RowView(i)
		for j := 0; j < c.k; j++ {
			mulAdd(row[j], avail[j], out)
		}
		chunks[i] = out
	}
	if dataOnly {
		return nil
	}
	// Recompute missing parity from the (now complete) data chunks.
	for i := c.k; i < c.Total(); i++ {
		if chunks[i] != nil {
			continue
		}
		out := make([]byte, size)
		row := c.coding.RowView(i)
		for j := 0; j < c.k; j++ {
			mulAdd(row[j], chunks[j], out)
		}
		chunks[i] = out
	}
	return nil
}

// decodeMatrix returns the inverse of the coding-matrix rows for the given
// present chunk ids, cached per row signature.
func (c *Codec) decodeMatrix(rows []int) (*matrix.Matrix, error) {
	sig := make([]byte, len(rows))
	for i, r := range rows {
		sig[i] = byte(r)
	}
	key := string(sig)

	c.mu.Lock()
	dec, ok := c.invCache[key]
	c.mu.Unlock()
	if ok {
		return dec, nil
	}

	sub := c.coding.SelectRows(rows)
	dec, err := sub.Invert()
	if err != nil {
		return nil, fmt.Errorf("erasure: decode matrix for rows %v: %w", rows, err)
	}

	c.mu.Lock()
	c.invCache[key] = dec
	c.mu.Unlock()
	return dec, nil
}

// Join reassembles the original object from a fully reconstructed chunk set
// (all data chunks non-nil). It validates and strips the length header.
func (c *Codec) Join(chunks [][]byte) ([]byte, error) {
	if len(chunks) != c.Total() {
		return nil, ErrChunkCount
	}
	size := -1
	for i := 0; i < c.k; i++ {
		if chunks[i] == nil {
			return nil, ErrTooFewChunks
		}
		if size == -1 {
			size = len(chunks[i])
		} else if len(chunks[i]) != size {
			return nil, ErrChunkSizeMism
		}
	}
	if size*c.k < headerSize {
		return nil, ErrShortData
	}
	buf := make([]byte, 0, size*c.k)
	for i := 0; i < c.k; i++ {
		buf = append(buf, chunks[i]...)
	}
	n := binary.LittleEndian.Uint64(buf)
	if n > uint64(len(buf)-headerSize) {
		return nil, ErrSizeHeaderBroken
	}
	return buf[headerSize : headerSize+n : headerSize+n], nil
}

// Decode is the common read path: reconstruct missing data chunks from any k
// available chunks, then join into the original object.
func (c *Codec) Decode(chunks [][]byte) ([]byte, error) {
	work := make([][]byte, len(chunks))
	copy(work, chunks)
	if err := c.ReconstructData(work); err != nil {
		return nil, err
	}
	return c.Join(work)
}

func (c *Codec) checkShape(chunks [][]byte, needAll bool) error {
	if len(chunks) != c.Total() {
		return ErrChunkCount
	}
	size := -1
	for _, ch := range chunks {
		if ch == nil {
			if needAll {
				return ErrTooFewChunks
			}
			continue
		}
		if size == -1 {
			size = len(ch)
		} else if len(ch) != size {
			return ErrChunkSizeMism
		}
	}
	return nil
}
