package trace

// Reset and filter regressions for the flight recorder: long soaks fence
// per-phase observation windows with Reset, and operators narrow
// /debug/traces to one opcode with ?op= — both must hold under the
// recorder's lock-free fast path.

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestRecorderReset empties the retention and re-arms observation.
func TestRecorderReset(t *testing.T) {
	r := NewRecorder()
	r.Observe("get", 5*time.Millisecond, "", "", nil)
	r.Observe("mget", 7*time.Millisecond, "", "boom", nil)
	if got := len(r.Snapshot().Ops); got != 2 {
		t.Fatalf("pre-reset ops = %d, want 2", got)
	}
	r.Reset()
	if got := len(r.Snapshot().Ops); got != 0 {
		t.Fatalf("post-reset ops = %d, want 0", got)
	}
	// The recorder keeps observing after a reset: a fresh window fills.
	r.Observe("get", 3*time.Millisecond, "", "", nil)
	snap := r.Snapshot()
	if len(snap.Ops["get"].Slowest) != 1 {
		t.Fatalf("post-reset retention = %+v", snap.Ops)
	}
}

// TestRecorderHandlerOpFilter checks ?op= narrows the served snapshot to
// one opcode, and an unknown opcode serves an empty document rather than
// an error.
func TestRecorderHandlerOpFilter(t *testing.T) {
	r := NewRecorder()
	r.Observe("get", 5*time.Millisecond, "", "", nil)
	r.Observe("mget", 7*time.Millisecond, "", "", nil)

	serve := func(target string) Snapshot {
		t.Helper()
		req := httptest.NewRequest("GET", target, nil)
		w := httptest.NewRecorder()
		r.Handler().ServeHTTP(w, req)
		if w.Code != 200 {
			t.Fatalf("GET %s = %d", target, w.Code)
		}
		var snap Snapshot
		if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil {
			t.Fatalf("decode %s: %v", target, err)
		}
		return snap
	}

	if snap := serve("/debug/traces"); len(snap.Ops) != 2 {
		t.Errorf("unfiltered ops = %d, want 2", len(snap.Ops))
	}
	snap := serve("/debug/traces?op=mget")
	if len(snap.Ops) != 1 || len(snap.Ops["mget"].Slowest) != 1 {
		t.Errorf("filtered snapshot = %+v", snap.Ops)
	}
	if snap := serve("/debug/traces?op=nosuch"); len(snap.Ops) != 0 {
		t.Errorf("unknown op served %d ops, want 0", len(snap.Ops))
	}
}

// TestRecorderResetRace hammers Observe, Snapshot and Reset concurrently;
// run under -race this pins that fencing a window mid-traffic is safe.
func TestRecorderResetRace(t *testing.T) {
	r := NewRecorder()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ops := []string{"get", "mget", "put"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				errMsg := ""
				if i%7 == 0 {
					errMsg = "synthetic"
				}
				r.Observe(ops[i%len(ops)], time.Duration(i%100)*time.Microsecond, "", errMsg, nil)
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			r.Reset()
			_ = r.Snapshot()
		}
	}()
	// The reset goroutine bounds the test: once it finishes, stop traffic.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	time.Sleep(10 * time.Millisecond)
	close(stop)
	<-done

	// Post-race the recorder still works.
	r.Reset()
	r.Observe("get", time.Millisecond, "", "", nil)
	if len(r.Snapshot().Ops["get"].Slowest) != 1 {
		t.Fatal("recorder broken after reset race")
	}
}
