package trace

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Retention bounds per opcode. Fixed and small on purpose: the recorder
// is always on, so its memory ceiling is ops × (SlowPerOp + ErrsPerOp)
// records regardless of traffic.
const (
	SlowPerOp = 16 // slowest requests retained per opcode
	ErrsPerOp = 16 // most recent errored requests per opcode
)

// Record is one retained request: its opcode, duration, the trace ID it
// carried (empty for untraced requests — slowness is recorded either
// way), the server error it returned if any, and the span annotations
// measured while serving it.
type Record struct {
	Op      string       `json:"op"`
	TraceID string       `json:"trace_id,omitempty"`
	DurUS   int64        `json:"dur_us"`
	Err     string       `json:"err,omitempty"`
	Anns    []Annotation `json:"anns,omitempty"`
	// UnixMS stamps when the request finished, so a retained record can
	// be matched against external logs and metrics scrapes.
	UnixMS int64 `json:"unix_ms"`
}

// opRecorder retains one opcode's records. slowMin caches the smallest
// duration in the slow set once the set is full: the steady-state Observe
// of an unremarkable request is one atomic load and a compare, no lock.
type opRecorder struct {
	slowMin atomic.Int64 // ns; 0 until the slow set fills
	mu      sync.Mutex
	slow    []Record
	errs    []Record // ring, errNext is the next overwrite slot
	errNext int
}

func (o *opRecorder) observe(rec Record, dur time.Duration) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if rec.Err != "" {
		if len(o.errs) < ErrsPerOp {
			o.errs = append(o.errs, rec)
		} else {
			o.errs[o.errNext] = rec
			o.errNext = (o.errNext + 1) % ErrsPerOp
		}
	}
	if len(o.slow) < SlowPerOp {
		o.slow = append(o.slow, rec)
		if len(o.slow) == SlowPerOp {
			o.resetSlowMin()
		}
		return
	}
	min := 0
	for i := 1; i < len(o.slow); i++ {
		if o.slow[i].DurUS < o.slow[min].DurUS {
			min = i
		}
	}
	if rec.DurUS > o.slow[min].DurUS {
		o.slow[min] = rec
		o.resetSlowMin()
	}
}

// resetSlowMin recomputes the fast-reject threshold; callers hold mu.
func (o *opRecorder) resetSlowMin() {
	min := o.slow[0].DurUS
	for _, r := range o.slow[1:] {
		if r.DurUS < min {
			min = r.DurUS
		}
	}
	o.slowMin.Store(min * int64(time.Microsecond))
}

// Recorder is the per-server flight recorder: a fixed-size retention of
// the slowest and errored requests for every opcode the server has
// handled. Observe is safe for concurrent use and cheap for requests that
// are neither slow nor errored.
type Recorder struct {
	ops sync.Map // op string -> *opRecorder
}

// NewRecorder returns an empty flight recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Observe offers one finished request to the recorder. traceID may be
// empty (untraced requests still count as slow); errMsg non-empty marks
// the request errored and guarantees retention in the error ring.
func (r *Recorder) Observe(op string, dur time.Duration, traceID, errMsg string, anns []Annotation) {
	v, ok := r.ops.Load(op)
	if !ok {
		v, _ = r.ops.LoadOrStore(op, &opRecorder{})
	}
	o := v.(*opRecorder)
	if errMsg == "" && dur.Nanoseconds() < o.slowMin.Load() {
		return // unremarkable: slower requests already fill the slow set
	}
	o.observe(Record{
		Op:      op,
		TraceID: traceID,
		DurUS:   dur.Microseconds(),
		Err:     errMsg,
		Anns:    anns,
		UnixMS:  time.Now().UnixMilli(),
	}, dur)
}

// OpTraces is one opcode's retained records in a Snapshot.
type OpTraces struct {
	// Slowest is ordered slowest-first; Errors is most-recent-first.
	Slowest []Record `json:"slowest"`
	Errors  []Record `json:"errors,omitempty"`
}

// Snapshot is the JSON document served at /debug/traces.
type Snapshot struct {
	Ops map[string]OpTraces `json:"ops"`
}

// Snapshot copies the current retention out of the recorder.
func (r *Recorder) Snapshot() Snapshot {
	snap := Snapshot{Ops: make(map[string]OpTraces)}
	r.ops.Range(func(k, v any) bool {
		o := v.(*opRecorder)
		o.mu.Lock()
		ot := OpTraces{Slowest: append([]Record(nil), o.slow...)}
		// Unroll the error ring newest-first.
		for i := len(o.errs) - 1; i >= 0; i-- {
			ot.Errors = append(ot.Errors, o.errs[(o.errNext+i)%len(o.errs)])
		}
		o.mu.Unlock()
		sort.SliceStable(ot.Slowest, func(i, j int) bool { return ot.Slowest[i].DurUS > ot.Slowest[j].DurUS })
		snap.Ops[k.(string)] = ot
		return true
	})
	return snap
}

// Reset discards every retained record, re-arming the recorder for a
// fresh observation window — long soaks fence per-phase flight tables
// with it. Safe to call concurrently with Observe: an in-flight
// observation lands either in the old retention (discarded) or the new.
func (r *Recorder) Reset() {
	r.ops.Range(func(k, _ any) bool {
		r.ops.Delete(k)
		return true
	})
}

// Handler serves the recorder's snapshot as indented JSON — the
// /debug/traces endpoint. A ?op=<opcode> query filters the snapshot to
// that opcode's retention (an unknown opcode serves an empty document).
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		snap := r.Snapshot()
		if op := req.URL.Query().Get("op"); op != "" {
			filtered := Snapshot{Ops: make(map[string]OpTraces, 1)}
			if ot, ok := snap.Ops[op]; ok {
				filtered.Ops[op] = ot
			}
			snap = filtered
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(snap)
	})
}
