// Package trace carries per-request trace context across process
// boundaries and keeps a flight recorder of the requests worth looking at
// afterwards.
//
// A trace is identified by a random 64-bit ID rendered as 16 hex digits —
// compact enough to ride in a wire header field and grep out of any log.
// Context is the propagated triple (trace ID, span ID, flags); Annotation
// is the server-side unit of measurement: a named interval, offset
// relative to the moment the server received the frame, that the server
// returns on its reply so the client can graft real server time (queue
// wait, per-shard execute, split-batch parts) into its own span tree.
//
// Recorder is the always-on flight recorder: per opcode it retains the
// slowest and the most recent errored requests in fixed-size buffers, so
// "what was that p99.9 five minutes ago" has a concrete answer without
// any sampling decision made up front. Handler serves the retained
// records as JSON — mounted at /debug/traces on each server's metrics
// mux.
package trace

import (
	"fmt"
	"math/rand"
	"strconv"
	"sync"
)

// ID is a 64-bit trace or span identifier; zero means "absent".
type ID uint64

// idRng feeds NewID. The global math/rand source would also do, but a
// private locked source keeps trace-ID draws from perturbing any other
// package's use of the global stream.
var idRng = struct {
	sync.Mutex
	*rand.Rand
}{Rand: rand.New(rand.NewSource(rand.Int63()))}

// NewID draws a random non-zero identifier.
func NewID() ID {
	idRng.Lock()
	defer idRng.Unlock()
	for {
		if id := ID(idRng.Uint64()); id != 0 {
			return id
		}
	}
}

// String renders the ID as 16 lowercase hex digits; the zero ID renders
// as the empty string so omitempty header fields stay absent.
func (id ID) String() string {
	if id == 0 {
		return ""
	}
	return fmt.Sprintf("%016x", uint64(id))
}

// ParseID decodes a 16-hex-digit identifier; the empty string parses to
// the zero ID (absent context, not an error).
func ParseID(s string) (ID, error) {
	if s == "" {
		return 0, nil
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("trace: bad id %q: %w", s, err)
	}
	return ID(v), nil
}

// FlagSampled marks a context whose spans should be recorded in detail;
// untraced requests simply carry no context at all, so today every
// propagated context is sampled — the flag exists so a future sampler can
// propagate IDs without asking servers for annotations.
const FlagSampled = 1

// Context is the propagated trace state: which trace a request belongs
// to, which client span issued it, and behaviour flags. The zero Context
// means "untraced" and must encode to nothing on the wire.
type Context struct {
	TraceID ID
	SpanID  ID
	Flags   int
}

// Valid reports whether the context names a trace.
func (c Context) Valid() bool { return c.TraceID != 0 }

// Sampled reports whether servers should record and return annotations.
func (c Context) Sampled() bool { return c.Valid() && c.Flags&FlagSampled != 0 }

// New mints a sampled root context for one client operation.
func New() Context {
	return Context{TraceID: NewID(), SpanID: NewID(), Flags: FlagSampled}
}

// Child derives a context for one downstream exchange: same trace, fresh
// span ID, flags inherited.
func (c Context) Child() Context {
	if !c.Valid() {
		return Context{}
	}
	return Context{TraceID: c.TraceID, SpanID: NewID(), Flags: c.Flags}
}

// Annotation is one named server-side interval, reported on the reply.
// Offsets are microseconds relative to the server receiving the request
// frame, so a client can order a server's annotations without any clock
// agreement between the two processes; durations are microseconds.
type Annotation struct {
	Name  string `json:"name"`
	OffUS int64  `json:"off_us"`
	DurUS int64  `json:"dur_us"`
}
