package trace

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestIDRoundTrip(t *testing.T) {
	for i := 0; i < 64; i++ {
		id := NewID()
		if id == 0 {
			t.Fatal("NewID returned zero")
		}
		s := id.String()
		if len(s) != 16 {
			t.Fatalf("id %v renders %q, want 16 hex digits", uint64(id), s)
		}
		back, err := ParseID(s)
		if err != nil || back != id {
			t.Fatalf("ParseID(%q) = %v, %v, want %v", s, back, err, id)
		}
	}
	if s := ID(0).String(); s != "" {
		t.Fatalf("zero ID renders %q, want empty", s)
	}
	if id, err := ParseID(""); err != nil || id != 0 {
		t.Fatalf("ParseID(\"\") = %v, %v, want zero", id, err)
	}
	if _, err := ParseID("not-hex"); err == nil {
		t.Fatal("ParseID accepted garbage")
	}
}

func TestContextChild(t *testing.T) {
	root := New()
	if !root.Sampled() {
		t.Fatal("New() context not sampled")
	}
	child := root.Child()
	if child.TraceID != root.TraceID {
		t.Fatal("child changed trace ID")
	}
	if child.SpanID == root.SpanID {
		t.Fatal("child kept parent span ID")
	}
	if (Context{}).Child().Valid() {
		t.Fatal("child of zero context is valid")
	}
}

// TestRecorderSlowEviction pins the retention policy: the slow set keeps
// exactly the SlowPerOp slowest observations, evicting the fastest
// retained record when a slower one arrives, and the snapshot is ordered
// slowest-first.
func TestRecorderSlowEviction(t *testing.T) {
	r := NewRecorder()
	n := 3 * SlowPerOp
	for i := 1; i <= n; i++ {
		r.Observe("get", time.Duration(i)*time.Millisecond, fmt.Sprintf("%016x", i), "", nil)
	}
	snap := r.Snapshot()
	got := snap.Ops["get"].Slowest
	if len(got) != SlowPerOp {
		t.Fatalf("retained %d records, want %d", len(got), SlowPerOp)
	}
	for i, rec := range got {
		wantUS := int64(n-i) * 1000
		if rec.DurUS != wantUS {
			t.Fatalf("slowest[%d] = %d µs, want %d µs", i, rec.DurUS, wantUS)
		}
	}
	// A fast op after the set is full must be rejected without displacing
	// anything.
	r.Observe("get", time.Microsecond, "", "", nil)
	if got := r.Snapshot().Ops["get"].Slowest; got[len(got)-1].DurUS < 1000 {
		t.Fatalf("fast op displaced a slow record: %+v", got[len(got)-1])
	}
}

// TestRecorderErrorRing pins the error ring: errored requests are always
// retained regardless of duration, the ring holds the most recent
// ErrsPerOp, newest first.
func TestRecorderErrorRing(t *testing.T) {
	r := NewRecorder()
	// Fill the slow set with slow successes so errors cannot ride in on
	// the slow path.
	for i := 0; i < SlowPerOp; i++ {
		r.Observe("put", time.Second, "", "", nil)
	}
	n := 2*ErrsPerOp + 3
	for i := 1; i <= n; i++ {
		r.Observe("put", time.Microsecond, "", fmt.Sprintf("boom-%d", i), nil)
	}
	errs := r.Snapshot().Ops["put"].Errors
	if len(errs) != ErrsPerOp {
		t.Fatalf("retained %d errors, want %d", len(errs), ErrsPerOp)
	}
	for i, rec := range errs {
		want := fmt.Sprintf("boom-%d", n-i)
		if rec.Err != want {
			t.Fatalf("errors[%d] = %q, want %q (newest first)", i, rec.Err, want)
		}
	}
}

// TestRecorderConcurrent hammers one recorder from many goroutines while
// snapshots run — the -race gate for the flight recorder.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	ops := []string{"get", "mget", "put"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				errMsg := ""
				if i%97 == 0 {
					errMsg = "synthetic"
				}
				r.Observe(ops[(g+i)%len(ops)], time.Duration(i%500)*time.Microsecond,
					NewID().String(), errMsg, []Annotation{{Name: "exec", DurUS: int64(i)}})
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				r.Snapshot()
			}
		}
	}()
	wg.Wait()
	close(done)
	snap := r.Snapshot()
	for _, op := range ops {
		ot, ok := snap.Ops[op]
		if !ok || len(ot.Slowest) == 0 {
			t.Fatalf("op %s retained nothing", op)
		}
		if len(ot.Slowest) > SlowPerOp || len(ot.Errors) > ErrsPerOp {
			t.Fatalf("op %s over-retained: %d slow, %d errs", op, len(ot.Slowest), len(ot.Errors))
		}
	}
}

// TestRecorderHandler checks the /debug/traces JSON shape end to end: the
// handler serves a decodable Snapshot carrying the fields the CI smoke
// greps for.
func TestRecorderHandler(t *testing.T) {
	r := NewRecorder()
	r.Observe("get", 5*time.Millisecond, NewID().String(), "", []Annotation{
		{Name: "queue", OffUS: 0, DurUS: 40},
		{Name: "exec", OffUS: 40, DurUS: 4960},
	})
	r.Observe("get", time.Millisecond, "", "no such chunk", nil)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decode: %v", err)
	}
	ot := snap.Ops["get"]
	if len(ot.Slowest) != 2 || len(ot.Errors) != 1 {
		t.Fatalf("snapshot shape: %+v", ot)
	}
	if ot.Slowest[0].DurUS != 5000 || len(ot.Slowest[0].Anns) != 2 || ot.Slowest[0].TraceID == "" {
		t.Fatalf("slowest record malformed: %+v", ot.Slowest[0])
	}
	if ot.Errors[0].Err != "no such chunk" {
		t.Fatalf("error record malformed: %+v", ot.Errors[0])
	}
}
