// Package ycsb reimplements the harness role the paper's modified YCSB
// client plays (§V-A): drive a request stream from a workload generator
// through a reading strategy, measure full-object read latencies, and
// aggregate them over multiple runs. Beyond the paper's read-only harness,
// a run can mix in blind updates and read-modify-writes (YCSB workloads
// A, B and F) through an Update hook, and judge every read against the
// run's own writes to count stale reads.
//
// Runs execute on a virtual clock: each operation advances time by its
// modelled latency, and the region's Agar node (when present) reconfigures
// whenever its period elapses on that clock — so "30 seconds" of cache
// reconfiguration behaves exactly as in the paper without wall-clock cost.
package ycsb

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/agardist/agar/internal/client"
	"github.com/agardist/agar/internal/core"
	"github.com/agardist/agar/internal/netsim"
	"github.com/agardist/agar/internal/stats"
	"github.com/agardist/agar/internal/workload"
)

// RunConfig describes one measurement run.
type RunConfig struct {
	// Reader is the strategy under test.
	Reader client.Reader
	// Generator produces the key stream.
	Generator workload.Generator
	// Operations is the number of measured reads (the paper uses 1,000).
	Operations int
	// WarmupOps run before measurement to populate caches and statistics;
	// they advance time but are not recorded.
	WarmupOps int
	// Clock is the virtual timeline; nil creates a fresh one.
	Clock *netsim.VirtualClock
	// Node, when set, is given the chance to reconfigure after every
	// operation according to its period on the virtual clock.
	Node *core.Node
	// Clients models n concurrent client threads per YCSB instance (the
	// paper runs 2): wall time advances by latency/n per operation. Zero
	// or one means a single serial client.
	Clients int
	// Deadline, when non-zero, ends the measured phase once the virtual
	// clock reaches it; Operations then acts as a safety cap rather than a
	// target. Warm-up operations always run in full. The scenario runner
	// drives duration-based phases through this.
	Deadline time.Time
	// BeforeOp, when set, is called with the virtual now before every
	// operation (warm-up included) — the hook timed chaos actions fire on.
	BeforeOp func(now time.Time)
	// UpdateFrac is the probability an operation is a blind update instead
	// of a read (YCSB A = 0.5, YCSB B = 0.05). Requires Update.
	UpdateFrac float64
	// RMWFrac is the probability an operation is a read-modify-write — a
	// read followed by an update of the same key, timed as one operation
	// (YCSB F). Requires Update.
	RMWFrac float64
	// Update performs one mutation of the key and returns its modelled
	// latency; the generator draws the key exactly as for reads, so hot
	// keys are updated as often as they are read.
	Update func(key string) (time.Duration, error)
	// Verify, when set, judges every successful read's payload against
	// what the workload's own writes make current; false counts the read
	// as stale. Reads of keys the run never wrote should return true.
	Verify func(key string, data []byte) bool
	// MixSeed seeds the operation-type draw so paired arms replay the same
	// read/update interleaving (zero uses a fixed default).
	MixSeed int64
}

// Result aggregates one run.
type Result struct {
	// Strategy is the reader's name.
	Strategy string
	// Operations is the number of measured reads.
	Operations int
	// Mean is the average read latency — the paper's headline metric.
	Mean time.Duration
	// P50, P95 and P99 are latency percentiles.
	P50, P95, P99 time.Duration
	// Min and Max bound the measured latencies.
	Min, Max time.Duration
	// FullHits, PartialHits and Misses classify the measured reads.
	FullHits, PartialHits, Misses int
	// PeerChunks totals the chunks served by cooperative peer caches
	// across the measured reads (§VI).
	PeerChunks int
	// Errors counts failed reads (excluded from latency stats).
	Errors int
	// Reconfigs counts Agar reconfigurations during the measured phase.
	Reconfigs int
	// Updates counts measured mutations: blind updates plus the write half
	// of read-modify-writes.
	Updates int
	// UpdateErrors counts failed mutations (excluded from update stats).
	UpdateErrors int
	// StaleReads counts successful measured reads whose payload failed
	// verification — the run's own writes had superseded what the read
	// returned. Always zero without a Verify hook.
	StaleReads int
	// UpdateMean and UpdateP99 summarise measured mutation latencies.
	UpdateMean, UpdateP99 time.Duration
}

// HitRatio returns (full + partial hits) / operations, the paper's
// Figure 7 metric.
func (r Result) HitRatio() float64 {
	if r.Operations == 0 {
		return 0
	}
	return float64(r.FullHits+r.PartialHits) / float64(r.Operations)
}

// Run executes one measurement run.
func Run(cfg RunConfig) (Result, error) {
	if cfg.Reader == nil || cfg.Generator == nil {
		return Result{}, fmt.Errorf("ycsb: reader and generator are required")
	}
	if cfg.Operations <= 0 {
		return Result{}, fmt.Errorf("ycsb: operations must be positive")
	}
	mutating := cfg.UpdateFrac > 0 || cfg.RMWFrac > 0
	if mutating {
		if cfg.UpdateFrac < 0 || cfg.RMWFrac < 0 || cfg.UpdateFrac+cfg.RMWFrac > 1 {
			return Result{}, fmt.Errorf("ycsb: update %v + rmw %v outside [0,1]", cfg.UpdateFrac, cfg.RMWFrac)
		}
		if cfg.Update == nil {
			return Result{}, fmt.Errorf("ycsb: update/rmw fractions need an Update hook")
		}
	}
	mixSeed := cfg.MixSeed
	if mixSeed == 0 {
		mixSeed = 1
	}
	mix := rand.New(rand.NewSource(mixSeed))
	clock := cfg.Clock
	if clock == nil {
		clock = netsim.NewVirtualClock(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	}
	if cfg.Node != nil {
		// Activate the first configuration period immediately.
		cfg.Node.MaybeReconfigure(clock.Now())
	}

	lat := stats.NewLatencySummary(cfg.Operations)
	updLat := stats.NewLatencySummary(cfg.Operations)
	res := Result{Strategy: cfg.Reader.Name()}
	reconfStart := 0
	if cfg.Node != nil {
		reconfStart = cfg.Node.Manager().Runs()
	}

	clients := cfg.Clients
	if clients < 1 {
		clients = 1
	}
	total := cfg.WarmupOps + cfg.Operations
	for i := 0; i < total; i++ {
		if i >= cfg.WarmupOps && !cfg.Deadline.IsZero() && !clock.Now().Before(cfg.Deadline) {
			break
		}
		if cfg.BeforeOp != nil {
			cfg.BeforeOp(clock.Now())
		}
		key := workload.KeyName(cfg.Generator.Next())
		// Draw the operation type with the mix stream (always, so paired
		// arms stay aligned op for op). Blind updates skip the read; a
		// read-modify-write does both and its halves are timed separately.
		op := 0.0
		if mutating {
			op = mix.Float64()
		}
		update := op < cfg.UpdateFrac
		rmw := !update && op < cfg.UpdateFrac+cfg.RMWFrac
		measured := i >= cfg.WarmupOps

		var r client.Result
		var err error
		staleRead := false
		if !update {
			var data []byte
			data, r, err = cfg.Reader.Read(key)
			clock.Advance(r.Latency / time.Duration(clients))
			// Judge the payload now, against what was current at read
			// time — an RMW's own write is about to supersede it.
			staleRead = err == nil && cfg.Verify != nil && !cfg.Verify(key, data)
		}
		var wdur time.Duration
		var werr error
		if update || rmw {
			wdur, werr = cfg.Update(key)
			clock.Advance(wdur / time.Duration(clients))
		}
		if cfg.Node != nil {
			cfg.Node.MaybeReconfigure(clock.Now())
		}
		if !measured {
			if cfg.Node != nil {
				reconfStart = cfg.Node.Manager().Runs()
			}
			continue
		}
		res.Operations++
		if update || rmw {
			res.Updates++
			if werr != nil {
				res.UpdateErrors++
			} else {
				updLat.Add(wdur)
			}
		}
		if update {
			continue
		}
		if err != nil {
			res.Errors++
			continue
		}
		lat.Add(r.Latency)
		res.PeerChunks += r.PeerChunks
		if staleRead {
			res.StaleReads++
		}
		switch {
		case r.FullHit:
			res.FullHits++
		case r.PartialHit:
			res.PartialHits++
		default:
			res.Misses++
		}
	}

	res.Mean = lat.Mean()
	res.P50 = lat.Percentile(50)
	res.P95 = lat.Percentile(95)
	res.P99 = lat.Percentile(99)
	res.Min = lat.Min()
	res.Max = lat.Max()
	res.UpdateMean = updLat.Mean()
	res.UpdateP99 = updLat.Percentile(99)
	if cfg.Node != nil {
		res.Reconfigs = cfg.Node.Manager().Runs() - reconfStart
	}
	return res, nil
}

// Average folds multiple run results into one (means of means, summed hit
// classes renormalised by total operations), the way the paper averages its
// five runs.
func Average(results []Result) Result {
	if len(results) == 0 {
		return Result{}
	}
	out := Result{Strategy: results[0].Strategy}
	var mean, p50, p95, p99, uMean, uP99 time.Duration
	for _, r := range results {
		mean += r.Mean
		p50 += r.P50
		p95 += r.P95
		p99 += r.P99
		uMean += r.UpdateMean
		uP99 += r.UpdateP99
		out.Updates += r.Updates
		out.UpdateErrors += r.UpdateErrors
		out.StaleReads += r.StaleReads
		if r.Min > 0 && (out.Min == 0 || r.Min < out.Min) {
			out.Min = r.Min
		}
		if r.Max > out.Max {
			out.Max = r.Max
		}
		out.Operations += r.Operations
		out.FullHits += r.FullHits
		out.PartialHits += r.PartialHits
		out.Misses += r.Misses
		out.PeerChunks += r.PeerChunks
		out.Errors += r.Errors
		out.Reconfigs += r.Reconfigs
	}
	n := time.Duration(len(results))
	out.Mean = mean / n
	out.P50 = p50 / n
	out.P95 = p95 / n
	out.P99 = p99 / n
	out.UpdateMean = uMean / n
	out.UpdateP99 = uP99 / n
	return out
}
