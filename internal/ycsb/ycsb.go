// Package ycsb reimplements the harness role the paper's modified YCSB
// client plays (§V-A): drive a read-only request stream from a workload
// generator through a reading strategy, measure full-object read latencies,
// and aggregate them over multiple runs.
//
// Runs execute on a virtual clock: each operation advances time by its
// modelled latency, and the region's Agar node (when present) reconfigures
// whenever its period elapses on that clock — so "30 seconds" of cache
// reconfiguration behaves exactly as in the paper without wall-clock cost.
package ycsb

import (
	"fmt"
	"time"

	"github.com/agardist/agar/internal/client"
	"github.com/agardist/agar/internal/core"
	"github.com/agardist/agar/internal/netsim"
	"github.com/agardist/agar/internal/stats"
	"github.com/agardist/agar/internal/workload"
)

// RunConfig describes one measurement run.
type RunConfig struct {
	// Reader is the strategy under test.
	Reader client.Reader
	// Generator produces the key stream.
	Generator workload.Generator
	// Operations is the number of measured reads (the paper uses 1,000).
	Operations int
	// WarmupOps run before measurement to populate caches and statistics;
	// they advance time but are not recorded.
	WarmupOps int
	// Clock is the virtual timeline; nil creates a fresh one.
	Clock *netsim.VirtualClock
	// Node, when set, is given the chance to reconfigure after every
	// operation according to its period on the virtual clock.
	Node *core.Node
	// Clients models n concurrent client threads per YCSB instance (the
	// paper runs 2): wall time advances by latency/n per operation. Zero
	// or one means a single serial client.
	Clients int
	// Deadline, when non-zero, ends the measured phase once the virtual
	// clock reaches it; Operations then acts as a safety cap rather than a
	// target. Warm-up operations always run in full. The scenario runner
	// drives duration-based phases through this.
	Deadline time.Time
	// BeforeOp, when set, is called with the virtual now before every
	// operation (warm-up included) — the hook timed chaos actions fire on.
	BeforeOp func(now time.Time)
}

// Result aggregates one run.
type Result struct {
	// Strategy is the reader's name.
	Strategy string
	// Operations is the number of measured reads.
	Operations int
	// Mean is the average read latency — the paper's headline metric.
	Mean time.Duration
	// P50, P95 and P99 are latency percentiles.
	P50, P95, P99 time.Duration
	// Min and Max bound the measured latencies.
	Min, Max time.Duration
	// FullHits, PartialHits and Misses classify the measured reads.
	FullHits, PartialHits, Misses int
	// PeerChunks totals the chunks served by cooperative peer caches
	// across the measured reads (§VI).
	PeerChunks int
	// Errors counts failed reads (excluded from latency stats).
	Errors int
	// Reconfigs counts Agar reconfigurations during the measured phase.
	Reconfigs int
}

// HitRatio returns (full + partial hits) / operations, the paper's
// Figure 7 metric.
func (r Result) HitRatio() float64 {
	if r.Operations == 0 {
		return 0
	}
	return float64(r.FullHits+r.PartialHits) / float64(r.Operations)
}

// Run executes one measurement run.
func Run(cfg RunConfig) (Result, error) {
	if cfg.Reader == nil || cfg.Generator == nil {
		return Result{}, fmt.Errorf("ycsb: reader and generator are required")
	}
	if cfg.Operations <= 0 {
		return Result{}, fmt.Errorf("ycsb: operations must be positive")
	}
	clock := cfg.Clock
	if clock == nil {
		clock = netsim.NewVirtualClock(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	}
	if cfg.Node != nil {
		// Activate the first configuration period immediately.
		cfg.Node.MaybeReconfigure(clock.Now())
	}

	lat := stats.NewLatencySummary(cfg.Operations)
	res := Result{Strategy: cfg.Reader.Name()}
	reconfStart := 0
	if cfg.Node != nil {
		reconfStart = cfg.Node.Manager().Runs()
	}

	clients := cfg.Clients
	if clients < 1 {
		clients = 1
	}
	total := cfg.WarmupOps + cfg.Operations
	for i := 0; i < total; i++ {
		if i >= cfg.WarmupOps && !cfg.Deadline.IsZero() && !clock.Now().Before(cfg.Deadline) {
			break
		}
		if cfg.BeforeOp != nil {
			cfg.BeforeOp(clock.Now())
		}
		key := workload.KeyName(cfg.Generator.Next())
		_, r, err := cfg.Reader.Read(key)
		clock.Advance(r.Latency / time.Duration(clients))
		if cfg.Node != nil {
			cfg.Node.MaybeReconfigure(clock.Now())
		}
		if i < cfg.WarmupOps {
			if cfg.Node != nil {
				reconfStart = cfg.Node.Manager().Runs()
			}
			continue
		}
		res.Operations++
		if err != nil {
			res.Errors++
			continue
		}
		lat.Add(r.Latency)
		res.PeerChunks += r.PeerChunks
		switch {
		case r.FullHit:
			res.FullHits++
		case r.PartialHit:
			res.PartialHits++
		default:
			res.Misses++
		}
	}

	res.Mean = lat.Mean()
	res.P50 = lat.Percentile(50)
	res.P95 = lat.Percentile(95)
	res.P99 = lat.Percentile(99)
	res.Min = lat.Min()
	res.Max = lat.Max()
	if cfg.Node != nil {
		res.Reconfigs = cfg.Node.Manager().Runs() - reconfStart
	}
	return res, nil
}

// Average folds multiple run results into one (means of means, summed hit
// classes renormalised by total operations), the way the paper averages its
// five runs.
func Average(results []Result) Result {
	if len(results) == 0 {
		return Result{}
	}
	out := Result{Strategy: results[0].Strategy}
	var mean, p50, p95, p99 time.Duration
	for _, r := range results {
		mean += r.Mean
		p50 += r.P50
		p95 += r.P95
		p99 += r.P99
		if r.Min > 0 && (out.Min == 0 || r.Min < out.Min) {
			out.Min = r.Min
		}
		if r.Max > out.Max {
			out.Max = r.Max
		}
		out.Operations += r.Operations
		out.FullHits += r.FullHits
		out.PartialHits += r.PartialHits
		out.Misses += r.Misses
		out.PeerChunks += r.PeerChunks
		out.Errors += r.Errors
		out.Reconfigs += r.Reconfigs
	}
	n := time.Duration(len(results))
	out.Mean = mean / n
	out.P50 = p50 / n
	out.P95 = p95 / n
	out.P99 = p99 / n
	return out
}
