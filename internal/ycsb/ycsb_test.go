package ycsb

import (
	"errors"
	"testing"
	"time"

	"github.com/agardist/agar/internal/client"
	"github.com/agardist/agar/internal/netsim"
	"github.com/agardist/agar/internal/workload"
)

// fakeReader returns fixed latencies and hit classes in rotation.
type fakeReader struct {
	lats  []time.Duration
	hits  []bool
	calls int
	fail  bool
}

func (f *fakeReader) Name() string { return "fake" }

func (f *fakeReader) Read(key string) ([]byte, client.Result, error) {
	i := f.calls
	f.calls++
	res := client.Result{Latency: f.lats[i%len(f.lats)]}
	if f.hits != nil && f.hits[i%len(f.hits)] {
		res.PartialHit = true
		res.CacheChunks = 1
	}
	if f.fail {
		return nil, res, errors.New("boom")
	}
	return []byte("x"), res, nil
}

func TestRunBasicAccounting(t *testing.T) {
	r := &fakeReader{
		lats: []time.Duration{100 * time.Millisecond, 300 * time.Millisecond},
		hits: []bool{true, false},
	}
	res, err := Run(RunConfig{
		Reader:     r,
		Generator:  workload.NewSequential(10),
		Operations: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Operations != 100 || res.Strategy != "fake" {
		t.Fatalf("res = %+v", res)
	}
	if res.Mean != 200*time.Millisecond {
		t.Fatalf("mean = %v", res.Mean)
	}
	if res.PartialHits != 50 || res.Misses != 50 || res.FullHits != 0 {
		t.Fatalf("hits = %+v", res)
	}
	if hr := res.HitRatio(); hr != 0.5 {
		t.Fatalf("hit ratio = %v", hr)
	}
	if res.P50 != 100*time.Millisecond || res.P99 != 300*time.Millisecond {
		t.Fatalf("percentiles: p50=%v p99=%v", res.P50, res.P99)
	}
}

func TestRunWarmupExcluded(t *testing.T) {
	r := &fakeReader{lats: []time.Duration{time.Second}}
	res, err := Run(RunConfig{
		Reader:     r,
		Generator:  workload.NewSequential(5),
		Operations: 10,
		WarmupOps:  20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.calls != 30 {
		t.Fatalf("reader called %d times", r.calls)
	}
	if res.Operations != 10 {
		t.Fatalf("operations = %d", res.Operations)
	}
}

func TestRunAdvancesVirtualClock(t *testing.T) {
	clock := netsim.NewVirtualClock(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	r := &fakeReader{lats: []time.Duration{time.Second}}
	_, err := Run(RunConfig{
		Reader:     r,
		Generator:  workload.NewSequential(3),
		Operations: 10,
		Clock:      clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := clock.Now().Sub(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)); got != 10*time.Second {
		t.Fatalf("clock advanced %v", got)
	}
}

func TestRunClientsDivideTime(t *testing.T) {
	clock := netsim.NewVirtualClock(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	r := &fakeReader{lats: []time.Duration{time.Second}}
	_, err := Run(RunConfig{
		Reader:     r,
		Generator:  workload.NewSequential(3),
		Operations: 10,
		Clock:      clock,
		Clients:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := clock.Now().Sub(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)); got != 5*time.Second {
		t.Fatalf("clock advanced %v with 2 clients", got)
	}
}

func TestRunCountsErrors(t *testing.T) {
	r := &fakeReader{lats: []time.Duration{time.Millisecond}, fail: true}
	res, err := Run(RunConfig{
		Reader:     r,
		Generator:  workload.NewSequential(3),
		Operations: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 7 || res.Mean != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(RunConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := Run(RunConfig{
		Reader:    &fakeReader{lats: []time.Duration{1}},
		Generator: workload.NewSequential(1),
	}); err == nil {
		t.Fatal("zero operations accepted")
	}
}

func TestAverage(t *testing.T) {
	a := Result{Strategy: "s", Operations: 10, Mean: 100 * time.Millisecond,
		P50: 90 * time.Millisecond, FullHits: 4, Misses: 6}
	b := Result{Strategy: "s", Operations: 10, Mean: 300 * time.Millisecond,
		P50: 290 * time.Millisecond, FullHits: 6, Misses: 4}
	avg := Average([]Result{a, b})
	if avg.Mean != 200*time.Millisecond || avg.P50 != 190*time.Millisecond {
		t.Fatalf("avg = %+v", avg)
	}
	if avg.Operations != 20 || avg.FullHits != 10 {
		t.Fatalf("sums wrong: %+v", avg)
	}
	if avg.HitRatio() != 0.5 {
		t.Fatalf("hit ratio = %v", avg.HitRatio())
	}
	if got := Average(nil); got.Operations != 0 {
		t.Fatal("empty average")
	}
}
