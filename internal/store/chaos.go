package store

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// ChaosConfig parameterises fault injection on a blob store.
type ChaosConfig struct {
	// Latency is slept before every operation — the tier's service time.
	Latency time.Duration
	// ErrRate is the probability in [0, 1] that an operation fails with
	// ErrInjected instead of running.
	ErrRate float64
	// Seed makes the failure stream deterministic (0 picks seed 1).
	Seed int64
}

// Chaos wraps a BlobStore with configurable per-request latency and error
// injection — how cmd/blob-server emulates a slow or flaky storage tier and
// how tests exercise the degraded paths of everything stacked above.
type Chaos struct {
	inner BlobStore
	cfg   ChaosConfig

	mu  sync.Mutex
	rng *rand.Rand

	injected int64
}

// WithChaos wraps the store in a fault injector.
func WithChaos(inner BlobStore, cfg ChaosConfig) *Chaos {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &Chaos{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// Injected reports how many operations have been failed so far.
func (c *Chaos) Injected() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.injected
}

// before applies the configured delay and rolls for an injected failure.
func (c *Chaos) before(op string) error {
	if c.cfg.Latency > 0 {
		time.Sleep(c.cfg.Latency)
	}
	if c.cfg.ErrRate <= 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rng.Float64() < c.cfg.ErrRate {
		c.injected++
		return fmt.Errorf("%w: %s", ErrInjected, op)
	}
	return nil
}

// PutChunk implements BlobStore.
func (c *Chaos) PutChunk(ctx context.Context, bucket string, id ChunkID, data []byte) error {
	if err := c.before("put"); err != nil {
		return err
	}
	return c.inner.PutChunk(ctx, bucket, id, data)
}

// GetChunk implements BlobStore.
func (c *Chaos) GetChunk(ctx context.Context, bucket string, id ChunkID) ([]byte, error) {
	if err := c.before("get"); err != nil {
		return nil, err
	}
	return c.inner.GetChunk(ctx, bucket, id)
}

// GetChunks implements BlobStore.
func (c *Chaos) GetChunks(ctx context.Context, bucket, key string, indices []int) (map[int][]byte, error) {
	if err := c.before("mget"); err != nil {
		return nil, err
	}
	return c.inner.GetChunks(ctx, bucket, key, indices)
}

// DeleteChunk implements BlobStore.
func (c *Chaos) DeleteChunk(ctx context.Context, bucket string, id ChunkID) (bool, error) {
	if err := c.before("delete"); err != nil {
		return false, err
	}
	return c.inner.DeleteChunk(ctx, bucket, id)
}

// DeleteObject implements BlobStore.
func (c *Chaos) DeleteObject(ctx context.Context, bucket, key string) (int, error) {
	if err := c.before("delobj"); err != nil {
		return 0, err
	}
	return c.inner.DeleteObject(ctx, bucket, key)
}

// List implements BlobStore.
func (c *Chaos) List(ctx context.Context, bucket string) ([]string, error) {
	if err := c.before("list"); err != nil {
		return nil, err
	}
	return c.inner.List(ctx, bucket)
}

// Stats implements BlobStore.
func (c *Chaos) Stats(ctx context.Context, bucket string) (Stats, error) {
	if err := c.before("stats"); err != nil {
		return Stats{}, err
	}
	return c.inner.Stats(ctx, bucket)
}

// Close implements BlobStore; it never injects.
func (c *Chaos) Close() error { return c.inner.Close() }
