package store

import (
	"context"
	"time"

	"github.com/agardist/agar/internal/metrics"
)

// WithMetrics wraps any adapter so every BlobStore call observes its
// latency into the registry's agar_blob_op_seconds histogram, labelled by
// adapter kind and operation. Chaos-injected delay counts — the histogram
// measures what callers actually wait, the way a client-side S3 SDK metric
// would. Stats/List/Close are instrumented too: on a remote gateway they
// are real round trips.
func WithMetrics(bs BlobStore, reg *metrics.Registry, adapter string) BlobStore {
	vec := reg.NewHistogramVec(metrics.NameBlobOpSeconds,
		"Latency of one blob-store adapter call, chaos and gateway round trips included.",
		metrics.DefBuckets, "adapter", "op")
	return &metered{
		inner:  bs,
		put:    vec.With(adapter, "put"),
		get:    vec.With(adapter, "get"),
		getN:   vec.With(adapter, "get_multi"),
		del:    vec.With(adapter, "delete"),
		delObj: vec.With(adapter, "delete_object"),
		list:   vec.With(adapter, "list"),
		stats:  vec.With(adapter, "stats"),
	}
}

type metered struct {
	inner BlobStore

	put, get, getN, del, delObj, list, stats *metrics.Histogram
}

func (m *metered) observe(h *metrics.Histogram, start time.Time) {
	h.ObserveDuration(time.Since(start))
}

func (m *metered) PutChunk(ctx context.Context, bucket string, id ChunkID, data []byte) error {
	defer m.observe(m.put, time.Now())
	return m.inner.PutChunk(ctx, bucket, id, data)
}

func (m *metered) GetChunk(ctx context.Context, bucket string, id ChunkID) ([]byte, error) {
	defer m.observe(m.get, time.Now())
	return m.inner.GetChunk(ctx, bucket, id)
}

func (m *metered) GetChunks(ctx context.Context, bucket, key string, indices []int) (map[int][]byte, error) {
	defer m.observe(m.getN, time.Now())
	return m.inner.GetChunks(ctx, bucket, key, indices)
}

func (m *metered) DeleteChunk(ctx context.Context, bucket string, id ChunkID) (bool, error) {
	defer m.observe(m.del, time.Now())
	return m.inner.DeleteChunk(ctx, bucket, id)
}

func (m *metered) DeleteObject(ctx context.Context, bucket, key string) (int, error) {
	defer m.observe(m.delObj, time.Now())
	return m.inner.DeleteObject(ctx, bucket, key)
}

func (m *metered) List(ctx context.Context, bucket string) ([]string, error) {
	defer m.observe(m.list, time.Now())
	return m.inner.List(ctx, bucket)
}

func (m *metered) Stats(ctx context.Context, bucket string) (Stats, error) {
	defer m.observe(m.stats, time.Now())
	return m.inner.Stats(ctx, bucket)
}

func (m *metered) Close() error { return m.inner.Close() }
