package store

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
)

// VersionIndex is the reserved chunk index that holds a key's version
// record inside its bucket. Erasure-coded objects use indices 0..k+m-1 and
// batch frames are capped far below this, so the record can never collide
// with a data chunk. Storing the record as an ordinary chunk makes version
// durability exactly as strong as chunk durability on every adapter: the
// disk adapter's atomic write-then-rename and crash rescan apply to it
// unchanged, and the remote adapter round-trips it through the same
// gateway surface.
const VersionIndex = 1 << 20

// versionRecordLen is the record payload: one big-endian uint64.
const versionRecordLen = 8

// PutVersion persists the key's version record (an hlc.Timestamp as a
// uint64) in the bucket. A zero version deletes the record.
func PutVersion(ctx context.Context, bs BlobStore, bucket, key string, ver uint64) error {
	if ver == 0 {
		_, err := bs.DeleteChunk(ctx, bucket, ChunkID{Key: key, Index: VersionIndex})
		return err
	}
	var rec [versionRecordLen]byte
	binary.BigEndian.PutUint64(rec[:], ver)
	return bs.PutChunk(ctx, bucket, ChunkID{Key: key, Index: VersionIndex}, rec[:])
}

// GetVersion reads the key's persisted version record; zero (with a nil
// error) means the key has no record — it has never been written through
// the versioned path in this bucket.
func GetVersion(ctx context.Context, bs BlobStore, bucket, key string) (uint64, error) {
	rec, err := bs.GetChunk(ctx, bucket, ChunkID{Key: key, Index: VersionIndex})
	if errors.Is(err, ErrNotFound) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	if len(rec) != versionRecordLen {
		return 0, fmt.Errorf("store: corrupt version record for %q: %d bytes", key, len(rec))
	}
	return binary.BigEndian.Uint64(rec), nil
}
