package store

import (
	"fmt"
	"strings"
	"time"
)

// Tier is the modelled performance envelope of one blob-store tier — what
// the simulator charges a backend chunk fetch on top of the WAN latency
// matrix (whose baseline already includes the paper's S3 service time).
// The scenario runner sweeps tiers to measure how far the cache and
// degraded reads absorb a slower or flakier storage layer; the live stack
// realises the same envelopes with the Chaos wrapper and netsim bandwidth
// caps.
type Tier struct {
	// Name is the tier's identifier ("mem", "disk", "remote", ...).
	Name string
	// Latency is the extra per-chunk service time over the baseline tier.
	Latency time.Duration
	// ErrRate is the transient per-chunk failure probability; a failed
	// fetch costs its full latency and triggers chunk substitution, like a
	// region outage but without blacklisting the region.
	ErrRate float64
	// BandwidthBps caps the tier's per-link transfer rate in bytes/second;
	// zero means uncapped. Transfers add size/bandwidth on top of latency.
	BandwidthBps int64
}

// The built-in tiers. The baseline "mem" tier is the paper's deployment
// exactly as PR 3 modelled it; the others layer service time, failure
// probability and bandwidth ceilings typical of their storage class.
var tiers = []Tier{
	{Name: KindMem},
	{Name: KindDisk, Latency: 2 * time.Millisecond},
	{Name: KindRemote, Latency: 12 * time.Millisecond},
	{Name: "remote-slow", Latency: 60 * time.Millisecond, ErrRate: 0.02, BandwidthBps: 6 << 20},
	{Name: "remote-flaky", Latency: 20 * time.Millisecond, ErrRate: 0.08},
}

// Tiers returns the built-in tier envelopes in definition order.
func Tiers() []Tier {
	out := make([]Tier, len(tiers))
	copy(out, tiers)
	return out
}

// TierNames lists the built-in tier names.
func TierNames() []string {
	out := make([]string, len(tiers))
	for i, t := range tiers {
		out[i] = t.Name
	}
	return out
}

// ParseTier resolves a tier name; the empty name is the "mem" baseline.
func ParseTier(name string) (Tier, error) {
	if name == "" {
		return tiers[0], nil
	}
	for _, t := range tiers {
		if t.Name == name {
			return t, nil
		}
	}
	return Tier{}, fmt.Errorf("store: unknown tier %q (want %s)", name, strings.Join(TierNames(), "|"))
}

// Baseline reports whether the tier adds nothing over the paper's modelled
// deployment — the fast path the simulator keeps bit-exact with PR 3.
func (t Tier) Baseline() bool {
	return t.Latency == 0 && t.ErrRate == 0 && t.BandwidthBps == 0
}
