// Package store is the pluggable blob-store tier: the S3-style object
// layer that persists erasure-coded chunks underneath the backend's
// per-region buckets.
//
// A BlobStore holds named buckets (one per region in the usual deployment)
// of chunk objects addressed by (object key, chunk index). Three adapters
// implement it:
//
//   - Mem: the in-process map the simulator always used — exact current
//     semantics, zero dependencies, the default everywhere.
//   - Disk: a filesystem object layout with atomic chunk writes (temp file
//     then rename) and a crash-safe rescan on open, so a restarted store
//     serves exactly the chunks whose writes completed.
//   - Remote: an HTTP client for the S3-style gateway that cmd/blob-server
//     exposes (GET/PUT/DELETE/LIST over /v1/<bucket>/<key>/<chunk>).
//
// The Gateway handler serves any BlobStore over that HTTP surface, and the
// Chaos wrapper injects per-request latency and failures on any adapter —
// the live counterpart of the simulator's modelled store Tiers.
package store

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"
)

// Errors returned by blob stores.
var (
	// ErrNotFound reports a chunk absent from its bucket.
	ErrNotFound = errors.New("store: chunk not found")
	// ErrInjected reports a fault injected by a Chaos wrapper.
	ErrInjected = errors.New("store: injected fault")
)

// ChunkID addresses one chunk object inside a bucket.
type ChunkID struct {
	// Key is the object key the chunk belongs to.
	Key string
	// Index is the chunk's erasure-code position.
	Index int
}

// Stats summarises one bucket.
type Stats struct {
	// Chunks is the number of chunk objects stored.
	Chunks int64 `json:"chunks"`
	// Bytes is the total payload bytes stored.
	Bytes int64 `json:"bytes"`
}

// BlobStore is the pluggable chunk persistence layer. Implementations are
// safe for concurrent use; every returned chunk is a copy the caller owns.
// Buckets spring into existence on first write, like S3 prefixes.
type BlobStore interface {
	// PutChunk stores (a copy of) the chunk bytes.
	PutChunk(ctx context.Context, bucket string, id ChunkID, data []byte) error
	// GetChunk returns a copy of the chunk bytes, or ErrNotFound.
	GetChunk(ctx context.Context, bucket string, id ChunkID) ([]byte, error)
	// GetChunks fetches several chunks of one key at once and returns
	// whichever exist, keyed by chunk index; absent chunks are simply
	// missing from the result.
	GetChunks(ctx context.Context, bucket, key string, indices []int) (map[int][]byte, error)
	// DeleteChunk removes one chunk and reports whether it was present.
	DeleteChunk(ctx context.Context, bucket string, id ChunkID) (bool, error)
	// DeleteObject removes every chunk of a key and returns how many were
	// deleted.
	DeleteObject(ctx context.Context, bucket, key string) (int, error)
	// List returns the bucket's distinct object keys, sorted.
	List(ctx context.Context, bucket string) ([]string, error)
	// Stats summarises the bucket.
	Stats(ctx context.Context, bucket string) (Stats, error)
	// Close releases the adapter's resources. The mem adapter's Close is a
	// no-op; disk flushes nothing further (writes are already durable);
	// remote drops idle connections.
	Close() error
}

// Kind names of the built-in adapters.
const (
	KindMem    = "mem"
	KindDisk   = "disk"
	KindRemote = "remote"
)

// Config selects and parameterises a blob-store adapter — the single knob
// cmds and live clusters thread through (-store mem|disk|remote).
type Config struct {
	// Kind picks the adapter: "mem" (default when empty), "disk", "remote".
	Kind string `json:"kind,omitempty"`
	// Dir is the disk adapter's root directory.
	Dir string `json:"dir,omitempty"`
	// Addr is the remote adapter's gateway address (host:port or URL).
	Addr string `json:"addr,omitempty"`
	// Latency and ErrRate wrap the opened adapter in a Chaos injector when
	// either is nonzero — per-request service delay and transient failure
	// probability. Latency encodes as integer nanoseconds in JSON, like the
	// scenario specs.
	Latency time.Duration `json:"latency,omitempty"`
	ErrRate float64       `json:"err_rate,omitempty"`
	// Seed drives the chaos injector's deterministic failure stream.
	Seed int64 `json:"seed,omitempty"`
}

// Open builds the configured adapter, applying the chaos wrapper when the
// config injects latency or failures.
func Open(cfg Config) (BlobStore, error) {
	var (
		bs  BlobStore
		err error
	)
	switch cfg.Kind {
	case "", KindMem:
		bs = NewMem()
	case KindDisk:
		if cfg.Dir == "" {
			return nil, fmt.Errorf("store: disk adapter needs a root directory")
		}
		bs, err = NewDisk(cfg.Dir)
	case KindRemote:
		if cfg.Addr == "" {
			return nil, fmt.Errorf("store: remote adapter needs a gateway address")
		}
		bs = NewRemote(cfg.Addr)
	default:
		return nil, fmt.Errorf("store: unknown adapter kind %q (want %s|%s|%s)",
			cfg.Kind, KindMem, KindDisk, KindRemote)
	}
	if err != nil {
		return nil, err
	}
	if cfg.Latency > 0 || cfg.ErrRate > 0 {
		bs = WithChaos(bs, ChaosConfig{Latency: cfg.Latency, ErrRate: cfg.ErrRate, Seed: cfg.Seed})
	}
	return bs, nil
}

// validNames rejects path-hostile bucket names so the disk layout and HTTP
// routes stay unambiguous. Object keys are escaped instead (they may hold
// arbitrary bytes); buckets are deployment-chosen identifiers.
func validBucket(bucket string) error {
	if bucket == "" {
		return fmt.Errorf("store: empty bucket name")
	}
	if strings.ContainsAny(bucket, "/\\") || bucket == "." || bucket == ".." {
		return fmt.Errorf("store: invalid bucket name %q", bucket)
	}
	return nil
}
