package store

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"github.com/agardist/agar/internal/wire"
)

// decodeJSON decodes one JSON document from r into out.
func decodeJSON(r io.Reader, out any) error {
	if err := json.NewDecoder(r).Decode(out); err != nil {
		return fmt.Errorf("store: remote: decode response: %w", err)
	}
	return nil
}

// Remote is the client adapter for an S3-style blob gateway (cmd/blob-server
// or any store.NewGateway deployment). Every call is one HTTP round trip;
// chunk payloads travel as raw bodies, batch fetches reuse the TCP
// protocol's index/size framing in headers.
type Remote struct {
	base   string
	client *http.Client
}

// NewRemote returns an adapter for the gateway at addr ("host:port" or a
// full URL).
func NewRemote(addr string) *Remote {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	return &Remote{
		base:   base,
		client: &http.Client{Timeout: 30 * time.Second},
	}
}

// chunkURL builds /v1/<bucket>/<escaped key>/<chunk>.
func (r *Remote) chunkURL(bucket string, id ChunkID) string {
	return fmt.Sprintf("%s/v1/%s/%s/%d", r.base, bucket, url.PathEscape(id.Key), id.Index)
}

func (r *Remote) keyURL(bucket, key string) string {
	return fmt.Sprintf("%s/v1/%s/%s", r.base, bucket, url.PathEscape(key))
}

// do runs one request and returns the response on 2xx; other statuses are
// drained into an error (404 -> ErrNotFound).
func (r *Remote) do(ctx context.Context, method, rawURL string, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, rawURL, rd)
	if err != nil {
		return nil, fmt.Errorf("store: remote: %w", err)
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("store: remote %s: %w", method, err)
	}
	if resp.StatusCode/100 == 2 {
		return resp, nil
	}
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, ErrNotFound
	}
	return nil, fmt.Errorf("store: remote %s %s: %s (%s)",
		method, rawURL, resp.Status, strings.TrimSpace(string(msg)))
}

// doJSON runs a request and decodes a JSON response into out.
func (r *Remote) doJSON(ctx context.Context, method, rawURL string, out any) error {
	resp, err := r.do(ctx, method, rawURL, nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decodeJSON(resp.Body, out)
}

// PutChunk implements BlobStore.
func (r *Remote) PutChunk(ctx context.Context, bucket string, id ChunkID, data []byte) error {
	resp, err := r.do(ctx, http.MethodPut, r.chunkURL(bucket, id), data)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

// GetChunk implements BlobStore.
func (r *Remote) GetChunk(ctx context.Context, bucket string, id ChunkID) ([]byte, error) {
	resp, err := r.do(ctx, http.MethodGet, r.chunkURL(bucket, id), nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("store: remote get: %w", err)
	}
	return data, nil
}

// GetChunks implements BlobStore: one round trip, however many indices.
func (r *Remote) GetChunks(ctx context.Context, bucket, key string, indices []int) (map[int][]byte, error) {
	if len(indices) == 0 {
		return map[int][]byte{}, nil
	}
	u := fmt.Sprintf("%s?indices=%s", r.keyURL(bucket, key), joinInts(indices))
	resp, err := r.do(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	idxs, err := splitInts(resp.Header.Get(HeaderBatchIndices))
	if err != nil {
		return nil, err
	}
	sizes, err := splitInts(resp.Header.Get(HeaderBatchSizes))
	if err != nil {
		return nil, err
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("store: remote batch: %w", err)
	}
	if len(idxs) == 0 && len(body) == 0 {
		return map[int][]byte{}, nil
	}
	return wire.UnpackBatch(idxs, sizes, body)
}

// DeleteChunk implements BlobStore.
func (r *Remote) DeleteChunk(ctx context.Context, bucket string, id ChunkID) (bool, error) {
	var out struct {
		Deleted bool `json:"deleted"`
	}
	if err := r.doJSON(ctx, http.MethodDelete, r.chunkURL(bucket, id), &out); err != nil {
		return false, err
	}
	return out.Deleted, nil
}

// DeleteObject implements BlobStore.
func (r *Remote) DeleteObject(ctx context.Context, bucket, key string) (int, error) {
	var out struct {
		Deleted int `json:"deleted"`
	}
	if err := r.doJSON(ctx, http.MethodDelete, r.keyURL(bucket, key), &out); err != nil {
		return 0, err
	}
	return out.Deleted, nil
}

// List implements BlobStore.
func (r *Remote) List(ctx context.Context, bucket string) ([]string, error) {
	var out struct {
		Keys []string `json:"keys"`
	}
	if err := r.doJSON(ctx, http.MethodGet, fmt.Sprintf("%s/v1/%s", r.base, bucket), &out); err != nil {
		return nil, err
	}
	return out.Keys, nil
}

// Stats implements BlobStore.
func (r *Remote) Stats(ctx context.Context, bucket string) (Stats, error) {
	var st Stats
	if err := r.doJSON(ctx, http.MethodGet, fmt.Sprintf("%s/v1/%s?stats=1", r.base, bucket), &st); err != nil {
		return Stats{}, err
	}
	return st, nil
}

// Close implements BlobStore.
func (r *Remote) Close() error {
	r.client.CloseIdleConnections()
	return nil
}
