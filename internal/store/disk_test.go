package store

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestDiskReopenAfterRestart writes through one Disk instance, reopens the
// same root as a fresh process would, and checks the rescan restored every
// completed write — contents, listing and accounting.
func TestDiskReopenAfterRestart(t *testing.T) {
	ctx := context.Background()
	root := t.TempDir()

	d1, err := NewDisk(root)
	if err != nil {
		t.Fatal(err)
	}
	payloads := map[ChunkID][]byte{
		{Key: "obj-a", Index: 0}: []byte("alpha"),
		{Key: "obj-a", Index: 7}: []byte("seventh"),
		{Key: "obj/b", Index: 1}: []byte("slash key"),
	}
	for id, data := range payloads {
		if err := d1.PutChunk(ctx, "frankfurt", id, data); err != nil {
			t.Fatal(err)
		}
	}
	if err := d1.PutChunk(ctx, "dublin", ChunkID{Key: "other", Index: 0}, []byte("x")); err != nil {
		t.Fatal(err)
	}
	d1.Close()

	d2, err := NewDisk(root)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	for id, want := range payloads {
		got, err := d2.GetChunk(ctx, "frankfurt", id)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("after reopen, %v = %q, %v (want %q)", id, got, err, want)
		}
	}
	keys, err := d2.List(ctx, "frankfurt")
	if err != nil || !reflect.DeepEqual(keys, []string{"obj-a", "obj/b"}) {
		t.Fatalf("after reopen, list = %v, %v", keys, err)
	}
	st, err := d2.Stats(ctx, "frankfurt")
	if err != nil || st.Chunks != 3 || st.Bytes != int64(len("alpha")+len("seventh")+len("slash key")) {
		t.Fatalf("after reopen, stats = %+v, %v", st, err)
	}
	if st, _ := d2.Stats(ctx, "dublin"); st.Chunks != 1 {
		t.Fatalf("after reopen, dublin stats = %+v", st)
	}
}

// TestDiskRescanSweepsTornWrites plants a stray temp file (a write the
// crash interrupted) next to a completed chunk: reopen must delete it and
// index only the completed write.
func TestDiskRescanSweepsTornWrites(t *testing.T) {
	ctx := context.Background()
	root := t.TempDir()
	d1, err := NewDisk(root)
	if err != nil {
		t.Fatal(err)
	}
	if err := d1.PutChunk(ctx, "fra", ChunkID{Key: "obj", Index: 0}, []byte("good")); err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(d1.keyDir("fra", "obj"), ".99.tmp")
	if err := os.WriteFile(torn, []byte("half-writ"), 0o644); err != nil {
		t.Fatal(err)
	}
	d1.Close()

	d2, err := NewDisk(root)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if _, err := os.Stat(torn); !os.IsNotExist(err) {
		t.Fatalf("torn write survived rescan: %v", err)
	}
	if st, _ := d2.Stats(ctx, "fra"); st.Chunks != 1 || st.Bytes != 4 {
		t.Fatalf("stats after sweep = %+v", st)
	}
	if got, err := d2.GetChunk(ctx, "fra", ChunkID{Key: "obj", Index: 0}); err != nil || !bytes.Equal(got, []byte("good")) {
		t.Fatalf("completed write lost: %q, %v", got, err)
	}
}

// TestDiskHostileNames rejects path-hostile buckets and contains hostile
// keys inside their bucket directory.
func TestDiskHostileNames(t *testing.T) {
	ctx := context.Background()
	root := t.TempDir()
	d, err := NewDisk(root)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	for _, bucket := range []string{"", "a/b", `a\b`, "..", "."} {
		if err := d.PutChunk(ctx, bucket, ChunkID{Key: "k"}, []byte("x")); err == nil {
			t.Errorf("bucket %q accepted", bucket)
		}
	}
	// A traversal-shaped key stays inside the bucket.
	evil := ChunkID{Key: "../../escape", Index: 0}
	if err := d.PutChunk(ctx, "fra", evil, []byte("contained")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "escape")); !os.IsNotExist(err) {
		t.Fatal("key escaped its bucket")
	}
	if got, err := d.GetChunk(ctx, "fra", evil); err != nil || !bytes.Equal(got, []byte("contained")) {
		t.Fatalf("hostile key round trip: %q, %v", got, err)
	}
	// Bare dot-segment keys (url.PathEscape leaves them unescaped) must be
	// contained too: "." would resolve to the bucket dir and ".." to the
	// store root — a DeleteObject there would wipe everything.
	if err := d.PutChunk(ctx, "fra", ChunkID{Key: "anchor", Index: 0}, []byte("keep")); err != nil {
		t.Fatal(err)
	}
	for _, dot := range []string{".", ".."} {
		id := ChunkID{Key: dot, Index: 0}
		if err := d.PutChunk(ctx, "fra", id, []byte("dotted")); err != nil {
			t.Fatal(err)
		}
		if _, err := os.Stat(filepath.Join(root, "0")); !os.IsNotExist(err) {
			t.Fatalf("key %q escaped to the store root", dot)
		}
		if got, err := d.GetChunk(ctx, "fra", id); err != nil || !bytes.Equal(got, []byte("dotted")) {
			t.Fatalf("key %q round trip: %q, %v", dot, got, err)
		}
		if n, err := d.DeleteObject(ctx, "fra", dot); err != nil || n != 1 {
			t.Fatalf("delete key %q: %d, %v", dot, n, err)
		}
	}
	// The other keys survived the dotted deletes.
	if got, err := d.GetChunk(ctx, "fra", ChunkID{Key: "anchor", Index: 0}); err != nil || !bytes.Equal(got, []byte("keep")) {
		t.Fatalf("dotted delete destroyed sibling keys: %q, %v", got, err)
	}
	// And they survive a reopen (rescan decodes the dot encoding).
	if err := d.PutChunk(ctx, "fra", ChunkID{Key: ".", Index: 1}, []byte("dot")); err != nil {
		t.Fatal(err)
	}
	d.Close()
	d2, err := NewDisk(root)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if got, err := d2.GetChunk(ctx, "fra", ChunkID{Key: ".", Index: 1}); err != nil || !bytes.Equal(got, []byte("dot")) {
		t.Fatalf("dotted key lost on reopen: %q, %v", got, err)
	}
	if err := d.PutChunk(ctx, "fra", ChunkID{Key: "k", Index: -1}, nil); err == nil {
		t.Error("negative chunk index accepted")
	}
	if _, err := d.GetChunk(ctx, "fra", ChunkID{Key: "k", Index: 3}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("absent chunk: %v", err)
	}
}
