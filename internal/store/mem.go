package store

import (
	"context"
	"sort"
	"sync"
)

// Mem is the in-process blob store: the exact semantics the backend's
// original hard-coded map had — copy-on-put, copy-on-get, concurrency-safe
// — generalised to named buckets. It is the default adapter everywhere.
type Mem struct {
	mu      sync.RWMutex
	buckets map[string]map[ChunkID][]byte
}

// NewMem returns an empty in-memory blob store.
func NewMem() *Mem {
	return &Mem{buckets: make(map[string]map[ChunkID][]byte)}
}

// PutChunk implements BlobStore.
func (m *Mem) PutChunk(_ context.Context, bucket string, id ChunkID, data []byte) error {
	if err := validBucket(bucket); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	b := m.buckets[bucket]
	if b == nil {
		b = make(map[ChunkID][]byte)
		m.buckets[bucket] = b
	}
	b[id] = append([]byte(nil), data...)
	return nil
}

// GetChunk implements BlobStore.
func (m *Mem) GetChunk(_ context.Context, bucket string, id ChunkID) ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	data, ok := m.buckets[bucket][id]
	if !ok {
		return nil, ErrNotFound
	}
	return append([]byte(nil), data...), nil
}

// GetChunks implements BlobStore.
func (m *Mem) GetChunks(_ context.Context, bucket, key string, indices []int) (map[int][]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make(map[int][]byte, len(indices))
	b := m.buckets[bucket]
	for _, idx := range indices {
		if data, ok := b[ChunkID{Key: key, Index: idx}]; ok {
			out[idx] = append([]byte(nil), data...)
		}
	}
	return out, nil
}

// DeleteChunk implements BlobStore.
func (m *Mem) DeleteChunk(_ context.Context, bucket string, id ChunkID) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	b := m.buckets[bucket]
	if _, ok := b[id]; !ok {
		return false, nil
	}
	delete(b, id)
	return true, nil
}

// DeleteObject implements BlobStore.
func (m *Mem) DeleteObject(_ context.Context, bucket, key string) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for id := range m.buckets[bucket] {
		if id.Key == key {
			delete(m.buckets[bucket], id)
			n++
		}
	}
	return n, nil
}

// List implements BlobStore.
func (m *Mem) List(_ context.Context, bucket string) ([]string, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	seen := make(map[string]bool)
	for id := range m.buckets[bucket] {
		seen[id.Key] = true
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out, nil
}

// Stats implements BlobStore.
func (m *Mem) Stats(_ context.Context, bucket string) (Stats, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var st Stats
	for _, data := range m.buckets[bucket] {
		st.Chunks++
		st.Bytes += int64(len(data))
	}
	return st, nil
}

// Close implements BlobStore (no-op).
func (m *Mem) Close() error { return nil }
