package store

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"github.com/agardist/agar/internal/metrics"
	"github.com/agardist/agar/internal/wire"
)

// Gateway HTTP surface (served by cmd/blob-server, spoken by the Remote
// adapter). One chunk object per URL, S3-style:
//
//	PUT    /v1/<bucket>/<key>/<chunk>            store a chunk (body = payload)
//	GET    /v1/<bucket>/<key>/<chunk>            fetch a chunk (404 when absent)
//	DELETE /v1/<bucket>/<key>/<chunk>            delete a chunk -> {"deleted":bool}
//	GET    /v1/<bucket>/<key>?indices=0,2,5      batch fetch -> X-Agar-Indices /
//	                                             X-Agar-Sizes headers + raw body
//	DELETE /v1/<bucket>/<key>                    delete an object -> {"deleted":n}
//	GET    /v1/<bucket>                          list keys -> {"keys":[...]}
//	GET    /v1/<bucket>?stats=1                  bucket stats -> {"chunks":n,"bytes":n}
//
// Object keys travel path-escaped; chunk payloads travel as raw bodies.

// Batch response headers: the chunk indices present and their byte sizes,
// comma-separated, framing the concatenated body exactly like the TCP
// protocol's mget batches.
const (
	HeaderBatchIndices = "X-Agar-Indices"
	HeaderBatchSizes   = "X-Agar-Sizes"
)

// maxChunkBody bounds one uploaded chunk, mirroring wire.MaxFrame.
const maxChunkBody = 16 << 20

// NewGateway serves the blob store over the HTTP surface above.
func NewGateway(bs BlobStore) http.Handler { return NewGatewayWith(bs, nil) }

// NewGatewayWith is NewGateway with request accounting: when reg is
// non-nil every route counts into agar_http_requests_total{op,code} and
// the agar_http_in_flight gauge tracks concurrently served requests. A
// nil registry serves the same routes uninstrumented.
func NewGatewayWith(bs BlobStore, reg *metrics.Registry) http.Handler {
	mux := http.NewServeMux()
	g := &gateway{bs: bs}
	wrap := func(op string, h http.HandlerFunc) http.HandlerFunc { return h }
	if reg != nil {
		requests := reg.NewCounterVec(metrics.NameHTTPRequests,
			"Gateway HTTP requests served, by route op and status code.", "op", "code")
		inFlight := reg.NewGauge(metrics.NameHTTPInFlight,
			"Gateway HTTP requests currently being served.")
		wrap = func(op string, h http.HandlerFunc) http.HandlerFunc {
			return func(w http.ResponseWriter, r *http.Request) {
				inFlight.Add(1)
				defer inFlight.Add(-1)
				sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
				h(sw, r)
				requests.With(op, strconv.Itoa(sw.code)).Inc()
			}
		}
	}
	mux.HandleFunc("GET /v1/{bucket}", wrap("list", g.bucket))
	mux.HandleFunc("GET /v1/{bucket}/{key}", wrap("get_batch", g.getBatch))
	mux.HandleFunc("DELETE /v1/{bucket}/{key}", wrap("delete_object", g.deleteObject))
	mux.HandleFunc("GET /v1/{bucket}/{key}/{chunk}", wrap("get_chunk", g.getChunk))
	mux.HandleFunc("PUT /v1/{bucket}/{key}/{chunk}", wrap("put_chunk", g.putChunk))
	mux.HandleFunc("DELETE /v1/{bucket}/{key}/{chunk}", wrap("delete_chunk", g.deleteChunk))
	return mux
}

// statusWriter captures the response code a handler commits to; a body
// written without an explicit WriteHeader counts as the implicit 200.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

type gateway struct{ bs BlobStore }

// fail maps adapter errors onto HTTP statuses.
func fail(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrInjected):
		status = http.StatusServiceUnavailable
	}
	http.Error(w, err.Error(), status)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// chunkID resolves the request's key and chunk index path segments.
func chunkID(r *http.Request) (ChunkID, error) {
	idx, err := strconv.Atoi(r.PathValue("chunk"))
	if err != nil || idx < 0 {
		return ChunkID{}, fmt.Errorf("store: bad chunk index %q", r.PathValue("chunk"))
	}
	return ChunkID{Key: r.PathValue("key"), Index: idx}, nil
}

func (g *gateway) bucket(w http.ResponseWriter, r *http.Request) {
	bucket := r.PathValue("bucket")
	if r.URL.Query().Get("stats") != "" {
		st, err := g.bs.Stats(r.Context(), bucket)
		if err != nil {
			fail(w, err)
			return
		}
		writeJSON(w, st)
		return
	}
	keys, err := g.bs.List(r.Context(), bucket)
	if err != nil {
		fail(w, err)
		return
	}
	if keys == nil {
		keys = []string{}
	}
	writeJSON(w, map[string][]string{"keys": keys})
}

func (g *gateway) getChunk(w http.ResponseWriter, r *http.Request) {
	id, err := chunkID(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	data, err := g.bs.GetChunk(r.Context(), r.PathValue("bucket"), id)
	if err != nil {
		fail(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data)
}

func (g *gateway) putChunk(w http.ResponseWriter, r *http.Request) {
	id, err := chunkID(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxChunkBody))
	if err != nil {
		http.Error(w, fmt.Sprintf("store: read body: %v", err), http.StatusBadRequest)
		return
	}
	if err := g.bs.PutChunk(r.Context(), r.PathValue("bucket"), id, data); err != nil {
		fail(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (g *gateway) deleteChunk(w http.ResponseWriter, r *http.Request) {
	id, err := chunkID(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ok, err := g.bs.DeleteChunk(r.Context(), r.PathValue("bucket"), id)
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, map[string]bool{"deleted": ok})
}

func (g *gateway) deleteObject(w http.ResponseWriter, r *http.Request) {
	n, err := g.bs.DeleteObject(r.Context(), r.PathValue("bucket"), r.PathValue("key"))
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, map[string]int{"deleted": n})
}

// getBatch serves a multi-chunk fetch: ?indices=0,2,5 returns whichever of
// those chunks exist, framed by the batch headers over a concatenated body.
func (g *gateway) getBatch(w http.ResponseWriter, r *http.Request) {
	indices, err := parseIndices(r.URL.Query().Get("indices"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	found, err := g.bs.GetChunks(r.Context(), r.PathValue("bucket"), r.PathValue("key"), indices)
	if err != nil {
		fail(w, err)
		return
	}
	if len(found) == 0 {
		w.WriteHeader(http.StatusOK)
		return
	}
	idxs, sizes, body, err := wire.PackBatch(found)
	if err != nil {
		fail(w, err)
		return
	}
	w.Header().Set(HeaderBatchIndices, joinInts(idxs))
	w.Header().Set(HeaderBatchSizes, joinInts(sizes))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(body)
}

// parseIndices parses a comma-separated chunk index list, bounded like the
// TCP batch ops.
func parseIndices(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("store: batch fetch needs ?indices=")
	}
	parts := strings.Split(s, ",")
	if len(parts) > wire.MaxBatchChunks {
		return nil, fmt.Errorf("store: batch of %d chunks exceeds limit %d", len(parts), wire.MaxBatchChunks)
	}
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		idx, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || idx < 0 {
			return nil, fmt.Errorf("store: bad chunk index %q", p)
		}
		out = append(out, idx)
	}
	return out, nil
}

func joinInts(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.Itoa(x)
	}
	return strings.Join(parts, ",")
}

// splitInts is joinInts' inverse; empty input yields nil.
func splitInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		x, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("store: bad batch header %q", s)
		}
		out[i] = x
	}
	return out, nil
}

// ListenAndServe runs a gateway server on addr until ctx is cancelled —
// the engine under cmd/blob-server, importable by tests.
func ListenAndServe(ctx context.Context, addr string, bs BlobStore) error {
	srv := &http.Server{Addr: addr, Handler: NewGateway(bs)}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case <-ctx.Done():
		return srv.Close()
	case err := <-errCh:
		return err
	}
}
