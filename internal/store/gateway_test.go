package store

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"github.com/agardist/agar/internal/metrics"
)

// TestGatewayRoundTrip drives the Remote adapter against a gateway over a
// disk store — the full blob-server round trip CI gates: put, get, batch,
// list, stats, delete, all over real HTTP and a real filesystem layout.
func TestGatewayRoundTrip(t *testing.T) {
	ctx := context.Background()
	disk, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewGateway(disk))
	defer srv.Close()
	remote := NewRemote(srv.URL)
	defer remote.Close()

	chunk := bytes.Repeat([]byte("agar"), 1024)
	for idx := 0; idx < 6; idx++ {
		if err := remote.PutChunk(ctx, "frankfurt", ChunkID{Key: "obj-1", Index: idx}, chunk); err != nil {
			t.Fatal(err)
		}
	}
	got, err := remote.GetChunk(ctx, "frankfurt", ChunkID{Key: "obj-1", Index: 3})
	if err != nil || !bytes.Equal(got, chunk) {
		t.Fatalf("get: %d bytes, %v", len(got), err)
	}
	if _, err := remote.GetChunk(ctx, "frankfurt", ChunkID{Key: "obj-1", Index: 99}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("absent chunk: %v", err)
	}

	found, err := remote.GetChunks(ctx, "frankfurt", "obj-1", []int{0, 2, 99})
	if err != nil {
		t.Fatal(err)
	}
	if len(found) != 2 || !bytes.Equal(found[0], chunk) || !bytes.Equal(found[2], chunk) {
		t.Fatalf("batch keys = %v", keysOf(found))
	}

	keys, err := remote.List(ctx, "frankfurt")
	if err != nil || !reflect.DeepEqual(keys, []string{"obj-1"}) {
		t.Fatalf("list = %v, %v", keys, err)
	}
	st, err := remote.Stats(ctx, "frankfurt")
	if err != nil || st.Chunks != 6 || st.Bytes != int64(6*len(chunk)) {
		t.Fatalf("stats = %+v, %v", st, err)
	}

	if ok, err := remote.DeleteChunk(ctx, "frankfurt", ChunkID{Key: "obj-1", Index: 0}); err != nil || !ok {
		t.Fatalf("delete chunk: %v %v", ok, err)
	}
	if n, err := remote.DeleteObject(ctx, "frankfurt", "obj-1"); err != nil || n != 5 {
		t.Fatalf("delete object: %d %v", n, err)
	}
	if st, _ := remote.Stats(ctx, "frankfurt"); st.Chunks != 0 {
		t.Fatalf("stats after delete = %+v", st)
	}
}

// TestGatewayChaosSurfacesInjectedFaults wraps the gateway's store in a
// chaos injector and checks the failure crosses the HTTP boundary as an
// error (not a silent miss), while latency injection delays the call.
func TestGatewayChaosSurfacesInjectedFaults(t *testing.T) {
	ctx := context.Background()
	srv := httptest.NewServer(NewGateway(WithChaos(NewMem(), ChaosConfig{ErrRate: 1})))
	defer srv.Close()
	remote := NewRemote(srv.URL)
	defer remote.Close()

	err := remote.PutChunk(ctx, "fra", ChunkID{Key: "k"}, []byte("x"))
	if err == nil || errors.Is(err, ErrNotFound) {
		t.Fatalf("injected fault surfaced as %v", err)
	}

	lat := 30 * time.Millisecond
	slow := httptest.NewServer(NewGateway(WithChaos(NewMem(), ChaosConfig{Latency: lat})))
	defer slow.Close()
	slowRemote := NewRemote(slow.URL)
	defer slowRemote.Close()
	start := time.Now()
	if err := slowRemote.PutChunk(ctx, "fra", ChunkID{Key: "k"}, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < lat {
		t.Fatalf("latency injection: call took %v, want >= %v", elapsed, lat)
	}
}

// TestGatewayRejectsBadRequests covers the HTTP edge cases the adapters
// never generate but curl can.
func TestGatewayRejectsBadRequests(t *testing.T) {
	srv := httptest.NewServer(NewGateway(NewMem()))
	defer srv.Close()

	for _, tc := range []struct {
		method, path string
		status       int
	}{
		{http.MethodGet, "/v1/fra/key/notanumber", http.StatusBadRequest},
		{http.MethodGet, "/v1/fra/key/-1", http.StatusBadRequest},
		{http.MethodGet, "/v1/fra/key", http.StatusBadRequest},           // no ?indices=
		{http.MethodGet, "/v1/fra/key?indices=a", http.StatusBadRequest}, // bad index list
		{http.MethodGet, "/v1/fra/key/0", http.StatusNotFound},           // absent chunk
		{http.MethodPost, "/v1/fra/key/0", http.StatusMethodNotAllowed},  // no POST
		{http.MethodGet, "/nope", http.StatusNotFound},                   // unknown route
	} {
		req, err := http.NewRequest(tc.method, srv.URL+tc.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s %s = %d, want %d", tc.method, tc.path, resp.StatusCode, tc.status)
		}
	}
}

func keysOf(m map[int][]byte) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestGatewayRequestMetrics pins the instrumented gateway's accounting:
// every route lands in agar_http_requests_total under its op and status
// labels, and the in-flight gauge returns to zero once requests drain.
func TestGatewayRequestMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	srv := httptest.NewServer(NewGatewayWith(NewMem(), reg))
	defer srv.Close()

	do := func(method, path string, body []byte) int {
		req, err := http.NewRequest(method, srv.URL+path, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := do(http.MethodPut, "/v1/fra/obj/0", []byte("chunk")); code != http.StatusNoContent {
		t.Fatalf("put = %d", code)
	}
	if code := do(http.MethodGet, "/v1/fra/obj/0", nil); code != http.StatusOK {
		t.Fatalf("get = %d", code)
	}
	if code := do(http.MethodGet, "/v1/fra/obj/9", nil); code != http.StatusNotFound {
		t.Fatalf("missing get = %d", code)
	}
	if code := do(http.MethodGet, "/v1/fra", nil); code != http.StatusOK {
		t.Fatalf("list = %d", code)
	}
	if code := do(http.MethodDelete, "/v1/fra/obj", nil); code != http.StatusOK {
		t.Fatalf("delete object = %d", code)
	}

	want := map[[2]string]float64{
		{"put_chunk", "204"}:     1,
		{"get_chunk", "200"}:     1,
		{"get_chunk", "404"}:     1,
		{"list", "200"}:          1,
		{"delete_object", "200"}: 1,
	}
	var inFlight *float64
	for _, f := range reg.Gather() {
		switch f.Name {
		case metrics.NameHTTPRequests:
			for _, s := range f.Samples {
				key := [2]string{s.LabelValues[0], s.LabelValues[1]}
				if got, ok := want[key]; ok {
					if s.Value != got {
						t.Errorf("%v = %v, want %v", key, s.Value, got)
					}
					delete(want, key)
				}
			}
		case metrics.NameHTTPInFlight:
			v := f.Samples[0].Value
			inFlight = &v
		}
	}
	for key := range want {
		t.Errorf("no sample for %v", key)
	}
	if inFlight == nil || *inFlight != 0 {
		t.Errorf("in-flight gauge = %v, want 0 after drain", inFlight)
	}
}
