package store

import (
	"context"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Disk is the filesystem blob store. The object layout is
//
//	<root>/<bucket>/<escaped key>/<chunk index>
//
// with object keys path-escaped so arbitrary key bytes cannot climb out of
// their bucket. Chunk writes are atomic: the payload lands in a same-dir
// temp file first and is renamed into place, so a crash mid-write leaves
// either the old chunk or a stray temp file — never a torn chunk. Open
// rescans the tree, sweeps leftover temp files, and rebuilds the in-memory
// index, so a restarted store serves exactly the completed writes.
type Disk struct {
	root string

	mu  sync.RWMutex
	idx map[string]map[string]map[int]int64 // bucket -> key -> index -> bytes

	tmpSeq atomic.Int64
}

// tmpSuffix marks in-flight chunk writes; rescan deletes stragglers.
const tmpSuffix = ".tmp"

// NewDisk opens (creating if needed) a disk blob store rooted at dir and
// rescans any existing layout.
func NewDisk(dir string) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: disk root: %w", err)
	}
	d := &Disk{root: dir, idx: make(map[string]map[string]map[int]int64)}
	if err := d.rescan(); err != nil {
		return nil, err
	}
	return d, nil
}

// Root returns the store's root directory.
func (d *Disk) Root() string { return d.root }

// rescan rebuilds the index from the on-disk layout and removes temp files
// left by interrupted writes.
func (d *Disk) rescan() error {
	buckets, err := os.ReadDir(d.root)
	if err != nil {
		return fmt.Errorf("store: rescan: %w", err)
	}
	for _, b := range buckets {
		if !b.IsDir() {
			continue
		}
		bucket := b.Name()
		keyDirs, err := os.ReadDir(filepath.Join(d.root, bucket))
		if err != nil {
			return fmt.Errorf("store: rescan %s: %w", bucket, err)
		}
		for _, kd := range keyDirs {
			if !kd.IsDir() {
				continue
			}
			key, err := url.PathUnescape(kd.Name())
			if err != nil {
				continue // not one of ours; leave it alone
			}
			dir := filepath.Join(d.root, bucket, kd.Name())
			chunks, err := os.ReadDir(dir)
			if err != nil {
				return fmt.Errorf("store: rescan %s/%s: %w", bucket, kd.Name(), err)
			}
			for _, c := range chunks {
				name := c.Name()
				if strings.HasSuffix(name, tmpSuffix) {
					os.Remove(filepath.Join(dir, name)) // torn write: sweep it
					continue
				}
				idx, err := strconv.Atoi(name)
				if err != nil || idx < 0 {
					continue
				}
				info, err := c.Info()
				if err != nil {
					return fmt.Errorf("store: rescan %s/%s/%s: %w", bucket, kd.Name(), name, err)
				}
				d.index(bucket, key)[idx] = info.Size()
			}
		}
	}
	return nil
}

// index returns (creating) the bucket/key chunk-size map. Callers hold mu.
func (d *Disk) index(bucket, key string) map[int]int64 {
	b := d.idx[bucket]
	if b == nil {
		b = make(map[string]map[int]int64)
		d.idx[bucket] = b
	}
	k := b[key]
	if k == nil {
		k = make(map[int]int64)
		b[key] = k
	}
	return k
}

// escapeKey encodes an object key as a single safe path segment.
// url.PathEscape leaves "." and ".." bare, and either would resolve keyDir
// outside the bucket (".." climbs to the store root, so DeleteObject would
// RemoveAll the whole store) — encode the dots explicitly. PathEscape never
// itself emits "%2E", so the encoding stays collision-free and
// url.PathUnescape in rescan round-trips it.
func escapeKey(key string) string {
	switch esc := url.PathEscape(key); esc {
	case ".":
		return "%2E"
	case "..":
		return "%2E%2E"
	default:
		return esc
	}
}

// keyDir returns the directory holding a key's chunks.
func (d *Disk) keyDir(bucket, key string) string {
	return filepath.Join(d.root, bucket, escapeKey(key))
}

func (d *Disk) chunkPath(bucket string, id ChunkID) string {
	return filepath.Join(d.keyDir(bucket, id.Key), strconv.Itoa(id.Index))
}

// PutChunk implements BlobStore with an atomic temp-file-and-rename write.
func (d *Disk) PutChunk(_ context.Context, bucket string, id ChunkID, data []byte) error {
	if err := validBucket(bucket); err != nil {
		return err
	}
	if id.Index < 0 {
		return fmt.Errorf("store: negative chunk index %d", id.Index)
	}
	dir := d.keyDir(bucket, id.Key)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: put %q/%d: %w", id.Key, id.Index, err)
	}
	tmp := filepath.Join(dir, fmt.Sprintf(".%d%s", d.tmpSeq.Add(1), tmpSuffix))
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("store: put %q/%d: %w", id.Key, id.Index, err)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := os.Rename(tmp, d.chunkPath(bucket, id)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: put %q/%d: %w", id.Key, id.Index, err)
	}
	d.index(bucket, id.Key)[id.Index] = int64(len(data))
	return nil
}

// GetChunk implements BlobStore.
func (d *Disk) GetChunk(_ context.Context, bucket string, id ChunkID) ([]byte, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if _, ok := d.idx[bucket][id.Key][id.Index]; !ok {
		return nil, ErrNotFound
	}
	data, err := os.ReadFile(d.chunkPath(bucket, id))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ErrNotFound
		}
		return nil, fmt.Errorf("store: get %q/%d: %w", id.Key, id.Index, err)
	}
	return data, nil
}

// GetChunks implements BlobStore.
func (d *Disk) GetChunks(ctx context.Context, bucket, key string, indices []int) (map[int][]byte, error) {
	out := make(map[int][]byte, len(indices))
	for _, idx := range indices {
		data, err := d.GetChunk(ctx, bucket, ChunkID{Key: key, Index: idx})
		if err == ErrNotFound {
			continue
		}
		if err != nil {
			return nil, err
		}
		out[idx] = data
	}
	return out, nil
}

// DeleteChunk implements BlobStore.
func (d *Disk) DeleteChunk(_ context.Context, bucket string, id ChunkID) (bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.idx[bucket][id.Key][id.Index]; !ok {
		return false, nil
	}
	if err := os.Remove(d.chunkPath(bucket, id)); err != nil && !os.IsNotExist(err) {
		return false, fmt.Errorf("store: delete %q/%d: %w", id.Key, id.Index, err)
	}
	delete(d.idx[bucket][id.Key], id.Index)
	if len(d.idx[bucket][id.Key]) == 0 {
		delete(d.idx[bucket], id.Key)
		os.Remove(d.keyDir(bucket, id.Key)) // best-effort empty-dir cleanup
	}
	return true, nil
}

// DeleteObject implements BlobStore.
func (d *Disk) DeleteObject(_ context.Context, bucket, key string) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.idx[bucket][key])
	if n == 0 {
		return 0, nil
	}
	if err := os.RemoveAll(d.keyDir(bucket, key)); err != nil {
		return 0, fmt.Errorf("store: delete object %q: %w", key, err)
	}
	delete(d.idx[bucket], key)
	return n, nil
}

// List implements BlobStore.
func (d *Disk) List(_ context.Context, bucket string) ([]string, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.idx[bucket]))
	for k := range d.idx[bucket] {
		out = append(out, k)
	}
	sort.Strings(out)
	return out, nil
}

// Stats implements BlobStore.
func (d *Disk) Stats(_ context.Context, bucket string) (Stats, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var st Stats
	for _, chunks := range d.idx[bucket] {
		for _, size := range chunks {
			st.Chunks++
			st.Bytes += size
		}
	}
	return st, nil
}

// Close implements BlobStore. Completed writes are already durable.
func (d *Disk) Close() error { return nil }
