package store

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
)

// adapters enumerates every BlobStore implementation under one shared
// conformance suite. The remote adapter runs against a real HTTP gateway
// (httptest server over a mem store), so the suite covers the full
// client/gateway round trip too.
func adapters(t *testing.T) map[string]func(t *testing.T) BlobStore {
	return map[string]func(t *testing.T) BlobStore{
		"mem": func(t *testing.T) BlobStore { return NewMem() },
		"disk": func(t *testing.T) BlobStore {
			d, err := NewDisk(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return d
		},
		"remote": func(t *testing.T) BlobStore {
			srv := httptest.NewServer(NewGateway(NewMem()))
			t.Cleanup(srv.Close)
			return NewRemote(srv.URL)
		},
	}
}

// TestConformance runs every adapter through the same behavioural contract.
func TestConformance(t *testing.T) {
	for name, open := range adapters(t) {
		t.Run(name, func(t *testing.T) {
			runConformance(t, open(t))
		})
	}
}

func runConformance(t *testing.T, bs BlobStore) {
	t.Helper()
	ctx := context.Background()
	defer bs.Close()

	id := ChunkID{Key: "obj/one:weird key", Index: 2}

	// Absent chunk: ErrNotFound; absent bucket: empty list and zero stats.
	if _, err := bs.GetChunk(ctx, "fra", id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get absent: %v", err)
	}
	if keys, err := bs.List(ctx, "fra"); err != nil || len(keys) != 0 {
		t.Fatalf("list empty bucket: %v %v", keys, err)
	}
	if st, err := bs.Stats(ctx, "fra"); err != nil || st != (Stats{}) {
		t.Fatalf("stats empty bucket: %+v %v", st, err)
	}

	// Put/get round trip with copy semantics on both sides.
	data := []byte("chunk-payload")
	if err := bs.PutChunk(ctx, "fra", id, data); err != nil {
		t.Fatal(err)
	}
	data[0] = 'X'
	got, err := bs.GetChunk(ctx, "fra", id)
	if err != nil || !bytes.Equal(got, []byte("chunk-payload")) {
		t.Fatalf("get = %q, %v", got, err)
	}
	got[0] = 'Y'
	if again, _ := bs.GetChunk(ctx, "fra", id); !bytes.Equal(again, []byte("chunk-payload")) {
		t.Fatal("store shares chunk storage with callers")
	}

	// Overwrite replaces, and buckets are isolated.
	if err := bs.PutChunk(ctx, "fra", id, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, _ := bs.GetChunk(ctx, "fra", id); !bytes.Equal(got, []byte("v2")) {
		t.Fatalf("overwrite: got %q", got)
	}
	if _, err := bs.GetChunk(ctx, "dub", id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("bucket isolation: %v", err)
	}

	// Batch fetch returns exactly the present subset.
	for _, idx := range []int{0, 5} {
		if err := bs.PutChunk(ctx, "fra", ChunkID{Key: "batch", Index: idx}, []byte{byte(idx)}); err != nil {
			t.Fatal(err)
		}
	}
	found, err := bs.GetChunks(ctx, "fra", "batch", []int{0, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	want := map[int][]byte{0: {0}, 5: {5}}
	if !reflect.DeepEqual(found, want) {
		t.Fatalf("batch = %v, want %v", found, want)
	}
	if none, err := bs.GetChunks(ctx, "fra", "nothing", []int{1, 2}); err != nil || len(none) != 0 {
		t.Fatalf("batch of absent key: %v %v", none, err)
	}

	// List is sorted distinct keys; stats count chunks and bytes.
	keys, err := bs.List(ctx, "fra")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(keys, []string{"batch", "obj/one:weird key"}) {
		t.Fatalf("list = %v", keys)
	}
	st, err := bs.Stats(ctx, "fra")
	if err != nil {
		t.Fatal(err)
	}
	if st.Chunks != 3 || st.Bytes != int64(len("v2"))+2 {
		t.Fatalf("stats = %+v", st)
	}

	// DeleteChunk reports presence exactly once.
	if ok, err := bs.DeleteChunk(ctx, "fra", id); err != nil || !ok {
		t.Fatalf("delete present: %v %v", ok, err)
	}
	if ok, err := bs.DeleteChunk(ctx, "fra", id); err != nil || ok {
		t.Fatalf("delete absent: %v %v", ok, err)
	}
	if _, err := bs.GetChunk(ctx, "fra", id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get deleted: %v", err)
	}

	// DeleteObject removes every chunk of the key and reports the count.
	if n, err := bs.DeleteObject(ctx, "fra", "batch"); err != nil || n != 2 {
		t.Fatalf("delete object: %d %v", n, err)
	}
	if n, err := bs.DeleteObject(ctx, "fra", "batch"); err != nil || n != 0 {
		t.Fatalf("delete absent object: %d %v", n, err)
	}
	if keys, _ := bs.List(ctx, "fra"); len(keys) != 0 {
		t.Fatalf("bucket not empty after deletes: %v", keys)
	}

	// Concurrent writers and readers on one bucket.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				cid := ChunkID{Key: fmt.Sprintf("par-%d", g), Index: i}
				if err := bs.PutChunk(ctx, "fra", cid, []byte{byte(g), byte(i)}); err != nil {
					t.Error(err)
					return
				}
				if _, err := bs.GetChunk(ctx, "fra", cid); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if st, _ := bs.Stats(ctx, "fra"); st.Chunks != 160 {
		t.Fatalf("after concurrent writes: %+v", st)
	}
}

func TestOpenConfig(t *testing.T) {
	if bs, err := Open(Config{}); err != nil {
		t.Fatal(err)
	} else if _, ok := bs.(*Mem); !ok {
		t.Fatalf("default adapter = %T, want *Mem", bs)
	}
	if bs, err := Open(Config{Kind: KindDisk, Dir: t.TempDir()}); err != nil {
		t.Fatal(err)
	} else if _, ok := bs.(*Disk); !ok {
		t.Fatalf("disk adapter = %T", bs)
	}
	if bs, err := Open(Config{Kind: KindRemote, Addr: "127.0.0.1:1"}); err != nil {
		t.Fatal(err)
	} else if _, ok := bs.(*Remote); !ok {
		t.Fatalf("remote adapter = %T", bs)
	}
	if bs, err := Open(Config{Kind: KindMem, ErrRate: 1}); err != nil {
		t.Fatal(err)
	} else if _, ok := bs.(*Chaos); !ok {
		t.Fatalf("chaos-wrapped adapter = %T", bs)
	}
	for _, bad := range []Config{
		{Kind: "s3"},
		{Kind: KindDisk},
		{Kind: KindRemote},
	} {
		if _, err := Open(bad); err == nil {
			t.Errorf("Open(%+v) accepted", bad)
		}
	}
}

func TestParseTier(t *testing.T) {
	if tier, err := ParseTier(""); err != nil || tier.Name != KindMem || !tier.Baseline() {
		t.Fatalf("empty tier = %+v, %v", tier, err)
	}
	for _, name := range TierNames() {
		tier, err := ParseTier(name)
		if err != nil || tier.Name != name {
			t.Fatalf("ParseTier(%q) = %+v, %v", name, tier, err)
		}
	}
	slow, _ := ParseTier("remote-slow")
	if slow.Baseline() || slow.BandwidthBps == 0 || slow.ErrRate == 0 {
		t.Fatalf("remote-slow envelope too tame: %+v", slow)
	}
	if _, err := ParseTier("glacier"); err == nil {
		t.Fatal("unknown tier accepted")
	}
}

func TestChaosInjection(t *testing.T) {
	ctx := context.Background()
	always := WithChaos(NewMem(), ChaosConfig{ErrRate: 1})
	if err := always.PutChunk(ctx, "b", ChunkID{Key: "k"}, []byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
	if always.Injected() != 1 {
		t.Fatalf("injected = %d", always.Injected())
	}

	never := WithChaos(NewMem(), ChaosConfig{ErrRate: 0})
	if err := never.PutChunk(ctx, "b", ChunkID{Key: "k"}, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if got, err := never.GetChunk(ctx, "b", ChunkID{Key: "k"}); err != nil || !bytes.Equal(got, []byte("x")) {
		t.Fatalf("passthrough get = %q, %v", got, err)
	}

	// Deterministic: two injectors with the same seed fail the same ops.
	a := WithChaos(NewMem(), ChaosConfig{ErrRate: 0.5, Seed: 42})
	b := WithChaos(NewMem(), ChaosConfig{ErrRate: 0.5, Seed: 42})
	for i := 0; i < 50; i++ {
		ea := a.PutChunk(ctx, "b", ChunkID{Key: "k", Index: i}, nil)
		eb := b.PutChunk(ctx, "b", ChunkID{Key: "k", Index: i}, nil)
		if (ea == nil) != (eb == nil) {
			t.Fatalf("op %d: seeds diverge (%v vs %v)", i, ea, eb)
		}
	}
}
