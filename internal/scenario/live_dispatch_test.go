package scenario

import (
	"strings"
	"testing"
	"time"
)

func dispatchPairSpec() Spec {
	return Spec{
		Name:          "dispatch-pair-test",
		Region:        "dublin",
		Clients:       4,
		DispatchModes: []string{"conn", "shard"},
		Phases: []Phase{
			{Name: "only", Duration: time.Minute, Workload: Workload{Kind: WorkloadZipfian, Skew: 1.2}},
		},
	}
}

func TestDispatchModesValidation(t *testing.T) {
	s := dispatchPairSpec()
	if err := s.Validate(); err != nil {
		t.Fatalf("valid pair rejected: %v", err)
	}
	s.DispatchModes = []string{"conn", "conn"}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate dispatch mode") {
		t.Fatalf("duplicate mode accepted: %v", err)
	}
	s.DispatchModes = []string{"threads"}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "unknown dispatch mode") {
		t.Fatalf("unknown mode accepted: %v", err)
	}
	s.DispatchModes = []string{""}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "empty dispatch mode") {
		t.Fatalf("empty mode accepted: %v", err)
	}
}

func TestCacheContentionDeclaresDispatchPair(t *testing.T) {
	spec, ok := Lookup("cache-contention")
	if !ok {
		t.Fatal("cache-contention missing from library")
	}
	if len(spec.DispatchModes) != 2 {
		t.Fatalf("cache-contention dispatch modes = %v, want a conn/shard pair", spec.DispatchModes)
	}
}

// TestRunLiveDispatchPair smokes the live dispatch pair end to end: both
// arms boot, every phase reports both modes with reads flowing and no
// errors, and the markdown renders the paired table.
func TestRunLiveDispatchPair(t *testing.T) {
	if testing.Short() {
		t.Skip("live dispatch pair boots two clusters")
	}
	rep, err := RunLiveDispatch(dispatchPairSpec(), LiveOptions{Ops: 48, Objects: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Arms) != 2 {
		t.Fatalf("got %d arms, want 2", len(rep.Arms))
	}
	for _, arm := range rep.Arms {
		if len(arm.Phases) != 1 {
			t.Fatalf("arm %s ran %d phases, want 1", arm.Dispatch, len(arm.Phases))
		}
		p := arm.Phases[0]
		if p.Reads == 0 || p.Throughput <= 0 {
			t.Fatalf("arm %s phase %q shows no traffic: %+v", arm.Dispatch, p.Phase, p)
		}
		if p.Errors > 0 {
			t.Fatalf("arm %s phase %q had %d errors", arm.Dispatch, p.Phase, p.Errors)
		}
	}
	if len(rep.Deltas) != 1 {
		t.Fatalf("got %d deltas, want 1", len(rep.Deltas))
	}
	if rep.Deltas[0].ConnRPS <= 0 || rep.Deltas[0].ShardRPS <= 0 {
		t.Fatalf("delta missing throughput: %+v", rep.Deltas[0])
	}
	md := rep.Markdown()
	for _, want := range []string{"Live dispatch pair", "conn reads/s", "shard reads/s", "shard vs conn"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}
