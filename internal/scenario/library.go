package scenario

import "time"

// Library returns the built-in scenario suite, in run order. Every spec
// validates; the suite covers the ROADMAP's scenario matrix: steady state,
// WAN degradation, partitions, overload, popularity shifts, region failure,
// flash crowds and cache loss.
func Library() []Spec {
	return []Spec{
		{
			Name:        "baseline",
			Description: "Steady Zipfian traffic from Frankfurt: the control arm every other scenario is read against.",
			Region:      "frankfurt",
			Phases: []Phase{
				{Name: "ramp", Duration: 2 * time.Minute, Workload: Workload{Kind: WorkloadZipfian, Skew: 1.1}},
				{Name: "steady", Duration: 4 * time.Minute, Workload: Workload{Kind: WorkloadZipfian, Skew: 1.1}},
			},
		},
		{
			Name:        "degraded-latency",
			Description: "Every WAN link out of Frankfurt slows 2.5x mid-run (a transit brownout), then recovers.",
			Region:      "frankfurt",
			Phases: []Phase{
				{Name: "normal", Duration: 2 * time.Minute, Workload: Workload{Kind: WorkloadZipfian, Skew: 1.1}},
				{Name: "degraded", Duration: 3 * time.Minute, Workload: Workload{Kind: WorkloadZipfian, Skew: 1.1},
					Events: []Event{{Kind: EventLatencyShift, From: "frankfurt", To: "*", Factor: 2.5}}},
				{Name: "recovered", Duration: 2 * time.Minute, Workload: Workload{Kind: WorkloadZipfian, Skew: 1.1}},
			},
		},
		{
			Name:        "partition",
			Description: "Frankfurt loses its link to Dublin (its nearest remote region); reads must detour to further chunks until the partition heals.",
			Region:      "frankfurt",
			Phases: []Phase{
				{Name: "normal", Duration: 2 * time.Minute, Workload: Workload{Kind: WorkloadZipfian, Skew: 1.1}},
				{Name: "partitioned", Duration: 3 * time.Minute, Workload: Workload{Kind: WorkloadZipfian, Skew: 1.1},
					Events: []Event{{Kind: EventPartition, From: "frankfurt", To: "dublin"}}},
				{Name: "healed", Duration: 2 * time.Minute, Workload: Workload{Kind: WorkloadZipfian, Skew: 1.1}},
			},
		},
		{
			Name:        "high-load",
			Description: "Sydney under overload: six client threads, skew tightening to 1.4 over a uniform scan background, and a flash crowd on the hottest keys.",
			Region:      "sydney",
			Clients:     6,
			Phases: []Phase{
				{Name: "ramp", Duration: 2 * time.Minute, Workload: Workload{Kind: WorkloadZipfian, Skew: 1.1}},
				{Name: "surge", Duration: 3 * time.Minute, Workload: Workload{Kind: WorkloadMix, Components: []MixComponent{
					{Weight: 0.85, Workload: Workload{Kind: WorkloadZipfian, Skew: 1.4}},
					{Weight: 0.15, Workload: Workload{Kind: WorkloadUniform}},
				}},
					Events: []Event{{Kind: EventFlashCrowd, HotLo: 0, HotHi: 30, HotFrac: 0.4}}},
				{Name: "cooldown", Duration: 2 * time.Minute, Workload: Workload{Kind: WorkloadZipfian, Skew: 1.1}},
			},
		},
		{
			Name:        "diurnal-shift",
			Description: "The hot set moves across the key space as the day turns: morning and evening hotspots, then a flat overnight scan.",
			Region:      "frankfurt",
			Phases: []Phase{
				{Name: "morning", Duration: 3 * time.Minute, Workload: Workload{Kind: WorkloadHotspot, HotLo: 0, HotHi: 60, HotFrac: 0.8}},
				{Name: "evening", Duration: 3 * time.Minute, Workload: Workload{Kind: WorkloadHotspot, HotLo: 150, HotHi: 210, HotFrac: 0.8}},
				{Name: "night", Duration: 2 * time.Minute, Workload: Workload{Kind: WorkloadUniform}},
			},
		},
		{
			Name:        "region-failover",
			Description: "Tokyo goes dark for three minutes as seen from Sydney (its nearest chunk source), then recovers.",
			Region:      "sydney",
			Phases: []Phase{
				{Name: "normal", Duration: 2 * time.Minute, Workload: Workload{Kind: WorkloadZipfian, Skew: 1.1}},
				{Name: "outage", Duration: 3 * time.Minute, Workload: Workload{Kind: WorkloadZipfian, Skew: 1.1},
					Events: []Event{{Kind: EventRegionOutage, Region: "tokyo"}}},
				{Name: "recovered", Duration: 2 * time.Minute, Workload: Workload{Kind: WorkloadZipfian, Skew: 1.1}},
			},
		},
		{
			Name:        "flash-crowd",
			Description: "A cold key range goes viral for ninety seconds over otherwise steady traffic, then interest collapses.",
			Region:      "frankfurt",
			Phases: []Phase{
				{Name: "calm", Duration: 2 * time.Minute, Workload: Workload{Kind: WorkloadZipfian, Skew: 1.1}},
				{Name: "spike", Duration: 2 * time.Minute, Workload: Workload{Kind: WorkloadZipfian, Skew: 1.1},
					Events: []Event{{Kind: EventFlashCrowd, At: 10 * time.Second, Duration: 90 * time.Second, HotLo: 200, HotHi: 230, HotFrac: 0.7}}},
				{Name: "settle", Duration: 2 * time.Minute, Workload: Workload{Kind: WorkloadZipfian, Skew: 1.1}},
			},
		},
		{
			Name:        "cache-contention",
			Description: "Twelve client threads from Dublin converge on one region's cache: a tight hot set that fits in cache entirely, so the run is bounded by the cache data plane rather than the WAN. Its live run pairs the server dispatch modes (per-connection loops vs per-shard worker pools) phase by phase.",
			Region:      "dublin",
			Clients:     12,
			// The live dispatch pair: the same fan-in replayed over
			// per-connection serialized loops and shard-aware worker pools.
			DispatchModes: []string{"conn", "shard"},
			Phases: []Phase{
				{Name: "warm", Duration: 2 * time.Minute, Workload: Workload{Kind: WorkloadZipfian, Skew: 1.3}},
				{Name: "hammer", Duration: 4 * time.Minute, Workload: Workload{Kind: WorkloadHotspot, HotLo: 0, HotHi: 24, HotFrac: 0.95},
					Events: []Event{{Kind: EventFlashCrowd, At: 60 * time.Second, Duration: 2 * time.Minute, HotLo: 0, HotHi: 8, HotFrac: 0.6}}},
				{Name: "cooldown", Duration: time.Minute, Workload: Workload{Kind: WorkloadZipfian, Skew: 1.1}},
			},
		},
		{
			Name:        "coop-peering",
			Description: "Frankfurt and Dublin peer their caches (§VI): both regions hammer a shared hot set, so Frankfurt reads Dublin-resident chunks at peer latency instead of crossing the WAN and spends its own slots on uncovered chunks.",
			Region:      "frankfurt",
			PeerRegions: []string{"dublin"},
			Phases: []Phase{
				{Name: "warm", Duration: 2 * time.Minute, Workload: Workload{Kind: WorkloadZipfian, Skew: 1.2}},
				{Name: "shared-hot", Duration: 4 * time.Minute, Workload: Workload{Kind: WorkloadHotspot, HotLo: 0, HotHi: 40, HotFrac: 0.85}},
				{Name: "drift", Duration: 2 * time.Minute, Workload: Workload{Kind: WorkloadHotspot, HotLo: 120, HotHi: 160, HotFrac: 0.85}},
			},
		},
		{
			Name: "backend-tier",
			Description: "The same Frankfurt workload swept across blob-store tiers: the in-memory baseline " +
				"against a slow, bandwidth-capped, occasionally failing remote tier — with a mid-run Dublin " +
				"outage forcing degraded reads through the slow tier. Measures how far the cache absorbs " +
				"backend latency (arms are labelled Arm@tier).",
			Region:     "frankfurt",
			StoreTiers: []string{"mem", "remote-slow"},
			Phases: []Phase{
				{Name: "warm", Duration: 2 * time.Minute, Workload: Workload{Kind: WorkloadZipfian, Skew: 1.1}},
				{Name: "steady", Duration: 3 * time.Minute, Workload: Workload{Kind: WorkloadZipfian, Skew: 1.1}},
				{Name: "outage", Duration: 2 * time.Minute, Workload: Workload{Kind: WorkloadZipfian, Skew: 1.1},
					Events: []Event{{Kind: EventRegionOutage, Region: "dublin"}}},
			},
		},
		{
			Name: "workload-mix-a",
			Description: "YCSB workload A (50% reads, 50% updates) on a Zipfian hot set, run coherence-paired: " +
				"every arm appears twice, once with versioned write invalidation and once as an Arm!stale twin " +
				"whose caches keep serving superseded payloads — the stale-read column prices the write path.",
			Region:    "frankfurt",
			Coherence: CoherencePaired,
			Phases: []Phase{
				{Name: "warm", Duration: 90 * time.Second, Workload: Workload{Kind: WorkloadZipfian, Skew: 1.1}},
				{Name: "update-heavy", Duration: 3 * time.Minute, Workload: Workload{Kind: WorkloadZipfian, Skew: 1.1}, Updates: 0.5},
				{Name: "read-recovery", Duration: 90 * time.Second, Workload: Workload{Kind: WorkloadZipfian, Skew: 1.1}, Updates: 0.05},
			},
		},
		{
			Name: "workload-mix-b",
			Description: "YCSB workload B (95% reads, 5% updates): mostly-read traffic where even rare writes " +
				"poison a cache that is never invalidated; paired coherence modes show how little staleness a " +
				"read-mostly mix tolerates.",
			Region:    "frankfurt",
			Coherence: CoherencePaired,
			Phases: []Phase{
				{Name: "warm", Duration: 90 * time.Second, Workload: Workload{Kind: WorkloadZipfian, Skew: 1.1}},
				{Name: "read-mostly", Duration: 4 * time.Minute, Workload: Workload{Kind: WorkloadZipfian, Skew: 1.1}, Updates: 0.05},
			},
		},
		{
			Name: "workload-mix-f",
			Description: "YCSB workload F (50% reads, 50% read-modify-writes) on a Zipfian hot set: every RMW " +
				"reads the object it is about to overwrite, so an uncoherent cache feeds its own writes stale " +
				"inputs — the worst case for skipping invalidation.",
			Region:    "frankfurt",
			Coherence: CoherencePaired,
			Phases: []Phase{
				{Name: "warm", Duration: 90 * time.Second, Workload: Workload{Kind: WorkloadZipfian, Skew: 1.1}},
				{Name: "rmw", Duration: 3 * time.Minute, Workload: Workload{Kind: WorkloadZipfian, Skew: 1.1}, RMW: 0.5},
			},
		},
		{
			Name:        "cache-crash",
			Description: "The region's cache server restarts empty ten seconds into the second phase; the run shows each policy re-warming.",
			Region:      "frankfurt",
			Phases: []Phase{
				{Name: "steady", Duration: 150 * time.Second, Workload: Workload{Kind: WorkloadZipfian, Skew: 1.1}},
				{Name: "crash", Duration: 150 * time.Second, Workload: Workload{Kind: WorkloadZipfian, Skew: 1.1},
					Events: []Event{{Kind: EventCacheCrash, At: 10 * time.Second}}},
			},
		},
	}
}

// Names lists the built-in scenario names in run order.
func Names() []string {
	lib := Library()
	out := make([]string, len(lib))
	for i, s := range lib {
		out[i] = s.Name
	}
	return out
}

// Lookup finds a built-in scenario by name.
func Lookup(name string) (Spec, bool) {
	for _, s := range Library() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}
