package scenario

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// The long-soak acceptance contract: over four virtual hours the
// baseline arm stays alert-free with no flagged drift, while the
// brownout arm's alert timeline brackets the injected window — firing
// within two samples of the brownout's start, resolved within two
// samples of its end.
func TestLongSoakAlertTimeline(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-hour virtual soak")
	}
	soak := LongSoak()
	rep, err := RunSoak(soak, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != SoakSchema {
		t.Fatalf("schema = %q, want %q", rep.Schema, SoakSchema)
	}
	if rep.VirtualMS < 2*3.6e6 {
		t.Fatalf("soak must cover at least two virtual hours, got %.0f ms", rep.VirtualMS)
	}

	base := rep.Arm("baseline")
	brown := rep.Arm("brownout")
	if base == nil || brown == nil {
		t.Fatalf("missing arm: baseline=%v brownout=%v", base != nil, brown != nil)
	}
	if base.FiringCount != 0 {
		t.Errorf("baseline arm fired %d alerts, want 0: %+v", base.FiringCount, base.Alerts)
	}
	if base.DriftFlagged != 0 {
		t.Errorf("baseline arm flagged %d drift findings, want 0: %+v", base.DriftFlagged, base.Drift)
	}
	if len(base.Drift) == 0 {
		t.Error("baseline arm ran no drift checks")
	}

	// The brownout events sit in the midday phase: phase start 1h, At 20m,
	// Duration 20m.
	brownStart := (time.Hour + 20*time.Minute).Seconds() * 1000
	brownEnd := (time.Hour + 40*time.Minute).Seconds() * 1000
	sample := rep.SampleEveryMS
	for _, rule := range []string{"read-p99-ceiling", "read-mean-ceiling", "write-p99-ceiling"} {
		offs := brown.FiringOffsets(rule)
		if len(offs) == 0 {
			t.Errorf("brownout arm never fired %s", rule)
			continue
		}
		if first := offs[0]; first < brownStart || first > brownStart+2*sample {
			t.Errorf("%s first fired at %.0f ms, want within [%0.f, %.0f]",
				rule, first, brownStart, brownStart+2*sample)
		}
		for _, off := range offs {
			if off < brownStart || off > brownEnd+2*sample {
				t.Errorf("%s fired at %.0f ms, outside the brownout window [%.0f, %.0f]",
					rule, off, brownStart, brownEnd+2*sample)
			}
		}
		if !brown.ResolvedAfter(rule) {
			t.Errorf("%s never resolved after the brownout lifted", rule)
		}
	}

	// The midday phase mutates through the versioned write path: both arms
	// must run updates there, record write latency, and — because writes
	// invalidate before they acknowledge — never serve a stale read, even
	// under the brownout. Firing transitions only record state changes, so
	// a stale-read-ceiling firing anywhere is a coherence bug.
	for _, arm := range rep.Arms {
		updates, staleWindows := 0, 0
		for _, s := range arm.Samples {
			updates += s.Updates
			if s.StaleReads > 0 {
				staleWindows++
			}
			if s.Phase == "midday" && s.Updates > 0 && s.WriteP99MS <= 0 {
				t.Errorf("arm %s midday window at %.0f ms ran %d updates with no write latency",
					arm.Arm, s.OffsetMS, s.Updates)
			}
			if s.Phase != "midday" && s.Updates != 0 {
				t.Errorf("arm %s phase %s ran %d updates, want read-only", arm.Arm, s.Phase, s.Updates)
			}
		}
		if updates == 0 {
			t.Errorf("arm %s ran no updates", arm.Arm)
		}
		if staleWindows != 0 {
			t.Errorf("arm %s served stale reads in %d windows", arm.Arm, staleWindows)
		}
		if offs := arm.FiringOffsets("stale-read-ceiling"); len(offs) != 0 {
			t.Errorf("arm %s fired stale-read-ceiling at %v", arm.Arm, offs)
		}
	}

	// Both arms cover the whole timeline with evenly spaced samples.
	for _, arm := range rep.Arms {
		if len(arm.Samples) == 0 {
			t.Fatalf("arm %s has no samples", arm.Arm)
		}
		last := arm.Samples[len(arm.Samples)-1]
		if last.OffsetMS < rep.VirtualMS-sample {
			t.Errorf("arm %s samples end at %.0f ms, want ≥ %.0f", arm.Arm, last.OffsetMS, rep.VirtualMS-sample)
		}
		if arm.TotalOps == 0 {
			t.Errorf("arm %s measured no operations", arm.Arm)
		}
	}

	// The report round-trips as JSON and renders a markdown section with
	// both arms and the alert table.
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back SoakReport
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Schema != SoakSchema || len(back.Arms) != 2 {
		t.Fatalf("round-trip lost data: %+v", back)
	}
	md := rep.Markdown()
	for _, want := range []string{"## Soak: long-soak", "baseline", "brownout", "read-p99-ceiling", "firing", "Drift"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

// Scaling a soak shrinks every duration together so the CI smoke replays
// the same shape in a fraction of the virtual time.
func TestSoakScale(t *testing.T) {
	s := LongSoak().Scale(0.25)
	if got, want := s.Spec.TotalDuration(), time.Hour; got != want {
		t.Fatalf("scaled total = %v, want %v", got, want)
	}
	if got, want := s.SampleEvery, 15*time.Second; got != want {
		t.Fatalf("scaled sample = %v, want %v", got, want)
	}
	ev := s.Spec.Phases[1].Events
	if len(ev) != 2 || ev[0].At != 5*time.Minute || ev[0].Duration != 5*time.Minute {
		t.Fatalf("scaled events = %+v", ev)
	}
}
