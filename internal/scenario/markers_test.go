package scenario

import (
	"strings"
	"testing"
)

func TestSpliceMarkedAppendsWhenAbsent(t *testing.T) {
	doc := "# Suite\n\nbody\n"
	got := SpliceMarked(doc, LoadSectionBegin, LoadSectionEnd, "sweep table")
	if !strings.HasPrefix(got, doc) {
		t.Fatalf("existing content disturbed:\n%s", got)
	}
	block, ok := ExtractMarked(got, LoadSectionBegin, LoadSectionEnd)
	if !ok {
		t.Fatal("no marked block after splice")
	}
	if want := LoadSectionBegin + "\nsweep table\n" + LoadSectionEnd; block != want {
		t.Fatalf("block = %q, want %q", block, want)
	}
}

func TestSpliceMarkedReplacesInPlace(t *testing.T) {
	doc := "head\n\n" + LoadSectionBegin + "\nold sweep\n" + LoadSectionEnd + "\n\ntail\n"
	got := SpliceMarked(doc, LoadSectionBegin, LoadSectionEnd, "new sweep\n")
	if !strings.Contains(got, "new sweep") || strings.Contains(got, "old sweep") {
		t.Fatalf("block not replaced:\n%s", got)
	}
	if !strings.HasPrefix(got, "head\n") || !strings.HasSuffix(got, "tail\n") {
		t.Fatalf("text outside the markers disturbed:\n%s", got)
	}
	if strings.Count(got, LoadSectionBegin) != 1 || strings.Count(got, LoadSectionEnd) != 1 {
		t.Fatalf("marker count wrong:\n%s", got)
	}
	// Splicing again with identical content is idempotent.
	if again := SpliceMarked(got, LoadSectionBegin, LoadSectionEnd, "new sweep\n"); again != got {
		t.Fatalf("second splice changed the doc:\n%s\nvs\n%s", again, got)
	}
}

func TestExtractMarkedIncomplete(t *testing.T) {
	if _, ok := ExtractMarked("no markers here", LoadSectionBegin, LoadSectionEnd); ok {
		t.Fatal("found a block in unmarked text")
	}
	if _, ok := ExtractMarked(LoadSectionBegin+"\ndangling", LoadSectionBegin, LoadSectionEnd); ok {
		t.Fatal("found a block with no end marker")
	}
	if _, ok := ExtractMarked(LoadSectionEnd+"\n"+LoadSectionBegin, LoadSectionBegin, LoadSectionEnd); ok {
		t.Fatal("found a block with markers out of order")
	}
}
