package scenario

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/agardist/agar/internal/client"
	"github.com/agardist/agar/internal/experiments"
	"github.com/agardist/agar/internal/geo"
	"github.com/agardist/agar/internal/monitor"
	"github.com/agardist/agar/internal/netsim"
	"github.com/agardist/agar/internal/workload"
	"github.com/agardist/agar/internal/ycsb"
)

// Soak metric names: the per-sample read-path aggregates a soak run feeds
// its monitor store, labelled {arm}. Rules and drift checks in a SoakSpec
// reference these.
const (
	MetricSoakHitRatio   = "soak_hit_ratio"
	MetricSoakReadMeanMS = "soak_read_mean_ms"
	MetricSoakReadP99MS  = "soak_read_p99_ms"
	MetricSoakErrorRate  = "soak_error_rate"
	// MetricSoakStaleReads counts reads in the window that returned a
	// payload the soak's own writes had superseded — only emitted (with
	// MetricSoakWriteP99MS) when the soak spec has update/RMW phases.
	MetricSoakStaleReads = "soak_stale_reads"
	// MetricSoakWriteP99MS is the window's p99 write latency.
	MetricSoakWriteP99MS = "soak_write_p99_ms"
)

// SoakSpec declares a long-soak run: a multi-phase scenario played for
// hours of virtual time, sliced into fixed sample windows whose read-path
// aggregates stream through the monitor's rule evaluator as they happen
// and through its drift detector at the end. Two arms run the same
// timeline on the Agar strategy: "baseline" with every chaos event
// stripped, and "brownout" with the spec's events live — so an alert or a
// drift flag on the brownout arm that the baseline arm never shows is
// attributable to the injected chaos, not to the workload.
type SoakSpec struct {
	Spec Spec `json:"spec"`
	// SampleEvery is the virtual-time width of one sample window (default
	// one minute); each window contributes one point per soak metric.
	SampleEvery time.Duration `json:"sample_every,omitempty"`
	// OpsPerSample caps the measured reads per sample window (default 120).
	OpsPerSample int `json:"ops_per_sample,omitempty"`
	// Rules are evaluated at every sample boundary on the arm's own store.
	Rules []monitor.Rule `json:"rules,omitempty"`
	// Drift checks run over the whole timeline after the arm finishes.
	Drift []monitor.DriftCheck `json:"drift,omitempty"`
}

func (s SoakSpec) withDefaults() SoakSpec {
	if s.SampleEvery <= 0 {
		s.SampleEvery = time.Minute
	}
	if s.OpsPerSample <= 0 {
		s.OpsPerSample = 120
	}
	return s
}

// SoakSample is one sample window's read-path aggregate.
type SoakSample struct {
	// OffsetMS is the window's end, in virtual milliseconds from the
	// measurement epoch.
	OffsetMS float64 `json:"offset_ms"`
	Phase    string  `json:"phase"`
	Ops      int     `json:"ops"`
	HitRatio float64 `json:"hit_ratio"`
	MeanMS   float64 `json:"mean_ms"`
	P99MS    float64 `json:"p99_ms"`
	// ErrorRate is failed reads over measured reads in the window.
	ErrorRate float64 `json:"error_rate"`
	// Updates, StaleReads and WriteP99MS carry the window's mutation-side
	// aggregates for soaks with update/RMW phases.
	Updates    int     `json:"updates,omitempty"`
	StaleReads int     `json:"stale_reads,omitempty"`
	WriteP99MS float64 `json:"write_p99_ms,omitempty"`
}

// SoakAlert is one rule transition on the soak timeline.
type SoakAlert struct {
	Rule string `json:"rule"`
	// State is "firing" or "ok" (resolved).
	State string `json:"state"`
	// OffsetMS stamps the transition in virtual milliseconds from the
	// measurement epoch.
	OffsetMS float64 `json:"offset_ms"`
	Value    float64 `json:"value,omitempty"`
}

// SoakArmReport is one arm's full soak outcome.
type SoakArmReport struct {
	Arm      string                 `json:"arm"`
	Samples  []SoakSample           `json:"samples"`
	Alerts   []SoakAlert            `json:"alerts,omitempty"`
	Drift    []monitor.DriftFinding `json:"drift,omitempty"`
	TotalOps int                    `json:"total_ops"`
	// FiringCount counts firing transitions (resolves excluded).
	FiringCount int `json:"firing_count"`
	// DriftFlagged counts drift findings whose Flagged is set.
	DriftFlagged int `json:"drift_flagged"`
}

// FiringOffsets returns the virtual offsets (ms) of the named rule's
// firing transitions, in timeline order.
func (a SoakArmReport) FiringOffsets(rule string) []float64 {
	var out []float64
	for _, al := range a.Alerts {
		if al.Rule == rule && al.State == string(monitor.StateFiring) {
			out = append(out, al.OffsetMS)
		}
	}
	return out
}

// ResolvedAfter reports whether the named rule's last transition on the
// timeline is a resolve — the alert did not stay stuck firing.
func (a SoakArmReport) ResolvedAfter(rule string) bool {
	last := ""
	for _, al := range a.Alerts {
		if al.Rule == rule {
			last = al.State
		}
	}
	return last == string(monitor.StateOK)
}

// SoakReport is the BENCH_soak.json document.
type SoakReport struct {
	Schema      string `json:"schema"`
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	Region      string `json:"region"`
	// VirtualMS is the soak's total virtual length; SampleEveryMS the
	// sample window width.
	VirtualMS     float64         `json:"virtual_ms"`
	SampleEveryMS float64         `json:"sample_every_ms"`
	OpsPerSample  int             `json:"ops_per_sample"`
	Seed          int64           `json:"seed"`
	Rules         []monitor.Rule  `json:"rules"`
	Arms          []SoakArmReport `json:"arms"`
	ElapsedMS     float64         `json:"elapsed_ms"`
}

// Arm returns the named arm's report, nil when absent.
func (r *SoakReport) Arm(name string) *SoakArmReport {
	for i := range r.Arms {
		if r.Arms[i].Arm == name {
			return &r.Arms[i]
		}
	}
	return nil
}

// SoakSchema is the BENCH_soak.json schema identifier.
const SoakSchema = "agar/soak-report/v1"

// stripEvents returns a copy of the spec with every chaos event removed —
// the soak's baseline arm.
func stripEvents(spec Spec) Spec {
	out := spec
	out.Phases = make([]Phase, len(spec.Phases))
	for i, p := range spec.Phases {
		np := p
		np.Events = nil
		out.Phases[i] = np
	}
	return out
}

// RunSoak plays the soak's two arms and assembles the report. Both arms
// share one loaded deployment (like Run) and replay identical seeded
// workloads, so their sample series pair window by window.
func RunSoak(s SoakSpec, opts Options) (*SoakReport, error) {
	s = s.withDefaults()
	if err := s.Spec.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	region := geo.Frankfurt
	if s.Spec.Region != "" {
		region, _ = geo.ParseRegion(s.Spec.Region)
	}

	params := experiments.DefaultParams()
	params.NumObjects = s.Spec.objects()
	params.ObjectBytes = opts.ObjectBytes
	params.Seed = opts.Seed
	params.Solver = opts.Solver
	if s.Spec.Clients > 0 {
		params.Clients = s.Spec.Clients
	}
	d, err := experiments.NewDeployment(params)
	if err != nil {
		return nil, fmt.Errorf("soak %q: %w", s.Spec.Name, err)
	}

	start := time.Now()
	rep := &SoakReport{
		Schema:        SoakSchema,
		Name:          s.Spec.Name,
		Description:   s.Spec.Description,
		Region:        region.String(),
		VirtualMS:     float64(s.Spec.TotalDuration()) / float64(time.Millisecond),
		SampleEveryMS: float64(s.SampleEvery) / float64(time.Millisecond),
		OpsPerSample:  s.OpsPerSample,
		Seed:          opts.Seed,
		Rules:         s.Rules,
	}
	arms := []struct {
		name string
		spec Spec
	}{
		{"baseline", stripEvents(s.Spec)},
		{"brownout", s.Spec},
	}
	for _, arm := range arms {
		ar, err := soakArm(d, arm.spec, s, opts, arm.name, region)
		if err != nil {
			return nil, fmt.Errorf("soak %q arm %s: %w", s.Spec.Name, arm.name, err)
		}
		rep.Arms = append(rep.Arms, *ar)
	}
	rep.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	return rep, nil
}

// soakArm plays one arm's timeline in sample-window slices, feeding each
// window's aggregates through the arm's own monitor store and evaluator.
func soakArm(d *experiments.Deployment, spec Spec, s SoakSpec, opts Options, armName string, region geo.RegionID) (*SoakArmReport, error) {
	cacheMB := spec.CacheMB
	if cacheMB <= 0 {
		cacheMB = 10
	}
	clients := d.Params.Clients

	clock := netsim.NewVirtualClock(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	sampler := netsim.NewSampler(d.Matrix, d.Params.Jitter, opts.Seed)
	env := d.Env(sampler)
	tiers, _ := spec.storeTiers()
	tier := tiers[0]
	if !tier.Baseline() {
		env.StoreLatency = tier.Latency
		env.StoreErrRate = tier.ErrRate
		if tier.BandwidthBps > 0 {
			env.ChunkBytes = d.PaperChunkBytes()
			sampler.CapBandwidth(netsim.AnyRegion, netsim.AnyRegion, tier.BandwidthBps)
		}
	}
	if env.ChunkBytes == 0 && spec.hasBandwidthCaps() {
		env.ChunkBytes = d.PaperChunkBytes()
	}
	arm := experiments.Strategy{Kind: experiments.StratAgar}
	reader, node, err := d.NewReader(arm, env, region, cacheMB, opts.Seed)
	if err != nil {
		return nil, err
	}

	n := spec.objects()
	if opts.WarmupOps > 0 {
		if _, err := ycsb.Run(ycsb.RunConfig{
			Reader:     reader,
			Generator:  spec.Phases[0].Workload.generator(n, opts.Seed+101),
			Operations: opts.WarmupOps,
			Clock:      clock,
			Node:       node,
			Clients:    clients,
		}); err != nil {
			return nil, fmt.Errorf("warm-up: %w", err)
		}
	}

	epoch := clock.Now()
	comp := compile(spec, epoch)
	sampler.SetChaos(clock, comp.schedule)
	defer sampler.SetChaos(nil, nil)
	clearCache := cacheClearer(reader, node)

	// Mutating soaks get the same write path as scenario runs: coherent
	// (invalidating) unless the spec opts out, with stale reads judged
	// against the arm's own writes.
	var mut *mutator
	if spec.hasUpdates() {
		var invs []client.Invalidator
		if spec.Coherence != CoherenceNone {
			if c := armCache(reader, node); c != nil {
				invs = append(invs, c)
			}
		}
		mut = newMutator(env, region, opts.ObjectBytes, invs...)
	}

	// The arm's monitor side: a store sized to hold every sample of the
	// whole soak, and an evaluator replaying the rule set at each window.
	slices := int(spec.TotalDuration()/s.SampleEvery) + len(spec.Phases) + 8
	store := monitor.NewStore(slices)
	eval := monitor.NewEvaluator(store, s.Rules)
	labels := map[string]string{"arm": armName}

	report := &SoakArmReport{Arm: armName}
	var elapsed time.Duration
	for i, p := range spec.Phases {
		phaseEnd := epoch.Add(elapsed + p.Duration)
		elapsed += p.Duration
		var gen workload.Generator = p.Workload.generator(n, opts.Seed+int64(i)*1009+7)
		if len(comp.flash[i]) > 0 {
			gen = &flashGen{
				clock:   clock,
				epoch:   epoch,
				base:    gen,
				windows: comp.flash[i],
				rng:     rand.New(rand.NewSource(opts.Seed + int64(i)*31 + 13)),
			}
		}
		var beforeOp func(time.Time)
		if crashes := comp.crashes[i]; len(crashes) > 0 {
			beforeOp = func(now time.Time) {
				off := now.Sub(epoch)
				for _, c := range crashes {
					if !c.fired && off >= c.at {
						c.fired = true
						if clearCache != nil {
							clearCache()
						}
					}
				}
			}
		}
		for clock.Now().Before(phaseEnd) {
			sliceEnd := clock.Now().Add(s.SampleEvery)
			if sliceEnd.After(phaseEnd) {
				sliceEnd = phaseEnd
			}
			runCfg := ycsb.RunConfig{
				Reader:     reader,
				Generator:  gen,
				Operations: s.OpsPerSample,
				Clock:      clock,
				Node:       node,
				Clients:    clients,
				Deadline:   sliceEnd,
				BeforeOp:   beforeOp,
			}
			if mut != nil {
				runCfg.UpdateFrac = p.Updates
				runCfg.RMWFrac = p.RMW
				runCfg.Update = mut.update
				runCfg.Verify = mut.verify
				runCfg.MixSeed = opts.Seed + int64(i)*389 + 23
			}
			res, err := ycsb.Run(runCfg)
			if err != nil {
				return nil, fmt.Errorf("phase %q: %w", p.Name, err)
			}
			// The op cap may end the window early; jump to its boundary so
			// sample timestamps stay evenly spaced and later event windows
			// arrive on schedule.
			if now := clock.Now(); now.Before(sliceEnd) {
				clock.Advance(sliceEnd.Sub(now))
			}
			t := clock.Now()
			errRate := 0.0
			if res.Operations > 0 {
				errRate = float64(res.Errors) / float64(res.Operations)
			}
			store.Append(MetricSoakHitRatio, labels, t, res.HitRatio())
			store.Append(MetricSoakReadMeanMS, labels, t, float64(res.Mean)/float64(time.Millisecond))
			store.Append(MetricSoakReadP99MS, labels, t, float64(res.P99)/float64(time.Millisecond))
			store.Append(MetricSoakErrorRate, labels, t, errRate)
			writeP99MS := 0.0
			if mut != nil {
				writeP99MS = float64(res.UpdateP99) / float64(time.Millisecond)
				store.Append(MetricSoakStaleReads, labels, t, float64(res.StaleReads))
				store.Append(MetricSoakWriteP99MS, labels, t, writeP99MS)
			}
			off := float64(t.Sub(epoch)) / float64(time.Millisecond)
			for _, a := range eval.Eval(t) {
				sa := SoakAlert{Rule: a.Rule, State: string(a.State), OffsetMS: off, Value: a.Value}
				report.Alerts = append(report.Alerts, sa)
				if a.State == monitor.StateFiring {
					report.FiringCount++
				}
			}
			report.Samples = append(report.Samples, SoakSample{
				OffsetMS:   off,
				Phase:      p.Name,
				Ops:        res.Operations,
				HitRatio:   res.HitRatio(),
				MeanMS:     float64(res.Mean) / float64(time.Millisecond),
				P99MS:      float64(res.P99) / float64(time.Millisecond),
				ErrorRate:  errRate,
				Updates:    res.Updates,
				StaleReads: res.StaleReads,
				WriteP99MS: writeP99MS,
			})
			report.TotalOps += res.Operations
		}
		for _, c := range comp.crashes[i] {
			if !c.fired {
				c.fired = true
				if clearCache != nil {
					clearCache()
				}
			}
		}
	}
	report.Drift = monitor.DetectDrift(store, s.Drift, epoch, clock.Now())
	for _, f := range report.Drift {
		if f.Flagged {
			report.DriftFlagged++
		}
	}
	return report, nil
}
