package scenario

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"github.com/agardist/agar/internal/stats"
	"github.com/agardist/agar/internal/ycsb"
)

// ReportSchema versions the JSON layout of a scenario report.
const ReportSchema = "agar/scenario-report/v1"

// ArmPhase is one arm's metrics over one phase.
type ArmPhase struct {
	Arm         string  `json:"arm"`
	Ops         int     `json:"ops"`
	Errors      int     `json:"errors"`
	MeanMS      float64 `json:"mean_ms"`
	P50MS       float64 `json:"p50_ms"`
	P95MS       float64 `json:"p95_ms"`
	P99MS       float64 `json:"p99_ms"`
	MaxMS       float64 `json:"max_ms"`
	HitRatio    float64 `json:"hit_ratio"`
	FullHits    int     `json:"full_hits"`
	PartialHits int     `json:"partial_hits"`
	Misses      int     `json:"misses"`
	Reconfigs   int     `json:"reconfigs"`
	// PeerChunks totals chunks served by cooperative peer caches (only
	// nonzero for the agar arm of peered scenarios).
	PeerChunks int `json:"peer_chunks,omitempty"`
	// Updates counts measured mutations in update/RMW phases;
	// UpdateErrors the failed ones.
	Updates      int `json:"updates,omitempty"`
	UpdateErrors int `json:"update_errors,omitempty"`
	// StaleReads counts successful reads that returned a payload the
	// run's own writes had already superseded — zero on every coherent
	// arm, the headline damage number on "!stale" arms.
	StaleReads int `json:"stale_reads,omitempty"`
	// UpdateMeanMS and UpdateP99MS summarise mutation latencies.
	UpdateMeanMS float64 `json:"update_mean_ms,omitempty"`
	UpdateP99MS  float64 `json:"update_p99_ms,omitempty"`
}

// PhaseReport is one phase across every arm.
type PhaseReport struct {
	Name      string     `json:"name"`
	DurationS float64    `json:"duration_s"`
	Workload  Workload   `json:"workload"`
	Events    []Event    `json:"events,omitempty"`
	Arms      []ArmPhase `json:"arms"`
}

// ArmTotal aggregates one arm over the whole scenario. Mean is
// ops-weighted across phases; P99MS is the worst phase's p99.
type ArmTotal struct {
	Arm      string  `json:"arm"`
	Ops      int     `json:"ops"`
	Errors   int     `json:"errors"`
	MeanMS   float64 `json:"mean_ms"`
	P99MS    float64 `json:"p99_ms"`
	HitRatio float64 `json:"hit_ratio"`
	// Updates and StaleReads total the arm's mutations and stale reads
	// over every phase (mutating scenarios only).
	Updates    int `json:"updates,omitempty"`
	StaleReads int `json:"stale_reads,omitempty"`
}

// Delta is a paired comparison of Agar's mean latency against another arm
// over one phase: negative percentages mean Agar was faster.
type Delta struct {
	Phase    string  `json:"phase"`
	Arm      string  `json:"arm"`
	AgarMS   float64 `json:"agar_ms"`
	ArmMS    float64 `json:"arm_ms"`
	DeltaPct float64 `json:"delta_pct"`
}

// Report is the machine-readable outcome of one scenario run.
type Report struct {
	Schema      string   `json:"schema"`
	Scenario    string   `json:"scenario"`
	Description string   `json:"description,omitempty"`
	Region      string   `json:"region"`
	PeerRegions []string `json:"peer_regions,omitempty"`
	// BackendStore and StoreTiers echo the spec's blob-store tier
	// selection; tier-swept runs carry "Arm@tier" labels in Arms.
	BackendStore string   `json:"backend_store,omitempty"`
	StoreTiers   []string `json:"store_tiers,omitempty"`
	// Coherence echoes the spec's coherence mode for mutating scenarios;
	// "paired" runs carry "Arm!stale" twins in Arms.
	Coherence string        `json:"coherence,omitempty"`
	Seed      int64         `json:"seed"`
	Arms      []string      `json:"arms"`
	Phases    []PhaseReport `json:"phases"`
	Totals    []ArmTotal    `json:"totals"`
	Deltas    []Delta       `json:"deltas,omitempty"`
	ElapsedMS float64       `json:"elapsed_ms"`
}

// buildReport folds per-arm-run per-phase results into the report layout.
// labels name the arm runs ("Agar", or "Agar@remote-slow" in a tier
// sweep); agarIdx is the delta baseline run, -1 when no Agar arm ran.
func buildReport(spec Spec, region string, labels []string, agarIdx int, perArm [][]ycsb.Result, opts Options) *Report {
	rep := &Report{
		Schema:       ReportSchema,
		Scenario:     spec.Name,
		Description:  spec.Description,
		Region:       region,
		PeerRegions:  spec.PeerRegions,
		BackendStore: spec.BackendStore,
		StoreTiers:   spec.StoreTiers,
		Coherence:    spec.Coherence,
		Seed:         opts.Seed,
		Arms:         labels,
	}

	for pi, p := range spec.Phases {
		pr := PhaseReport{
			Name:      p.Name,
			DurationS: p.Duration.Seconds(),
			Workload:  p.Workload,
			Events:    p.Events,
		}
		for ai := range labels {
			r := perArm[ai][pi]
			pr.Arms = append(pr.Arms, ArmPhase{
				Arm:          labels[ai],
				Ops:          r.Operations,
				Errors:       r.Errors,
				MeanMS:       stats.MS(r.Mean),
				P50MS:        stats.MS(r.P50),
				P95MS:        stats.MS(r.P95),
				P99MS:        stats.MS(r.P99),
				MaxMS:        stats.MS(r.Max),
				HitRatio:     r.HitRatio(),
				FullHits:     r.FullHits,
				PartialHits:  r.PartialHits,
				Misses:       r.Misses,
				Reconfigs:    r.Reconfigs,
				PeerChunks:   r.PeerChunks,
				Updates:      r.Updates,
				UpdateErrors: r.UpdateErrors,
				StaleReads:   r.StaleReads,
				UpdateMeanMS: stats.MS(r.UpdateMean),
				UpdateP99MS:  stats.MS(r.UpdateP99),
			})
		}
		rep.Phases = append(rep.Phases, pr)
	}

	// Totals: means weighted by the reads that produced latency samples
	// (errored reads carry no latency), summed hit classes over all
	// requests, worst-phase p99.
	for ai := range labels {
		t := ArmTotal{Arm: labels[ai]}
		var weighted float64
		hits, measured := 0, 0
		for _, r := range perArm[ai] {
			t.Ops += r.Operations
			t.Errors += r.Errors
			t.Updates += r.Updates
			t.StaleReads += r.StaleReads
			n := r.Operations - r.Errors
			measured += n
			weighted += stats.MS(r.Mean) * float64(n)
			hits += r.FullHits + r.PartialHits
			if p99 := stats.MS(r.P99); p99 > t.P99MS {
				t.P99MS = p99
			}
		}
		if measured > 0 {
			t.MeanMS = weighted / float64(measured)
		}
		if t.Ops > 0 {
			t.HitRatio = float64(hits) / float64(t.Ops)
		}
		rep.Totals = append(rep.Totals, t)
	}

	// Paired deltas: the baseline Agar run (first tier) against every other
	// arm run, per phase — in a tier sweep this includes Agar on the other
	// tiers, which is exactly the "what does the slow tier cost" number.
	if agarIdx >= 0 {
		for pi, p := range spec.Phases {
			agarMS := stats.MS(perArm[agarIdx][pi].Mean)
			for ai := range labels {
				if ai == agarIdx {
					continue
				}
				armMS := stats.MS(perArm[ai][pi].Mean)
				d := Delta{Phase: p.Name, Arm: labels[ai], AgarMS: agarMS, ArmMS: armMS}
				if armMS > 0 {
					d.DeltaPct = (agarMS - armMS) / armMS * 100
				}
				rep.Deltas = append(rep.Deltas, d)
			}
		}
	}
	return rep
}

// mutating reports whether any arm ran measured updates — the switch for
// the update/stale-read report columns.
func (r *Report) mutating() bool {
	for _, p := range r.Phases {
		for _, a := range p.Arms {
			if a.Updates > 0 {
				return true
			}
		}
	}
	return false
}

// JSON renders the report as indented JSON.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Markdown renders the human-readable summary: per-phase tables plus the
// paired delta matrix.
func (r *Report) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## Scenario: %s\n\n", r.Scenario)
	if r.Description != "" {
		fmt.Fprintf(&b, "%s\n\n", r.Description)
	}
	fmt.Fprintf(&b, "region `%s`", r.Region)
	if len(r.PeerRegions) > 0 {
		fmt.Fprintf(&b, " · peers: %s", strings.Join(r.PeerRegions, ", "))
	}
	if r.BackendStore != "" {
		fmt.Fprintf(&b, " · store tier: %s", r.BackendStore)
	}
	if len(r.StoreTiers) > 0 {
		fmt.Fprintf(&b, " · store tiers: %s", strings.Join(r.StoreTiers, ", "))
	}
	fmt.Fprintf(&b, " · seed %d · arms: %s\n", r.Seed, strings.Join(r.Arms, ", "))

	// Peered scenarios get a peer-chunk column — driven by the spec, not
	// the results, so a mesh serving zero chunks shows a suspicious 0
	// instead of silently dropping the column. Mutating scenarios get the
	// update and stale-read columns on the same principle: a coherent arm's
	// honest 0 stale reads is the result.
	peered := len(r.PeerRegions) > 0
	mutating := r.mutating()
	for _, p := range r.Phases {
		fmt.Fprintf(&b, "\n### Phase %s (%.0fs", p.Name, p.DurationS)
		fmt.Fprintf(&b, ", %s", p.Workload.Kind)
		for _, e := range p.Events {
			fmt.Fprintf(&b, ", %s@%s", e.Kind, e.At.Round(time.Second))
		}
		b.WriteString(")\n\n")
		if mutating {
			b.WriteString("| arm | ops | mean | p99 | hit ratio | updates | upd p99 | stale reads | errors |\n")
			b.WriteString("|---|---:|---:|---:|---:|---:|---:|---:|---:|\n")
			for _, a := range p.Arms {
				fmt.Fprintf(&b, "| %s | %d | %.0f ms | %.0f ms | %.3f | %d | %.0f ms | %d | %d |\n",
					a.Arm, a.Ops, a.MeanMS, a.P99MS, a.HitRatio, a.Updates, a.UpdateP99MS, a.StaleReads, a.Errors+a.UpdateErrors)
			}
			continue
		}
		if peered {
			b.WriteString("| arm | ops | mean | p50 | p95 | p99 | hit ratio | peer chunks | errors |\n")
			b.WriteString("|---|---:|---:|---:|---:|---:|---:|---:|---:|\n")
			for _, a := range p.Arms {
				fmt.Fprintf(&b, "| %s | %d | %.0f ms | %.0f ms | %.0f ms | %.0f ms | %.3f | %d | %d |\n",
					a.Arm, a.Ops, a.MeanMS, a.P50MS, a.P95MS, a.P99MS, a.HitRatio, a.PeerChunks, a.Errors)
			}
			continue
		}
		b.WriteString("| arm | ops | mean | p50 | p95 | p99 | hit ratio | errors |\n")
		b.WriteString("|---|---:|---:|---:|---:|---:|---:|---:|\n")
		for _, a := range p.Arms {
			fmt.Fprintf(&b, "| %s | %d | %.0f ms | %.0f ms | %.0f ms | %.0f ms | %.3f | %d |\n",
				a.Arm, a.Ops, a.MeanMS, a.P50MS, a.P95MS, a.P99MS, a.HitRatio, a.Errors)
		}
	}

	b.WriteString("\n### Totals\n\n")
	if mutating {
		b.WriteString("| arm | ops | mean | worst p99 | hit ratio | updates | stale reads | errors |\n")
		b.WriteString("|---|---:|---:|---:|---:|---:|---:|---:|\n")
		for _, t := range r.Totals {
			fmt.Fprintf(&b, "| %s | %d | %.0f ms | %.0f ms | %.3f | %d | %d | %d |\n",
				t.Arm, t.Ops, t.MeanMS, t.P99MS, t.HitRatio, t.Updates, t.StaleReads, t.Errors)
		}
	} else {
		b.WriteString("| arm | ops | mean | worst p99 | hit ratio | errors |\n")
		b.WriteString("|---|---:|---:|---:|---:|---:|\n")
		for _, t := range r.Totals {
			fmt.Fprintf(&b, "| %s | %d | %.0f ms | %.0f ms | %.3f | %d |\n",
				t.Arm, t.Ops, t.MeanMS, t.P99MS, t.HitRatio, t.Errors)
		}
	}

	if len(r.Deltas) > 0 {
		b.WriteString("\n### Paired deltas (Agar mean latency vs arm; negative = Agar faster)\n\n")
		// One row per phase, one column per non-Agar arm.
		cols := []string{}
		seen := map[string]bool{}
		for _, d := range r.Deltas {
			if !seen[d.Arm] {
				seen[d.Arm] = true
				cols = append(cols, d.Arm)
			}
		}
		fmt.Fprintf(&b, "| phase | %s |\n", strings.Join(cols, " | "))
		b.WriteString("|---|" + strings.Repeat("---:|", len(cols)) + "\n")
		byPhase := map[string]map[string]Delta{}
		order := []string{}
		for _, d := range r.Deltas {
			if byPhase[d.Phase] == nil {
				byPhase[d.Phase] = map[string]Delta{}
				order = append(order, d.Phase)
			}
			byPhase[d.Phase][d.Arm] = d
		}
		for _, phase := range order {
			fmt.Fprintf(&b, "| %s |", phase)
			for _, c := range cols {
				d, ok := byPhase[phase][c]
				if !ok || d.ArmMS == 0 {
					b.WriteString(" — |")
					continue
				}
				fmt.Fprintf(&b, " %+.1f%% |", d.DeltaPct)
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}
