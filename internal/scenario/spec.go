// Package scenario is the chaos and benchmark orchestration subsystem: it
// declares multi-phase experiment scenarios (workload mixes, key-popularity
// shifts, and chaos events such as latency degradation, partitions, region
// outages, cache crashes and flash crowds), executes them on the in-process
// simulator's virtual clock for every cache-policy arm (Agar knapsack, LRU,
// LFU, pinned-fixed, backend), and reports per-phase/per-arm latency and
// hit-ratio metrics as JSON and markdown with paired deltas.
//
// A Spec is pure data: phases play back on a virtual timeline, so "five
// minutes" of scenario time costs only the operations that fit in it. Chaos
// events compile onto a netsim.Schedule, making them first-class network
// conditions rather than test hacks.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/agardist/agar/internal/geo"
	"github.com/agardist/agar/internal/live"
	"github.com/agardist/agar/internal/netsim"
	"github.com/agardist/agar/internal/store"
)

// WorkloadKind names a key-popularity distribution.
type WorkloadKind string

// Workload kinds.
const (
	// WorkloadZipfian is the paper's default YCSB-style distribution.
	WorkloadZipfian WorkloadKind = "zipfian"
	// WorkloadScrambled is Zipfian popularity scattered over the key space.
	WorkloadScrambled WorkloadKind = "scrambled-zipfian"
	// WorkloadUniform draws keys uniformly.
	WorkloadUniform WorkloadKind = "uniform"
	// WorkloadHotspot sends HotFrac of traffic into the key range
	// [HotLo, HotHi) and the rest uniformly over the whole space.
	WorkloadHotspot WorkloadKind = "hotspot"
	// WorkloadLatest skews towards the most recently inserted keys.
	WorkloadLatest WorkloadKind = "latest"
	// WorkloadMix draws each request from one of its weighted component
	// workloads — e.g. 80% Zipfian reads over a 20% uniform scan.
	WorkloadMix WorkloadKind = "mix"
)

// Workload declares one phase's request distribution.
type Workload struct {
	Kind WorkloadKind `json:"kind"`
	// Skew is the Zipfian exponent (zipfian, scrambled-zipfian, latest).
	Skew float64 `json:"skew,omitempty"`
	// HotFrac, HotLo, HotHi parameterise the hotspot distribution.
	HotFrac float64 `json:"hot_frac,omitempty"`
	HotLo   int     `json:"hot_lo,omitempty"`
	HotHi   int     `json:"hot_hi,omitempty"`
	// Components parameterise the mix distribution.
	Components []MixComponent `json:"components,omitempty"`
}

// MixComponent is one weighted member of a mix workload.
type MixComponent struct {
	// Weight is the component's share of the traffic (any positive scale).
	Weight float64 `json:"weight"`
	// Workload is the component distribution (nesting mixes is rejected).
	Workload Workload `json:"workload"`
}

// Coherence modes for mutating scenarios (Spec.Coherence).
const (
	// CoherenceVersioned invalidates caches on every write (the default).
	CoherenceVersioned = "versioned"
	// CoherenceNone leaves caches stale after writes — the baseline arm
	// that shows what the versioned path prevents.
	CoherenceNone = "none"
	// CoherencePaired runs every arm under both modes in one report.
	CoherencePaired = "paired"
)

// StaleSuffix marks the uncoherent twin of an arm in a paired run's
// labels ("Agar!stale").
const StaleSuffix = "!stale"

// EventKind names a chaos event.
type EventKind string

// Event kinds.
const (
	// EventLatencyShift rescales link latencies for a window: every link
	// matching (From, To) costs base*Factor + Add. "*" (or empty) matches
	// any region on either side.
	EventLatencyShift EventKind = "latency-shift"
	// EventPartition severs the (From, To) link pair in both directions.
	EventPartition EventKind = "partition"
	// EventRegionOutage isolates Region entirely: every link into and out
	// of it fails, as when a region's storage service goes dark.
	EventRegionOutage EventKind = "region-outage"
	// EventCacheCrash empties the arm's cache at the event instant — a
	// cache-server restart losing all resident chunks.
	EventCacheCrash EventKind = "cache-crash"
	// EventFlashCrowd redirects HotFrac of requests into the key range
	// [HotLo, HotHi) for the window, overlaying the phase workload.
	EventFlashCrowd EventKind = "flash-crowd"
	// EventBandwidthCap caps matching links to BPS bytes/second for the
	// window — a storage-tier brownout: chunk-sized transfers pay extra,
	// size-dependent latency until the window closes. "*" (or empty)
	// matches any region on either side.
	EventBandwidthCap EventKind = "bandwidth-cap"
)

// Event is one chaos event inside a phase. At is the offset from the phase
// start; Duration zero means the event stays active until the phase ends
// (instantaneous kinds such as cache-crash ignore Duration).
type Event struct {
	Kind     EventKind     `json:"kind"`
	At       time.Duration `json:"at"`
	Duration time.Duration `json:"duration,omitempty"`
	// From and To name link endpoints for latency-shift and partition
	// events ("*" or "" is a wildcard for latency-shift).
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`
	// Region names the target of a region-outage.
	Region string `json:"region,omitempty"`
	// Factor and Add parameterise latency-shift (latency = base*Factor+Add;
	// Factor zero means 1).
	Factor float64       `json:"factor,omitempty"`
	Add    time.Duration `json:"add,omitempty"`
	// HotLo, HotHi and HotFrac parameterise flash-crowd.
	HotLo   int     `json:"hot_lo,omitempty"`
	HotHi   int     `json:"hot_hi,omitempty"`
	HotFrac float64 `json:"hot_frac,omitempty"`
	// BPS is the bytes/second ceiling for bandwidth-cap.
	BPS int64 `json:"bps,omitempty"`
}

// Phase is one named segment of a scenario's virtual timeline.
type Phase struct {
	Name string `json:"name"`
	// Duration is virtual time: the runner executes operations until the
	// virtual clock has advanced this far.
	Duration time.Duration `json:"duration"`
	Workload Workload      `json:"workload"`
	// Updates is the fraction of operations that are blind updates of the
	// drawn key (YCSB A = 0.5, YCSB B = 0.05). The runner's mutator writes
	// a fresh self-describing payload and tracks it as the key's authority
	// for stale-read accounting.
	Updates float64 `json:"updates,omitempty"`
	// RMW is the fraction of operations that are read-modify-writes — a
	// read followed by an update of the same key (YCSB F). Updates+RMW
	// must not exceed 1.
	RMW    float64 `json:"rmw,omitempty"`
	Events []Event `json:"events,omitempty"`
}

// Spec declares one complete scenario.
type Spec struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	// Region is the client region (default frankfurt).
	Region string `json:"region,omitempty"`
	// PeerRegions lists regions whose caches cooperate with the client
	// region (§VI): each runs its own Agar node on the same workload, the
	// nodes peer symmetrically, and the measured region reads peer-covered
	// chunks at peer latency instead of crossing the WAN. Only the agar arm
	// has a node to peer; other arms ignore the mesh.
	PeerRegions []string `json:"peer_regions,omitempty"`
	// Objects sizes the working set (default 300, the paper's).
	Objects int `json:"objects,omitempty"`
	// CacheMB sizes every arm's cache in paper megabytes (default 10).
	CacheMB float64 `json:"cache_mb,omitempty"`
	// CacheChunks is the fixed chunks-per-object c for the LRU/LFU/Fixed
	// arms (default 3).
	CacheChunks int `json:"cache_chunks,omitempty"`
	// Clients models concurrent client threads (default 2).
	Clients int `json:"clients,omitempty"`
	// BackendStore names the blob-store tier every arm's backend fetches
	// pay for ("mem" — the default — models the paper's deployment exactly;
	// see store.TierNames for the rest). Mutually exclusive with
	// StoreTiers.
	BackendStore string `json:"backend_store,omitempty"`
	// StoreTiers sweeps the scenario across blob-store tiers: every arm
	// runs once per tier, reported as "Arm@tier", so the paired deltas show
	// how far caching absorbs a slower or flakier storage layer.
	StoreTiers []string `json:"store_tiers,omitempty"`
	// Coherence selects how a mutating scenario (any phase with Updates or
	// RMW) keeps caches coherent. "versioned" — the default — models the
	// versioned write path: every update invalidates the arm's cache (and
	// any peer caches), so no read ever returns a superseded payload.
	// "none" models the unversioned baseline: writes land on the backend
	// but caches keep serving whatever they hold, and the stale-read
	// counters show the damage. "paired" runs every arm both ways under
	// "Arm" and "Arm!stale" labels so one report carries the comparison.
	// Read-only scenarios ignore the field.
	Coherence string `json:"coherence,omitempty"`
	// DispatchModes pairs the scenario's live run across server dispatch
	// modes ("conn", "shard"): the live dispatch runner replays every phase
	// once per mode over the localhost cluster with Clients concurrent
	// connections, so the report pairs per-phase throughput mode against
	// mode. The in-process simulator has no socket layer, so simulated runs
	// ignore this field.
	DispatchModes []string `json:"dispatch_modes,omitempty"`
	Phases        []Phase  `json:"phases"`
}

// LoadSpec parses one scenario spec from JSON and validates it. Unknown
// fields are rejected so typos fail loudly. Durations use the
// encoding/json representation of time.Duration (integer nanoseconds);
// spec files are usually produced by marshalling a Spec — agar-suite
// -dumpspec emits any library scenario in this form as a starting point.
func LoadSpec(r io.Reader) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: parse spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// LoadSpecFile reads and validates a JSON scenario spec from a file.
func LoadSpecFile(path string) (Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: %w", err)
	}
	defer f.Close()
	s, err := LoadSpec(f)
	if err != nil {
		return Spec{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// wildcardRegion resolves a link-endpoint name, with "*"/"" as the
// schedule wildcard.
func wildcardRegion(name string) (geo.RegionID, error) {
	if name == "" || name == "*" {
		return netsim.AnyRegion, nil
	}
	return geo.ParseRegion(name)
}

// TotalDuration sums the phase durations.
func (s Spec) TotalDuration() time.Duration {
	var d time.Duration
	for _, p := range s.Phases {
		d += p.Duration
	}
	return d
}

// Scale returns a copy of the spec with every duration and event offset
// multiplied by f — the hook tests use to replay a scenario's exact shape
// at a fraction of its virtual length.
func (s Spec) Scale(f float64) Spec {
	out := s
	out.Phases = make([]Phase, len(s.Phases))
	for i, p := range s.Phases {
		np := p
		np.Duration = time.Duration(float64(p.Duration) * f)
		np.Events = make([]Event, len(p.Events))
		for j, e := range p.Events {
			ne := e
			ne.At = time.Duration(float64(e.At) * f)
			ne.Duration = time.Duration(float64(e.Duration) * f)
			np.Events[j] = ne
		}
		out.Phases[i] = np
	}
	return out
}

// storeTiers resolves a validated spec's tier sweep: the explicit
// StoreTiers list, or the single BackendStore tier (defaulting to the mem
// baseline). The second result reports whether the spec names tiers
// explicitly enough that arm labels should carry them.
func (s Spec) storeTiers() ([]store.Tier, bool) {
	if len(s.StoreTiers) == 0 {
		t, _ := store.ParseTier(s.BackendStore)
		return []store.Tier{t}, false
	}
	out := make([]store.Tier, len(s.StoreTiers))
	for i, name := range s.StoreTiers {
		out[i], _ = store.ParseTier(name)
	}
	return out, true
}

// hasBandwidthCaps reports whether any phase carries a bandwidth-cap
// event — the runner then sizes chunk transfers so the caps have bytes to
// charge for.
func (s Spec) hasBandwidthCaps() bool {
	for _, p := range s.Phases {
		for _, e := range p.Events {
			if e.Kind == EventBandwidthCap {
				return true
			}
		}
	}
	return false
}

// hasUpdates reports whether any phase mutates the working set — the
// runner then builds the mutation path and the coherence mode applies.
func (s Spec) hasUpdates() bool {
	for _, p := range s.Phases {
		if p.Updates > 0 || p.RMW > 0 {
			return true
		}
	}
	return false
}

// coherenceModes resolves the validated spec's coherence selection into
// the list of modes each arm runs (true = writes invalidate caches), plus
// whether labels need the mode suffix. Read-only specs run one untouched
// pass.
func (s Spec) coherenceModes() ([]bool, bool) {
	if !s.hasUpdates() {
		return []bool{true}, false
	}
	switch s.Coherence {
	case CoherenceNone:
		return []bool{false}, false
	case CoherencePaired:
		return []bool{true, false}, true
	default:
		return []bool{true}, false
	}
}

// objects returns the working-set size with the default applied.
func (s Spec) objects() int {
	if s.Objects > 0 {
		return s.Objects
	}
	return 300
}

// Validate checks the spec for structural errors before any run starts.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: spec needs a name")
	}
	if len(s.Phases) == 0 {
		return fmt.Errorf("scenario %q: needs at least one phase", s.Name)
	}
	if s.Region != "" {
		if _, err := geo.ParseRegion(s.Region); err != nil {
			return fmt.Errorf("scenario %q: %w", s.Name, err)
		}
	}
	client := s.Region
	if client == "" {
		client = geo.Frankfurt.String()
	}
	seenPeer := make(map[string]bool, len(s.PeerRegions))
	for _, p := range s.PeerRegions {
		if _, err := geo.ParseRegion(p); err != nil {
			return fmt.Errorf("scenario %q: peer: %w", s.Name, err)
		}
		if p == client {
			return fmt.Errorf("scenario %q: peer region %q is the client region", s.Name, p)
		}
		if seenPeer[p] {
			return fmt.Errorf("scenario %q: duplicate peer region %q", s.Name, p)
		}
		seenPeer[p] = true
	}
	if s.BackendStore != "" && len(s.StoreTiers) > 0 {
		return fmt.Errorf("scenario %q: backend_store and store_tiers are mutually exclusive", s.Name)
	}
	if _, err := store.ParseTier(s.BackendStore); err != nil {
		return fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	seenTier := make(map[string]bool, len(s.StoreTiers))
	for _, tier := range s.StoreTiers {
		if _, err := store.ParseTier(tier); err != nil {
			return fmt.Errorf("scenario %q: %w", s.Name, err)
		}
		if seenTier[tier] {
			return fmt.Errorf("scenario %q: duplicate store tier %q", s.Name, tier)
		}
		seenTier[tier] = true
	}
	switch s.Coherence {
	case "", CoherenceVersioned, CoherenceNone, CoherencePaired:
	default:
		return fmt.Errorf("scenario %q: unknown coherence mode %q (want versioned|none|paired)", s.Name, s.Coherence)
	}
	if s.Coherence != "" && !s.hasUpdates() {
		return fmt.Errorf("scenario %q: coherence %q set but no phase has updates or rmw", s.Name, s.Coherence)
	}
	seenDispatch := make(map[live.Dispatch]bool, len(s.DispatchModes))
	for _, mode := range s.DispatchModes {
		if mode == "" {
			return fmt.Errorf("scenario %q: empty dispatch mode", s.Name)
		}
		d, err := live.ParseDispatch(mode)
		if err != nil {
			return fmt.Errorf("scenario %q: %w", s.Name, err)
		}
		if seenDispatch[d] {
			return fmt.Errorf("scenario %q: duplicate dispatch mode %q", s.Name, mode)
		}
		seenDispatch[d] = true
	}
	n := s.objects()
	seen := make(map[string]bool, len(s.Phases))
	for i, p := range s.Phases {
		if p.Name == "" {
			return fmt.Errorf("scenario %q: phase %d needs a name", s.Name, i)
		}
		if seen[p.Name] {
			return fmt.Errorf("scenario %q: duplicate phase name %q", s.Name, p.Name)
		}
		seen[p.Name] = true
		if p.Duration <= 0 {
			return fmt.Errorf("scenario %q: phase %q needs a positive duration", s.Name, p.Name)
		}
		if err := p.Workload.validate(n); err != nil {
			return fmt.Errorf("scenario %q: phase %q: %w", s.Name, p.Name, err)
		}
		if p.Updates < 0 || p.RMW < 0 || p.Updates+p.RMW > 1 {
			return fmt.Errorf("scenario %q: phase %q: updates %v + rmw %v outside [0,1]",
				s.Name, p.Name, p.Updates, p.RMW)
		}
		for j, e := range p.Events {
			if err := e.validate(n, p.Duration); err != nil {
				return fmt.Errorf("scenario %q: phase %q event %d: %w", s.Name, p.Name, j, err)
			}
		}
	}
	return nil
}

func (w Workload) validate(objects int) error {
	switch w.Kind {
	case WorkloadZipfian, WorkloadScrambled, WorkloadLatest:
		if w.Skew < 0 {
			return fmt.Errorf("workload %s: negative skew", w.Kind)
		}
	case WorkloadUniform:
	case WorkloadHotspot:
		if w.HotLo < 0 || w.HotHi <= w.HotLo || w.HotHi > objects {
			return fmt.Errorf("workload hotspot: bad range [%d,%d) over %d objects", w.HotLo, w.HotHi, objects)
		}
		if w.HotFrac <= 0 || w.HotFrac > 1 {
			return fmt.Errorf("workload hotspot: hot_frac %v outside (0,1]", w.HotFrac)
		}
	case WorkloadMix:
		if len(w.Components) == 0 {
			return fmt.Errorf("workload mix: needs at least one component")
		}
		for i, c := range w.Components {
			if c.Weight <= 0 {
				return fmt.Errorf("workload mix: component %d weight %v must be positive", i, c.Weight)
			}
			if c.Workload.Kind == WorkloadMix {
				return fmt.Errorf("workload mix: component %d nests another mix", i)
			}
			if err := c.Workload.validate(objects); err != nil {
				return fmt.Errorf("workload mix: component %d: %w", i, err)
			}
		}
	default:
		return fmt.Errorf("unknown workload kind %q", w.Kind)
	}
	return nil
}

func (e Event) validate(objects int, phase time.Duration) error {
	if e.At < 0 || e.At > phase {
		return fmt.Errorf("%s: offset %v outside phase of %v", e.Kind, e.At, phase)
	}
	if e.Duration < 0 {
		return fmt.Errorf("%s: negative duration", e.Kind)
	}
	switch e.Kind {
	case EventLatencyShift:
		if _, err := wildcardRegion(e.From); err != nil {
			return err
		}
		if _, err := wildcardRegion(e.To); err != nil {
			return err
		}
		if e.Factor < 0 {
			return fmt.Errorf("latency-shift: negative factor")
		}
		if e.Factor == 0 && e.Add == 0 {
			return fmt.Errorf("latency-shift: needs a factor or an add")
		}
	case EventPartition:
		if e.From == "" || e.From == "*" || e.To == "" || e.To == "*" {
			return fmt.Errorf("partition: needs concrete from and to regions")
		}
		if _, err := geo.ParseRegion(e.From); err != nil {
			return err
		}
		if _, err := geo.ParseRegion(e.To); err != nil {
			return err
		}
	case EventRegionOutage:
		if _, err := geo.ParseRegion(e.Region); err != nil {
			return fmt.Errorf("region-outage: %w", err)
		}
	case EventBandwidthCap:
		if _, err := wildcardRegion(e.From); err != nil {
			return err
		}
		if _, err := wildcardRegion(e.To); err != nil {
			return err
		}
		if e.BPS <= 0 {
			return fmt.Errorf("bandwidth-cap: needs a positive bps, got %d", e.BPS)
		}
	case EventCacheCrash:
	case EventFlashCrowd:
		if e.HotLo < 0 || e.HotHi <= e.HotLo || e.HotHi > objects {
			return fmt.Errorf("flash-crowd: bad range [%d,%d) over %d objects", e.HotLo, e.HotHi, objects)
		}
		if e.HotFrac <= 0 || e.HotFrac > 1 {
			return fmt.Errorf("flash-crowd: hot_frac %v outside (0,1]", e.HotFrac)
		}
	default:
		return fmt.Errorf("unknown event kind %q", e.Kind)
	}
	return nil
}
