package scenario

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/agardist/agar/internal/experiments"
)

// reduced shrinks a library spec so end-to-end tests replay its exact
// shape in a few hundred operations.
func reduced(s Spec) Spec {
	out := s.Scale(0.15)
	out.Objects = 60
	// Rebound hot ranges into the smaller key space.
	for i, p := range out.Phases {
		if p.Workload.Kind == WorkloadHotspot {
			out.Phases[i].Workload.HotLo %= 40
			out.Phases[i].Workload.HotHi = out.Phases[i].Workload.HotLo + 20
		}
		for j, e := range p.Events {
			if e.Kind == EventFlashCrowd {
				out.Phases[i].Events[j].HotLo %= 40
				out.Phases[i].Events[j].HotHi = out.Phases[i].Events[j].HotLo + 10
			}
		}
	}
	return out
}

func reducedOpts() Options {
	return Options{OpCap: 200, WarmupOps: 60, Seed: 1}
}

func TestLibraryValidatesAndCoversRequiredScenarios(t *testing.T) {
	lib := Library()
	if len(lib) < 5 {
		t.Fatalf("library has %d scenarios, want >= 5", len(lib))
	}
	seen := map[string]bool{}
	for _, s := range lib {
		if err := s.Validate(); err != nil {
			t.Errorf("library spec %q does not validate: %v", s.Name, err)
		}
		if seen[s.Name] {
			t.Errorf("duplicate scenario name %q", s.Name)
		}
		seen[s.Name] = true
	}
	for _, want := range []string{"baseline", "degraded-latency", "partition", "high-load", "diurnal-shift", "region-failover"} {
		if !seen[want] {
			t.Errorf("library is missing the %q scenario", want)
		}
	}
}

func TestSpecValidationRejectsBadSpecs(t *testing.T) {
	base := Phase{Name: "p", Duration: time.Minute, Workload: Workload{Kind: WorkloadZipfian}}
	cases := []struct {
		name string
		spec Spec
	}{
		{"no name", Spec{Phases: []Phase{base}}},
		{"no phases", Spec{Name: "x"}},
		{"bad region", Spec{Name: "x", Region: "atlantis", Phases: []Phase{base}}},
		{"zero duration", Spec{Name: "x", Phases: []Phase{{Name: "p", Workload: Workload{Kind: WorkloadZipfian}}}}},
		{"dup phase", Spec{Name: "x", Phases: []Phase{base, base}}},
		{"bad workload", Spec{Name: "x", Phases: []Phase{{Name: "p", Duration: time.Minute, Workload: Workload{Kind: "weird"}}}}},
		{"hotspot range", Spec{Name: "x", Phases: []Phase{{Name: "p", Duration: time.Minute,
			Workload: Workload{Kind: WorkloadHotspot, HotLo: 10, HotHi: 5, HotFrac: 0.5}}}}},
		{"event beyond phase", Spec{Name: "x", Phases: []Phase{{Name: "p", Duration: time.Minute,
			Workload: Workload{Kind: WorkloadZipfian},
			Events:   []Event{{Kind: EventCacheCrash, At: 2 * time.Minute}}}}}},
		{"unknown event", Spec{Name: "x", Phases: []Phase{{Name: "p", Duration: time.Minute,
			Workload: Workload{Kind: WorkloadZipfian},
			Events:   []Event{{Kind: "meteor-strike"}}}}}},
		{"partition wildcard", Spec{Name: "x", Phases: []Phase{{Name: "p", Duration: time.Minute,
			Workload: Workload{Kind: WorkloadZipfian},
			Events:   []Event{{Kind: EventPartition, From: "*", To: "dublin"}}}}}},
		{"outage without region", Spec{Name: "x", Phases: []Phase{{Name: "p", Duration: time.Minute,
			Workload: Workload{Kind: WorkloadZipfian},
			Events:   []Event{{Kind: EventRegionOutage}}}}}},
		{"shift without effect", Spec{Name: "x", Phases: []Phase{{Name: "p", Duration: time.Minute,
			Workload: Workload{Kind: WorkloadZipfian},
			Events:   []Event{{Kind: EventLatencyShift, From: "*", To: "*"}}}}}},
		{"empty mix", Spec{Name: "x", Phases: []Phase{{Name: "p", Duration: time.Minute,
			Workload: Workload{Kind: WorkloadMix}}}}},
		{"mix zero weight", Spec{Name: "x", Phases: []Phase{{Name: "p", Duration: time.Minute,
			Workload: Workload{Kind: WorkloadMix, Components: []MixComponent{
				{Weight: 0, Workload: Workload{Kind: WorkloadUniform}}}}}}}},
		{"nested mix", Spec{Name: "x", Phases: []Phase{{Name: "p", Duration: time.Minute,
			Workload: Workload{Kind: WorkloadMix, Components: []MixComponent{
				{Weight: 1, Workload: Workload{Kind: WorkloadMix, Components: []MixComponent{
					{Weight: 1, Workload: Workload{Kind: WorkloadUniform}}}}}}}}}}},
	}
	for _, c := range cases {
		if err := c.spec.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestScalePreservesShape(t *testing.T) {
	s, ok := Lookup("flash-crowd")
	if !ok {
		t.Fatal("flash-crowd scenario missing")
	}
	h := s.Scale(0.5)
	if got, want := h.TotalDuration(), s.TotalDuration()/2; got != want {
		t.Fatalf("scaled total %v, want %v", got, want)
	}
	e, se := h.Phases[1].Events[0], s.Phases[1].Events[0]
	if e.At != se.At/2 || e.Duration != se.Duration/2 {
		t.Fatalf("event offsets not scaled: %v/%v", e.At, e.Duration)
	}
	// The original is untouched.
	if s.Phases[1].Events[0].At != 10*time.Second {
		t.Fatalf("Scale mutated the receiver")
	}
}

// TestLibraryEndToEnd replays every built-in scenario at reduced scale
// across the default arms and checks the report's structure.
func TestLibraryEndToEnd(t *testing.T) {
	for _, spec := range Library() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			rep, err := Run(reduced(spec), reducedOpts())
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if rep.Schema != ReportSchema {
				t.Errorf("schema %q", rep.Schema)
			}
			if len(rep.Arms) < 3 {
				t.Fatalf("report has %d arms, want >= 3", len(rep.Arms))
			}
			if len(rep.Phases) != len(spec.Phases) {
				t.Fatalf("report has %d phases, want %d", len(rep.Phases), len(spec.Phases))
			}
			for _, p := range rep.Phases {
				if len(p.Arms) != len(rep.Arms) {
					t.Fatalf("phase %q has %d arm rows, want %d", p.Name, len(p.Arms), len(rep.Arms))
				}
				for _, a := range p.Arms {
					if a.Ops <= 0 {
						t.Errorf("phase %q arm %s measured no operations", p.Name, a.Arm)
					}
					if a.MeanMS <= 0 {
						t.Errorf("phase %q arm %s mean %.2f ms", p.Name, a.Arm, a.MeanMS)
					}
					if a.HitRatio < 0 || a.HitRatio > 1 {
						t.Errorf("phase %q arm %s hit ratio %v", p.Name, a.Arm, a.HitRatio)
					}
					if a.Errors > 0 {
						t.Errorf("phase %q arm %s saw %d errors (degraded reads should succeed)", p.Name, a.Arm, a.Errors)
					}
				}
			}
			if len(rep.Deltas) == 0 {
				t.Errorf("report carries no paired deltas")
			}
			if !strings.Contains(rep.Markdown(), "Paired deltas") {
				t.Errorf("markdown summary lacks the delta table")
			}
			if _, err := rep.JSON(); err != nil {
				t.Errorf("json: %v", err)
			}
		})
	}
}

// TestDegradedLatencyRaisesBackendMean checks the chaos actually bites:
// the degraded phase must be slower than the normal phase for the
// cache-less backend arm.
func TestDegradedLatencyRaisesBackendMean(t *testing.T) {
	spec, _ := Lookup("degraded-latency")
	rep, err := Run(reduced(spec), reducedOpts())
	if err != nil {
		t.Fatal(err)
	}
	normal := armPhase(t, rep, "normal", "Backend")
	degraded := armPhase(t, rep, "degraded", "Backend")
	if degraded.MeanMS <= normal.MeanMS*1.5 {
		t.Fatalf("degraded mean %.0f ms not clearly above normal %.0f ms", degraded.MeanMS, normal.MeanMS)
	}
	recovered := armPhase(t, rep, "recovered", "Backend")
	if recovered.MeanMS >= degraded.MeanMS {
		t.Fatalf("recovery did not lower the mean (%.0f -> %.0f ms)", degraded.MeanMS, recovered.MeanMS)
	}
}

// TestPartitionForcesDetour checks that severing the nearest remote link
// slows the backend arm while reads keep succeeding.
func TestPartitionForcesDetour(t *testing.T) {
	spec, _ := Lookup("partition")
	rep, err := Run(reduced(spec), reducedOpts())
	if err != nil {
		t.Fatal(err)
	}
	normal := armPhase(t, rep, "normal", "Backend")
	parted := armPhase(t, rep, "partitioned", "Backend")
	if parted.MeanMS <= normal.MeanMS {
		t.Fatalf("partitioned mean %.0f ms not above normal %.0f ms", parted.MeanMS, normal.MeanMS)
	}
	if parted.Errors > 0 {
		t.Fatalf("partition caused %d hard errors; degraded reads should detour", parted.Errors)
	}
}

// TestRegionFailoverDegradesThenRecovers exercises the region outage.
func TestRegionFailoverDegradesThenRecovers(t *testing.T) {
	spec, _ := Lookup("region-failover")
	rep, err := Run(reduced(spec), reducedOpts())
	if err != nil {
		t.Fatal(err)
	}
	normal := armPhase(t, rep, "normal", "Backend")
	outage := armPhase(t, rep, "outage", "Backend")
	if outage.MeanMS <= normal.MeanMS {
		t.Fatalf("outage mean %.0f ms not above normal %.0f ms", outage.MeanMS, normal.MeanMS)
	}
	if outage.Errors > 0 {
		t.Fatalf("outage caused %d hard errors", outage.Errors)
	}
}

// TestCacheCrashCostsHits pairs the cache-crash scenario against the same
// timeline without the crash: losing the cache must cost the LRU arm hits.
func TestCacheCrashCostsHits(t *testing.T) {
	spec, _ := Lookup("cache-crash")
	spec = reduced(spec)
	noCrash := spec
	noCrash.Phases = append([]Phase(nil), spec.Phases...)
	for i := range noCrash.Phases {
		p := noCrash.Phases[i]
		p.Events = nil
		noCrash.Phases[i] = p
	}

	opts := reducedOpts()
	opts.Arms = []experiments.Strategy{{Kind: experiments.StratLRU, C: 3}}
	crashed, err := Run(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Run(noCrash, opts)
	if err != nil {
		t.Fatal(err)
	}
	ch := armPhase(t, crashed, "crash", "LRU-3")
	cl := armPhase(t, clean, "crash", "LRU-3")
	if hits, cleanHits := ch.FullHits+ch.PartialHits, cl.FullHits+cl.PartialHits; hits >= cleanHits {
		t.Fatalf("crash phase hits %d not below clean run's %d", hits, cleanHits)
	}
}

// TestRunsAreDeterministic replays baseline twice and expects identical
// measurements.
func TestRunsAreDeterministic(t *testing.T) {
	spec, _ := Lookup("baseline")
	spec = reduced(spec)
	a, err := Run(spec, reducedOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec, reducedOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Phases, b.Phases) {
		aj, _ := json.Marshal(a.Phases)
		bj, _ := json.Marshal(b.Phases)
		t.Fatalf("non-deterministic phases:\n%s\nvs\n%s", aj, bj)
	}
}

func TestParseArm(t *testing.T) {
	for name, kind := range map[string]experiments.StrategyKind{
		"agar": experiments.StratAgar, "lru": experiments.StratLRU,
		"lfu": experiments.StratLFU, "fixed": experiments.StratFixed,
		"backend": experiments.StratBackend,
	} {
		s, err := ParseArm(name, 3)
		if err != nil || s.Kind != kind {
			t.Errorf("ParseArm(%q) = %v, %v", name, s, err)
		}
	}
	if _, err := ParseArm("nope", 3); err == nil {
		t.Errorf("ParseArm accepted an unknown arm")
	}
}

// armPhase finds one arm's row in one phase of the report.
func armPhase(t *testing.T, rep *Report, phase, arm string) ArmPhase {
	t.Helper()
	for _, p := range rep.Phases {
		if p.Name != phase {
			continue
		}
		for _, a := range p.Arms {
			if a.Arm == arm {
				return a
			}
		}
	}
	t.Fatalf("report has no phase %q arm %q", phase, arm)
	return ArmPhase{}
}

// TestLiveSmoke boots the localhost cluster and replays the baseline
// scenario's opening phase over real sockets.
func TestLiveSmoke(t *testing.T) {
	spec, _ := Lookup("baseline")
	res, err := RunLiveSmoke(spec, LiveOptions{Ops: 60, Objects: 20, DelayScale: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors > 0 {
		t.Fatalf("live smoke saw %d errors", res.Errors)
	}
	if res.Latency.Count != 60 {
		t.Fatalf("measured %d reads, want 60", res.Latency.Count)
	}
	if res.Phase != "ramp" {
		t.Fatalf("smoke ran phase %q, want the first phase", res.Phase)
	}
}

// TestCoopPeeringServesPeerChunks runs the coop-peering scenario on the
// simulator: the agar arm must serve chunks out of the peered Dublin
// node's cache during the shared-hot phase, and only the agar arm peers.
func TestCoopPeeringServesPeerChunks(t *testing.T) {
	spec, ok := Lookup("coop-peering")
	if !ok {
		t.Fatal("coop-peering missing from the library")
	}
	if len(spec.PeerRegions) == 0 {
		t.Fatal("coop-peering declares no peers")
	}
	rep, err := Run(reduced(spec), reducedOpts())
	if err != nil {
		t.Fatal(err)
	}
	agar := armPhase(t, rep, "shared-hot", "Agar")
	if agar.PeerChunks == 0 {
		t.Fatalf("agar arm served no peer chunks in the shared-hot phase: %+v", agar)
	}
	if agar.Errors > 0 {
		t.Fatalf("peered reads errored %d times", agar.Errors)
	}
	backend := armPhase(t, rep, "shared-hot", "Backend")
	if backend.PeerChunks != 0 {
		t.Fatalf("cache-less backend arm reported %d peer chunks", backend.PeerChunks)
	}
	if agar.MeanMS >= backend.MeanMS {
		t.Fatalf("peered agar mean %.0f ms not below backend %.0f ms", agar.MeanMS, backend.MeanMS)
	}
	if !strings.Contains(rep.Markdown(), "peer chunks") {
		t.Error("peered markdown lacks the peer-chunk column")
	}
}

func TestSpecValidationRejectsBadPeers(t *testing.T) {
	base := Phase{Name: "p", Duration: time.Minute, Workload: Workload{Kind: WorkloadZipfian}}
	for _, tc := range []struct {
		name  string
		peers []string
		reg   string
	}{
		{"unknown peer", []string{"atlantis"}, "frankfurt"},
		{"peer equals client", []string{"frankfurt"}, "frankfurt"},
		{"peer equals default client", []string{"frankfurt"}, ""},
		{"duplicate peer", []string{"dublin", "dublin"}, "frankfurt"},
	} {
		spec := Spec{Name: "x", Region: tc.reg, PeerRegions: tc.peers, Phases: []Phase{base}}
		if err := spec.Validate(); err == nil {
			t.Errorf("%s: spec validated", tc.name)
		}
	}
	good := Spec{Name: "x", Region: "frankfurt", PeerRegions: []string{"dublin", "n-virginia"}, Phases: []Phase{base}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid peered spec rejected: %v", err)
	}
}

// TestLiveSmokePeered boots the two-cluster peered smoke: Frankfurt must
// pull chunks from Dublin's cache server (which accounts them as peer
// hits), and peer-assisted reads must beat reads that crossed the WAN.
func TestLiveSmokePeered(t *testing.T) {
	spec, _ := Lookup("coop-peering")
	res, err := RunLiveSmoke(spec, LiveOptions{Ops: 60, Objects: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors > 0 {
		t.Fatalf("peered smoke saw %d errors", res.Errors)
	}
	if res.PeerRegion != "dublin" {
		t.Fatalf("peer region %q", res.PeerRegion)
	}
	if res.PeerChunks == 0 {
		t.Fatal("no chunks served from the peer cache")
	}
	if res.PeerHits == 0 {
		t.Fatal("peer cache server reported no peer hits")
	}
	if res.PeerReads == nil || res.PeerReads.Count == 0 {
		t.Fatal("no peer-assisted reads summarised")
	}
	if res.WANReads != nil && res.WANReads.Count > 0 && res.PeerReads.MeanMS >= res.WANReads.MeanMS {
		t.Fatalf("peer-assisted reads (%.2f ms) not below WAN reads (%.2f ms)",
			res.PeerReads.MeanMS, res.WANReads.MeanMS)
	}
}

// TestLiveSmokeUnderOutage replays the region-failover scenario's shape
// with the outage pulled into the first phase: reads must detour, not fail.
func TestLiveSmokeUnderOutage(t *testing.T) {
	spec := Spec{
		Name:   "live-outage",
		Region: "sydney",
		Phases: []Phase{{
			Name:     "outage",
			Duration: time.Minute,
			Workload: Workload{Kind: WorkloadZipfian, Skew: 1.1},
			Events:   []Event{{Kind: EventRegionOutage, Region: "tokyo"}},
		}},
	}
	res, err := RunLiveSmoke(spec, LiveOptions{Ops: 40, Objects: 15, DelayScale: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors > 0 {
		t.Fatalf("outage smoke saw %d errors; reads should detour around tokyo", res.Errors)
	}
}
