package scenario

import (
	"bytes"
	"fmt"
	"math/rand"
	"time"

	"github.com/agardist/agar/internal/cache"
	"github.com/agardist/agar/internal/client"
	"github.com/agardist/agar/internal/core"
	"github.com/agardist/agar/internal/experiments"
	"github.com/agardist/agar/internal/geo"
	"github.com/agardist/agar/internal/netsim"
	"github.com/agardist/agar/internal/store"
	"github.com/agardist/agar/internal/workload"
	"github.com/agardist/agar/internal/ycsb"
)

// Options tunes a scenario run without changing the scenario's shape.
type Options struct {
	// Arms are the cache policies to compare; nil means DefaultArms with
	// the spec's CacheChunks.
	Arms []experiments.Strategy
	// OpCap bounds the measured operations per phase as a safety net
	// against runaway virtual phases (default 5000).
	OpCap int
	// WarmupOps run on the first phase's workload before measurement, with
	// chaos inactive. Zero means the default of 300; pass a negative value
	// to disable warm-up entirely (cold-cache runs).
	WarmupOps int
	// Seed makes the whole run deterministic; every arm replays the same
	// seeded key stream and latency jitter so arms pair (default 1).
	Seed int64
	// ObjectBytes is the real simulated object size (default 9 KiB).
	ObjectBytes int
	// Solver picks Agar's knapsack algorithm (default POPULATE).
	Solver core.Solver
}

func (o Options) withDefaults() Options {
	if o.OpCap <= 0 {
		o.OpCap = 5000
	}
	if o.WarmupOps < 0 {
		o.WarmupOps = 0
	} else if o.WarmupOps == 0 {
		o.WarmupOps = 300
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.ObjectBytes <= 0 {
		o.ObjectBytes = 9 * 1024
	}
	if o.Solver == 0 {
		o.Solver = core.SolverPopulate
	}
	return o
}

// DefaultArms returns the suite's standard comparison: Agar's knapsack
// against the LRU-c, LFU-c and backend-only baselines.
func DefaultArms(c int) []experiments.Strategy {
	return []experiments.Strategy{
		{Kind: experiments.StratAgar},
		{Kind: experiments.StratLRU, C: c},
		{Kind: experiments.StratLFU, C: c},
		{Kind: experiments.StratBackend},
	}
}

// AllArms additionally includes the pinned fixed-cache baseline.
func AllArms(c int) []experiments.Strategy {
	return append(DefaultArms(c), experiments.Strategy{Kind: experiments.StratFixed, C: c})
}

// ParseArm resolves an arm name ("agar", "lru", "lfu", "fixed", "backend")
// to a strategy with the given fixed chunk count.
func ParseArm(name string, c int) (experiments.Strategy, error) {
	switch name {
	case "agar":
		return experiments.Strategy{Kind: experiments.StratAgar}, nil
	case "lru":
		return experiments.Strategy{Kind: experiments.StratLRU, C: c}, nil
	case "lfu":
		return experiments.Strategy{Kind: experiments.StratLFU, C: c}, nil
	case "fixed":
		return experiments.Strategy{Kind: experiments.StratFixed, C: c}, nil
	case "backend":
		return experiments.Strategy{Kind: experiments.StratBackend}, nil
	default:
		return experiments.Strategy{}, fmt.Errorf("scenario: unknown arm %q (want agar|lru|lfu|fixed|backend)", name)
	}
}

// generator builds the phase workload's key stream.
func (w Workload) generator(n int, seed int64) workload.Generator {
	skew := w.Skew
	if skew == 0 {
		skew = 1.1 // the paper's default
	}
	switch w.Kind {
	case WorkloadZipfian:
		return workload.NewZipfian(n, skew, seed)
	case WorkloadScrambled:
		return workload.NewScrambledZipfian(n, skew, seed)
	case WorkloadUniform:
		return workload.NewUniform(n, seed)
	case WorkloadHotspot:
		return workload.NewRangeHotspot(n, w.HotLo, w.HotHi, w.HotFrac, seed)
	case WorkloadLatest:
		return workload.NewLatest(n, skew, seed)
	case WorkloadMix:
		comps := make([]workload.Component, len(w.Components))
		for i, c := range w.Components {
			comps[i] = workload.Component{
				Weight: c.Weight,
				Gen:    c.Workload.generator(n, seed+int64(i)*97+1),
			}
		}
		return workload.NewMix(seed, comps...)
	default:
		panic(fmt.Sprintf("scenario: unvalidated workload kind %q", w.Kind))
	}
}

// flashWindow is a compiled flash-crowd overlay, in offsets from the
// schedule epoch.
type flashWindow struct {
	window netsim.Window
	lo, hi int
	frac   float64
}

// crashAction is a compiled one-shot cache crash.
type crashAction struct {
	at    time.Duration
	fired bool
}

// flashGen overlays flash-crowd windows on a base generator: inside an
// active window, frac of the requests divert uniformly into the hot range.
type flashGen struct {
	clock   *netsim.VirtualClock
	epoch   time.Time
	base    workload.Generator
	windows []flashWindow
	rng     *rand.Rand
}

// Next implements workload.Generator.
func (g *flashGen) Next() int {
	off := g.clock.Now().Sub(g.epoch)
	for _, w := range g.windows {
		if !w.window.Contains(off) {
			continue
		}
		if g.rng.Float64() < w.frac {
			return w.lo + g.rng.Intn(w.hi-w.lo)
		}
		break
	}
	return g.base.Next()
}

// N implements workload.Generator.
func (g *flashGen) N() int { return g.base.N() }

// compiled is a spec lowered onto one arm-run's virtual timeline.
type compiled struct {
	schedule *netsim.Schedule
	flash    [][]flashWindow  // per phase
	crashes  [][]*crashAction // per phase
}

// compile lowers the spec's events onto a schedule anchored at epoch.
// Network events (shifts, partitions, outages) become schedule rules;
// client-side events (cache crashes, flash crowds) become per-phase hooks.
func compile(spec Spec, epoch time.Time) *compiled {
	c := &compiled{
		schedule: netsim.NewSchedule(epoch),
		flash:    make([][]flashWindow, len(spec.Phases)),
		crashes:  make([][]*crashAction, len(spec.Phases)),
	}
	var off time.Duration
	for i, p := range spec.Phases {
		for _, e := range p.Events {
			start := off + e.At
			end := start + e.Duration
			if e.Duration == 0 {
				end = off + p.Duration
			}
			w := netsim.Window{Start: start, End: end}
			switch e.Kind {
			case EventLatencyShift:
				from, _ := wildcardRegion(e.From)
				to, _ := wildcardRegion(e.To)
				c.schedule.Shift(w, from, to, e.Factor, e.Add)
			case EventPartition:
				a, _ := geo.ParseRegion(e.From)
				b, _ := geo.ParseRegion(e.To)
				c.schedule.Cut(w, a, b)
			case EventRegionOutage:
				r, _ := geo.ParseRegion(e.Region)
				c.schedule.CutRegion(w, r)
			case EventBandwidthCap:
				from, _ := wildcardRegion(e.From)
				to, _ := wildcardRegion(e.To)
				c.schedule.CapBandwidth(w, from, to, e.BPS)
			case EventCacheCrash:
				c.crashes[i] = append(c.crashes[i], &crashAction{at: start})
			case EventFlashCrowd:
				c.flash[i] = append(c.flash[i], flashWindow{window: w, lo: e.HotLo, hi: e.HotHi, frac: e.HotFrac})
			}
		}
		off += p.Duration
	}
	return c
}

// Run executes the scenario for every arm on the in-process simulator and
// assembles the report. Arms share one loaded deployment (outages are
// modelled at the network layer) and replay identical seeded workloads, so
// per-phase results pair across arms. Mutating scenarios write to the
// shared backend, but every arm replays the same seeded write sequence, so
// later arms see the same backend evolution and pairing still holds;
// stale-read accounting is always judged against the running arm's own
// writes.
func Run(spec Spec, opts Options) (*Report, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	region := geo.Frankfurt
	if spec.Region != "" {
		region, _ = geo.ParseRegion(spec.Region)
	}
	arms := opts.Arms
	if len(arms) == 0 {
		c := spec.CacheChunks
		if c <= 0 {
			c = 3
		}
		arms = DefaultArms(c)
	}

	params := experiments.DefaultParams()
	params.NumObjects = spec.objects()
	params.ObjectBytes = opts.ObjectBytes
	params.Seed = opts.Seed
	params.Solver = opts.Solver
	if spec.Clients > 0 {
		params.Clients = spec.Clients
	}
	d, err := experiments.NewDeployment(params)
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %w", spec.Name, err)
	}

	// Cross the cache-policy arms with the spec's blob-store tiers and
	// coherence modes: a plain scenario runs each arm once on its
	// (implicit) tier, a tier sweep runs every arm once per tier under
	// "Arm@tier" labels, and a coherence-paired mutating scenario runs
	// every arm with and without write invalidation ("Arm" vs
	// "Arm!stale") so the stale-read cost of skipping the versioned
	// write path pairs phase by phase.
	tiers, sweep := spec.storeTiers()
	cohModes, cohSweep := spec.coherenceModes()
	type armRun struct {
		strat    experiments.Strategy
		tier     store.Tier
		coherent bool
		label    string
	}
	var runs []armRun
	for _, arm := range arms {
		for _, tier := range tiers {
			for _, coherent := range cohModes {
				label := arm.Name()
				if sweep {
					label += "@" + tier.Name
				}
				if cohSweep && !coherent {
					label += StaleSuffix
				}
				runs = append(runs, armRun{strat: arm, tier: tier, coherent: coherent, label: label})
			}
		}
	}

	start := time.Now()
	labels := make([]string, len(runs))
	agarIdx := -1
	perArm := make([][]ycsb.Result, len(runs))
	for i, ar := range runs {
		labels[i] = ar.label
		if agarIdx < 0 && ar.strat.Kind == experiments.StratAgar {
			agarIdx = i
		}
		results, err := runArm(d, spec, opts, ar.strat, region, ar.tier, ar.coherent)
		if err != nil {
			return nil, fmt.Errorf("scenario %q arm %s: %w", spec.Name, ar.label, err)
		}
		perArm[i] = results
	}
	rep := buildReport(spec, region.String(), labels, agarIdx, perArm, opts)
	rep.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	return rep, nil
}

// runArm plays the whole scenario timeline through one policy arm reading
// over one blob-store tier. For mutating scenarios, coherent selects
// whether the arm's writes invalidate its caches (the versioned write
// path) or leave them stale (the unversioned baseline).
func runArm(d *experiments.Deployment, spec Spec, opts Options, arm experiments.Strategy, region geo.RegionID, tier store.Tier, coherent bool) ([]ycsb.Result, error) {
	cacheMB := spec.CacheMB
	if cacheMB <= 0 {
		cacheMB = 10
	}
	clients := d.Params.Clients

	clock := netsim.NewVirtualClock(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	sampler := netsim.NewSampler(d.Matrix, d.Params.Jitter, opts.Seed)
	env := d.Env(sampler)
	// Lower the tier's modelled envelope onto this run: per-chunk service
	// time and transient faults on every backend fetch, and a bandwidth
	// ceiling that charges paper-scale chunk transfers on every link. The
	// mem baseline configures nothing, so its runs (and their jitter
	// streams) stay bit-exact with pre-tier scenarios.
	if !tier.Baseline() {
		env.StoreLatency = tier.Latency
		env.StoreErrRate = tier.ErrRate
		if tier.BandwidthBps > 0 {
			env.ChunkBytes = d.PaperChunkBytes()
			sampler.CapBandwidth(netsim.AnyRegion, netsim.AnyRegion, tier.BandwidthBps)
		}
	}
	// Bandwidth-cap events need sized transfers too: without ChunkBytes the
	// sampler has no bytes to charge the capped window for.
	if env.ChunkBytes == 0 && spec.hasBandwidthCaps() {
		env.ChunkBytes = d.PaperChunkBytes()
	}
	reader, node, err := d.NewReader(arm, env, region, cacheMB, opts.Seed)
	if err != nil {
		return nil, err
	}

	// Cooperative peers (§VI): each peer region runs its own Agar node on
	// the phase workloads, peered symmetrically with the measured node, so
	// the measured region's knapsack devalues peer-covered chunks and its
	// reader pulls them at peer latency instead of crossing the WAN. Only
	// the agar arm has a node to peer; other arms run unpeered and the
	// report's paired deltas show what the mesh buys.
	type coopPeer struct {
		region geo.RegionID
		reader client.Reader
		node   *core.Node
	}
	var peers []coopPeer
	if node != nil {
		for i, name := range spec.PeerRegions {
			pr, _ := geo.ParseRegion(name)
			peerReader, peerNode, err := d.NewReader(arm, env, pr, cacheMB, opts.Seed+7001+int64(i))
			if err != nil {
				return nil, fmt.Errorf("peer %s: %w", name, err)
			}
			node.AddPeer(pr, peerNode.Cache(), d.Matrix.Get(region, pr))
			peerNode.AddPeer(region, node.Cache(), d.Matrix.Get(pr, region))
			peers = append(peers, coopPeer{region: pr, reader: peerReader, node: peerNode})
		}
	}
	// The mutation path for scenarios with update/RMW phases: one writer
	// with an authoritative record of every payload it wrote, so stale
	// reads are judged against ground truth. Coherent runs register the
	// arm's cache (and every peer cache) for write invalidation — the
	// simulator's stand-in for the versioned write path's floors and
	// digest-borne invalidations; uncoherent runs leave caches to serve
	// whatever they hold.
	var mut *mutator
	if spec.hasUpdates() {
		var invs []client.Invalidator
		if coherent {
			if c := armCache(reader, node); c != nil {
				invs = append(invs, c)
			}
			for _, p := range peers {
				invs = append(invs, p.node.Cache())
			}
		}
		mut = newMutator(env, region, opts.ObjectBytes, invs...)
	}

	// warmPeers drives each peer's own clients on the phase workload —
	// popularity, reconfiguration, then cache-filling reads — so the peer
	// holds the hot set the way an independently serving region would.
	// Peer reads never touch the measured virtual clock.
	warmPeers := func(phaseIdx int, w Workload) {
		if len(peers) == 0 {
			return
		}
		ops := opts.WarmupOps
		if ops <= 0 {
			ops = 300
		}
		n := spec.objects()
		for j, p := range peers {
			gen := w.generator(n, opts.Seed+int64(phaseIdx)*811+int64(j)*53+19)
			for o := 0; o < ops; o++ {
				p.reader.Read(workload.KeyName(gen.Next()))
			}
			p.node.ForceReconfigure()
			for o := 0; o < ops/3; o++ {
				p.reader.Read(workload.KeyName(gen.Next()))
			}
		}
	}

	// Warm caches and popularity statistics on the opening workload with
	// chaos inactive, exactly like the paper's warm-up reads.
	n := spec.objects()
	if opts.WarmupOps > 0 {
		_, err := ycsb.Run(ycsb.RunConfig{
			Reader:     reader,
			Generator:  spec.Phases[0].Workload.generator(n, opts.Seed+101),
			Operations: opts.WarmupOps,
			Clock:      clock,
			Node:       node,
			Clients:    clients,
		})
		if err != nil {
			return nil, fmt.Errorf("warm-up: %w", err)
		}
	}

	// Measurement starts now: anchor the chaos timeline here and bind it
	// into the sampler every read flows through.
	epoch := clock.Now()
	comp := compile(spec, epoch)
	sampler.SetChaos(clock, comp.schedule)
	defer sampler.SetChaos(nil, nil)

	clearCache := cacheClearer(reader, node)

	results := make([]ycsb.Result, 0, len(spec.Phases))
	var elapsed time.Duration
	for i, p := range spec.Phases {
		warmPeers(i, p.Workload)
		// Deadlines anchor to the epoch, exactly like the compiled event
		// windows: a phase whose last operation overshoots its boundary
		// starts the next phase late, but the overshoot never accumulates
		// and event windows stay aligned with phase boundaries.
		elapsed += p.Duration
		deadline := epoch.Add(elapsed)
		var gen workload.Generator = p.Workload.generator(n, opts.Seed+int64(i)*1009+7)
		if len(comp.flash[i]) > 0 {
			gen = &flashGen{
				clock:   clock,
				epoch:   epoch,
				base:    gen,
				windows: comp.flash[i],
				rng:     rand.New(rand.NewSource(opts.Seed + int64(i)*31 + 13)),
			}
		}
		var beforeOp func(time.Time)
		if crashes := comp.crashes[i]; len(crashes) > 0 {
			beforeOp = func(now time.Time) {
				off := now.Sub(epoch)
				for _, c := range crashes {
					if !c.fired && off >= c.at {
						c.fired = true
						if clearCache != nil {
							clearCache()
						}
					}
				}
			}
		}
		runCfg := ycsb.RunConfig{
			Reader:     reader,
			Generator:  gen,
			Operations: opts.OpCap,
			Clock:      clock,
			Node:       node,
			Clients:    clients,
			Deadline:   deadline,
			BeforeOp:   beforeOp,
		}
		if mut != nil {
			runCfg.UpdateFrac = p.Updates
			runCfg.RMWFrac = p.RMW
			runCfg.Update = mut.update
			runCfg.Verify = mut.verify
			runCfg.MixSeed = opts.Seed + int64(i)*389 + 23
		}
		res, err := ycsb.Run(runCfg)
		if err != nil {
			return nil, fmt.Errorf("phase %q: %w", p.Name, err)
		}
		// If the op cap ended the phase early, jump to the phase boundary so
		// later phases see their event windows at the declared offsets.
		if now := clock.Now(); now.Before(deadline) {
			clock.Advance(deadline.Sub(now))
		}
		// Fire any timed actions still pending for this phase (scheduled
		// after the last operation, or inside an op-cap-skipped interval),
		// so every arm leaves the phase in the same state regardless of its
		// op rate.
		for _, c := range comp.crashes[i] {
			if !c.fired {
				c.fired = true
				if clearCache != nil {
					clearCache()
				}
			}
		}
		results = append(results, res)
	}
	return results, nil
}

// cacheClearer resolves how a cache-crash event empties this arm's cache;
// nil for arms with no cache (backend).
func cacheClearer(reader interface{}, node *core.Node) func() {
	if c := armCache(reader, node); c != nil {
		return c.Clear
	}
	return nil
}

// armCache resolves the arm's local cache; nil for cacheless arms.
func armCache(reader interface{}, node *core.Node) *cache.Cache {
	if node != nil {
		return node.Cache()
	}
	if c, ok := reader.(interface{ Cache() *cache.Cache }); ok {
		return c.Cache()
	}
	return nil
}

// mutPayload builds the self-describing body one update writes: the key
// and generation repeated to size, so any decode mixing generations can
// never equal a generation's exact payload.
func mutPayload(key string, gen, size int) []byte {
	unit := []byte(fmt.Sprintf("%s#%06d|", key, gen))
	out := bytes.Repeat(unit, size/len(unit)+1)
	return out[:size]
}

// mutator is a scenario run's write path: every update stores a fresh
// generation of the key through the simulated client writer (invalidating
// whatever caches were registered) and records the payload as the key's
// authority. verify then judges reads against that authority — a
// successful read of anything else is a stale read. Keys the run never
// wrote have no authority and always verify.
type mutator struct {
	writer *client.Writer
	size   int
	gens   map[string]int
	auth   map[string][]byte
}

func newMutator(env *client.Env, region geo.RegionID, objBytes int, invalidators ...client.Invalidator) *mutator {
	return &mutator{
		writer: client.NewWriter(env, region, invalidators...),
		size:   objBytes,
		gens:   make(map[string]int),
		auth:   make(map[string][]byte),
	}
}

// update writes the key's next generation and returns the modelled write
// latency — the ycsb Update hook.
func (m *mutator) update(key string) (time.Duration, error) {
	gen := m.gens[key] + 1
	payload := mutPayload(key, gen, m.size)
	lat, err := m.writer.Write(key, payload)
	if err != nil {
		return lat, err
	}
	m.gens[key] = gen
	m.auth[key] = payload
	return lat, nil
}

// verify is the ycsb Verify hook: true when the read returned the key's
// current authoritative payload (or the run never wrote the key).
func (m *mutator) verify(key string, data []byte) bool {
	want, ok := m.auth[key]
	return !ok || bytes.Equal(data, want)
}
