package scenario

import "strings"

// SCENARIOS.md is owned by several writers: agar-suite rewrites the whole
// file on every full run, agar-bench -load contributes one marker-fenced
// section with the latest saturation sweep, and agar-suite -soak another
// with the latest long-soak timeline. The markers let each writer replace
// its own block without clobbering the others': side writers splice
// between their markers (SpliceMarked), and the full-suite rewrite carries
// every existing marked block forward verbatim when it regenerates the
// rest of the file (ExtractMarked).
const (
	// LoadSectionBegin and LoadSectionEnd fence the open-loop saturation
	// sweep section that cmd/agar-bench -load maintains in SCENARIOS.md.
	LoadSectionBegin = "<!-- agar-bench:load:begin -->"
	LoadSectionEnd   = "<!-- agar-bench:load:end -->"

	// SoakSectionBegin and SoakSectionEnd fence the long-soak section that
	// agar-suite -soak maintains in SCENARIOS.md.
	SoakSectionBegin = "<!-- agar-suite:soak:begin -->"
	SoakSectionEnd   = "<!-- agar-suite:soak:end -->"
)

// ExtractMarked returns the block of doc fenced by the begin and end
// marker lines, markers included, and whether a complete block was found.
// A begin without an end (or in the wrong order) reports not-found rather
// than guessing at a truncated block.
func ExtractMarked(doc, begin, end string) (string, bool) {
	i := strings.Index(doc, begin)
	if i < 0 {
		return "", false
	}
	j := strings.Index(doc[i:], end)
	if j < 0 {
		return "", false
	}
	return doc[i : i+j+len(end)], true
}

// SpliceMarked replaces doc's marker-fenced block with inner (wrapped in
// fresh markers), or appends a new fenced block at the end when doc has
// none. The result always contains exactly the new block where the old one
// was; text outside the markers is untouched.
func SpliceMarked(doc, begin, end, inner string) string {
	block := begin + "\n" + strings.TrimRight(inner, "\n") + "\n" + end
	if old, ok := ExtractMarked(doc, begin, end); ok {
		return strings.Replace(doc, old, block, 1)
	}
	if doc != "" && !strings.HasSuffix(doc, "\n") {
		doc += "\n"
	}
	if doc != "" {
		doc += "\n"
	}
	return doc + block + "\n"
}
