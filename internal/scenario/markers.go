package scenario

import "strings"

// SCENARIOS.md is owned by two writers: agar-suite rewrites the whole file
// on every run, and agar-bench -load contributes one marker-fenced section
// with the latest saturation sweep. The markers let each writer replace its
// own block without clobbering the other's: agar-bench splices between the
// markers (SpliceMarked), and agar-suite carries any existing marked block
// forward verbatim when it regenerates the rest of the file
// (ExtractMarked).
const (
	// LoadSectionBegin and LoadSectionEnd fence the open-loop saturation
	// sweep section that cmd/agar-bench -load maintains in SCENARIOS.md.
	LoadSectionBegin = "<!-- agar-bench:load:begin -->"
	LoadSectionEnd   = "<!-- agar-bench:load:end -->"
)

// ExtractMarked returns the block of doc fenced by the begin and end
// marker lines, markers included, and whether a complete block was found.
// A begin without an end (or in the wrong order) reports not-found rather
// than guessing at a truncated block.
func ExtractMarked(doc, begin, end string) (string, bool) {
	i := strings.Index(doc, begin)
	if i < 0 {
		return "", false
	}
	j := strings.Index(doc[i:], end)
	if j < 0 {
		return "", false
	}
	return doc[i : i+j+len(end)], true
}

// SpliceMarked replaces doc's marker-fenced block with inner (wrapped in
// fresh markers), or appends a new fenced block at the end when doc has
// none. The result always contains exactly the new block where the old one
// was; text outside the markers is untouched.
func SpliceMarked(doc, begin, end, inner string) string {
	block := begin + "\n" + strings.TrimRight(inner, "\n") + "\n" + end
	if old, ok := ExtractMarked(doc, begin, end); ok {
		return strings.Replace(doc, old, block, 1)
	}
	if doc != "" && !strings.HasSuffix(doc, "\n") {
		doc += "\n"
	}
	if doc != "" {
		doc += "\n"
	}
	return doc + block + "\n"
}
