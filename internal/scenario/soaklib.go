package scenario

import (
	"fmt"
	"strings"
	"time"

	"github.com/agardist/agar/internal/monitor"
)

// LongSoak is the library's long-soak: four virtual hours of diurnal
// traffic (a morning hotspot, a zipfian midday peak with 10% versioned
// updates, an evening hotspot over a different range, a uniform night)
// with a twenty-minute storage brownout injected mid-midday — a
// 256 KiB/s bandwidth cap plus a 3× latency shift on every link, the
// shape of a storage tier degrading under someone else's load. The rule
// thresholds sit between the two arms' calibrated envelopes (baseline
// p99 ≈ 1.03 s, brownout p99 ≈ 3.5 s), so the baseline arm runs
// alert-free while the brownout arm's alert timeline brackets the
// injected window; the mutation-side rules (stale reads, write p99)
// hold the write path to the same contract.
func LongSoak() SoakSpec {
	return SoakSpec{
		Spec: Spec{
			Name:        "long-soak",
			Description: "4h diurnal mix with a 20-minute mid-day storage brownout",
			Region:      "frankfurt",
			Phases: []Phase{
				{
					Name:     "morning",
					Duration: time.Hour,
					Workload: Workload{Kind: WorkloadHotspot, HotLo: 0, HotHi: 60, HotFrac: 0.8},
				},
				{
					Name:     "midday",
					Duration: time.Hour,
					Workload: Workload{Kind: WorkloadZipfian},
					Updates:  0.1,
					Events: []Event{
						{Kind: EventBandwidthCap, At: 20 * time.Minute, Duration: 20 * time.Minute, BPS: 256 << 10},
						{Kind: EventLatencyShift, At: 20 * time.Minute, Duration: 20 * time.Minute, Factor: 3},
					},
				},
				{
					Name:     "evening",
					Duration: time.Hour,
					Workload: Workload{Kind: WorkloadHotspot, HotLo: 200, HotHi: 280, HotFrac: 0.7},
				},
				{
					Name:     "night",
					Duration: time.Hour,
					Workload: Workload{Kind: WorkloadUniform},
				},
			},
		},
		SampleEvery:  time.Minute,
		OpsPerSample: 60,
		Rules:        LongSoakRules(),
		Drift:        LongSoakDrift(),
	}
}

// LongSoakRules is the long-soak's rule set. Ceilings sit between the
// calibrated baseline and brownout envelopes; the hit-ratio floor is a
// two-window burn rate so a single cold sample at a phase transition
// (hit ratio momentarily zero) never fires it.
func LongSoakRules() []monitor.Rule {
	return []monitor.Rule{
		{
			Name: "read-p99-ceiling", Kind: monitor.KindThreshold,
			Metric: MetricSoakReadP99MS, Max: monitor.F(1500),
		},
		{
			Name: "read-mean-ceiling", Kind: monitor.KindThreshold,
			Metric: MetricSoakReadMeanMS, Max: monitor.F(1200),
		},
		{
			Name: "error-rate-ceiling", Kind: monitor.KindThreshold,
			Metric: MetricSoakErrorRate, Max: monitor.F(0.05),
		},
		{
			Name: "hit-ratio-floor", Kind: monitor.KindBurnRate,
			Metric: MetricSoakHitRatio, Min: monitor.F(0.005),
			Window: 10 * time.Minute, Short: 4 * time.Minute, Burn: 0.75,
		},
		{
			// Any stale read at all is a coherence bug: the versioned write
			// path invalidates before it acknowledges, so this ceiling is
			// zero, not a calibrated envelope.
			Name: "stale-read-ceiling", Kind: monitor.KindThreshold,
			Metric: MetricSoakStaleReads, Max: monitor.F(0),
		},
		{
			Name: "write-p99-ceiling", Kind: monitor.KindThreshold,
			Metric: MetricSoakWriteP99MS, Max: monitor.F(1500),
		},
	}
}

// LongSoakDrift is the long-soak's degradation sweep: read latency only
// ever climbing or the hit ratio only ever sagging across the whole run
// flags, transients and diurnal swings do not.
func LongSoakDrift() []monitor.DriftCheck {
	return []monitor.DriftCheck{
		{Name: "read-mean-creep", Metric: MetricSoakReadMeanMS, BadDirection: "up", Tolerance: 0.25},
		{Name: "hit-ratio-sag", Metric: MetricSoakHitRatio, BadDirection: "down", Tolerance: 0.25},
		{Name: "error-rate-creep", Metric: MetricSoakErrorRate, BadDirection: "up", Tolerance: 0.25},
	}
}

// Scale returns a copy of the soak with every duration — phases, event
// offsets, the sample window, and the rules' evaluation windows —
// multiplied by f, so a quick run replays the soak's exact shape in a
// fraction of its virtual length. Note samples shrink with the clock but
// the reads inside them do not speed up, so heavily scaled runs hold few
// ops per sample and their ratio metrics get noisy.
func (s SoakSpec) Scale(f float64) SoakSpec {
	out := s
	out.Spec = s.Spec.Scale(f)
	out.SampleEvery = time.Duration(float64(s.SampleEvery) * f)
	out.Rules = make([]monitor.Rule, len(s.Rules))
	for i, r := range s.Rules {
		r.Window = time.Duration(float64(r.Window) * f)
		r.Short = time.Duration(float64(r.Short) * f)
		r.For = time.Duration(float64(r.For) * f)
		out.Rules[i] = r
	}
	return out
}

// Markdown renders the soak report's SCENARIOS.md section: the per-arm
// envelope, the alert timeline, and the drift table.
func (r *SoakReport) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## Soak: %s\n\n", r.Name)
	if r.Description != "" {
		fmt.Fprintf(&b, "%s\n\n", r.Description)
	}
	fmt.Fprintf(&b, "%.1f virtual hours · %s samples · %d ops/sample · region %s · seed %d\n\n",
		r.VirtualMS/3.6e6, msDur(r.SampleEveryMS), r.OpsPerSample, r.Region, r.Seed)

	b.WriteString("| arm | samples | ops | hit ratio | mean ms | p99 ms | firing alerts | drift flags |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|\n")
	for _, arm := range r.Arms {
		var hrSum, meanMax, p99Max float64
		for _, s := range arm.Samples {
			hrSum += s.HitRatio
			if s.MeanMS > meanMax {
				meanMax = s.MeanMS
			}
			if s.P99MS > p99Max {
				p99Max = s.P99MS
			}
		}
		hr := 0.0
		if len(arm.Samples) > 0 {
			hr = hrSum / float64(len(arm.Samples))
		}
		fmt.Fprintf(&b, "| %s | %d | %d | %.3f | max %.0f | max %.0f | %d | %d |\n",
			arm.Arm, len(arm.Samples), arm.TotalOps, hr, meanMax, p99Max, arm.FiringCount, arm.DriftFlagged)
	}

	for _, arm := range r.Arms {
		if len(arm.Alerts) == 0 {
			fmt.Fprintf(&b, "\nArm `%s`: no alerts.\n", arm.Arm)
			continue
		}
		fmt.Fprintf(&b, "\nArm `%s` alert timeline:\n\n", arm.Arm)
		b.WriteString("| offset | rule | transition | value |\n")
		b.WriteString("|---|---|---|---|\n")
		for _, a := range arm.Alerts {
			val := "—"
			if a.State == string(monitor.StateFiring) {
				val = fmt.Sprintf("%.1f", a.Value)
			}
			fmt.Fprintf(&b, "| %s | %s | %s | %s |\n", msDur(a.OffsetMS), a.Rule, a.State, val)
		}
	}

	wroteDriftHeader := false
	for _, arm := range r.Arms {
		for _, f := range arm.Drift {
			if !wroteDriftHeader {
				b.WriteString("\nDrift (early quarter vs late quarter):\n\n")
				b.WriteString("| arm | check | early | late | change | monotonic | flagged |\n")
				b.WriteString("|---|---|---|---|---|---|---|\n")
				wroteDriftHeader = true
			}
			fmt.Fprintf(&b, "| %s | %s | %.3f | %.3f | %+.0f%% | %v | %v |\n",
				arm.Arm, f.Check, f.Early, f.Late, f.Change*100, f.Monotonic, f.Flagged)
		}
	}
	return b.String()
}

// msDur formats a millisecond offset compactly (e.g. "1h22m", "4m30s").
func msDur(ms float64) string {
	d := time.Duration(ms * float64(time.Millisecond)).Round(time.Second)
	return d.String()
}
