package scenario

import (
	"strings"
	"testing"
	"time"
)

func tierPhase() []Phase {
	return []Phase{{Name: "p", Duration: time.Minute, Workload: Workload{Kind: WorkloadZipfian}}}
}

func TestSpecValidationRejectsBadTiers(t *testing.T) {
	for _, c := range []struct {
		name string
		spec Spec
	}{
		{"unknown backend store", Spec{Name: "x", BackendStore: "glacier", Phases: tierPhase()}},
		{"unknown tier", Spec{Name: "x", StoreTiers: []string{"mem", "glacier"}, Phases: tierPhase()}},
		{"dup tier", Spec{Name: "x", StoreTiers: []string{"mem", "mem"}, Phases: tierPhase()}},
		{"both tier fields", Spec{Name: "x", BackendStore: "disk", StoreTiers: []string{"mem"}, Phases: tierPhase()}},
	} {
		if err := c.spec.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
	ok := Spec{Name: "x", StoreTiers: []string{"mem", "remote-slow"}, Phases: tierPhase()}
	if err := ok.Validate(); err != nil {
		t.Errorf("tier sweep rejected: %v", err)
	}
	single := Spec{Name: "x", BackendStore: "disk", Phases: tierPhase()}
	if err := single.Validate(); err != nil {
		t.Errorf("backend_store rejected: %v", err)
	}
}

// TestBackendTierSweepPairsTiers runs the backend-tier library scenario at
// reduced scale: every arm must appear once per tier under Arm@tier labels,
// the slow remote tier must be measurably slower than mem for the cache-
// less Backend arm, and Agar must absorb part of that cost.
func TestBackendTierSweepPairsTiers(t *testing.T) {
	spec, ok := Lookup("backend-tier")
	if !ok {
		t.Fatal("backend-tier scenario missing")
	}
	rep, err := Run(reduced(spec), reducedOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.StoreTiers) != 2 {
		t.Fatalf("report tiers = %v", rep.StoreTiers)
	}
	// 4 default arms x 2 tiers.
	if len(rep.Arms) != 8 {
		t.Fatalf("report arms = %v", rep.Arms)
	}
	for _, arm := range rep.Arms {
		if !strings.Contains(arm, "@mem") && !strings.Contains(arm, "@remote-slow") {
			t.Fatalf("arm %q lacks a tier label", arm)
		}
	}

	memBackend := armPhase(t, rep, "steady", "Backend@mem")
	slowBackend := armPhase(t, rep, "steady", "Backend@remote-slow")
	if slowBackend.MeanMS <= memBackend.MeanMS {
		t.Fatalf("remote-slow backend mean %.0f ms not above mem %.0f ms",
			slowBackend.MeanMS, memBackend.MeanMS)
	}
	memAgar := armPhase(t, rep, "steady", "Agar@mem")
	slowAgar := armPhase(t, rep, "steady", "Agar@remote-slow")
	slowTax := slowBackend.MeanMS - memBackend.MeanMS
	agarTax := slowAgar.MeanMS - memAgar.MeanMS
	if agarTax >= slowTax {
		t.Fatalf("cache absorbed none of the tier cost: agar +%.0f ms vs backend +%.0f ms", agarTax, slowTax)
	}

	// The paired deltas include Agar-on-mem against Agar-on-the-slow-tier.
	foundCross := false
	for _, d := range rep.Deltas {
		if d.Arm == "Agar@remote-slow" {
			foundCross = true
		}
	}
	if !foundCross {
		t.Fatal("deltas lack the Agar@mem vs Agar@remote-slow pairing")
	}
}

// TestBackendStoreSingleTierKeepsPlainLabels pins a whole scenario onto one
// non-default tier: labels stay plain, the report echoes the tier, and the
// added service latency shows up against the same spec on mem.
func TestBackendStoreSingleTierKeepsPlainLabels(t *testing.T) {
	spec := Spec{
		Name:    "tier-pinned",
		Region:  "frankfurt",
		Objects: 60,
		Phases: []Phase{{Name: "steady", Duration: 30 * time.Second,
			Workload: Workload{Kind: WorkloadZipfian, Skew: 1.1}}},
	}
	opts := reducedOpts()
	memRep, err := Run(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	spec.BackendStore = "remote"
	tierRep, err := Run(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if tierRep.BackendStore != "remote" {
		t.Fatalf("report backend_store = %q", tierRep.BackendStore)
	}
	for _, arm := range tierRep.Arms {
		if strings.Contains(arm, "@") {
			t.Fatalf("single-tier run grew a tier label: %q", arm)
		}
	}
	memBackend := armPhase(t, memRep, "steady", "Backend")
	tierBackend := armPhase(t, tierRep, "steady", "Backend")
	if tierBackend.MeanMS <= memBackend.MeanMS {
		t.Fatalf("remote tier mean %.0f ms not above mem %.0f ms", tierBackend.MeanMS, memBackend.MeanMS)
	}
}
