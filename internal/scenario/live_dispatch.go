package scenario

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"github.com/agardist/agar/internal/geo"
	"github.com/agardist/agar/internal/live"
	"github.com/agardist/agar/internal/stats"
	"github.com/agardist/agar/internal/workload"
)

// DispatchPhase is one dispatch arm's metrics over one phase of the live
// pair: wall-clock throughput and read latency under the phase workload.
type DispatchPhase struct {
	Phase string `json:"phase"`
	// Reads counts successful reads; Errors are reported separately and
	// never count toward Throughput.
	Reads      int                   `json:"reads"`
	Errors     int                   `json:"errors"`
	ElapsedMS  float64               `json:"elapsed_ms"`
	Throughput float64               `json:"throughput_rps"` // reads per wall-clock second
	Latency    stats.DurationSummary `json:"latency"`
}

// DispatchArm is one dispatch mode's full live run.
type DispatchArm struct {
	Dispatch string `json:"dispatch"`
	// MaxQueueDepth is the deepest dispatch_queue_depth sampled during the
	// run (always 0 for the conn arm, which has no shard queues).
	MaxQueueDepth int64           `json:"max_queue_depth"`
	Phases        []DispatchPhase `json:"phases"`
}

// DispatchDelta pairs one phase's throughput across the two dispatch modes:
// positive percentages mean shard dispatch moved more reads per second.
type DispatchDelta struct {
	Phase    string  `json:"phase"`
	ConnRPS  float64 `json:"conn_rps"`
	ShardRPS float64 `json:"shard_rps"`
	DeltaPct float64 `json:"delta_pct"`
}

// LiveDispatchReport is the outcome of a live dispatch-mode pair run.
type LiveDispatchReport struct {
	Scenario string          `json:"scenario"`
	Clients  int             `json:"clients"`
	Arms     []DispatchArm   `json:"arms"`
	Deltas   []DispatchDelta `json:"deltas,omitempty"`
}

// dispatchRounds is how many interleaved measurement rounds each phase
// runs per arm. Arms alternate within every round and the round's starting
// arm alternates too (even count, so each arm leads equally often): machine
// noise — scheduler drift, GC pauses, frequency shifts — lands on both
// arms instead of biasing whichever ran first or last.
const dispatchRounds = 4

// dispatchArmState is one booted dispatch arm: its cluster and the
// per-client readers (one connection-pool set per client — the fan-in the
// dispatch layer exists to absorb).
type dispatchArmState struct {
	mode    live.Dispatch
	cluster *live.Cluster
	readers []*live.NetworkReader
	arm     *DispatchArm
}

func (s *dispatchArmState) close() {
	for _, r := range s.readers {
		if r != nil {
			r.Close()
		}
	}
	if s.cluster != nil {
		s.cluster.Close()
	}
}

// RunLiveDispatch replays every phase of the scenario against localhost
// clusters, one per dispatch mode in spec.DispatchModes: real sockets, the
// spec's client fan-in (each client goroutine on its own connection pool),
// and the phase workloads with hot ranges rescaled onto the smoke-sized
// working set. Chaos events stay off — the pair isolates the server's
// dispatch layer, so the only variable between arms is how decoded frames
// are scheduled. Both clusters boot and warm up front, and each phase's
// measurement rounds interleave arm by arm over identical seeded key
// streams, so per-phase throughput and latency pair mode against mode.
func RunLiveDispatch(spec Spec, opts LiveOptions) (*LiveDispatchReport, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(spec.DispatchModes) == 0 {
		return nil, fmt.Errorf("scenario %q: no dispatch modes to pair", spec.Name)
	}
	opts = opts.withDefaults()
	region := geo.Frankfurt
	if spec.Region != "" {
		region, _ = geo.ParseRegion(spec.Region)
	}
	clients := spec.Clients
	if clients < 1 {
		clients = 2
	}

	arms := make([]*dispatchArmState, 0, len(spec.DispatchModes))
	defer func() {
		for _, a := range arms {
			a.close()
		}
	}()
	for _, mode := range spec.DispatchModes {
		d, _ := live.ParseDispatch(mode)
		a, err := bootDispatchArm(spec, opts, region, clients, d)
		if err != nil {
			return nil, fmt.Errorf("scenario %q live dispatch %s: %w", spec.Name, d, err)
		}
		arms = append(arms, a)
	}

	rep := &LiveDispatchReport{Scenario: spec.Name, Clients: clients}
	for pi, phase := range spec.Phases {
		p := rescalePhase(phase, spec.objects(), opts.Objects)
		per := opts.Ops / clients
		if per < 1 {
			per = 1
		}
		type phaseAccum struct {
			lats    []time.Duration
			errs    int
			reads   int
			elapsed time.Duration
		}
		accum := make([]phaseAccum, len(arms))
		for round := 0; round < dispatchRounds; round++ {
			for i := range arms {
				ai := i
				if round%2 == 1 { // odd rounds run the arms in reverse
					ai = len(arms) - 1 - i
				}
				reads, errs, lats, elapsed := runDispatchRound(arms[ai], p, opts, pi, round, clients, per)
				acc := &accum[ai]
				acc.reads += reads
				acc.errs += errs
				acc.lats = append(acc.lats, lats...)
				acc.elapsed += elapsed
			}
		}
		for ai, a := range arms {
			acc := &accum[ai]
			lat := stats.NewLatencySummary(len(acc.lats))
			for _, l := range acc.lats {
				lat.Add(l)
			}
			dp := DispatchPhase{
				Phase:     p.Name,
				Reads:     acc.reads,
				Errors:    acc.errs,
				ElapsedMS: float64(acc.elapsed) / float64(time.Millisecond),
				Latency:   lat.Summarize(),
			}
			if acc.elapsed > 0 {
				dp.Throughput = float64(acc.reads) / acc.elapsed.Seconds()
			}
			a.arm.Phases = append(a.arm.Phases, dp)
		}
	}
	for _, a := range arms {
		rep.Arms = append(rep.Arms, *a.arm)
	}

	// Pair shard against conn per phase when both arms ran.
	var conn, shard *DispatchArm
	for i := range rep.Arms {
		switch rep.Arms[i].Dispatch {
		case string(live.DispatchConn):
			conn = &rep.Arms[i]
		case string(live.DispatchShard):
			shard = &rep.Arms[i]
		}
	}
	if conn != nil && shard != nil {
		for i := range conn.Phases {
			if i >= len(shard.Phases) {
				break
			}
			delta := DispatchDelta{
				Phase:    conn.Phases[i].Phase,
				ConnRPS:  conn.Phases[i].Throughput,
				ShardRPS: shard.Phases[i].Throughput,
			}
			if delta.ConnRPS > 0 {
				delta.DeltaPct = (delta.ShardRPS - delta.ConnRPS) / delta.ConnRPS * 100
			}
			rep.Deltas = append(rep.Deltas, delta)
		}
	}
	return rep, nil
}

// bootDispatchArm starts one arm's cluster, loads the working set, connects
// the per-client readers, and warms cache and popularity on the first
// phase's workload with one forced reconfiguration — the same warm sequence
// for every arm, so the knapsack configuration the hints serve is frozen
// and identical before any measurement round runs.
func bootDispatchArm(spec Spec, opts LiveOptions, region geo.RegionID, clients int, d live.Dispatch) (*dispatchArmState, error) {
	chunkBytes := int64(opts.ObjectBytes/opts.K + 1)
	cluster, err := live.StartCluster(live.ClusterConfig{
		Regions:      geo.DefaultRegions(),
		K:            opts.K,
		M:            opts.M,
		ClientRegion: region,
		CacheBytes:   30 * chunkBytes,
		ChunkBytes:   chunkBytes,
		// The warm loop forces the one reconfiguration the pair needs; a
		// long period keeps knapsack solves from landing mid-round and
		// skewing one arm's wall clock.
		ReconfigPeriod: time.Hour,
		DelayScale:     opts.DelayScale,
		Dispatch:       d,
	})
	if err != nil {
		return nil, err
	}
	a := &dispatchArmState{mode: d, cluster: cluster, arm: &DispatchArm{Dispatch: d.String()}}

	if err := loadWorkingSet(cluster, opts); err != nil {
		a.close()
		return nil, err
	}
	a.readers = make([]*live.NetworkReader, clients)
	for i := range a.readers {
		if a.readers[i], err = live.NewNetworkReader(cluster, region); err != nil {
			a.close()
			return nil, err
		}
	}

	warm := rescalePhase(spec.Phases[0], spec.objects(), opts.Objects)
	warmGen := warm.Workload.generator(opts.Objects, opts.Seed+101)
	for i := 0; i < opts.Ops/2; i++ {
		if i == opts.Ops/4 {
			cluster.Node().ForceReconfigure()
		}
		a.readers[0].Read(workload.KeyName(warmGen.Next()))
	}
	a.readers[0].FlushPopulation()
	return a, nil
}

// runDispatchRound plays one measurement round of one phase on one arm:
// every client goroutine reads its own seeded key stream through its own
// reader. The dispatch queue depth is sampled while the round runs.
func runDispatchRound(a *dispatchArmState, p Phase, opts LiveOptions, pi, round, clients, per int) (reads, errs int, lats []time.Duration, elapsed time.Duration) {
	stopSample := make(chan struct{})
	var sampleWG sync.WaitGroup
	sampleWG.Add(1)
	go func() {
		defer sampleWG.Done()
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopSample:
				return
			case <-tick.C:
				if depth := a.cluster.CacheQueueDepth(); depth > a.arm.MaxQueueDepth {
					a.arm.MaxQueueDepth = depth
				}
			}
		}
	}()

	type clientResult struct {
		lats []time.Duration
		errs int
	}
	results := make([]clientResult, clients)
	start := time.Now()
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			gen := p.Workload.generator(opts.Objects,
				opts.Seed+int64(pi)*1009+int64(round)*211+int64(cl)*59+7)
			res := &results[cl]
			res.lats = make([]time.Duration, 0, per)
			for i := 0; i < per; i++ {
				key := workload.KeyName(gen.Next())
				_, info, err := a.readers[cl].ReadDetailed(key)
				if err != nil {
					res.errs++
					continue
				}
				res.lats = append(res.lats, info.Latency)
			}
		}(cl)
	}
	wg.Wait()
	elapsed = time.Since(start)
	close(stopSample)
	sampleWG.Wait()

	// Drain this arm's async cache fills outside the timed window so they
	// never bleed CPU into the other arm's next round.
	for _, r := range a.readers {
		r.FlushPopulation()
	}

	for _, res := range results {
		lats = append(lats, res.lats...)
		reads += len(res.lats) // successful reads only: errors never inflate throughput
		errs += res.errs
	}
	return reads, errs, lats, elapsed
}

// Markdown renders the pair as a per-phase throughput table.
func (r *LiveDispatchReport) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### Live dispatch pair (`%s`, %d clients)\n\n", r.Scenario, r.Clients)
	b.WriteString("| phase |")
	for _, a := range r.Arms {
		fmt.Fprintf(&b, " %s reads/s | %s mean |", a.Dispatch, a.Dispatch)
	}
	if len(r.Deltas) > 0 {
		b.WriteString(" shard vs conn |")
	}
	b.WriteString("\n|---|")
	for range r.Arms {
		b.WriteString("---:|---:|")
	}
	if len(r.Deltas) > 0 {
		b.WriteString("---:|")
	}
	b.WriteString("\n")
	for pi := range r.Arms[0].Phases {
		fmt.Fprintf(&b, "| %s |", r.Arms[0].Phases[pi].Phase)
		for _, a := range r.Arms {
			if pi < len(a.Phases) {
				fmt.Fprintf(&b, " %.0f | %.1f ms |", a.Phases[pi].Throughput, a.Phases[pi].Latency.MeanMS)
			} else {
				b.WriteString(" — | — |")
			}
		}
		if pi < len(r.Deltas) {
			fmt.Fprintf(&b, " %+.1f%% |", r.Deltas[pi].DeltaPct)
		}
		b.WriteString("\n")
	}
	for _, a := range r.Arms {
		if a.Dispatch == "shard" {
			fmt.Fprintf(&b, "\nmax dispatch_queue_depth sampled on the shard arm: %d\n", a.MaxQueueDepth)
		}
	}
	return b.String()
}
