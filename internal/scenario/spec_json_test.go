package scenario

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestSpecJSONRoundTrip marshals a library scenario (one with events, a
// mix workload and a non-default client count), loads it back through the
// -spec file path, and re-runs it: the loaded spec must be structurally
// identical and produce a complete report.
func TestSpecJSONRoundTrip(t *testing.T) {
	orig, ok := Lookup("high-load")
	if !ok {
		t.Fatal("high-load scenario missing")
	}
	data, err := json.MarshalIndent(orig, "", "  ")
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSpecFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, loaded) {
		t.Fatalf("round trip diverged:\norig:   %+v\nloaded: %+v", orig, loaded)
	}

	rep, err := Run(reduced(loaded), reducedOpts())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scenario != orig.Name || len(rep.Phases) != len(orig.Phases) {
		t.Fatalf("re-run report wrong shape: %s, %d phases", rep.Scenario, len(rep.Phases))
	}
}

func TestLoadSpecRejects(t *testing.T) {
	cases := []struct {
		name string
		body string
	}{
		{"bad json", `{"name": "x",`},
		{"unknown field", `{"name": "x", "phasez": []}`},
		{"fails validation", `{"name": "x", "phases": []}`},
	}
	for _, c := range cases {
		if _, err := LoadSpec(strings.NewReader(c.body)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	if _, err := LoadSpecFile("/nonexistent/spec.json"); err == nil {
		t.Error("missing file: expected error")
	}
}

func TestEveryLibrarySpecRoundTripsThroughJSON(t *testing.T) {
	for _, s := range Library() {
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(s); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		loaded, err := LoadSpec(&buf)
		if err != nil {
			t.Errorf("%s: %v", s.Name, err)
			continue
		}
		if !reflect.DeepEqual(s, loaded) {
			t.Errorf("%s: round trip diverged", s.Name)
		}
	}
}

func TestCacheContentionScenarioInLibrary(t *testing.T) {
	s, ok := Lookup("cache-contention")
	if !ok {
		t.Fatal("cache-contention scenario missing from library")
	}
	if s.Clients < 8 {
		t.Fatalf("cache-contention models %d clients; the point is heavy fan-in", s.Clients)
	}
	rep, err := Run(reduced(s), reducedOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Phases) != len(s.Phases) {
		t.Fatalf("report has %d phases, want %d", len(rep.Phases), len(s.Phases))
	}
	// The hot set fits in every arm's cache: the caching arms must beat the
	// backend-only arm on mean latency in the hammer phase.
	var hammer *PhaseReport
	for i := range rep.Phases {
		if rep.Phases[i].Name == "hammer" {
			hammer = &rep.Phases[i]
		}
	}
	if hammer == nil {
		t.Fatal("hammer phase missing from report")
	}
	var agar, backendMS float64
	for _, a := range hammer.Arms {
		switch strings.ToLower(a.Arm) {
		case "agar":
			agar = a.MeanMS
		case "backend":
			backendMS = a.MeanMS
		}
	}
	if agar == 0 || backendMS == 0 {
		t.Fatalf("arms missing from hammer phase: %+v", hammer.Arms)
	}
	if agar >= backendMS {
		t.Errorf("agar mean %.1f ms not better than backend %.1f ms under contention", agar, backendMS)
	}
}
