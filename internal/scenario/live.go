package scenario

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"github.com/agardist/agar/internal/geo"
	"github.com/agardist/agar/internal/live"
	"github.com/agardist/agar/internal/metrics"
	"github.com/agardist/agar/internal/netsim"
	"github.com/agardist/agar/internal/stats"
	"github.com/agardist/agar/internal/trace"
	"github.com/agardist/agar/internal/workload"
)

// LiveOptions sizes a live smoke run. The smoke boots the full localhost
// cluster (store servers, cache server, hint service, real TCP framing) and
// replays the scenario's opening phase through it — a deployment-level
// sanity check for the simulated results, not a benchmark.
type LiveOptions struct {
	// Ops is the number of measured reads (default 120).
	Ops int
	// Objects is the working set (default 40).
	Objects int
	// ObjectBytes is the stored object size (default 4 KiB).
	ObjectBytes int
	// K, M are the erasure-code parameters (default 4+2: one chunk per
	// default region, so outages and partitions bite).
	K, M int
	// DelayScale compresses the emulated WAN delays (default 0.002:
	// 980 ms becomes ~2 ms). Negative disables delay injection entirely.
	DelayScale float64
	// Seed drives the workload.
	Seed int64
	// Traces is how many of the slowest measured reads keep their span
	// trace in the result (default 3; negative disables tracing output).
	Traces int
}

func (o LiveOptions) withDefaults() LiveOptions {
	if o.Ops <= 0 {
		o.Ops = 120
	}
	if o.Objects <= 0 {
		o.Objects = 40
	}
	if o.ObjectBytes <= 0 {
		o.ObjectBytes = 4 * 1024
	}
	if o.K <= 0 {
		o.K, o.M = 4, 2
	}
	if o.DelayScale == 0 {
		o.DelayScale = 0.002
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Traces == 0 {
		o.Traces = 3
	}
	return o
}

// LiveResult summarises a live smoke run.
type LiveResult struct {
	Scenario    string                `json:"scenario"`
	Phase       string                `json:"phase"`
	Latency     stats.DurationSummary `json:"latency"`
	CacheChunks int                   `json:"cache_chunks"`
	Errors      int                   `json:"errors"`

	// Cooperative-mesh accounting, populated for peered scenarios: chunks
	// this run's reads pulled from peer caches, the peer cache server's
	// own hit/miss counters, the local mirror staleness at the end of the
	// run, and paired latency summaries of peer-assisted reads against
	// reads that crossed the WAN.
	PeerRegion  string                 `json:"peer_region,omitempty"`
	PeerChunks  int                    `json:"peer_chunks,omitempty"`
	PeerHits    int64                  `json:"peer_hits,omitempty"`
	PeerMisses  int64                  `json:"peer_misses,omitempty"`
	DigestAgeMS int64                  `json:"digest_age_ms,omitempty"`
	PeerReads   *stats.DurationSummary `json:"peer_reads,omitempty"`
	WANReads    *stats.DurationSummary `json:"wan_reads,omitempty"`

	// OpLatencies is the cache server's per-opcode latency profile over
	// the measured window, derived from /metrics scrapes at the phase
	// boundaries; SlowTraces holds the span traces of the slowest
	// measured reads, each span carrying the server-side annotations its
	// reply returned; Flight summarizes the cluster's flight recorder
	// (/debug/traces) as scraped at the phase boundary.
	OpLatencies []OpLatency      `json:"op_latencies,omitempty"`
	SlowTraces  []live.ReadTrace `json:"slow_traces,omitempty"`
	Flight      []FlightOp       `json:"flight,omitempty"`
}

// FlightOp is one opcode's flight-recorder retention on the measured
// cluster at the end of the phase: how many slow and errored records the
// always-on recorder kept, and the worst one's duration and trace ID —
// the join key back into the client-side SlowTraces.
type FlightOp struct {
	Op           string `json:"op"`
	Retained     int    `json:"retained"`
	Errors       int    `json:"errors"`
	SlowestUS    int64  `json:"slowest_us"`
	SlowestTrace string `json:"slowest_trace,omitempty"`
}

// MetricsMarkdown renders the scrape-derived per-opcode latency table and
// the slowest read span traces as a markdown fragment; empty when the run
// collected neither.
func (lr *LiveResult) MetricsMarkdown() string {
	if len(lr.OpLatencies) == 0 && len(lr.SlowTraces) == 0 {
		return ""
	}
	var b strings.Builder
	if len(lr.OpLatencies) > 0 {
		b.WriteString("\nCache-server op latency (scraped from `/metrics` over the measured window):\n\n")
		b.WriteString("| op | count | queue p50 (ms) | queue p99 (ms) | exec p50 (ms) | exec p99 (ms) |\n")
		b.WriteString("|---|---:|---:|---:|---:|---:|\n")
		for _, ol := range lr.OpLatencies {
			fmt.Fprintf(&b, "| %s | %d | %.3f | %.3f | %.3f | %.3f |\n",
				ol.Op, ol.Count, ol.QueueP50MS, ol.QueueP99MS, ol.ExecP50MS, ol.ExecP99MS)
		}
	}
	if len(lr.SlowTraces) > 0 {
		b.WriteString("\nSlowest reads (span traces; indented lines are server-measured\nannotations carried back on the exchange's reply, offsets relative to\nthe server receiving the frame):\n\n```\n")
		for i, tr := range lr.SlowTraces {
			fmt.Fprintf(&b, "%d. %s  %.1f ms", i+1, tr.Key, tr.TotalMS)
			if tr.TraceID != "" {
				fmt.Fprintf(&b, "  trace=%s", tr.TraceID)
			}
			b.WriteString("\n")
			for _, sp := range tr.Spans {
				fmt.Fprintf(&b, "   %-22s +%7.2f ms %8.2f ms", sp.Name, sp.StartMS, sp.DurMS)
				if sp.Chunks > 0 {
					fmt.Fprintf(&b, "  %d chunks / %d B", sp.Chunks, sp.Bytes)
				}
				if sp.Err != "" {
					fmt.Fprintf(&b, "  err=%s", sp.Err)
				}
				b.WriteString("\n")
				for _, ann := range sp.Remote {
					fmt.Fprintf(&b, "      · %-19s +%7d µs %8d µs\n", ann.Name, ann.OffUS, ann.DurUS)
				}
			}
		}
		b.WriteString("```\n")
	}
	if len(lr.Flight) > 0 {
		b.WriteString("\nFlight recorder (`/debug/traces` scraped at the phase boundary):\n\n")
		b.WriteString("| op | slow retained | errors | slowest (ms) | slowest trace |\n")
		b.WriteString("|---|---:|---:|---:|:---|\n")
		for _, f := range lr.Flight {
			tid := f.SlowestTrace
			if tid == "" {
				tid = "—"
			}
			fmt.Fprintf(&b, "| %s | %d | %d | %.3f | `%s` |\n",
				f.Op, f.Retained, f.Errors, float64(f.SlowestUS)/1000, tid)
		}
	}
	return b.String()
}

// OpLatency is one opcode's latency profile on the measured cache server:
// queue-wait and execute percentiles in milliseconds, interpolated from
// the delta between the measurement-start and measurement-end histogram
// scrapes the way Prometheus's histogram_quantile would.
type OpLatency struct {
	Op         string  `json:"op"`
	Count      uint64  `json:"count"`
	QueueP50MS float64 `json:"queue_p50_ms"`
	QueueP99MS float64 `json:"queue_p99_ms"`
	ExecP50MS  float64 `json:"exec_p50_ms"`
	ExecP99MS  float64 `json:"exec_p99_ms"`
}

// RunLiveSmoke replays the scenario's first phase against the localhost
// cluster: real sockets, real wire framing, the region's Agar node
// reconfiguring on the wall clock, and the phase's chaos events (if any)
// compiled onto a wall-clock netsim schedule. It validates that the
// simulated pipeline holds together as a deployed system.
func RunLiveSmoke(spec Spec, opts LiveOptions) (*LiveResult, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	region := geo.Frankfurt
	if spec.Region != "" {
		region, _ = geo.ParseRegion(spec.Region)
	}

	// The first phase, with hot key ranges rescaled from the scenario's
	// working set into the smoke's smaller one. Its network events are
	// compiled now but stay dormant (epoch parked in the future) until
	// measurement starts, so cluster boot, loading and warm-up run chaos-
	// free — the same semantics as the simulated runner.
	phase := rescalePhase(spec.Phases[0], spec.objects(), opts.Objects)
	firstPhase := Spec{Name: spec.Name, Phases: []Phase{phase}}
	sched := compile(firstPhase, time.Now()).schedule
	sched.SetEpoch(time.Now().Add(24 * time.Hour))

	chunkBytes := int64(opts.ObjectBytes/opts.K + 1)
	boot := func(clientRegion geo.RegionID, sched *netsim.Schedule, metricsAddr string) (*live.Cluster, error) {
		return live.StartCluster(live.ClusterConfig{
			Regions:        geo.DefaultRegions(),
			K:              opts.K,
			M:              opts.M,
			ClientRegion:   clientRegion,
			CacheBytes:     30 * chunkBytes,
			ChunkBytes:     chunkBytes,
			ReconfigPeriod: 200 * time.Millisecond,
			DelayScale:     opts.DelayScale,
			Schedule:       sched,
			DigestPeriod:   100 * time.Millisecond,
			MetricsAddr:    metricsAddr,
		})
	}
	// Only the measured cluster exposes /metrics: the runner scrapes it at
	// the phase boundaries to derive the per-opcode latency table.
	cluster, err := boot(region, sched, "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("scenario %q live: %w", spec.Name, err)
	}
	defer cluster.Close()

	load := func(c *live.Cluster) error {
		if err := loadWorkingSet(c, opts); err != nil {
			return fmt.Errorf("scenario %q live: %w", spec.Name, err)
		}
		return nil
	}
	if err := load(cluster); err != nil {
		return nil, err
	}

	res := &LiveResult{Scenario: spec.Name, Phase: phase.Name}

	// Peered scenarios boot a second live cluster in the first peer region,
	// join the two into a symmetric mesh, and warm the peer on the same
	// phase workload so its cache holds the shared hot set before
	// measurement — the live twin of the simulated runner's peer warm.
	var peer *live.Cluster
	if len(spec.PeerRegions) > 0 {
		peerRegion, _ := geo.ParseRegion(spec.PeerRegions[0])
		peer, err = boot(peerRegion, nil, "")
		if err != nil {
			return nil, fmt.Errorf("scenario %q live peer: %w", spec.Name, err)
		}
		defer peer.Close()
		if err := load(peer); err != nil {
			return nil, err
		}
		matrix := geo.DefaultMatrix()
		cluster.Peer(peerRegion, peer.CacheAddr(), matrix.Get(region, peerRegion))
		peer.Peer(region, cluster.CacheAddr(), matrix.Get(peerRegion, region))
		res.PeerRegion = peerRegion.String()

		// The peer serves no clients of its own during the smoke, so freeze
		// its wall-clock reconfiguration loop: a periodic tick mid-warm
		// would drain the popularity window (EndPeriod) out from under the
		// explicit ForceReconfigure below, leaving an empty configuration —
		// and an empty digest. The warm sequence drives reconfiguration
		// itself; the advertiser keeps digesting the static warm cache.
		peer.Node().Stop()
		peerReader, err := live.NewNetworkReader(peer, peerRegion)
		if err != nil {
			return nil, fmt.Errorf("scenario %q live peer: %w", spec.Name, err)
		}
		peerGen := phase.Workload.generator(opts.Objects, opts.Seed+501)
		for i := 0; i < opts.Ops/2; i++ {
			if i == opts.Ops/4 {
				peer.Node().ForceReconfigure()
			}
			peerReader.Read(workload.KeyName(peerGen.Next()))
		}
		peerReader.FlushPopulation()
		peerReader.Close()
		peer.PushDigests()
	}

	reader, err := live.NewNetworkReader(cluster, region)
	if err != nil {
		return nil, fmt.Errorf("scenario %q live: %w", spec.Name, err)
	}
	defer reader.Close()

	gen := phase.Workload.generator(opts.Objects, opts.Seed)
	lat := stats.NewLatencySummary(opts.Ops)
	peerLat := stats.NewLatencySummary(opts.Ops)
	wanLat := stats.NewLatencySummary(opts.Ops)
	warmup := opts.Ops / 3
	var scrapeStart []metrics.Family
	for i := 0; i < warmup+opts.Ops; i++ {
		if i == warmup {
			// Measurement starts here: activate the phase's chaos events,
			// snapshot /metrics so the latency table covers only the
			// measured window, and clear the flight recorder so the
			// slowest-trace table excludes warm-up ops.
			sched.SetEpoch(time.Now())
			cluster.Recorder().Reset()
			if scrapeStart, err = scrapeMetrics(cluster.MetricsAddr()); err != nil {
				return nil, fmt.Errorf("scenario %q live scrape: %w", spec.Name, err)
			}
		}
		key := workload.KeyName(gen.Next())
		_, info, err := reader.ReadDetailed(key)
		if i < warmup {
			continue
		}
		if err != nil {
			res.Errors++
			continue
		}
		lat.Add(info.Latency)
		res.CacheChunks += info.CacheChunks
		res.PeerChunks += info.PeerChunks
		if info.PeerChunks > 0 {
			peerLat.Add(info.Latency)
		} else if info.CacheChunks == 0 {
			wanLat.Add(info.Latency)
		}
		if opts.Traces > 0 && info.Trace != nil {
			res.SlowTraces = append(res.SlowTraces, *info.Trace)
			sort.Slice(res.SlowTraces, func(a, b int) bool {
				return res.SlowTraces[a].TotalMS > res.SlowTraces[b].TotalMS
			})
			if len(res.SlowTraces) > opts.Traces {
				res.SlowTraces = res.SlowTraces[:opts.Traces]
			}
		}
	}
	res.Latency = lat.Summarize()

	scrapeEnd, err := scrapeMetrics(cluster.MetricsAddr())
	if err != nil {
		return nil, fmt.Errorf("scenario %q live scrape: %w", spec.Name, err)
	}
	res.OpLatencies = opLatencies(scrapeStart, scrapeEnd)
	res.Flight, err = scrapeTraces(cluster.MetricsAddr())
	if err != nil {
		return nil, fmt.Errorf("scenario %q live traces: %w", spec.Name, err)
	}

	if peer != nil {
		s := peerLat.Summarize()
		res.PeerReads = &s
		w := wanLat.Summarize()
		res.WANReads = &w
		peerCache := live.NewRemoteCache(peer.CacheAddr())
		stats, err := peerCache.Stats()
		peerCache.Close()
		if err == nil {
			res.PeerHits = stats["peer_hits"]
			res.PeerMisses = stats["peer_misses"]
		}
		if age, ok := cluster.CoopTable().StalestAge(); ok {
			res.DigestAgeMS = int64(age / time.Millisecond)
		}
	}
	return res, nil
}

// scrapeTraces fetches the cluster's /debug/traces flight-recorder
// snapshot over real HTTP at the phase boundary and condenses it to one
// row per opcode, sorted by opcode. The cluster shares one recorder across
// its store, cache and hint servers, so the summary covers every hop the
// measured reads touched.
func scrapeTraces(addr string) ([]FlightOp, error) {
	resp, err := http.Get("http://" + addr + "/debug/traces")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("traces %s: %s", addr, resp.Status)
	}
	var snap trace.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, err
	}
	out := make([]FlightOp, 0, len(snap.Ops))
	for op, ot := range snap.Ops {
		f := FlightOp{Op: op, Retained: len(ot.Slowest), Errors: len(ot.Errors)}
		if len(ot.Slowest) > 0 {
			f.SlowestUS = ot.Slowest[0].DurUS
			f.SlowestTrace = ot.Slowest[0].TraceID
		}
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Op < out[j].Op })
	return out, nil
}

// scrapeMetrics fetches and parses a cluster's /metrics endpoint — the
// same wire path an external Prometheus scraper would take, so the live
// runner exercises exposition and parsing end to end.
func scrapeMetrics(addr string) ([]metrics.Family, error) {
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("scrape %s: %s", addr, resp.Status)
	}
	return metrics.ParseText(resp.Body)
}

// opLatencies diffs the measurement-start and measurement-end scrapes and
// derives the cache server's per-opcode queue-wait and execute percentiles
// from the histogram deltas, in opcode order.
func opLatencies(start, end []metrics.Family) []OpLatency {
	ex, ok := metrics.SelectFamily(end, metrics.NameServerOpExecute)
	if !ok {
		return nil
	}
	qw, _ := metrics.SelectFamily(end, metrics.NameServerOpQueueWait)
	ex0, _ := metrics.SelectFamily(start, metrics.NameServerOpExecute)
	qw0, _ := metrics.SelectFamily(start, metrics.NameServerOpQueueWait)

	sel := func(f metrics.Family, s metrics.Sample) map[string]string {
		m := make(map[string]string, len(f.Labels))
		for i, name := range f.Labels {
			if i < len(s.LabelValues) {
				m[name] = s.LabelValues[i]
			}
		}
		return m
	}
	var out []OpLatency
	for _, s := range ex.Samples {
		labels := sel(ex, s)
		if labels["server"] != "cache" {
			continue
		}
		prev, _ := metrics.SelectSample(ex0, labels)
		d := metrics.DeltaSample(s, prev)
		if d.Count == 0 {
			continue
		}
		ol := OpLatency{
			Op:        labels["op"],
			Count:     d.Count,
			ExecP50MS: 1000 * metrics.Quantile(ex.Buckets, d, 0.50),
			ExecP99MS: 1000 * metrics.Quantile(ex.Buckets, d, 0.99),
		}
		if qs, ok := metrics.SelectSample(qw, labels); ok {
			q0, _ := metrics.SelectSample(qw0, labels)
			qd := metrics.DeltaSample(qs, q0)
			ol.QueueP50MS = 1000 * metrics.Quantile(qw.Buckets, qd, 0.50)
			ol.QueueP99MS = 1000 * metrics.Quantile(qw.Buckets, qd, 0.99)
		}
		out = append(out, ol)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Op < out[j].Op })
	return out
}

// loadWorkingSet fills the smoke working set — opts.Objects objects of the
// same deterministic payload — into the cluster's backend. Shared by every
// live runner so their deployments load identically.
func loadWorkingSet(c *live.Cluster, opts LiveOptions) error {
	payload := make([]byte, opts.ObjectBytes)
	for i := range payload {
		payload[i] = byte(i * 17)
	}
	for i := 0; i < opts.Objects; i++ {
		if err := c.Backend().PutObject(workload.KeyName(i), payload); err != nil {
			return fmt.Errorf("load: %w", err)
		}
	}
	return nil
}

// rescalePhase maps the phase's hot key ranges from an n-object working
// set onto an m-object one, preserving their relative position and width.
func rescalePhase(p Phase, n, m int) Phase {
	scaleRange := func(lo, hi int) (int, int) {
		nlo := lo * m / n
		nhi := hi * m / n
		if nhi <= nlo {
			nhi = nlo + 1
		}
		if nhi > m {
			nhi = m
			if nlo >= nhi {
				nlo = nhi - 1
			}
		}
		return nlo, nhi
	}
	var scaleWorkload func(w Workload) Workload
	scaleWorkload = func(w Workload) Workload {
		if w.Kind == WorkloadHotspot {
			w.HotLo, w.HotHi = scaleRange(w.HotLo, w.HotHi)
		}
		if len(w.Components) > 0 {
			comps := make([]MixComponent, len(w.Components))
			copy(comps, w.Components)
			for i, c := range comps {
				comps[i].Workload = scaleWorkload(c.Workload)
			}
			w.Components = comps
		}
		return w
	}
	p.Workload = scaleWorkload(p.Workload)
	if len(p.Events) > 0 {
		events := make([]Event, len(p.Events))
		copy(events, p.Events)
		for i, e := range events {
			if e.Kind == EventFlashCrowd {
				events[i].HotLo, events[i].HotHi = scaleRange(e.HotLo, e.HotHi)
			}
		}
		p.Events = events
	}
	return p
}
