package scenario

import (
	"strings"
	"testing"
	"time"
)

func mutPhases() []Phase {
	return []Phase{{Name: "p", Duration: time.Minute,
		Workload: Workload{Kind: WorkloadZipfian}, Updates: 0.3}}
}

func TestSpecValidationRejectsBadCoherence(t *testing.T) {
	for _, c := range []struct {
		name string
		spec Spec
	}{
		{"unknown mode", Spec{Name: "x", Coherence: "quorum", Phases: mutPhases()}},
		{"coherence without updates", Spec{Name: "x", Coherence: CoherenceVersioned, Phases: tierPhase()}},
		{"update+rmw over 1", Spec{Name: "x", Phases: []Phase{{Name: "p", Duration: time.Minute,
			Workload: Workload{Kind: WorkloadZipfian}, Updates: 0.7, RMW: 0.5}}}},
		{"negative updates", Spec{Name: "x", Phases: []Phase{{Name: "p", Duration: time.Minute,
			Workload: Workload{Kind: WorkloadZipfian}, Updates: -0.1}}}},
	} {
		if err := c.spec.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
	for _, mode := range []string{"", CoherenceVersioned, CoherenceNone, CoherencePaired} {
		ok := Spec{Name: "x", Coherence: mode, Phases: mutPhases()}
		if err := ok.Validate(); err != nil {
			t.Errorf("coherence %q rejected: %v", mode, err)
		}
	}
}

// TestWorkloadMixPairsCoherenceModes is the tier-1 pin on the versioned
// write path's whole point, run on the workload-mix YCSB-A scenario: every
// coherent arm must finish with exactly zero stale reads, and the caching
// "!stale" twins — identical except that writes never invalidate — must
// serve superseded payloads, so the paired report prices the write path.
func TestWorkloadMixPairsCoherenceModes(t *testing.T) {
	spec, ok := Lookup("workload-mix-a")
	if !ok {
		t.Fatal("workload-mix-a scenario missing")
	}
	rep, err := Run(reduced(spec), reducedOpts())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Coherence != CoherencePaired {
		t.Fatalf("report coherence = %q", rep.Coherence)
	}
	// 4 default arms x 2 coherence modes.
	if len(rep.Arms) != 8 {
		t.Fatalf("report arms = %v", rep.Arms)
	}

	staleArms := 0
	for _, total := range rep.Totals {
		stale := strings.HasSuffix(total.Arm, StaleSuffix)
		if total.Updates == 0 {
			t.Errorf("arm %s ran no updates", total.Arm)
		}
		if !stale && total.StaleReads != 0 {
			t.Errorf("coherent arm %s served %d stale reads", total.Arm, total.StaleReads)
		}
		if stale {
			staleArms++
			// The backend twin has no cache to go stale; every caching twin
			// must show the damage.
			if total.Arm != "Backend"+StaleSuffix && total.StaleReads == 0 {
				t.Errorf("uncoherent arm %s served no stale reads", total.Arm)
			}
			if total.Arm == "Backend"+StaleSuffix && total.StaleReads != 0 {
				t.Errorf("cacheless arm %s served %d stale reads", total.Arm, total.StaleReads)
			}
		}
	}
	if staleArms != 4 {
		t.Fatalf("%d stale twins in totals, want 4", staleArms)
	}

	// The markdown surfaces the stale-read comparison.
	md := rep.Markdown()
	if !strings.Contains(md, "stale reads") {
		t.Fatal("markdown lacks the stale-read column")
	}
	if !strings.Contains(md, "Agar"+StaleSuffix) {
		t.Fatal("markdown lacks the paired stale arm")
	}
}

// TestWorkloadMixRMWRunsBothHalves pins YCSB F semantics on the
// workload-mix-f scenario (single coherent mode forced for speed): RMW
// operations must count both a measured read and an update, and the
// coherent run must stay stale-free even though every write's input was
// just read.
func TestWorkloadMixRMWRunsBothHalves(t *testing.T) {
	spec, ok := Lookup("workload-mix-f")
	if !ok {
		t.Fatal("workload-mix-f scenario missing")
	}
	spec.Coherence = CoherenceVersioned
	rep, err := Run(reduced(spec), reducedOpts())
	if err != nil {
		t.Fatal(err)
	}
	a := armPhase(t, rep, "rmw", "Agar")
	if a.Updates == 0 {
		t.Fatal("rmw phase ran no updates")
	}
	if a.StaleReads != 0 {
		t.Fatalf("coherent rmw run served %d stale reads", a.StaleReads)
	}
	// Every measured op in an RMW mix performs a read, so hit classes must
	// cover all operations even though half also wrote.
	if got := a.FullHits + a.PartialHits + a.Misses + a.Errors; got != a.Ops {
		t.Fatalf("hit classes cover %d of %d ops", got, a.Ops)
	}
	if a.UpdateP99MS <= 0 {
		t.Fatal("no update latency recorded")
	}
}
