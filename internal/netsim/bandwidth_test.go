package netsim

import (
	"testing"
	"time"

	"github.com/agardist/agar/internal/geo"
)

// testMatrix builds a small symmetric matrix with a flat base latency.
func testMatrix(base time.Duration) *geo.LatencyMatrix {
	m := geo.NewLatencyMatrix(geo.NumDefaultRegions)
	for _, a := range geo.DefaultRegions() {
		for _, b := range geo.DefaultRegions() {
			m.Set(a, b, base)
		}
	}
	return m
}

func TestChunkSizedUncappedEqualsChunk(t *testing.T) {
	// With jitter on, the sized and unsized samplers must draw the same
	// stream: no cap means ChunkSized is Chunk bit for bit.
	a := NewSampler(testMatrix(100*time.Millisecond), 0.05, 42)
	b := NewSampler(testMatrix(100*time.Millisecond), 0.05, 42)
	for i := 0; i < 50; i++ {
		la := a.Chunk(geo.Frankfurt, geo.Tokyo)
		lb := b.ChunkSized(geo.Frankfurt, geo.Tokyo, 1<<20)
		if la != lb {
			t.Fatalf("draw %d: Chunk %v != uncapped ChunkSized %v", i, la, lb)
		}
	}
}

func TestBandwidthCapAddsTransferTime(t *testing.T) {
	s := NewSampler(testMatrix(100*time.Millisecond), 0, 1)
	s.CapBandwidth(geo.Frankfurt, geo.Tokyo, 1<<20) // 1 MiB/s

	// A 512 KiB chunk over 1 MiB/s adds 500 ms of transfer.
	got := s.ChunkSized(geo.Frankfurt, geo.Tokyo, 512<<10)
	want := 100*time.Millisecond + 500*time.Millisecond
	if got != want {
		t.Fatalf("capped transfer = %v, want %v", got, want)
	}
	// Size-dependent: half the bytes, half the transfer.
	if got := s.ChunkSized(geo.Frankfurt, geo.Tokyo, 256<<10); got != 100*time.Millisecond+250*time.Millisecond {
		t.Fatalf("half-size transfer = %v", got)
	}
	// Other links stay uncapped.
	if got := s.ChunkSized(geo.Frankfurt, geo.Dublin, 512<<10); got != 100*time.Millisecond {
		t.Fatalf("uncapped link = %v", got)
	}
	// Zero-size transfers cost only the base latency.
	if got := s.ChunkSized(geo.Frankfurt, geo.Tokyo, 0); got != 100*time.Millisecond {
		t.Fatalf("zero-size = %v", got)
	}
}

func TestBandwidthWildcardAndTightestCap(t *testing.T) {
	s := NewSampler(testMatrix(10*time.Millisecond), 0, 1)
	s.CapBandwidth(geo.Frankfurt, AnyRegion, 4<<20)
	if got := s.Bandwidth(geo.Frankfurt, geo.Sydney); got != 4<<20 {
		t.Fatalf("wildcard cap = %d", got)
	}
	if got := s.Bandwidth(geo.Dublin, geo.Sydney); got != 0 {
		t.Fatalf("unmatched link capped at %d", got)
	}
	// A tighter link-specific cap wins over the wildcard.
	s.CapBandwidth(geo.Frankfurt, geo.Sydney, 1<<20)
	if got := s.Bandwidth(geo.Frankfurt, geo.Sydney); got != 1<<20 {
		t.Fatalf("tightest cap = %d", got)
	}
	// A looser one does not.
	s.CapBandwidth(AnyRegion, AnyRegion, 8<<20)
	if got := s.Bandwidth(geo.Frankfurt, geo.Sydney); got != 1<<20 {
		t.Fatalf("loose cap overrode: %d", got)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("nonpositive cap accepted")
		}
	}()
	s.CapBandwidth(geo.Frankfurt, geo.Dublin, 0)
}

func TestFlipDeterministicAndGuarded(t *testing.T) {
	a := NewSampler(testMatrix(time.Millisecond), 0, 9)
	b := NewSampler(testMatrix(time.Millisecond), 0, 9)
	hits := 0
	for i := 0; i < 1000; i++ {
		fa, fb := a.Flip(0.3), b.Flip(0.3)
		if fa != fb {
			t.Fatalf("draw %d: seeds diverge", i)
		}
		if fa {
			hits++
		}
	}
	if hits < 200 || hits > 400 {
		t.Fatalf("p=0.3 hit %d of 1000", hits)
	}

	// p<=0 must not advance the stream: interleaving no-op flips leaves the
	// jitter draws unchanged.
	c := NewSampler(testMatrix(100*time.Millisecond), 0.05, 7)
	d := NewSampler(testMatrix(100*time.Millisecond), 0.05, 7)
	for i := 0; i < 20; i++ {
		c.Flip(0)
		c.Flip(-1)
		if lc, ld := c.Chunk(geo.Frankfurt, geo.Tokyo), d.Chunk(geo.Frankfurt, geo.Tokyo); lc != ld {
			t.Fatalf("draw %d: guarded Flip advanced the stream (%v vs %v)", i, lc, ld)
		}
		if c.Flip(1) != true {
			t.Fatal("p=1 flip returned false")
		}
		d.Flip(1)
	}
}

// TestScheduleBandwidthCapRule covers the time-varying cap form: a cap
// rule applies only inside its window, composes tightest-wins with static
// sampler caps, honours wildcards, and a nonpositive rate panics.
func TestScheduleBandwidthCapRule(t *testing.T) {
	epoch := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	clock := NewVirtualClock(epoch)
	sched := NewSchedule(epoch)
	sched.CapBandwidth(Window{Start: 10 * time.Second, End: 20 * time.Second}, AnyRegion, AnyRegion, 1<<20)

	s := NewSampler(testMatrix(100*time.Millisecond), 0, 1)
	s.SetChaos(clock, sched)

	// Before the window: uncapped, sized transfer costs only base latency.
	if got := s.ChunkSized(geo.Frankfurt, geo.Tokyo, 512<<10); got != 100*time.Millisecond {
		t.Fatalf("pre-window transfer = %v", got)
	}
	// Inside the window: 512 KiB over 1 MiB/s adds 500 ms.
	clock.Advance(15 * time.Second)
	if got := s.Bandwidth(geo.Frankfurt, geo.Tokyo); got != 1<<20 {
		t.Fatalf("in-window bandwidth = %d", got)
	}
	if got := s.ChunkSized(geo.Frankfurt, geo.Tokyo, 512<<10); got != 600*time.Millisecond {
		t.Fatalf("in-window transfer = %v", got)
	}
	// After the window closes: uncapped again — the brownout recovered.
	clock.Advance(10 * time.Second)
	if got := s.ChunkSized(geo.Frankfurt, geo.Tokyo, 512<<10); got != 100*time.Millisecond {
		t.Fatalf("post-window transfer = %v", got)
	}

	// Directional matching: a from-specific rule leaves other sources alone.
	sched.CapBandwidth(Window{Start: 25 * time.Second}, geo.Dublin, AnyRegion, 2<<20)
	if got := s.Bandwidth(geo.Dublin, geo.Tokyo); got != 2<<20 {
		t.Fatalf("directional cap = %d", got)
	}
	if got := s.Bandwidth(geo.Frankfurt, geo.Tokyo); got != 0 {
		t.Fatalf("unmatched source capped at %d", got)
	}

	// Tightest-wins against a static sampler cap, whichever is smaller.
	s.CapBandwidth(geo.Dublin, geo.Tokyo, 1<<20)
	if got := s.Bandwidth(geo.Dublin, geo.Tokyo); got != 1<<20 {
		t.Fatalf("static tighter cap = %d", got)
	}
	sched.CapBandwidth(Window{Start: 25 * time.Second}, geo.Dublin, geo.Tokyo, 512<<10)
	if got := s.Bandwidth(geo.Dublin, geo.Tokyo); got != 512<<10 {
		t.Fatalf("schedule tighter cap = %d", got)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("nonpositive schedule cap accepted")
		}
	}()
	sched.CapBandwidth(Window{}, AnyRegion, AnyRegion, 0)
}
