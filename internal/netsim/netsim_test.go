package netsim

import (
	"testing"
	"time"

	"github.com/agardist/agar/internal/geo"
)

func TestVirtualClock(t *testing.T) {
	start := time.Date(2026, 6, 12, 0, 0, 0, 0, time.UTC)
	c := NewVirtualClock(start)
	if !c.Now().Equal(start) {
		t.Fatal("clock does not start at start")
	}
	c.Sleep(30 * time.Second)
	if got := c.Now().Sub(start); got != 30*time.Second {
		t.Fatalf("after sleep: %v", got)
	}
	c.Advance(time.Minute)
	if got := c.Now().Sub(start); got != 90*time.Second {
		t.Fatalf("after advance: %v", got)
	}
}

func TestVirtualClockNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative advance did not panic")
		}
	}()
	NewVirtualClock(time.Time{}).Advance(-time.Second)
}

func TestVirtualClockConcurrent(t *testing.T) {
	c := NewVirtualClock(time.Time{})
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 100; j++ {
				c.Advance(time.Millisecond)
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if got := c.Now().Sub(time.Time{}); got != 800*time.Millisecond {
		t.Fatalf("concurrent advances lost: %v", got)
	}
}

func TestRealClock(t *testing.T) {
	var c RealClock
	before := c.Now()
	c.Sleep(time.Millisecond)
	if !c.Now().After(before) {
		t.Fatal("real clock did not advance")
	}
}

func TestSamplerNoJitterIsExact(t *testing.T) {
	m := geo.DefaultMatrix()
	s := NewSampler(m, 0, 1)
	for _, from := range geo.DefaultRegions() {
		for _, to := range geo.DefaultRegions() {
			if got := s.Chunk(from, to); got != m.Get(from, to) {
				t.Fatalf("%v->%v: got %v want %v", from, to, got, m.Get(from, to))
			}
		}
	}
}

func TestSamplerJitterBounds(t *testing.T) {
	m := geo.DefaultMatrix()
	s := NewSampler(m, 0.1, 42)
	base := m.Get(geo.Frankfurt, geo.Tokyo)
	lo := time.Duration(float64(base) * 0.9)
	hi := time.Duration(float64(base) * 1.1)
	varied := false
	prev := time.Duration(-1)
	for i := 0; i < 1000; i++ {
		got := s.Chunk(geo.Frankfurt, geo.Tokyo)
		if got < lo || got > hi {
			t.Fatalf("sample %v outside [%v, %v]", got, lo, hi)
		}
		if prev >= 0 && got != prev {
			varied = true
		}
		prev = got
	}
	if !varied {
		t.Fatal("jittered sampler returned constant values")
	}
}

func TestSamplerDeterministic(t *testing.T) {
	m := geo.DefaultMatrix()
	a := NewSampler(m, 0.05, 7)
	b := NewSampler(m, 0.05, 7)
	for i := 0; i < 100; i++ {
		if a.Chunk(geo.Sydney, geo.Dublin) != b.Chunk(geo.Sydney, geo.Dublin) {
			t.Fatal("same seed must reproduce samples")
		}
	}
}

func TestSamplerFixed(t *testing.T) {
	s := NewSampler(geo.DefaultMatrix(), 0, 1)
	if got := s.Fixed(20 * time.Millisecond); got != 20*time.Millisecond {
		t.Fatalf("Fixed = %v", got)
	}
	if got := s.Fixed(0); got != 0 {
		t.Fatalf("Fixed(0) = %v", got)
	}
}

func TestSamplerBadJitterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("jitter 1.0 did not panic")
		}
	}()
	NewSampler(geo.DefaultMatrix(), 1.0, 1)
}

func TestParallelFetch(t *testing.T) {
	if got := ParallelFetch(nil); got != 0 {
		t.Fatalf("empty fetch = %v", got)
	}
	lats := []time.Duration{100 * time.Millisecond, 900 * time.Millisecond, 20 * time.Millisecond}
	if got := ParallelFetch(lats); got != 900*time.Millisecond {
		t.Fatalf("ParallelFetch = %v", got)
	}
}

func TestDelayerVirtual(t *testing.T) {
	m := geo.DefaultMatrix()
	s := NewSampler(m, 0, 1)
	clock := NewVirtualClock(time.Time{})
	d := NewDelayer(s, clock, 1.0)
	lat := d.DelayChunk(geo.Frankfurt, geo.Dublin)
	if want := m.Get(geo.Frankfurt, geo.Dublin); lat != want {
		t.Fatalf("modelled latency %v, want %v", lat, want)
	}
	if got := clock.Now().Sub(time.Time{}); got != m.Get(geo.Frankfurt, geo.Dublin) {
		t.Fatalf("clock advanced %v", got)
	}
}

func TestDelayerScale(t *testing.T) {
	m := geo.DefaultMatrix()
	s := NewSampler(m, 0, 1)
	clock := NewVirtualClock(time.Time{})
	d := NewDelayer(s, clock, 0.01)
	lat := d.DelayFixed(time.Second)
	if lat != time.Second {
		t.Fatalf("modelled latency must be unscaled, got %v", lat)
	}
	if got := clock.Now().Sub(time.Time{}); got != 10*time.Millisecond {
		t.Fatalf("scaled sleep was %v, want 10ms", got)
	}
}

func TestDelayerNilClockDefaultsToReal(t *testing.T) {
	s := NewSampler(geo.DefaultMatrix(), 0, 1)
	d := NewDelayer(s, nil, 0) // scale 0: no sleeping, but must not panic
	if lat := d.DelayFixed(time.Hour); lat != time.Hour {
		t.Fatalf("lat = %v", lat)
	}
}
