package netsim

import (
	"fmt"
	"sync"
	"time"

	"github.com/agardist/agar/internal/geo"
)

// AnyRegion is the wildcard region matcher for schedule rules: a rule with
// From == AnyRegion applies to every source region, and likewise for To.
const AnyRegion geo.RegionID = -1

// Window is a half-open interval [Start, End) of offsets from the
// schedule's epoch. A zero End means the window never closes.
type Window struct {
	Start time.Duration
	End   time.Duration
}

// Contains reports whether the offset falls inside the window.
func (w Window) Contains(off time.Duration) bool {
	if off < w.Start {
		return false
	}
	return w.End == 0 || off < w.End
}

// RuleKind distinguishes schedule rules.
type RuleKind int

// Rule kinds.
const (
	// RuleShift rescales the latency of matching links while active:
	// latency = base*Factor + Add.
	RuleShift RuleKind = iota + 1
	// RuleCut severs matching links while active: reads over them fail as
	// if the remote region were unreachable.
	RuleCut
	// RuleBandwidthCap caps matching links' transfer rate to BPS
	// bytes/second while active: sized transfers (Sampler.ChunkSized) pay
	// bytes/BPS of extra latency — the brownout half of a chaos timeline,
	// where a storage tier's effective throughput sags for a window and
	// recovers. Overlapping active caps (and any static sampler caps)
	// compose by taking the tightest.
	RuleBandwidthCap
)

// Rule is one chaos event on the network: a latency shift, a link cut, or
// a bandwidth cap, active during a window, matching a (from, to) link
// pair. AnyRegion acts as a wildcard on either side. Rules are
// directional; use the Schedule helpers to install symmetric pairs.
type Rule struct {
	Window Window
	Kind   RuleKind
	From   geo.RegionID
	To     geo.RegionID
	// Factor multiplies the base latency (RuleShift). Zero means 1.
	Factor float64
	// Add is added after scaling (RuleShift).
	Add time.Duration
	// BPS is the bytes/second ceiling (RuleBandwidthCap).
	BPS int64
}

func (r Rule) matches(from, to geo.RegionID) bool {
	if r.From != AnyRegion && r.From != from {
		return false
	}
	if r.To != AnyRegion && r.To != to {
		return false
	}
	return true
}

// Schedule is a time-varying overlay on a latency matrix: an ordered set of
// chaos rules anchored at an epoch. It answers two questions for any
// instant and link: what is the effective latency, and is the link cut?
// The zero value is unusable; construct with NewSchedule. A Schedule is
// safe for concurrent use once rules stop being added (the runner installs
// all rules up front); rule installation and epoch changes are also
// guarded for convenience.
type Schedule struct {
	mu    sync.RWMutex
	epoch time.Time
	rules []Rule
}

// NewSchedule returns an empty schedule anchored at epoch.
func NewSchedule(epoch time.Time) *Schedule {
	return &Schedule{epoch: epoch}
}

// SetEpoch re-anchors the schedule (the scenario runner sets the epoch to
// the virtual instant measurement starts, after warm-up).
func (s *Schedule) SetEpoch(epoch time.Time) {
	s.mu.Lock()
	s.epoch = epoch
	s.mu.Unlock()
}

// Epoch returns the schedule's anchor instant.
func (s *Schedule) Epoch() time.Time {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.epoch
}

// Add installs a raw rule.
func (s *Schedule) Add(r Rule) {
	if r.Kind == RuleShift && r.Factor < 0 {
		panic(fmt.Sprintf("netsim: negative shift factor %v", r.Factor))
	}
	if r.Kind == RuleBandwidthCap && r.BPS <= 0 {
		panic(fmt.Sprintf("netsim: bandwidth cap rule needs a positive rate, got %d", r.BPS))
	}
	s.mu.Lock()
	s.rules = append(s.rules, r)
	s.mu.Unlock()
}

// Shift installs a directional latency shift on the (from, to) link.
func (s *Schedule) Shift(w Window, from, to geo.RegionID, factor float64, add time.Duration) {
	s.Add(Rule{Window: w, Kind: RuleShift, From: from, To: to, Factor: factor, Add: add})
}

// ShiftAllFrom shifts every link seen by clients in `from`.
func (s *Schedule) ShiftAllFrom(w Window, from geo.RegionID, factor float64, add time.Duration) {
	s.Shift(w, from, AnyRegion, factor, add)
}

// Cut severs the (from, to) link and its reverse for the window.
func (s *Schedule) Cut(w Window, from, to geo.RegionID) {
	s.Add(Rule{Window: w, Kind: RuleCut, From: from, To: to})
	s.Add(Rule{Window: w, Kind: RuleCut, From: to, To: from})
}

// CutRegion isolates a region for the window: every link into and out of
// it is severed — the schedule-level model of a region outage.
func (s *Schedule) CutRegion(w Window, region geo.RegionID) {
	s.Add(Rule{Window: w, Kind: RuleCut, From: AnyRegion, To: region})
	s.Add(Rule{Window: w, Kind: RuleCut, From: region, To: AnyRegion})
}

// CapBandwidth caps the directional (from, to) link to bps bytes/second
// for the window — the time-varying counterpart of Sampler.CapBandwidth.
func (s *Schedule) CapBandwidth(w Window, from, to geo.RegionID, bps int64) {
	s.Add(Rule{Window: w, Kind: RuleBandwidthCap, From: from, To: to, BPS: bps})
}

// active returns whether the rule applies at offset off for the link.
func (s *Schedule) offsetOf(t time.Time) (time.Duration, bool) {
	if t.Before(s.epoch) {
		return 0, false
	}
	return t.Sub(s.epoch), true
}

// LatencyAt returns the effective latency of the (from, to) link at
// instant t given its base latency. Multiple active shifts compose in
// installation order.
func (s *Schedule) LatencyAt(t time.Time, from, to geo.RegionID, base time.Duration) time.Duration {
	s.mu.RLock()
	defer s.mu.RUnlock()
	off, ok := s.offsetOf(t)
	if !ok {
		return base
	}
	lat := base
	for _, r := range s.rules {
		if r.Kind != RuleShift || !r.Window.Contains(off) || !r.matches(from, to) {
			continue
		}
		f := r.Factor
		if f == 0 {
			f = 1
		}
		lat = time.Duration(float64(lat)*f) + r.Add
	}
	return lat
}

// BandwidthAt returns the tightest bandwidth cap active on the (from, to)
// link at instant t, or 0 when no cap rule is active — the same "0 means
// uncapped" convention as Sampler.Bandwidth.
func (s *Schedule) BandwidthAt(t time.Time, from, to geo.RegionID) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	off, ok := s.offsetOf(t)
	if !ok {
		return 0
	}
	var best int64
	for _, r := range s.rules {
		if r.Kind != RuleBandwidthCap || !r.Window.Contains(off) || !r.matches(from, to) {
			continue
		}
		if best == 0 || r.BPS < best {
			best = r.BPS
		}
	}
	return best
}

// CutAt reports whether the (from, to) link is severed at instant t.
func (s *Schedule) CutAt(t time.Time, from, to geo.RegionID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	off, ok := s.offsetOf(t)
	if !ok {
		return false
	}
	for _, r := range s.rules {
		if r.Kind == RuleCut && r.Window.Contains(off) && r.matches(from, to) {
			return true
		}
	}
	return false
}

// Rules returns a copy of the installed rules.
func (s *Schedule) Rules() []Rule {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Rule, len(s.rules))
	copy(out, s.rules)
	return out
}
