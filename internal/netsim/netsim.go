// Package netsim provides the time and delay substrate for running Agar
// either under simulation or against real sockets.
//
// The experiment harness replays the paper's wide-area deployment on a
// virtual clock: chunk-read latencies are drawn from the geo latency matrix
// with deterministic jitter and composed (a parallel fetch costs the maximum
// of its chunk latencies), and the clock advances by the composed latency
// instead of sleeping. The live TCP mode uses the same samplers but sleeps
// for real, optionally scaled down.
package netsim

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/agardist/agar/internal/geo"
)

// Clock abstracts time so experiments can run on virtual time.
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
	// Sleep blocks (or advances virtual time) for d.
	Sleep(d time.Duration)
}

// RealClock is the wall clock.
type RealClock struct{}

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (RealClock) Sleep(d time.Duration) { time.Sleep(d) }

// VirtualClock is a logical clock that advances only when Sleep or Advance
// is called. It is safe for concurrent use, but note that concurrent
// sleepers serialise: each Sleep advances the clock by its full duration.
// The experiment harness drives a single logical timeline, which is exactly
// the semantics it needs.
type VirtualClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewVirtualClock returns a virtual clock starting at the given instant.
func NewVirtualClock(start time.Time) *VirtualClock {
	return &VirtualClock{now: start}
}

// Now implements Clock.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep implements Clock by advancing the clock.
func (c *VirtualClock) Sleep(d time.Duration) { c.Advance(d) }

// Advance moves the clock forward by d (negative d panics).
func (c *VirtualClock) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("netsim: cannot advance clock by %v", d))
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// Sampler draws concrete chunk-read latencies from a latency matrix with
// deterministic multiplicative jitter, modelling run-to-run WAN variance.
// It is safe for concurrent use.
type Sampler struct {
	mu     sync.Mutex
	matrix *geo.LatencyMatrix
	jitter float64 // fraction, e.g. 0.05 for +-5%
	rng    *rand.Rand

	// Chaos overlay: when bound, chunk latencies pass through the
	// schedule's active shifts at the clock's current instant, and cut
	// links report as unreachable.
	clock    Clock
	schedule *Schedule

	// Bandwidth caps: per-link bytes/second ceilings that make large chunk
	// transfers see size-dependent latency through ChunkSized.
	caps []linkCap
}

// linkCap caps one link's (or, with AnyRegion wildcards, a set of links')
// transfer rate.
type linkCap struct {
	from, to geo.RegionID
	bps      int64
}

func (c linkCap) matches(from, to geo.RegionID) bool {
	if c.from != AnyRegion && c.from != from {
		return false
	}
	if c.to != AnyRegion && c.to != to {
		return false
	}
	return true
}

// NewSampler returns a sampler over the matrix with the given jitter
// fraction and seed. Jitter must lie in [0, 1).
func NewSampler(m *geo.LatencyMatrix, jitter float64, seed int64) *Sampler {
	if jitter < 0 || jitter >= 1 {
		panic(fmt.Sprintf("netsim: jitter %v out of [0,1)", jitter))
	}
	return &Sampler{matrix: m, jitter: jitter, rng: rand.New(rand.NewSource(seed))}
}

// SetChaos binds the sampler to a chaos schedule evaluated on the given
// clock. Subsequent Chunk calls apply the schedule's active latency shifts
// and Unreachable consults its cuts. A nil schedule unbinds.
func (s *Sampler) SetChaos(clock Clock, schedule *Schedule) {
	s.mu.Lock()
	s.clock = clock
	s.schedule = schedule
	s.mu.Unlock()
}

// chaos returns the bound clock and schedule, or ok=false when unbound.
func (s *Sampler) chaos() (Clock, *Schedule, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.schedule == nil || s.clock == nil {
		return nil, nil, false
	}
	return s.clock, s.schedule, true
}

// Chunk returns a jittered chunk-read latency for a client in `from`
// reading a chunk stored in `to`, after applying any active chaos shifts.
func (s *Sampler) Chunk(from, to geo.RegionID) time.Duration {
	base := s.matrix.Get(from, to)
	if clock, sched, ok := s.chaos(); ok {
		base = sched.LatencyAt(clock.Now(), from, to, base)
	}
	return s.perturb(base)
}

// CapBandwidth installs a bytes/second ceiling on the (from, to) link;
// AnyRegion on either side matches every region. Overlapping caps compose
// by taking the tightest. A nonpositive rate panics — an uncapped link is
// expressed by installing no cap.
func (s *Sampler) CapBandwidth(from, to geo.RegionID, bps int64) {
	if bps <= 0 {
		panic(fmt.Sprintf("netsim: bandwidth cap %d must be positive", bps))
	}
	s.mu.Lock()
	s.caps = append(s.caps, linkCap{from: from, to: to, bps: bps})
	s.mu.Unlock()
}

// Bandwidth returns the tightest cap matching the link — static sampler
// caps composed with any bandwidth-cap rules active on the bound chaos
// schedule at the clock's current instant — or 0 if uncapped.
func (s *Sampler) Bandwidth(from, to geo.RegionID) int64 {
	s.mu.Lock()
	var best int64
	for _, c := range s.caps {
		if c.matches(from, to) && (best == 0 || c.bps < best) {
			best = c.bps
		}
	}
	clock, sched := s.clock, s.schedule
	s.mu.Unlock()
	if clock != nil && sched != nil {
		if bps := sched.BandwidthAt(clock.Now(), from, to); bps > 0 && (best == 0 || bps < best) {
			best = bps
		}
	}
	return best
}

// ChunkSized returns the chunk-read latency for a transfer of the given
// size: the jittered Chunk latency plus the deterministic transfer time the
// link's bandwidth cap implies. With no cap installed it equals Chunk
// exactly — same value, same jitter draw — so unsized callers and sized
// callers on uncapped links agree bit for bit.
func (s *Sampler) ChunkSized(from, to geo.RegionID, bytes int) time.Duration {
	lat := s.Chunk(from, to)
	if bytes <= 0 {
		return lat
	}
	if bps := s.Bandwidth(from, to); bps > 0 {
		lat += time.Duration(float64(bytes) / float64(bps) * float64(time.Second))
	}
	return lat
}

// Flip draws a deterministic Bernoulli sample: true with probability p.
// Nonpositive p never draws from (or advances) the jitter stream, so
// callers guarding on p == 0 keep bit-exact replay compatibility.
func (s *Sampler) Flip(p float64) bool {
	if p <= 0 {
		return false
	}
	s.mu.Lock()
	u := s.rng.Float64()
	s.mu.Unlock()
	return u < p
}

// Unreachable reports whether the (from, to) link is currently severed by
// the bound chaos schedule. An unbound sampler never reports cuts.
func (s *Sampler) Unreachable(from, to geo.RegionID) bool {
	clock, sched, ok := s.chaos()
	if !ok {
		return false
	}
	return sched.CutAt(clock.Now(), from, to)
}

// Fixed returns a jittered sample around an arbitrary base duration (used
// for cache access and decode costs).
func (s *Sampler) Fixed(base time.Duration) time.Duration {
	return s.perturb(base)
}

func (s *Sampler) perturb(base time.Duration) time.Duration {
	if base <= 0 {
		return 0
	}
	if s.jitter == 0 {
		return base
	}
	s.mu.Lock()
	u := s.rng.Float64()
	s.mu.Unlock()
	f := 1 + s.jitter*(2*u-1)
	return time.Duration(float64(base) * f)
}

// Matrix exposes the sampler's underlying latency matrix (for planning).
func (s *Sampler) Matrix() *geo.LatencyMatrix { return s.matrix }

// ParallelFetch composes the latency of fetching a set of chunks
// concurrently: the slowest chunk dominates. An empty set costs zero.
func ParallelFetch(lats []time.Duration) time.Duration {
	var maxLat time.Duration
	for _, l := range lats {
		if l > maxLat {
			maxLat = l
		}
	}
	return maxLat
}

// Delayer injects latencies into a live deployment. Scale compresses
// simulated wide-area delays so integration tests finish quickly (e.g.
// Scale=0.01 turns 980 ms into 9.8 ms) while preserving their ratios.
type Delayer struct {
	sampler *Sampler
	clock   Clock
	scale   float64
}

// NewDelayer returns a delayer that sleeps on clock for scale*sampled time.
func NewDelayer(s *Sampler, clock Clock, scale float64) *Delayer {
	if scale < 0 {
		panic("netsim: negative delay scale")
	}
	if clock == nil {
		clock = RealClock{}
	}
	return &Delayer{sampler: s, clock: clock, scale: scale}
}

// DelayChunk sleeps for the scaled chunk-read latency and returns the
// unscaled latency that was modelled.
func (d *Delayer) DelayChunk(from, to geo.RegionID) time.Duration {
	lat := d.sampler.Chunk(from, to)
	d.clock.Sleep(time.Duration(float64(lat) * d.scale))
	return lat
}

// DelayFixed sleeps for the scaled jittered base and returns the unscaled
// modelled latency.
func (d *Delayer) DelayFixed(base time.Duration) time.Duration {
	lat := d.sampler.Fixed(base)
	d.clock.Sleep(time.Duration(float64(lat) * d.scale))
	return lat
}
