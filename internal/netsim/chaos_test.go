package netsim

import (
	"testing"
	"time"

	"github.com/agardist/agar/internal/geo"
)

var chaosEpoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestWindowContains(t *testing.T) {
	cases := []struct {
		name string
		w    Window
		off  time.Duration
		want bool
	}{
		{"before start", Window{Start: 10 * time.Second, End: 20 * time.Second}, 5 * time.Second, false},
		{"at start", Window{Start: 10 * time.Second, End: 20 * time.Second}, 10 * time.Second, true},
		{"inside", Window{Start: 10 * time.Second, End: 20 * time.Second}, 15 * time.Second, true},
		{"at end (half-open)", Window{Start: 10 * time.Second, End: 20 * time.Second}, 20 * time.Second, false},
		{"open-ended", Window{Start: 10 * time.Second}, time.Hour, true},
		{"zero window from zero", Window{}, 0, true},
	}
	for _, c := range cases {
		if got := c.w.Contains(c.off); got != c.want {
			t.Errorf("%s: Contains(%v) = %v, want %v", c.name, c.off, got, c.want)
		}
	}
}

func TestScheduleLatencyShift(t *testing.T) {
	s := NewSchedule(chaosEpoch)
	w := Window{Start: 10 * time.Second, End: 30 * time.Second}
	s.Shift(w, geo.Frankfurt, geo.Dublin, 3, 5*time.Millisecond)

	base := 100 * time.Millisecond
	// Before the window: base latency.
	if got := s.LatencyAt(chaosEpoch.Add(5*time.Second), geo.Frankfurt, geo.Dublin, base); got != base {
		t.Fatalf("before window: got %v, want %v", got, base)
	}
	// Inside the window: base*3 + 5ms.
	want := 305 * time.Millisecond
	if got := s.LatencyAt(chaosEpoch.Add(15*time.Second), geo.Frankfurt, geo.Dublin, base); got != want {
		t.Fatalf("inside window: got %v, want %v", got, want)
	}
	// After the window: base again.
	if got := s.LatencyAt(chaosEpoch.Add(31*time.Second), geo.Frankfurt, geo.Dublin, base); got != base {
		t.Fatalf("after window: got %v, want %v", got, base)
	}
	// A different link is untouched.
	if got := s.LatencyAt(chaosEpoch.Add(15*time.Second), geo.Dublin, geo.Frankfurt, base); got != base {
		t.Fatalf("reverse link shifted: got %v, want %v", got, base)
	}
	// Before the epoch nothing applies.
	if got := s.LatencyAt(chaosEpoch.Add(-time.Second), geo.Frankfurt, geo.Dublin, base); got != base {
		t.Fatalf("before epoch: got %v, want %v", got, base)
	}
}

func TestScheduleWildcardShift(t *testing.T) {
	s := NewSchedule(chaosEpoch)
	s.ShiftAllFrom(Window{End: time.Minute}, geo.Sydney, 2, 0)
	at := chaosEpoch.Add(time.Second)
	for _, to := range geo.DefaultRegions() {
		if got := s.LatencyAt(at, geo.Sydney, to, 50*time.Millisecond); got != 100*time.Millisecond {
			t.Fatalf("sydney->%v: got %v, want 100ms", to, got)
		}
	}
	if got := s.LatencyAt(at, geo.Tokyo, geo.Sydney, 50*time.Millisecond); got != 50*time.Millisecond {
		t.Fatalf("tokyo->sydney shifted by a from-wildcard rule")
	}
}

func TestScheduleComposedShifts(t *testing.T) {
	s := NewSchedule(chaosEpoch)
	w := Window{End: time.Minute}
	s.Shift(w, geo.Frankfurt, geo.Dublin, 2, 0)
	s.Shift(w, geo.Frankfurt, geo.Dublin, 0, 7*time.Millisecond) // factor 0 => 1
	got := s.LatencyAt(chaosEpoch, geo.Frankfurt, geo.Dublin, 10*time.Millisecond)
	if want := 27 * time.Millisecond; got != want {
		t.Fatalf("composed shift: got %v, want %v", got, want)
	}
}

func TestScheduleCutAndRegionOutage(t *testing.T) {
	s := NewSchedule(chaosEpoch)
	w := Window{Start: time.Second, End: 10 * time.Second}
	s.Cut(w, geo.Frankfurt, geo.NVirginia)
	s.CutRegion(Window{Start: 20 * time.Second, End: 30 * time.Second}, geo.Tokyo)

	in := chaosEpoch.Add(5 * time.Second)
	if !s.CutAt(in, geo.Frankfurt, geo.NVirginia) || !s.CutAt(in, geo.NVirginia, geo.Frankfurt) {
		t.Fatalf("partition not symmetric")
	}
	if s.CutAt(in, geo.Frankfurt, geo.Dublin) {
		t.Fatalf("unrelated link cut")
	}
	if s.CutAt(chaosEpoch, geo.Frankfurt, geo.NVirginia) {
		t.Fatalf("cut active before window")
	}

	out := chaosEpoch.Add(25 * time.Second)
	if !s.CutAt(out, geo.Frankfurt, geo.Tokyo) || !s.CutAt(out, geo.Tokyo, geo.Sydney) {
		t.Fatalf("region outage should sever links both ways")
	}
	if s.CutAt(chaosEpoch.Add(31*time.Second), geo.Frankfurt, geo.Tokyo) {
		t.Fatalf("outage survived recovery")
	}
}

func TestSamplerChaosIntegration(t *testing.T) {
	clock := NewVirtualClock(chaosEpoch)
	sched := NewSchedule(chaosEpoch)
	sched.Shift(Window{Start: 10 * time.Second, End: 20 * time.Second}, geo.Frankfurt, geo.Dublin, 4, 0)
	sched.Cut(Window{Start: 10 * time.Second, End: 20 * time.Second}, geo.Frankfurt, geo.SaoPaulo)

	// Jitter 0 keeps sampling exact.
	s := NewSampler(geo.DefaultMatrix(), 0, 1)
	s.SetChaos(clock, sched)

	base := geo.DefaultMatrix().Get(geo.Frankfurt, geo.Dublin)
	if got := s.Chunk(geo.Frankfurt, geo.Dublin); got != base {
		t.Fatalf("pre-chaos chunk: got %v, want %v", got, base)
	}
	if s.Unreachable(geo.Frankfurt, geo.SaoPaulo) {
		t.Fatalf("link cut before window")
	}

	clock.Advance(15 * time.Second)
	if got, want := s.Chunk(geo.Frankfurt, geo.Dublin), 4*base; got != want {
		t.Fatalf("chaos chunk: got %v, want %v", got, want)
	}
	if !s.Unreachable(geo.Frankfurt, geo.SaoPaulo) {
		t.Fatalf("link not cut inside window")
	}
	if s.Unreachable(geo.Frankfurt, geo.Dublin) {
		t.Fatalf("shifted link reported as cut")
	}

	clock.Advance(10 * time.Second)
	if got := s.Chunk(geo.Frankfurt, geo.Dublin); got != base {
		t.Fatalf("post-chaos chunk: got %v, want %v", got, base)
	}
	if s.Unreachable(geo.Frankfurt, geo.SaoPaulo) {
		t.Fatalf("cut survived window end")
	}

	// Unbinding restores the plain sampler.
	s.SetChaos(nil, nil)
	if s.Unreachable(geo.Frankfurt, geo.SaoPaulo) {
		t.Fatalf("unbound sampler reports cuts")
	}
}

func TestScheduleEpochReanchor(t *testing.T) {
	s := NewSchedule(chaosEpoch)
	s.Shift(Window{End: 10 * time.Second}, AnyRegion, AnyRegion, 2, 0)
	later := chaosEpoch.Add(time.Hour)
	if got := s.LatencyAt(later, geo.Frankfurt, geo.Dublin, time.Millisecond); got != time.Millisecond {
		t.Fatalf("rule active an hour past its window")
	}
	s.SetEpoch(later)
	if got := s.LatencyAt(later, geo.Frankfurt, geo.Dublin, time.Millisecond); got != 2*time.Millisecond {
		t.Fatalf("re-anchored rule inactive: got %v", got)
	}
}
