package paxos

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func newQuorum(n int) []*Acceptor {
	out := make([]*Acceptor, n)
	for i := range out {
		out[i] = NewAcceptor(i)
	}
	return out
}

func TestBallotOrdering(t *testing.T) {
	a := Ballot{Round: 1, Proposer: 2}
	b := Ballot{Round: 2, Proposer: 1}
	if !a.Less(b) || b.Less(a) {
		t.Fatal("round must dominate")
	}
	c := Ballot{Round: 1, Proposer: 3}
	if !a.Less(c) {
		t.Fatal("proposer id must break ties")
	}
	if a.String() != "1.2" {
		t.Fatalf("String = %q", a.String())
	}
}

func TestSingleProposerChoosesValue(t *testing.T) {
	acc := newQuorum(3)
	p := NewProposer(0, acc)
	got, err := p.Propose(0, "value-a", 0)
	if err != nil || got != "value-a" {
		t.Fatalf("got %q err %v", got, err)
	}
	learned, ok := Learn(acc, 0)
	if !ok || learned != "value-a" {
		t.Fatalf("learned %q ok=%v", learned, ok)
	}
}

func TestChosenValueIsStable(t *testing.T) {
	// Once chosen, later proposals must adopt the chosen value.
	acc := newQuorum(5)
	p1 := NewProposer(1, acc)
	p2 := NewProposer(2, acc)
	if _, err := p1.Propose(7, "first", 0); err != nil {
		t.Fatal(err)
	}
	got, err := p2.Propose(7, "second", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != "first" {
		t.Fatalf("safety violation: second proposer chose %q", got)
	}
}

func TestMinorityFailureStillProgresses(t *testing.T) {
	acc := newQuorum(5)
	acc[0].SetDown(true)
	acc[1].SetDown(true)
	p := NewProposer(0, acc)
	got, err := p.Propose(0, "v", 0)
	if err != nil || got != "v" {
		t.Fatalf("got %q err %v", got, err)
	}
}

func TestMajorityFailureBlocks(t *testing.T) {
	acc := newQuorum(3)
	acc[0].SetDown(true)
	acc[1].SetDown(true)
	p := NewProposer(0, acc)
	if _, err := p.Propose(0, "v", 4); err != ErrNoQuorum {
		t.Fatalf("err = %v, want ErrNoQuorum", err)
	}
	// Recovery restores progress.
	acc[0].SetDown(false)
	if got, err := p.Propose(0, "v", 0); err != nil || got != "v" {
		t.Fatalf("after recovery: %q %v", got, err)
	}
}

func TestAcceptorRejectsLowerBallots(t *testing.T) {
	a := NewAcceptor(0)
	high := Ballot{Round: 5, Proposer: 0}
	low := Ballot{Round: 3, Proposer: 0}
	if pr, _ := a.Prepare(0, high); !pr.OK {
		t.Fatal("high prepare rejected")
	}
	if pr, _ := a.Prepare(0, low); pr.OK {
		t.Fatal("low prepare accepted after higher promise")
	}
	if ok, _ := a.Accept(0, low, "v"); ok {
		t.Fatal("low accept succeeded after higher promise")
	}
	if ok, _ := a.Accept(0, high, "v"); !ok {
		t.Fatal("promised accept failed")
	}
}

func TestDuellingProposersAgree(t *testing.T) {
	// Concurrent proposers on the same instance must agree on one value.
	for trial := 0; trial < 20; trial++ {
		acc := newQuorum(5)
		var wg sync.WaitGroup
		results := make([]string, 4)
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				p := NewProposer(i, acc)
				v, err := p.Propose(0, fmt.Sprintf("value-%d", i), 0)
				if err != nil {
					results[i] = "ERR:" + err.Error()
					return
				}
				results[i] = v
			}(i)
		}
		wg.Wait()
		first := ""
		for i, r := range results {
			if r == "" || len(r) > 4 && r[:4] == "ERR:" {
				t.Fatalf("trial %d proposer %d failed: %q", trial, i, r)
			}
			if first == "" {
				first = r
			} else if r != first {
				t.Fatalf("trial %d: divergent decisions %q vs %q", trial, first, r)
			}
		}
		learned, ok := Learn(acc, 0)
		if !ok || learned != first {
			t.Fatalf("trial %d: learner saw %q (ok=%v), proposers saw %q", trial, learned, ok, first)
		}
	}
}

func TestLogAppendOrdersValues(t *testing.T) {
	acc := newQuorum(3)
	logA := NewLog(NewProposer(0, acc))
	logB := NewLog(NewProposer(1, acc))

	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			if _, err := logA.Append(fmt.Sprintf("a-%d", i)); err != nil {
				t.Error(err)
			}
		}(i)
		go func(i int) {
			defer wg.Done()
			if _, err := logB.Append(fmt.Sprintf("b-%d", i)); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()

	prefix := CommittedPrefix(acc, 0)
	if len(prefix) < 20 {
		t.Fatalf("committed prefix has %d entries, want >= 20", len(prefix))
	}
	// Every appended value appears exactly once.
	seen := make(map[string]int)
	for _, v := range prefix {
		seen[v]++
	}
	for i := 0; i < 10; i++ {
		for _, pfx := range []string{"a", "b"} {
			key := fmt.Sprintf("%s-%d", pfx, i)
			if seen[key] != 1 {
				t.Fatalf("value %s appears %d times", key, seen[key])
			}
		}
	}
}

func TestLogSkipTo(t *testing.T) {
	acc := newQuorum(3)
	l := NewLog(NewProposer(0, acc))
	l.SkipTo(5)
	idx, err := l.Append("v")
	if err != nil {
		t.Fatal(err)
	}
	if idx != 5 {
		t.Fatalf("appended at %d, want 5", idx)
	}
	l.SkipTo(2) // must not move backwards
	idx, _ = l.Append("w")
	if idx != 6 {
		t.Fatalf("appended at %d, want 6", idx)
	}
}

func TestChosenInstances(t *testing.T) {
	acc := newQuorum(3)
	p := NewProposer(0, acc)
	p.Propose(0, "x", 0)
	p.Propose(2, "y", 0)
	got := ChosenInstances(acc)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("chosen = %v", got)
	}
}

// Property: for random schedules of proposals over random instances, every
// instance converges to exactly one value and all learners agree.
func TestAgreementQuick(t *testing.T) {
	f := func(seed uint8) bool {
		acc := newQuorum(3)
		nProposers := 2 + int(seed%3)
		var wg sync.WaitGroup
		for pid := 0; pid < nProposers; pid++ {
			wg.Add(1)
			go func(pid int) {
				defer wg.Done()
				p := NewProposer(pid, acc)
				for inst := int64(0); inst < 3; inst++ {
					p.Propose(inst, fmt.Sprintf("p%d-i%d", pid, inst), 0)
				}
			}(pid)
		}
		wg.Wait()
		for inst := int64(0); inst < 3; inst++ {
			if _, ok := Learn(acc, inst); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkProposeThreeAcceptors(b *testing.B) {
	acc := newQuorum(3)
	p := NewProposer(0, acc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Propose(int64(i), "value", 0); err != nil {
			b.Fatal(err)
		}
	}
}
