// Package paxos implements single-decree Paxos over a set of acceptors,
// replicated across numbered log instances — the synchronisation substrate
// the paper's §VI names for bringing cache coherence (and therefore writes)
// to Agar.
//
// The implementation is deliberately classic: proposers run phase 1
// (prepare/promise) and phase 2 (accept/accepted) against a quorum of
// acceptors; a value is chosen once a majority accepts it under one ballot.
// Acceptors expose failure injection so tests can exercise minority loss
// and duelling proposers. Transport is synchronous in-process calls: the
// paper's deployment would put these behind the wire protocol, but the
// protocol logic — the part worth testing — is transport-independent.
package paxos

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Errors returned by proposals.
var (
	ErrNoQuorum = errors.New("paxos: no quorum of acceptors reachable")
	ErrDown     = errors.New("paxos: acceptor is down")
)

// Ballot orders proposal attempts; ties break on proposer id.
type Ballot struct {
	Round    int64
	Proposer int
}

// Less reports whether b orders before o.
func (b Ballot) Less(o Ballot) bool {
	if b.Round != o.Round {
		return b.Round < o.Round
	}
	return b.Proposer < o.Proposer
}

// String renders the ballot.
func (b Ballot) String() string { return fmt.Sprintf("%d.%d", b.Round, b.Proposer) }

// instanceState is one acceptor's durable state for one log instance.
type instanceState struct {
	promised Ballot
	accepted bool
	accBal   Ballot
	accVal   string
}

// Acceptor is one Paxos acceptor holding state for every log instance. It
// is safe for concurrent use.
type Acceptor struct {
	id int

	mu        sync.Mutex
	down      bool
	instances map[int64]*instanceState
}

// NewAcceptor returns an empty acceptor.
func NewAcceptor(id int) *Acceptor {
	return &Acceptor{id: id, instances: make(map[int64]*instanceState)}
}

// ID returns the acceptor's identity.
func (a *Acceptor) ID() int { return a.id }

// SetDown injects (or clears) a crash: a down acceptor rejects every
// message, modelling an unreachable node.
func (a *Acceptor) SetDown(down bool) {
	a.mu.Lock()
	a.down = down
	a.mu.Unlock()
}

func (a *Acceptor) state(instance int64) *instanceState {
	st, ok := a.instances[instance]
	if !ok {
		st = &instanceState{}
		a.instances[instance] = st
	}
	return st
}

// Promise answers a phase-1 prepare: it promises to ignore lower ballots
// and reports any previously accepted value.
type Promise struct {
	OK       bool
	Accepted bool
	AccBal   Ballot
	AccVal   string
}

// Prepare handles phase 1.
func (a *Acceptor) Prepare(instance int64, b Ballot) (Promise, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.down {
		return Promise{}, ErrDown
	}
	st := a.state(instance)
	if b.Less(st.promised) {
		return Promise{OK: false}, nil
	}
	st.promised = b
	return Promise{OK: true, Accepted: st.accepted, AccBal: st.accBal, AccVal: st.accVal}, nil
}

// Accept handles phase 2; it succeeds unless a higher ballot was promised.
func (a *Acceptor) Accept(instance int64, b Ballot, value string) (bool, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.down {
		return false, ErrDown
	}
	st := a.state(instance)
	if b.Less(st.promised) {
		return false, nil
	}
	st.promised = b
	st.accepted = true
	st.accBal = b
	st.accVal = value
	return true, nil
}

// Proposer drives proposals against a fixed acceptor set on behalf of one
// node id. It is safe for concurrent use.
type Proposer struct {
	id        int
	acceptors []*Acceptor

	mu    sync.Mutex
	round int64
}

// NewProposer returns a proposer with the given identity.
func NewProposer(id int, acceptors []*Acceptor) *Proposer {
	if len(acceptors) == 0 {
		panic("paxos: proposer needs acceptors")
	}
	cp := make([]*Acceptor, len(acceptors))
	copy(cp, acceptors)
	return &Proposer{id: id, acceptors: cp}
}

func (p *Proposer) quorum() int { return len(p.acceptors)/2 + 1 }

func (p *Proposer) nextBallot() Ballot {
	p.mu.Lock()
	p.round++
	b := Ballot{Round: p.round, Proposer: p.id}
	p.mu.Unlock()
	return b
}

// bumpRound ensures the next ballot exceeds a rival ballot we observed.
func (p *Proposer) bumpRound(seen Ballot) {
	p.mu.Lock()
	if seen.Round > p.round {
		p.round = seen.Round
	}
	p.mu.Unlock()
}

// Propose runs Paxos for the instance until a value is chosen and returns
// the chosen value — which, per the protocol, may be a previously accepted
// rival value rather than the argument. maxAttempts bounds duelling; 0
// means a generous default.
func (p *Proposer) Propose(instance int64, value string, maxAttempts int) (string, error) {
	if maxAttempts <= 0 {
		maxAttempts = 64
	}
	for attempt := 0; attempt < maxAttempts; attempt++ {
		ballot := p.nextBallot()

		// Phase 1: prepare.
		var promises int
		var prior *Promise
		for _, a := range p.acceptors {
			pr, err := a.Prepare(instance, ballot)
			if err != nil || !pr.OK {
				continue
			}
			promises++
			if pr.Accepted && (prior == nil || prior.AccBal.Less(pr.AccBal)) {
				cp := pr
				prior = &cp
			}
		}
		if promises < p.quorum() {
			continue
		}
		// Adopt any previously accepted value (the heart of Paxos safety).
		proposal := value
		if prior != nil {
			proposal = prior.AccVal
		}

		// Phase 2: accept.
		var accepts int
		for _, a := range p.acceptors {
			ok, err := a.Accept(instance, ballot, proposal)
			if err != nil || !ok {
				continue
			}
			accepts++
		}
		if accepts >= p.quorum() {
			return proposal, nil
		}
		p.bumpRound(Ballot{Round: ballot.Round + 1})
	}
	return "", ErrNoQuorum
}

// Learn queries the acceptors for the chosen value of an instance: a value
// is chosen when a majority reports it accepted under the same ballot.
func Learn(acceptors []*Acceptor, instance int64) (string, bool) {
	counts := make(map[Ballot]int)
	values := make(map[Ballot]string)
	for _, a := range acceptors {
		a.mu.Lock()
		st, ok := a.instances[instance]
		if ok && !a.down && st.accepted {
			counts[st.accBal]++
			values[st.accBal] = st.accVal
		}
		a.mu.Unlock()
	}
	need := len(acceptors)/2 + 1
	for b, n := range counts {
		if n >= need {
			return values[b], true
		}
	}
	return "", false
}

// Log is a replicated log built from Paxos instances: Append chooses the
// next free instance for a value (retrying later instances when beaten),
// and Committed returns the chosen prefix.
type Log struct {
	proposer *Proposer

	mu   sync.Mutex
	next int64
}

// NewLog returns a log appender for one node.
func NewLog(proposer *Proposer) *Log {
	return &Log{proposer: proposer}
}

// Append chooses a log slot for the value and returns its instance number.
// If a rival value wins the targeted slot, Append moves to the next slot
// until its own value is chosen.
func (l *Log) Append(value string) (int64, error) {
	for attempt := 0; attempt < 1024; attempt++ {
		l.mu.Lock()
		instance := l.next
		l.next++
		l.mu.Unlock()

		chosen, err := l.proposer.Propose(instance, value, 0)
		if err != nil {
			return 0, err
		}
		if chosen == value {
			return instance, nil
		}
		// A rival's value occupied this slot; record and try the next.
	}
	return 0, fmt.Errorf("paxos: could not place value after 1024 slots")
}

// SkipTo advances the appender past externally observed instances.
func (l *Log) SkipTo(instance int64) {
	l.mu.Lock()
	if instance > l.next {
		l.next = instance
	}
	l.mu.Unlock()
}

// CommittedPrefix reads the contiguous chosen prefix of the log from the
// acceptors.
func CommittedPrefix(acceptors []*Acceptor, from int64) []string {
	var out []string
	for i := from; ; i++ {
		v, ok := Learn(acceptors, i)
		if !ok {
			break
		}
		out = append(out, v)
	}
	return out
}

// ChosenInstances lists every instance with a chosen value (for tests).
func ChosenInstances(acceptors []*Acceptor) []int64 {
	seen := make(map[int64]bool)
	for _, a := range acceptors {
		a.mu.Lock()
		for i := range a.instances {
			seen[i] = true
		}
		a.mu.Unlock()
	}
	var out []int64
	for i := range seen {
		if _, ok := Learn(acceptors, i); ok {
			out = append(out, i)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
