// Package geo models the geographic substrate of an erasure-coded storage
// deployment: the set of regions, the chunk-read latency between every pair
// of regions, and the policy that places chunks onto regions.
//
// The default deployment mirrors the paper's Figure 1: six AWS regions, each
// hosting one backend bucket and one cache, with the twelve chunks of every
// RS(9,3)-coded object distributed round-robin (two chunks per region).
package geo

import (
	"fmt"
	"hash/fnv"
	"sort"
	"time"
)

// RegionID identifies a region in a deployment. Region ids are dense
// indices into the deployment's region list.
type RegionID int

// The six regions of the paper's AWS deployment (Figure 1).
const (
	Frankfurt RegionID = iota
	Dublin
	NVirginia
	SaoPaulo
	Tokyo
	Sydney
)

var regionNames = [...]string{
	Frankfurt: "frankfurt",
	Dublin:    "dublin",
	NVirginia: "n-virginia",
	SaoPaulo:  "sao-paulo",
	Tokyo:     "tokyo",
	Sydney:    "sydney",
}

// String returns the canonical lower-case region name.
func (r RegionID) String() string {
	if int(r) < len(regionNames) {
		return regionNames[r]
	}
	return fmt.Sprintf("region-%d", int(r))
}

// ParseRegion resolves a region name to its id within the default
// deployment. It returns an error for unknown names.
func ParseRegion(name string) (RegionID, error) {
	for i, n := range regionNames {
		if n == name {
			return RegionID(i), nil
		}
	}
	return 0, fmt.Errorf("geo: unknown region %q", name)
}

// DefaultRegions returns the paper's six regions in canonical order.
func DefaultRegions() []RegionID {
	return []RegionID{Frankfurt, Dublin, NVirginia, SaoPaulo, Tokyo, Sydney}
}

// NumDefaultRegions is the size of the paper's deployment.
const NumDefaultRegions = 6

// LatencyMatrix holds the expected latency for a client in region `from` to
// read one erasure-coded chunk stored in region `to`, including storage
// service time and transfer. It is not required to be symmetric.
type LatencyMatrix struct {
	n int
	d []time.Duration // row-major: d[from*n+to]
}

// NewLatencyMatrix returns a zeroed n x n matrix.
func NewLatencyMatrix(n int) *LatencyMatrix {
	if n <= 0 {
		panic("geo: latency matrix size must be positive")
	}
	return &LatencyMatrix{n: n, d: make([]time.Duration, n*n)}
}

// LatencyMatrixFromRows builds a matrix from per-region rows expressed in
// milliseconds. It panics on ragged input.
func LatencyMatrixFromRows(rowsMS [][]float64) *LatencyMatrix {
	m := NewLatencyMatrix(len(rowsMS))
	for from, row := range rowsMS {
		if len(row) != m.n {
			panic("geo: ragged latency rows")
		}
		for to, ms := range row {
			m.Set(RegionID(from), RegionID(to), time.Duration(ms*float64(time.Millisecond)))
		}
	}
	return m
}

// Size returns the number of regions covered by the matrix.
func (m *LatencyMatrix) Size() int { return m.n }

// Get returns the chunk-read latency from a client in `from` to a chunk in
// `to`.
func (m *LatencyMatrix) Get(from, to RegionID) time.Duration {
	m.check(from)
	m.check(to)
	return m.d[int(from)*m.n+int(to)]
}

// Set stores the chunk-read latency for the (from, to) pair.
func (m *LatencyMatrix) Set(from, to RegionID, d time.Duration) {
	m.check(from)
	m.check(to)
	m.d[int(from)*m.n+int(to)] = d
}

func (m *LatencyMatrix) check(r RegionID) {
	if int(r) < 0 || int(r) >= m.n {
		panic(fmt.Sprintf("geo: region %d out of range for %d-region matrix", int(r), m.n))
	}
}

// Row returns a copy of the latency row observed by clients in `from`.
func (m *LatencyMatrix) Row(from RegionID) []time.Duration {
	m.check(from)
	out := make([]time.Duration, m.n)
	copy(out, m.d[int(from)*m.n:int(from+1)*m.n])
	return out
}

// Clone returns a deep copy.
func (m *LatencyMatrix) Clone() *LatencyMatrix {
	out := NewLatencyMatrix(m.n)
	copy(out.d, m.d)
	return out
}

// SortedByDistance returns all region ids ordered from nearest to furthest
// as seen from the given region. Ties break on region id for determinism.
func (m *LatencyMatrix) SortedByDistance(from RegionID) []RegionID {
	m.check(from)
	out := make([]RegionID, m.n)
	for i := range out {
		out[i] = RegionID(i)
	}
	sort.SliceStable(out, func(a, b int) bool {
		la, lb := m.Get(from, out[a]), m.Get(from, out[b])
		if la != lb {
			return la < lb
		}
		return out[a] < out[b]
	})
	return out
}

// TableI returns the per-region chunk read latencies from the point of view
// of Frankfurt exactly as reported in the paper's Table I. These values are
// used by the paper's worked example in §IV-A.
func TableI() map[RegionID]time.Duration {
	return map[RegionID]time.Duration{
		Frankfurt: 80 * time.Millisecond,
		Dublin:    200 * time.Millisecond,
		NVirginia: 600 * time.Millisecond,
		SaoPaulo:  1400 * time.Millisecond,
		Tokyo:     3400 * time.Millisecond,
		Sydney:    4600 * time.Millisecond,
	}
}

// TableIMatrix returns a six-region matrix whose Frankfurt row is Table I
// verbatim. The remaining rows are filled symmetrically from the Frankfurt
// row where the paper gives no data; this matrix exists to reproduce the
// §IV-A worked example and the algorithm unit tests, not the measured
// figures.
func TableIMatrix() *LatencyMatrix {
	m := DefaultMatrix()
	for r, d := range TableI() {
		m.Set(Frankfurt, r, d)
		m.Set(r, Frankfurt, d)
	}
	m.Set(Frankfurt, Frankfurt, 80*time.Millisecond)
	return m
}

// DefaultMatrix returns the calibrated six-region chunk-read latency matrix
// used by the experiment harness.
//
// Calibration: the paper's Table I is part of an illustrative example and is
// inconsistent with the measured averages in Figures 2 and 6 (e.g. Table I
// implies a 3,400 ms backend read from Frankfurt while Figure 2 reports
// roughly 1,000 ms). This matrix is therefore calibrated against the
// figures' reported numbers instead: a Frankfurt backend read lands near
// 1,000 ms, caching up to 3 chunks barely helps Frankfurt while it helps
// Sydney substantially (Figure 2), and the best static policy in Frankfurt
// lands near 490 ms (Figure 6). Relative region ordering follows AWS
// geography.
func DefaultMatrix() *LatencyMatrix {
	rows := [][]float64{
		//            FRA   DUB   NVA   SAO   TYO   SYD
		Frankfurt: {80, 120, 850, 920, 980, 1150},
		Dublin:    {120, 80, 800, 950, 1050, 1150},
		NVirginia: {850, 800, 80, 600, 900, 950},
		SaoPaulo:  {920, 950, 600, 80, 1100, 1050},
		Tokyo:     {980, 1050, 900, 1100, 80, 150},
		Sydney:    {1000, 1100, 550, 850, 150, 80},
	}
	return LatencyMatrixFromRows(rows)
}

// keyIndex hashes an object key to a stable small integer used by rotating
// placement.
func keyIndex(key string) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() & 0x7FFFFFFF)
}
