package geo

import (
	"testing"
	"time"
)

func TestRegionNames(t *testing.T) {
	cases := map[RegionID]string{
		Frankfurt: "frankfurt",
		Dublin:    "dublin",
		NVirginia: "n-virginia",
		SaoPaulo:  "sao-paulo",
		Tokyo:     "tokyo",
		Sydney:    "sydney",
	}
	for r, want := range cases {
		if r.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(r), r.String(), want)
		}
		got, err := ParseRegion(want)
		if err != nil || got != r {
			t.Errorf("ParseRegion(%q) = %v, %v", want, got, err)
		}
	}
	if _, err := ParseRegion("mars"); err == nil {
		t.Error("ParseRegion accepted unknown region")
	}
	if RegionID(42).String() == "" {
		t.Error("out-of-range region must still stringify")
	}
}

func TestDefaultRegions(t *testing.T) {
	regions := DefaultRegions()
	if len(regions) != NumDefaultRegions {
		t.Fatalf("got %d regions, want %d", len(regions), NumDefaultRegions)
	}
	for i, r := range regions {
		if int(r) != i {
			t.Fatalf("region ids must be dense: regions[%d] = %d", i, int(r))
		}
	}
}

func TestTableIValues(t *testing.T) {
	tab := TableI()
	want := map[RegionID]time.Duration{
		Frankfurt: 80 * time.Millisecond,
		Dublin:    200 * time.Millisecond,
		NVirginia: 600 * time.Millisecond,
		SaoPaulo:  1400 * time.Millisecond,
		Tokyo:     3400 * time.Millisecond,
		Sydney:    4600 * time.Millisecond,
	}
	for r, d := range want {
		if tab[r] != d {
			t.Errorf("TableI[%v] = %v, want %v", r, tab[r], d)
		}
	}
}

func TestTableIMatrixFrankfurtRow(t *testing.T) {
	m := TableIMatrix()
	for r, d := range TableI() {
		if got := m.Get(Frankfurt, r); got != d {
			t.Errorf("TableIMatrix Frankfurt->%v = %v, want %v", r, got, d)
		}
	}
}

func TestDefaultMatrixProperties(t *testing.T) {
	m := DefaultMatrix()
	if m.Size() != 6 {
		t.Fatalf("matrix size %d", m.Size())
	}
	for _, from := range DefaultRegions() {
		// Local access must be the cheapest entry in every row.
		local := m.Get(from, from)
		for _, to := range DefaultRegions() {
			if to == from {
				continue
			}
			if m.Get(from, to) <= local {
				t.Errorf("%v->%v (%v) not slower than local (%v)", from, to, m.Get(from, to), local)
			}
		}
	}
	// Frankfurt's nearest remote must be Dublin; Sydney's must be Tokyo.
	if order := m.SortedByDistance(Frankfurt); order[0] != Frankfurt || order[1] != Dublin {
		t.Errorf("Frankfurt distance order wrong: %v", order)
	}
	if order := m.SortedByDistance(Sydney); order[0] != Sydney || order[1] != Tokyo {
		t.Errorf("Sydney distance order wrong: %v", order)
	}
}

func TestLatencyMatrixSetGetClone(t *testing.T) {
	m := NewLatencyMatrix(3)
	m.Set(1, 2, 5*time.Millisecond)
	if m.Get(1, 2) != 5*time.Millisecond {
		t.Fatal("Set/Get broken")
	}
	c := m.Clone()
	c.Set(1, 2, time.Second)
	if m.Get(1, 2) != 5*time.Millisecond {
		t.Fatal("Clone shares storage")
	}
	row := m.Row(1)
	row[2] = time.Hour
	if m.Get(1, 2) != 5*time.Millisecond {
		t.Fatal("Row must copy")
	}
}

func TestRoundRobinFixed(t *testing.T) {
	p := NewRoundRobin(DefaultRegions(), false)
	locs := p.Locate("any-key", 12)
	// Fixed mode: chunk i -> region i % 6; every region hosts exactly 2.
	counts := make(map[RegionID]int)
	for i, r := range locs {
		if int(r) != i%6 {
			t.Fatalf("chunk %d placed on %v, want %v", i, r, RegionID(i%6))
		}
		counts[r]++
	}
	for _, r := range DefaultRegions() {
		if counts[r] != 2 {
			t.Fatalf("region %v has %d chunks, want 2", r, counts[r])
		}
	}
	// Same for every key in fixed mode.
	locs2 := p.Locate("another-key", 12)
	for i := range locs {
		if locs[i] != locs2[i] {
			t.Fatal("fixed placement must not depend on key")
		}
	}
}

func TestRoundRobinRotate(t *testing.T) {
	p := NewRoundRobin(DefaultRegions(), true)
	// Balanced per object.
	locs := p.Locate("key-1", 12)
	counts := make(map[RegionID]int)
	for _, r := range locs {
		counts[r]++
	}
	for _, r := range DefaultRegions() {
		if counts[r] != 2 {
			t.Fatalf("rotate: region %v has %d chunks, want 2", r, counts[r])
		}
	}
	// Deterministic per key.
	again := p.Locate("key-1", 12)
	for i := range locs {
		if locs[i] != again[i] {
			t.Fatal("rotating placement must be deterministic per key")
		}
	}
	// Different keys should eventually rotate to a different start.
	varied := false
	for i := 0; i < 50 && !varied; i++ {
		other := p.Locate(string(rune('a'+i))+"-key", 12)
		if other[0] != locs[0] {
			varied = true
		}
	}
	if !varied {
		t.Error("rotation never varied the start region over 50 keys")
	}
}

func TestChunksIn(t *testing.T) {
	p := NewRoundRobin(DefaultRegions(), false)
	got := ChunksIn(p, "k", 12, Tokyo)
	if len(got) != 2 || got[0] != int(Tokyo) || got[1] != int(Tokyo)+6 {
		t.Fatalf("ChunksIn Tokyo = %v", got)
	}
}

func TestPlanFetchOrdering(t *testing.T) {
	m := DefaultMatrix()
	p := NewRoundRobin(DefaultRegions(), false)
	plan := PlanFetch(m, p, "k", 12, Frankfurt)
	if len(plan.Chunks) != 12 {
		t.Fatalf("plan has %d chunks", len(plan.Chunks))
	}
	for i := 1; i < len(plan.Latency); i++ {
		if plan.Latency[i] < plan.Latency[i-1] {
			t.Fatalf("plan not sorted by latency at %d", i)
		}
	}
	// The two nearest chunks for a Frankfurt client are the Frankfurt ones.
	if plan.Region[0] != Frankfurt || plan.Region[1] != Frankfurt {
		t.Fatalf("nearest chunks should be local, got %v %v", plan.Region[0], plan.Region[1])
	}
	// The three furthest: Sydney x2 then ... furthest overall must be Sydney.
	last := plan.Region[len(plan.Region)-1]
	if last != Sydney {
		t.Fatalf("furthest chunk should be in Sydney, got %v", last)
	}
}

func TestNearestK(t *testing.T) {
	m := DefaultMatrix()
	p := NewRoundRobin(DefaultRegions(), false)
	plan := PlanFetch(m, p, "k", 12, Frankfurt)
	near := plan.NearestK(9)
	if len(near) != 9 {
		t.Fatalf("NearestK(9) returned %d chunks", len(near))
	}
	// With the default matrix, the 9 nearest from Frankfurt must exclude
	// both Sydney chunks and one Tokyo chunk.
	excluded := map[int]bool{}
	for _, c := range near {
		excluded[c] = true
	}
	sydneyChunks := ChunksIn(p, "k", 12, Sydney)
	for _, c := range sydneyChunks {
		if excluded[c] {
			t.Fatalf("Sydney chunk %d should not be among nearest 9", c)
		}
	}
}

func TestFurthestRetained(t *testing.T) {
	m := DefaultMatrix()
	p := NewRoundRobin(DefaultRegions(), false)
	plan := PlanFetch(m, p, "k", 12, Frankfurt)

	// Weight 1: the single furthest retained chunk is the Tokyo chunk that
	// survives the discard of the m=3 furthest (Sydney x2 + Tokyo x1).
	w1 := plan.FurthestRetained(9, 1)
	if len(w1) != 1 {
		t.Fatalf("w1 = %v", w1)
	}
	tokyoChunks := ChunksIn(p, "k", 12, Tokyo)
	if w1[0] != tokyoChunks[0] && w1[0] != tokyoChunks[1] {
		t.Fatalf("weight-1 option should cache a Tokyo chunk, got chunk %d", w1[0])
	}

	// Weight 3: Tokyo x1 + Sao Paulo x2.
	w3 := plan.FurthestRetained(9, 3)
	regions := map[RegionID]int{}
	locs := p.Locate("k", 12)
	for _, c := range w3 {
		regions[locs[c]]++
	}
	if regions[Tokyo] != 1 || regions[SaoPaulo] != 2 {
		t.Fatalf("weight-3 retained regions = %v", regions)
	}

	// Weight k returns all retained chunks; weight > k clamps.
	if got := plan.FurthestRetained(9, 12); len(got) != 9 {
		t.Fatalf("FurthestRetained clamp failed: %d", len(got))
	}
}

func TestMaxLatencyExcluding(t *testing.T) {
	m := DefaultMatrix()
	p := NewRoundRobin(DefaultRegions(), false)
	plan := PlanFetch(m, p, "k", 12, Frankfurt)

	// Nothing cached: max over nearest 9 = Tokyo latency (980ms).
	if got := plan.MaxLatencyExcluding(9, nil); time.Duration(got) != 980*time.Millisecond {
		t.Fatalf("uncached max = %v, want 980ms", time.Duration(got))
	}

	// Cache the weight-3 set: max should fall to N. Virginia (850ms).
	excl := map[int]bool{}
	for _, c := range plan.FurthestRetained(9, 3) {
		excl[c] = true
	}
	if got := plan.MaxLatencyExcluding(9, excl); time.Duration(got) != 850*time.Millisecond {
		t.Fatalf("w3 max = %v, want 850ms", time.Duration(got))
	}

	// Cache everything: 0 remains.
	for _, c := range plan.FurthestRetained(9, 9) {
		excl[c] = true
	}
	if got := plan.MaxLatencyExcluding(9, excl); got != 0 {
		t.Fatalf("fully cached max = %v, want 0", time.Duration(got))
	}
}

func TestSortedByDistanceDeterministic(t *testing.T) {
	m := DefaultMatrix()
	a := m.SortedByDistance(NVirginia)
	b := m.SortedByDistance(NVirginia)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("SortedByDistance not deterministic")
		}
	}
}
