package geo

import "fmt"

// Placement maps the chunks of an object onto regions.
type Placement interface {
	// Locate returns, for each of the n chunks of the object identified by
	// key, the region that stores it. The returned slice has length n.
	Locate(key string, n int) []RegionID
}

// RoundRobin distributes chunks over the region list in order, wrapping
// around, so each region receives ⌈n/len(regions)⌉ or ⌊n/len(regions)⌋
// chunks. With Rotate set, the starting region is derived from the object
// key so aggregate load spreads evenly across regions; with Rotate unset the
// layout is identical for all objects, matching the paper's worked example
// (chunk 0 always lands on the first region).
type RoundRobin struct {
	Regions []RegionID
	Rotate  bool
}

// NewRoundRobin returns a round-robin placement over the given regions.
func NewRoundRobin(regions []RegionID, rotate bool) *RoundRobin {
	if len(regions) == 0 {
		panic("geo: round-robin placement needs at least one region")
	}
	cp := make([]RegionID, len(regions))
	copy(cp, regions)
	return &RoundRobin{Regions: cp, Rotate: rotate}
}

// Locate implements Placement.
func (p *RoundRobin) Locate(key string, n int) []RegionID {
	if n <= 0 {
		panic(fmt.Sprintf("geo: Locate with non-positive chunk count %d", n))
	}
	start := 0
	if p.Rotate {
		start = keyIndex(key) % len(p.Regions)
	}
	out := make([]RegionID, n)
	for i := 0; i < n; i++ {
		out[i] = p.Regions[(start+i)%len(p.Regions)]
	}
	return out
}

// ChunksIn returns the chunk indices of the object that live in the given
// region under this placement.
func ChunksIn(p Placement, key string, n int, region RegionID) []int {
	locs := p.Locate(key, n)
	var out []int
	for i, r := range locs {
		if r == region {
			out = append(out, i)
		}
	}
	return out
}

// FetchPlan describes, from a client region's point of view, the order in
// which an object's chunks should be fetched: nearest first. It is the
// basis for both the read path (fetch the nearest k) and Agar's caching
// options (cache the furthest retained chunks first).
type FetchPlan struct {
	// Chunks lists all chunk indices ordered from nearest to furthest
	// storage region, ties broken by chunk index.
	Chunks []int
	// Region[i] is the storage region of chunk Chunks[i].
	Region []RegionID
	// Latency[i] is the expected read latency of chunk Chunks[i] from the
	// client region.
	Latency []int64 // nanoseconds; int64 keeps the struct comparable in tests
}

// PlanFetch computes the nearest-first fetch plan for an object's chunks as
// seen from the client region.
func PlanFetch(m *LatencyMatrix, p Placement, key string, n int, client RegionID) FetchPlan {
	locs := p.Locate(key, n)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// Stable sort by (latency, chunk index) for determinism.
	lat := make([]int64, n)
	for i, r := range locs {
		lat[i] = int64(m.Get(client, r))
	}
	sortByLatency(idx, lat)
	plan := FetchPlan{
		Chunks:  idx,
		Region:  make([]RegionID, n),
		Latency: make([]int64, n),
	}
	for i, c := range idx {
		plan.Region[i] = locs[c]
		plan.Latency[i] = lat[c]
	}
	return plan
}

func sortByLatency(idx []int, lat []int64) {
	// Insertion sort: n is k+m (12 for the paper deployment), and stability
	// plus zero allocation matter more than asymptotics here.
	for i := 1; i < len(idx); i++ {
		j := i
		for j > 0 {
			a, b := idx[j-1], idx[j]
			if lat[a] < lat[b] || (lat[a] == lat[b] && a < b) {
				break
			}
			idx[j-1], idx[j] = idx[j], idx[j-1]
			j--
		}
	}
}

// NearestK returns the chunk indices a client would fetch in the common
// case: the k nearest chunks (the m furthest are skipped, as §IV-A
// describes).
func (f FetchPlan) NearestK(k int) []int {
	if k > len(f.Chunks) {
		k = len(f.Chunks)
	}
	out := make([]int, k)
	copy(out, f.Chunks[:k])
	return out
}

// FurthestRetained returns the w chunk indices that Agar would cache for a
// weight-w option: after discarding the m furthest chunks, the furthest of
// the remaining k, furthest-first.
func (f FetchPlan) FurthestRetained(k, w int) []int {
	if w > k {
		w = k
	}
	retained := f.Chunks[:min(k, len(f.Chunks))]
	out := make([]int, 0, w)
	for i := len(retained) - 1; i >= 0 && len(out) < w; i-- {
		out = append(out, retained[i])
	}
	return out
}

// MaxLatencyExcluding returns the largest chunk latency among the nearest k
// chunks whose index is not in the exclude set. It returns 0 when every
// needed chunk is excluded (i.e. fully cached).
func (f FetchPlan) MaxLatencyExcluding(k int, exclude map[int]bool) int64 {
	var maxLat int64
	for i := 0; i < k && i < len(f.Chunks); i++ {
		if exclude[f.Chunks[i]] {
			continue
		}
		if f.Latency[i] > maxLat {
			maxLat = f.Latency[i]
		}
	}
	return maxLat
}
