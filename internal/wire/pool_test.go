package wire

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// TestBufferPoolRecycles: a released buffer comes back on the next Get of
// the same class, and Outstanding tracks the Get/Put balance.
func TestBufferPoolRecycles(t *testing.T) {
	p := NewBufferPool()
	a := p.Get(1000)
	if len(a) != 1000 || cap(a) != 1024 {
		t.Fatalf("Get(1000): len %d cap %d, want 1000/1024", len(a), cap(a))
	}
	if p.Outstanding() != 1 {
		t.Fatalf("outstanding = %d", p.Outstanding())
	}
	a[0] = 0xAB
	p.Put(a)
	if p.Outstanding() != 0 {
		t.Fatalf("outstanding after Put = %d", p.Outstanding())
	}
	b := p.Get(700) // same 1KiB class: must be the recycled array
	if &a[0] != &b[0] {
		t.Fatal("same-class Get did not recycle the released buffer")
	}
	if len(b) != 700 {
		t.Fatalf("recycled len = %d", len(b))
	}
	p.Put(b)
}

// TestBufferPoolClassing: sizes map to the smallest covering class, tiny
// sizes share the smallest class, and the class caps hold.
func TestBufferPoolClassing(t *testing.T) {
	for _, tc := range []struct{ n, class int }{
		{0, 0}, {1, 0}, {512, 0}, {513, 1}, {1024, 1}, {1 << 16, 7}, {1<<16 + 1, 8}, {MaxFrame, poolClasses - 1},
	} {
		if c := classFor(tc.n); c != tc.class {
			t.Errorf("classFor(%d) = %d, want %d", tc.n, c, tc.class)
		}
	}
	if c := classFor(MaxFrame + 1); c != -1 {
		t.Errorf("classFor(MaxFrame+1) = %d, want -1", c)
	}

	// Oversize buffers are plain allocations; Put drops them silently but
	// still balances Outstanding.
	p := NewBufferPool()
	big := p.Get(MaxFrame + 1)
	if len(big) != MaxFrame+1 {
		t.Fatalf("oversize len = %d", len(big))
	}
	p.Put(big)
	if p.Outstanding() != 0 {
		t.Fatalf("outstanding = %d", p.Outstanding())
	}
}

// TestBufferPoolGrownBufferRebinned: a pooled buffer that an append grew
// past its class returns to the class its new capacity fills.
func TestBufferPoolGrownBufferRebinned(t *testing.T) {
	p := NewBufferPool()
	buf := p.Get(512)[:0]
	buf = append(buf, make([]byte, 4096)...) // outgrows the 512B class
	p.Put(buf)
	got := p.Get(cap(buf))
	if cap(got) < 4096 {
		t.Fatalf("rebinned Get cap = %d, want >= 4096", cap(got))
	}
	if &got[0] != &buf[0] {
		t.Fatal("grown buffer was not rebinned into its new class")
	}
	p.Put(got)
}

// frameFor encodes m and returns the full wire bytes.
func frameFor(t *testing.T, m Message) []byte {
	t.Helper()
	buf, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestReadPooledRoundTrip: a pooled read returns the same message a plain
// Read would, owns its frame, and Release returns it to the pool.
func TestReadPooledRoundTrip(t *testing.T) {
	p := NewBufferPool()
	want := Message{Header: Header{Op: OpPut, Key: "k", Index: 3}, Body: []byte("hello body")}
	wireBytes := frameFor(t, want)

	m, err := ReadPooled(bytes.NewReader(wireBytes), p)
	if err != nil {
		t.Fatal(err)
	}
	if m.Header.Op != want.Header.Op || m.Header.Key != "k" || !bytes.Equal(m.Body, want.Body) {
		t.Fatalf("pooled read = %+v", m)
	}
	if p.Outstanding() != 1 {
		t.Fatalf("outstanding = %d, frame must be owned", p.Outstanding())
	}
	m.Release()
	if p.Outstanding() != 0 {
		t.Fatalf("outstanding after release = %d", p.Outstanding())
	}
	if m.Body != nil {
		t.Fatal("Release left Body aliasing a returned buffer")
	}
	m.Release() // second release must be a no-op
	if p.Outstanding() != 0 {
		t.Fatalf("double release corrupted the count: %d", p.Outstanding())
	}
}

// TestReadPooledErrorPathsDoNotLeak covers the satellite fix: every reject
// — truncated body, bad header length, header decode failure, torn length
// prefix — must return the pooled frame before reporting.
func TestReadPooledErrorPathsDoNotLeak(t *testing.T) {
	good := frameFor(t, Message{Header: Header{Op: OpGet, Key: "k"}, Body: []byte("bb")})

	truncated := good[:len(good)-1] // stream ends mid-body

	badHeaderLen := append([]byte(nil), good...)
	badHeaderLen[4], badHeaderLen[5] = 0xFF, 0xFF // header length > frame

	badJSON := append([]byte(nil), good...)
	badJSON[6] = '{' + 1 // corrupt the JSON header

	shortPrefix := good[:2] // stream dies inside the length prefix

	cases := map[string][]byte{
		"truncated":     truncated,
		"bad-headerlen": badHeaderLen,
		"bad-json":      badJSON,
		"short-prefix":  shortPrefix,
	}
	for name, stream := range cases {
		p := NewBufferPool()
		if _, err := ReadPooled(bytes.NewReader(stream), p); err == nil {
			t.Errorf("%s: read succeeded", name)
		}
		if n := p.Outstanding(); n != 0 {
			t.Errorf("%s: leaked %d pooled buffers", name, n)
		}
	}
}

// TestReadPooledOversizeRejectsBeforeAllocating: a hostile length prefix
// above MaxFrame is rejected without touching the pool.
func TestReadPooledOversizeRejectsBeforeAllocating(t *testing.T) {
	p := NewBufferPool()
	stream := []byte{0xFF, 0xFF, 0xFF, 0xFF} // ~4 GiB declared frame
	if _, err := ReadPooled(bytes.NewReader(stream), p); err != ErrFrameTooLarge {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
	if p.Outstanding() != 0 {
		t.Fatalf("outstanding = %d", p.Outstanding())
	}
}

// TestWriteVectoredParity: the vectored writer must emit byte-identical
// frames to Encode for a contiguous body, a segmented body, and no body.
func TestWriteVectoredParity(t *testing.T) {
	cases := map[string]Message{
		"contiguous": {Header: Header{Op: OpPut, Key: "k", Index: 1}, Body: []byte("abcdef")},
		"empty":      {Header: Header{Op: OpOK}},
		"segmented": {
			Header:   Header{Op: OpOK, Key: "k", Indices: []int{1, 2, 3}, Sizes: []int{2, 0, 3}},
			Segments: [][]byte{[]byte("ab"), nil, []byte("xyz")},
		},
	}
	for name, m := range cases {
		flat := Message{Header: m.Header, Body: m.Body}
		if m.Segments != nil {
			flat.Body = bytes.Join(m.Segments, nil)
		}
		want, err := Encode(flat)
		if err != nil {
			t.Fatal(err)
		}
		p := NewBufferPool()
		var got bytes.Buffer
		if err := WriteVectored(&got, m, p); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(got.Bytes(), want) {
			t.Errorf("%s: vectored frame differs from Encode", name)
		}
		if p.Outstanding() != 0 {
			t.Errorf("%s: writer leaked %d buffers", name, p.Outstanding())
		}
		// And the result must decode back to the same message.
		back, err := Read(bytes.NewReader(got.Bytes()))
		if err != nil {
			t.Fatalf("%s: reread: %v", name, err)
		}
		if !bytes.Equal(back.Body, flat.Body) {
			t.Errorf("%s: body mismatch after round trip", name)
		}
	}
}

// TestWriteVectoredConsumesOwnedBuffers: success and every error path must
// release the message's pooled buffers — the server hands replies to the
// writer unconditionally.
func TestWriteVectoredConsumesOwnedBuffers(t *testing.T) {
	mk := func(p *BufferPool) Message {
		body := p.Get(64)
		m := Message{Header: Header{Op: OpOK}, Body: body}
		m.Own(p, body)
		return m
	}

	p := NewBufferPool()
	if err := WriteVectored(io.Discard, mk(p), p); err != nil {
		t.Fatal(err)
	}
	if p.Outstanding() != 0 {
		t.Fatalf("success path leaked %d", p.Outstanding())
	}

	// Header too large to frame.
	m := mk(p)
	m.Header.Key = strings.Repeat("x", 0x10000)
	if err := WriteVectored(io.Discard, m, p); err == nil {
		t.Fatal("oversized header accepted")
	}
	if p.Outstanding() != 0 {
		t.Fatalf("header-error path leaked %d", p.Outstanding())
	}

	// Body pushes the frame past MaxFrame.
	m = mk(p)
	m.Body = make([]byte, MaxFrame)
	if err := WriteVectored(io.Discard, m, p); err != ErrFrameTooLarge {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
	if p.Outstanding() != 0 {
		t.Fatalf("oversize path leaked %d", p.Outstanding())
	}

	// A failing writer still consumes the message.
	m = mk(p)
	if err := WriteVectored(failWriter{}, m, p); err == nil {
		t.Fatal("failing writer reported success")
	}
	if p.Outstanding() != 0 {
		t.Fatalf("write-error path leaked %d", p.Outstanding())
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, io.ErrClosedPipe }

// TestAdoptTransfersOwnership: Adopt moves owned buffers so one Release on
// the adopter frees everything and the donor's Release is a no-op.
func TestAdoptTransfersOwnership(t *testing.T) {
	p := NewBufferPool()
	donor := Message{}
	donor.Own(p, p.Get(32))
	donor.Own(p, p.Get(64))
	adopter := Message{}
	adopter.Own(p, p.Get(128))
	adopter.Adopt(&donor)
	donor.Release()
	if p.Outstanding() != 3 {
		t.Fatalf("donor release freed adopted buffers: outstanding = %d", p.Outstanding())
	}
	adopter.Release()
	if p.Outstanding() != 0 {
		t.Fatalf("outstanding = %d", p.Outstanding())
	}
}

// TestPackBatchViewsAliases: the segments returned by PackBatchViews alias
// the chunk map's values — no copying on the reply path.
func TestPackBatchViewsAliases(t *testing.T) {
	chunks := map[int][]byte{2: []byte("bb"), 0: []byte("aaaa"), 7: {}}
	indices, sizes, segs, err := PackBatchViews(chunks)
	if err != nil {
		t.Fatal(err)
	}
	wantIdx := []int{0, 2, 7}
	wantSz := []int{4, 2, 0}
	for i := range wantIdx {
		if indices[i] != wantIdx[i] || sizes[i] != wantSz[i] {
			t.Fatalf("indices %v sizes %v", indices, sizes)
		}
	}
	if &segs[0][0] != &chunks[0][0] || &segs[1][0] != &chunks[2][0] {
		t.Fatal("segments do not alias the chunk data")
	}
}

// TestAppendBatchViewsValidation: views appending rejects the same shapes
// UnpackBatch rejects, plus non-ascending indices (the split-merge path
// relies on ascending fragments to detect duplicates for free).
func TestAppendBatchViewsValidation(t *testing.T) {
	body := []byte("aabbb")
	good := func() ([]BatchChunk, error) {
		return AppendBatchViews(nil, []int{1, 4}, []int{2, 3}, body)
	}
	chunks, err := good()
	if err != nil || len(chunks) != 2 {
		t.Fatalf("chunks %v err %v", chunks, err)
	}
	if !bytes.Equal(chunks[0].Data, []byte("aa")) || !bytes.Equal(chunks[1].Data, []byte("bbb")) {
		t.Fatalf("chunk data %q %q", chunks[0].Data, chunks[1].Data)
	}
	if &chunks[0].Data[0] != &body[0] {
		t.Fatal("views copied the body")
	}

	bad := []struct {
		name    string
		indices []int
		sizes   []int
		body    []byte
	}{
		{"count-mismatch", []int{1, 2}, []int{1}, []byte("a")},
		{"negative-size", []int{1}, []int{-1}, nil},
		{"negative-index", []int{-1}, []int{1}, []byte("a")},
		{"body-short", []int{1}, []int{4}, []byte("ab")},
		{"body-long", []int{1}, []int{1}, []byte("ab")},
		{"descending", []int{4, 1}, []int{1, 1}, []byte("ab")},
		{"duplicate", []int{1, 1}, []int{1, 1}, []byte("ab")},
	}
	for _, tc := range bad {
		if _, err := AppendBatchViews(nil, tc.indices, tc.sizes, tc.body); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestUnpackBatchCopiesSurviveFrameReuse is the aliasing-safety heart of
// the pooled read path: chunks unpacked (copied) from a pooled request
// frame must stay intact after the frame is released, recycled by the next
// read, and overwritten — while UnpackBatchViews chunks, by contract,
// alias the frame and may not outlive its release.
func TestUnpackBatchCopiesSurviveFrameReuse(t *testing.T) {
	p := NewBufferPool()
	chunks := map[int][]byte{0: bytes.Repeat([]byte{0xAA}, 100), 3: bytes.Repeat([]byte{0xBB}, 50)}
	indices, sizes, body, err := PackBatch(chunks)
	if err != nil {
		t.Fatal(err)
	}
	req := Message{Header: Header{Op: OpMPut, Key: "k", Indices: indices, Sizes: sizes}, Body: body}
	wireBytes := frameFor(t, req)

	m, err := ReadPooled(bytes.NewReader(wireBytes), p)
	if err != nil {
		t.Fatal(err)
	}
	copied, err := UnpackBatch(m.Header.Indices, m.Header.Sizes, m.Body)
	if err != nil {
		t.Fatal(err)
	}
	views, err := UnpackBatchViews(m.Header.Indices, m.Header.Sizes, m.Body)
	if err != nil {
		t.Fatal(err)
	}
	// The views alias the pooled frame; the copies must not.
	if &views[0][0] == &copied[0][0] {
		t.Fatal("UnpackBatch returned aliasing chunks")
	}

	frameBase := &m.Body[0]
	m.Release()

	// Force reuse of the released frame and scribble over it, as the next
	// connection's read would.
	scratch := p.Get(len(wireBytes))
	if &scratch[0] != frameBase {
		t.Skip("pool did not hand back the same array (size class drift)")
	}
	for i := range scratch {
		scratch[i] = 0x5C
	}

	for idx, want := range chunks {
		if !bytes.Equal(copied[idx], want) {
			t.Fatalf("copied chunk %d corrupted by frame reuse", idx)
		}
	}
	// And the views did observe the scribble — proving they alias, which is
	// why handlers must copy (or finish) before Release.
	if views[0][0] != 0x5C {
		t.Fatal("views unexpectedly do not alias the frame")
	}
	p.Put(scratch)
}

// FuzzAppendBatchViews cross-checks the zero-copy batch reader against
// UnpackBatch on arbitrary framing: whenever both accept, the chunk bytes
// must agree; views must alias the body and copies must not.
func FuzzAppendBatchViews(f *testing.F) {
	f.Add(2, []byte{1, 2, 3, 4, 5, 6}, 3)
	f.Add(1, []byte("x"), 1)
	f.Add(3, []byte{}, 0)
	f.Fuzz(func(t *testing.T, n int, body []byte, chunkSize int) {
		if n <= 0 || n > 64 || chunkSize < 0 || chunkSize > 1024 {
			t.Skip()
		}
		indices := make([]int, n)
		sizes := make([]int, n)
		for i := range indices {
			indices[i] = i * 2 // strictly ascending, as split fragments are
			sizes[i] = chunkSize
		}
		viewChunks, viewErr := AppendBatchViews(nil, indices, sizes, body)
		mapChunks, mapErr := UnpackBatch(indices, sizes, body)
		if (viewErr == nil) != (mapErr == nil) {
			t.Fatalf("views err %v, unpack err %v", viewErr, mapErr)
		}
		if viewErr != nil {
			return
		}
		for _, ch := range viewChunks {
			if !bytes.Equal(mapChunks[ch.Index], ch.Data) {
				t.Fatalf("chunk %d: views %q vs copies %q", ch.Index, ch.Data, mapChunks[ch.Index])
			}
			if len(ch.Data) > 0 {
				same := &ch.Data[0] == &mapChunks[ch.Index][0]
				if same {
					t.Fatal("UnpackBatch aliased the body")
				}
			}
		}
		// Scribble the body: views change, copies must not.
		for i := range body {
			body[i] ^= 0xFF
		}
		for _, ch := range viewChunks {
			if len(ch.Data) > 0 && bytes.Equal(mapChunks[ch.Index], ch.Data) && len(ch.Data) > 0 {
				// Equal after scribble means the copy aliased (or the chunk
				// was coincidentally symmetric under XOR, impossible for 0xFF).
				t.Fatal("copied chunk tracked body mutation")
			}
		}
	})
}
