package wire

import (
	"bytes"
	"errors"
	"testing"
)

func TestMergeBatchRestoresOrdering(t *testing.T) {
	// Fragments arrive in arbitrary (completion) order; merge + repack must
	// equal packing the union directly.
	a := map[int][]byte{7: []byte("seven"), 1: []byte("one")}
	b := map[int][]byte{4: []byte("four")}
	c := map[int][]byte{0: []byte("zero"), 9: []byte("nine")}
	merged, err := MergeBatch(c, a, b)
	if err != nil {
		t.Fatal(err)
	}
	gotIdx, gotSizes, gotBody, err := PackBatch(merged)
	if err != nil {
		t.Fatal(err)
	}
	union := map[int][]byte{0: []byte("zero"), 1: []byte("one"), 4: []byte("four"),
		7: []byte("seven"), 9: []byte("nine")}
	wantIdx, wantSizes, wantBody, err := PackBatch(union)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotIdx) != len(wantIdx) || !bytes.Equal(gotBody, wantBody) {
		t.Fatalf("merged pack differs: idx %v vs %v, body %q vs %q", gotIdx, wantIdx, gotBody, wantBody)
	}
	for i := range wantIdx {
		if gotIdx[i] != wantIdx[i] || gotSizes[i] != wantSizes[i] {
			t.Fatalf("slot %d: got (%d,%d), want (%d,%d)", i, gotIdx[i], gotSizes[i], wantIdx[i], wantSizes[i])
		}
	}
}

func TestMergeBatchRejectsDuplicates(t *testing.T) {
	_, err := MergeBatch(map[int][]byte{3: []byte("x")}, map[int][]byte{3: []byte("y")})
	if !errors.Is(err, ErrBadBatch) {
		t.Fatalf("duplicate chunk merged: err = %v", err)
	}
}

func TestMergeBatchEmpty(t *testing.T) {
	merged, err := MergeBatch()
	if err != nil || len(merged) != 0 {
		t.Fatalf("empty merge: %v, %v", merged, err)
	}
	merged, err = MergeBatch(map[int][]byte{}, nil)
	if err != nil || len(merged) != 0 {
		t.Fatalf("merge of empties: %v, %v", merged, err)
	}
}

func TestMergeIndices(t *testing.T) {
	got, err := MergeIndices([]int{9, 2}, nil, []int{5}, []int{0, 7})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 2, 5, 7, 9}
	if len(got) != len(want) {
		t.Fatalf("merged %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged %v, want %v", got, want)
		}
	}
	if _, err := MergeIndices([]int{1}, []int{1}); !errors.Is(err, ErrBadBatch) {
		t.Fatalf("duplicate index merged: err = %v", err)
	}
}
