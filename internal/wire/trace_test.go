package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"reflect"
	"testing"

	"github.com/agardist/agar/internal/trace"
)

// legacyHeader is the Header exactly as it existed before trace context
// was added (PR 7 framing). The parity test encodes through it to prove
// untraced frames are byte-identical to what old clients and servers
// produce — the interoperability contract for mixed-version deployments.
type legacyHeader struct {
	Op      string           `json:"op"`
	Key     string           `json:"key,omitempty"`
	Index   int              `json:"index,omitempty"`
	Keys    []string         `json:"keys,omitempty"`
	Indices []int            `json:"indices,omitempty"`
	Region  string           `json:"region,omitempty"`
	Seq     int64            `json:"seq,omitempty"`
	Delta   bool             `json:"delta,omitempty"`
	Base    int64            `json:"base,omitempty"`
	Sizes   []int            `json:"sizes,omitempty"`
	Error   string           `json:"error,omitempty"`
	Stats   map[string]int64 `json:"stats,omitempty"`
	Groups  map[string][]int `json:"groups,omitempty"`
}

// legacyEncode frames a legacy header + body the way Encode does.
func legacyEncode(t *testing.T, h legacyHeader, body []byte) []byte {
	t.Helper()
	hdr, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	total := 2 + len(hdr) + len(body)
	buf := make([]byte, 4+total)
	binary.BigEndian.PutUint32(buf, uint32(total))
	binary.BigEndian.PutUint16(buf[4:], uint16(len(hdr)))
	off := 6 + copy(buf[6:], hdr)
	copy(buf[off:], body)
	return buf
}

// TestHeaderTraceParity pins the absent-field guarantee: a request or
// reply that carries no trace context encodes to the byte-identical frame
// the pre-trace protocol produced.
func TestHeaderTraceParity(t *testing.T) {
	cases := []struct {
		name   string
		now    Header
		legacy legacyHeader
		body   []byte
	}{
		{
			name:   "get request",
			now:    Header{Op: OpGet, Key: "obj-7", Index: 3},
			legacy: legacyHeader{Op: OpGet, Key: "obj-7", Index: 3},
		},
		{
			name:   "mget request with region",
			now:    Header{Op: OpMGet, Key: "obj-1", Indices: []int{0, 2, 5}, Region: "dublin"},
			legacy: legacyHeader{Op: OpMGet, Key: "obj-1", Indices: []int{0, 2, 5}, Region: "dublin"},
		},
		{
			name:   "batched ok reply",
			now:    Header{Op: OpOK, Indices: []int{0, 1}, Sizes: []int{3, 2}},
			legacy: legacyHeader{Op: OpOK, Indices: []int{0, 1}, Sizes: []int{3, 2}},
			body:   []byte("abcde"),
		},
		{
			name:   "error reply",
			now:    Header{Op: OpError, Error: "no such chunk"},
			legacy: legacyHeader{Op: OpError, Error: "no such chunk"},
		},
	}
	for _, tc := range cases {
		got, err := Encode(Message{Header: tc.now, Body: tc.body})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		want := legacyEncode(t, tc.legacy, tc.body)
		if !bytes.Equal(got, want) {
			t.Errorf("%s: traced-protocol frame differs from legacy framing\n got %q\nwant %q", tc.name, got, want)
		}
	}
}

// TestHeaderTraceFieldsCoverLegacy guards the parity test itself: if a
// future PR adds a Header field the legacy twin does not know about, this
// fails and forces the parity table to be revisited.
func TestHeaderTraceFieldsCoverLegacy(t *testing.T) {
	// Fields added after the pre-trace protocol: the trace context (PR 8)
	// and the version headers, which have their own parity suite in
	// version_test.go.
	traceFields := map[string]bool{
		"Trace": true, "Span": true, "TFlags": true, "Anns": true,
		"Ver": true, "Vers": true, "KeyVers": true,
	}
	now := reflect.TypeOf(Header{})
	old := reflect.TypeOf(legacyHeader{})
	for i := 0; i < now.NumField(); i++ {
		f := now.Field(i)
		if traceFields[f.Name] {
			continue
		}
		lf, ok := old.FieldByName(f.Name)
		if !ok {
			t.Errorf("Header field %s missing from legacyHeader — update the parity test", f.Name)
			continue
		}
		if lf.Tag.Get("json") != f.Tag.Get("json") {
			t.Errorf("Header field %s json tag %q differs from legacy %q", f.Name, f.Tag.Get("json"), lf.Tag.Get("json"))
		}
	}
}

// TestHeaderTraceRoundTrip checks traced frames carry the context and
// annotations through an encode/decode cycle.
func TestHeaderTraceRoundTrip(t *testing.T) {
	ctx := trace.New()
	req := Message{Header: Header{
		Op: OpMGet, Key: "obj-9", Indices: []int{0, 1},
		Trace: ctx.TraceID.String(), Span: ctx.SpanID.String(), TFlags: ctx.Flags,
	}}
	buf, err := Encode(req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(buf[4:])
	if err != nil {
		t.Fatal(err)
	}
	if got.Header.Trace != ctx.TraceID.String() || got.Header.Span != ctx.SpanID.String() || got.Header.TFlags != trace.FlagSampled {
		t.Fatalf("trace context mangled: %+v", got.Header)
	}
	reply := Message{Header: Header{
		Op: OpOK,
		Anns: []trace.Annotation{
			{Name: "queue", OffUS: 0, DurUS: 12},
			{Name: "exec", OffUS: 12, DurUS: 340},
		},
	}}
	buf, err = Encode(reply)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(buf[4:])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Header.Anns, reply.Header.Anns) {
		t.Fatalf("annotations mangled: %+v", back.Header.Anns)
	}
}

// FuzzTraceHeaderRoundTrip fuzzes the trace header fields through an
// encode/decode cycle: any (trace, span, flags, annotation) combination
// must survive unchanged, and the empty context must add zero bytes over
// the equivalent untraced frame.
func FuzzTraceHeaderRoundTrip(f *testing.F) {
	f.Add("0011223344556677", "8899aabbccddeeff", 1, "exec", int64(5), int64(120))
	f.Add("", "", 0, "", int64(0), int64(0))
	f.Add("ffffffffffffffff", "0000000000000001", 3, "p0/queue", int64(-4), int64(1<<40))
	f.Fuzz(func(t *testing.T, tr, span string, flags int, annName string, off, dur int64) {
		h := Header{Op: OpGet, Key: "k", Trace: tr, Span: span, TFlags: flags}
		if annName != "" {
			h.Anns = []trace.Annotation{{Name: annName, OffUS: off, DurUS: dur}}
		}
		buf, err := Encode(Message{Header: h})
		if err != nil {
			t.Skip() // e.g. header too large from a huge fuzz string
		}
		got, err := Decode(buf[4:])
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.Header.Trace != tr || got.Header.Span != span || got.Header.TFlags != flags {
			t.Fatalf("context mangled: got %+v", got.Header)
		}
		if !reflect.DeepEqual(got.Header.Anns, h.Anns) {
			t.Fatalf("annotations mangled: got %+v want %+v", got.Header.Anns, h.Anns)
		}
		if tr == "" && span == "" && flags == 0 && annName == "" {
			plain, err := Encode(Message{Header: Header{Op: OpGet, Key: "k"}})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf, plain) {
				t.Fatalf("zero trace context changed framing:\n got %q\nwant %q", buf, plain)
			}
		}
	})
}
