package wire

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"testing"
)

func TestBatchRoundTrip(t *testing.T) {
	chunks := map[int][]byte{
		7: []byte("seven"),
		0: []byte("zero"),
		3: {}, // empty chunk bodies are legal
		9: []byte("nine-bytes"),
	}
	indices, sizes, body, err := PackBatch(chunks)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 3, 7, 9}
	for i := range want {
		if indices[i] != want[i] {
			t.Fatalf("indices = %v, want %v", indices, want)
		}
		if sizes[i] != len(chunks[want[i]]) {
			t.Fatalf("sizes = %v", sizes)
		}
	}

	// Travel through a real frame: encode, decode, unpack.
	m := Message{Header: Header{Op: OpMPut, Key: "obj", Indices: indices, Sizes: sizes}, Body: body}
	frame, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(frame[4:])
	if err != nil {
		t.Fatal(err)
	}
	out, err := UnpackBatch(got.Header.Indices, got.Header.Sizes, got.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(chunks) {
		t.Fatalf("unpacked %d chunks", len(out))
	}
	for idx, data := range chunks {
		if !bytes.Equal(out[idx], data) {
			t.Fatalf("chunk %d = %q, want %q", idx, out[idx], data)
		}
	}

	// Unpacked chunks must be copies, not views of the frame body.
	if len(out[0]) > 0 {
		got.Body[0] ^= 0xFF
		if out[0][0] == got.Body[0] {
			t.Fatal("UnpackBatch returned shared storage")
		}
	}
}

func TestPackBatchRejects(t *testing.T) {
	if _, _, _, err := PackBatch(nil); !errors.Is(err, ErrBadBatch) {
		t.Fatalf("empty batch: err = %v", err)
	}
	big := make(map[int][]byte, MaxBatchChunks+1)
	for i := 0; i <= MaxBatchChunks; i++ {
		big[i] = []byte{1}
	}
	if _, _, _, err := PackBatch(big); !errors.Is(err, ErrBadBatch) {
		t.Fatalf("oversized batch: err = %v", err)
	}
}

func TestUnpackBatchRejectsMalformedFraming(t *testing.T) {
	oversizedIdx := make([]int, MaxBatchChunks+1)
	oversizedSizes := make([]int, MaxBatchChunks+1)
	for i := range oversizedIdx {
		oversizedIdx[i] = i
	}
	cases := []struct {
		name    string
		indices []int
		sizes   []int
		body    []byte
	}{
		{"count mismatch", []int{1, 2}, []int{3}, []byte("abc")},
		{"negative size", []int{1}, []int{-1}, nil},
		{"truncated body", []int{1, 2}, []int{3, 3}, []byte("abcde")},
		{"overflowing size", []int{1, 2}, []int{1, math.MaxInt}, []byte("ab")},
		{"trailing bytes", []int{1}, []int{2}, []byte("abc")},
		{"duplicate index", []int{4, 4}, []int{1, 1}, []byte("ab")},
		{"oversized", oversizedIdx, oversizedSizes, nil},
	}
	for _, c := range cases {
		if _, err := UnpackBatch(c.indices, c.sizes, c.body); !errors.Is(err, ErrBadBatch) {
			t.Errorf("%s: err = %v, want ErrBadBatch", c.name, err)
		}
	}
}

func TestUnpackBatchEmptyIsEmptyMap(t *testing.T) {
	out, err := UnpackBatch(nil, nil, nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

func TestBatchFrameStaysUnderMaxFrame(t *testing.T) {
	// A full batch of 64 KiB chunks would blow MaxFrame; Encode must refuse
	// rather than emit a frame peers will reject.
	chunks := make(map[int][]byte, MaxBatchChunks)
	for i := 0; i < MaxBatchChunks; i++ {
		chunks[i] = make([]byte, 1<<16)
	}
	indices, sizes, body, err := PackBatch(chunks)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Encode(Message{Header: Header{Op: OpMPut, Key: "k", Indices: indices, Sizes: sizes}, Body: body})
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func BenchmarkPackUnpackBatch(b *testing.B) {
	chunks := make(map[int][]byte, 12)
	for i := 0; i < 12; i++ {
		chunks[i] = make([]byte, 4096)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		indices, sizes, body, err := PackBatch(chunks)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := UnpackBatch(indices, sizes, body); err != nil {
			b.Fatal(err)
		}
	}
}

func TestBatchHeaderSizesSurviveJSON(t *testing.T) {
	// Sizes ride in the JSON header: make sure zero-size entries are kept
	// (omitempty applies to the slice, not its elements).
	m := Message{Header: Header{Op: OpMGet, Key: "k", Indices: []int{0, 1}, Sizes: []int{0, 5}}, Body: []byte("hello")}
	frame, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(frame[4:])
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got.Header.Sizes) != fmt.Sprint(m.Header.Sizes) {
		t.Fatalf("sizes = %v", got.Header.Sizes)
	}
}
