package wire

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	msgs := []Message{
		{Header: Header{Op: OpGet, Key: "obj", Index: 4}},
		{Header: Header{Op: OpOK}, Body: []byte("chunk-bytes")},
		{Header: Header{Op: OpHint, Key: "k", Indices: []int{4, 3, 9}}},
		{Header: Header{Op: OpError, Error: "boom"}},
		{Header: Header{Op: OpStats, Stats: map[string]int64{"hits": 42}}},
		{Header: Header{Op: OpSnapshot, Groups: map[string][]int{"a": {1, 2}}}},
		{Header: Header{Op: OpMHint, Keys: []string{"a", "b", "c"}}},
		{Header: Header{Op: OpDigest, Region: "dublin", Seq: 7, Groups: map[string][]int{"k": {0, 5}}}},
		{Header: Header{Op: OpDigestAck, Seq: 7}},
	}
	for _, m := range msgs {
		buf, err := Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(buf[4:])
		if err != nil {
			t.Fatal(err)
		}
		if got.Header.Op != m.Header.Op || got.Header.Key != m.Header.Key ||
			got.Header.Index != m.Header.Index || got.Header.Error != m.Header.Error {
			t.Fatalf("header mismatch: %+v vs %+v", got.Header, m.Header)
		}
		if !bytes.Equal(got.Body, m.Body) {
			t.Fatalf("body mismatch")
		}
		if len(m.Header.Indices) > 0 && len(got.Header.Indices) != len(m.Header.Indices) {
			t.Fatal("indices lost")
		}
		if len(m.Header.Keys) > 0 && len(got.Header.Keys) != len(m.Header.Keys) {
			t.Fatal("keys lost")
		}
		if got.Header.Region != m.Header.Region || got.Header.Seq != m.Header.Seq {
			t.Fatalf("coop fields mismatch: %+v vs %+v", got.Header, m.Header)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte{1}); err == nil {
		t.Fatal("accepted short frame")
	}
	if _, err := Decode([]byte{0xFF, 0xFF, 1, 2, 3}); err == nil {
		t.Fatal("accepted header overrun")
	}
	if _, err := Decode([]byte{0, 2, '{', 'x'}); err == nil {
		t.Fatal("accepted bad JSON header")
	}
}

func TestReadWriteStream(t *testing.T) {
	var buf bytes.Buffer
	want := Message{Header: Header{Op: OpPut, Key: "k", Index: 2}, Body: []byte("data")}
	if err := Write(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header.Key != "k" || !bytes.Equal(got.Body, []byte("data")) {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestReadRejectsHugeFrame(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := Read(&buf); err != ErrFrameTooLarge {
		t.Fatalf("err = %v", err)
	}
}

func TestCallOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		req, err := Read(conn)
		if err != nil {
			return
		}
		Write(conn, Message{Header: Header{Op: OpOK, Key: req.Header.Key}, Body: []byte("pong")})
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	resp, err := Call(conn, Message{Header: Header{Op: OpGet, Key: "ping"}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.Key != "ping" || string(resp.Body) != "pong" {
		t.Fatalf("resp = %+v", resp)
	}
	<-done
}

func TestCallSurfacesRemoteError(t *testing.T) {
	ln, _ := net.Listen("tcp", "127.0.0.1:0")
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		if _, err := Read(conn); err != nil {
			return
		}
		Write(conn, ErrorMessage(ErrBadFrame))
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := Call(conn, Message{Header: Header{Op: OpGet}}); err == nil {
		t.Fatal("remote error not surfaced")
	}
}

func TestUDPDatagramRoundTrip(t *testing.T) {
	server, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	clientConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer clientConn.Close()

	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 64<<10)
		req, addr, err := ReadDatagram(server, buf)
		if err != nil {
			done <- err
			return
		}
		done <- WriteDatagram(server, addr, Message{
			Header: Header{Op: OpOK, Key: req.Header.Key, Indices: []int{1, 2, 3}},
		})
	}()

	err = WriteDatagram(clientConn, server.LocalAddr(), Message{Header: Header{Op: OpHint, Key: "obj"}})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64<<10)
	resp, _, err := ReadDatagram(clientConn, buf)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.Key != "obj" || len(resp.Header.Indices) != 3 {
		t.Fatalf("resp = %+v", resp)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	f := func(key string, index uint8, body []byte) bool {
		m := Message{Header: Header{Op: OpPut, Key: key, Index: int(index)}, Body: body}
		buf, err := Encode(m)
		if err != nil {
			return false
		}
		got, err := Decode(buf[4:])
		if err != nil {
			return false
		}
		return got.Header.Key == key && got.Header.Index == int(index) && bytes.Equal(got.Body, body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestDecodeHeaderLengthValidation table-drives Decode over frames whose
// declared header length disagrees with the frame's actual size.
func TestDecodeHeaderLengthValidation(t *testing.T) {
	valid, err := Encode(Message{Header: Header{Op: OpGet, Key: "k"}})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		frame   []byte
		wantErr error
	}{
		{"empty frame", nil, ErrBadFrame},
		{"one-byte frame", []byte{0}, ErrBadFrame},
		{"header length one past frame end", []byte{0, 3, '{', '}'}, ErrBadFrame},
		{"header length far past frame end", []byte{0xFF, 0xFF, '{', '}'}, ErrBadFrame},
		{"header fills frame exactly", []byte{0, 2, '{', '}'}, nil},
		{"valid encoded frame", valid[4:], nil},
	}
	for _, c := range cases {
		_, err := Decode(c.frame)
		if c.wantErr == nil {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if !errors.Is(err, c.wantErr) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.wantErr)
		}
	}
}

// TestReadTruncatedFrames table-drives Read over streams that end mid-frame:
// every truncation must surface ErrTruncated, not a hang or a generic error,
// while a clean end-of-stream stays io.EOF.
func TestReadTruncatedFrames(t *testing.T) {
	whole, err := Encode(Message{Header: Header{Op: OpPut, Key: "obj", Index: 1}, Body: []byte("chunk")})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		stream  []byte
		wantErr error
	}{
		{"clean EOF before any frame", nil, io.EOF},
		{"cut inside length prefix", whole[:2], ErrTruncated},
		{"cut after length prefix", whole[:4], ErrTruncated},
		{"cut inside header", whole[:8], ErrTruncated},
		{"cut one byte short of the body", whole[:len(whole)-1], ErrTruncated},
		{"whole frame", whole, nil},
	}
	for _, c := range cases {
		_, err := Read(bytes.NewReader(c.stream))
		if c.wantErr == nil {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if !errors.Is(err, c.wantErr) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.wantErr)
		}
	}
}

// TestReadTruncatedOverTCP exercises the torn-connection path end to end:
// the peer closes mid-frame and Read must return ErrTruncated promptly.
func TestReadTruncatedOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		frame, _ := Encode(Message{Header: Header{Op: OpOK}, Body: make([]byte, 1024)})
		conn.Write(frame[:len(frame)/2])
		conn.Close()
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := Read(conn); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}
