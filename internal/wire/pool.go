package wire

import (
	"math/bits"
	"sync/atomic"
)

// Buffer-pool size classes: power-of-two capacities from 512 B up to
// MaxFrame. Frames smaller than the smallest class borrow from it; frames
// larger than MaxFrame cannot exist (Read rejects them before allocating).
const (
	poolMinBits = 9  // 512 B — smaller than any chunk-bearing frame
	poolMaxBits = 24 // 16 MiB == MaxFrame
	poolClasses = poolMaxBits - poolMinBits + 1
)

// poolClassCap bounds how many idle buffers one size class retains. Small
// classes (request frames, reply headers, chunk bodies) keep enough for a
// busy server's steady state; large classes cap retained memory — a burst
// of near-MaxFrame frames must not pin gigabytes after it passes.
func poolClassCap(bits int) int {
	switch {
	case bits <= 16: // ≤ 64 KiB
		return 64
	case bits <= 20: // ≤ 1 MiB
		return 8
	default:
		return 2
	}
}

// BufferPool recycles frame and chunk-body buffers across the wire hot
// path: the server borrows a buffer per decoded frame (ReadPooled), per
// reply header (WriteVectored), and per batched reply body, and returns
// each with Put once the bytes have left the socket.
//
// Free lists are bounded per size class, so a pool's retained memory is
// capped; overflow simply falls to the garbage collector. Get and Put are
// allocation-free for in-class sizes, which is the point.
//
// The contract is strict ownership: Put only what Get returned, exactly
// once, and never touch a buffer after Put — a released frame may be
// handed to another connection immediately. Outstanding counts buffers
// currently held between Get and Put; tests use it as a leak detector
// (a quiesced server must report zero).
type BufferPool struct {
	classes     [poolClasses]chan []byte
	outstanding atomic.Int64
}

// NewBufferPool returns an empty pool; classes fill as buffers are released.
func NewBufferPool() *BufferPool {
	p := &BufferPool{}
	for i := range p.classes {
		p.classes[i] = make(chan []byte, poolClassCap(poolMinBits+i))
	}
	return p
}

// classFor returns the smallest class whose buffers hold n bytes, or -1
// when n exceeds the largest class.
func classFor(n int) int {
	if n <= 1<<poolMinBits {
		return 0
	}
	c := bits.Len(uint(n-1)) - poolMinBits
	if c >= poolClasses {
		return -1
	}
	return c
}

// Get returns a buffer of length n (capacity possibly larger), recycled
// when the pool has one and freshly allocated otherwise. Buffers longer
// than the largest class are allocated directly; Put simply drops them.
func (p *BufferPool) Get(n int) []byte {
	p.outstanding.Add(1)
	c := classFor(n)
	if c < 0 {
		return make([]byte, n)
	}
	select {
	case buf := <-p.classes[c]:
		return buf[:n]
	default:
		return make([]byte, n, 1<<(poolMinBits+c))
	}
}

// Put releases a buffer obtained from Get. The buffer is binned by its
// capacity — an append that outgrew its class returns to the larger class
// it grew into — and dropped to the garbage collector when its class is
// already full.
func (p *BufferPool) Put(buf []byte) {
	p.outstanding.Add(-1)
	// Bin by the largest class the capacity fully covers, so a future Get
	// from that class always has room.
	c := bits.Len(uint(cap(buf))) - 1 - poolMinBits
	if c < 0 || cap(buf) == 0 {
		return
	}
	if c >= poolClasses {
		c = poolClasses - 1
	}
	select {
	case p.classes[c] <- buf:
	default: // class full: let the GC have it
	}
}

// Outstanding reports buffers currently held between Get and Put — the
// leak-detection hook. A server that has answered every request and
// written every reply must report zero.
func (p *BufferPool) Outstanding() int64 { return p.outstanding.Load() }
