package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"reflect"
	"testing"

	"github.com/agardist/agar/internal/trace"
)

// preVersionHeader is the Header exactly as it existed before the version
// fields were added (the PR 8 traced protocol). The parity test encodes
// through it to prove unversioned frames are byte-identical to what
// pre-version clients and servers produce — read-only deployments never
// see the write path on the wire.
type preVersionHeader struct {
	Op      string             `json:"op"`
	Key     string             `json:"key,omitempty"`
	Index   int                `json:"index,omitempty"`
	Keys    []string           `json:"keys,omitempty"`
	Indices []int              `json:"indices,omitempty"`
	Region  string             `json:"region,omitempty"`
	Seq     int64              `json:"seq,omitempty"`
	Delta   bool               `json:"delta,omitempty"`
	Base    int64              `json:"base,omitempty"`
	Sizes   []int              `json:"sizes,omitempty"`
	Trace   string             `json:"trace,omitempty"`
	Span    string             `json:"span,omitempty"`
	TFlags  int                `json:"tflags,omitempty"`
	Anns    []trace.Annotation `json:"anns,omitempty"`
	Error   string             `json:"error,omitempty"`
	Stats   map[string]int64   `json:"stats,omitempty"`
	Groups  map[string][]int   `json:"groups,omitempty"`
}

// preVersionEncode frames a pre-version header + body the way Encode does.
func preVersionEncode(t *testing.T, h preVersionHeader, body []byte) []byte {
	t.Helper()
	hdr, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	total := 2 + len(hdr) + len(body)
	buf := make([]byte, 4+total)
	binary.BigEndian.PutUint32(buf, uint32(total))
	binary.BigEndian.PutUint16(buf[4:], uint16(len(hdr)))
	off := 6 + copy(buf[6:], hdr)
	copy(buf[off:], body)
	return buf
}

// TestHeaderVersionParity pins the absent-field guarantee: a frame that
// carries no version information encodes byte-identically to the
// pre-version protocol, traced or not.
func TestHeaderVersionParity(t *testing.T) {
	ctx := trace.New()
	cases := []struct {
		name   string
		now    Header
		legacy preVersionHeader
		body   []byte
	}{
		{
			name:   "put request",
			now:    Header{Op: OpPut, Key: "obj-7", Index: 3},
			legacy: preVersionHeader{Op: OpPut, Key: "obj-7", Index: 3},
			body:   []byte("chunk"),
		},
		{
			name:   "mget reply",
			now:    Header{Op: OpOK, Indices: []int{0, 1}, Sizes: []int{3, 2}},
			legacy: preVersionHeader{Op: OpOK, Indices: []int{0, 1}, Sizes: []int{3, 2}},
			body:   []byte("abcde"),
		},
		{
			name:   "digest frame",
			now:    Header{Op: OpDigest, Region: "dublin", Seq: 9, Groups: map[string][]int{"k": {0, 2}}},
			legacy: preVersionHeader{Op: OpDigest, Region: "dublin", Seq: 9, Groups: map[string][]int{"k": {0, 2}}},
		},
		{
			name:   "traced delobj",
			now:    Header{Op: OpDelObj, Key: "obj-1", Trace: ctx.TraceID.String(), Span: ctx.SpanID.String(), TFlags: ctx.Flags},
			legacy: preVersionHeader{Op: OpDelObj, Key: "obj-1", Trace: ctx.TraceID.String(), Span: ctx.SpanID.String(), TFlags: ctx.Flags},
		},
	}
	for _, tc := range cases {
		got, err := Encode(Message{Header: tc.now, Body: tc.body})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		want := preVersionEncode(t, tc.legacy, tc.body)
		if !bytes.Equal(got, want) {
			t.Errorf("%s: versioned-protocol frame differs from pre-version framing\n got %q\nwant %q", tc.name, got, want)
		}
	}
}

// TestHeaderVersionFieldsCoverLegacy guards the parity test itself: any
// Header field beyond the known version additions must exist in the
// pre-version twin with the same JSON tag.
func TestHeaderVersionFieldsCoverLegacy(t *testing.T) {
	versionFields := map[string]bool{"Ver": true, "Vers": true, "KeyVers": true}
	now := reflect.TypeOf(Header{})
	old := reflect.TypeOf(preVersionHeader{})
	for i := 0; i < now.NumField(); i++ {
		f := now.Field(i)
		if versionFields[f.Name] {
			continue
		}
		lf, ok := old.FieldByName(f.Name)
		if !ok {
			t.Errorf("Header field %s missing from preVersionHeader — update the parity test", f.Name)
			continue
		}
		if lf.Tag.Get("json") != f.Tag.Get("json") {
			t.Errorf("Header field %s json tag %q differs from pre-version %q", f.Name, f.Tag.Get("json"), lf.Tag.Get("json"))
		}
	}
}

// TestVersionHeaderRoundTrip checks each version field survives an
// encode/decode cycle alongside the fields it rides with.
func TestVersionHeaderRoundTrip(t *testing.T) {
	h := Header{
		Op: OpMPut, Key: "obj-3", Indices: []int{0, 4, 7}, Sizes: []int{1, 1, 1},
		Ver:  (1754 << 16) | 9,
		Vers: []uint64{1754<<16 | 9, 1754<<16 | 9, 1700 << 16},
		KeyVers: map[string]uint64{
			"obj-3": 1754<<16 | 9,
			"obj-4": 0,
		},
	}
	buf, err := Encode(Message{Header: h, Body: []byte("abc")})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(buf[4:])
	if err != nil {
		t.Fatal(err)
	}
	if got.Header.Ver != h.Ver || !reflect.DeepEqual(got.Header.Vers, h.Vers) ||
		!reflect.DeepEqual(got.Header.KeyVers, h.KeyVers) {
		t.Fatalf("version fields mangled: %+v", got.Header)
	}
}

// FuzzVersionHeaderRoundTrip fuzzes the version header fields through an
// encode/decode cycle: any (ver, per-chunk vers, key version) combination
// must survive unchanged, and the all-zero combination must add zero bytes
// over the equivalent unversioned frame.
func FuzzVersionHeaderRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(0), "")
	f.Add(uint64(1754<<16|3), uint64(1754<<16|4), uint64(9), "obj-1")
	f.Add(^uint64(0), uint64(1), ^uint64(0)>>1, "k")
	f.Fuzz(func(t *testing.T, ver, chunkVer, keyVer uint64, verKey string) {
		h := Header{Op: OpMPut, Key: "k", Indices: []int{2}, Ver: ver}
		if chunkVer != 0 {
			h.Vers = []uint64{chunkVer}
		}
		if verKey != "" {
			h.KeyVers = map[string]uint64{verKey: keyVer}
		}
		buf, err := Encode(Message{Header: h})
		if err != nil {
			t.Skip() // e.g. header too large from a huge fuzz string
		}
		got, err := Decode(buf[4:])
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.Header.Ver != ver || !reflect.DeepEqual(got.Header.Vers, h.Vers) ||
			!reflect.DeepEqual(got.Header.KeyVers, h.KeyVers) {
			t.Fatalf("version fields mangled: got %+v want %+v", got.Header, h)
		}
		if ver == 0 && chunkVer == 0 && verKey == "" {
			plain, err := Encode(Message{Header: Header{Op: OpMPut, Key: "k", Indices: []int{2}}})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf, plain) {
				t.Fatalf("zero version context changed framing:\n got %q\nwant %q", buf, plain)
			}
		}
	})
}
