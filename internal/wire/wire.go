// Package wire implements the framing protocol Agar's live deployment
// speaks over TCP and UDP.
//
// Every message is one frame:
//
//	u32 frame length (big endian, excluding itself)
//	u16 header length
//	header: JSON-encoded Header
//	body: raw bytes (chunk payloads), may be empty
//
// The JSON header keeps the protocol debuggable and extensible; chunk
// payloads travel uncopied as the raw body. The same Header structure is
// reused for requests and responses. UDP hint datagrams carry a single
// frame per packet, mirroring the paper's low-overhead client-to-monitor
// channel.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"

	"github.com/agardist/agar/internal/trace"
)

// MaxFrame bounds a frame to guard against corrupt length prefixes.
const MaxFrame = 16 << 20

// MaxBatchChunks bounds how many chunk frames one batch message may carry.
// Erasure-coded reads move at most k+m chunks per object, so the bound is
// generous; it exists to reject corrupt or hostile batch headers before any
// allocation is sized from them.
const MaxBatchChunks = 256

// Op codes carried in Header.Op.
const (
	OpGet       = "get"        // fetch one chunk
	OpPut       = "put"        // store one chunk
	OpMGet      = "mget"       // fetch many chunks of one key in one round trip
	OpMPut      = "mput"       // store many chunks of one key in one round trip
	OpDelete    = "delete"     // remove one chunk
	OpDelObj    = "delobj"     // remove all chunks of an object
	OpIndices   = "indices"    // list resident chunk indices for a key
	OpHint      = "hint"       // request a caching hint (Agar monitor)
	OpMHint     = "mhint"      // request caching hints for many keys at once
	OpDigest    = "digest"     // advertise a cache's residency to a peer
	OpDigestAck = "digest-ack" // acknowledge a digest frame (echoes Seq)
	OpStats     = "stats"      // fetch server statistics
	OpSnapshot  = "snapshot"   // fetch cache contents summary
	OpOK        = "ok"         // success response
	OpError     = "error"      // failure response
	OpNotFound  = "not-found"  // missing chunk response
	OpStale     = "stale"      // versioned mutation lost to a newer version
)

// Header is the JSON-encoded frame header.
type Header struct {
	// Op is the request operation or response status.
	Op string `json:"op"`
	// Key is the object key, when relevant.
	Key string `json:"key,omitempty"`
	// Index is the chunk index, when relevant.
	Index int `json:"index,omitempty"`
	// Keys carries object key lists (batched hint requests).
	Keys []string `json:"keys,omitempty"`
	// Indices carries chunk index lists (hints, residency answers, batch
	// chunk frames).
	Indices []int `json:"indices,omitempty"`
	// Region names the sending node's region on cooperative-cache frames:
	// the advertiser on OpDigest, the reading client on peer OpMGet calls
	// (so the serving cache can account peer traffic separately).
	Region string `json:"region,omitempty"`
	// Seq orders digest frames from one advertiser: a receiver replaces its
	// mirror on a higher Seq, merges frames sharing the current Seq (large
	// digests paginate), and drops lower ones as stale.
	Seq int64 `json:"seq,omitempty"`
	// Delta marks an OpDigest frame as a delta over snapshot Base: Groups
	// lists only the keys whose residency changed since the advertiser's
	// Base snapshot, an empty index list meaning the key is gone. A
	// receiver applies it only when its mirror sits exactly at Base; the
	// digest ack always echoes the mirror's resulting sequence, so an
	// advertiser that outran its peer sees the mismatch and falls back to a
	// full digest.
	Delta bool  `json:"delta,omitempty"`
	Base  int64 `json:"base,omitempty"`
	// Sizes carries the per-chunk byte lengths of a batch message's body:
	// Sizes[i] bytes of Body belong to chunk Indices[i], in order.
	Sizes []int `json:"sizes,omitempty"`
	// Trace, Span and TFlags carry the optional trace context of a traced
	// request: the 16-hex-digit trace ID the whole client operation runs
	// under, the client span that issued this exchange, and behaviour
	// flags (trace.FlagSampled asks the server for annotations). All three
	// are omitted for untraced requests, so untraced framing is
	// byte-identical to the pre-trace protocol and old peers interoperate.
	Trace  string `json:"trace,omitempty"`
	Span   string `json:"span,omitempty"`
	TFlags int    `json:"tflags,omitempty"`
	// Anns carries the server's span annotations back on the reply to a
	// traced request: named intervals (queue wait, per-shard execute)
	// offset from the server's receipt of the frame.
	Anns []trace.Annotation `json:"anns,omitempty"`
	// Ver carries one hybrid-logical-clock version (hlc.Timestamp as a
	// uint64): the write's stamp on versioned put/mput/delobj requests, the
	// key's version floor on read replies, and the winning version on
	// OpStale replies. Zero (omitted) means unversioned, so unversioned
	// frames stay byte-identical to the pre-version protocol — the same
	// contract the trace fields keep.
	Ver uint64 `json:"ver,omitempty"`
	// Vers carries per-chunk versions parallel to Indices on batch replies
	// whose chunks carry versions. When present it has exactly one entry
	// per index; absent means every chunk is unversioned.
	Vers []uint64 `json:"vers,omitempty"`
	// KeyVers carries per-key versions on OpDigest frames, alongside
	// Groups: the advertiser's newest known version for each advertised (or
	// delta-removed) key. Receivers raise their own version floors from it,
	// which is how a write's invalidation rides the digest mesh across
	// regions.
	KeyVers map[string]uint64 `json:"key_vers,omitempty"`
	// Error carries the error text for OpError responses.
	Error string `json:"error,omitempty"`
	// Stats carries free-form counters for OpStats responses.
	Stats map[string]int64 `json:"stats,omitempty"`
	// Groups carries the cache snapshot (key -> resident indices).
	Groups map[string][]int `json:"groups,omitempty"`
}

// Message is one protocol frame.
//
// The body travels either as one contiguous slice (Body) or as an ordered
// vector of slices (Segments); their concatenation is the wire body. At
// most one of the two is set. Segments exist so a batched reply assembled
// from several buffers — per-shard fragments, per-chunk store results —
// can be written with one vectored syscall (WriteVectored) instead of
// being copied into one contiguous frame first.
//
// A message may own pooled buffers its Body or Segments alias (see Own);
// whoever consumes the message — normally WriteVectored on the server
// reply path — must Release it exactly once.
type Message struct {
	Header Header
	Body   []byte
	// Segments carries the body as a vector; nil means Body is the body.
	Segments [][]byte
	// owned lists the pooled buffers backing this message. Each remembers
	// its pool, so buffers from different pools can travel in one message.
	owned []ownedBuf
}

// ownedBuf pairs a pooled buffer with the pool that issued it.
type ownedBuf struct {
	pool *BufferPool
	buf  []byte
}

// Own records a pooled buffer this message's Body or Segments alias;
// Release returns it. Messages without owned buffers release as a no-op,
// so callers can release uniformly.
func (m *Message) Own(p *BufferPool, buf []byte) {
	m.owned = append(m.owned, ownedBuf{pool: p, buf: buf})
}

// Adopt transfers from's owned buffers to m — the merge half of a split
// batch keeps the fragment bodies its segments alias alive this way, and
// a single Release on the merged reply frees them all.
func (m *Message) Adopt(from *Message) {
	m.owned = append(m.owned, from.owned...)
	from.owned = nil
}

// Release returns every owned buffer to its pool and clears the body
// references (they alias buffers that may be reused immediately). Exactly
// one Release per message; messages owning nothing release as a no-op.
func (m *Message) Release() {
	if m.owned == nil {
		return
	}
	for _, o := range m.owned {
		o.pool.Put(o.buf)
	}
	m.owned = nil
	m.Body = nil
	m.Segments = nil
}

// BodyLen returns the wire body length: len(Body), or the summed segment
// lengths when the body travels as a vector.
func (m *Message) BodyLen() int {
	if m.Segments == nil {
		return len(m.Body)
	}
	n := 0
	for _, s := range m.Segments {
		n += len(s)
	}
	return n
}

// Errors returned by the codec.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")
	ErrBadFrame      = errors.New("wire: malformed frame")
	// ErrTruncated reports a stream that ended mid-frame: the peer closed
	// or the connection dropped after a partial length prefix or body.
	ErrTruncated = errors.New("wire: truncated frame")
	// ErrBadBatch reports a batch message whose chunk framing is
	// inconsistent: mismatched index/size counts, negative sizes, a body
	// that does not match the declared sizes, or too many chunks.
	ErrBadBatch = errors.New("wire: malformed batch")
)

// Encode serialises the message into a frame, flattening Segments into the
// contiguous body when the message carries a vectored one.
func Encode(m Message) ([]byte, error) {
	header, err := json.Marshal(m.Header)
	if err != nil {
		return nil, fmt.Errorf("wire: encode header: %w", err)
	}
	if len(header) > 0xFFFF {
		return nil, fmt.Errorf("wire: header too large (%d bytes)", len(header))
	}
	total := 2 + len(header) + m.BodyLen()
	if total > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	buf := make([]byte, 4+total)
	binary.BigEndian.PutUint32(buf, uint32(total))
	binary.BigEndian.PutUint16(buf[4:], uint16(len(header)))
	off := 6 + copy(buf[6:], header)
	if m.Segments != nil {
		for _, s := range m.Segments {
			off += copy(buf[off:], s)
		}
	} else {
		copy(buf[off:], m.Body)
	}
	return buf, nil
}

// Decode parses one frame payload (without the u32 length prefix). Frames
// whose declared header length exceeds the frame are rejected with
// ErrBadFrame rather than read out of bounds.
func Decode(frame []byte) (Message, error) {
	if len(frame) < 2 {
		return Message{}, fmt.Errorf("%w: %d-byte frame below minimum", ErrBadFrame, len(frame))
	}
	hlen := int(binary.BigEndian.Uint16(frame))
	if 2+hlen > len(frame) {
		return Message{}, fmt.Errorf("%w: header length %d exceeds %d-byte frame", ErrBadFrame, hlen, len(frame))
	}
	var h Header
	if err := json.Unmarshal(frame[2:2+hlen], &h); err != nil {
		return Message{}, fmt.Errorf("wire: decode header: %w", err)
	}
	body := frame[2+hlen:]
	out := Message{Header: h}
	if len(body) > 0 {
		out.Body = append([]byte(nil), body...)
	}
	return out, nil
}

// Write sends one message on a stream connection.
func Write(w io.Writer, m Message) error {
	buf, err := Encode(m)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// Read receives one message from a stream connection. A stream that ends
// cleanly between frames returns io.EOF; one that ends mid-frame returns
// ErrTruncated so callers can tell a graceful close from a torn one.
func Read(r io.Reader) (Message, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return Message{}, fmt.Errorf("%w: stream ended inside the length prefix", ErrTruncated)
		}
		return Message{}, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > MaxFrame {
		return Message{}, ErrFrameTooLarge
	}
	frame := make([]byte, n)
	read, err := io.ReadFull(r, frame)
	if err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return Message{}, fmt.Errorf("%w: stream ended %d bytes into a %d-byte frame", ErrTruncated, read, n)
		}
		return Message{}, fmt.Errorf("wire: short frame: %w", err)
	}
	return Decode(frame)
}

// DecodeShared parses one frame payload like Decode, but the returned
// message's Body aliases the frame buffer instead of copying it. The
// caller guarantees the frame outlives every use of the body — the pooled
// read path does so by making the message own the frame (see ReadPooled).
func DecodeShared(frame []byte) (Message, error) {
	if len(frame) < 2 {
		return Message{}, fmt.Errorf("%w: %d-byte frame below minimum", ErrBadFrame, len(frame))
	}
	hlen := int(binary.BigEndian.Uint16(frame))
	if 2+hlen > len(frame) {
		return Message{}, fmt.Errorf("%w: header length %d exceeds %d-byte frame", ErrBadFrame, hlen, len(frame))
	}
	var h Header
	if err := json.Unmarshal(frame[2:2+hlen], &h); err != nil {
		return Message{}, fmt.Errorf("wire: decode header: %w", err)
	}
	out := Message{Header: h}
	if body := frame[2+hlen:]; len(body) > 0 {
		out.Body = body
	}
	return out, nil
}

// ReadPooled receives one message using a pooled frame buffer instead of a
// fresh allocation per frame. The returned message's Body aliases the
// pooled frame and the message owns it: the caller must Release the
// message once the request has been handled (handlers copy anything they
// retain). Every error path — oversize reject, truncation, a bad header
// length — returns the pooled buffer before reporting, so a hostile or
// torn stream cannot leak frames out of the pool.
func ReadPooled(r io.Reader, p *BufferPool) (Message, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return Message{}, fmt.Errorf("%w: stream ended inside the length prefix", ErrTruncated)
		}
		return Message{}, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > MaxFrame {
		return Message{}, ErrFrameTooLarge
	}
	frame := p.Get(int(n))
	read, err := io.ReadFull(r, frame)
	if err != nil {
		p.Put(frame)
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return Message{}, fmt.Errorf("%w: stream ended %d bytes into a %d-byte frame", ErrTruncated, read, n)
		}
		return Message{}, fmt.Errorf("wire: short frame: %w", err)
	}
	m, err := DecodeShared(frame)
	if err != nil {
		p.Put(frame)
		return Message{}, err
	}
	m.Own(p, frame)
	return m, nil
}

// WriteVectored sends one message without flattening it into a contiguous
// frame: the length prefix and JSON header go into one pooled buffer, and
// the body — contiguous or vectored — is written alongside it with
// net.Buffers, which is a single writev on a TCP connection. A batched
// reply assembled as Segments therefore reaches the socket with zero body
// copies.
//
// WriteVectored consumes the message: it Releases any owned pooled
// buffers on every path, success or error, so server reply paths can hand
// pooled responses to it unconditionally.
func WriteVectored(w io.Writer, m Message, p *BufferPool) error {
	header, err := json.Marshal(m.Header)
	if err != nil {
		m.Release()
		return fmt.Errorf("wire: encode header: %w", err)
	}
	if len(header) > 0xFFFF {
		m.Release()
		return fmt.Errorf("wire: header too large (%d bytes)", len(header))
	}
	bl := m.BodyLen()
	total := 2 + len(header) + bl
	if total > MaxFrame {
		m.Release()
		return ErrFrameTooLarge
	}
	head := p.Get(6 + len(header))
	binary.BigEndian.PutUint32(head, uint32(total))
	binary.BigEndian.PutUint16(head[4:], uint16(len(header)))
	copy(head[6:], header)
	if bl == 0 {
		_, err = w.Write(head)
	} else {
		vec := make(net.Buffers, 1, 1+max(1, len(m.Segments)))
		vec[0] = head
		if m.Segments != nil {
			vec = append(vec, m.Segments...)
		} else {
			vec = append(vec, m.Body)
		}
		_, err = vec.WriteTo(w)
	}
	p.Put(head)
	m.Release()
	return err
}

// Call performs one request/response round trip on a stream connection.
func Call(conn net.Conn, req Message) (Message, error) {
	if err := Write(conn, req); err != nil {
		return Message{}, err
	}
	resp, err := Read(conn)
	if err != nil {
		return Message{}, err
	}
	if resp.Header.Op == OpError {
		return resp, fmt.Errorf("wire: remote error: %s", resp.Header.Error)
	}
	return resp, nil
}

// WriteDatagram sends one message as a single UDP datagram.
func WriteDatagram(conn net.PacketConn, addr net.Addr, m Message) error {
	buf, err := Encode(m)
	if err != nil {
		return err
	}
	_, err = conn.WriteTo(buf[4:], addr) // datagrams carry no length prefix
	return err
}

// ReadDatagram receives one message from a UDP socket. The buffer must be
// large enough for the expected datagram (hints are small).
func ReadDatagram(conn net.PacketConn, buf []byte) (Message, net.Addr, error) {
	n, addr, err := conn.ReadFrom(buf)
	if err != nil {
		return Message{}, nil, err
	}
	m, err := Decode(buf[:n])
	return m, addr, err
}

// ErrorMessage builds an OpError response.
func ErrorMessage(err error) Message {
	return Message{Header: Header{Op: OpError, Error: err.Error()}}
}

// PackBatch lays a set of chunks out as one batch message payload: sorted
// indices, matching per-chunk sizes, and the concatenated bodies. It
// rejects batches over MaxBatchChunks and empty chunk maps.
func PackBatch(chunks map[int][]byte) (indices []int, sizes []int, body []byte, err error) {
	if len(chunks) == 0 {
		return nil, nil, nil, fmt.Errorf("%w: empty batch", ErrBadBatch)
	}
	if len(chunks) > MaxBatchChunks {
		return nil, nil, nil, fmt.Errorf("%w: %d chunks exceeds limit %d", ErrBadBatch, len(chunks), MaxBatchChunks)
	}
	indices = make([]int, 0, len(chunks))
	total := 0
	for idx, data := range chunks {
		indices = append(indices, idx)
		total += len(data)
	}
	sort.Ints(indices)
	sizes = make([]int, len(indices))
	body = make([]byte, 0, total)
	for i, idx := range indices {
		sizes[i] = len(chunks[idx])
		body = append(body, chunks[idx]...)
	}
	return indices, sizes, body, nil
}

// MergeBatch unions per-shard batch fragments back into one chunk map — the
// reply-merging half of a split batch. A server that fans a batch frame out
// over shard workers gets one fragment per shard back in completion order;
// merging into a map and re-packing with PackBatch restores the global
// ascending-index reply ordering, so a split batch's reply is byte-identical
// to the unsplit one. A chunk index appearing in two fragments means the
// split was wrong (two shards claimed one chunk) and returns ErrBadBatch.
func MergeBatch(parts ...map[int][]byte) (map[int][]byte, error) {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make(map[int][]byte, total)
	for _, p := range parts {
		for idx, data := range p {
			if _, dup := out[idx]; dup {
				return nil, fmt.Errorf("%w: chunk %d in two batch fragments", ErrBadBatch, idx)
			}
			out[idx] = data
		}
	}
	return out, nil
}

// MergeIndices unions per-shard index lists into one ascending list — the
// reply-merging half of a split mput, whose reply lists the chunk indices
// that landed. Duplicates across fragments return ErrBadBatch, like
// MergeBatch.
func MergeIndices(parts ...[]int) ([]int, error) {
	seen := make(map[int]bool)
	var out []int
	for _, p := range parts {
		for _, idx := range p {
			if seen[idx] {
				return nil, fmt.Errorf("%w: index %d in two batch fragments", ErrBadBatch, idx)
			}
			seen[idx] = true
			out = append(out, idx)
		}
	}
	sort.Ints(out)
	return out, nil
}

// PackBatchViews lays a chunk set out as batch framing without copying the
// chunk bytes: sorted indices, per-chunk sizes, and the chunk slices
// themselves as body segments in index order. The segments alias the map's
// values, so the message built from them must be written before any of
// those buffers are reused — which the server reply path does immediately
// via WriteVectored. Limits match PackBatch.
func PackBatchViews(chunks map[int][]byte) (indices []int, sizes []int, segments [][]byte, err error) {
	if len(chunks) == 0 {
		return nil, nil, nil, fmt.Errorf("%w: empty batch", ErrBadBatch)
	}
	if len(chunks) > MaxBatchChunks {
		return nil, nil, nil, fmt.Errorf("%w: %d chunks exceeds limit %d", ErrBadBatch, len(chunks), MaxBatchChunks)
	}
	indices = make([]int, 0, len(chunks))
	for idx := range chunks {
		indices = append(indices, idx)
	}
	sort.Ints(indices)
	sizes = make([]int, len(indices))
	segments = make([][]byte, len(indices))
	for i, idx := range indices {
		sizes[i] = len(chunks[idx])
		segments[i] = chunks[idx]
	}
	return indices, sizes, segments, nil
}

// BatchChunk is one chunk of a batch body viewed in place (AppendBatchViews).
type BatchChunk struct {
	Index int
	Data  []byte // aliases the batch body — valid only while the body is
}

// AppendBatchViews validates a batch message's framing and appends one
// BatchChunk per declared chunk to dst, each Data slicing the body in
// place — no copies, no map. Unlike UnpackBatch it additionally requires
// the indices to ascend strictly, which everything PackBatch or the cache
// server produces satisfies; the ordering makes duplicate detection free
// and lets a merge step sort fragment chunks without a map. The views
// alias body: they are valid only until the frame buffer is released.
func AppendBatchViews(dst []BatchChunk, indices, sizes []int, body []byte) ([]BatchChunk, error) {
	if len(indices) != len(sizes) {
		return dst, fmt.Errorf("%w: %d indices vs %d sizes", ErrBadBatch, len(indices), len(sizes))
	}
	if len(indices) > MaxBatchChunks {
		return dst, fmt.Errorf("%w: %d chunks exceeds limit %d", ErrBadBatch, len(indices), MaxBatchChunks)
	}
	off := 0
	for i, idx := range indices {
		if idx < 0 {
			return dst, fmt.Errorf("%w: negative chunk index %d", ErrBadBatch, idx)
		}
		if i > 0 && idx <= indices[i-1] {
			return dst, fmt.Errorf("%w: indices not strictly ascending at %d", ErrBadBatch, idx)
		}
		size := sizes[i]
		if size < 0 {
			return dst, fmt.Errorf("%w: negative size %d for chunk %d", ErrBadBatch, size, idx)
		}
		if size > len(body)-off {
			return dst, fmt.Errorf("%w: body truncated at chunk %d (%d of %d bytes)", ErrBadBatch, idx, len(body), off+size)
		}
		dst = append(dst, BatchChunk{Index: idx, Data: body[off : off+size]})
		off += size
	}
	if off != len(body) {
		return dst, fmt.Errorf("%w: %d trailing body bytes", ErrBadBatch, len(body)-off)
	}
	return dst, nil
}

// UnpackBatchViews is UnpackBatch without the copies: every returned chunk
// aliases the body slice. Use it when the chunks are consumed before the
// frame buffer is reused — the cache server's mput handler (the cache
// copies on insert) and client adapters that hand the map straight to a
// decoder. Callers that retain chunks past the frame must use UnpackBatch.
func UnpackBatchViews(indices, sizes []int, body []byte) (map[int][]byte, error) {
	if len(indices) != len(sizes) {
		return nil, fmt.Errorf("%w: %d indices vs %d sizes", ErrBadBatch, len(indices), len(sizes))
	}
	if len(indices) > MaxBatchChunks {
		return nil, fmt.Errorf("%w: %d chunks exceeds limit %d", ErrBadBatch, len(indices), MaxBatchChunks)
	}
	out := make(map[int][]byte, len(indices))
	off := 0
	for i, idx := range indices {
		size := sizes[i]
		if size < 0 {
			return nil, fmt.Errorf("%w: negative size %d for chunk %d", ErrBadBatch, size, idx)
		}
		if size > len(body)-off {
			return nil, fmt.Errorf("%w: body truncated at chunk %d (%d of %d bytes)", ErrBadBatch, idx, len(body), off+size)
		}
		if _, dup := out[idx]; dup {
			return nil, fmt.Errorf("%w: duplicate chunk index %d", ErrBadBatch, idx)
		}
		out[idx] = body[off : off+size]
		off += size
	}
	if off != len(body) {
		return nil, fmt.Errorf("%w: %d trailing body bytes", ErrBadBatch, len(body)-off)
	}
	return out, nil
}

// UnpackBatch is PackBatch's inverse: it validates the chunk framing of a
// batch message and splits the body back into per-index chunks. Every
// returned chunk is a copy, so the caller may retain them after the frame
// buffer is reused. Inconsistent framing — mismatched counts, negative
// sizes, a body longer or shorter than the sizes declare, duplicate
// indices, or over-limit batches — returns ErrBadBatch.
func UnpackBatch(indices, sizes []int, body []byte) (map[int][]byte, error) {
	if len(indices) != len(sizes) {
		return nil, fmt.Errorf("%w: %d indices vs %d sizes", ErrBadBatch, len(indices), len(sizes))
	}
	if len(indices) > MaxBatchChunks {
		return nil, fmt.Errorf("%w: %d chunks exceeds limit %d", ErrBadBatch, len(indices), MaxBatchChunks)
	}
	out := make(map[int][]byte, len(indices))
	off := 0
	for i, idx := range indices {
		size := sizes[i]
		if size < 0 {
			return nil, fmt.Errorf("%w: negative size %d for chunk %d", ErrBadBatch, size, idx)
		}
		// size > len(body)-off, not off+size > len(body): the sum overflows
		// for hostile sizes near MaxInt.
		if size > len(body)-off {
			return nil, fmt.Errorf("%w: body truncated at chunk %d (%d of %d bytes)", ErrBadBatch, idx, len(body), off+size)
		}
		if _, dup := out[idx]; dup {
			return nil, fmt.Errorf("%w: duplicate chunk index %d", ErrBadBatch, idx)
		}
		out[idx] = append([]byte(nil), body[off:off+size]...)
		off += size
	}
	if off != len(body) {
		return nil, fmt.Errorf("%w: %d trailing body bytes", ErrBadBatch, len(body)-off)
	}
	return out, nil
}
