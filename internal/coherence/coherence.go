// Package coherence is the cache-coherence layer of the write path: the
// per-key version-floor table live cache and store servers enforce
// versioned mutations against (VersionTable), plus the original
// Paxos-replicated invalidation log the paper's §VI sketches ("Protocols
// such as Paxos could provide the necessary synchronization primitives").
//
// The Paxos log is retained as the in-process prototype of a totally
// ordered invalidation stream, but the live transport does not bridge it:
// the deployed design retires the log in favour of hybrid-logical-clock
// versions riding the coop digest mesh. Per-key last-writer-wins ordering
// under HLC timestamps provides exactly the synchronization invalidation
// needs — no reader must agree on cross-key order, only on which version
// of one key is newest — so a quorum round trip per write buys nothing the
// version floor does not, and costs a WAN round trip the digest piggyback
// avoids. docs/WRITES.md records the full decision; coherence_test.go's
// read-after-write assertion is promoted to the live transport in
// internal/live's coherence tests.
//
// For the log prototype: writers append an invalidation record for each
// updated object; every region runs an Applier that consumes the committed
// log prefix in order and drops the object's chunks from its local cache.
package coherence

import (
	"encoding/json"
	"fmt"
	"sync"

	"github.com/agardist/agar/internal/paxos"
)

// Record is one replicated log entry.
type Record struct {
	// Op is the record type; only "invalidate" is defined today.
	Op string `json:"op"`
	// Key is the object whose cached chunks must be dropped.
	Key string `json:"key"`
	// Writer identifies the writing node (diagnostics only).
	Writer int `json:"writer"`
}

// Encode serialises a record for the log.
func (r Record) Encode() string {
	buf, err := json.Marshal(r)
	if err != nil {
		// Record fields are plain strings and ints; this cannot fail.
		panic(fmt.Sprintf("coherence: encode: %v", err))
	}
	return string(buf)
}

// DecodeRecord parses a log entry.
func DecodeRecord(s string) (Record, error) {
	var r Record
	if err := json.Unmarshal([]byte(s), &r); err != nil {
		return Record{}, fmt.Errorf("coherence: decode %q: %w", s, err)
	}
	return r, nil
}

// Invalidator is the cache surface coherence needs.
type Invalidator interface {
	// DeleteObject removes all resident chunks of the key, returning the
	// number removed.
	DeleteObject(key string) int
}

// Coordinator owns the replicated invalidation log for one deployment.
type Coordinator struct {
	acceptors []*paxos.Acceptor
}

// NewCoordinator creates a coordinator backed by n Paxos acceptors
// (typically one per region; a majority must be reachable to write).
func NewCoordinator(n int) *Coordinator {
	if n < 1 {
		panic("coherence: need at least one acceptor")
	}
	acc := make([]*paxos.Acceptor, n)
	for i := range acc {
		acc[i] = paxos.NewAcceptor(i)
	}
	return &Coordinator{acceptors: acc}
}

// Acceptor exposes acceptor i for failure injection in tests.
func (c *Coordinator) Acceptor(i int) *paxos.Acceptor { return c.acceptors[i] }

// NewWriter returns a log appender for the writing node.
func (c *Coordinator) NewWriter(id int) *Writer {
	return &Writer{
		id:  id,
		log: paxos.NewLog(paxos.NewProposer(id, c.acceptors)),
	}
}

// NewApplier returns an in-order log consumer that invalidates the given
// caches.
func (c *Coordinator) NewApplier(caches ...Invalidator) *Applier {
	return &Applier{coord: c, caches: caches}
}

// committed returns the chosen log prefix starting at from.
func (c *Coordinator) committed(from int64) []string {
	return paxos.CommittedPrefix(c.acceptors, from)
}

// Writer appends invalidations to the replicated log.
type Writer struct {
	id  int
	log *paxos.Log
}

// Invalidate appends an invalidation for the key and returns its log
// position. It blocks until a quorum commits the record.
func (w *Writer) Invalidate(key string) (int64, error) {
	return w.log.Append(Record{Op: "invalidate", Key: key, Writer: w.id}.Encode())
}

// Applier consumes the committed log in order and applies invalidations to
// its region's caches. It is safe for concurrent use.
type Applier struct {
	coord  *Coordinator
	caches []Invalidator

	mu      sync.Mutex
	applied int64
	history []Record
}

// Poll applies every newly committed record and returns how many were
// applied.
func (a *Applier) Poll() (int, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	entries := a.coord.committed(a.applied)
	for _, e := range entries {
		rec, err := DecodeRecord(e)
		if err != nil {
			return 0, err
		}
		if rec.Op == "invalidate" {
			for _, c := range a.caches {
				c.DeleteObject(rec.Key)
			}
		}
		a.history = append(a.history, rec)
		a.applied++
	}
	return len(entries), nil
}

// Applied returns the number of log entries applied so far.
func (a *Applier) Applied() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.applied
}

// History returns a copy of the applied records in order.
func (a *Applier) History() []Record {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Record, len(a.history))
	copy(out, a.history)
	return out
}
