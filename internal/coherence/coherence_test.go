package coherence

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/agardist/agar/internal/backend"
	"github.com/agardist/agar/internal/cache"
	"github.com/agardist/agar/internal/client"
	"github.com/agardist/agar/internal/erasure"
	"github.com/agardist/agar/internal/geo"
)

func TestRecordRoundTrip(t *testing.T) {
	r := Record{Op: "invalidate", Key: "obj-1", Writer: 3}
	got, err := DecodeRecord(r.Encode())
	if err != nil || got != r {
		t.Fatalf("got %+v err %v", got, err)
	}
	if _, err := DecodeRecord("not-json"); err == nil {
		t.Fatal("accepted garbage")
	}
}

func TestInvalidationAppliedToAllCaches(t *testing.T) {
	coord := NewCoordinator(3)
	c1 := cache.New(1<<20, cache.NewLRU())
	c2 := cache.New(1<<20, cache.NewLRU())
	c1.Put(cache.EntryID{Key: "obj", Index: 0}, []byte("x"))
	c2.Put(cache.EntryID{Key: "obj", Index: 1}, []byte("y"))
	c2.Put(cache.EntryID{Key: "other", Index: 0}, []byte("z"))

	applier := coord.NewApplier(c1, c2)
	w := coord.NewWriter(0)
	if _, err := w.Invalidate("obj"); err != nil {
		t.Fatal(err)
	}
	n, err := applier.Poll()
	if err != nil || n != 1 {
		t.Fatalf("poll applied %d err %v", n, err)
	}
	if len(c1.IndicesOf("obj")) != 0 || len(c2.IndicesOf("obj")) != 0 {
		t.Fatal("invalidation not applied everywhere")
	}
	if len(c2.IndicesOf("other")) != 1 {
		t.Fatal("unrelated object dropped")
	}
	if applier.Applied() != 1 {
		t.Fatalf("applied = %d", applier.Applied())
	}
}

func TestAppliersSeeSameOrder(t *testing.T) {
	coord := NewCoordinator(5)
	a1 := coord.NewApplier()
	a2 := coord.NewApplier()

	var wg sync.WaitGroup
	for writer := 0; writer < 3; writer++ {
		wg.Add(1)
		go func(writer int) {
			defer wg.Done()
			w := coord.NewWriter(writer)
			for i := 0; i < 8; i++ {
				if _, err := w.Invalidate(fmt.Sprintf("w%d-obj%d", writer, i)); err != nil {
					t.Error(err)
				}
			}
		}(writer)
	}
	wg.Wait()

	if _, err := a1.Poll(); err != nil {
		t.Fatal(err)
	}
	if _, err := a2.Poll(); err != nil {
		t.Fatal(err)
	}
	h1, h2 := a1.History(), a2.History()
	if len(h1) != 24 || len(h2) != 24 {
		t.Fatalf("histories %d/%d, want 24", len(h1), len(h2))
	}
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatalf("appliers diverge at %d: %+v vs %+v", i, h1[i], h2[i])
		}
	}
}

func TestPollIsIncremental(t *testing.T) {
	coord := NewCoordinator(3)
	a := coord.NewApplier()
	w := coord.NewWriter(0)
	w.Invalidate("a")
	if n, _ := a.Poll(); n != 1 {
		t.Fatal("first poll")
	}
	if n, _ := a.Poll(); n != 0 {
		t.Fatal("re-applied old entries")
	}
	w.Invalidate("b")
	if n, _ := a.Poll(); n != 1 {
		t.Fatal("second poll")
	}
}

func TestWriterBlocksWithoutQuorum(t *testing.T) {
	coord := NewCoordinator(3)
	coord.Acceptor(0).SetDown(true)
	coord.Acceptor(1).SetDown(true)
	w := coord.NewWriter(0)
	if _, err := w.Invalidate("k"); err == nil {
		t.Fatal("invalidation committed without quorum")
	}
	coord.Acceptor(1).SetDown(false)
	if _, err := w.Invalidate("k"); err != nil {
		t.Fatalf("after recovery: %v", err)
	}
}

// TestReadAfterWriteAcrossRegions wires coherence into the full read path:
// caches in two regions hold stale chunks; a coherent write invalidates
// both before readers can observe mixed data.
func TestReadAfterWriteAcrossRegions(t *testing.T) {
	codec, err := erasure.New(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	placement := geo.NewRoundRobin(geo.DefaultRegions(), false)
	cluster := backend.NewCluster(geo.DefaultRegions(), codec, placement)
	v1 := bytes.Repeat([]byte{1}, 9*1024)
	if err := cluster.PutObject("obj", v1); err != nil {
		t.Fatal(err)
	}
	env := &client.Env{
		Cluster:       cluster,
		Matrix:        geo.DefaultMatrix(),
		CacheLatency:  20 * time.Millisecond,
		DecodeLatency: 5 * time.Millisecond,
	}
	fra := client.NewFixedReader(env, geo.Frankfurt, cache.NewLRU(), 5, 1<<20)
	syd := client.NewFixedReader(env, geo.Sydney, cache.NewLRU(), 5, 1<<20)
	for i := 0; i < 2; i++ { // populate both caches
		fra.Read("obj")
		syd.Read("obj")
	}

	coord := NewCoordinator(3)
	applier := coord.NewApplier(fra.Cache(), syd.Cache())
	w := coord.NewWriter(0)

	// Coherent write: update the backend, then order the invalidation.
	v2 := bytes.Repeat([]byte{2}, 9*1024)
	if err := cluster.PutObject("obj", v2); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Invalidate("obj"); err != nil {
		t.Fatal(err)
	}
	if _, err := applier.Poll(); err != nil {
		t.Fatal(err)
	}

	for name, r := range map[string]*client.FixedReader{"frankfurt": fra, "sydney": syd} {
		got, _, err := r.Read("obj")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(got, v2) {
			t.Fatalf("%s read stale or mixed data after coherent write", name)
		}
	}
}
