package coherence

import (
	"fmt"
	"sync"
	"testing"

	"github.com/agardist/agar/internal/hlc"
)

func TestVersionTableObserveRaisesMonotonically(t *testing.T) {
	vt := NewVersionTable()
	if vt.Get("k") != 0 {
		t.Fatal("fresh key has a floor")
	}
	if !vt.Observe("k", hlc.Pack(100, 0)) {
		t.Fatal("first observe rejected")
	}
	if vt.Observe("k", hlc.Pack(50, 9)) {
		t.Fatal("older observe raised the floor")
	}
	if vt.Observe("k", hlc.Pack(100, 0)) {
		t.Fatal("equal observe reported a raise")
	}
	if !vt.Observe("k", hlc.Pack(100, 1)) {
		t.Fatal("newer observe rejected")
	}
	if got := vt.Get("k"); got != hlc.Pack(100, 1) {
		t.Fatalf("floor = %v", got)
	}
	if vt.Observe("k", 0) {
		t.Fatal("zero observe reported a raise")
	}
}

func TestVersionTableAdmit(t *testing.T) {
	vt := NewVersionTable()
	vt.Observe("k", hlc.Pack(100, 5))

	// Unversioned mutations always pass — the legacy path.
	if ok, _ := vt.Admit("k", 0); !ok {
		t.Fatal("legacy mutation blocked")
	}
	// Below the floor: a stale write-back.
	if ok, cur := vt.Admit("k", hlc.Pack(100, 4)); ok || cur != hlc.Pack(100, 5) {
		t.Fatalf("stale mutation admitted (ok=%v cur=%v)", ok, cur)
	}
	// At the floor: the write that set it (or its populate) re-admits.
	if ok, _ := vt.Admit("k", hlc.Pack(100, 5)); !ok {
		t.Fatal("current-version mutation blocked")
	}
	// Above the floor: a newer write.
	if ok, _ := vt.Admit("k", hlc.Pack(101, 0)); !ok {
		t.Fatal("newer mutation blocked")
	}
	// Unknown keys admit anything.
	if ok, _ := vt.Admit("other", hlc.Pack(1, 0)); !ok {
		t.Fatal("unknown key blocked")
	}
}

func TestVersionTableSeedAndLen(t *testing.T) {
	vt := NewVersionTable()
	vt.Seed("a", hlc.Pack(10, 0))
	vt.Seed("b", hlc.Pack(20, 0))
	if vt.Len() != 2 {
		t.Fatalf("Len = %d", vt.Len())
	}
	vt.Seed("a", hlc.Pack(5, 0)) // hydration may lower
	if vt.Get("a") != hlc.Pack(5, 0) {
		t.Fatal("seed did not overwrite")
	}
	vt.Seed("a", 0)
	if vt.Len() != 1 {
		t.Fatalf("Len after zero-seed = %d", vt.Len())
	}
}

// TestVersionTableConcurrent hammers observes and admits across keys under
// the race detector; the floor for each key must end at the maximum
// version any writer observed.
func TestVersionTableConcurrent(t *testing.T) {
	vt := NewVersionTable()
	const keys, writers, perWriter = 8, 4, 100
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 1; i <= perWriter; i++ {
				key := fmt.Sprintf("k%d", i%keys)
				vt.Observe(key, hlc.Pack(int64(i), w))
				vt.Admit(key, hlc.Pack(int64(i), 0))
			}
		}(w)
	}
	wg.Wait()
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("k%d", k)
		got := vt.Get(key)
		if got.IsZero() {
			t.Fatalf("%s never observed", key)
		}
		if got.Logical() != writers-1 && got.Logical() != 0 {
			// Highest (wall, logical) pair wins; the max wall for this key
			// stripe was observed by every writer, so the floor's logical
			// component is the largest writer id that reached it.
			t.Logf("%s floor %v (informational)", key, got)
		}
	}
}
