package coherence

import (
	"sync"

	"github.com/agardist/agar/internal/hlc"
)

// versionShards stripes the table to keep concurrent writers and the read
// path off one mutex. Must be a power of two.
const versionShards = 16

// VersionTable tracks the newest hybrid-logical-clock version observed per
// object key — the invalidation floor of the versioned write path. Cache
// servers consult it on every versioned mutation: a put below the floor is
// a stale write-back and is rejected; a delobj or digest at a higher
// version raises the floor, after which no chunk from before the write can
// be admitted or served again. Store servers use a second instance as the
// in-memory cache over their persisted version records.
//
// Version zero is the unversioned sentinel: keys never written through the
// versioned path have floor zero and every legacy operation passes.
type VersionTable struct {
	shards [versionShards]struct {
		mu   sync.Mutex
		vers map[string]hlc.Timestamp
	}
}

// NewVersionTable returns an empty table.
func NewVersionTable() *VersionTable {
	t := &VersionTable{}
	for i := range t.shards {
		t.shards[i].vers = make(map[string]hlc.Timestamp)
	}
	return t
}

// shardFor routes a key to its stripe (FNV-1a, like cache.StripeIndex).
func (t *VersionTable) shardFor(key string) *struct {
	mu   sync.Mutex
	vers map[string]hlc.Timestamp
} {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return &t.shards[h&(versionShards-1)]
}

// Get returns the key's version floor (zero when never observed).
func (t *VersionTable) Get(key string) hlc.Timestamp {
	s := t.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.vers[key]
}

// Observe raises the key's floor to ver if ver is newer and reports
// whether it did — true means the caller just learned about a write it had
// not seen and should drop any older cached state for the key.
func (t *VersionTable) Observe(key string, ver hlc.Timestamp) bool {
	if ver.IsZero() {
		return false
	}
	s := t.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if ver <= s.vers[key] {
		return false
	}
	s.vers[key] = ver
	return true
}

// Admit reports whether a mutation at ver may apply under the current
// floor, and the floor it was judged against. Unversioned mutations
// (ver zero) always pass — the legacy path is never blocked. A versioned
// mutation passes when ver >= floor; equality re-admits chunks of the
// current version (a populate racing the write that set the floor).
func (t *VersionTable) Admit(key string, ver hlc.Timestamp) (bool, hlc.Timestamp) {
	s := t.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.vers[key]
	if ver.IsZero() {
		return true, cur
	}
	return ver >= cur, cur
}

// Seed sets the key's floor unconditionally — the hydration hook store
// servers use when loading a persisted version record, and tests use to
// construct states. Unlike Observe it can lower a floor; callers outside
// hydration should prefer Observe.
func (t *VersionTable) Seed(key string, ver hlc.Timestamp) {
	s := t.shardFor(key)
	s.mu.Lock()
	if ver.IsZero() {
		delete(s.vers, key)
	} else {
		s.vers[key] = ver
	}
	s.mu.Unlock()
}

// Len returns how many keys carry a nonzero floor.
func (t *VersionTable) Len() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		n += len(s.vers)
		s.mu.Unlock()
	}
	return n
}
