// Package gf256 implements arithmetic over the finite field GF(2^8).
//
// The field is constructed from the irreducible polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11D), the same generator polynomial used by
// most Reed-Solomon deployments. Addition and subtraction are XOR;
// multiplication and division are performed through exp/log tables built
// once at package initialisation.
//
// The package also provides slice kernels (MulSlice, MulAddSlice) used by the
// erasure codec's encode and reconstruct inner loops.
package gf256

import "fmt"

// Polynomial is the irreducible polynomial that defines the field,
// x^8 + x^4 + x^3 + x^2 + 1.
const Polynomial = 0x11D

// Generator is the primitive element used to build the exp/log tables.
const Generator = 2

// Order is the number of elements in the field.
const Order = 256

var (
	expTable [512]byte // expTable[i] = Generator^i; doubled to avoid mod 255 in Mul
	logTable [256]byte // logTable[x] = i such that Generator^i == x; logTable[0] unused
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		expTable[i] = byte(x)
		logTable[x] = byte(i)
		x <<= 1
		if x >= Order {
			x ^= Polynomial
		}
	}
	// Double the exp table so Mul can skip the (logA+logB) % 255 reduction.
	for i := 255; i < 512; i++ {
		expTable[i] = expTable[i-255]
	}
}

// Add returns a + b in GF(2^8). Addition is XOR.
func Add(a, b byte) byte { return a ^ b }

// Sub returns a - b in GF(2^8). Subtraction equals addition (XOR).
func Sub(a, b byte) byte { return a ^ b }

// Mul returns a * b in GF(2^8).
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTable[int(logTable[a])+int(logTable[b])]
}

// Div returns a / b in GF(2^8). Div panics if b is zero.
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf256: division by zero")
	}
	if a == 0 {
		return 0
	}
	diff := int(logTable[a]) - int(logTable[b])
	if diff < 0 {
		diff += 255
	}
	return expTable[diff]
}

// Inv returns the multiplicative inverse of a. Inv panics if a is zero.
func Inv(a byte) byte {
	if a == 0 {
		panic("gf256: zero has no inverse")
	}
	return expTable[255-int(logTable[a])]
}

// Exp returns Generator^n for n >= 0.
func Exp(n int) byte {
	if n < 0 {
		panic(fmt.Sprintf("gf256: negative exponent %d", n))
	}
	return expTable[n%255]
}

// Log returns the discrete logarithm of a to base Generator.
// Log panics if a is zero, which has no logarithm.
func Log(a byte) int {
	if a == 0 {
		panic("gf256: zero has no logarithm")
	}
	return int(logTable[a])
}

// Pow returns a raised to the power n (n >= 0).
func Pow(a byte, n int) byte {
	if n == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	return expTable[(int(logTable[a])*n)%255]
}

// MulSlice sets dst[i] = c * src[i] for every i. It panics if the slices
// have different lengths.
func MulSlice(c byte, src, dst []byte) {
	if len(src) != len(dst) {
		panic("gf256: MulSlice length mismatch")
	}
	if c == 0 {
		clear(dst)
		return
	}
	if c == 1 {
		copy(dst, src)
		return
	}
	logC := int(logTable[c])
	for i, s := range src {
		if s == 0 {
			dst[i] = 0
			continue
		}
		dst[i] = expTable[logC+int(logTable[s])]
	}
}

// MulAddSlice sets dst[i] ^= c * src[i] for every i; that is, it accumulates
// the scaled source into dst. It panics if the slices have different lengths.
func MulAddSlice(c byte, src, dst []byte) {
	if len(src) != len(dst) {
		panic("gf256: MulAddSlice length mismatch")
	}
	if c == 0 {
		return
	}
	logC := int(logTable[c])
	for i, s := range src {
		if s != 0 {
			dst[i] ^= expTable[logC+int(logTable[s])]
		}
	}
}

// MulTable returns the full 256-entry multiplication row for coefficient c,
// i.e. row[x] == Mul(c, x). Useful for table-driven inner loops.
func MulTable(c byte) *[256]byte {
	var row [256]byte
	if c == 0 {
		return &row
	}
	logC := int(logTable[c])
	for x := 1; x < 256; x++ {
		row[x] = expTable[logC+int(logTable[byte(x)])]
	}
	return &row
}
