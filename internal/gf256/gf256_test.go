package gf256

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestAddIsXor(t *testing.T) {
	cases := []struct{ a, b, want byte }{
		{0, 0, 0},
		{1, 1, 0},
		{0x53, 0xCA, 0x99},
		{0xFF, 0x0F, 0xF0},
	}
	for _, c := range cases {
		if got := Add(c.a, c.b); got != c.want {
			t.Errorf("Add(%#x, %#x) = %#x, want %#x", c.a, c.b, got, c.want)
		}
		if got := Sub(c.a, c.b); got != c.want {
			t.Errorf("Sub(%#x, %#x) = %#x, want %#x", c.a, c.b, got, c.want)
		}
	}
}

func TestMulKnownValues(t *testing.T) {
	// Hand-checked products under polynomial 0x11D.
	cases := []struct{ a, b, want byte }{
		{0, 0, 0},
		{0, 21, 0},
		{1, 1, 1},
		{1, 0xFF, 0xFF},
		{2, 2, 4},
		{0x80, 2, 0x1D}, // wraps: x^8 ≡ x^4+x^3+x^2+1
		{3, 7, 9},       // (x+1)(x^2+x+1) = x^3+1... in GF(2): x^3 + x^2 + x + x^2 + x + 1 = x^3+1
	}
	for _, c := range cases {
		if got := Mul(c.a, c.b); got != c.want {
			t.Errorf("Mul(%#x, %#x) = %#x, want %#x", c.a, c.b, got, c.want)
		}
	}
}

func TestMulCommutativeExhaustive(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := a; b < 256; b++ {
			x, y := Mul(byte(a), byte(b)), Mul(byte(b), byte(a))
			if x != y {
				t.Fatalf("Mul not commutative at (%d,%d): %d != %d", a, b, x, y)
			}
		}
	}
}

func TestMulMatchesSchoolbook(t *testing.T) {
	// Carry-less "schoolbook" multiply with explicit polynomial reduction.
	ref := func(a, b byte) byte {
		var prod uint16
		for i := 0; i < 8; i++ {
			if b&(1<<i) != 0 {
				prod ^= uint16(a) << i
			}
		}
		for bit := 15; bit >= 8; bit-- {
			if prod&(1<<bit) != 0 {
				prod ^= uint16(Polynomial) << (bit - 8)
			}
		}
		return byte(prod)
	}
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			if got, want := Mul(byte(a), byte(b)), ref(byte(a), byte(b)); got != want {
				t.Fatalf("Mul(%d,%d) = %d, schoolbook says %d", a, b, got, want)
			}
		}
	}
}

func TestDivInvertsMul(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 1; b < 256; b++ {
			p := Mul(byte(a), byte(b))
			if got := Div(p, byte(b)); got != byte(a) {
				t.Fatalf("Div(Mul(%d,%d), %d) = %d, want %d", a, b, b, got, a)
			}
		}
	}
}

func TestInvExhaustive(t *testing.T) {
	for a := 1; a < 256; a++ {
		inv := Inv(byte(a))
		if got := Mul(byte(a), inv); got != 1 {
			t.Fatalf("a*Inv(a) != 1 for a=%d (inv=%d, product=%d)", a, inv, got)
		}
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div by zero did not panic")
		}
	}()
	Div(5, 0)
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	Inv(0)
}

func TestLogZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Log(0) did not panic")
		}
	}()
	Log(0)
}

func TestExpLogRoundTrip(t *testing.T) {
	for a := 1; a < 256; a++ {
		if got := Exp(Log(byte(a))); got != byte(a) {
			t.Fatalf("Exp(Log(%d)) = %d", a, got)
		}
	}
	for n := 0; n < 255; n++ {
		if got := Log(Exp(n)); got != n {
			t.Fatalf("Log(Exp(%d)) = %d", n, got)
		}
	}
}

func TestExpPeriodicity(t *testing.T) {
	for n := 0; n < 300; n++ {
		if Exp(n) != Exp(n+255) {
			t.Fatalf("Exp not periodic with 255 at n=%d", n)
		}
	}
}

func TestPow(t *testing.T) {
	for a := 0; a < 256; a++ {
		want := byte(1)
		for n := 0; n < 10; n++ {
			if got := Pow(byte(a), n); got != want {
				t.Fatalf("Pow(%d, %d) = %d, want %d", a, n, got, want)
			}
			want = Mul(want, byte(a))
		}
	}
}

func TestGeneratorIsPrimitive(t *testing.T) {
	// Generator must enumerate all 255 nonzero elements before cycling.
	seen := make(map[byte]bool)
	x := byte(1)
	for i := 0; i < 255; i++ {
		if seen[x] {
			t.Fatalf("generator cycle shorter than 255 (repeat at step %d)", i)
		}
		seen[x] = true
		x = Mul(x, Generator)
	}
	if x != 1 {
		t.Fatalf("generator^255 = %d, want 1", x)
	}
}

// --- field axioms via property-based testing ---

func TestFieldAxiomsQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 2000}

	assoc := func(a, b, c byte) bool {
		return Mul(Mul(a, b), c) == Mul(a, Mul(b, c))
	}
	if err := quick.Check(assoc, cfg); err != nil {
		t.Errorf("multiplication not associative: %v", err)
	}

	distrib := func(a, b, c byte) bool {
		return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c))
	}
	if err := quick.Check(distrib, cfg); err != nil {
		t.Errorf("distributivity fails: %v", err)
	}

	addAssoc := func(a, b, c byte) bool {
		return Add(Add(a, b), c) == Add(a, Add(b, c))
	}
	if err := quick.Check(addAssoc, cfg); err != nil {
		t.Errorf("addition not associative: %v", err)
	}

	identity := func(a byte) bool {
		return Mul(a, 1) == a && Add(a, 0) == a
	}
	if err := quick.Check(identity, cfg); err != nil {
		t.Errorf("identity elements wrong: %v", err)
	}

	selfInverse := func(a byte) bool {
		return Add(a, a) == 0
	}
	if err := quick.Check(selfInverse, cfg); err != nil {
		t.Errorf("characteristic-2 self-inverse fails: %v", err)
	}
}

// --- slice kernels ---

func TestMulSlice(t *testing.T) {
	src := []byte{0, 1, 2, 3, 0xFF, 0x80, 0x1D}
	dst := make([]byte, len(src))
	for c := 0; c < 256; c++ {
		MulSlice(byte(c), src, dst)
		for i := range src {
			if want := Mul(byte(c), src[i]); dst[i] != want {
				t.Fatalf("MulSlice c=%d i=%d: got %d want %d", c, i, dst[i], want)
			}
		}
	}
}

func TestMulSliceSpecialCases(t *testing.T) {
	src := []byte{9, 8, 7}
	dst := []byte{1, 2, 3}
	MulSlice(0, src, dst)
	if !bytes.Equal(dst, []byte{0, 0, 0}) {
		t.Errorf("MulSlice by 0 should zero dst, got %v", dst)
	}
	MulSlice(1, src, dst)
	if !bytes.Equal(dst, src) {
		t.Errorf("MulSlice by 1 should copy src, got %v", dst)
	}
}

func TestMulAddSlice(t *testing.T) {
	src := []byte{5, 0, 17, 200}
	dst := []byte{1, 2, 3, 4}
	orig := append([]byte(nil), dst...)
	MulAddSlice(7, src, dst)
	for i := range src {
		if want := Add(orig[i], Mul(7, src[i])); dst[i] != want {
			t.Fatalf("MulAddSlice i=%d: got %d want %d", i, dst[i], want)
		}
	}
	// c = 0 must leave dst untouched.
	before := append([]byte(nil), dst...)
	MulAddSlice(0, src, dst)
	if !bytes.Equal(dst, before) {
		t.Error("MulAddSlice by 0 modified dst")
	}
}

func TestSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	MulSlice(3, []byte{1, 2}, []byte{1})
}

func TestMulTable(t *testing.T) {
	for _, c := range []byte{0, 1, 2, 0x1D, 0xFF} {
		row := MulTable(c)
		for x := 0; x < 256; x++ {
			if row[x] != Mul(c, byte(x)) {
				t.Fatalf("MulTable(%d)[%d] = %d, want %d", c, x, row[x], Mul(c, byte(x)))
			}
		}
	}
}

func BenchmarkMul(b *testing.B) {
	var acc byte
	for i := 0; i < b.N; i++ {
		acc ^= Mul(byte(i), byte(i>>8))
	}
	_ = acc
}

func BenchmarkMulAddSlice(b *testing.B) {
	src := make([]byte, 64*1024)
	dst := make([]byte, 64*1024)
	for i := range src {
		src[i] = byte(i * 31)
	}
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulAddSlice(0xA7, src, dst)
	}
}
