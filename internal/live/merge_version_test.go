package live

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/agardist/agar/internal/wire"
)

// mgetFragment builds one shard's mget reply frame from its chunks, with
// optional per-chunk versions keyed like the chunks.
func mgetFragment(t *testing.T, chunks map[int][]byte, vers map[int]uint64) wire.Message {
	t.Helper()
	indices, sizes, body, err := wire.PackBatch(chunks)
	if err != nil {
		t.Fatal(err)
	}
	m := wire.Message{Header: wire.Header{Op: wire.OpOK, Indices: indices, Sizes: sizes}, Body: body}
	if vers != nil {
		vs := make([]uint64, len(indices))
		for i, idx := range indices {
			vs[i] = vers[idx]
		}
		m.Header.Vers = vs
	}
	return m
}

func mergedBody(m wire.Message) []byte {
	if m.Segments == nil {
		return m.Body
	}
	var out []byte
	for _, s := range m.Segments {
		out = append(out, s...)
	}
	return out
}

// TestMergeMGetMixedVersionFragments merges a split mget where one shard's
// fragment carries write versions and the other is legacy (nil Vers) —
// exactly what a half-upgraded object looks like across lock stripes. The
// merged reply must align versions to the globally sorted indices with
// zero backfill for the unversioned chunks, so the client can judge every
// chunk against its coherence target.
func TestMergeMGetMixedVersionFragments(t *testing.T) {
	a := mgetFragment(t, map[int][]byte{2: []byte("cc"), 0: []byte("aaa")}, map[int]uint64{0: 7, 2: 9})
	b := mgetFragment(t, map[int][]byte{1: []byte("b"), 3: []byte("dddd")}, nil)

	merged := mergeMGet([]wire.Message{a, b})
	if merged.Header.Op != wire.OpOK {
		t.Fatalf("merged op = %v", merged.Header.Op)
	}
	if want := []int{0, 1, 2, 3}; !reflect.DeepEqual(merged.Header.Indices, want) {
		t.Fatalf("merged indices = %v, want %v", merged.Header.Indices, want)
	}
	if want := []uint64{7, 0, 9, 0}; !reflect.DeepEqual(merged.Header.Vers, want) {
		t.Fatalf("merged vers = %v, want %v", merged.Header.Vers, want)
	}
	found, err := wire.UnpackBatch(merged.Header.Indices, merged.Header.Sizes, mergedBody(merged))
	if err != nil {
		t.Fatal(err)
	}
	for idx, want := range map[int]string{0: "aaa", 1: "b", 2: "cc", 3: "dddd"} {
		if !bytes.Equal(found[idx], []byte(want)) {
			t.Fatalf("chunk %d = %q, want %q", idx, found[idx], want)
		}
	}
}

// TestMergeMGetUnversionedStaysUnversioned pins the alloc-free byte-parity
// contract: when no fragment carries Vers, the merged reply must not
// either — a Vers of even all zeros would grow every legacy frame.
func TestMergeMGetUnversionedStaysUnversioned(t *testing.T) {
	a := mgetFragment(t, map[int][]byte{0: []byte("x")}, nil)
	b := mgetFragment(t, map[int][]byte{1: []byte("y")}, nil)
	merged := mergeMGet([]wire.Message{a, b})
	if merged.Header.Vers != nil {
		t.Fatalf("unversioned merge grew Vers %v", merged.Header.Vers)
	}
}

// TestMergeMGetAllZeroVersFragmentsBackfill covers a fragment that carries
// an explicit all-zero Vers (versioned read of legacy chunks): zeros carry
// no information, so the merge may drop the array entirely, but it must
// never invent a nonzero version.
func TestMergeMGetAllZeroVersFragments(t *testing.T) {
	a := mgetFragment(t, map[int][]byte{0: []byte("x")}, map[int]uint64{0: 0})
	b := mgetFragment(t, map[int][]byte{1: []byte("y")}, map[int]uint64{1: 4})
	merged := mergeMGet([]wire.Message{a, b})
	if want := []uint64{0, 4}; !reflect.DeepEqual(merged.Header.Vers, want) {
		t.Fatalf("merged vers = %v, want %v", merged.Header.Vers, want)
	}
}

// TestMergeMPutStaleFragmentWins: when any shard of a split mput refuses
// the batch as stale, the merged verdict is that refusal (with the winning
// floor), not a partial-success index list the floor already outdated.
func TestMergeMPutStaleFragmentWins(t *testing.T) {
	ok := wire.Message{Header: wire.Header{Op: wire.OpOK, Indices: []int{0, 2}}}
	stale := wire.Message{Header: wire.Header{Op: wire.OpStale, Ver: 99}}
	merged := mergeMPut([]wire.Message{ok, stale})
	if merged.Header.Op != wire.OpStale {
		t.Fatalf("merged op = %v, want OpStale", merged.Header.Op)
	}
	if merged.Header.Ver != 99 {
		t.Fatalf("merged stale floor = %d, want 99", merged.Header.Ver)
	}
}
