// Package live runs Agar's roles over real sockets: per-region backend
// store servers, memcached-style chunk cache servers, and the Agar node's
// hint service (TCP and UDP). It also provides the matching remote client
// adapters and a network read path with genuinely parallel chunk fetches.
//
// Cache and store servers dispatch shard-aware by default: connection
// goroutines only decode frames and enqueue ops onto per-shard worker
// pools routed by the cache's own stripe hash (cache.StripeIndex), so
// connections hitting different shards never serialize and batched
// mget/mput frames split per shard, run in parallel, and re-merge in
// ascending chunk order for the reply. See Dispatch for the modes and the
// per-connection baseline kept for paired benchmarks.
//
// The experiment harness measures on the in-process simulator; this package
// exists so the system can actually be deployed — integration tests and the
// live-cluster example run every role on localhost with scaled wide-area
// delays injected client-side.
package live

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/agardist/agar/internal/backend"
	"github.com/agardist/agar/internal/cache"
	"github.com/agardist/agar/internal/coherence"
	"github.com/agardist/agar/internal/coop"
	"github.com/agardist/agar/internal/core"
	"github.com/agardist/agar/internal/hlc"
	"github.com/agardist/agar/internal/metrics"
	"github.com/agardist/agar/internal/trace"
	"github.com/agardist/agar/internal/wire"
)

// handler processes one request message into one response message. Handlers
// must be safe for concurrent use: connection goroutines (conn dispatch) and
// shard workers (shard dispatch) both invoke them in parallel.
type handler func(wire.Message) wire.Message

// Server is a generic framed-TCP request/response server. Under conn
// dispatch each connection's goroutine executes its own frames serially;
// under shard dispatch (see Dispatch) connections decode and enqueue onto
// the server's per-shard worker pools.
type Server struct {
	ln     net.Listener
	handle handler
	disp   *dispatcher // nil => conn dispatch
	sm     *serverMetrics
	// rec is the server's flight recorder (nil when disabled): finished
	// ops are offered to it on every dispatch path.
	rec *trace.Recorder
	// bp recycles frame, header, and reply-body buffers across this
	// server's connections: every decoded request borrows its frame from
	// here (released after the handler runs) and every reply releases its
	// pooled header/body once the bytes leave the socket. One pool per
	// server keeps Outstanding a per-server leak detector for tests.
	bp *wire.BufferPool

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// newServer starts serving on addr ("127.0.0.1:0" for an ephemeral port)
// with per-connection dispatch; sm (nil for the uninstrumented baseline)
// times each op's execution; rec (nil to disable) is the flight recorder.
func newServer(addr string, h handler, sm *serverMetrics, rec *trace.Recorder) (*Server, error) {
	return newServerDispatch(addr, h, nil, sm, rec, nil)
}

// newShardServer starts a shard-dispatching server: rt routes ops onto
// per-shard workers, gauge tracks the queue depth, and sm (nil for the
// uninstrumented baseline) times queue wait and execution per op.
func newShardServer(addr string, h handler, rt router, gauge *atomic.Int64, sm *serverMetrics, rec *trace.Recorder) (*Server, error) {
	return newServerDispatch(addr, h, newDispatcher(h, rt, gauge, sm, rec), sm, rec, nil)
}

// newServerDispatch wires a server together; bp nil creates a private
// buffer pool (cache and store servers pass the pool their handlers
// already size reply bodies from, so one pool serves the whole server).
func newServerDispatch(addr string, h handler, disp *dispatcher, sm *serverMetrics, rec *trace.Recorder, bp *wire.BufferPool) (*Server, error) {
	if bp == nil {
		bp = wire.NewBufferPool()
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		if disp != nil {
			disp.stop()
		}
		return nil, fmt.Errorf("live: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, handle: h, disp: disp, sm: sm, rec: rec, bp: bp, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// PoolOutstanding reports the server's pooled buffers currently between
// Get and Put — the leak-detection hook: a quiesced server (every request
// answered, every reply written) must report zero.
func (s *Server) PoolOutstanding() int64 { return s.bp.Outstanding() }

// Addr returns the server's bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// QueueDepth reports the shard-dispatch queue depth (always 0 under conn
// dispatch) — the same gauge OpStats exposes as dispatch_queue_depth.
func (s *Server) QueueDepth() int64 {
	if s.disp == nil {
		return 0
	}
	return s.disp.QueueDepth()
}

// Close stops the listener, closes active connections, waits for all
// connection goroutines to exit, and — under shard dispatch — drains and
// stops the shard workers, so every accepted op has been answered or
// discarded with its connection by the time Close returns. It then
// verifies the server's buffer pool has drained: every decoded request
// and every written (or discarded) reply must have released its pooled
// buffers by now, so a non-zero count is a leak on some dispatch path and
// panics loudly instead of silently growing in production.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		if s.disp != nil {
			s.disp.stop()
		}
		s.verifyPoolDrained()
		return
	}
	s.closed = true
	s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	// All connection goroutines have exited, so nothing can enqueue: the
	// workers drain what is queued and stop.
	if s.disp != nil {
		s.disp.stop()
	}
	s.verifyPoolDrained()
}

// verifyPoolDrained panics if pooled buffers are still outstanding after a
// full shutdown — the drain-and-verify leak check Close runs.
func (s *Server) verifyPoolDrained() {
	if n := s.bp.Outstanding(); n != 0 {
		panic(fmt.Sprintf("live: server %s closed with %d pooled buffers outstanding (buffer leak)", s.ln.Addr(), n))
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		if s.disp != nil {
			go s.serveConnShard(conn)
		} else {
			go s.serveConn(conn)
		}
	}
}

// connReadBuffer sizes the per-connection read buffer both dispatch modes
// frame out of; it also lets the shard loop see whether the client has
// already pipelined another frame.
const connReadBuffer = 32 << 10

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	br := bufio.NewReaderSize(conn, connReadBuffer)
	for {
		req, err := wire.ReadPooled(br, s.bp)
		if err != nil {
			return
		}
		resp := runInline(s.handle, s.sm, s.rec, req)
		if err := wire.WriteVectored(conn, resp, s.bp); err != nil {
			return
		}
	}
}

// pipelineDepth bounds how many decoded-but-unanswered frames one
// connection may have in flight under shard dispatch. The reader goroutine
// blocks when the window is full — back-pressure on the socket, never
// unbounded memory.
const pipelineDepth = 64

// connWindow tracks one connection's dispatched-but-unwritten replies.
// The reader increments before queueing, the writer decrements after
// writing (or discarding) each reply — so an idle window means every
// earlier op has executed AND its reply has left, and the reader may both
// write to the socket itself and run ops that must order after everything
// (control ops).
type connWindow struct {
	mu   sync.Mutex
	cond *sync.Cond
	n    int
}

func newConnWindow() *connWindow {
	w := &connWindow{}
	w.cond = sync.NewCond(&w.mu)
	return w
}

func (w *connWindow) inc() {
	w.mu.Lock()
	w.n++
	w.mu.Unlock()
}

func (w *connWindow) dec() {
	w.mu.Lock()
	w.n--
	if w.n == 0 {
		w.cond.Broadcast()
	}
	w.mu.Unlock()
}

func (w *connWindow) idle() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n == 0
}

func (w *connWindow) waitIdle() {
	w.mu.Lock()
	for w.n > 0 {
		w.cond.Wait()
	}
	w.mu.Unlock()
}

// serveConnShard is the shard-dispatch connection loop: the reader decodes
// frames and dispatches them, queueing one reply slot per frame in arrival
// order; the writer answers slots strictly in that order, so responses
// leave the connection exactly as a serialized loop would order them even
// while the ops themselves execute on different shard workers.
//
// The loop is adaptive: a frame arriving with nothing in flight and no
// further frame already buffered — the request/response rhythm every
// pooled client adapter produces — executes on the reader goroutine itself
// (multi-shard batches still fanning out over the shard workers), skipping
// the queue-and-writer hops that only pay off when the client actually
// pipelines. Only genuinely pipelined frames take the queued path, where
// different shards' ops overlap while replies stay in request order.
//
// Pipelined control ops (stats, snapshots, object-level ops, digests)
// first drain the connection's window: every op this connection dispatched
// earlier has executed before the control op runs, so execution order —
// not just reply order — matches conn dispatch. Ops from other connections
// still overlap; control handlers read concurrently-safe state.
func (s *Server) serveConnShard(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	br := bufio.NewReaderSize(conn, connReadBuffer)
	pending := make(chan chan wire.Message, pipelineDepth)
	window := newConnWindow()
	var wwg sync.WaitGroup
	wwg.Add(1)
	go func() {
		defer wwg.Done()
		broken := false
		for reply := range pending {
			resp := <-reply
			if broken {
				resp.Release() // pooled reply bodies must not leak with the conn
			} else if wire.WriteVectored(conn, resp, s.bp) != nil {
				broken = true // keep draining so in-flight ops are accounted
			}
			window.dec()
		}
	}()
	for {
		req, err := wire.ReadPooled(br, s.bp)
		if err != nil {
			break
		}
		if window.idle() && br.Buffered() == 0 {
			if wire.WriteVectored(conn, s.disp.dispatchSync(req), s.bp) != nil {
				break
			}
			continue
		}
		// Classify once: route is per-chunk key hashing for batches.
		shard, routed := s.disp.rt.route(req.Header)
		if !routed && !s.disp.rt.splittable(req.Header) {
			// Control op (stats, snapshot, object-level, digest): order it
			// after everything this connection has in flight, then run it
			// inline; the writer is idle once the window drains, so the
			// reader writes the reply itself.
			window.waitIdle()
			if wire.WriteVectored(conn, s.disp.dispatchSync(req), s.bp) != nil {
				break
			}
			continue
		}
		reply := make(chan wire.Message, 1)
		window.inc()
		pending <- reply
		s.disp.dispatchWith(req, reply, shard, routed)
	}
	close(pending)
	wwg.Wait()
}

// NewStoreServer serves one region's backend store under shard dispatch.
func NewStoreServer(addr string, store *backend.Store) (*Server, error) {
	return NewStoreServerDispatch(addr, store, DispatchShard)
}

// NewStoreServerDispatch serves one region's backend store under the given
// dispatch mode.
func NewStoreServerDispatch(addr string, store *backend.Store, d Dispatch) (*Server, error) {
	return NewStoreServerOpts(addr, store, ServerOptions{Dispatch: d})
}

// NewStoreServerOpts serves one region's backend store with full options:
// dispatch mode, a shared metrics registry, and a region label. Metrics are
// always collected — the wire stats op is built from them — so passing a
// registry only decides where /metrics scrapes can see them.
func NewStoreServerOpts(addr string, store *backend.Store, opts ServerOptions) (*Server, error) {
	reg := opts.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	gauge := new(atomic.Int64)
	sm := newStoreServerMetrics(reg, opts.Region, store, gauge)
	h := storeHandler(store, sm)
	if opts.Dispatch == DispatchConn {
		return newServer(addr, h, sm, opts.Recorder)
	}
	return newShardServer(addr, h, storeRouter{}, gauge, sm, opts.Recorder)
}

// storeDispatchShards stripes a store server's dispatch queues. The backend
// store has no lock stripes of its own, so the width matches the cache
// default and routing reuses the cache's stripe hash.
const storeDispatchShards = 8

// storeRouter routes store ops onto dispatch workers — by key alone, so a
// pipelined put and a batched mget of the same key always land on the same
// worker in order (per-connection read-your-writes, as conn dispatch
// gives). Batched mgets are never split: when the store proxies a remote
// blob gateway, one mget is one upstream round trip, and splitting per
// shard would turn it back into many.
type storeRouter struct{}

func (storeRouter) shards() int { return storeDispatchShards }

func (storeRouter) route(h wire.Header) (int, bool) {
	switch h.Op {
	case wire.OpGet, wire.OpPut, wire.OpDelete, wire.OpMGet:
		return cache.StripeIndex(cache.EntryID{Key: h.Key}, storeDispatchShards), true
	}
	return 0, false
}

func (storeRouter) splittable(wire.Header) bool { return false }

func (storeRouter) split(wire.Message) ([]part, mergeFunc, bool) { return nil, nil, false }

// storeHandler builds the store server's request handler; sm supplies the
// registry-backed sources the OpStats reply is built from.
func storeHandler(store *backend.Store, sm *serverMetrics) handler {
	return func(req wire.Message) wire.Message {
		id := backend.ChunkID{Key: req.Header.Key, Index: req.Header.Index}
		switch req.Header.Op {
		case wire.OpGet:
			data, ver, err := store.GetVer(id)
			if errors.Is(err, backend.ErrNotFound) {
				return wire.Message{Header: wire.Header{Op: wire.OpNotFound}}
			}
			if err != nil {
				return wire.ErrorMessage(err)
			}
			return wire.Message{Header: wire.Header{Op: wire.OpOK, Ver: ver}, Body: data}
		case wire.OpPut:
			if err := store.PutVer(id, req.Body, req.Header.Ver); err != nil {
				var stale *backend.StaleError
				if errors.As(err, &stale) {
					sm.staleReject()
					return wire.Message{Header: wire.Header{Op: wire.OpStale, Ver: stale.Cur}}
				}
				return wire.ErrorMessage(err)
			}
			return wire.Message{Header: wire.Header{Op: wire.OpOK}}
		case wire.OpMGet:
			// Batched store read: one frame however many chunks of the key
			// this region holds — and, when the store is backed by a remote
			// blob gateway, one upstream round trip instead of N.
			if len(req.Header.Indices) > wire.MaxBatchChunks {
				return wire.ErrorMessage(fmt.Errorf("store: mget of %d chunks exceeds batch limit %d",
					len(req.Header.Indices), wire.MaxBatchChunks))
			}
			found, vers, floor, err := store.GetMultiVer(req.Header.Key, req.Header.Indices)
			if err != nil {
				return wire.ErrorMessage(err)
			}
			if len(found) == 0 {
				return wire.Message{Header: wire.Header{Op: wire.OpOK, Ver: floor}}
			}
			// The adapter-returned chunks go out as body segments — one
			// vectored write, no copy into a contiguous frame.
			indices, sizes, segs, err := wire.PackBatchViews(found)
			if err != nil {
				return wire.ErrorMessage(err)
			}
			h := wire.Header{Op: wire.OpOK, Indices: indices, Sizes: sizes, Ver: floor}
			if vers != nil {
				h.Vers = make([]uint64, len(indices))
				for i, idx := range indices {
					h.Vers[i] = vers[idx]
				}
			}
			return wire.Message{Header: h, Segments: segs}
		case wire.OpDelObj:
			// Versioned object invalidation: remove the chunks and persist
			// the delete's version as a tombstone floor (legacy unversioned
			// when Ver is zero).
			if _, err := store.DeleteObjectVer(req.Header.Key, req.Header.Ver); err != nil {
				var stale *backend.StaleError
				if errors.As(err, &stale) {
					sm.staleReject()
					return wire.Message{Header: wire.Header{Op: wire.OpStale, Ver: stale.Cur}}
				}
				return wire.ErrorMessage(err)
			}
			return wire.Message{Header: wire.Header{Op: wire.OpOK}}
		case wire.OpDelete:
			if _, err := store.DeleteChecked(id); err != nil {
				return wire.ErrorMessage(err)
			}
			return wire.Message{Header: wire.Header{Op: wire.OpOK}}
		case wire.OpStats:
			// StatsChecked still runs first so a down adapter propagates its
			// error; the payload itself comes from the same registry sources
			// /metrics exposes, keeping the two surfaces in lockstep.
			if _, err := store.StatsChecked(); err != nil {
				return wire.ErrorMessage(err)
			}
			return wire.Message{Header: wire.Header{Op: wire.OpOK, Stats: sm.statsMap()}}
		default:
			return wire.ErrorMessage(fmt.Errorf("store: unknown op %q", req.Header.Op))
		}
	}
}

// NewCacheServer serves a chunk cache with memcached-like semantics under
// shard dispatch.
func NewCacheServer(addr string, c *cache.Cache) (*Server, error) {
	return NewCacheServerDispatch(addr, c, nil, DispatchShard)
}

// NewCacheServerCoop serves a chunk cache that also speaks the cooperative
// mesh protocol: incoming OpDigest frames maintain the table's per-peer
// residency mirrors, batched reads tagged with a foreign region are
// accounted as peer traffic, and OpStats reports peer_hits, peer_misses,
// digests and digest_age_ms alongside the cache counters. Dispatch is
// shard-aware by default.
func NewCacheServerCoop(addr string, c *cache.Cache, table *coop.Table) (*Server, error) {
	return NewCacheServerDispatch(addr, c, table, DispatchShard)
}

// NewCacheServerDispatch serves a chunk cache (cooperative when table is
// non-nil) under the given dispatch mode. Shard dispatch routes every op
// with the same stripe hash the cache's own shard locks use, so the worker
// executing an op is the only worker touching that shard; batched
// mget/mput frames are split per shard, executed in parallel, and
// re-merged in ascending chunk order. Both modes answer every op
// byte-identically.
func NewCacheServerDispatch(addr string, c *cache.Cache, table *coop.Table, d Dispatch) (*Server, error) {
	return NewCacheServerOpts(addr, c, table, ServerOptions{Dispatch: d})
}

// NewCacheServerOpts serves a chunk cache (cooperative when table is
// non-nil) with full options: dispatch mode, a shared metrics registry, and
// a region label. Metrics are always collected — the wire stats op is built
// from them — so passing a registry only decides where /metrics scrapes can
// see them.
func NewCacheServerOpts(addr string, c *cache.Cache, table *coop.Table, opts ServerOptions) (*Server, error) {
	reg := opts.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	gauge := new(atomic.Int64)
	sm := newCacheServerMetrics(reg, opts.Region, c, table, gauge)
	bp := wire.NewBufferPool()
	vt := opts.Versions
	if vt == nil {
		vt = coherence.NewVersionTable()
	}
	h := cacheHandler(c, table, vt, sm, bp)
	if opts.Dispatch == DispatchConn {
		return newServerDispatch(addr, h, nil, sm, opts.Recorder, bp)
	}
	rt := &cacheRouter{c: c, splitMin: opts.SplitMinBytes}
	return newServerDispatch(addr, h, newDispatcher(h, rt, gauge, sm, opts.Recorder), sm, opts.Recorder, bp)
}

// cacheRouter routes cache ops onto the cache's own shards.
type cacheRouter struct {
	c *cache.Cache
	// splitMin is the byte threshold below which a multi-shard batch
	// routes whole instead of fanning out (ServerOptions.SplitMinBytes);
	// zero always splits.
	splitMin int
	// meanEntry caches the cache's mean chunk size for batch byte
	// estimates, refreshed every meanEntryRefresh routing decisions —
	// MeanEntryBytes walks every shard lock, far too heavy per frame.
	meanEntry atomic.Int64
	estTick   atomic.Uint64
}

// meanEntryRefresh is how many batch-spread estimates reuse one cached
// mean entry size before rereading it from the cache.
const meanEntryRefresh = 512

func (r *cacheRouter) shards() int { return r.c.ShardCount() }

// batchBytes estimates a batch frame's body weight for the split
// threshold: mput declares exact per-chunk sizes in its header; mget is
// estimated as chunk count times the cache's mean entry size.
func (r *cacheRouter) batchBytes(h wire.Header) int {
	if h.Op == wire.OpMPut {
		total := 0
		for _, s := range h.Sizes {
			total += s
		}
		return total
	}
	if r.estTick.Add(1)%meanEntryRefresh == 1 {
		r.meanEntry.Store(int64(r.c.MeanEntryBytes()))
	}
	return len(h.Indices) * int(r.meanEntry.Load())
}

// shouldSplit applies the size-aware split policy: batches below the
// configured byte threshold stay whole — the fan-out's queue hops and
// merge cost more than the parallel shard work saves on small frames.
// Zero threshold preserves the legacy always-split behaviour, which also
// keeps the strict per-connection ordering guarantee: a routed-whole
// multi-shard batch executes on its first chunk's shard worker, so it no
// longer serializes against single-chunk ops of its other shards.
func (r *cacheRouter) shouldSplit(h wire.Header) bool {
	return r.splitMin <= 0 || r.batchBytes(h) >= r.splitMin
}

// batchShards computes a batch's shard spread from the header alone — no
// body unpacking — returning the single shard when every chunk stripes to
// one (the whole frame then routes like a single-shard op).
func (r *cacheRouter) batchShards(key string, indices []int) (shard int, single bool) {
	shard = -1
	for _, idx := range indices {
		s := r.c.ShardIndex(cache.EntryID{Key: key, Index: idx})
		if shard == -1 {
			shard = s
		} else if s != shard {
			return 0, false
		}
	}
	return shard, shard >= 0
}

func (r *cacheRouter) route(h wire.Header) (int, bool) {
	switch h.Op {
	case wire.OpGet, wire.OpPut, wire.OpDelete:
		return r.c.ShardIndex(cache.EntryID{Key: h.Key, Index: h.Index}), true
	case wire.OpMGet, wire.OpMPut:
		// A batch whose chunks all stripe to one shard runs whole on that
		// shard's worker — no split, no re-merge, and strict ordering with
		// the shard's single-chunk ops.
		if len(h.Indices) == 0 || len(h.Indices) > wire.MaxBatchChunks {
			return 0, false
		}
		if s, single := r.batchShards(h.Key, h.Indices); single {
			return s, true
		}
		if !r.shouldSplit(h) {
			// Below the split threshold: the whole batch runs on its first
			// chunk's shard worker, skipping the fan-out machinery.
			return r.c.ShardIndex(cache.EntryID{Key: h.Key, Index: h.Indices[0]}), true
		}
	}
	return 0, false
}

func (r *cacheRouter) splittable(h wire.Header) bool {
	return h.Op == wire.OpMGet || h.Op == wire.OpMPut
}

// split fans multi-shard batch frames out one part per shard. Single-shard
// batches return ok=false — they run whole, inline on the fast path or on
// their shard's worker via route — as do batches below the split-size
// threshold and malformed batches (over-limit, inconsistent framing),
// which fall through to the ordinary handler for its usual error reply
// without touching state. The spread check reads only the header, so no
// body is unpacked for frames that will not split.
func (r *cacheRouter) split(m wire.Message) ([]part, mergeFunc, bool) {
	if len(m.Header.Indices) == 0 || len(m.Header.Indices) > wire.MaxBatchChunks {
		return nil, nil, false
	}
	if _, single := r.batchShards(m.Header.Key, m.Header.Indices); single {
		return nil, nil, false
	}
	if !r.shouldSplit(m.Header) {
		return nil, nil, false
	}
	switch m.Header.Op {
	case wire.OpMGet:
		byShard := make(map[int][]int)
		for _, idx := range m.Header.Indices {
			s := r.c.ShardIndex(cache.EntryID{Key: m.Header.Key, Index: idx})
			byShard[s] = append(byShard[s], idx)
		}
		parts := make([]part, 0, len(byShard))
		for s, idxs := range byShard {
			h := m.Header
			h.Indices = idxs
			parts = append(parts, part{shard: s, req: wire.Message{Header: h}})
		}
		return parts, mergeMGet, true
	case wire.OpMPut:
		chunks, err := wire.UnpackBatch(m.Header.Indices, m.Header.Sizes, m.Body)
		if err != nil || len(chunks) == 0 {
			return nil, nil, false
		}
		byShard := make(map[int]map[int][]byte)
		for idx, data := range chunks {
			s := r.c.ShardIndex(cache.EntryID{Key: m.Header.Key, Index: idx})
			if byShard[s] == nil {
				byShard[s] = make(map[int][]byte)
			}
			byShard[s][idx] = data
		}
		parts := make([]part, 0, len(byShard))
		for s, sub := range byShard {
			indices, sizes, body, err := wire.PackBatch(sub)
			if err != nil {
				return nil, nil, false
			}
			// Parts carry the batch's trace context so a traced mput's
			// per-shard executions annotate like a traced mget's (whose
			// parts copy the whole header above).
			parts = append(parts, part{shard: s, req: wire.Message{
				Header: wire.Header{Op: wire.OpMPut, Key: m.Header.Key, Indices: indices, Sizes: sizes,
					Ver:   m.Header.Ver,
					Trace: m.Header.Trace, Span: m.Header.Span, TFlags: m.Header.TFlags},
				Body: body,
			}})
		}
		return parts, mergeMPut, true
	}
	return nil, nil, false
}

// mergeMGet reassembles a split mget's reply without copying a byte: the
// fragments' chunks become body segments of the merged message, sorted
// back into global ascending-index order — the same framing an unsplit
// mget produces, written with one vectored syscall. The merged message
// adopts the fragments' pooled bodies, so the single Release after the
// reply is written frees every fragment buffer; error paths release
// everything before returning their plain error message.
func mergeMGet(resps []wire.Message) wire.Message {
	releaseAll := func() {
		for i := range resps {
			resps[i].Release()
		}
	}
	for i := range resps {
		if resps[i].Header.Op == wire.OpError {
			err := resps[i]
			for j := range resps {
				if j != i {
					resps[j].Release()
				}
			}
			return err
		}
	}
	merged := wire.Message{Header: wire.Header{Op: wire.OpOK}}
	chunks := make([]wire.BatchChunk, 0, 16)
	// chunkVers collects per-chunk versions across fragments; it stays nil —
	// and the merged reply stays byte-identical to the unversioned layout —
	// until some fragment actually carries Vers.
	var chunkVers map[int]uint64
	for i := range resps {
		if len(resps[i].Header.Indices) == 0 {
			resps[i].Release()
			continue
		}
		if vs := resps[i].Header.Vers; vs != nil {
			if chunkVers == nil {
				chunkVers = make(map[int]uint64, len(vs))
			}
			for j, idx := range resps[i].Header.Indices {
				if j < len(vs) && vs[j] != 0 {
					chunkVers[idx] = vs[j]
				}
			}
		}
		var err error
		chunks, err = wire.AppendBatchViews(chunks, resps[i].Header.Indices, resps[i].Header.Sizes, resps[i].Body)
		if err != nil {
			merged.Release()
			releaseAll()
			return wire.ErrorMessage(err)
		}
		merged.Adopt(&resps[i])
	}
	if len(chunks) == 0 {
		merged.Release()
		return wire.Message{Header: wire.Header{Op: wire.OpOK}}
	}
	sort.Slice(chunks, func(a, b int) bool { return chunks[a].Index < chunks[b].Index })
	indices := make([]int, len(chunks))
	sizes := make([]int, len(chunks))
	segs := make([][]byte, len(chunks))
	for i, ch := range chunks {
		if i > 0 && ch.Index == indices[i-1] {
			// Two shards claimed one chunk: the split was wrong.
			merged.Release()
			return wire.ErrorMessage(fmt.Errorf("%w: chunk %d in two batch fragments", wire.ErrBadBatch, ch.Index))
		}
		indices[i] = ch.Index
		sizes[i] = len(ch.Data)
		segs[i] = ch.Data
	}
	merged.Header.Indices = indices
	merged.Header.Sizes = sizes
	if chunkVers != nil {
		vers := make([]uint64, len(indices))
		for i, idx := range indices {
			vers[i] = chunkVers[idx]
		}
		merged.Header.Vers = vers
	}
	merged.Segments = segs
	return merged
}

// mergeMPut reassembles a split mput's reply: the ascending union of the
// chunk indices each shard actually stored.
func mergeMPut(resps []wire.Message) wire.Message {
	stored := make([][]int, 0, len(resps))
	for _, resp := range resps {
		if resp.Header.Op == wire.OpError || resp.Header.Op == wire.OpStale {
			// A concurrent newer write can raise the floor between a split
			// batch's per-shard admits; surfacing the stale verdict beats
			// reporting a partial store the floor already outdated.
			return resp
		}
		stored = append(stored, resp.Header.Indices)
	}
	merged, err := wire.MergeIndices(stored...)
	if err != nil {
		return wire.ErrorMessage(err)
	}
	return wire.Message{Header: wire.Header{Op: wire.OpOK, Indices: merged}}
}

// cacheHandler builds the cache server's request handler; table is nil for
// non-cooperative deployments, which reject digest frames; vt is the
// server's version-floor table — versioned mutations are admitted against
// it and digest KeyVers raise it, dropping outdated cached chunks; sm
// supplies the registry-backed sources the OpStats reply is built from; bp
// supplies pooled reply-body buffers for the get/mget hot path (the
// messages own them, and the serve loop's WriteVectored releases them
// after the bytes leave the socket).
func cacheHandler(c *cache.Cache, table *coop.Table, vt *coherence.VersionTable, sm *serverMetrics, bp *wire.BufferPool) handler {
	// est sizes pooled reply buffers from the cache's mean entry size,
	// refreshed every meanEntryRefresh ops — MeanEntryBytes walks every
	// shard lock, far too heavy per request. An undershot estimate only
	// costs one append regrow; the grown buffer still returns to the pool.
	var estTick atomic.Uint64
	var meanEntry atomic.Int64
	est := func() int {
		if estTick.Add(1)%meanEntryRefresh == 1 {
			meanEntry.Store(int64(c.MeanEntryBytes()))
		}
		if v := meanEntry.Load(); v > 0 {
			return int(v)
		}
		return 512
	}
	return func(req wire.Message) wire.Message {
		id := cache.EntryID{Key: req.Header.Key, Index: req.Header.Index}
		switch req.Header.Op {
		case wire.OpGet:
			// The chunk copies straight into a pooled buffer under the shard
			// lock — no per-get allocation once the pool is warm.
			buf, ver, ok := c.GetAppendVer(id, bp.Get(est())[:0])
			if !ok {
				bp.Put(buf)
				return wire.Message{Header: wire.Header{Op: wire.OpNotFound}}
			}
			resp := wire.Message{Header: wire.Header{Op: wire.OpOK, Ver: ver}, Body: buf}
			resp.Own(bp, buf)
			return resp
		case wire.OpPut:
			if ver := req.Header.Ver; ver != 0 {
				// Versioned insert: refused below the key's floor, and a
				// newer version drops the older chunks it outdates.
				if ok, cur := vt.Admit(req.Header.Key, hlc.Timestamp(ver)); !ok {
					sm.staleReject()
					return wire.Message{Header: wire.Header{Op: wire.OpStale, Ver: uint64(cur)}}
				}
				if err := c.PutVer(id, req.Body, ver); err != nil {
					return wire.ErrorMessage(err)
				}
				if vt.Observe(req.Header.Key, hlc.Timestamp(ver)) {
					if c.DropObjectBelow(req.Header.Key, ver) > 0 {
						sm.invalidated(1)
					}
				}
				return wire.Message{Header: wire.Header{Op: wire.OpOK}}
			}
			if err := c.Put(id, req.Body); err != nil {
				return wire.ErrorMessage(err)
			}
			return wire.Message{Header: wire.Header{Op: wire.OpOK}}
		case wire.OpMGet:
			n := len(req.Header.Indices)
			if n > wire.MaxBatchChunks {
				return wire.ErrorMessage(fmt.Errorf("cache: mget of %d chunks exceeds batch limit %d",
					n, wire.MaxBatchChunks))
			}
			// Every found chunk appends into one pooled body under its shard
			// lock: no per-chunk allocation, no chunk map, no PackBatch copy.
			// Sorting the request's indices up front (the frame is ours until
			// release) makes the reply framing ascending — byte-identical to
			// the PackBatch layout the merge and parity tests pin down — and
			// lets duplicate request indices collapse like the map did.
			sort.Ints(req.Header.Indices)
			body := bp.Get(n * est())[:0]
			indices := make([]int, 0, n)
			sizes := make([]int, 0, n)
			// vers stays nil until a versioned chunk appears, so the
			// unversioned hot path allocates nothing extra and its reply
			// frames stay byte-identical.
			var vers []uint64
			for i, idx := range req.Header.Indices {
				if i > 0 && idx == req.Header.Indices[i-1] {
					continue
				}
				mark := len(body)
				b, ver, ok := c.GetAppendVer(cache.EntryID{Key: req.Header.Key, Index: idx}, body)
				body = b
				if ok {
					indices = append(indices, idx)
					sizes = append(sizes, len(body)-mark)
					if ver != 0 && vers == nil {
						vers = make([]uint64, len(indices)-1, n)
					}
					if vers != nil {
						vers = append(vers, ver)
					}
				}
			}
			if table != nil && req.Header.Region != "" {
				// A foreign-region client reading through the coop mesh:
				// account the served and advertised-but-gone chunks.
				table.RecordPeerRead(len(indices), n-len(indices))
			}
			if len(indices) == 0 {
				bp.Put(body)
				return wire.Message{Header: wire.Header{Op: wire.OpOK}}
			}
			resp := wire.Message{Header: wire.Header{Op: wire.OpOK, Indices: indices, Sizes: sizes, Vers: vers}, Body: body}
			resp.Own(bp, body)
			return resp
		case wire.OpMPut:
			// Views, not copies: the chunks alias the request frame, which
			// stays owned until after the handler returns, and c.Put copies
			// on insert.
			chunks, err := wire.UnpackBatchViews(req.Header.Indices, req.Header.Sizes, req.Body)
			if err != nil {
				return wire.ErrorMessage(err)
			}
			// Best-effort batch insert, like a memcached multi-set: chunks the
			// cache refuses (admission filter, full shard) are skipped, and
			// the response lists what actually landed.
			ver := req.Header.Ver
			if ver != 0 {
				if ok, cur := vt.Admit(req.Header.Key, hlc.Timestamp(ver)); !ok {
					sm.staleReject()
					return wire.Message{Header: wire.Header{Op: wire.OpStale, Ver: uint64(cur)}}
				}
			}
			stored := make([]int, 0, len(chunks))
			for _, idx := range sortedIndices(chunks) {
				cid := cache.EntryID{Key: req.Header.Key, Index: idx}
				if err := c.PutVer(cid, chunks[idx], ver); err == nil && c.Contains(cid) {
					stored = append(stored, idx)
				}
			}
			if ver != 0 && vt.Observe(req.Header.Key, hlc.Timestamp(ver)) {
				if c.DropObjectBelow(req.Header.Key, ver) > 0 {
					sm.invalidated(1)
				}
			}
			return wire.Message{Header: wire.Header{Op: wire.OpOK, Indices: stored}}
		case wire.OpDelete:
			c.Delete(id)
			return wire.Message{Header: wire.Header{Op: wire.OpOK}}
		case wire.OpDelObj:
			if ver := req.Header.Ver; ver != 0 {
				// Versioned invalidation: raise the floor and drop every
				// cached chunk the write outdated; a delete older than the
				// floor is refused, never applied out of order.
				if ok, cur := vt.Admit(req.Header.Key, hlc.Timestamp(ver)); !ok {
					sm.staleReject()
					return wire.Message{Header: wire.Header{Op: wire.OpStale, Ver: uint64(cur)}}
				}
				vt.Observe(req.Header.Key, hlc.Timestamp(ver))
				if c.DropObjectBelow(req.Header.Key, ver) > 0 {
					sm.invalidated(1)
				}
				return wire.Message{Header: wire.Header{Op: wire.OpOK}}
			}
			c.DeleteObject(req.Header.Key)
			return wire.Message{Header: wire.Header{Op: wire.OpOK}}
		case wire.OpIndices:
			return wire.Message{Header: wire.Header{Op: wire.OpOK, Indices: c.IndicesOf(req.Header.Key)}}
		case wire.OpSnapshot:
			return wire.Message{Header: wire.Header{Op: wire.OpOK, Groups: c.Snapshot()}}
		case wire.OpDigest:
			if table == nil {
				return wire.ErrorMessage(fmt.Errorf("cache: digest from %q but cooperative mesh is disabled", req.Header.Region))
			}
			if req.Header.Region == "" {
				return wire.ErrorMessage(fmt.Errorf("cache: digest without a region"))
			}
			// The ack carries the mirror's sequence after the apply: for an
			// accepted frame that equals the frame's Seq; for a stale frame
			// or a rejected delta it does not, which tells the advertiser to
			// resend in full.
			table.Apply(coop.Digest{Region: req.Header.Region, Seq: req.Header.Seq,
				Groups: req.Header.Groups, Delta: req.Header.Delta, Base: req.Header.Base,
				KeyVers: req.Header.KeyVers})
			if len(req.Header.KeyVers) > 0 {
				// Invalidations ride the digest: every advertised version
				// raises the local floor, dropping the cached chunks it
				// outdates; the newest version's wall-clock age is the
				// cross-region staleness this node observes.
				var newest uint64
				dropped := 0
				for key, ver := range req.Header.KeyVers {
					if ver > newest {
						newest = ver
					}
					if vt.Observe(key, hlc.Timestamp(ver)) && c.DropObjectBelow(key, ver) > 0 {
						dropped++
					}
				}
				sm.invalidated(dropped)
				sm.observeVersionLag(time.Now().UnixMilli() - hlc.Timestamp(newest).WallMS())
			}
			return wire.Message{Header: wire.Header{
				Op: wire.OpDigestAck, Seq: table.Mirror(req.Header.Region).Seq(),
			}}
		case wire.OpStats:
			// Built from the same registry sources /metrics exposes (the
			// cache's own atomics, the coop table, the dispatch gauge), so
			// the wire payload and a scrape can never disagree.
			return wire.Message{Header: wire.Header{Op: wire.OpOK, Stats: sm.statsMap()}}
		default:
			return wire.ErrorMessage(fmt.Errorf("cache: unknown op %q", req.Header.Op))
		}
	}
}

// NewHintServer serves an Agar node's request-monitor interface over TCP:
// single-key OpHint and the batched OpMHint, which resolves several keys'
// hints in one frame (each key still records one monitored access). The
// UDP channel stays single-key — one hint per datagram, like the paper's.
func NewHintServer(addr string, node *core.Node) (*Server, error) {
	return NewHintServerRec(addr, node, nil)
}

// NewHintServerRec is NewHintServer with a flight recorder attached, so a
// cluster's hint exchanges land in the same /debug/traces retention as its
// cache and store ops.
func NewHintServerRec(addr string, node *core.Node, rec *trace.Recorder) (*Server, error) {
	return newServer(addr, func(req wire.Message) wire.Message {
		switch req.Header.Op {
		case wire.OpHint:
			hint := node.HandleRead(req.Header.Key)
			return wire.Message{Header: wire.Header{Op: wire.OpOK, Key: hint.Key, Indices: hint.CacheChunks}}
		case wire.OpMHint:
			if len(req.Header.Keys) > wire.MaxBatchChunks {
				return wire.ErrorMessage(fmt.Errorf("hint: mhint of %d keys exceeds batch limit %d",
					len(req.Header.Keys), wire.MaxBatchChunks))
			}
			groups := make(map[string][]int, len(req.Header.Keys))
			for _, key := range req.Header.Keys {
				hint := node.HandleRead(key)
				chunks := hint.CacheChunks
				if chunks == nil {
					chunks = []int{} // present-but-empty: the key was resolved
				}
				groups[key] = chunks
			}
			return wire.Message{Header: wire.Header{Op: wire.OpOK, Groups: groups}}
		default:
			return wire.ErrorMessage(fmt.Errorf("hint: unknown op %q", req.Header.Op))
		}
	}, nil, rec)
}

// UDPHintServer serves hints over UDP, the paper's low-overhead channel
// between clients and the request monitor.
type UDPHintServer struct {
	conn net.PacketConn
	wg   sync.WaitGroup
}

// NewUDPHintServer starts a UDP hint responder for the node.
func NewUDPHintServer(addr string, node *core.Node) (*UDPHintServer, error) {
	conn, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("live: udp listen %s: %w", addr, err)
	}
	s := &UDPHintServer{conn: conn}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		buf := make([]byte, 64<<10)
		for {
			req, from, err := wire.ReadDatagram(conn, buf)
			if err != nil {
				if isClosed(err) {
					return
				}
				continue // drop malformed datagrams, as UDP services do
			}
			hint := node.HandleRead(req.Header.Key)
			_ = wire.WriteDatagram(conn, from, wire.Message{
				Header: wire.Header{Op: wire.OpOK, Key: hint.Key, Indices: hint.CacheChunks},
			})
		}
	}()
	return s, nil
}

// Addr returns the bound UDP address.
func (s *UDPHintServer) Addr() string { return s.conn.LocalAddr().String() }

// Close stops the responder and waits for it to exit.
func (s *UDPHintServer) Close() {
	s.conn.Close()
	s.wg.Wait()
}

func isClosed(err error) bool {
	return errors.Is(err, net.ErrClosed)
}

// sortedIndices returns a batch's chunk indices in ascending order so batch
// handlers apply inserts deterministically.
func sortedIndices(chunks map[int][]byte) []int {
	out := make([]int, 0, len(chunks))
	for idx := range chunks {
		out = append(out, idx)
	}
	sort.Ints(out)
	return out
}
