// Package live runs Agar's roles over real sockets: per-region backend
// store servers, memcached-style chunk cache servers, and the Agar node's
// hint service (TCP and UDP). It also provides the matching remote client
// adapters and a network read path with genuinely parallel chunk fetches.
//
// The experiment harness measures on the in-process simulator; this package
// exists so the system can actually be deployed — integration tests and the
// live-cluster example run every role on localhost with scaled wide-area
// delays injected client-side.
package live

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"github.com/agardist/agar/internal/backend"
	"github.com/agardist/agar/internal/cache"
	"github.com/agardist/agar/internal/coop"
	"github.com/agardist/agar/internal/core"
	"github.com/agardist/agar/internal/wire"
)

// handler processes one request message into one response message.
type handler func(wire.Message) wire.Message

// Server is a generic framed-TCP request/response server.
type Server struct {
	ln     net.Listener
	handle handler

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// newServer starts serving on addr ("127.0.0.1:0" for an ephemeral port).
func newServer(addr string, h handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("live: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, handle: h, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener, closes active connections, and waits for all
// connection goroutines to exit.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		req, err := wire.Read(conn)
		if err != nil {
			return
		}
		if err := wire.Write(conn, s.handle(req)); err != nil {
			return
		}
	}
}

// NewStoreServer serves one region's backend store.
func NewStoreServer(addr string, store *backend.Store) (*Server, error) {
	return newServer(addr, func(req wire.Message) wire.Message {
		id := backend.ChunkID{Key: req.Header.Key, Index: req.Header.Index}
		switch req.Header.Op {
		case wire.OpGet:
			data, err := store.Get(id)
			if errors.Is(err, backend.ErrNotFound) {
				return wire.Message{Header: wire.Header{Op: wire.OpNotFound}}
			}
			if err != nil {
				return wire.ErrorMessage(err)
			}
			return wire.Message{Header: wire.Header{Op: wire.OpOK}, Body: data}
		case wire.OpPut:
			if err := store.Put(id, req.Body); err != nil {
				return wire.ErrorMessage(err)
			}
			return wire.Message{Header: wire.Header{Op: wire.OpOK}}
		case wire.OpMGet:
			// Batched store read: one frame however many chunks of the key
			// this region holds — and, when the store is backed by a remote
			// blob gateway, one upstream round trip instead of N.
			if len(req.Header.Indices) > wire.MaxBatchChunks {
				return wire.ErrorMessage(fmt.Errorf("store: mget of %d chunks exceeds batch limit %d",
					len(req.Header.Indices), wire.MaxBatchChunks))
			}
			found, err := store.GetMulti(req.Header.Key, req.Header.Indices)
			if err != nil {
				return wire.ErrorMessage(err)
			}
			if len(found) == 0 {
				return wire.Message{Header: wire.Header{Op: wire.OpOK}}
			}
			indices, sizes, body, err := wire.PackBatch(found)
			if err != nil {
				return wire.ErrorMessage(err)
			}
			return wire.Message{Header: wire.Header{Op: wire.OpOK, Indices: indices, Sizes: sizes}, Body: body}
		case wire.OpDelete:
			if _, err := store.DeleteChecked(id); err != nil {
				return wire.ErrorMessage(err)
			}
			return wire.Message{Header: wire.Header{Op: wire.OpOK}}
		case wire.OpStats:
			st, err := store.StatsChecked()
			if err != nil {
				return wire.ErrorMessage(err)
			}
			return wire.Message{Header: wire.Header{
				Op:    wire.OpOK,
				Stats: map[string]int64{"chunks": st.Chunks, "bytes": st.Bytes},
			}}
		default:
			return wire.ErrorMessage(fmt.Errorf("store: unknown op %q", req.Header.Op))
		}
	})
}

// NewCacheServer serves a chunk cache with memcached-like semantics.
func NewCacheServer(addr string, c *cache.Cache) (*Server, error) {
	return newServer(addr, cacheHandler(c, nil))
}

// NewCacheServerCoop serves a chunk cache that also speaks the cooperative
// mesh protocol: incoming OpDigest frames maintain the table's per-peer
// residency mirrors, batched reads tagged with a foreign region are
// accounted as peer traffic, and OpStats reports peer_hits, peer_misses,
// digests and digest_age_ms alongside the cache counters.
func NewCacheServerCoop(addr string, c *cache.Cache, table *coop.Table) (*Server, error) {
	return newServer(addr, cacheHandler(c, table))
}

// cacheHandler builds the cache server's request handler; table is nil for
// non-cooperative deployments, which reject digest frames.
func cacheHandler(c *cache.Cache, table *coop.Table) handler {
	return func(req wire.Message) wire.Message {
		id := cache.EntryID{Key: req.Header.Key, Index: req.Header.Index}
		switch req.Header.Op {
		case wire.OpGet:
			data, err := c.Get(id)
			if errors.Is(err, cache.ErrNotFound) {
				return wire.Message{Header: wire.Header{Op: wire.OpNotFound}}
			}
			if err != nil {
				return wire.ErrorMessage(err)
			}
			return wire.Message{Header: wire.Header{Op: wire.OpOK}, Body: data}
		case wire.OpPut:
			if err := c.Put(id, req.Body); err != nil {
				return wire.ErrorMessage(err)
			}
			return wire.Message{Header: wire.Header{Op: wire.OpOK}}
		case wire.OpMGet:
			if len(req.Header.Indices) > wire.MaxBatchChunks {
				return wire.ErrorMessage(fmt.Errorf("cache: mget of %d chunks exceeds batch limit %d",
					len(req.Header.Indices), wire.MaxBatchChunks))
			}
			found := make(map[int][]byte, len(req.Header.Indices))
			for _, idx := range req.Header.Indices {
				if data, err := c.Get(cache.EntryID{Key: req.Header.Key, Index: idx}); err == nil {
					found[idx] = data
				}
			}
			if table != nil && req.Header.Region != "" {
				// A foreign-region client reading through the coop mesh:
				// account the served and advertised-but-gone chunks.
				table.RecordPeerRead(len(found), len(req.Header.Indices)-len(found))
			}
			if len(found) == 0 {
				return wire.Message{Header: wire.Header{Op: wire.OpOK}}
			}
			indices, sizes, body, err := wire.PackBatch(found)
			if err != nil {
				return wire.ErrorMessage(err)
			}
			return wire.Message{Header: wire.Header{Op: wire.OpOK, Indices: indices, Sizes: sizes}, Body: body}
		case wire.OpMPut:
			chunks, err := wire.UnpackBatch(req.Header.Indices, req.Header.Sizes, req.Body)
			if err != nil {
				return wire.ErrorMessage(err)
			}
			// Best-effort batch insert, like a memcached multi-set: chunks the
			// cache refuses (admission filter, full shard) are skipped, and
			// the response lists what actually landed.
			stored := make([]int, 0, len(chunks))
			for _, idx := range sortedIndices(chunks) {
				cid := cache.EntryID{Key: req.Header.Key, Index: idx}
				if err := c.Put(cid, chunks[idx]); err == nil && c.Contains(cid) {
					stored = append(stored, idx)
				}
			}
			return wire.Message{Header: wire.Header{Op: wire.OpOK, Indices: stored}}
		case wire.OpDelete:
			c.Delete(id)
			return wire.Message{Header: wire.Header{Op: wire.OpOK}}
		case wire.OpDelObj:
			c.DeleteObject(req.Header.Key)
			return wire.Message{Header: wire.Header{Op: wire.OpOK}}
		case wire.OpIndices:
			return wire.Message{Header: wire.Header{Op: wire.OpOK, Indices: c.IndicesOf(req.Header.Key)}}
		case wire.OpSnapshot:
			return wire.Message{Header: wire.Header{Op: wire.OpOK, Groups: c.Snapshot()}}
		case wire.OpDigest:
			if table == nil {
				return wire.ErrorMessage(fmt.Errorf("cache: digest from %q but cooperative mesh is disabled", req.Header.Region))
			}
			if req.Header.Region == "" {
				return wire.ErrorMessage(fmt.Errorf("cache: digest without a region"))
			}
			// The ack carries the mirror's sequence after the apply: for an
			// accepted frame that equals the frame's Seq; for a stale frame
			// or a rejected delta it does not, which tells the advertiser to
			// resend in full.
			table.Apply(coop.Digest{Region: req.Header.Region, Seq: req.Header.Seq,
				Groups: req.Header.Groups, Delta: req.Header.Delta, Base: req.Header.Base})
			return wire.Message{Header: wire.Header{
				Op: wire.OpDigestAck, Seq: table.Mirror(req.Header.Region).Seq(),
			}}
		case wire.OpStats:
			st := c.Stats()
			stats := map[string]int64{
				"gets": st.Gets, "hits": st.Hits, "sets": st.Sets,
				"evictions": st.Evictions, "rejected": st.Rejected(),
				"admission_rejects": st.AdmissionRejects, "full_rejects": st.FullRejects,
				"used": c.Used(), "capacity": c.Capacity(), "shards": int64(c.ShardCount()),
			}
			if table != nil {
				hits, misses := table.PeerReads()
				applied, stale := table.Applied()
				stats["peer_hits"], stats["peer_misses"] = hits, misses
				stats["digests"], stats["digests_stale"] = applied, stale
				stats["digest_deltas"] = table.Deltas()
				if age, ok := table.StalestAge(); ok {
					stats["digest_age_ms"] = int64(age / time.Millisecond)
				}
			}
			return wire.Message{Header: wire.Header{Op: wire.OpOK, Stats: stats}}
		default:
			return wire.ErrorMessage(fmt.Errorf("cache: unknown op %q", req.Header.Op))
		}
	}
}

// NewHintServer serves an Agar node's request-monitor interface over TCP:
// single-key OpHint and the batched OpMHint, which resolves several keys'
// hints in one frame (each key still records one monitored access). The
// UDP channel stays single-key — one hint per datagram, like the paper's.
func NewHintServer(addr string, node *core.Node) (*Server, error) {
	return newServer(addr, func(req wire.Message) wire.Message {
		switch req.Header.Op {
		case wire.OpHint:
			hint := node.HandleRead(req.Header.Key)
			return wire.Message{Header: wire.Header{Op: wire.OpOK, Key: hint.Key, Indices: hint.CacheChunks}}
		case wire.OpMHint:
			if len(req.Header.Keys) > wire.MaxBatchChunks {
				return wire.ErrorMessage(fmt.Errorf("hint: mhint of %d keys exceeds batch limit %d",
					len(req.Header.Keys), wire.MaxBatchChunks))
			}
			groups := make(map[string][]int, len(req.Header.Keys))
			for _, key := range req.Header.Keys {
				hint := node.HandleRead(key)
				chunks := hint.CacheChunks
				if chunks == nil {
					chunks = []int{} // present-but-empty: the key was resolved
				}
				groups[key] = chunks
			}
			return wire.Message{Header: wire.Header{Op: wire.OpOK, Groups: groups}}
		default:
			return wire.ErrorMessage(fmt.Errorf("hint: unknown op %q", req.Header.Op))
		}
	})
}

// UDPHintServer serves hints over UDP, the paper's low-overhead channel
// between clients and the request monitor.
type UDPHintServer struct {
	conn net.PacketConn
	wg   sync.WaitGroup
}

// NewUDPHintServer starts a UDP hint responder for the node.
func NewUDPHintServer(addr string, node *core.Node) (*UDPHintServer, error) {
	conn, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("live: udp listen %s: %w", addr, err)
	}
	s := &UDPHintServer{conn: conn}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		buf := make([]byte, 64<<10)
		for {
			req, from, err := wire.ReadDatagram(conn, buf)
			if err != nil {
				if isClosed(err) {
					return
				}
				continue // drop malformed datagrams, as UDP services do
			}
			hint := node.HandleRead(req.Header.Key)
			_ = wire.WriteDatagram(conn, from, wire.Message{
				Header: wire.Header{Op: wire.OpOK, Key: hint.Key, Indices: hint.CacheChunks},
			})
		}
	}()
	return s, nil
}

// Addr returns the bound UDP address.
func (s *UDPHintServer) Addr() string { return s.conn.LocalAddr().String() }

// Close stops the responder and waits for it to exit.
func (s *UDPHintServer) Close() {
	s.conn.Close()
	s.wg.Wait()
}

func isClosed(err error) bool {
	return errors.Is(err, net.ErrClosed)
}

// sortedIndices returns a batch's chunk indices in ascending order so batch
// handlers apply inserts deterministically.
func sortedIndices(chunks map[int][]byte) []int {
	out := make([]int, 0, len(chunks))
	for idx := range chunks {
		out = append(out, idx)
	}
	sort.Ints(out)
	return out
}
