package live

import (
	"github.com/agardist/agar/internal/backend"
	"github.com/agardist/agar/internal/cache"
	"github.com/agardist/agar/internal/trace"
	"github.com/agardist/agar/internal/wire"
)

// The versioned halves of the remote adapters. Every method here speaks the
// same frames as its unversioned sibling plus the optional Ver/Vers header
// fields; a zero version sends the byte-identical legacy frame, so callers
// that never version pay nothing. An OpStale reply — the server's version
// floor refused the mutation — surfaces as *backend.StaleError carrying the
// floor, the same error shape the in-process store returns, so retry logic
// is transport-agnostic.

// staleFromReply converts an OpStale reply into the store-layer error.
func staleFromReply(h wire.Header) error {
	if h.Op != wire.OpStale {
		return nil
	}
	return &backend.StaleError{Cur: h.Ver}
}

// PutVer stores one chunk under a write version: refused with
// *backend.StaleError when the server's floor for the key is newer.
func (s *RemoteStore) PutVer(id backend.ChunkID, data []byte, ver uint64) error {
	resp, err := s.rc.call(wire.Message{
		Header: wire.Header{Op: wire.OpPut, Key: id.Key, Index: id.Index, Ver: ver},
		Body:   data,
	})
	if err != nil {
		return err
	}
	return staleFromReply(resp.Header)
}

// DeleteObjectVer removes every chunk of a key and persists the delete's
// version as a tombstone floor; stale deletes are refused.
func (s *RemoteStore) DeleteObjectVer(key string, ver uint64) error {
	resp, err := s.rc.call(wire.Message{Header: wire.Header{Op: wire.OpDelObj, Key: key, Ver: ver}})
	if err != nil {
		return err
	}
	return staleFromReply(resp.Header)
}

// GetVer fetches one chunk plus the key's durable version floor (zero for a
// never-versioned key).
func (s *RemoteStore) GetVer(id backend.ChunkID) ([]byte, uint64, error) {
	resp, err := s.rc.call(wire.Message{Header: wire.Header{Op: wire.OpGet, Key: id.Key, Index: id.Index}})
	if err != nil {
		return nil, 0, err
	}
	if resp.Header.Op == wire.OpNotFound {
		return nil, 0, backend.ErrNotFound
	}
	return resp.Body, resp.Header.Ver, nil
}

// GetVerCtx is GetVer with trace context (see GetCtx).
func (s *RemoteStore) GetVerCtx(ctx trace.Context, id backend.ChunkID) ([]byte, uint64, []trace.Annotation, error) {
	resp, anns, err := s.rc.callCtx(ctx, wire.Message{Header: wire.Header{Op: wire.OpGet, Key: id.Key, Index: id.Index}})
	if err != nil {
		return nil, 0, anns, err
	}
	if resp.Header.Op == wire.OpNotFound {
		return nil, 0, anns, backend.ErrNotFound
	}
	return resp.Body, resp.Header.Ver, anns, nil
}

// GetMultiVerCtx is GetMultiCtx plus versions: per-chunk write versions
// (nil for a never-versioned key) and the key's floor.
func (s *RemoteStore) GetMultiVerCtx(ctx trace.Context, key string, indices []int) (map[int][]byte, map[int]uint64, uint64, []trace.Annotation, error) {
	if len(indices) == 0 {
		return map[int][]byte{}, nil, 0, nil, nil
	}
	resp, anns, err := s.rc.callCtx(ctx, wire.Message{Header: wire.Header{Op: wire.OpMGet, Key: key, Indices: indices}})
	if err != nil {
		return nil, nil, 0, anns, err
	}
	found, err := wire.UnpackBatch(resp.Header.Indices, resp.Header.Sizes, resp.Body)
	if err != nil {
		return nil, nil, 0, anns, err
	}
	return found, versMap(resp.Header), resp.Header.Ver, anns, nil
}

// versMap folds a reply's parallel Indices/Vers arrays into a per-chunk
// version map; nil when the reply carried no versions.
func versMap(h wire.Header) map[int]uint64 {
	if h.Vers == nil {
		return nil
	}
	vers := make(map[int]uint64, len(h.Vers))
	for i, idx := range h.Indices {
		if i < len(h.Vers) {
			vers[idx] = h.Vers[i]
		}
	}
	return vers
}

// PutVer inserts one chunk under a write version; the server refuses it
// below the key's floor.
func (c *RemoteCache) PutVer(id cache.EntryID, data []byte, ver uint64) error {
	resp, err := c.rc.call(wire.Message{
		Header: wire.Header{Op: wire.OpPut, Key: id.Key, Index: id.Index, Ver: ver},
		Body:   data,
	})
	if err != nil {
		return err
	}
	return staleFromReply(resp.Header)
}

// PutMultiVer inserts several chunks of one key under one write version in
// a single round trip; admitting the batch also drops any older cached
// chunks of the key server-side.
func (c *RemoteCache) PutMultiVer(key string, chunks map[int][]byte, ver uint64) error {
	if len(chunks) == 0 {
		return nil
	}
	indices, sizes, body, err := wire.PackBatch(chunks)
	if err != nil {
		return err
	}
	resp, err := c.rc.call(wire.Message{
		Header: wire.Header{Op: wire.OpMPut, Key: key, Indices: indices, Sizes: sizes, Ver: ver},
		Body:   body,
	})
	if err != nil {
		return err
	}
	return staleFromReply(resp.Header)
}

// DeleteObjectVer invalidates every cached chunk of the key older than the
// version and raises the server's floor, so pre-write chunks can never be
// re-served; stale invalidations are refused.
func (c *RemoteCache) DeleteObjectVer(key string, ver uint64) error {
	resp, err := c.rc.call(wire.Message{Header: wire.Header{Op: wire.OpDelObj, Key: key, Ver: ver}})
	if err != nil {
		return err
	}
	return staleFromReply(resp.Header)
}

// GetVer fetches one cached chunk plus the write version it was inserted
// under (zero for a legacy insert).
func (c *RemoteCache) GetVer(id cache.EntryID) ([]byte, uint64, error) {
	resp, err := c.rc.call(wire.Message{Header: wire.Header{Op: wire.OpGet, Key: id.Key, Index: id.Index}})
	if err != nil {
		return nil, 0, err
	}
	if resp.Header.Op == wire.OpNotFound {
		return nil, 0, cache.ErrNotFound
	}
	return resp.Body, resp.Header.Ver, nil
}

// GetMultiVerCtx is GetMultiCtx plus per-chunk write versions (nil when
// every returned chunk was a legacy insert).
func (c *RemoteCache) GetMultiVerCtx(ctx trace.Context, key string, indices []int) (map[int][]byte, map[int]uint64, []trace.Annotation, error) {
	if len(indices) == 0 {
		return map[int][]byte{}, nil, nil, nil
	}
	resp, anns, err := c.rc.callCtx(ctx, wire.Message{Header: wire.Header{Op: wire.OpMGet, Key: key, Indices: indices, Region: c.origin}})
	if err != nil {
		return nil, nil, anns, err
	}
	found, err := wire.UnpackBatch(resp.Header.Indices, resp.Header.Sizes, resp.Body)
	if err != nil {
		return nil, nil, anns, err
	}
	return found, versMap(resp.Header), anns, nil
}
