package live

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"github.com/agardist/agar/internal/geo"
)

// startPeeredClusters boots two live clusters (Frankfurt and Dublin),
// loads the same working set into both backends, and joins them into a
// symmetric cooperative mesh at the given peer latency.
func startPeeredClusters(t *testing.T, objects int, objBytes int) (fra, dub *Cluster, data map[string][]byte) {
	t.Helper()
	mk := func(region geo.RegionID) *Cluster {
		c, err := StartCluster(ClusterConfig{
			K:            4,
			M:            2,
			ClientRegion: region,
			CacheBytes:   60 * 2048,
			ChunkBytes:   2048,
			DelayScale:   0, // unit test: no injected delays
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
		return c
	}
	fra = mk(geo.Frankfurt)
	dub = mk(geo.Dublin)

	rng := rand.New(rand.NewSource(11))
	data = make(map[string][]byte, objects)
	for i := 0; i < objects; i++ {
		key := fmt.Sprintf("object-%d", i)
		payload := make([]byte, objBytes)
		rng.Read(payload)
		data[key] = payload
		if err := fra.Backend().PutObject(key, payload); err != nil {
			t.Fatal(err)
		}
		if err := dub.Backend().PutObject(key, payload); err != nil {
			t.Fatal(err)
		}
	}

	peerLat := 25 * time.Millisecond
	fra.Peer(geo.Dublin, dub.CacheAddr(), peerLat)
	dub.Peer(geo.Frankfurt, fra.CacheAddr(), peerLat)
	return fra, dub, data
}

// warmCluster drives reads through a cluster's own reader until the node
// caches the object, then returns.
func warmCluster(t *testing.T, c *Cluster, region geo.RegionID, key string) {
	t.Helper()
	reader, err := NewNetworkReader(c, region)
	if err != nil {
		t.Fatal(err)
	}
	defer reader.Close()
	for i := 0; i < 30; i++ {
		if _, _, err := reader.ReadDetailed(key); err != nil {
			t.Fatal(err)
		}
	}
	c.Node().ForceReconfigure()
	if _, _, err := reader.ReadDetailed(key); err != nil {
		t.Fatal(err)
	}
	reader.FlushPopulation()
	if len(c.Node().Cache().IndicesOf(key)) == 0 {
		t.Fatalf("warm-up left %s's cache empty for %q", region, key)
	}
}

// TestPeeredClustersCoopSmoke is the live twin of the simulator's §VI
// test: Dublin's cache holds a hot object, its digest reaches Frankfurt,
// and a Frankfurt reader serves the covered chunks from Dublin's cache —
// with the peer's cache server accounting the traffic as peer hits.
func TestPeeredClustersCoopSmoke(t *testing.T) {
	fra, dub, data := startPeeredClusters(t, 4, 8_000)

	warmCluster(t, dub, geo.Dublin, "object-0")
	if failed := dub.PushDigests(); failed != 0 {
		t.Fatalf("%d digest pushes failed", failed)
	}

	// Frankfurt's mirror of Dublin must now advertise the cached chunks.
	mirror := fra.CoopTable().Mirror(geo.Dublin.String())
	if got := mirror.IndicesOf("object-0"); !reflect.DeepEqual(got, dub.Node().Cache().IndicesOf("object-0")) {
		t.Fatalf("mirror %v != dublin residency %v", got, dub.Node().Cache().IndicesOf("object-0"))
	}

	reader, err := NewNetworkReader(fra, geo.Frankfurt)
	if err != nil {
		t.Fatal(err)
	}
	defer reader.Close()

	got, info, err := reader.ReadDetailed("object-0")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data["object-0"]) {
		t.Fatal("peered read returned wrong data")
	}
	if info.PeerChunks == 0 {
		t.Fatalf("no chunks served by the peer: %+v", info)
	}

	// The peer's cache server accounted the cooperative traffic.
	dubCache := NewRemoteCache(dub.CacheAddr())
	defer dubCache.Close()
	stats, err := dubCache.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats["peer_hits"] == 0 {
		t.Fatalf("peer cache server reported no peer hits: %v", stats)
	}
	fraCache := NewRemoteCache(fra.CacheAddr())
	defer fraCache.Close()
	fstats, err := fraCache.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := fstats["digest_age_ms"]; !ok {
		t.Fatalf("frankfurt cache server reports no digest age: %v", fstats)
	}
}

// TestPeerStaleDigestFallsBackToStores wipes the peer's cache after its
// digest was advertised: the mirror still routes chunks to the peer, the
// peer read misses, and the read must fall back to the WAN stores with no
// error surfaced and the right bytes decoded exactly once.
func TestPeerStaleDigestFallsBackToStores(t *testing.T) {
	fra, dub, data := startPeeredClusters(t, 2, 8_000)

	warmCluster(t, dub, geo.Dublin, "object-0")
	if failed := dub.PushDigests(); failed != 0 {
		t.Fatalf("%d digest pushes failed", failed)
	}

	reader, err := NewNetworkReader(fra, geo.Frankfurt)
	if err != nil {
		t.Fatal(err)
	}
	defer reader.Close()

	// Evict everything the digest advertised — the mirror is now fully
	// stale, and the peer's counters will see the misses.
	dub.Node().Cache().Clear()

	got, info, err := reader.ReadDetailed("object-0")
	if err != nil {
		t.Fatalf("stale-digest read errored: %v", err)
	}
	if !bytes.Equal(got, data["object-0"]) {
		t.Fatal("stale-digest read returned wrong data")
	}
	if info.PeerChunks != 0 {
		t.Fatalf("peer chunks reported after peer wipe: %+v", info)
	}

	dubCache := NewRemoteCache(dub.CacheAddr())
	defer dubCache.Close()
	stats, err := dubCache.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats["peer_misses"] == 0 {
		t.Fatalf("peer cache server reported no peer misses: %v", stats)
	}
}

// TestHintMultiBatchesRoundTrips checks OpMHint end to end against a live
// cluster: one frame resolves several keys, equals the single-key answers,
// and records one monitored access per key.
func TestHintMultiBatchesRoundTrips(t *testing.T) {
	cluster, err := StartCluster(ClusterConfig{
		ClientRegion: geo.Frankfurt,
		CacheBytes:   90 * 2048,
		ChunkBytes:   2048,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	hinter := NewRemoteHinter(cluster.HintAddr())
	defer hinter.Close()

	keys := []string{"obj-a", "obj-b", "obj-c"}
	for i := 0; i < 20; i++ {
		if _, err := hinter.HintMulti(keys); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range keys {
		if got := cluster.Node().Monitor().CurrentFrequency(k); got != 20 {
			t.Fatalf("mhint recorded %d accesses for %q, want 20", got, k)
		}
	}
	cluster.Node().ForceReconfigure()

	multi, err := hinter.HintMulti(keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(multi) != len(keys) {
		t.Fatalf("mhint answered %d of %d keys: %v", len(multi), len(keys), multi)
	}
	for _, k := range keys {
		single, err := hinter.Hint(k)
		if err != nil {
			t.Fatal(err)
		}
		if len(single) != len(multi[k]) {
			t.Fatalf("key %q: single hint %v != batched %v", k, single, multi[k])
		}
	}

	if got, err := hinter.HintMulti(nil); err != nil || len(got) != 0 {
		t.Fatalf("empty mhint: %v %v", got, err)
	}
	big := make([]string, 300)
	for i := range big {
		big[i] = fmt.Sprintf("k-%d", i)
	}
	if _, err := hinter.HintMulti(big); err == nil {
		t.Fatal("over-limit mhint accepted")
	}
}

// ParsePeers is covered by the table-driven tests in peers_test.go.
