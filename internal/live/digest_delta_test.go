package live

import (
	"reflect"
	"testing"

	"github.com/agardist/agar/internal/cache"
	"github.com/agardist/agar/internal/geo"
)

// TestDigestDeltasFlowBetweenPeeredClusters pushes digests twice across a
// live mesh: the second push must travel as a delta (visible in the peer's
// digest_deltas counter), and an eviction between pushes must disappear
// from the peer's mirror through the delta's removal entry.
func TestDigestDeltasFlowBetweenPeeredClusters(t *testing.T) {
	fra, dub, _ := startPeeredClusters(t, 4, 8_000)

	warmCluster(t, dub, geo.Dublin, "object-0")
	if failed := dub.PushDigests(); failed != 0 {
		t.Fatalf("first push: %d failed", failed)
	}
	mirror := fra.CoopTable().Mirror(geo.Dublin.String())
	before := dub.Node().Cache().IndicesOf("object-0")
	if got := mirror.IndicesOf("object-0"); !reflect.DeepEqual(got, before) {
		t.Fatalf("mirror %v != residency %v after full digest", got, before)
	}

	// Evict one advertised chunk, then delta-push the change.
	dub.Node().Cache().Delete(cache.EntryID{Key: "object-0", Index: before[0]})
	if failed := dub.PushDigests(); failed != 0 {
		t.Fatalf("second push: %d failed", failed)
	}
	if n := dub.Advertiser().DeltaPushes(); n == 0 {
		t.Fatal("second push did not travel as a delta")
	}
	if mirror.Contains(cache.EntryID{Key: "object-0", Index: before[0]}) {
		t.Fatalf("mirror still advertises evicted chunk %d", before[0])
	}
	if got, want := mirror.IndicesOf("object-0"), dub.Node().Cache().IndicesOf("object-0"); !reflect.DeepEqual(got, want) {
		t.Fatalf("mirror %v != residency %v after delta", got, want)
	}

	// The serving cache server counted the delta frame.
	fraCache := NewRemoteCache(fra.CacheAddr())
	defer fraCache.Close()
	stats, err := fraCache.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats["digest_deltas"] == 0 {
		t.Fatalf("peer cache server reports no digest deltas: %v", stats)
	}

	// A third, no-change push still lands (age refresh) as a delta.
	if failed := dub.PushDigests(); failed != 0 {
		t.Fatalf("idle push: %d failed", failed)
	}
	if n := dub.Advertiser().DeltaPushes(); n < 2 {
		t.Fatalf("idle push not a delta (delta pushes = %d)", n)
	}
}
