package live

import (
	"bytes"
	"io"
	"sync/atomic"
	"testing"
	"time"

	"github.com/agardist/agar/internal/cache"
	"github.com/agardist/agar/internal/coherence"
	"github.com/agardist/agar/internal/wire"
)

// legacyMGetReply reproduces the pre-pool server mget reply path byte for
// byte: per-chunk copies out of the cache into a map, PackBatch copying
// the map into one body, Encode copying header and body into one
// contiguous frame, one Write. The paired benchmarks measure the pooled
// path against exactly this.
func legacyMGetReply(c *cache.Cache, w io.Writer, key string, indices []int) error {
	found := make(map[int][]byte, len(indices))
	for _, idx := range indices {
		if b, err := c.Get(cache.EntryID{Key: key, Index: idx}); err == nil {
			found[idx] = b
		}
	}
	if len(found) == 0 {
		return wire.Write(w, wire.Message{Header: wire.Header{Op: wire.OpOK}})
	}
	idxs, sizes, body, err := wire.PackBatch(found)
	if err != nil {
		return err
	}
	return wire.Write(w, wire.Message{
		Header: wire.Header{Op: wire.OpOK, Indices: idxs, Sizes: sizes}, Body: body,
	})
}

// legacyGetReply is the pre-pool single-get reply: cache copy, Encode
// copy, Write.
func legacyGetReply(c *cache.Cache, w io.Writer, key string, index int) error {
	b, err := c.Get(cache.EntryID{Key: key, Index: index})
	if err != nil {
		return wire.Write(w, wire.Message{Header: wire.Header{Op: wire.OpNotFound}})
	}
	return wire.Write(w, wire.Message{Header: wire.Header{Op: wire.OpOK}, Body: b})
}

// benchCache returns a cache warmed with nChunks chunks of chunkBytes each
// under one key, plus the sorted index list.
func benchCache(tb testing.TB, nChunks, chunkBytes int) (*cache.Cache, []int) {
	tb.Helper()
	c := cache.NewSharded(1<<28, 8, func() cache.Policy { return cache.NewLRU() })
	indices := make([]int, nChunks)
	for i := 0; i < nChunks; i++ {
		indices[i] = i
		if err := c.Put(cache.EntryID{Key: "obj", Index: i}, bytes.Repeat([]byte{byte(i)}, chunkBytes)); err != nil {
			tb.Fatal(err)
		}
	}
	return c, indices
}

// pooledMGetReply runs the live handler + vectored writer — the path the
// server actually serves mget on.
func pooledMGetReply(h handler, bp *wire.BufferPool, w io.Writer, key string, indices []int) error {
	resp := h(wire.Message{Header: wire.Header{Op: wire.OpMGet, Key: key, Indices: indices}})
	return wire.WriteVectored(w, resp, bp)
}

const (
	benchChunks     = 16
	benchChunkBytes = 4096
)

// BenchmarkMGetReplyLegacy is the old reply path (chunk map + PackBatch +
// contiguous Encode); BenchmarkMGetReplyPooled is the shipped path
// (GetAppend into one pooled body + vectored write). Compare B/op and
// allocs/op between the two — the PR's headline claim lives here.
func BenchmarkMGetReplyLegacy(b *testing.B) {
	c, indices := benchCache(b, benchChunks, benchChunkBytes)
	b.ReportAllocs()
	b.SetBytes(benchChunks * benchChunkBytes)
	for i := 0; i < b.N; i++ {
		if err := legacyMGetReply(c, io.Discard, "obj", indices); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMGetReplyPooled(b *testing.B) {
	c, indices := benchCache(b, benchChunks, benchChunkBytes)
	bp := wire.NewBufferPool()
	h := cacheHandler(c, nil, coherence.NewVersionTable(), nil, bp)
	b.ReportAllocs()
	b.SetBytes(benchChunks * benchChunkBytes)
	for i := 0; i < b.N; i++ {
		if err := pooledMGetReply(h, bp, io.Discard, "obj", indices); err != nil {
			b.Fatal(err)
		}
	}
	if n := bp.Outstanding(); n != 0 {
		b.Fatalf("benchmark leaked %d pooled buffers", n)
	}
}

// BenchmarkGetReplyLegacy / Pooled: the single-chunk version of the pair.
func BenchmarkGetReplyLegacy(b *testing.B) {
	c, _ := benchCache(b, benchChunks, benchChunkBytes)
	b.ReportAllocs()
	b.SetBytes(benchChunkBytes)
	for i := 0; i < b.N; i++ {
		if err := legacyGetReply(c, io.Discard, "obj", i%benchChunks); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetReplyPooled(b *testing.B) {
	c, _ := benchCache(b, benchChunks, benchChunkBytes)
	bp := wire.NewBufferPool()
	h := cacheHandler(c, nil, coherence.NewVersionTable(), nil, bp)
	b.ReportAllocs()
	b.SetBytes(benchChunkBytes)
	for i := 0; i < b.N; i++ {
		resp := h(wire.Message{Header: wire.Header{Op: wire.OpGet, Key: "obj", Index: i % benchChunks}})
		if err := wire.WriteVectored(io.Discard, resp, bp); err != nil {
			b.Fatal(err)
		}
	}
	if n := bp.Outstanding(); n != 0 {
		b.Fatalf("benchmark leaked %d pooled buffers", n)
	}
}

// TestMGetReplyAllocReduction pins the headline claim as a test, not just
// a benchmark: the pooled mget reply path must allocate well under half of
// what the legacy path does. Both sides are measured with AllocsPerRun in
// the same process, so race-detector or runtime noise inflates them
// together and the ratio stays meaningful.
func TestMGetReplyAllocReduction(t *testing.T) {
	c, indices := benchCache(t, benchChunks, benchChunkBytes)
	bp := wire.NewBufferPool()
	h := cacheHandler(c, nil, coherence.NewVersionTable(), nil, bp)

	// Warm the pool and the estimator so steady state is what's measured.
	for i := 0; i < 8; i++ {
		if err := pooledMGetReply(h, bp, io.Discard, "obj", indices); err != nil {
			t.Fatal(err)
		}
	}
	pooled := testing.AllocsPerRun(200, func() {
		if err := pooledMGetReply(h, bp, io.Discard, "obj", indices); err != nil {
			t.Fatal(err)
		}
	})
	legacy := testing.AllocsPerRun(200, func() {
		if err := legacyMGetReply(c, io.Discard, "obj", indices); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("allocs/op: legacy %.1f, pooled %.1f", legacy, pooled)
	if pooled > legacy*0.6 {
		t.Fatalf("pooled path allocates %.1f/op vs legacy %.1f/op — less than the required 40%% reduction", pooled, legacy)
	}
	if n := bp.Outstanding(); n != 0 {
		t.Fatalf("leaked %d pooled buffers", n)
	}
}

// TestPooledReplyParity: the pooled handler + vectored writer must emit a
// byte-identical wire frame to the legacy reply path for the same mget —
// framing compatibility is what lets old clients talk to the new server.
func TestPooledReplyParity(t *testing.T) {
	c, indices := benchCache(t, 8, 64)
	bp := wire.NewBufferPool()
	h := cacheHandler(c, nil, coherence.NewVersionTable(), nil, bp)

	var legacy, pooled bytes.Buffer
	if err := legacyMGetReply(c, &legacy, "obj", indices); err != nil {
		t.Fatal(err)
	}
	if err := pooledMGetReply(h, bp, &pooled, "obj", indices); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(legacy.Bytes(), pooled.Bytes()) {
		t.Fatal("pooled mget reply frame differs from the legacy framing")
	}

	// Duplicate request indices must collapse exactly like the legacy map
	// did, and a fully-missing batch must reply plain OK.
	dup := []int{3, 1, 3, 1, 5}
	legacy.Reset()
	pooled.Reset()
	if err := legacyMGetReply(c, &legacy, "obj", dup); err != nil {
		t.Fatal(err)
	}
	if err := pooledMGetReply(h, bp, &pooled, "obj", append([]int(nil), dup...)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(legacy.Bytes(), pooled.Bytes()) {
		t.Fatal("duplicate-index framing differs from legacy")
	}
	legacy.Reset()
	pooled.Reset()
	if err := legacyMGetReply(c, &legacy, "missing", []int{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := pooledMGetReply(h, bp, &pooled, "missing", []int{1, 2}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(legacy.Bytes(), pooled.Bytes()) {
		t.Fatal("all-miss framing differs from legacy")
	}
	if n := bp.Outstanding(); n != 0 {
		t.Fatalf("leaked %d pooled buffers", n)
	}
}

// TestServerPoolNoLeak hammers a live server over every hot op — gets,
// misses, single- and multi-shard mgets, mputs, errors, pipelined and
// pooled-connection clients — then requires the buffer pool to quiesce to
// zero outstanding buffers: every frame read and every reply written gave
// its buffers back.
func TestServerPoolNoLeak(t *testing.T) {
	for _, mode := range []Dispatch{DispatchShard, DispatchConn} {
		t.Run(string(mode), func(t *testing.T) {
			c := cache.NewSharded(1<<24, 8, func() cache.Policy { return cache.NewLRU() })
			srv, err := NewCacheServerOpts("127.0.0.1:0", c, nil, ServerOptions{Dispatch: mode})
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()

			remote := NewRemoteCache(srv.Addr())
			defer remote.Close()
			p, err := DialPipelined(srv.Addr(), 16)
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()

			chunks := map[int][]byte{}
			for i := 0; i < 32; i++ {
				chunks[i] = bytes.Repeat([]byte{byte(i)}, 512)
			}
			if err := remote.PutMulti("obj", chunks); err != nil {
				t.Fatal(err)
			}
			indices := make([]int, 0, len(chunks))
			for i := range chunks {
				indices = append(indices, i)
			}
			for round := 0; round < 20; round++ {
				if _, err := remote.Get(cache.EntryID{Key: "obj", Index: round % 32}); err != nil {
					t.Fatal(err)
				}
				if _, err := remote.Get(cache.EntryID{Key: "missing", Index: 0}); err != cache.ErrNotFound {
					t.Fatalf("miss err = %v", err)
				}
				if _, err := remote.GetMulti("obj", indices); err != nil {
					t.Fatal(err)
				}
				if _, err := p.GetMulti("obj", indices[:4]); err != nil {
					t.Fatal(err)
				}
				// An op the server rejects exercises the error-reply path.
				if _, err := p.Go(wire.Message{Header: wire.Header{Op: "bogus"}}).Wait(); err == nil {
					t.Fatal("bogus op succeeded")
				}
			}
			remote.Close()
			p.Close()

			deadline := time.Now().Add(2 * time.Second)
			for srv.PoolOutstanding() != 0 {
				if time.Now().After(deadline) {
					t.Fatalf("pool did not quiesce: %d buffers outstanding", srv.PoolOutstanding())
				}
				time.Sleep(5 * time.Millisecond)
			}
		})
	}
}

// TestSplitMinBytesRoutesSmallBatchesWhole drives a multi-shard mget
// through the dispatcher directly: under the default zero threshold it
// fans out (one handler call per shard part); with a huge threshold it
// routes whole to one shard worker (exactly one handler call). The reply
// bytes must be identical either way.
func TestSplitMinBytesRoutesSmallBatchesWhole(t *testing.T) {
	run := func(splitMin int) (int32, map[int][]byte) {
		c := cache.NewSharded(1<<24, 8, func() cache.Policy { return cache.NewLRU() })
		indices := make([]int, 32)
		for i := range indices {
			indices[i] = i
			if err := c.Put(cache.EntryID{Key: "obj", Index: i}, bytes.Repeat([]byte{byte(i)}, 64)); err != nil {
				t.Fatal(err)
			}
		}
		bp := wire.NewBufferPool()
		var calls atomic.Int32
		base := cacheHandler(c, nil, coherence.NewVersionTable(), nil, bp)
		counting := func(m wire.Message) wire.Message { calls.Add(1); return base(m) }
		d := newDispatcher(counting, &cacheRouter{c: c, splitMin: splitMin}, new(atomic.Int64), nil, nil)
		defer d.stop()

		reply := make(chan wire.Message, 1)
		d.dispatch(wire.Message{Header: wire.Header{Op: wire.OpMGet, Key: "obj", Indices: indices}}, reply)
		resp := <-reply
		// Flatten the (possibly vectored, pooled) reply the way the socket
		// write would, then decode it back like a client.
		frame, err := wire.Encode(resp)
		if err != nil {
			t.Fatal(err)
		}
		resp.Release()
		back, err := wire.Decode(frame[4:])
		if err != nil {
			t.Fatal(err)
		}
		got, err := wire.UnpackBatch(back.Header.Indices, back.Header.Sizes, back.Body)
		if err != nil {
			t.Fatal(err)
		}
		if n := bp.Outstanding(); n != 0 {
			t.Fatalf("splitMin=%d leaked %d pooled buffers", splitMin, n)
		}
		return calls.Load(), got
	}

	splitCalls, splitGot := run(0)       // always split
	wholeCalls, wholeGot := run(1 << 30) // never split
	if wholeCalls != 1 {
		t.Fatalf("thresholded dispatch executed mget as %d handler calls, want 1", wholeCalls)
	}
	if splitCalls < 2 {
		t.Fatalf("always-split dispatch executed mget as %d handler calls, want several", splitCalls)
	}
	if len(splitGot) != 32 || len(wholeGot) != 32 {
		t.Fatalf("result sizes: split %d, whole %d, want 32", len(splitGot), len(wholeGot))
	}
	for idx, want := range splitGot {
		if !bytes.Equal(wholeGot[idx], want) {
			t.Fatalf("chunk %d differs between split and whole routing", idx)
		}
	}
}
