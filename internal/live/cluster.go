package live

import (
	"fmt"
	"sync"
	"time"

	"github.com/agardist/agar/internal/backend"
	"github.com/agardist/agar/internal/cache"
	"github.com/agardist/agar/internal/core"
	"github.com/agardist/agar/internal/erasure"
	"github.com/agardist/agar/internal/geo"
	"github.com/agardist/agar/internal/netsim"
)

// ClusterConfig sizes a localhost deployment of the full system.
type ClusterConfig struct {
	// Regions to deploy (default: the paper's six).
	Regions []geo.RegionID
	// K, M are the erasure-code parameters.
	K, M int
	// ClientRegion hosts the Agar node whose cache and hints are served.
	ClientRegion geo.RegionID
	// CacheBytes bounds the Agar node's cache; ChunkBytes is the slot unit.
	CacheBytes, ChunkBytes int64
	// ReconfigPeriod is the node's wall-clock reconfiguration period.
	ReconfigPeriod time.Duration
	// Matrix is the emulated wide-area latency model (default matrix when
	// nil); DelayScale compresses its delays for fast local runs (e.g.
	// 0.01 turns 980 ms into 9.8 ms). Zero scale disables delay injection.
	Matrix     *geo.LatencyMatrix
	DelayScale float64
	// Schedule, when set, overlays time-varying chaos (latency shifts and
	// link cuts) on the emulated WAN, evaluated against the wall clock.
	// Readers skip chunks behind severed links at fetch-planning time, the
	// way a real client's failure detector steers around a partition.
	Schedule *netsim.Schedule
	// UseUDPHints selects the UDP hint channel instead of TCP.
	UseUDPHints bool
}

// Cluster is a running localhost deployment: one store server per region,
// the client region's cache server and hint service, and the Agar node
// driving reconfiguration on the wall clock.
type Cluster struct {
	cfg     ClusterConfig
	codec   *erasure.Codec
	cluster *backend.Cluster
	node    *core.Node

	storeSrvs map[geo.RegionID]*Server
	cacheSrv  *Server
	hintSrv   *Server
	udpSrv    *UDPHintServer

	closeOnce sync.Once
}

// StartCluster boots every role on ephemeral localhost ports.
func StartCluster(cfg ClusterConfig) (*Cluster, error) {
	if len(cfg.Regions) == 0 {
		cfg.Regions = geo.DefaultRegions()
	}
	if cfg.K == 0 {
		cfg.K, cfg.M = 9, 3
	}
	if cfg.Matrix == nil {
		cfg.Matrix = geo.DefaultMatrix()
	}
	if cfg.ReconfigPeriod == 0 {
		cfg.ReconfigPeriod = 30 * time.Second
	}
	codec, err := erasure.New(cfg.K, cfg.M)
	if err != nil {
		return nil, err
	}
	placement := geo.NewRoundRobin(cfg.Regions, false)
	cluster := backend.NewCluster(cfg.Regions, codec, placement)

	c := &Cluster{
		cfg:       cfg,
		codec:     codec,
		cluster:   cluster,
		storeSrvs: make(map[geo.RegionID]*Server),
	}
	fail := func(err error) (*Cluster, error) {
		c.Close()
		return nil, err
	}

	for _, r := range cfg.Regions {
		srv, err := NewStoreServer("127.0.0.1:0", cluster.Store(r))
		if err != nil {
			return fail(err)
		}
		c.storeSrvs[r] = srv
	}

	c.node = core.NewNode(core.NodeParams{
		Region:         cfg.ClientRegion,
		Regions:        cfg.Regions,
		Placement:      placement,
		K:              cfg.K,
		M:              cfg.M,
		CacheBytes:     cfg.CacheBytes,
		ChunkBytes:     cfg.ChunkBytes,
		ReconfigPeriod: cfg.ReconfigPeriod,
		CacheLatency:   20 * time.Millisecond,
	})
	c.node.RegionManager().WarmUp(func(r geo.RegionID) time.Duration {
		return cfg.Matrix.Get(cfg.ClientRegion, r)
	}, 1)

	if c.cacheSrv, err = NewCacheServer("127.0.0.1:0", c.node.Cache()); err != nil {
		return fail(err)
	}
	if c.hintSrv, err = NewHintServer("127.0.0.1:0", c.node); err != nil {
		return fail(err)
	}
	if cfg.UseUDPHints {
		if c.udpSrv, err = NewUDPHintServer("127.0.0.1:0", c.node); err != nil {
			return fail(err)
		}
	}
	c.node.Start()
	return c, nil
}

// Node exposes the Agar node (for forcing reconfigurations in tests).
func (c *Cluster) Node() *core.Node { return c.node }

// Backend exposes the in-process cluster for loading data.
func (c *Cluster) Backend() *backend.Cluster { return c.cluster }

// StoreAddr returns a region's store server address.
func (c *Cluster) StoreAddr(r geo.RegionID) string { return c.storeSrvs[r].Addr() }

// CacheAddr returns the client region's cache server address.
func (c *Cluster) CacheAddr() string { return c.cacheSrv.Addr() }

// HintAddr returns the TCP hint server address.
func (c *Cluster) HintAddr() string { return c.hintSrv.Addr() }

// UDPHintAddr returns the UDP hint address ("" if disabled).
func (c *Cluster) UDPHintAddr() string {
	if c.udpSrv == nil {
		return ""
	}
	return c.udpSrv.Addr()
}

// Close shuts every server down and stops the node.
func (c *Cluster) Close() {
	c.closeOnce.Do(func() {
		if c.node != nil {
			c.node.Stop()
		}
		for _, s := range c.storeSrvs {
			s.Close()
		}
		if c.cacheSrv != nil {
			c.cacheSrv.Close()
		}
		if c.hintSrv != nil {
			c.hintSrv.Close()
		}
		if c.udpSrv != nil {
			c.udpSrv.Close()
		}
	})
}

// Hinter abstracts the TCP and UDP hint clients.
type Hinter interface {
	Hint(key string) ([]int, error)
}

// NetworkReader reads objects through the live deployment: it requests a
// hint, fetches cached chunks from the cache server and the remaining
// nearest chunks from the store servers — all chunk fetches run in
// parallel goroutines, like the paper's thread-pooled YCSB client — then
// decodes. Wide-area delays are injected client-side, scaled by
// cfg.DelayScale.
type NetworkReader struct {
	cluster *Cluster
	region  geo.RegionID
	hinter  Hinter
	cacheC  *RemoteCache
	stores  map[geo.RegionID]*RemoteStore
	sampler *netsim.Sampler
}

// NewNetworkReader connects a reader to every server of the cluster.
func NewNetworkReader(c *Cluster, region geo.RegionID) (*NetworkReader, error) {
	var hinter Hinter
	if c.cfg.UseUDPHints {
		h, err := NewUDPHinter(c.UDPHintAddr())
		if err != nil {
			return nil, err
		}
		hinter = h
	} else {
		hinter = NewRemoteHinter(c.HintAddr())
	}
	stores := make(map[geo.RegionID]*RemoteStore, len(c.storeSrvs))
	for r, srv := range c.storeSrvs {
		stores[r] = NewRemoteStore(srv.Addr())
	}
	sampler := netsim.NewSampler(c.cfg.Matrix, 0, 1)
	if c.cfg.Schedule != nil {
		sampler.SetChaos(netsim.RealClock{}, c.cfg.Schedule)
	}
	return &NetworkReader{
		cluster: c,
		region:  region,
		hinter:  hinter,
		cacheC:  NewRemoteCache(c.CacheAddr()),
		stores:  stores,
		sampler: sampler,
	}, nil
}

// Close drops every connection.
func (r *NetworkReader) Close() {
	if h, ok := r.hinter.(interface{ Close() }); ok {
		h.Close()
	}
	r.cacheC.Close()
	for _, s := range r.stores {
		s.Close()
	}
}

// delay sleeps for the scaled wide-area latency of one chunk read.
func (r *NetworkReader) delay(to geo.RegionID) {
	if r.cluster.cfg.DelayScale <= 0 {
		return
	}
	lat := r.sampler.Chunk(r.region, to)
	time.Sleep(time.Duration(float64(lat) * r.cluster.cfg.DelayScale))
}

// Read fetches and decodes one object over the network and returns its
// bytes, the wall-clock latency, and the number of chunks served from the
// cache.
func (r *NetworkReader) Read(key string) ([]byte, time.Duration, int, error) {
	start := time.Now()
	k := r.cluster.codec.K()
	total := r.cluster.codec.Total()

	hintChunks, err := r.hinter.Hint(key)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("live: hint %q: %w", key, err)
	}

	plan := geo.PlanFetch(r.cluster.cfg.Matrix, r.cluster.cluster.Placement(), key, total, r.region)
	locs := r.cluster.cluster.Placement().Locate(key, total)
	hinted := make(map[int]bool, len(hintChunks))
	for _, idx := range hintChunks {
		hinted[idx] = true
	}

	// Choose the k chunks to fetch: hinted first, then nearest others —
	// steering around regions the chaos schedule has severed.
	want := append([]int(nil), hintChunks...)
	for _, idx := range plan.Chunks {
		if len(want) == k {
			break
		}
		if hinted[idx] || r.sampler.Unreachable(r.region, locs[idx]) {
			continue
		}
		want = append(want, idx)
	}
	if len(want) > k {
		want = want[:k]
	}

	type outcome struct {
		idx       int
		data      []byte
		fromCache bool
		err       error
	}
	results := make(chan outcome, len(want))
	var wg sync.WaitGroup
	for _, idx := range want {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			if hinted[idx] {
				if data, err := r.cacheC.Get(cache.EntryID{Key: key, Index: idx}); err == nil {
					results <- outcome{idx: idx, data: data, fromCache: true}
					return
				}
				// Hinted but missing: fall through to the backend.
			}
			if r.sampler.Unreachable(r.region, locs[idx]) {
				results <- outcome{idx: idx, err: fmt.Errorf("live: region %v unreachable", locs[idx])}
				return
			}
			r.delay(locs[idx])
			data, err := r.stores[locs[idx]].Get(backend.ChunkID{Key: key, Index: idx})
			results <- outcome{idx: idx, data: data, err: err}
		}(idx)
	}
	wg.Wait()
	close(results)

	chunks := make([][]byte, total)
	got, fromCache := 0, 0
	var toCache []outcome
	for o := range results {
		if o.err != nil {
			continue
		}
		chunks[o.idx] = o.data
		got++
		if o.fromCache {
			fromCache++
		} else if hinted[o.idx] {
			toCache = append(toCache, o)
		}
	}
	if got < k {
		return nil, time.Since(start), fromCache, fmt.Errorf("live: only %d of %d chunks for %q", got, k, key)
	}
	data, err := r.cluster.codec.Decode(chunks)
	if err != nil {
		return nil, time.Since(start), fromCache, err
	}
	elapsed := time.Since(start)

	// Populate hinted-but-missing chunks off the measured path.
	for _, o := range toCache {
		_ = r.cacheC.Put(cache.EntryID{Key: key, Index: o.idx}, o.data)
	}
	return data, elapsed, fromCache, nil
}
