package live

import (
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"github.com/agardist/agar/internal/backend"
	"github.com/agardist/agar/internal/cache"
	"github.com/agardist/agar/internal/coherence"
	"github.com/agardist/agar/internal/coop"
	"github.com/agardist/agar/internal/core"
	"github.com/agardist/agar/internal/erasure"
	"github.com/agardist/agar/internal/geo"
	"github.com/agardist/agar/internal/metrics"
	"github.com/agardist/agar/internal/monitor"
	"github.com/agardist/agar/internal/netsim"
	"github.com/agardist/agar/internal/store"
	"github.com/agardist/agar/internal/trace"
)

// ClusterConfig sizes a localhost deployment of the full system.
type ClusterConfig struct {
	// Regions to deploy (default: the paper's six).
	Regions []geo.RegionID
	// K, M are the erasure-code parameters.
	K, M int
	// ClientRegion hosts the Agar node whose cache and hints are served.
	ClientRegion geo.RegionID
	// CacheBytes bounds the Agar node's cache; ChunkBytes is the slot unit.
	CacheBytes, ChunkBytes int64
	// ReconfigPeriod is the node's wall-clock reconfiguration period.
	ReconfigPeriod time.Duration
	// Matrix is the emulated wide-area latency model (default matrix when
	// nil); DelayScale compresses its delays for fast local runs (e.g.
	// 0.01 turns 980 ms into 9.8 ms). Zero scale disables delay injection.
	Matrix     *geo.LatencyMatrix
	DelayScale float64
	// Schedule, when set, overlays time-varying chaos (latency shifts and
	// link cuts) on the emulated WAN, evaluated against the wall clock.
	// Readers skip chunks behind severed links at fetch-planning time, the
	// way a real client's failure detector steers around a partition.
	Schedule *netsim.Schedule
	// UseUDPHints selects the UDP hint channel instead of TCP.
	UseUDPHints bool
	// DigestPeriod is how often the cooperative-mesh advertiser pushes
	// residency digests to peered clusters (default 1s; only runs once
	// Peer has been called).
	DigestPeriod time.Duration
	// Store selects the blob-store backend chunk persistence delegates to:
	// in-memory (default), an on-disk object layout, or a remote S3-style
	// gateway (cmd/blob-server), optionally chaos-wrapped. The cluster owns
	// the opened adapter and closes it with Close.
	Store store.Config
	// Dispatch selects how the cache and store servers schedule decoded
	// frames: per-shard worker pools (DispatchShard, the default) or the
	// per-connection serialized loops kept as the paired baseline
	// (DispatchConn).
	Dispatch Dispatch
	// SplitMinBytes is the cache server's size-aware batch-split threshold
	// (ServerOptions.SplitMinBytes): multi-shard batches estimated below
	// this many body bytes route whole to one shard worker instead of
	// fanning out. Zero always splits.
	SplitMinBytes int
	// MetricsAddr, when non-empty, serves the cluster's shared metrics
	// registry over HTTP at /metrics (Prometheus text format) — every
	// server's families plus the client read path's, in one scrape.
	// "127.0.0.1:0" picks an ephemeral port (see MetricsAddr()).
	MetricsAddr string
	// Clock, when set, replaces the wall clock for derived staleness
	// measurements (coop digest ages) so harnesses on virtual time get
	// deterministic digest_age_ms values.
	Clock netsim.Clock
}

// Cluster is a running localhost deployment: one store server per region,
// the client region's cache server and hint service, and the Agar node
// driving reconfiguration on the wall clock.
type Cluster struct {
	cfg     ClusterConfig
	codec   *erasure.Codec
	cluster *backend.Cluster
	blob    store.BlobStore
	node    *core.Node

	storeSrvs map[geo.RegionID]*Server
	cacheSrv  *Server
	hintSrv   *Server
	udpSrv    *UDPHintServer

	// versions is the cluster-wide version-floor table: the cache server
	// admits versioned mutations against it, incoming digests raise it, and
	// readers consult it as the local bounded-staleness floor.
	versions *coherence.VersionTable

	// Cooperative mesh state: the table mirrors peers' digests, the
	// advertiser pushes this cluster's own residency out.
	table   *coop.Table
	adv     *coop.Advertiser
	peerMu  sync.Mutex
	peers   []PeerLink
	peerRCs []*RemoteCache

	// Observability: every server and every reader of this cluster reports
	// into one registry; the optional HTTP endpoint serves it at /metrics
	// plus /debug/traces and /debug/pprof. rec is the shared flight
	// recorder every server of this cluster records into.
	reg        *metrics.Registry
	rec        *trace.Recorder
	metricsLn  net.Listener
	metricsSrv *http.Server

	// Client-side population backpressure, aggregated across this cluster's
	// readers: live pools are summed at gather time, and a closed reader's
	// dropped count folds into the base so the counter never goes backward.
	popMu       sync.Mutex
	populators  []*populator
	popDroppedC int64

	closeOnce sync.Once
}

// PeerLink is one cooperative peer this cluster reads from: its region,
// its cache server's address, the client-to-peer chunk latency, and the
// local mirror of its advertised residency.
type PeerLink struct {
	Region  geo.RegionID
	Addr    string
	Latency time.Duration
	Mirror  *coop.Mirror
}

// StartCluster boots every role on ephemeral localhost ports.
func StartCluster(cfg ClusterConfig) (*Cluster, error) {
	if len(cfg.Regions) == 0 {
		cfg.Regions = geo.DefaultRegions()
	}
	if cfg.K == 0 {
		cfg.K, cfg.M = 9, 3
	}
	if cfg.Matrix == nil {
		cfg.Matrix = geo.DefaultMatrix()
	}
	if cfg.ReconfigPeriod == 0 {
		cfg.ReconfigPeriod = 30 * time.Second
	}
	codec, err := erasure.New(cfg.K, cfg.M)
	if err != nil {
		return nil, err
	}
	placement := geo.NewRoundRobin(cfg.Regions, false)
	blob, err := store.Open(cfg.Store)
	if err != nil {
		return nil, fmt.Errorf("live: open blob store: %w", err)
	}
	reg := metrics.NewRegistry()
	kind := cfg.Store.Kind
	if kind == "" {
		kind = store.KindMem
	}
	blob = store.WithMetrics(blob, reg, kind)
	cluster := backend.NewClusterOn(cfg.Regions, codec, placement, blob)

	c := &Cluster{
		cfg:       cfg,
		codec:     codec,
		cluster:   cluster,
		blob:      blob,
		storeSrvs: make(map[geo.RegionID]*Server),
		versions:  coherence.NewVersionTable(),
		reg:       reg,
		rec:       trace.NewRecorder(),
	}
	fail := func(err error) (*Cluster, error) {
		c.Close()
		return nil, err
	}

	for _, r := range cfg.Regions {
		srv, err := NewStoreServerOpts("127.0.0.1:0", cluster.Store(r), ServerOptions{
			Dispatch: cfg.Dispatch, Registry: c.reg, Region: r.String(), Recorder: c.rec,
		})
		if err != nil {
			return fail(err)
		}
		c.storeSrvs[r] = srv
	}

	c.node = core.NewNode(core.NodeParams{
		Region:         cfg.ClientRegion,
		Regions:        cfg.Regions,
		Placement:      placement,
		K:              cfg.K,
		M:              cfg.M,
		CacheBytes:     cfg.CacheBytes,
		ChunkBytes:     cfg.ChunkBytes,
		ReconfigPeriod: cfg.ReconfigPeriod,
		CacheLatency:   20 * time.Millisecond,
	})
	c.node.RegionManager().WarmUp(func(r geo.RegionID) time.Duration {
		return cfg.Matrix.Get(cfg.ClientRegion, r)
	}, 1)

	c.table = coop.NewTable()
	if cfg.Clock != nil {
		c.table.SetClock(cfg.Clock.Now)
	}
	c.adv = coop.NewAdvertiser(cfg.ClientRegion.String(), c.node.Cache(), cfg.DigestPeriod)
	if c.cacheSrv, err = NewCacheServerOpts("127.0.0.1:0", c.node.Cache(), c.table, ServerOptions{
		Dispatch: cfg.Dispatch, Registry: c.reg, Region: cfg.ClientRegion.String(),
		SplitMinBytes: cfg.SplitMinBytes, Recorder: c.rec, Versions: c.versions,
	}); err != nil {
		return fail(err)
	}
	if c.hintSrv, err = NewHintServerRec("127.0.0.1:0", c.node, c.rec); err != nil {
		return fail(err)
	}
	if cfg.UseUDPHints {
		if c.udpSrv, err = NewUDPHintServer("127.0.0.1:0", c.node); err != nil {
			return fail(err)
		}
	}
	c.reg.NewGaugeFunc(metrics.NamePopulationQueueDepth,
		"Async cache fills queued but not yet applied, summed over this cluster's live readers.",
		func() float64 { return float64(c.populationDepth()) })
	c.reg.NewCounterFunc(metrics.NamePopulationDropped,
		"Async cache fills shed because a reader's population queue was full.",
		func() float64 { return float64(c.populationDropped()) })
	if cfg.MetricsAddr != "" {
		ln, err := net.Listen("tcp", cfg.MetricsAddr)
		if err != nil {
			return fail(fmt.Errorf("live: metrics listen %s: %w", cfg.MetricsAddr, err))
		}
		mux := http.NewServeMux()
		health := monitor.NewRegistryHealth("cluster", c.reg, monitor.DefaultServerRules())
		metrics.MountDebug(mux, c.reg, c.rec, health)
		c.metricsLn = ln
		c.metricsSrv = &http.Server{Handler: mux}
		go func() { _ = c.metricsSrv.Serve(ln) }()
	}
	c.node.Start()
	return c, nil
}

// Registry exposes the cluster's shared metrics registry — every server's
// families plus the client read path's. Scrape it over HTTP by setting
// ClusterConfig.MetricsAddr, or read it in-process here.
func (c *Cluster) Registry() *metrics.Registry { return c.reg }

// Recorder exposes the cluster's shared flight recorder: every store,
// cache, and hint server of this cluster records its slowest and errored
// ops into it. Served at /debug/traces when MetricsAddr is set, or read
// in-process here.
func (c *Cluster) Recorder() *trace.Recorder { return c.rec }

// MetricsAddr returns the bound /metrics address ("" when disabled).
func (c *Cluster) MetricsAddr() string {
	if c.metricsLn == nil {
		return ""
	}
	return c.metricsLn.Addr().String()
}

// addPopulator registers a reader's population pool with the cluster-wide
// backpressure metrics.
func (c *Cluster) addPopulator(p *populator) {
	c.popMu.Lock()
	c.populators = append(c.populators, p)
	c.popMu.Unlock()
}

// removePopulator folds a closing reader's dropped count into the base (so
// the cluster-wide counter stays monotonic) and stops summing its depth.
func (c *Cluster) removePopulator(p *populator) {
	c.popMu.Lock()
	for i, q := range c.populators {
		if q == p {
			c.populators = append(c.populators[:i], c.populators[i+1:]...)
			c.popDroppedC += p.droppedCount()
			break
		}
	}
	c.popMu.Unlock()
}

func (c *Cluster) populationDepth() int {
	c.popMu.Lock()
	defer c.popMu.Unlock()
	depth := 0
	for _, p := range c.populators {
		depth += p.depth()
	}
	return depth
}

func (c *Cluster) populationDropped() int64 {
	c.popMu.Lock()
	defer c.popMu.Unlock()
	dropped := c.popDroppedC
	for _, p := range c.populators {
		dropped += p.droppedCount()
	}
	return dropped
}

// Node exposes the Agar node (for forcing reconfigurations in tests).
func (c *Cluster) Node() *core.Node { return c.node }

// Backend exposes the in-process cluster for loading data.
func (c *Cluster) Backend() *backend.Cluster { return c.cluster }

// Blob exposes the blob-store adapter the backend persists chunks in.
func (c *Cluster) Blob() store.BlobStore { return c.blob }

// StoreAddr returns a region's store server address.
func (c *Cluster) StoreAddr(r geo.RegionID) string { return c.storeSrvs[r].Addr() }

// CacheAddr returns the client region's cache server address.
func (c *Cluster) CacheAddr() string { return c.cacheSrv.Addr() }

// CacheQueueDepth samples the cache server's shard-dispatch queue depth
// (always 0 under conn dispatch) — the dispatch_queue_depth gauge, readable
// in-process for benchmarks that poll it mid-run.
func (c *Cluster) CacheQueueDepth() int64 { return c.cacheSrv.QueueDepth() }

// HintAddr returns the TCP hint server address.
func (c *Cluster) HintAddr() string { return c.hintSrv.Addr() }

// UDPHintAddr returns the UDP hint address ("" if disabled).
func (c *Cluster) UDPHintAddr() string {
	if c.udpSrv == nil {
		return ""
	}
	return c.udpSrv.Addr()
}

// Peer joins this cluster to a cooperative peer: the peer's digests
// (arriving at this cluster's cache server) maintain a residency mirror
// that plugs into the node's knapsack accounting, this cluster's own
// digests start flowing to the peer's cache server, and readers created
// after the call consult the mirror to fetch covered chunks from the peer
// at peer latency before falling back to WAN store fetches. Call it on
// both clusters for a symmetric mesh.
func (c *Cluster) Peer(region geo.RegionID, cacheAddr string, latency time.Duration) {
	mirror := c.table.Mirror(region.String())
	c.node.AddPeer(region, mirror, latency)
	rc := NewRemoteCache(cacheAddr)
	c.adv.AddTarget(region.String(), rc)
	c.peerMu.Lock()
	c.peers = append(c.peers, PeerLink{Region: region, Addr: cacheAddr, Latency: latency, Mirror: mirror})
	c.peerRCs = append(c.peerRCs, rc)
	c.peerMu.Unlock()
	c.adv.Start() // idempotent: the first peer starts the push loop
}

// Peers returns the cluster's cooperative peer links.
func (c *Cluster) Peers() []PeerLink {
	c.peerMu.Lock()
	defer c.peerMu.Unlock()
	out := make([]PeerLink, len(c.peers))
	copy(out, c.peers)
	return out
}

// PushDigests advertises this cluster's residency to every peer now,
// synchronously, and reports how many peers failed — the deterministic
// alternative to waiting out a DigestPeriod in tests and smoke runs.
func (c *Cluster) PushDigests() int { return c.adv.Advertise() }

// CoopTable exposes the cluster's mirror table (for stats and tests).
func (c *Cluster) CoopTable() *coop.Table { return c.table }

// Versions exposes the cluster-wide version-floor table the cache server
// and this cluster's readers share.
func (c *Cluster) Versions() *coherence.VersionTable { return c.versions }

// Advertiser exposes the cluster's digest advertiser (for stats and tests).
func (c *Cluster) Advertiser() *coop.Advertiser { return c.adv }

// Close shuts every server down and stops the node.
func (c *Cluster) Close() {
	c.closeOnce.Do(func() {
		if c.adv != nil {
			c.adv.Stop()
		}
		c.peerMu.Lock()
		for _, rc := range c.peerRCs {
			rc.Close()
		}
		c.peerMu.Unlock()
		if c.node != nil {
			c.node.Stop()
		}
		for _, s := range c.storeSrvs {
			s.Close()
		}
		if c.cacheSrv != nil {
			c.cacheSrv.Close()
		}
		if c.hintSrv != nil {
			c.hintSrv.Close()
		}
		if c.udpSrv != nil {
			c.udpSrv.Close()
		}
		if c.metricsSrv != nil {
			c.metricsSrv.Close()
		}
		if c.blob != nil {
			c.blob.Close()
		}
	})
}

// Hinter abstracts the TCP and UDP hint clients.
type Hinter interface {
	Hint(key string) ([]int, error)
}

// ctxHinter is the optional traced form of Hinter: the TCP hint client
// implements it; the single-datagram UDP channel stays untraced, exactly
// as the paper's low-overhead hint path would.
type ctxHinter interface {
	HintCtx(ctx trace.Context, key string) ([]int, []trace.Annotation, error)
}

// NetworkReader reads objects through the live deployment: it requests a
// hint, fetches all hinted chunks from the cache server in one batched
// round trip, reads chunks the cooperative mesh advertises out of peer
// caches at peer latency, and fetches the remaining nearest chunks from
// the store servers in parallel goroutines — like the paper's
// thread-pooled YCSB client — then decodes. A chunk fetch that dies
// mid-flight triggers degraded-read waves over the remaining reachable
// regions, a peer chunk evicted since its last digest falls through to the
// same store path, and hinted chunks that missed the cache are written
// back through a bounded async population pool so the read path never
// blocks on cache fills. Wide-area delays are injected client-side, scaled
// by cfg.DelayScale.
type NetworkReader struct {
	cluster *Cluster
	region  geo.RegionID
	hinter  Hinter
	cacheC  *RemoteCache
	stores  map[geo.RegionID]*RemoteStore
	peers   []readerPeer
	sampler *netsim.Sampler
	pop     *populator
	// staleDrops counts cache and peer chunks discarded because their write
	// version was below the read's target — the client-visible half of an
	// invalidation racing a read.
	staleDrops *metrics.Counter
}

// readerPeer is one cooperative peer as seen from a reader: the mirror the
// mesh maintains plus a batched client to the peer's cache server, tagged
// with this reader's region so the peer accounts the traffic. rtt records
// each batched peer exchange's observed round trip (injected delay
// included) — the measured replacement-in-waiting for the static latency.
type readerPeer struct {
	region  geo.RegionID
	latency time.Duration
	mirror  *coop.Mirror
	cache   *RemoteCache
	rtt     *metrics.Histogram
}

// peerRTTBuckets cover observed peer round trips in milliseconds: 0.25 ms
// (loopback) through ~2 s (an unscaled WAN worst case).
var peerRTTBuckets = metrics.ExponentialBuckets(0.25, 2, 14)

// NewNetworkReader connects a reader to every server of the cluster,
// including the cache servers of peers joined (via Cluster.Peer) before
// the reader was created.
func NewNetworkReader(c *Cluster, region geo.RegionID) (*NetworkReader, error) {
	var hinter Hinter
	if c.cfg.UseUDPHints {
		h, err := NewUDPHinter(c.UDPHintAddr())
		if err != nil {
			return nil, err
		}
		hinter = h
	} else {
		hinter = NewRemoteHinter(c.HintAddr())
	}
	stores := make(map[geo.RegionID]*RemoteStore, len(c.storeSrvs))
	for r, srv := range c.storeSrvs {
		stores[r] = NewRemoteStore(srv.Addr())
	}
	sampler := netsim.NewSampler(c.cfg.Matrix, 0, 1)
	if c.cfg.Schedule != nil {
		sampler.SetChaos(netsim.RealClock{}, c.cfg.Schedule)
	}
	cacheC := NewRemoteCache(c.CacheAddr())
	rttVec := c.reg.NewHistogramVec(metrics.NameCoopPeerRTTMS,
		"Observed round trip of one batched peer-cache exchange in milliseconds, injected WAN delay included.",
		peerRTTBuckets, "peer")
	var peers []readerPeer
	for _, link := range c.Peers() {
		peers = append(peers, readerPeer{
			region:  link.Region,
			latency: link.Latency,
			mirror:  link.Mirror,
			cache:   NewPeerRemoteCache(link.Addr, region.String()),
			rtt:     rttVec.With(link.Region.String()),
		})
	}
	r := &NetworkReader{
		cluster: c,
		region:  region,
		hinter:  hinter,
		cacheC:  cacheC,
		stores:  stores,
		peers:   peers,
		sampler: sampler,
		pop:     newPopulator(cacheC, populateWorkers, populateQueue),
		staleDrops: c.reg.NewCounterVec(metrics.NameClientStaleDrops,
			"Cache and peer chunks a reader discarded because their write version was below the read's target.",
			"region").With(region.String()),
	}
	c.addPopulator(r.pop)
	return r, nil
}

// populateWorkers and populateQueue bound the async cache population pool:
// two writers are plenty for batched fills, and a 64-job queue absorbs read
// bursts before fills start being shed.
const (
	populateWorkers = 2
	populateQueue   = 64
)

// FlushPopulation blocks until every queued async cache fill has been
// applied — deterministic sequencing for tests and benchmarks that read
// their own writes.
func (r *NetworkReader) FlushPopulation() { r.pop.flush() }

// PopulationBackPressure reports the async cache-fill pool's load: fills
// queued but not yet applied, and fills shed because the queue was full.
// Sustained depth near the queue bound (or a climbing drop count) means
// reads outpace the cache server's fill path — the client-side signal that
// pairs with the server's dispatch_queue_depth gauge.
func (r *NetworkReader) PopulationBackPressure() (depth int, dropped int64) {
	return r.pop.depth(), r.pop.droppedCount()
}

// Close drains the population pool and drops every connection.
func (r *NetworkReader) Close() {
	r.cluster.removePopulator(r.pop)
	r.pop.close()
	if h, ok := r.hinter.(interface{ Close() }); ok {
		h.Close()
	}
	r.cacheC.Close()
	for _, p := range r.peers {
		p.cache.Close()
	}
	for _, s := range r.stores {
		s.Close()
	}
}

// delay sleeps for the scaled wide-area latency of one chunk read.
func (r *NetworkReader) delay(to geo.RegionID) {
	if r.cluster.cfg.DelayScale <= 0 {
		return
	}
	lat := r.sampler.Chunk(r.region, to)
	r.delayDur(lat)
}

// delayDur sleeps for a fixed latency, scaled like every injected delay.
func (r *NetworkReader) delayDur(lat time.Duration) {
	if r.cluster.cfg.DelayScale <= 0 {
		return
	}
	time.Sleep(time.Duration(float64(lat) * r.cluster.cfg.DelayScale))
}

// ReadInfo is the accounting of one live read.
type ReadInfo struct {
	// Latency is the wall-clock end-to-end read time.
	Latency time.Duration
	// CacheChunks counts chunks served by the local region's cache.
	CacheChunks int
	// PeerChunks counts chunks served by cooperative peer caches.
	PeerChunks int
	// StaleDrops counts chunks discarded mid-read because their write
	// version was below the read's target (a concurrent write or a pending
	// invalidation); dropped chunks are refetched from the stores.
	StaleDrops int
	// Version is the write version the read settled on: the maximum of the
	// session floor, the local invalidation floor, and every fetched chunk's
	// version. Zero for never-versioned objects.
	Version uint64
	// Trace is the read's span breakdown: every network exchange (hint,
	// batched cache/peer/store round trips, degraded waves, store faults)
	// with offsets, durations, chunk and byte counts.
	Trace *ReadTrace
}

// Read fetches and decodes one object over the network and returns its
// bytes, the wall-clock latency, and the number of chunks served from the
// local cache. ReadDetailed additionally reports peer-served chunks.
func (r *NetworkReader) Read(key string) ([]byte, time.Duration, int, error) {
	data, info, err := r.ReadDetailed(key)
	return data, info.Latency, info.CacheChunks, err
}

// ReadDetailed fetches and decodes one object over the network and returns
// its bytes plus the read's full accounting. Every read mints a trace
// context that propagates on each wire exchange (hint, cache mget, peer
// mgets, store fetches), so the returned trace nests real server-side
// queue-wait and execute annotations under the client's spans and the
// servers' flight recorders retain the read's ops under the same trace ID
// (ReadTrace.TraceID).
func (r *NetworkReader) ReadDetailed(key string) ([]byte, ReadInfo, error) {
	return r.readDetailed(key, 0)
}

// ReadSession is ReadDetailed under a session's coherence floor: chunks
// older than the session's last write of the key are never decoded
// (read-your-writes), and a successful read advances the floor to the
// version it observed (monotonic reads). A nil session reads like
// ReadDetailed.
func (r *NetworkReader) ReadSession(key string, sess *Session) ([]byte, ReadInfo, error) {
	var floor uint64
	if sess != nil {
		floor = sess.Floor(key)
	}
	data, info, err := r.readDetailed(key, floor)
	if err == nil && sess != nil {
		sess.Observe(key, info.Version)
	}
	return data, info, err
}

// readDetailed is the read path under a version floor: every fetched chunk
// below max(floor, local invalidation floor, newest fetched version) is
// discarded and refetched from the stores, so a read never mixes chunk
// generations and never returns data older than the floor.
func (r *NetworkReader) readDetailed(key string, floor uint64) ([]byte, ReadInfo, error) {
	start := time.Now()
	tc := newTraceCollector(start)
	tc.ctx = trace.New()
	k := r.cluster.codec.K()
	total := r.cluster.codec.Total()

	hintT0 := time.Now()
	var hintChunks []int
	var hintAnns []trace.Annotation
	var err error
	if th, ok := r.hinter.(ctxHinter); ok {
		hintChunks, hintAnns, err = th.HintCtx(tc.ctx.Child(), key)
	} else {
		hintChunks, err = r.hinter.Hint(key)
	}
	tc.spanRemote("hint", hintT0, 0, 0, err, hintAnns)
	if err != nil {
		return nil, ReadInfo{Trace: tc.finish(key)}, fmt.Errorf("live: hint %q: %w", key, err)
	}

	plan := geo.PlanFetch(r.cluster.cfg.Matrix, r.cluster.cluster.Placement(), key, total, r.region)
	locs := r.cluster.cluster.Placement().Locate(key, total)
	hinted := make(map[int]bool, len(hintChunks))
	for _, idx := range hintChunks {
		hinted[idx] = true
	}

	// Route chunks through the cooperative mesh: a chunk not hinted locally
	// whose cheapest reachable peer advertises it (and beats its
	// home-region latency) is read from that peer instead of the WAN. The
	// mirror is advisory — a stale entry just means the peer read misses
	// and the chunk detours to the store path below.
	peerRoute := make(map[int]*readerPeer)
	if len(r.peers) > 0 {
		for i, idx := range plan.Chunks {
			if hinted[idx] {
				continue
			}
			for pi := range r.peers {
				p := &r.peers[pi]
				if int64(p.latency) >= plan.Latency[i] {
					continue
				}
				if r.sampler.Unreachable(r.region, p.region) {
					continue
				}
				if !p.mirror.Contains(cache.EntryID{Key: key, Index: idx}) {
					continue
				}
				if cur, ok := peerRoute[idx]; !ok || p.latency < cur.latency {
					peerRoute[idx] = p
				}
			}
		}
	}

	// Choose the k chunks to fetch: hinted first, then cheapest others by
	// effective latency (peer-covered chunks count at peer latency) —
	// steering around regions the chaos schedule has severed.
	type cand struct {
		idx int
		lat int64
	}
	cands := make([]cand, 0, len(plan.Chunks))
	for i, idx := range plan.Chunks {
		lat := plan.Latency[i]
		if p, ok := peerRoute[idx]; ok && int64(p.latency) < lat {
			lat = int64(p.latency)
		}
		cands = append(cands, cand{idx: idx, lat: lat})
	}
	sort.SliceStable(cands, func(a, b int) bool {
		if cands[a].lat != cands[b].lat {
			return cands[a].lat < cands[b].lat
		}
		return cands[a].idx < cands[b].idx
	})
	want := append([]int(nil), hintChunks...)
	for _, cn := range cands {
		if len(want) == k {
			break
		}
		idx := cn.idx
		if hinted[idx] {
			continue
		}
		if peerRoute[idx] == nil && r.sampler.Unreachable(r.region, locs[idx]) {
			continue
		}
		want = append(want, idx)
	}
	if len(want) > k {
		want = want[:k]
	}

	type outcome struct {
		idx       int
		data      []byte
		ver       uint64 // the chunk's write version; zero for legacy data
		fromCache bool
		fromPeer  bool
		err       error
	}
	// Buffered for the worst case: every wanted chunk misses the cache (or
	// its peer) and retries against the backend.
	results := make(chan outcome, 2*len(want))
	var wg sync.WaitGroup
	fetchStore := func(idx int) { // callers wg.Add before spawning
		defer wg.Done()
		t0 := time.Now()
		if r.sampler.Unreachable(r.region, locs[idx]) {
			err := fmt.Errorf("live: region %v unreachable", locs[idx])
			tc.span("store-get:"+locs[idx].String(), t0, 0, 0, err)
			results <- outcome{idx: idx, err: err}
			return
		}
		r.delay(locs[idx])
		data, ver, anns, err := r.stores[locs[idx]].GetVerCtx(tc.ctx.Child(), backend.ChunkID{Key: key, Index: idx})
		got := 0
		if err == nil {
			got = 1
		}
		tc.spanRemote("store-get:"+locs[idx].String(), t0, got, len(data), err, anns)
		results <- outcome{idx: idx, data: data, ver: ver, err: err}
	}

	// Hinted chunks travel in one batched cache round trip, peer-covered
	// chunks in one batched round trip per peer, and the rest in one
	// batched round trip per store region — so a region whose store proxies
	// a remote blob gateway costs one upstream exchange, not one per chunk.
	var cacheWant []int
	peerWant := make(map[*readerPeer][]int)
	storeWant := make(map[geo.RegionID][]int)
	for _, idx := range want {
		switch {
		case hinted[idx]:
			cacheWant = append(cacheWant, idx)
		case peerRoute[idx] != nil:
			p := peerRoute[idx]
			peerWant[p] = append(peerWant[p], idx)
		default:
			storeWant[locs[idx]] = append(storeWant[locs[idx]], idx)
		}
	}
	for region, idxs := range storeWant {
		wg.Add(1)
		go func(region geo.RegionID, idxs []int) {
			defer wg.Done()
			t0 := time.Now()
			if r.sampler.Unreachable(r.region, region) {
				err := fmt.Errorf("live: region %v unreachable", region)
				tc.span("store-mget:"+region.String(), t0, 0, 0, err)
				for _, idx := range idxs {
					results <- outcome{idx: idx, err: err}
				}
				return
			}
			r.delay(region)
			found, vers, _, anns, err := r.stores[region].GetMultiVerCtx(tc.ctx.Child(), key, idxs)
			bytes := 0
			for _, data := range found {
				bytes += len(data)
			}
			tc.spanRemote("store-mget:"+region.String(), t0, len(found), bytes, err, anns)
			for _, idx := range idxs {
				data, ok := found[idx]
				if err != nil || !ok {
					// Failed exchange or chunk gone: the degraded-read waves
					// below substitute other chunks, exactly as a failed
					// single fetch would.
					results <- outcome{idx: idx, err: fmt.Errorf("live: chunk %d of %q missing in %v", idx, key, region)}
					continue
				}
				results <- outcome{idx: idx, data: data, ver: vers[idx]}
			}
		}(region, idxs)
	}
	if len(cacheWant) > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			t0 := time.Now()
			found, vers, anns, err := r.cacheC.GetMultiVerCtx(tc.ctx.Child(), key, cacheWant)
			if err != nil {
				found = nil // treat a failed cache round trip as all-miss
			}
			bytes := 0
			for _, data := range found {
				bytes += len(data)
			}
			tc.spanRemote("cache-mget", t0, len(found), bytes, err, anns)
			for _, idx := range cacheWant {
				if data, ok := found[idx]; ok {
					results <- outcome{idx: idx, data: data, ver: vers[idx], fromCache: true}
					continue
				}
				// Hinted but missing: fall through to the backend.
				wg.Add(1)
				go fetchStore(idx)
			}
		}()
	}
	for p, idxs := range peerWant {
		wg.Add(1)
		go func(p *readerPeer, idxs []int) {
			defer wg.Done()
			t0 := time.Now()
			r.delayDur(p.latency)
			found, vers, anns, err := p.cache.GetMultiVerCtx(tc.ctx.Child(), key, idxs)
			rtt := time.Since(t0)
			if p.rtt != nil {
				p.rtt.Observe(float64(rtt) / float64(time.Millisecond))
			}
			if err != nil {
				found = nil // a dead peer is an all-miss, never an error
			}
			bytes := 0
			for _, data := range found {
				bytes += len(data)
			}
			tc.spanRemote("peer-mget:"+p.region.String(), t0, len(found), bytes, err, anns)
			for _, idx := range idxs {
				if data, ok := found[idx]; ok {
					results <- outcome{idx: idx, data: data, ver: vers[idx], fromPeer: true}
					continue
				}
				// Stale digest: the peer evicted the chunk since its last
				// advertisement. Detour to the WAN store path.
				wg.Add(1)
				go fetchStore(idx)
			}
		}(p, idxs)
	}
	wg.Wait()
	close(results)

	// Collect into a per-index outcome map so stale filtering can discard a
	// chunk and let the degraded waves refetch it. The read target is the
	// newest version the read must not go behind: the caller's session
	// floor, the local invalidation floor, and every fetched chunk's version
	// all raise it.
	best := make(map[int]outcome, len(want))
	tried := make(map[int]bool, len(want))
	target := floor
	if f := uint64(r.cluster.versions.Get(key)); f > target {
		target = f
	}
	for o := range results {
		tried[o.idx] = true
		if o.err != nil {
			continue
		}
		if prev, ok := best[o.idx]; !ok || o.ver > prev.ver {
			best[o.idx] = o
		}
		if o.ver > target {
			target = o.ver
		}
	}
	// Drop chunks below the target — a cache or peer serving
	// pre-invalidation state, or a store region a write has not reached
	// yet. Once the target is nonzero the object is versioned, and a
	// version-zero chunk is of unknown generation (a legacy insert from
	// before the first versioned write): decoding it alongside current
	// chunks could tear the object, so it drops too. A zero target (a
	// never-versioned object) keeps everything. Dropped indices become
	// untried so the waves refetch them from the authoritative stores.
	stale := 0
	for idx, o := range best {
		if o.ver < target {
			delete(best, idx)
			stale++
			tried[idx] = false
		}
	}

	// Degraded-read waves: a chunk fetch that died mid-flight (server gone,
	// link cut after planning, stale version dropped above) is replaced by
	// the nearest chunks not yet tried, wave after wave, until k chunks
	// arrive or reachable candidates run out — the live twin of the
	// simulator client's substitution waves.
	for len(best) < k {
		var extra []int
		for _, idx := range plan.Chunks {
			if len(extra) == k-len(best) {
				break
			}
			if tried[idx] || r.sampler.Unreachable(r.region, locs[idx]) {
				continue
			}
			extra = append(extra, idx)
		}
		if len(extra) == 0 {
			break
		}
		wave := make(chan outcome, len(extra))
		var wwg sync.WaitGroup
		for _, idx := range extra {
			tried[idx] = true
			wwg.Add(1)
			go func(idx int) {
				defer wwg.Done()
				t0 := time.Now()
				r.delay(locs[idx])
				data, ver, anns, err := r.stores[locs[idx]].GetVerCtx(tc.ctx.Child(), backend.ChunkID{Key: key, Index: idx})
				got := 0
				if err == nil {
					got = 1
				}
				tc.spanRemote("degraded-get:"+locs[idx].String(), t0, got, len(data), err, anns)
				wave <- outcome{idx: idx, data: data, ver: ver, err: err}
			}(idx)
		}
		wwg.Wait()
		close(wave)
		for o := range wave {
			if o.err != nil {
				continue
			}
			if o.ver > target {
				// A newer write landed mid-read: everything older already
				// collected is now stale. Raise the target and re-filter;
				// re-dropped indices become refetchable once more.
				target = o.ver
				for idx, b := range best {
					if b.ver < target {
						delete(best, idx)
						stale++
						tried[idx] = false
					}
				}
			}
			if o.ver < target {
				stale++ // already tried: the next wave moves to other chunks
				continue
			}
			best[o.idx] = o
		}
	}

	chunks := make([][]byte, total)
	got, fromCache, fromPeers := 0, 0, 0
	toCache := make(map[int][]byte)
	var fillVer uint64
	for idx, o := range best {
		chunks[idx] = o.data
		got++
		switch {
		case o.fromCache:
			fromCache++
		case o.fromPeer:
			fromPeers++
		case hinted[idx]:
			toCache[idx] = o.data
			if o.ver > fillVer {
				fillVer = o.ver
			}
		}
	}
	if stale > 0 && r.staleDrops != nil {
		r.staleDrops.Add(int64(stale))
	}
	info := ReadInfo{CacheChunks: fromCache, PeerChunks: fromPeers, StaleDrops: stale, Version: target}
	if got < k {
		info.Latency = time.Since(start)
		info.Trace = tc.finish(key)
		return nil, info, fmt.Errorf("live: only %d of %d chunks for %q", got, k, key)
	}
	decT0 := time.Now()
	data, err := r.cluster.codec.Decode(chunks)
	tc.span("decode", decT0, 0, len(data), err)
	if err != nil {
		info.Latency = time.Since(start)
		info.Trace = tc.finish(key)
		return nil, info, err
	}
	info.Latency = time.Since(start)
	info.Trace = tc.finish(key)

	// Hand hinted-but-missed chunks to the async population pool: the fill
	// happens off the read path, batched into one PutMulti per object and
	// tagged with the version the chunks were read at so a fill racing a
	// newer write is refused by the server's floor instead of resurrecting
	// pre-write chunks.
	r.pop.enqueue(key, toCache, fillVer)
	return data, info, nil
}
