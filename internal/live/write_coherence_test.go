package live

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"

	"github.com/agardist/agar/internal/geo"
)

// payloadFor builds a self-describing object body: "<key>#<seq>|" repeated
// to size. A decode that mixes chunk generations cannot reproduce any
// seq's exact payload, so byte-comparing against the parsed seq's
// regeneration catches torn reads, not just stale ones.
func payloadFor(key string, seq, size int) []byte {
	unit := []byte(fmt.Sprintf("%s#%06d|", key, seq))
	out := bytes.Repeat(unit, size/len(unit)+1)
	return out[:size]
}

// parseSeq recovers the seq a payload claims to be, or -1 when the bytes
// are not any generation's exact payload (a torn read).
func parseSeq(key string, got []byte, size int) int {
	head := string(got)
	if i := strings.IndexByte(head, '|'); i > 0 {
		parts := strings.Split(head[:i], "#")
		if len(parts) == 2 && parts[0] == key {
			if seq, err := strconv.Atoi(parts[1]); err == nil {
				if bytes.Equal(got, payloadFor(key, seq, size)) {
					return seq
				}
			}
		}
	}
	return -1
}

// TestVersionedWritesReadYourWritesRace runs concurrent session writers
// against concurrent sessionless readers on one live deployment — the
// -race workout of the versioned write path. Every writer must read its
// own write back immediately (read-your-writes through its session), and
// no reader may ever decode a torn object: a read either returns some
// complete write's exact payload or fails cleanly while a write is in
// flight.
func TestVersionedWritesReadYourWritesRace(t *testing.T) {
	cluster, err := StartCluster(ClusterConfig{
		K:            4,
		M:            2,
		ClientRegion: geo.Frankfurt,
		CacheBytes:   60 * 2048,
		ChunkBytes:   2048,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	const (
		writers  = 3
		readers  = 2
		rounds   = 6
		objBytes = 4_000
	)
	w := NewNetworkWriter(cluster, geo.Frankfurt)
	defer w.Close()
	reader, err := NewNetworkReader(cluster, geo.Frankfurt)
	if err != nil {
		t.Fatal(err)
	}
	defer reader.Close()

	keyOf := func(i int) string { return fmt.Sprintf("rw-obj-%d", i) }
	// Seed every key with generation 0 so readers always have something to
	// decode while the writers churn.
	for i := 0; i < writers; i++ {
		if _, err := w.Write(keyOf(i), payloadFor(keyOf(i), 0, objBytes)); err != nil {
			t.Fatal(err)
		}
	}

	errCh := make(chan error, writers+readers)
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sess := NewSession()
			key := keyOf(i)
			for seq := 1; seq <= rounds; seq++ {
				payload := payloadFor(key, seq, objBytes)
				ver, err := w.WriteSession(key, payload, sess)
				if err != nil {
					errCh <- fmt.Errorf("write %s seq %d: %w", key, seq, err)
					return
				}
				got, info, err := reader.ReadSession(key, sess)
				if err != nil {
					errCh <- fmt.Errorf("read-your-writes %s seq %d (ver %d): %w", key, seq, ver, err)
					return
				}
				if !bytes.Equal(got, payload) {
					errCh <- fmt.Errorf("read-your-writes violated: %s seq %d returned seq %d (ver %d, read ver %d)",
						key, seq, parseSeq(key, got, objBytes), ver, info.Version)
					return
				}
				if info.Version < ver {
					errCh <- fmt.Errorf("session read of %s settled on ver %d below the write's %d", key, info.Version, ver)
					return
				}
			}
			errCh <- nil
		}(i)
	}
	for j := 0; j < readers; j++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < writers*rounds; n++ {
				key := keyOf(n % writers)
				got, _, err := reader.ReadDetailed(key)
				if err != nil {
					// A read racing a write may legitimately fail (the old
					// generation is already invalidated, the new one not yet
					// everywhere) — what it must never do is decode garbage.
					continue
				}
				if parseSeq(key, got, objBytes) < 0 {
					errCh <- fmt.Errorf("torn read of %s: no generation matches %d bytes", key, len(got))
					return
				}
			}
			errCh <- nil
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Quiesced: every key reads back as its final generation.
	for i := 0; i < writers; i++ {
		got, info, err := reader.ReadDetailed(keyOf(i))
		if err != nil {
			t.Fatalf("final read of %s: %v", keyOf(i), err)
		}
		if seq := parseSeq(keyOf(i), got, objBytes); seq != rounds {
			t.Fatalf("final read of %s returned seq %d, want %d", keyOf(i), seq, rounds)
		}
		if info.Version == 0 {
			t.Fatalf("final read of %s reports no version", keyOf(i))
		}
	}
}

// TestCrossRegionInvalidationDropsStaleMirror drives the digest-borne
// invalidation across two peered deployments: Dublin updates an object its
// peer mesh had advertised, and after the next digest Frankfurt must never
// again serve the pre-write payload — its raised floor drops both its own
// cached chunks and the stale store chunks, so a read returns the new
// generation or fails, never the old bytes.
func TestCrossRegionInvalidationDropsStaleMirror(t *testing.T) {
	fra, dub, _ := startPeeredClusters(t, 1, 4_000)
	const objBytes = 4_000
	key := "object-0"

	// Dublin writes generation 1 through the versioned path and re-reads it
	// so its cache repopulates at the new version.
	w := NewNetworkWriter(dub, geo.Dublin)
	defer w.Close()
	v1, err := w.Write(key, payloadFor(key, 1, objBytes))
	if err != nil {
		t.Fatal(err)
	}
	warmCluster(t, dub, geo.Dublin, key)
	if got := uint64(dub.Versions().Get(key)); got != v1 {
		t.Fatalf("dublin floor %d after write %d", got, v1)
	}

	// Frankfurt warms its own cache with the seeded (pre-write) payload —
	// the state the invalidation must kill.
	warmCluster(t, fra, geo.Frankfurt, key)

	// The digest carries the key's version: Frankfurt's floor rises and its
	// pre-write chunks are dropped server-side.
	if failed := dub.PushDigests(); failed != 0 {
		t.Fatalf("%d digest pushes failed", failed)
	}
	if got := uint64(fra.Versions().Get(key)); got != v1 {
		t.Fatalf("frankfurt floor %d after digest, want %d", got, v1)
	}
	if fra.CoopTable().VersionOf(geo.Dublin.String(), key) != v1 {
		t.Fatalf("frankfurt mirror of dublin lacks the write version")
	}

	reader, err := NewNetworkReader(fra, geo.Frankfurt)
	if err != nil {
		t.Fatal(err)
	}
	defer reader.Close()
	for i := 0; i < 5; i++ {
		got, info, err := reader.ReadDetailed(key)
		if err != nil {
			// Frankfurt's own backend only has the pre-write generation and
			// the peer may not cover k chunks: failing is coherent,
			// serving the old bytes is not.
			continue
		}
		if seq := parseSeq(key, got, objBytes); seq != 1 {
			t.Fatalf("post-invalidation read %d returned generation %d (ver %d, stale drops %d)",
				i, seq, info.Version, info.StaleDrops)
		}
	}

	// The raised floor also refuses direct stale write-backs: a pre-write
	// chunk can no longer be re-admitted into Frankfurt's cache.
	fraCache := NewRemoteCache(fra.CacheAddr())
	defer fraCache.Close()
	if err := fraCache.PutMultiVer(key, map[int][]byte{0: {1, 2, 3}}, v1-1); err == nil {
		t.Fatal("stale write-back admitted after invalidation")
	}
}
