package live

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/agardist/agar/internal/backend"
	"github.com/agardist/agar/internal/cache"
	"github.com/agardist/agar/internal/core"
	"github.com/agardist/agar/internal/geo"
	"github.com/agardist/agar/internal/netsim"
)

func TestStoreServerRoundTrip(t *testing.T) {
	store := backend.NewStore(geo.Frankfurt)
	srv, err := NewStoreServer("127.0.0.1:0", store)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	remote := NewRemoteStore(srv.Addr())
	defer remote.Close()

	id := backend.ChunkID{Key: "obj", Index: 3}
	if _, err := remote.Get(id); err != backend.ErrNotFound {
		t.Fatalf("missing chunk: err = %v", err)
	}
	data := []byte("chunk-payload")
	if err := remote.Put(id, data); err != nil {
		t.Fatal(err)
	}
	got, err := remote.Get(id)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("got %q err %v", got, err)
	}
	stats, err := remote.Stats()
	if err != nil || stats["chunks"] != 1 {
		t.Fatalf("stats %v err %v", stats, err)
	}
}

func TestCacheServerRoundTrip(t *testing.T) {
	c := cache.New(1<<20, cache.NewLRU())
	srv, err := NewCacheServer("127.0.0.1:0", c)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	remote := NewRemoteCache(srv.Addr())
	defer remote.Close()

	id := cache.EntryID{Key: "obj", Index: 4}
	if _, err := remote.Get(id); err != cache.ErrNotFound {
		t.Fatalf("err = %v", err)
	}
	if err := remote.Put(id, []byte("cc")); err != nil {
		t.Fatal(err)
	}
	if err := remote.Put(cache.EntryID{Key: "obj", Index: 9}, []byte("dd")); err != nil {
		t.Fatal(err)
	}
	got, err := remote.Get(id)
	if err != nil || string(got) != "cc" {
		t.Fatalf("got %q err %v", got, err)
	}
	idxs, err := remote.IndicesOf("obj")
	if err != nil || len(idxs) != 2 {
		t.Fatalf("indices %v err %v", idxs, err)
	}
	snap, err := remote.Snapshot()
	if err != nil || len(snap["obj"]) != 2 {
		t.Fatalf("snapshot %v err %v", snap, err)
	}
	if err := remote.DeleteObject("obj"); err != nil {
		t.Fatal(err)
	}
	if idxs, _ := remote.IndicesOf("obj"); len(idxs) != 0 {
		t.Fatal("delete object failed")
	}
	stats, err := remote.Stats()
	if err != nil || stats["sets"] != 2 {
		t.Fatalf("stats %v err %v", stats, err)
	}
}

func TestHintServersTCPAndUDP(t *testing.T) {
	node := core.NewNode(core.NodeParams{
		Region:     geo.Frankfurt,
		Regions:    geo.DefaultRegions(),
		Placement:  geo.NewRoundRobin(geo.DefaultRegions(), false),
		K:          9,
		M:          3,
		CacheBytes: 90 * 1024,
		ChunkBytes: 1024,
	})
	matrix := geo.DefaultMatrix()
	node.RegionManager().WarmUp(func(r geo.RegionID) time.Duration {
		return matrix.Get(geo.Frankfurt, r)
	}, 1)

	tcpSrv, err := NewHintServer("127.0.0.1:0", node)
	if err != nil {
		t.Fatal(err)
	}
	defer tcpSrv.Close()
	udpSrv, err := NewUDPHintServer("127.0.0.1:0", node)
	if err != nil {
		t.Fatal(err)
	}
	defer udpSrv.Close()

	// Generate traffic through both channels, reconfigure, then check that
	// hints appear and accesses were recorded.
	tcpHinter := NewRemoteHinter(tcpSrv.Addr())
	defer tcpHinter.Close()
	udpHinter, err := NewUDPHinter(udpSrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer udpHinter.Close()

	for i := 0; i < 25; i++ {
		if _, err := tcpHinter.Hint("hot-object"); err != nil {
			t.Fatal(err)
		}
		if _, err := udpHinter.Hint("hot-object"); err != nil {
			t.Fatal(err)
		}
	}
	if node.Monitor().CurrentFrequency("hot-object") != 50 {
		t.Fatalf("monitor recorded %d", node.Monitor().CurrentFrequency("hot-object"))
	}
	node.ForceReconfigure()
	chunks, err := tcpHinter.Hint("hot-object")
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) == 0 {
		t.Fatal("expected a non-empty hint after reconfiguration")
	}
	udpChunks, err := udpHinter.Hint("hot-object")
	if err != nil {
		t.Fatal(err)
	}
	if len(udpChunks) != len(chunks) {
		t.Fatalf("udp hint %v != tcp hint %v", udpChunks, chunks)
	}
}

func TestNetworkReaderEndToEnd(t *testing.T) {
	cluster, err := StartCluster(ClusterConfig{
		ClientRegion: geo.Frankfurt,
		CacheBytes:   90 * 2048,
		ChunkBytes:   2048,
		DelayScale:   0, // no artificial delays in unit tests
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	// Load objects.
	objects := make(map[string][]byte)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("object-%d", i)
		data := make([]byte, 10_000)
		rng.Read(data)
		objects[key] = data
		if err := cluster.Backend().PutObject(key, data); err != nil {
			t.Fatal(err)
		}
	}

	reader, err := NewNetworkReader(cluster, geo.Frankfurt)
	if err != nil {
		t.Fatal(err)
	}
	defer reader.Close()

	// Cold reads return correct data with no cache involvement.
	for key, want := range objects {
		got, _, fromCache, err := reader.Read(key)
		if err != nil {
			t.Fatalf("read %q: %v", key, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("read %q: wrong data", key)
		}
		if fromCache != 0 {
			t.Fatalf("cold read served %d chunks from cache", fromCache)
		}
	}

	// Build popularity and reconfigure; next reads should hit the cache.
	for i := 0; i < 30; i++ {
		if _, _, _, err := reader.Read("object-0"); err != nil {
			t.Fatal(err)
		}
	}
	cluster.Node().ForceReconfigure()
	if _, _, _, err := reader.Read("object-0"); err != nil {
		t.Fatal(err) // fetches hinted chunks, populates cache
	}
	reader.FlushPopulation() // cache fills are async; wait before rereading
	got, _, fromCache, err := reader.Read("object-0")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, objects["object-0"]) {
		t.Fatal("cached read returned wrong data")
	}
	if fromCache == 0 {
		t.Fatal("expected cache hits after reconfiguration")
	}
}

func TestNetworkReaderWithScaledDelays(t *testing.T) {
	cluster, err := StartCluster(ClusterConfig{
		ClientRegion: geo.Sydney,
		CacheBytes:   90 * 2048,
		ChunkBytes:   2048,
		DelayScale:   0.001, // 1000 ms -> 1 ms
		UseUDPHints:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.Backend().PutObject("obj", make([]byte, 5000)); err != nil {
		t.Fatal(err)
	}
	reader, err := NewNetworkReader(cluster, geo.Sydney)
	if err != nil {
		t.Fatal(err)
	}
	defer reader.Close()

	_, lat, _, err := reader.Read("obj")
	if err != nil {
		t.Fatal(err)
	}
	// The slowest needed chunk from Sydney is Frankfurt (1000 ms) scaled to
	// ~1 ms; total must be at least that and well under the unscaled value.
	if lat < 500*time.Microsecond {
		t.Fatalf("latency %v suspiciously low — delays not injected?", lat)
	}
	if lat > 500*time.Millisecond {
		t.Fatalf("latency %v too high — delays not scaled?", lat)
	}
}

func TestServerCloseIsIdempotentAndUnblocks(t *testing.T) {
	store := backend.NewStore(geo.Dublin)
	srv, err := NewStoreServer("127.0.0.1:0", store)
	if err != nil {
		t.Fatal(err)
	}
	remote := NewRemoteStore(srv.Addr())
	remote.Put(backend.ChunkID{Key: "x", Index: 0}, []byte("1"))
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); srv.Close() }()
	go func() { defer wg.Done(); srv.Close() }()
	wg.Wait()
	// Further calls fail cleanly rather than hanging.
	if err := remote.Put(backend.ChunkID{Key: "y", Index: 0}, []byte("2")); err == nil {
		// The write may be buffered before the close lands; a subsequent
		// round trip must fail.
		if _, err := remote.Get(backend.ChunkID{Key: "y", Index: 0}); err == nil {
			t.Fatal("server still serving after Close")
		}
	}
}

func TestConcurrentNetworkReaders(t *testing.T) {
	cluster, err := StartCluster(ClusterConfig{
		ClientRegion: geo.Frankfurt,
		CacheBytes:   90 * 2048,
		ChunkBytes:   2048,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	data := make([]byte, 8000)
	rand.New(rand.NewSource(1)).Read(data)
	cluster.Backend().PutObject("shared", data)

	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			reader, err := NewNetworkReader(cluster, geo.Frankfurt)
			if err != nil {
				errs <- err
				return
			}
			defer reader.Close()
			for i := 0; i < 10; i++ {
				got, _, _, err := reader.Read("shared")
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, data) {
					errs <- fmt.Errorf("data mismatch")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestNetworkReaderSteersAroundScheduledCut boots the cluster with a chaos
// schedule that isolates one region and checks the reader detours: reads
// still succeed (the substitute chunks decode correctly) without ever
// contacting the severed region.
func TestNetworkReaderSteersAroundScheduledCut(t *testing.T) {
	sched := netsim.NewSchedule(time.Now())
	sched.CutRegion(netsim.Window{}, geo.Dublin) // open-ended outage from epoch

	cluster, err := StartCluster(ClusterConfig{
		K:            4,
		M:            2, // one chunk per default region
		ClientRegion: geo.Frankfurt,
		CacheBytes:   90 * 2048,
		ChunkBytes:   2048,
		DelayScale:   0,
		Schedule:     sched,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	data := make([]byte, 8_000)
	rand.New(rand.NewSource(9)).Read(data)
	if err := cluster.Backend().PutObject("obj", data); err != nil {
		t.Fatal(err)
	}

	reader, err := NewNetworkReader(cluster, geo.Frankfurt)
	if err != nil {
		t.Fatal(err)
	}
	defer reader.Close()

	for i := 0; i < 5; i++ {
		got, _, _, err := reader.Read("obj")
		if err != nil {
			t.Fatalf("read with dublin dark: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("detour read returned wrong data")
		}
	}
}
