package live

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/agardist/agar/internal/geo"
)

func TestParsePeersAcceptsWellFormedLists(t *testing.T) {
	got, err := ParsePeers(" dublin=10.0.0.7:7102@25ms , tokyo=10.1.0.2:7102@210ms ")
	if err != nil {
		t.Fatal(err)
	}
	want := []PeerSpec{
		{Region: geo.Dublin, Addr: "10.0.0.7:7102", Latency: 25 * time.Millisecond},
		{Region: geo.Tokyo, Addr: "10.1.0.2:7102", Latency: 210 * time.Millisecond},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ParsePeers = %+v", got)
	}
	if specs, err := ParsePeers(""); err != nil || specs != nil {
		t.Fatalf("empty flag: %v %v", specs, err)
	}
	if specs, err := ParsePeers("   "); err != nil || specs != nil {
		t.Fatalf("blank flag: %v %v", specs, err)
	}
}

func TestParsePeersRejectsMalformedEntries(t *testing.T) {
	cases := []struct {
		name  string
		input string
		want  string // substring of the error
	}{
		{"bare region", "dublin", "want region=host:port@latency"},
		{"empty entry", "dublin=a:1@5ms,,tokyo=b:1@5ms", "want region=host:port@latency"},
		{"unknown region", "atlantis=1.2.3.4:1@5ms", "unknown region"},
		{"missing latency", "dublin=1.2.3.4:1", "want region=host:port@latency"},
		{"empty addr", "dublin=@5ms", "want region=host:port@latency"},
		{"blank addr", "dublin=   @5ms", "want region=host:port@latency"},
		{"bad duration", "dublin=1.2.3.4:1@zero", "bad latency"},
		{"bare number duration", "dublin=1.2.3.4:1@25", "bad latency"},
		{"negative latency", "dublin=1.2.3.4:1@-5ms", "latency must be positive"},
		{"zero latency", "dublin=1.2.3.4:1@0s", "latency must be positive"},
		{"second entry bad", "dublin=1.2.3.4:1@5ms,tokyo=x", "want region=host:port@latency"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			specs, err := ParsePeers(c.input)
			if err == nil {
				t.Fatalf("ParsePeers(%q) accepted: %+v", c.input, specs)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("ParsePeers(%q) error %q lacks %q", c.input, err, c.want)
			}
			var dup *DuplicatePeerError
			if errors.As(err, &dup) {
				t.Fatalf("ParsePeers(%q) misreported a duplicate: %v", c.input, err)
			}
		})
	}
}

func TestParsePeersRejectsDuplicateRegionsWithTypedError(t *testing.T) {
	_, err := ParsePeers("dublin=a:1@5ms,tokyo=b:1@9ms,dublin=c:1@5ms")
	if err == nil {
		t.Fatal("duplicate region accepted")
	}
	var dup *DuplicatePeerError
	if !errors.As(err, &dup) {
		t.Fatalf("duplicate error is %T (%v), want *DuplicatePeerError", err, err)
	}
	if dup.Region != geo.Dublin {
		t.Fatalf("duplicate region = %v, want dublin", dup.Region)
	}
	if !strings.Contains(err.Error(), "listed twice") {
		t.Fatalf("error text %q", err)
	}
}
