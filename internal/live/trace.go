package live

import (
	"sort"
	"sync"
	"time"

	"github.com/agardist/agar/internal/trace"
)

// Span is one timed exchange inside a single live read: the hint lookup,
// a batched cache/peer/store round trip, a single-chunk store fallback, a
// degraded-wave fetch, or the erasure decode. Offsets are relative to the
// read's start so traces from different reads compare directly.
type Span struct {
	// Name identifies the exchange: "hint", "cache-mget",
	// "peer-mget:<region>", "store-mget:<region>", "store-get:<region>",
	// "degraded-get:<region>", "decode".
	Name string `json:"name"`
	// StartMS is the span's offset from the read's start, in milliseconds.
	StartMS float64 `json:"start_ms"`
	// DurMS is the span's duration in milliseconds.
	DurMS float64 `json:"dur_ms"`
	// Chunks is how many chunks the exchange produced (0 for hint/decode).
	Chunks int `json:"chunks,omitempty"`
	// Bytes is the payload volume the exchange produced.
	Bytes int `json:"bytes,omitempty"`
	// Err carries the exchange's failure, if any — a store fault, an
	// unreachable region, a failed decode.
	Err string `json:"err,omitempty"`
	// Remote holds the server-side annotations the exchange's reply
	// carried (queue wait, execute, split-batch parts) — real measured
	// server time nested under this client-observed span, offsets
	// relative to the server receiving the frame. Empty for exchanges
	// that were not traced or whose server predates trace headers.
	Remote []trace.Annotation `json:"remote,omitempty"`
}

// ReadTrace is the span breakdown of one live read — what ReadDetailed
// spent its wall clock on. Spans from concurrent fetch goroutines overlap;
// sort order is by start offset.
type ReadTrace struct {
	Key string `json:"key"`
	// TraceID is the read's propagated trace identifier: the same ID the
	// servers' flight recorders retained the read's ops under, so a slow
	// client trace can be joined against every /debug/traces it touched.
	TraceID string  `json:"trace_id,omitempty"`
	TotalMS float64 `json:"total_ms"`
	Spans   []Span  `json:"spans"`
}

// traceCollector accumulates spans from the read's concurrent fetch
// goroutines. The mutex is off every fetch's wait path — goroutines record
// a span only after their network exchange completes.
type traceCollector struct {
	start time.Time
	ctx   trace.Context // the read's root context (zero: untraced)
	mu    sync.Mutex
	spans []Span
}

func newTraceCollector(start time.Time) *traceCollector {
	return &traceCollector{start: start}
}

// span records one exchange that began at t0 and just ended.
func (t *traceCollector) span(name string, t0 time.Time, chunks, bytes int, err error) {
	t.spanRemote(name, t0, chunks, bytes, err, nil)
}

// spanRemote is span carrying the server-side annotations the exchange's
// reply returned — the graft point where real server time joins the
// client's span tree.
func (t *traceCollector) spanRemote(name string, t0 time.Time, chunks, bytes int, err error, remote []trace.Annotation) {
	s := Span{
		Name:    name,
		StartMS: float64(t0.Sub(t.start)) / float64(time.Millisecond),
		DurMS:   float64(time.Since(t0)) / float64(time.Millisecond),
		Chunks:  chunks,
		Bytes:   bytes,
		Remote:  remote,
	}
	if err != nil {
		s.Err = err.Error()
	}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// finish seals the trace: spans sorted by start offset, total set.
func (t *traceCollector) finish(key string) *ReadTrace {
	t.mu.Lock()
	spans := append([]Span(nil), t.spans...)
	t.mu.Unlock()
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].StartMS != spans[j].StartMS {
			return spans[i].StartMS < spans[j].StartMS
		}
		return spans[i].Name < spans[j].Name
	})
	return &ReadTrace{
		Key:     key,
		TraceID: t.ctx.TraceID.String(),
		TotalMS: float64(time.Since(t.start)) / float64(time.Millisecond),
		Spans:   spans,
	}
}
