package live

import (
	"sort"
	"sync"
	"time"
)

// Span is one timed exchange inside a single live read: the hint lookup,
// a batched cache/peer/store round trip, a single-chunk store fallback, a
// degraded-wave fetch, or the erasure decode. Offsets are relative to the
// read's start so traces from different reads compare directly.
type Span struct {
	// Name identifies the exchange: "hint", "cache-mget",
	// "peer-mget:<region>", "store-mget:<region>", "store-get:<region>",
	// "degraded-get:<region>", "decode".
	Name string `json:"name"`
	// StartMS is the span's offset from the read's start, in milliseconds.
	StartMS float64 `json:"start_ms"`
	// DurMS is the span's duration in milliseconds.
	DurMS float64 `json:"dur_ms"`
	// Chunks is how many chunks the exchange produced (0 for hint/decode).
	Chunks int `json:"chunks,omitempty"`
	// Bytes is the payload volume the exchange produced.
	Bytes int `json:"bytes,omitempty"`
	// Err carries the exchange's failure, if any — a store fault, an
	// unreachable region, a failed decode.
	Err string `json:"err,omitempty"`
}

// ReadTrace is the span breakdown of one live read — what ReadDetailed
// spent its wall clock on. Spans from concurrent fetch goroutines overlap;
// sort order is by start offset.
type ReadTrace struct {
	Key     string  `json:"key"`
	TotalMS float64 `json:"total_ms"`
	Spans   []Span  `json:"spans"`
}

// traceCollector accumulates spans from the read's concurrent fetch
// goroutines. The mutex is off every fetch's wait path — goroutines record
// a span only after their network exchange completes.
type traceCollector struct {
	start time.Time
	mu    sync.Mutex
	spans []Span
}

func newTraceCollector(start time.Time) *traceCollector {
	return &traceCollector{start: start}
}

// span records one exchange that began at t0 and just ended.
func (t *traceCollector) span(name string, t0 time.Time, chunks, bytes int, err error) {
	s := Span{
		Name:    name,
		StartMS: float64(t0.Sub(t.start)) / float64(time.Millisecond),
		DurMS:   float64(time.Since(t0)) / float64(time.Millisecond),
		Chunks:  chunks,
		Bytes:   bytes,
	}
	if err != nil {
		s.Err = err.Error()
	}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// finish seals the trace: spans sorted by start offset, total set.
func (t *traceCollector) finish(key string) *ReadTrace {
	t.mu.Lock()
	spans := append([]Span(nil), t.spans...)
	t.mu.Unlock()
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].StartMS != spans[j].StartMS {
			return spans[i].StartMS < spans[j].StartMS
		}
		return spans[i].Name < spans[j].Name
	})
	return &ReadTrace{
		Key:     key,
		TotalMS: float64(time.Since(t.start)) / float64(time.Millisecond),
		Spans:   spans,
	}
}
