package live

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"reflect"
	"testing"

	"github.com/agardist/agar/internal/backend"
	"github.com/agardist/agar/internal/geo"
	"github.com/agardist/agar/internal/store"
)

// runClusterOnStore boots a full live cluster whose backend persists in the
// given blob-store config, loads objects, and reads them back through the
// network read path — sockets, hints, cache and store servers all real.
func runClusterOnStore(t *testing.T, cfg store.Config) {
	t.Helper()
	cluster, err := StartCluster(ClusterConfig{
		K:            4,
		M:            2,
		ClientRegion: geo.Frankfurt,
		CacheBytes:   30 * 2048,
		ChunkBytes:   2048,
		DelayScale:   0,
		Store:        cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	rng := rand.New(rand.NewSource(7))
	objects := make(map[string][]byte, 5)
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("obj-%d", i)
		payload := make([]byte, 6_000)
		rng.Read(payload)
		objects[key] = payload
		if err := cluster.Backend().PutObject(key, payload); err != nil {
			t.Fatal(err)
		}
	}

	reader, err := NewNetworkReader(cluster, geo.Frankfurt)
	if err != nil {
		t.Fatal(err)
	}
	defer reader.Close()
	for key, want := range objects {
		got, _, _, err := reader.Read(key)
		if err != nil {
			t.Fatalf("read %q: %v", key, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("read %q returned wrong bytes", key)
		}
	}

	// The store servers answer batched reads out of the same adapter.
	region := cluster.Backend().Regions()[0]
	rs := NewRemoteStore(cluster.StoreAddr(region))
	defer rs.Close()
	st := cluster.Backend().Store(region)
	key := "obj-0"
	indices := indicesHeldBy(cluster, region, key)
	if len(indices) == 0 {
		t.Fatalf("region %v holds no chunks of %q", region, key)
	}
	found, err := rs.GetMulti(key, append(indices, 99))
	if err != nil {
		t.Fatal(err)
	}
	if got := sortedKeys(found); !reflect.DeepEqual(got, indices) {
		t.Fatalf("store mget = %v, want %v", got, indices)
	}
	for idx, data := range found {
		direct, err := st.Get(backend.ChunkID{Key: key, Index: idx})
		if err != nil || !bytes.Equal(direct, data) {
			t.Fatalf("mget chunk %d diverges from direct get (%v)", idx, err)
		}
	}
}

// indicesHeldBy lists the chunk indices the placement assigns to a region.
func indicesHeldBy(c *Cluster, region geo.RegionID, key string) []int {
	total := c.Backend().Codec().Total()
	locs := c.Backend().Placement().Locate(key, total)
	var out []int
	for i, r := range locs {
		if r == region {
			out = append(out, i)
		}
	}
	return out
}

func sortedKeys(m map[int][]byte) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := range out {
		for j := i + 1; j < len(out); j++ {
			if out[j] < out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

// TestLiveClusterDiskStore runs the whole live stack over the on-disk blob
// adapter, then reopens the same root as a second cluster generation and
// checks the data survived the "restart".
func TestLiveClusterDiskStore(t *testing.T) {
	root := t.TempDir()
	runClusterOnStore(t, store.Config{Kind: store.KindDisk, Dir: root})

	// Second generation: a fresh cluster over the same disk root must serve
	// the first generation's objects without reloading them.
	cluster, err := StartCluster(ClusterConfig{
		K:            4,
		M:            2,
		ClientRegion: geo.Frankfurt,
		CacheBytes:   30 * 2048,
		ChunkBytes:   2048,
		DelayScale:   0,
		Store:        store.Config{Kind: store.KindDisk, Dir: root},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	got, err := cluster.Backend().GetObject("obj-0")
	if err != nil {
		t.Fatalf("after restart: %v", err)
	}
	if len(got) != 6_000 {
		t.Fatalf("after restart: %d bytes", len(got))
	}
}

// TestLiveClusterRemoteStore runs the whole live stack with every region's
// chunks persisted through the S3-style HTTP gateway — the store servers
// proxy to blob-server the way the paper's nodes front S3.
func TestLiveClusterRemoteStore(t *testing.T) {
	gw := httptest.NewServer(store.NewGateway(store.NewMem()))
	defer gw.Close()
	runClusterOnStore(t, store.Config{Kind: store.KindRemote, Addr: gw.URL})
}
