package live

import (
	"sync/atomic"
	"time"

	"github.com/agardist/agar/internal/backend"
	"github.com/agardist/agar/internal/cache"
	"github.com/agardist/agar/internal/coherence"
	"github.com/agardist/agar/internal/coop"
	"github.com/agardist/agar/internal/metrics"
	"github.com/agardist/agar/internal/trace"
	"github.com/agardist/agar/internal/wire"
)

// ServerOptions configures a cache or store server beyond its address.
// The zero value is the default: shard dispatch, a private metrics
// registry, no region label.
type ServerOptions struct {
	// Dispatch selects the scheduling mode; the zero value is DispatchShard.
	Dispatch Dispatch
	// Registry receives the server's metrics families. Nil creates a
	// private registry: metrics are still collected (the wire stats op
	// reads them) but no /metrics endpoint sees them unless the caller
	// serves Registry.Handler somewhere.
	Registry *metrics.Registry
	// Region labels this server's metric families — one store server per
	// region shares a cluster registry without colliding. Empty is fine
	// for standalone deployments.
	Region string
	// SplitMinBytes is the size-aware batch-split threshold for shard
	// dispatch: a multi-shard mget/mput whose body weighs less than this
	// many bytes (mput by its declared sizes, mget by chunk count times
	// the cache's mean entry size) routes whole to its first chunk's
	// shard worker instead of fanning out — small batches lose more to
	// queue hops and the merge than parallel shard work buys back. Zero
	// (the default) always splits, the legacy behaviour, which also keeps
	// strict per-connection ordering between a batch and single-chunk ops
	// on its other shards; a positive threshold trades that ordering for
	// throughput on small batches. Store servers never split regardless.
	SplitMinBytes int
	// Recorder, when non-nil, is the server's flight recorder: every
	// finished op is offered to it (slowest and errored requests are
	// retained per opcode, served at /debug/traces). Nil disables the
	// recorder and — together with an untraced request stream — keeps
	// time.Now off the hot path entirely, matching the pre-recorder
	// baseline the paired benchmarks pin. Deployed servers (the cluster,
	// the server binaries) always pass one.
	Recorder *trace.Recorder
	// Versions is the cache server's per-key version-floor table: versioned
	// mutations are admitted against it, and digest KeyVers observed into it
	// drop the cached chunks an invalidation outdated. Nil creates a private
	// table; the cluster passes a shared one so tests can read the floors.
	Versions *coherence.VersionTable
}

// statSource maps one legacy wire-level OpStats key onto the registry
// child that backs it. The stats op and the /metrics exposition read the
// same children, so the two surfaces can never disagree.
type statSource struct {
	key  string
	read func() (int64, bool) // ok=false omits the key (e.g. digest age before any digest)
}

// serverMetrics is one server's instrumentation: pre-interned per-opcode
// latency histogram children (no per-op allocation or lock on the hot
// path) plus the stat sources the wire stats op is built from. A nil
// *serverMetrics disables hot-path timing entirely — the paired-benchmark
// baseline.
type serverMetrics struct {
	queueWait map[string]*metrics.Histogram
	exec      map[string]*metrics.Histogram
	qwOther   *metrics.Histogram
	exOther   *metrics.Histogram
	stats     []statSource

	// Versioned write-path instrumentation (nil on servers that never see
	// versioned traffic is fine — the helpers are nil-safe).
	staleRejects  *metrics.Counter
	invalidations *metrics.Counter
	versionLag    *metrics.Gauge
}

// staleReject accounts one mutation refused by a version floor.
func (m *serverMetrics) staleReject() {
	if m != nil && m.staleRejects != nil {
		m.staleRejects.Inc()
	}
}

// invalidated accounts keys whose cached chunks were dropped because a
// newer write version arrived.
func (m *serverMetrics) invalidated(keys int) {
	if m != nil && m.invalidations != nil && keys > 0 {
		m.invalidations.Add(int64(keys))
	}
}

// observeVersionLag records the wall-clock age of the newest write version
// a digest just delivered — the cross-region staleness gauge.
func (m *serverMetrics) observeVersionLag(ms int64) {
	if m != nil && m.versionLag != nil {
		if ms < 0 {
			ms = 0
		}
		m.versionLag.Set(ms)
	}
}

// observe records one op's queue wait and execution time; traceID (empty
// for untraced requests) pins a bucket exemplar on the execute histogram,
// so a high-latency bucket names a concrete trace to look up. Safe on a
// nil receiver (uninstrumented baseline).
func (m *serverMetrics) observe(op string, queue, exec time.Duration, traceID string) {
	if m == nil {
		return
	}
	qh, ok := m.queueWait[op]
	if !ok {
		qh = m.qwOther
	}
	eh, ok := m.exec[op]
	if !ok {
		eh = m.exOther
	}
	qh.ObserveDuration(queue)
	eh.ObserveDurationExemplar(exec, traceID)
}

// statsMap builds the wire-level OpStats payload from the registry-backed
// sources, preserving the historical key names byte for byte.
func (m *serverMetrics) statsMap() map[string]int64 {
	out := make(map[string]int64, len(m.stats))
	for _, s := range m.stats {
		if v, ok := s.read(); ok {
			out[s.key] = v
		}
	}
	return out
}

// always wraps an int64 reader as an always-present stat source value.
func always(fn func() int64) func() (int64, bool) {
	return func() (int64, bool) { return fn(), true }
}

// internOps pre-interns the queue-wait and execute histogram children for
// a server's known opcodes plus the "other" fallback.
func (m *serverMetrics) internOps(reg *metrics.Registry, server, region string, ops []string) {
	qw := reg.NewHistogramVec(metrics.NameServerOpQueueWait,
		"Time a decoded op waited on a shard-dispatch queue before executing (0 for inline fast-path ops).",
		metrics.DefBuckets, "server", "region", "op")
	ex := reg.NewHistogramVec(metrics.NameServerOpExecute,
		"Handler execution time per op (split-batch parts observe per part).",
		metrics.DefBuckets, "server", "region", "op")
	m.queueWait = make(map[string]*metrics.Histogram, len(ops))
	m.exec = make(map[string]*metrics.Histogram, len(ops))
	for _, op := range ops {
		m.queueWait[op] = qw.With(server, region, op)
		m.exec[op] = ex.With(server, region, op)
	}
	m.qwOther = qw.With(server, region, "other")
	m.exOther = ex.With(server, region, "other")
}

// newCacheServerMetrics registers a cache server's families: per-opcode
// latency histograms, function-backed counters and gauges over the cache's
// own shard atomics, the dispatch queue depth gauge, and — when the server
// speaks the cooperative mesh — the coop table's counters and digest age.
func newCacheServerMetrics(reg *metrics.Registry, region string, c *cache.Cache, table *coop.Table, gauge *atomic.Int64) *serverMetrics {
	m := &serverMetrics{}
	m.internOps(reg, "cache", region, []string{
		wire.OpGet, wire.OpPut, wire.OpMGet, wire.OpMPut, wire.OpDelete,
		wire.OpDelObj, wire.OpIndices, wire.OpSnapshot, wire.OpDigest, wire.OpStats,
	})

	stat := func(sel func(cache.Stats) int64) func() int64 {
		return func() int64 { return sel(c.Stats()) }
	}
	counters := []struct {
		name, help, key string
		read            func() int64
	}{
		{metrics.NameCacheGets, "Chunk lookups.", "gets", stat(func(s cache.Stats) int64 { return s.Gets })},
		{metrics.NameCacheHits, "Chunk lookups that found the chunk.", "hits", stat(func(s cache.Stats) int64 { return s.Hits })},
		{metrics.NameCacheSets, "Successful inserts, including overwrites.", "sets", stat(func(s cache.Stats) int64 { return s.Sets })},
		{metrics.NameCacheEvictions, "Entries evicted to make room.", "evictions", stat(func(s cache.Stats) int64 { return s.Evictions })},
		{metrics.NameCacheAdmissionRejects, "Inserts dropped by the admission filter.", "admission_rejects", stat(func(s cache.Stats) int64 { return s.AdmissionRejects })},
		{metrics.NameCacheFullRejects, "Inserts refused by a full shard whose policy declined eviction.", "full_rejects", stat(func(s cache.Stats) int64 { return s.FullRejects })},
	}
	for _, cnt := range counters {
		cnt := cnt
		reg.NewCounterFuncVec(cnt.name, cnt.help, "server", "region").
			Bind(func() float64 { return float64(cnt.read()) }, "cache", region)
		m.stats = append(m.stats, statSource{cnt.key, always(cnt.read)})
	}
	m.stats = append(m.stats, statSource{"rejected", always(func() int64 { return c.Stats().Rejected() })})

	gauges := []struct {
		name, help, key string
		read            func() int64
	}{
		{metrics.NameCacheUsedBytes, "Resident bytes.", "used", c.Used},
		{metrics.NameCacheCapacityBytes, "Configured capacity in bytes.", "capacity", c.Capacity},
		{metrics.NameCacheShards, "Lock-stripe shard count.", "shards", func() int64 { return int64(c.ShardCount()) }},
		{metrics.NameServerQueueDepth, "Shard-dispatch tasks enqueued or executing (0 under conn dispatch).", "dispatch_queue_depth", gauge.Load},
	}
	for _, g := range gauges {
		g := g
		reg.NewGaugeFuncVec(g.name, g.help, "server", "region").
			Bind(func() float64 { return float64(g.read()) }, "cache", region)
		m.stats = append(m.stats, statSource{g.key, always(g.read)})
	}

	if table != nil {
		coopCounters := []struct {
			name, help, key string
			read            func() int64
		}{
			{metrics.NameCoopPeerHits, "Chunks served to foreign-region peer readers.", "peer_hits",
				func() int64 { h, _ := table.PeerReads(); return h }},
			{metrics.NameCoopPeerMisses, "Advertised-but-gone chunks peer readers asked for.", "peer_misses",
				func() int64 { _, m := table.PeerReads(); return m }},
			{metrics.NameCoopDigests, "Digest frames applied.", "digests",
				func() int64 { a, _ := table.Applied(); return a }},
			{metrics.NameCoopDigestsStale, "Digest frames dropped as stale.", "digests_stale",
				func() int64 { _, s := table.Applied(); return s }},
			{metrics.NameCoopDigestDeltas, "Applied digest frames that were deltas.", "digest_deltas", table.Deltas},
		}
		for _, cnt := range coopCounters {
			cnt := cnt
			reg.NewCounterFuncVec(cnt.name, cnt.help, "server", "region").
				Bind(func() float64 { return float64(cnt.read()) }, "cache", region)
			m.stats = append(m.stats, statSource{cnt.key, always(cnt.read)})
		}
		age := func() (int64, bool) {
			if age, ok := table.StalestAge(); ok {
				return int64(age / time.Millisecond), true
			}
			return 0, false
		}
		reg.NewGaugeFuncVec(metrics.NameCoopDigestAgeMS,
			"Age of the least recently refreshed peer mirror in milliseconds (-1 before any digest).",
			"server", "region").
			Bind(func() float64 {
				if v, ok := age(); ok {
					return float64(v)
				}
				return -1
			}, "cache", region)
		m.stats = append(m.stats, statSource{"digest_age_ms", age})
	}

	m.staleRejects = reg.NewCounterVec(metrics.NameCoherenceStaleRejects,
		"Versioned mutations refused because a newer version already holds the key.",
		"server", "region").With("cache", region)
	m.invalidations = reg.NewCounterVec(metrics.NameCoherenceInvalidations,
		"Keys whose cached chunks were dropped because a newer write version arrived.",
		"server", "region").With("cache", region)
	m.versionLag = reg.NewGaugeVec(metrics.NameCoherenceVersionLagMS,
		"Wall-clock age in milliseconds of the newest write version the last digest delivered.",
		"server", "region").With("cache", region)
	return m
}

// newStoreServerMetrics registers a store server's families: per-opcode
// latency histograms plus chunk/byte gauges and the dispatch queue depth.
func newStoreServerMetrics(reg *metrics.Registry, region string, st *backend.Store, gauge *atomic.Int64) *serverMetrics {
	m := &serverMetrics{}
	m.internOps(reg, "store", region, []string{
		wire.OpGet, wire.OpPut, wire.OpMGet, wire.OpDelete, wire.OpDelObj, wire.OpStats,
	})
	m.staleRejects = reg.NewCounterVec(metrics.NameCoherenceStaleRejects,
		"Versioned mutations refused because a newer version already holds the key.",
		"server", "region").With("store", region)
	gauges := []struct {
		name, help, key string
		read            func() int64
	}{
		{metrics.NameStoreChunks, "Chunk objects persisted in this region's bucket.", "chunks",
			func() int64 { return int64(st.Len()) }},
		{metrics.NameStoreBytes, "Payload bytes persisted in this region's bucket.", "bytes", st.Bytes},
		{metrics.NameServerQueueDepth, "Shard-dispatch tasks enqueued or executing (0 under conn dispatch).", "dispatch_queue_depth", gauge.Load},
	}
	for _, g := range gauges {
		g := g
		reg.NewGaugeFuncVec(g.name, g.help, "server", "region").
			Bind(func() float64 { return float64(g.read()) }, "store", region)
		m.stats = append(m.stats, statSource{g.key, always(g.read)})
	}
	return m
}
