package live

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/agardist/agar/internal/geo"
)

// TestReadDetailedTracePropagation drives one detailed read through the
// live cluster end to end and checks the cross-process trace tree it
// assembles: the read minted a trace ID, the store exchanges' spans carry
// server-measured annotations grafted from the replies, and the same
// trace ID is retained by the cluster's shared flight recorder — the join
// an operator performs between a slow client trace and /debug/traces.
func TestReadDetailedTracePropagation(t *testing.T) {
	cluster, err := StartCluster(ClusterConfig{
		ClientRegion: geo.Frankfurt,
		CacheBytes:   90 * 2048,
		ChunkBytes:   2048,
		DelayScale:   0,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	rng := rand.New(rand.NewSource(11))
	data := make([]byte, 10_000)
	rng.Read(data)
	if err := cluster.Backend().PutObject("object-0", data); err != nil {
		t.Fatal(err)
	}

	reader, err := NewNetworkReader(cluster, geo.Frankfurt)
	if err != nil {
		t.Fatal(err)
	}
	defer reader.Close()

	_, info, err := reader.ReadDetailed("object-0")
	if err != nil {
		t.Fatal(err)
	}
	if info.Trace == nil {
		t.Fatal("detailed read returned no trace")
	}
	if len(info.Trace.TraceID) != 16 {
		t.Fatalf("trace ID %q, want 16 hex digits", info.Trace.TraceID)
	}

	var remoted int
	for _, sp := range info.Trace.Spans {
		if len(sp.Remote) == 0 {
			continue
		}
		remoted++
		var lastEnd int64
		for _, ann := range sp.Remote {
			if ann.Name == "" || ann.OffUS < 0 || ann.DurUS < 0 {
				t.Fatalf("span %s malformed annotation %+v", sp.Name, ann)
			}
			if end := ann.OffUS + ann.DurUS; end > lastEnd {
				lastEnd = end
			}
		}
		// Server time is measured inside the client span; allow 1ms of
		// clock/rounding slack on a span measured in float ms.
		if float64(lastEnd)/1000 > sp.DurMS+1 {
			t.Fatalf("span %s: server annotations (%d µs) exceed client span (%.3f ms)",
				sp.Name, lastEnd, sp.DurMS)
		}
	}
	if remoted == 0 {
		t.Fatalf("no span carried server annotations: %+v", info.Trace.Spans)
	}

	snap := cluster.Recorder().Snapshot()
	found := false
	for op, ot := range snap.Ops {
		for _, r := range ot.Slowest {
			if r.TraceID == info.Trace.TraceID {
				found = true
				if r.DurUS < 0 || len(r.Anns) == 0 {
					t.Fatalf("retained record for %s malformed: %+v", op, r)
				}
			}
		}
	}
	if !found {
		t.Fatalf("flight recorder retained nothing under trace %s: ops %v",
			info.Trace.TraceID, fmt.Sprint(snap.Ops))
	}
}
