package live

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/agardist/agar/internal/cache"
	"github.com/agardist/agar/internal/wire"
)

func startPipelineServer(t *testing.T) (*Server, *cache.Cache) {
	t.Helper()
	c := cache.NewSharded(1<<24, 8, func() cache.Policy { return cache.NewLRU() })
	srv, err := NewCacheServerOpts("127.0.0.1:0", c, nil, ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv, c
}

// TestPipelinedReadYourWrites drives puts and gets back to back through
// one pipelined connection: replies must resolve in send order, so a get
// pipelined behind its own put always observes the write.
func TestPipelinedReadYourWrites(t *testing.T) {
	srv, _ := startPipelineServer(t)
	p, err := DialPipelined(srv.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const n = 200
	pending := make([]*PendingReply, 0, 2*n)
	for i := 0; i < n; i++ {
		body := []byte(fmt.Sprintf("chunk-%d", i))
		pending = append(pending, p.Go(wire.Message{
			Header: wire.Header{Op: wire.OpPut, Key: "k", Index: i}, Body: body,
		}))
		pending = append(pending, p.Go(wire.Message{
			Header: wire.Header{Op: wire.OpGet, Key: "k", Index: i},
		}))
	}
	for i := 0; i < n; i++ {
		if _, err := pending[2*i].Wait(); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		resp, err := pending[2*i+1].Wait()
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if want := fmt.Sprintf("chunk-%d", i); !bytes.Equal(resp.Body, []byte(want)) {
			t.Fatalf("get %d = %q, want %q (reply order broken)", i, resp.Body, want)
		}
	}
}

// TestPipelinedBatchOps exercises PutMulti/GetMulti over the pipelined
// connection, including a cross-shard mget that takes the split path.
func TestPipelinedBatchOps(t *testing.T) {
	srv, _ := startPipelineServer(t)
	p, err := DialPipelined(srv.Addr(), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	chunks := map[int][]byte{}
	for i := 0; i < 32; i++ {
		chunks[i] = bytes.Repeat([]byte{byte(i)}, 128)
	}
	if err := p.PutMulti("obj", chunks); err != nil {
		t.Fatal(err)
	}
	indices := make([]int, 0, len(chunks))
	for i := range chunks {
		indices = append(indices, i)
	}
	got, err := p.GetMulti("obj", indices)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(chunks) {
		t.Fatalf("got %d chunks, want %d", len(got), len(chunks))
	}
	for i, want := range chunks {
		if !bytes.Equal(got[i], want) {
			t.Fatalf("chunk %d mismatch", i)
		}
	}
	if _, err := p.Get("missing", 0); err == nil || !strings.Contains(err.Error(), "not found") {
		t.Fatalf("missing get err = %v", err)
	}
}

// TestPipelinedConcurrentCallers hammers one adapter from many goroutines;
// every caller must see its own values (the write lock keeps queue order
// equal to wire order even under contention).
func TestPipelinedConcurrentCallers(t *testing.T) {
	srv, _ := startPipelineServer(t)
	p, err := DialPipelined(srv.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := fmt.Sprintf("key-%d", g)
			for i := 0; i < 100; i++ {
				want := []byte(fmt.Sprintf("%d/%d", g, i))
				if err := p.Put(key, i, want); err != nil {
					errs <- err
					return
				}
				got, err := p.Get(key, i)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, want) {
					errs <- fmt.Errorf("%s/%d = %q, want %q", key, i, got, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

// TestPipelinedRemoteError: a frame the server rejects resolves its own
// future with the remote error while later pipelined calls still succeed.
func TestPipelinedRemoteError(t *testing.T) {
	srv, c := startPipelineServer(t)
	c.Put(cache.EntryID{Key: "k", Index: 1}, []byte("v"))
	p, err := DialPipelined(srv.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	bad := p.Go(wire.Message{Header: wire.Header{Op: "bogus", Key: "k"}})
	good := p.Go(wire.Message{Header: wire.Header{Op: wire.OpGet, Key: "k", Index: 1}})
	if _, err := bad.Wait(); err == nil || !strings.Contains(err.Error(), "remote error") {
		t.Fatalf("bogus op err = %v", err)
	}
	resp, err := good.Wait()
	if err != nil || !bytes.Equal(resp.Body, []byte("v")) {
		t.Fatalf("follow-up get = %q, %v", resp.Body, err)
	}
}

// silentListener accepts one connection and discards everything written
// to it without ever replying — a server that has wedged.
func silentListener(t *testing.T) (net.Listener, chan net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	conns := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		conns <- conn
		go func() {
			buf := make([]byte, 4096)
			for {
				if _, err := conn.Read(buf); err != nil {
					return
				}
			}
		}()
	}()
	return ln, conns
}

// TestPipelinedTransportError: when the connection dies, every in-flight
// call resolves with the transport error and later calls fail fast.
func TestPipelinedTransportError(t *testing.T) {
	ln, conns := silentListener(t)
	p, err := DialPipelined(ln.Addr().String(), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	var pending []*PendingReply
	for i := 0; i < 3; i++ {
		pending = append(pending, p.Go(wire.Message{Header: wire.Header{Op: wire.OpGet, Key: "k", Index: i}}))
	}
	(<-conns).Close() // server side dies with three frames in flight
	for i, pr := range pending {
		if _, err := pr.Wait(); err == nil {
			t.Fatalf("in-flight call %d resolved without error", i)
		}
	}
	if _, err := p.Go(wire.Message{Header: wire.Header{Op: wire.OpGet, Key: "k"}}).Wait(); err == nil {
		t.Fatal("post-failure call succeeded")
	}
}

// TestPipelinedCloseUnblocksFullWindow: a Go blocked on a full in-flight
// window (unresponsive server) must be released by a concurrent Close —
// the close-the-conn-first ordering in Close exists for exactly this.
func TestPipelinedCloseUnblocksFullWindow(t *testing.T) {
	ln, conns := silentListener(t)
	p, err := DialPipelined(ln.Addr().String(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// The reader holds one entry in hand while it blocks on the socket, so
	// window+1 calls fit before Go blocks on the queue.
	for i := 0; i < 3; i++ {
		p.Go(wire.Message{Header: wire.Header{Op: wire.OpGet, Key: "k", Index: i}})
	}
	blocked := make(chan *PendingReply)
	go func() {
		// Window is full: this blocks inside Go until Close tears down.
		blocked <- p.Go(wire.Message{Header: wire.Header{Op: wire.OpGet, Key: "k", Index: 3}})
	}()
	select {
	case <-blocked:
		t.Fatal("third Go did not block on the full window")
	case <-time.After(50 * time.Millisecond):
	}

	done := make(chan struct{})
	go func() { p.Close(); close(done) }()
	select {
	case pr := <-blocked:
		if _, err := pr.Wait(); err == nil {
			t.Fatal("blocked call resolved without error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Go still blocked after Close")
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not return")
	}
	_ = conns
}
