package live

import (
	"fmt"
	"strings"
	"time"

	"github.com/agardist/agar/internal/geo"
)

// DuplicatePeerError reports a -peers flag that names one region more than
// once. Duplicate entries are rejected rather than merged: two addresses
// for one region is almost always a copy-paste error, and silently keeping
// either one would misroute that region's digests and peer reads.
type DuplicatePeerError struct {
	// Region is the region listed more than once.
	Region geo.RegionID
}

// Error implements error.
func (e *DuplicatePeerError) Error() string {
	return fmt.Sprintf("live: peer region %s listed twice", e.Region)
}

// PeerSpec is one cooperative peer parsed from a -peers flag.
type PeerSpec struct {
	// Region is the peer's region.
	Region geo.RegionID
	// Addr is the peer cache server's address.
	Addr string
	// Latency is the client-to-peer chunk-read latency.
	Latency time.Duration
}

// ParsePeers parses a -peers flag of the form
//
//	region=host:port@latency[,region=host:port@latency...]
//
// e.g. "dublin=10.0.0.7:7102@25ms,n-virginia=10.0.1.9:7102@90ms". Empty
// input returns no peers.
func ParsePeers(s string) ([]PeerSpec, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []PeerSpec
	seen := make(map[geo.RegionID]bool)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		name, rest, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("live: peer %q: want region=host:port@latency", part)
		}
		region, err := geo.ParseRegion(strings.TrimSpace(name))
		if err != nil {
			return nil, fmt.Errorf("live: peer %q: %w", part, err)
		}
		addr, latStr, ok := strings.Cut(rest, "@")
		if !ok || strings.TrimSpace(addr) == "" {
			return nil, fmt.Errorf("live: peer %q: want region=host:port@latency", part)
		}
		lat, err := time.ParseDuration(strings.TrimSpace(latStr))
		if err != nil {
			return nil, fmt.Errorf("live: peer %q: bad latency: %w", part, err)
		}
		if lat <= 0 {
			return nil, fmt.Errorf("live: peer %q: latency must be positive", part)
		}
		if seen[region] {
			return nil, &DuplicatePeerError{Region: region}
		}
		seen[region] = true
		out = append(out, PeerSpec{Region: region, Addr: strings.TrimSpace(addr), Latency: lat})
	}
	return out, nil
}
