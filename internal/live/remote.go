package live

import (
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/agardist/agar/internal/backend"
	"github.com/agardist/agar/internal/cache"
	"github.com/agardist/agar/internal/coop"
	"github.com/agardist/agar/internal/trace"
	"github.com/agardist/agar/internal/wire"
)

// poolSize is how many concurrent framed connections a pool keeps per
// endpoint. Four matches the paper's thread-pooled client: enough that
// parallel chunk fetches to one server overlap instead of queueing behind a
// single serialized exchange, small enough that a reader fleet does not
// exhaust server file descriptors.
const poolSize = 4

// pool is a bounded lazy-dialing connection pool to one endpoint. Each call
// borrows an idle connection (dialing a new one while under the bound), runs
// one request/response exchange on it, and returns it; transport failures
// discard the borrowed connection so a later call redials.
type pool struct {
	addr string
	// tokens holds one slot per connection the pool may still create;
	// idle holds connections ready for the next call.
	tokens chan struct{}
	idle   chan net.Conn
}

func newPool(addr string) *pool {
	p := &pool{
		addr:   addr,
		tokens: make(chan struct{}, poolSize),
		idle:   make(chan net.Conn, poolSize),
	}
	for i := 0; i < poolSize; i++ {
		p.tokens <- struct{}{}
	}
	return p
}

// get borrows an idle connection, dialing a fresh one when the pool is
// under its bound, and blocking for a returned connection at the bound.
func (p *pool) get() (net.Conn, error) {
	select {
	case c := <-p.idle:
		return c, nil
	default:
	}
	select {
	case c := <-p.idle:
		return c, nil
	case <-p.tokens:
		c, err := net.DialTimeout("tcp", p.addr, 5*time.Second)
		if err != nil {
			p.tokens <- struct{}{}
			return nil, fmt.Errorf("live: dial %s: %w", p.addr, err)
		}
		return c, nil
	}
}

// put returns a healthy connection for reuse; discard drops a broken one
// and frees its slot for a redial.
func (p *pool) put(c net.Conn)     { p.idle <- c }
func (p *pool) discard(c net.Conn) { c.Close(); p.tokens <- struct{}{} }

func (p *pool) call(req wire.Message) (wire.Message, error) {
	c, err := p.get()
	if err != nil {
		return wire.Message{}, err
	}
	resp, err := wire.Call(c, req)
	if err != nil && resp.Header.Op != wire.OpError {
		// Transport failure: drop the connection so a later call redials.
		p.discard(c)
	} else {
		p.put(c)
	}
	return resp, err
}

// callCtx is call with trace context stamped onto the request: a sampled
// context rides the optional header fields (and the server answers with
// its span annotations, returned alongside the reply); the zero context
// adds nothing, so the frame stays byte-identical to an untraced call.
func (p *pool) callCtx(ctx trace.Context, req wire.Message) (wire.Message, []trace.Annotation, error) {
	if ctx.Sampled() {
		req.Header.Trace = ctx.TraceID.String()
		req.Header.Span = ctx.SpanID.String()
		req.Header.TFlags = ctx.Flags
	}
	resp, err := p.call(req)
	return resp, resp.Header.Anns, err
}

// close drops every idle connection. Borrowed connections are closed by
// their callers' failure paths; a pool remains usable after close (new
// calls simply redial), matching the old single-connection semantics.
func (p *pool) close() {
	for {
		select {
		case c := <-p.idle:
			c.Close()
			p.tokens <- struct{}{}
		default:
			return
		}
	}
}

// RemoteStore is the client adapter for a region's store server. Calls on
// one adapter run concurrently over a small connection pool.
type RemoteStore struct{ rc *pool }

// NewRemoteStore returns an adapter for the store server at addr.
func NewRemoteStore(addr string) *RemoteStore {
	return &RemoteStore{rc: newPool(addr)}
}

// Close drops the pooled connections.
func (s *RemoteStore) Close() { s.rc.close() }

// Get fetches one chunk.
func (s *RemoteStore) Get(id backend.ChunkID) ([]byte, error) {
	data, _, err := s.GetCtx(trace.Context{}, id)
	return data, err
}

// GetCtx is Get with trace context: a sampled context rides the request
// and the server's span annotations come back with the chunk. The zero
// context sends the byte-identical untraced frame.
func (s *RemoteStore) GetCtx(ctx trace.Context, id backend.ChunkID) ([]byte, []trace.Annotation, error) {
	resp, anns, err := s.rc.callCtx(ctx, wire.Message{Header: wire.Header{Op: wire.OpGet, Key: id.Key, Index: id.Index}})
	if err != nil {
		return nil, anns, err
	}
	if resp.Header.Op == wire.OpNotFound {
		return nil, anns, backend.ErrNotFound
	}
	return resp.Body, anns, nil
}

// GetMulti fetches several chunks of one key in a single round trip and
// returns whichever the region holds, keyed by chunk index — the batched
// form of Get, mirroring the cache protocol's mget.
func (s *RemoteStore) GetMulti(key string, indices []int) (map[int][]byte, error) {
	found, _, err := s.GetMultiCtx(trace.Context{}, key, indices)
	return found, err
}

// GetMultiCtx is GetMulti with trace context (see GetCtx).
func (s *RemoteStore) GetMultiCtx(ctx trace.Context, key string, indices []int) (map[int][]byte, []trace.Annotation, error) {
	if len(indices) == 0 {
		return map[int][]byte{}, nil, nil
	}
	if len(indices) > wire.MaxBatchChunks {
		return nil, nil, fmt.Errorf("live: mget of %d chunks exceeds batch limit %d", len(indices), wire.MaxBatchChunks)
	}
	resp, anns, err := s.rc.callCtx(ctx, wire.Message{Header: wire.Header{Op: wire.OpMGet, Key: key, Indices: indices}})
	if err != nil {
		return nil, anns, err
	}
	found, err := wire.UnpackBatch(resp.Header.Indices, resp.Header.Sizes, resp.Body)
	return found, anns, err
}

// Put stores one chunk.
func (s *RemoteStore) Put(id backend.ChunkID, data []byte) error {
	_, err := s.rc.call(wire.Message{
		Header: wire.Header{Op: wire.OpPut, Key: id.Key, Index: id.Index},
		Body:   data,
	})
	return err
}

// Stats fetches the server's counters.
func (s *RemoteStore) Stats() (map[string]int64, error) {
	resp, err := s.rc.call(wire.Message{Header: wire.Header{Op: wire.OpStats}})
	if err != nil {
		return nil, err
	}
	return resp.Header.Stats, nil
}

// RemoteCache is the client adapter for a chunk cache server. Calls on one
// adapter run concurrently over a small connection pool.
type RemoteCache struct {
	rc *pool
	// origin, when set, names the calling client's region on batched reads,
	// so a peer cache server can account cooperative traffic separately
	// from its own region's clients.
	origin string
}

// NewRemoteCache returns an adapter for the cache server at addr.
func NewRemoteCache(addr string) *RemoteCache {
	return &RemoteCache{rc: newPool(addr)}
}

// NewPeerRemoteCache returns an adapter for a cooperative peer's cache
// server that identifies its reads as coming from the origin region.
func NewPeerRemoteCache(addr, origin string) *RemoteCache {
	return &RemoteCache{rc: newPool(addr), origin: origin}
}

// Close drops the pooled connections.
func (c *RemoteCache) Close() { c.rc.close() }

// Get fetches one cached chunk.
func (c *RemoteCache) Get(id cache.EntryID) ([]byte, error) {
	resp, err := c.rc.call(wire.Message{Header: wire.Header{Op: wire.OpGet, Key: id.Key, Index: id.Index}})
	if err != nil {
		return nil, err
	}
	if resp.Header.Op == wire.OpNotFound {
		return nil, cache.ErrNotFound
	}
	return resp.Body, nil
}

// Put inserts one chunk.
func (c *RemoteCache) Put(id cache.EntryID, data []byte) error {
	_, err := c.rc.call(wire.Message{
		Header: wire.Header{Op: wire.OpPut, Key: id.Key, Index: id.Index},
		Body:   data,
	})
	return err
}

// GetMulti fetches several chunks of one key in a single round trip and
// returns whichever were resident, keyed by chunk index — the batched form
// of Get. Missing chunks are simply absent from the result.
func (c *RemoteCache) GetMulti(key string, indices []int) (map[int][]byte, error) {
	found, _, err := c.GetMultiCtx(trace.Context{}, key, indices)
	return found, err
}

// GetMultiCtx is GetMulti with trace context: a sampled context rides the
// request and the server's span annotations (queue wait, per-shard
// execute, split-batch parts) come back with the chunks. The zero context
// sends the byte-identical untraced frame.
func (c *RemoteCache) GetMultiCtx(ctx trace.Context, key string, indices []int) (map[int][]byte, []trace.Annotation, error) {
	if len(indices) == 0 {
		return map[int][]byte{}, nil, nil
	}
	if len(indices) > wire.MaxBatchChunks {
		return nil, nil, fmt.Errorf("live: mget of %d chunks exceeds batch limit %d", len(indices), wire.MaxBatchChunks)
	}
	resp, anns, err := c.rc.callCtx(ctx, wire.Message{Header: wire.Header{Op: wire.OpMGet, Key: key, Indices: indices, Region: c.origin}})
	if err != nil {
		return nil, anns, err
	}
	found, err := wire.UnpackBatch(resp.Header.Indices, resp.Header.Sizes, resp.Body)
	return found, anns, err
}

// SendDigest pushes one cooperative residency digest frame — full or delta
// — to the cache server and waits for its acknowledgement; the live
// transport behind coop.Advertiser. The ack echoes the mirror's resulting
// sequence, so a rejected delta (the peer's mirror was not at the delta's
// base) or a stale full frame surfaces as an error and the advertiser
// falls back to a full digest on its next push.
func (c *RemoteCache) SendDigest(d coop.Digest) error {
	resp, err := c.rc.call(wire.Message{
		Header: wire.Header{Op: wire.OpDigest, Region: d.Region, Seq: d.Seq, Groups: d.Groups,
			Delta: d.Delta, Base: d.Base, KeyVers: d.KeyVers},
	})
	if err != nil {
		return err
	}
	if resp.Header.Op != wire.OpDigestAck {
		return fmt.Errorf("live: digest got %q, want ack", resp.Header.Op)
	}
	if resp.Header.Seq != d.Seq {
		return fmt.Errorf("live: digest ack seq %d, want %d", resp.Header.Seq, d.Seq)
	}
	return nil
}

// PutMulti inserts several chunks of one key in a single round trip — the
// batched form of Put. Chunks the server's cache refuses (admission filter,
// full shard) are skipped server-side without failing the batch.
func (c *RemoteCache) PutMulti(key string, chunks map[int][]byte) error {
	if len(chunks) == 0 {
		return nil
	}
	indices, sizes, body, err := wire.PackBatch(chunks)
	if err != nil {
		return err
	}
	_, err = c.rc.call(wire.Message{
		Header: wire.Header{Op: wire.OpMPut, Key: key, Indices: indices, Sizes: sizes},
		Body:   body,
	})
	return err
}

// IndicesOf lists the resident chunk indices for a key.
func (c *RemoteCache) IndicesOf(key string) ([]int, error) {
	resp, err := c.rc.call(wire.Message{Header: wire.Header{Op: wire.OpIndices, Key: key}})
	if err != nil {
		return nil, err
	}
	return resp.Header.Indices, nil
}

// DeleteObject removes every chunk of a key (write invalidation).
func (c *RemoteCache) DeleteObject(key string) error {
	_, err := c.rc.call(wire.Message{Header: wire.Header{Op: wire.OpDelObj, Key: key}})
	return err
}

// Snapshot fetches the cache's full contents summary.
func (c *RemoteCache) Snapshot() (map[string][]int, error) {
	resp, err := c.rc.call(wire.Message{Header: wire.Header{Op: wire.OpSnapshot}})
	if err != nil {
		return nil, err
	}
	return resp.Header.Groups, nil
}

// Stats fetches cache counters.
func (c *RemoteCache) Stats() (map[string]int64, error) {
	resp, err := c.rc.call(wire.Message{Header: wire.Header{Op: wire.OpStats}})
	if err != nil {
		return nil, err
	}
	return resp.Header.Stats, nil
}

// RemoteHinter asks an Agar node for caching hints over TCP.
type RemoteHinter struct{ rc *pool }

// NewRemoteHinter returns an adapter for the hint server at addr.
func NewRemoteHinter(addr string) *RemoteHinter {
	return &RemoteHinter{rc: newPool(addr)}
}

// Close drops the pooled connections.
func (h *RemoteHinter) Close() { h.rc.close() }

// Hint requests the caching hint for a key.
func (h *RemoteHinter) Hint(key string) ([]int, error) {
	indices, _, err := h.HintCtx(trace.Context{}, key)
	return indices, err
}

// HintCtx is Hint with trace context (see RemoteCache.GetMultiCtx); the
// hint server's execute annotation comes back with the hint, so a merged
// read trace shows real server time for the hint exchange too.
func (h *RemoteHinter) HintCtx(ctx trace.Context, key string) ([]int, []trace.Annotation, error) {
	resp, anns, err := h.rc.callCtx(ctx, wire.Message{Header: wire.Header{Op: wire.OpHint, Key: key}})
	if err != nil {
		return nil, anns, err
	}
	return resp.Header.Indices, anns, nil
}

// HintMulti resolves the caching hints for several keys in one round trip —
// the batched form of Hint, for readers that know their next keys (prefetch
// pipelines, scan workloads). Every requested key appears in the result.
func (h *RemoteHinter) HintMulti(keys []string) (map[string][]int, error) {
	if len(keys) == 0 {
		return map[string][]int{}, nil
	}
	if len(keys) > wire.MaxBatchChunks {
		return nil, fmt.Errorf("live: mhint of %d keys exceeds batch limit %d", len(keys), wire.MaxBatchChunks)
	}
	resp, err := h.rc.call(wire.Message{Header: wire.Header{Op: wire.OpMHint, Keys: keys}})
	if err != nil {
		return nil, err
	}
	out := resp.Header.Groups
	if out == nil {
		out = map[string][]int{}
	}
	return out, nil
}

// UDPHinter asks for hints over UDP, like the paper's prototype.
type UDPHinter struct {
	addr *net.UDPAddr

	mu   sync.Mutex
	conn net.PacketConn
	buf  []byte
}

// NewUDPHinter returns a UDP hint client for the server at addr.
func NewUDPHinter(addr string) (*UDPHinter, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("live: resolve %s: %w", addr, err)
	}
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	return &UDPHinter{addr: ua, conn: conn, buf: make([]byte, 64<<10)}, nil
}

// Close releases the socket.
func (h *UDPHinter) Close() { h.conn.Close() }

// Hint requests the caching hint for a key, with a 2-second timeout.
func (h *UDPHinter) Hint(key string) ([]int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	err := wire.WriteDatagram(h.conn, h.addr, wire.Message{Header: wire.Header{Op: wire.OpHint, Key: key}})
	if err != nil {
		return nil, err
	}
	h.conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	resp, _, err := wire.ReadDatagram(h.conn, h.buf)
	if err != nil {
		return nil, err
	}
	if resp.Header.Op == wire.OpError {
		return nil, fmt.Errorf("live: hint error: %s", resp.Header.Error)
	}
	return resp.Header.Indices, nil
}
